"""System inspection and native compiler discovery.

The runtime half of the paper's Figure 3: inspect the CPU (the CPUID
analog reads ``/proc/cpuinfo`` on Linux and falls back to a conservative
baseline), detect available C compilers (icc, gcc, llvm/clang — in the
paper's preference order), and derive the best flag mix for each.
"""

from __future__ import annotations

import os
import platform
import re
import shutil
import subprocess
import sys
import time
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Callable, Iterator, Sequence

import repro.obs as obs
from repro.core import faults, policy
from repro.core.env import env_float, env_int
from repro.core.procutil import kill_process_group

# Map CPU feature flags (as /proc/cpuinfo spells them) to ISA names.
_FLAG_TO_ISA = {
    "mmx": "MMX", "sse": "SSE", "sse2": "SSE2", "pni": "SSE3",
    "ssse3": "SSSE3", "sse4_1": "SSE4.1", "sse4_2": "SSE4.2",
    "avx": "AVX", "avx2": "AVX2", "fma": "FMA", "f16c": "FP16C",
    "rdrand": "RDRAND", "rdseed": "RDSEED", "aes": "AES", "sha_ni": "SHA",
    "pclmulqdq": "PCLMULQDQ", "popcnt": "POPCNT", "abm": "LZCNT",
    "bmi1": "BMI1", "bmi2": "BMI2",
    "avx512f": "AVX512F", "avx512bw": "AVX512BW", "avx512cd": "AVX512CD",
    "avx512dq": "AVX512DQ", "avx512vl": "AVX512VL",
    "avx512ifma": "AVX512IFMA52", "avx512vbmi": "AVX512VBMI",
}

# ISA -> gcc/clang machine flag.
_ISA_TO_FLAG = {
    "SSE": "-msse", "SSE2": "-msse2", "SSE3": "-msse3", "SSSE3": "-mssse3",
    "SSE4.1": "-msse4.1", "SSE4.2": "-msse4.2", "AVX": "-mavx",
    "AVX2": "-mavx2", "FMA": "-mfma", "FP16C": "-mf16c",
    "RDRAND": "-mrdrnd", "RDSEED": "-mrdseed", "AES": "-maes",
    "SHA": "-msha", "PCLMULQDQ": "-mpclmul", "POPCNT": "-mpopcnt",
    "LZCNT": "-mlzcnt", "BMI1": "-mbmi", "BMI2": "-mbmi2",
    "AVX512F": "-mavx512f", "AVX512BW": "-mavx512bw",
    "AVX512CD": "-mavx512cd", "AVX512DQ": "-mavx512dq",
    "AVX512VL": "-mavx512vl",
}


@dataclass(frozen=True)
class CompilerInfo:
    """One detected C compiler."""

    name: str            # "icc" | "gcc" | "clang"
    path: str
    version: str

    def flags_for(self, isas: frozenset[str]) -> list[str]:
        # -ffp-contract=off: FMA contraction must be the programmer's
        # explicit choice (the fmadd intrinsics), so the compiled code
        # is bit-identical to the staged graph's semantics.
        # -fwrapv: staged integer arithmetic has JVM-style two's
        # complement wraparound; signed overflow must not be UB.
        flags = ["-O3", "-shared", "-fPIC", "-fno-strict-aliasing",
                 "-ffp-contract=off", "-fwrapv"]
        if self.name == "icc":
            flags += ["-xHost"]
        else:
            flags += sorted(_ISA_TO_FLAG[isa] for isa in isas
                            if isa in _ISA_TO_FLAG)
        return flags


@dataclass(frozen=True)
class SystemInfo:
    """The inspected host: available ISAs and compilers."""

    cpu: str
    isas: frozenset[str]
    compilers: tuple[CompilerInfo, ...] = field(default=())

    def supports(self, *isas: str) -> bool:
        return all(isa in self.isas for isa in isas)

    @property
    def best_compiler(self) -> CompilerInfo | None:
        # The paper's preference order: icc, gcc, llvm/clang.
        for name in ("icc", "gcc", "clang"):
            for c in self.compilers:
                if c.name == name:
                    return c
        return None


def _compiler_version(path: str) -> str:
    try:
        out = subprocess.run([path, "--version"], capture_output=True,
                             text=True, timeout=10)
        first = (out.stdout or out.stderr).splitlines()
        return first[0] if first else "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def _parse_cc_override(spec: str) -> tuple[CompilerInfo, ...]:
    """Parse ``REPRO_CC``: a comma list of ``name=path`` or bare paths.

    A bare path infers the flag dialect from the basename (``icc`` /
    ``clang`` / default ``gcc``), so a test can point the runtime at a
    fake compiler script without it being on the PATH.
    """
    found: list[CompilerInfo] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" in part:
            name, path = (s.strip() for s in part.split("=", 1))
        else:
            path = part
            base = Path(part).name
            name = ("icc" if "icc" in base
                    else "clang" if "clang" in base else "gcc")
        found.append(CompilerInfo(name=name, path=path,
                                  version=_compiler_version(path)))
    return tuple(found)


@lru_cache(maxsize=4)
def _detect_compilers_cached(cc_override: str | None
                             ) -> tuple[CompilerInfo, ...]:
    if cc_override:
        return _parse_cc_override(cc_override)
    found: list[CompilerInfo] = []
    for name in ("icc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            found.append(CompilerInfo(name=name, path=path,
                                      version=_compiler_version(path)))
    return tuple(found)


def detect_compilers() -> tuple[CompilerInfo, ...]:
    """Search the PATH for icc, gcc and clang.

    ``REPRO_CC`` overrides discovery entirely (see
    :func:`_parse_cc_override`).
    """
    return _detect_compilers_cached(os.environ.get("REPRO_CC") or None)


def _cpu_flags() -> tuple[str, set[str]]:
    cpuinfo = Path("/proc/cpuinfo")
    if cpuinfo.exists():
        text = cpuinfo.read_text()
        model = "unknown"
        m = re.search(r"model name\s*:\s*(.+)", text)
        if m:
            model = m.group(1).strip()
        fm = re.search(r"flags\s*:\s*(.+)", text)
        flags = set(fm.group(1).split()) if fm else set()
        return model, flags
    # Conservative non-Linux fallback: assume SSE2 (x86-64 baseline).
    if platform.machine() in ("x86_64", "AMD64"):
        return platform.processor() or "x86-64", {"mmx", "sse", "sse2"}
    return platform.machine(), set()


@lru_cache(maxsize=1)
def _inspect_cpu() -> tuple[str, frozenset[str]]:
    model, flags = _cpu_flags()
    isas = {"MMX"} if flags else set()
    for flag, isa in _FLAG_TO_ISA.items():
        if flag in flags:
            isas.add(isa)
    if any(i.startswith("AVX512") for i in isas):
        isas.add("AVX-512")
    return model, frozenset(isas)


def inspect_system() -> SystemInfo:
    """Inspect the CPU and toolchain (the CPUID step of Figure 3).

    The CPU probe is cached for the process lifetime; the compiler set
    is re-resolved so ``REPRO_CC`` changes take effect immediately.
    """
    model, isas = _inspect_cpu()
    return SystemInfo(cpu=model, isas=isas, compilers=detect_compilers())


class CompileError(RuntimeError):
    """A native compilation failed; carries the compiler diagnostics."""


class TransientCompileError(CompileError):
    """A compilation failed for reasons likely to clear on retry:
    compiler timeout, a failed ``exec``, a signal, or an exhausted
    system resource.  The resilience layer retries these with bounded
    exponential backoff before degrading down the ladder."""


class PermanentCompileError(CompileError):
    """A compilation failed deterministically (diagnostics, bad flags).
    Retrying the same invocation is pointless; the resilience layer
    moves straight to the next rung of the fallback ladder."""


class CompileDeadlineError(TransientCompileError):
    """The per-kernel wall-clock deadline (``REPRO_COMPILE_DEADLINE``)
    expired before the ladder produced an artifact.  Transient — the
    kernel stays on the simulator and may be re-promoted later — but
    the ladder stops walking immediately instead of burning rungs
    against a clock that has already run out."""


# stderr signatures of failures worth retrying verbatim.
_TRANSIENT_RE = re.compile(
    r"(?i)resource temporarily unavailable|cannot allocate memory"
    r"|virtual memory exhausted|no space left on device|text file busy"
    r"|interrupted system call|input/output error",
)


def _compile_timeout() -> float:
    return env_float("REPRO_COMPILE_TIMEOUT", 120.0, minimum=0.01)


def _run_with_watchdog(cmd: Sequence[str], timeout: float,
                       cc_name: str) -> subprocess.CompletedProcess:
    """Run a compiler invocation in its own process group under a
    wall-clock watchdog.

    ``subprocess.run(timeout=...)`` only kills the direct child, so a
    compiler driver whose cc1/ld child hangs leaves the hung grandchild
    holding the workdir forever.  Each invocation therefore gets its
    own session (``start_new_session=True``); on timeout the *entire
    group* is SIGKILLed via ``killpg`` and the kill is counted
    (``watchdog.kills``)."""
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE, text=True,
                            start_new_session=True)
    try:
        stdout, stderr = proc.communicate(timeout=timeout)
    except subprocess.TimeoutExpired:
        kill_process_group(proc.pid)
        try:
            proc.communicate(timeout=5)
        except subprocess.TimeoutExpired:  # pragma: no cover - unkillable
            pass
        obs.counter("watchdog.kills", compiler=cc_name)
        raise TransientCompileError(
            f"{cc_name} watchdog killed hung compiler process group "
            f"after {timeout}s ({' '.join(cmd)})")
    return subprocess.CompletedProcess(cmd, proc.returncode,
                                       stdout, stderr)


def compile_shared_library(source: str, workdir: Path,
                           isas: frozenset[str],
                           compiler: CompilerInfo | None = None,
                           name: str = "kernel",
                           flags: Sequence[str] | None = None,
                           timeout: float | None = None,
                           deadline: float | None = None) -> Path:
    """Compile C source into a shared library and return its path.

    ``flags`` overrides the compiler's derived flag set (used by the
    fallback ladder).  ``deadline`` is an absolute ``time.monotonic()``
    instant; the effective watchdog timeout is clamped to the time
    remaining, and an already-expired deadline raises
    :class:`CompileDeadlineError` without invoking the compiler.
    Failures raise :class:`TransientCompileError` or
    :class:`PermanentCompileError`; both are :class:`CompileError`.
    """
    system = inspect_system()
    cc = compiler or system.best_compiler
    if cc is None:
        raise PermanentCompileError("no C compiler found on this system")
    workdir.mkdir(parents=True, exist_ok=True)
    c_path = workdir / f"{name}.c"
    so_path = workdir / f"{name}.so"
    c_path.write_text(source)
    use_flags = list(flags) if flags is not None else cc.flags_for(isas)
    cmd = [cc.path, *use_flags, str(c_path), "-o", str(so_path)]
    if timeout is None:
        timeout = _compile_timeout()
    if deadline is not None:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise CompileDeadlineError(
                f"compile deadline expired before invoking {cc.name} "
                f"for {name!r}")
        timeout = min(timeout, remaining)
    faults.maybe_raise("compile.transient", TransientCompileError,
                       f"injected transient compile failure ({cc.name})")
    faults.maybe_raise("compile.permanent", PermanentCompileError,
                       f"injected permanent compile failure ({cc.name})")
    if faults.fire("compile.hang"):
        # stand in a child that sleeps until the watchdog kills it
        cmd = [sys.executable, "-c", "import time; time.sleep(600)"]
    try:
        result = _run_with_watchdog(cmd, timeout, cc.name)
    except OSError as exc:
        raise TransientCompileError(
            f"{cc.name} could not be invoked ({cc.path}): {exc}"
        ) from exc
    if result.returncode != 0:
        msg = f"{cc.name} failed ({' '.join(cmd)}):\n{result.stderr}"
        if result.returncode < 0 or _TRANSIENT_RE.search(result.stderr or ""):
            raise TransientCompileError(msg)
        raise PermanentCompileError(msg)
    return so_path


def compiler_chain(system: SystemInfo | None = None
                   ) -> tuple[CompilerInfo, ...]:
    """All detected compilers in the paper's preference order
    (icc, gcc, clang) — the degradation chain of the fallback ladder."""
    compilers = (system or inspect_system()).compilers
    ordered = [c for name in ("icc", "gcc", "clang")
               for c in compilers if c.name == name]
    ordered += [c for c in compilers if c not in ordered]
    return tuple(ordered)


def flag_ladder(cc: CompilerInfo, isas: frozenset[str],
                required: frozenset[str] | None = None
                ) -> Iterator[tuple[str, list[str]]]:
    """Yield ``(rung, flags)`` pairs, most aggressive first.

    Rungs: full flags at ``-O3``; the same at ``-O2``; then ``-O2``
    with the per-ISA ``-m*`` flags pruned to the ISAs the kernel
    actually needs (``required``).  Identical consecutive rungs are
    deduplicated, so when ``isas == required`` the ladder has two rungs.
    """
    base = cc.flags_for(isas)
    o2 = ["-O2" if f == "-O3" else f for f in base]
    rungs: list[tuple[str, list[str]]] = [("O3", base), ("O2", o2)]
    if required is not None:
        isa_flags = set(_ISA_TO_FLAG.values())
        keep = {_ISA_TO_FLAG[i] for i in required if i in _ISA_TO_FLAG}
        minimal = [f for f in o2 if f not in isa_flags or f in keep]
        rungs.append(("O2-minimal-isa", minimal))
    seen: set[tuple[str, ...]] = set()
    for rung, fl in rungs:
        key = tuple(fl)
        if key in seen:
            continue
        seen.add(key)
        yield rung, fl


@dataclass
class CompileAttempt:
    """One compiler invocation (or refusal), as recorded in a report."""

    compiler: str
    version: str
    rung: str
    flags: tuple[str, ...]
    outcome: str            # "ok" | "transient" | "permanent"
    detail: str = ""
    duration_s: float = 0.0

    def to_dict(self) -> dict:
        return {
            "compiler": self.compiler, "version": self.version,
            "rung": self.rung, "flags": list(self.flags),
            "outcome": self.outcome, "detail": self.detail,
            "duration_s": self.duration_s,
        }


def _max_retries() -> int:
    return env_int("REPRO_COMPILE_RETRIES", 2, minimum=0)


def compile_with_fallback(source: str, workdir: Path,
                          isas: frozenset[str],
                          required: frozenset[str] | None = None,
                          compilers: Sequence[CompilerInfo] | None = None,
                          name: str = "kernel",
                          attempts: list[CompileAttempt] | None = None,
                          max_retries: int | None = None,
                          retry_base: float = 0.05,
                          retry_cap: float = 1.0,
                          sleep: Callable[[float], None] = time.sleep,
                          deadline: float | None = None,
                          ) -> tuple[Path, CompilerInfo, tuple[str, ...]]:
    """Compile down the resilience ladder.

    For each compiler in the icc→gcc→clang chain, walk the flag ladder;
    transient failures are retried up to ``max_retries`` times (default
    ``REPRO_COMPILE_RETRIES``, 2) with bounded exponential backoff,
    permanent ones drop straight to the next rung.  Every invocation is
    appended to ``attempts``.  ``deadline`` (absolute
    ``time.monotonic()``) bounds the whole walk: once it expires the
    ladder raises :class:`CompileDeadlineError` instead of starting
    another rung, and backoff sleeps are capped to the time remaining.
    Returns ``(so_path, compiler, flags)`` of the first success or
    raises :class:`PermanentCompileError` once the whole ladder is
    exhausted.

    **Learned rung ordering** (DESIGN.md §15): every settled rung's
    verdict is recorded in the policy table under the kernel's family
    (derived from ``name``), and under ``REPRO_POLICY=learned`` the
    walk visits rungs in learned link-success order — a family whose
    icc rung always fails jumps straight to the rung that links.  At
    ``off`` (and on a cold table) the fixed icc→gcc→clang / O3→O2→
    minimal-ISA order is preserved exactly.
    """
    ccs = list(compilers) if compilers is not None \
        else list(compiler_chain())
    if not ccs:
        raise PermanentCompileError("no C compiler found on this system")
    retries = _max_retries() if max_retries is None else max(0, max_retries)

    rungs: list[tuple[CompilerInfo, str, list[str]]] = [
        (cc, rung, fl) for cc in ccs
        for rung, fl in flag_ladder(cc, isas, required)]
    family = policy.family_of(name)
    table = policy.get_policy() if policy.recording() else None
    if table is not None and policy.acting():
        choice_ids = [f"{cc.name}/{rung}" for cc, rung, _fl in rungs]
        order = table.rank(family, "ladder", choice_ids)
        obs.counter("policy.decisions", kind="ladder")
        if order != list(range(len(rungs))):
            obs.counter("policy.overrides", kind="ladder")
        rungs = [rungs[i] for i in order]

    last: CompileError | None = None
    invocations = 0
    for cc, rung, fl in rungs:
        for try_no in range(retries + 1):
            if deadline is not None and \
                    time.monotonic() >= deadline:
                exc = CompileDeadlineError(
                    f"compile deadline expired walking the ladder "
                    f"for {name!r} (at {cc.name}/{rung}); last "
                    f"error: {last}")
                if attempts is not None:
                    attempts.append(CompileAttempt(
                        cc.name, cc.version, rung, tuple(fl),
                        "transient", str(exc)[:500], 0.0))
                obs.counter("compile.deadline_expired")
                raise exc
            start = time.monotonic()
            outcome = "ok"
            detail = ""
            so: Path | None = None
            with obs.span("compile.attempt", compiler=cc.name,
                          rung=rung, flags=tuple(fl)) as att_span:
                try:
                    so = compile_shared_library(
                        source, workdir, isas, compiler=cc,
                        name=name, flags=fl, deadline=deadline)
                except TransientCompileError as exc:
                    last = exc
                    outcome, detail = "transient", str(exc)[:500]
                except PermanentCompileError as exc:
                    last = exc
                    outcome, detail = "permanent", str(exc)[:500]
                att_span.set("outcome", outcome)
            duration = time.monotonic() - start
            invocations += 1
            if invocations == 1:
                obs.counter("policy.ladder.first_attempt",
                            outcome=outcome)
            obs.counter("compile.attempts", outcome=outcome,
                        compiler=cc.name)
            obs.observe("compile.attempt_s", duration,
                        outcome=outcome)
            if attempts is not None:
                attempts.append(CompileAttempt(
                    cc.name, cc.version, rung, tuple(fl), outcome,
                    detail, duration))
            if outcome == "ok":
                if table is not None:
                    table.record(family, "ladder", f"{cc.name}/{rung}",
                                 True)
                obs.observe("policy.ladder.attempts_per_success",
                            float(invocations))
                return so, cc, tuple(fl)
            if outcome == "transient" and try_no < retries:
                obs.counter("compile.retries")
                pause = min(retry_cap, retry_base * (2 ** try_no))
                if deadline is not None:
                    pause = min(pause,
                                max(0.0, deadline - time.monotonic()))
                if pause > 0:
                    sleep(pause)
                continue
            # this rung is abandoned; the ladder moves on
            if table is not None:
                table.record(family, "ladder", f"{cc.name}/{rung}",
                             False)
            obs.counter("compile.downgrades")
            break
    raise PermanentCompileError(
        f"all compile attempts for {name!r} failed "
        f"({len(ccs)} compiler(s), ladder exhausted); last error: {last}"
    )
