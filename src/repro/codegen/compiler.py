"""System inspection and native compiler discovery.

The runtime half of the paper's Figure 3: inspect the CPU (the CPUID
analog reads ``/proc/cpuinfo`` on Linux and falls back to a conservative
baseline), detect available C compilers (icc, gcc, llvm/clang — in the
paper's preference order), and derive the best flag mix for each.
"""

from __future__ import annotations

import platform
import re
import shutil
import subprocess
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path

# Map CPU feature flags (as /proc/cpuinfo spells them) to ISA names.
_FLAG_TO_ISA = {
    "mmx": "MMX", "sse": "SSE", "sse2": "SSE2", "pni": "SSE3",
    "ssse3": "SSSE3", "sse4_1": "SSE4.1", "sse4_2": "SSE4.2",
    "avx": "AVX", "avx2": "AVX2", "fma": "FMA", "f16c": "FP16C",
    "rdrand": "RDRAND", "rdseed": "RDSEED", "aes": "AES", "sha_ni": "SHA",
    "pclmulqdq": "PCLMULQDQ", "popcnt": "POPCNT", "abm": "LZCNT",
    "bmi1": "BMI1", "bmi2": "BMI2",
    "avx512f": "AVX512F", "avx512bw": "AVX512BW", "avx512cd": "AVX512CD",
    "avx512dq": "AVX512DQ", "avx512vl": "AVX512VL",
    "avx512ifma": "AVX512IFMA52", "avx512vbmi": "AVX512VBMI",
}

# ISA -> gcc/clang machine flag.
_ISA_TO_FLAG = {
    "SSE": "-msse", "SSE2": "-msse2", "SSE3": "-msse3", "SSSE3": "-mssse3",
    "SSE4.1": "-msse4.1", "SSE4.2": "-msse4.2", "AVX": "-mavx",
    "AVX2": "-mavx2", "FMA": "-mfma", "FP16C": "-mf16c",
    "RDRAND": "-mrdrnd", "RDSEED": "-mrdseed", "AES": "-maes",
    "SHA": "-msha", "PCLMULQDQ": "-mpclmul", "POPCNT": "-mpopcnt",
    "LZCNT": "-mlzcnt", "BMI1": "-mbmi", "BMI2": "-mbmi2",
    "AVX512F": "-mavx512f", "AVX512BW": "-mavx512bw",
    "AVX512CD": "-mavx512cd", "AVX512DQ": "-mavx512dq",
    "AVX512VL": "-mavx512vl",
}


@dataclass(frozen=True)
class CompilerInfo:
    """One detected C compiler."""

    name: str            # "icc" | "gcc" | "clang"
    path: str
    version: str

    def flags_for(self, isas: frozenset[str]) -> list[str]:
        # -ffp-contract=off: FMA contraction must be the programmer's
        # explicit choice (the fmadd intrinsics), so the compiled code
        # is bit-identical to the staged graph's semantics.
        # -fwrapv: staged integer arithmetic has JVM-style two's
        # complement wraparound; signed overflow must not be UB.
        flags = ["-O3", "-shared", "-fPIC", "-fno-strict-aliasing",
                 "-ffp-contract=off", "-fwrapv"]
        if self.name == "icc":
            flags += ["-xHost"]
        else:
            flags += sorted(_ISA_TO_FLAG[isa] for isa in isas
                            if isa in _ISA_TO_FLAG)
        return flags


@dataclass(frozen=True)
class SystemInfo:
    """The inspected host: available ISAs and compilers."""

    cpu: str
    isas: frozenset[str]
    compilers: tuple[CompilerInfo, ...] = field(default=())

    def supports(self, *isas: str) -> bool:
        return all(isa in self.isas for isa in isas)

    @property
    def best_compiler(self) -> CompilerInfo | None:
        # The paper's preference order: icc, gcc, llvm/clang.
        for name in ("icc", "gcc", "clang"):
            for c in self.compilers:
                if c.name == name:
                    return c
        return None


def _compiler_version(path: str) -> str:
    try:
        out = subprocess.run([path, "--version"], capture_output=True,
                             text=True, timeout=10)
        first = (out.stdout or out.stderr).splitlines()
        return first[0] if first else "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


@lru_cache(maxsize=1)
def detect_compilers() -> tuple[CompilerInfo, ...]:
    """Search the PATH for icc, gcc and clang."""
    found: list[CompilerInfo] = []
    for name in ("icc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            found.append(CompilerInfo(name=name, path=path,
                                      version=_compiler_version(path)))
    return tuple(found)


def _cpu_flags() -> tuple[str, set[str]]:
    cpuinfo = Path("/proc/cpuinfo")
    if cpuinfo.exists():
        text = cpuinfo.read_text()
        model = "unknown"
        m = re.search(r"model name\s*:\s*(.+)", text)
        if m:
            model = m.group(1).strip()
        fm = re.search(r"flags\s*:\s*(.+)", text)
        flags = set(fm.group(1).split()) if fm else set()
        return model, flags
    # Conservative non-Linux fallback: assume SSE2 (x86-64 baseline).
    if platform.machine() in ("x86_64", "AMD64"):
        return platform.processor() or "x86-64", {"mmx", "sse", "sse2"}
    return platform.machine(), set()


@lru_cache(maxsize=1)
def inspect_system() -> SystemInfo:
    """Inspect the CPU and toolchain (the CPUID step of Figure 3)."""
    model, flags = _cpu_flags()
    isas = {"MMX"} if flags else set()
    for flag, isa in _FLAG_TO_ISA.items():
        if flag in flags:
            isas.add(isa)
    if any(i.startswith("AVX512") for i in isas):
        isas.add("AVX-512")
    return SystemInfo(cpu=model, isas=frozenset(isas),
                      compilers=detect_compilers())


class CompileError(RuntimeError):
    """A native compilation failed; carries the compiler diagnostics."""


def compile_shared_library(source: str, workdir: Path,
                           isas: frozenset[str],
                           compiler: CompilerInfo | None = None,
                           name: str = "kernel") -> Path:
    """Compile C source into a shared library and return its path."""
    system = inspect_system()
    cc = compiler or system.best_compiler
    if cc is None:
        raise CompileError("no C compiler found on this system")
    workdir.mkdir(parents=True, exist_ok=True)
    c_path = workdir / f"{name}.c"
    so_path = workdir / f"{name}.so"
    c_path.write_text(source)
    cmd = [cc.path, *cc.flags_for(isas), str(c_path), "-o", str(so_path)]
    result = subprocess.run(cmd, capture_output=True, text=True, timeout=120)
    if result.returncode != 0:
        raise CompileError(
            f"{cc.name} failed ({' '.join(cmd)}):\n{result.stderr}"
        )
    return so_path
