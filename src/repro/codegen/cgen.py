"""Unparsing: staged computation graphs to C source.

The fourth generated building block.  Every intrinsic node unparses to
its own C invocation (memory containers render as ``(T*)&arr[offset]``),
auxiliary scalar operations render as C expressions, and staged control
flow renders as C loops and conditionals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.base import IntrinsicsDef
from repro.lms.defs import (
    ArrayApply,
    ArrayUpdate,
    BinaryOp,
    Block,
    Convert,
    Def,
    ForLoop,
    IfThenElse,
    ReflectMutable,
    Select,
    Stm,
    UnaryOp,
    VarAssign,
    VarDecl,
    VarRead,
    WhileLoop,
)
from repro.lms.expr import Const, Exp, Sym
from repro.lms.staging import StagedFunction
from repro.lms.types import (
    ArrayType,
    BOOL,
    ScalarType,
    Type,
    VectorType,
    VoidType,
)


class CGenError(RuntimeError):
    """Raised when a graph cannot be unparsed to C."""


def c_type_of(tp: Type) -> str:
    if isinstance(tp, VectorType):
        if tp.kind == "mask":
            return tp.name
        return tp.name
    if isinstance(tp, ScalarType):
        return tp.c_type
    if isinstance(tp, ArrayType):
        return f"{tp.elem.c_type}*"
    if isinstance(tp, VoidType):
        return "void"
    raise CGenError(f"no C type for {tp}")


def _const_c(const: Const) -> str:
    v = const.value
    tp = const.tp
    if isinstance(tp, ScalarType):
        if tp.name == "Boolean":
            return "true" if v else "false"
        if tp.is_float:
            if tp.bits == 32:
                return f"{float(v)!r}f"
            return repr(float(v))
        suffix = ""
        if tp.bits == 64:
            suffix = "ULL" if not tp.signed else "LL"
        elif not tp.signed:
            suffix = "U"
        return f"{int(v)}{suffix}"
    raise CGenError(f"cannot render constant {const!r}")


@dataclass
class _Emitter:
    lines: list[str] = field(default_factory=list)
    indent: int = 1
    headers: set[str] = field(default_factory=lambda: {"stdint.h",
                                                       "stdbool.h"})

    def emit(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def ref(self, exp: Exp) -> str:
        if isinstance(exp, Const):
            if exp.value is None:
                raise CGenError("unit constant has no C rendering")
            return _const_c(exp)
        if isinstance(exp, Sym):
            return f"x{exp.id}"
        raise CGenError(f"cannot reference {exp!r}")

    # -- statements ----------------------------------------------------------

    def stm(self, stm: Stm) -> None:
        rhs = stm.rhs
        sym = stm.sym
        if isinstance(rhs, BinaryOp):
            self._assign(sym, f"{self.ref(rhs.lhs)} {rhs.op} "
                              f"{self.ref(rhs.rhs)}")
        elif isinstance(rhs, UnaryOp):
            op = {"neg": "-", "not": "~"}.get(rhs.op)
            if op is None:
                raise CGenError(f"unknown unary op {rhs.op}")
            self._assign(sym, f"{op}({self.ref(rhs.operand)})")
        elif isinstance(rhs, Convert):
            self._assign(sym, f"({c_type_of(rhs.tp)})"
                              f"({self.ref(rhs.operand)})")
        elif isinstance(rhs, Select):
            cond, a, b = rhs.exp_args
            self._assign(sym, f"{self.ref(cond)} ? {self.ref(a)} : "
                              f"{self.ref(b)}")
        elif isinstance(rhs, ArrayApply):
            self._assign(sym, f"{self.ref(rhs.array)}"
                              f"[{self.ref(rhs.index)}]")
        elif isinstance(rhs, ArrayUpdate):
            self.emit(f"{self.ref(rhs.array)}[{self.ref(rhs.index)}] = "
                      f"{self.ref(rhs.value)};")
        elif isinstance(rhs, VarDecl):
            self.emit(f"{c_type_of(rhs.tp)} x{sym.id} = "
                      f"{self.ref(rhs.init)};")
        elif isinstance(rhs, VarRead):
            self._assign(sym, f"x{rhs.var.id}")
        elif isinstance(rhs, VarAssign):
            self.emit(f"x{rhs.var.id} = {self.ref(rhs.value)};")
        elif isinstance(rhs, ReflectMutable):
            self._assign(sym, self.ref(rhs.source))
        elif isinstance(rhs, ForLoop):
            idx = f"x{rhs.index.id}"
            self.emit(f"for (int32_t {idx} = {self.ref(rhs.start)}; "
                      f"{idx} < {self.ref(rhs.end)}; "
                      f"{idx} += {self.ref(rhs.step)}) {{")
            self._block_body(rhs.body)
            self.emit("}")
        elif isinstance(rhs, IfThenElse):
            has_result = not isinstance(rhs.tp, VoidType)
            if has_result:
                self.emit(f"{c_type_of(rhs.tp)} x{sym.id};")
            self.emit(f"if ({self.ref(rhs.cond)}) {{")
            self._branch(rhs.then_block, sym if has_result else None)
            self.emit("} else {")
            self._branch(rhs.else_block, sym if has_result else None)
            self.emit("}")
        elif isinstance(rhs, WhileLoop):
            self.emit("while (1) {")
            self.indent += 1
            for inner in rhs.cond_block.stms:
                self.stm(inner)
            self.emit(f"if (!({self.ref(rhs.cond_block.result)})) break;")
            self.indent -= 1
            self._block_body(rhs.body)
            self.emit("}")
        elif isinstance(rhs, IntrinsicsDef):
            self._intrinsic(sym, rhs)
        else:
            raise CGenError(f"cannot unparse node {type(rhs).__name__}")

    def _assign(self, sym: Sym, expr: str) -> None:
        self.emit(f"{c_type_of(sym.tp)} x{sym.id} = {expr};")

    def _block_body(self, block: Block) -> None:
        self.indent += 1
        for stm in block.stms:
            self.stm(stm)
        self.indent -= 1

    def _branch(self, block: Block, result_sym: Sym | None) -> None:
        self.indent += 1
        for stm in block.stms:
            self.stm(stm)
        if result_sym is not None:
            self.emit(f"x{result_sym.id} = {self.ref(block.result)};")
        self.indent -= 1

    def _intrinsic(self, sym: Sym, rhs: IntrinsicsDef) -> None:
        self.headers.add(rhs.header)
        mem_idx = rhs.mem_indices()
        n_regular = len(rhs.params_meta)
        offsets = rhs.args[n_regular:]
        rendered: list[str] = []
        mem_seen = 0
        for i, arg in enumerate(rhs.args[:n_regular]):
            varname, c_type, kind = rhs.params_meta[i]
            if kind == "mem":
                offset = offsets[mem_seen]
                mem_seen += 1
                arr = self.ref(arg)  # the array symbol
                off = self.ref(offset)
                self.headers.add(rhs.header)
                rendered.append(f"({c_type})&{arr}[{off}]")
            elif isinstance(arg, Exp):
                rendered.append(self.ref(arg))
            else:
                rendered.append(str(int(arg)))
        call = f"{rhs.intrinsic_name}({', '.join(rendered)})"
        if isinstance(rhs.tp, VoidType):
            self.emit(f"{call};")
        else:
            self._assign(sym, call)


EXPORT_PREFIX = "repro_native_"

#: Suffix of the batched entry point emitted next to every export.
BATCH_SUFFIX = "__batch"


def emit_batch_wrapper(staged: StagedFunction, fn_name: str) -> str:
    """The batched entry point: one native call executing ``n`` packed
    argument sets (DESIGN.md §13).

    ``argv`` is a flat ``void*[n * nargs]`` table — array arguments
    contribute their data pointers directly (zero-copy), scalars point
    into the caller's packed arena — and non-void results land in
    ``out`` (an ``n``-element array of the result type).  The wrapper
    is what lets the managed side amortize the Python→native boundary
    tax across a whole batch: N invocations cost one ctypes call.
    """
    nargs = len(staged.params)
    casts = []
    for j, sym in enumerate(staged.params):
        cell = f"repro_a[{j}]"
        if isinstance(sym.tp, ArrayType):
            casts.append(f"({c_type_of(sym.tp)}){cell}")
        else:
            casts.append(f"*({c_type_of(sym.tp)}*){cell}")
    call = f"{fn_name}({', '.join(casts)})"
    ret_c = c_type_of(staged.result_type)
    if isinstance(staged.result_type, VoidType):
        store = f"{call};"
        out_use = "    (void)repro_out;\n"
    else:
        store = f"(({ret_c}*)repro_out)[repro_i] = {call};"
        out_use = ""
    argv_use = "    (void)repro_argv;\n" if nargs == 0 else ""
    return (
        f"void {fn_name}{BATCH_SUFFIX}(int64_t repro_n, "
        f"void** repro_argv, void* repro_out) {{\n"
        f"{out_use}{argv_use}"
        f"    for (int64_t repro_i = 0; repro_i < repro_n; "
        f"++repro_i) {{\n"
        f"        void** repro_a = repro_argv + repro_i * {nargs};\n"
        f"        {store}\n"
        f"    }}\n"
        f"}}\n"
    )


def emit_c_source(staged: StagedFunction,
                  export_name: str | None = None) -> str:
    """Unparse a staged function into a complete C translation unit.

    The exported symbol is ``repro_native_<name>`` — the analog of JNI's
    ``Java_<package>_<class>_<method>`` naming convention, which the
    paper automates with Scala macros and we automate here.  When an
    ``export_name`` is given (the compile-and-link path), a second
    ``<export_name>__batch`` symbol is emitted that executes ``n``
    packed argument sets in one call (see :func:`emit_batch_wrapper`);
    display-only emission (no export name) stays wrapper-free.
    """
    body = staged.scheduled()
    em = _Emitter()
    for stm in body.stms:
        em.stm(stm)

    params = []
    for sym, name in zip(staged.params, staged.param_names):
        params.append(f"{c_type_of(sym.tp)} x{sym.id} /* {name} */")
    ret_c = c_type_of(staged.result_type)
    if not isinstance(staged.result_type, VoidType):
        em.emit(f"return {em.ref(body.result)};")

    fn_name = export_name or (EXPORT_PREFIX + staged.name)
    includes = "\n".join(f"#include <{h}>"
                         for h in sorted(em.headers))
    sig = ", ".join(params) if params else "void"
    batch = "\n" + emit_batch_wrapper(staged, fn_name) \
        if export_name is not None else ""
    return (
        f"{includes}\n\n"
        f"{ret_c} {fn_name}({sig}) {{\n"
        + "\n".join(em.lines)
        + "\n}\n"
        + batch
    )
