"""Linking generated native code into the runtime (the JNI analog).

The paper links LMS-generated C into the JVM through JNI, automating the
``Java_<pkg>_<class>_<method>`` naming with Scala macros.  The Python
analog is ``ctypes``: arrays are passed as pointers into the numpy
buffers (the equivalent of ``GetPrimitiveArrayCritical`` pinning — numpy
arrays never move, so the GC-copy caveat of Section 3.5 does not arise),
scalars are marshalled by value, and the exported symbol name is derived
automatically from the staged function.
"""

from __future__ import annotations

import ctypes
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro.codegen.cgen import EXPORT_PREFIX, emit_c_source
from repro.codegen.compiler import (
    CompileError,
    SystemInfo,
    compile_shared_library,
    inspect_system,
)
from repro.lms.staging import StagedFunction
from repro.lms.types import ArrayType, ScalarType, Type, VectorType, VoidType

_CTYPE_BY_SCALAR = {
    "Float": ctypes.c_float, "Double": ctypes.c_double,
    "Byte": ctypes.c_int8, "Short": ctypes.c_int16,
    "Int": ctypes.c_int32, "Long": ctypes.c_int64,
    "Char": ctypes.c_uint16, "Boolean": ctypes.c_bool,
    "UByte": ctypes.c_uint8, "UShort": ctypes.c_uint16,
    "UInt": ctypes.c_uint32, "ULong": ctypes.c_uint64,
}


class NativeLinkError(RuntimeError):
    """Raised when a staged function cannot be linked natively."""


def _ctype_for(tp: Type):
    if isinstance(tp, ScalarType):
        return _CTYPE_BY_SCALAR[tp.name]
    if isinstance(tp, ArrayType):
        return ctypes.POINTER(_CTYPE_BY_SCALAR[tp.elem.name])
    if isinstance(tp, VoidType):
        return None
    if isinstance(tp, VectorType):
        raise NativeLinkError(
            "vector values cannot cross the native boundary; return "
            "scalars or write into arrays"
        )
    raise NativeLinkError(f"no ctypes mapping for {tp}")


@dataclass
class NativeKernel:
    """A compiled-and-linked staged function."""

    staged: StagedFunction
    c_source: str
    library_path: Path
    symbol: str
    _fn: Any
    system: SystemInfo

    def __call__(self, *args: Any) -> Any:
        if len(args) != len(self.staged.params):
            raise TypeError(
                f"{self.staged.name} expects {len(self.staged.params)} "
                f"arguments, got {len(args)}"
            )
        converted = []
        for param, value in zip(self.staged.params, args):
            if isinstance(param.tp, ArrayType):
                if not isinstance(value, np.ndarray):
                    raise TypeError(f"expected numpy array for {param!r}")
                expected = param.tp.elem.np_dtype
                if value.dtype != expected:
                    raise TypeError(
                        f"array for {param!r} must have dtype {expected}"
                    )
                if not value.flags["C_CONTIGUOUS"]:
                    raise TypeError("arrays must be C-contiguous")
                converted.append(value.ctypes.data_as(
                    ctypes.POINTER(_CTYPE_BY_SCALAR[param.tp.elem.name])))
            else:
                converted.append(value)
        return self._fn(*converted)


def required_isas(staged: StagedFunction) -> frozenset[str]:
    """The ISAs a staged function's intrinsics need, from their CPUIDs."""
    from repro.isa.base import IntrinsicsDef
    from repro.lms.defs import iter_defs
    from repro.spec.catalog import all_entries

    by_name = {e.name: e for e in all_entries("3.4")}
    needed: set[str] = set()
    for stm, _ in iter_defs(staged.body):
        if isinstance(stm.rhs, IntrinsicsDef):
            spec = by_name.get(stm.rhs.intrinsic_name)
            if spec:
                needed.update(spec.cpuids)
    return frozenset(needed)


def compile_to_native(staged: StagedFunction,
                      workdir: str | Path | None = None,
                      check_isas: bool = True) -> NativeKernel:
    """Generate C, compile it and link it back (Figure 3's runtime path)."""
    system = inspect_system()
    if system.best_compiler is None:
        raise NativeLinkError("no C compiler available")

    isas = required_isas(staged)
    if check_isas:
        unsupported = {i for i in isas
                       if i not in system.isas and i not in ("SVML", "KNCNI")}
        if unsupported:
            raise NativeLinkError(
                f"host CPU lacks ISAs {sorted(unsupported)} required by "
                f"{staged.name}"
            )
        if "SVML" in isas and system.best_compiler.name != "icc":
            raise NativeLinkError(
                "SVML intrinsics need the Intel compiler; use the "
                "simulator backend"
            )

    symbol = EXPORT_PREFIX + staged.name
    source = emit_c_source(staged, export_name=symbol)
    wd = Path(workdir) if workdir is not None else \
        Path(tempfile.mkdtemp(prefix="repro-native-"))
    so_path = compile_shared_library(source, wd, isas, name=staged.name)

    lib = ctypes.CDLL(str(so_path))
    fn = getattr(lib, symbol)
    fn.argtypes = [_ctype_for(p.tp) for p in staged.params]
    fn.restype = _ctype_for(staged.result_type)
    return NativeKernel(staged=staged, c_source=source,
                        library_path=so_path, symbol=symbol, _fn=fn,
                        system=system)
