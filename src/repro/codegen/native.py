"""Linking generated native code into the runtime (the JNI analog).

The paper links LMS-generated C into the JVM through JNI, automating the
``Java_<pkg>_<class>_<method>`` naming with Scala macros.  The Python
analog is ``ctypes``: arrays are passed as pointers into the numpy
buffers (the equivalent of ``GetPrimitiveArrayCritical`` pinning — numpy
arrays never move, so the GC-copy caveat of Section 3.5 does not arise),
scalars are marshalled by value, and the exported symbol name is derived
automatically from the staged function.
"""

from __future__ import annotations

import atexit
import ctypes
import itertools
import os
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

import numpy as np

import repro.obs as obs
from repro.core import faults
from repro.core.procutil import pid_alive
from repro.codegen.cgen import BATCH_SUFFIX, EXPORT_PREFIX, emit_c_source
from repro.codegen.compiler import (
    CompileAttempt,
    CompilerInfo,
    SystemInfo,
    compile_with_fallback,
    compiler_chain,
    inspect_system,
)
from repro.lms.staging import StagedFunction
from repro.lms.types import ArrayType, ScalarType, Type, VectorType, VoidType

_CTYPE_BY_SCALAR = {
    "Float": ctypes.c_float, "Double": ctypes.c_double,
    "Byte": ctypes.c_int8, "Short": ctypes.c_int16,
    "Int": ctypes.c_int32, "Long": ctypes.c_int64,
    "Char": ctypes.c_uint16, "Boolean": ctypes.c_bool,
    "UByte": ctypes.c_uint8, "UShort": ctypes.c_uint16,
    "UInt": ctypes.c_uint32, "ULong": ctypes.c_uint64,
}


class NativeLinkError(RuntimeError):
    """Raised when a staged function cannot be linked natively."""


def _ctype_for(tp: Type):
    if isinstance(tp, ScalarType):
        return _CTYPE_BY_SCALAR[tp.name]
    if isinstance(tp, ArrayType):
        return ctypes.POINTER(_CTYPE_BY_SCALAR[tp.elem.name])
    if isinstance(tp, VoidType):
        return None
    if isinstance(tp, VectorType):
        raise NativeLinkError(
            "vector values cannot cross the native boundary; return "
            "scalars or write into arrays"
        )
    raise NativeLinkError(f"no ctypes mapping for {tp}")


def _array_converter(param) -> Any:
    """One array parameter's marshalling closure.

    Everything decidable from the signature — the kind test, the
    expected dtype object, the ctypes pointer type — is resolved here,
    once, instead of on every call (the old path re-indexed
    ``_CTYPE_BY_SCALAR`` and re-derived ``np_dtype`` per argument per
    call).  The per-call residue is three checks and one ``data_as``.
    """
    expected = param.tp.elem.np_dtype
    ptr_type = ctypes.POINTER(_CTYPE_BY_SCALAR[param.tp.elem.name])

    def convert(value: Any) -> Any:
        if not isinstance(value, np.ndarray):
            raise TypeError(f"expected numpy array for {param!r}")
        if value.dtype != expected:
            raise TypeError(
                f"array for {param!r} must have dtype {expected}"
            )
        if not value.flags["C_CONTIGUOUS"]:
            raise TypeError("arrays must be C-contiguous")
        return value.ctypes.data_as(ptr_type)

    return convert


def marshalling_plan(staged: StagedFunction) -> tuple:
    """The per-parameter converter tuple for a staged function's export.

    ``None`` entries pass through untouched (scalars are marshalled by
    the ``argtypes`` ctypes already carries); array entries are
    specialized closures from :func:`_array_converter`.  A warm native
    call is then a tuple-walk plus one ctypes invocation.
    """
    return tuple(
        _array_converter(p) if isinstance(p.tp, ArrayType) else None
        for p in staged.params)


def _batch_array_packer(param) -> Any:
    """One array parameter's *batch* marshalling closure: the same
    validation as :func:`_array_converter` but yielding the raw data
    address for the ``void**`` table — the array payload itself never
    moves (zero-copy)."""
    expected = param.tp.elem.np_dtype

    def pack(value: Any) -> int:
        if not isinstance(value, np.ndarray):
            raise TypeError(f"expected numpy array for {param!r}")
        if value.dtype != expected:
            raise TypeError(
                f"array for {param!r} must have dtype {expected}"
            )
        if not value.flags["C_CONTIGUOUS"]:
            raise TypeError("arrays must be C-contiguous")
        return value.ctypes.data

    return pack


def batch_marshalling_plan(staged: StagedFunction) -> tuple:
    """The batch-shape marshalling plan: one entry per parameter.

    Array entries are :func:`_batch_array_packer` closures (pointer
    extraction, zero-copy); scalar entries are the numpy dtype their
    values are packed into the arena with (one contiguous pack per
    batch).
    """
    plan = []
    for p in staged.params:
        if isinstance(p.tp, ArrayType):
            plan.append(("array", _batch_array_packer(p)))
        elif isinstance(p.tp, ScalarType):
            plan.append(("scalar", p.tp.np_dtype))
        else:  # pragma: no cover - link_native refuses these already
            raise NativeLinkError(f"no batch marshalling for {p.tp}")
    return tuple(plan)


class _BatchArena:
    """The reusable buffers behind one kernel's batched calls.

    Holds the ``void**`` argument table, one packed column per scalar
    parameter and (for non-void kernels) the result column.  Buffers
    grow geometrically to the largest batch seen and are reused for
    every later flush — a warm batched call allocates nothing.  The
    arena lock serializes packing *and* the native call, so concurrent
    flushers never tear each other's tables; contention is bounded by
    the batching layer, which flushes one batch per kernel at a time.
    """

    __slots__ = ("lock", "capacity", "argv", "scalars", "out",
                 "_nargs", "_plan", "_out_dtype")

    def __init__(self, plan: tuple, out_dtype: np.dtype | None) -> None:
        self.lock = threading.Lock()
        self.capacity = 0
        self._nargs = len(plan)
        self._plan = plan
        self._out_dtype = out_dtype
        self.argv: np.ndarray | None = None
        self.scalars: dict[int, np.ndarray] = {}
        self.out: np.ndarray | None = None

    def reserve(self, n: int) -> None:
        """Grow the buffers to hold ``n`` argument sets (lock held)."""
        if n <= self.capacity:
            return
        cap = max(n, self.capacity * 2, 16)
        self.argv = np.empty(max(cap * self._nargs, 1), dtype=np.uintp)
        self.scalars = {
            j: np.empty(cap, dtype=dt)
            for j, (kind, dt) in enumerate(self._plan)
            if kind == "scalar"
        }
        if self._out_dtype is not None:
            self.out = np.empty(cap, dtype=self._out_dtype)
        self.capacity = cap


@dataclass
class NativeKernel:
    """A compiled-and-linked staged function.

    The marshalling plan is memoized on the instance at construction
    (``__post_init__``), so the dispatch fast path does no per-call
    type dispatch beyond the plan's own checks.  When the artifact
    carries the batched entry point (``<symbol>__batch``),
    :meth:`call_batch` executes N argument sets in one native call
    through the batch-shape plan; artifacts linked from older caches
    fall back to a per-call loop transparently.
    """

    staged: StagedFunction
    c_source: str
    library_path: Path
    symbol: str
    _fn: Any
    system: SystemInfo
    _plan: tuple = field(default=(), repr=False, compare=False)
    _batch_fn: Any = field(default=None, repr=False, compare=False)
    _batch_plan: tuple = field(default=(), repr=False, compare=False)
    _arena: Any = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        self._plan = marshalling_plan(self.staged)

    def __call__(self, *args: Any) -> Any:
        plan = self._plan
        if len(args) != len(plan):
            raise TypeError(
                f"{self.staged.name} expects {len(plan)} "
                f"arguments, got {len(args)}"
            )
        return self._fn(*[value if convert is None else convert(value)
                          for convert, value in zip(plan, args)])

    @property
    def supports_batch(self) -> bool:
        """Whether the linked artifact exports the batched entry point."""
        return self._batch_fn is not None

    def _ensure_arena(self) -> "_BatchArena":
        arena = self._arena
        if arena is None:
            out_dtype = None
            tp = self.staged.result_type
            if isinstance(tp, ScalarType):
                out_dtype = tp.np_dtype
            if self._batch_plan == ():
                self._batch_plan = batch_marshalling_plan(self.staged)
            arena = _BatchArena(self._batch_plan, out_dtype)
            self._arena = arena
        return arena

    def call_batch(self, args_seq: Sequence[Sequence[Any]]) -> list:
        """Execute ``args_seq`` (N argument tuples) in one native call.

        Argument packing is batch-atomic: every entry is validated and
        packed before the native call runs, so an invalid entry raises
        without executing anything.  Array payloads are never copied —
        their data pointers go straight into the ``void**`` table;
        scalars are packed once into the reusable arena.  Without the
        batched symbol (artifacts published before it existed) this
        degrades to a per-call loop with identical results.
        """
        entries = [tuple(args) for args in args_seq]
        n = len(entries)
        if n == 0:
            return []
        if self._batch_fn is None:
            return [self(*args) for args in entries]
        nargs = len(self.staged.params)
        for args in entries:
            if len(args) != nargs:
                raise TypeError(
                    f"{self.staged.name} expects {nargs} "
                    f"arguments, got {len(args)}"
                )
        arena = self._ensure_arena()
        with arena.lock:
            arena.reserve(n)
            argv = arena.argv
            for j, (kind, spec) in enumerate(self._batch_plan):
                if kind == "array":
                    argv[j:n * nargs:nargs] = \
                        [spec(args[j]) for args in entries]
                else:
                    column = arena.scalars[j]
                    column[:n] = [args[j] for args in entries]
                    base = column.ctypes.data
                    argv[j:n * nargs:nargs] = \
                        base + column.itemsize * np.arange(n,
                                                           dtype=np.uintp)
            out = arena.out
            out_ptr = ctypes.c_void_p(out.ctypes.data) \
                if out is not None else ctypes.c_void_p(0)
            self._batch_fn(
                n, argv.ctypes.data_as(ctypes.POINTER(ctypes.c_void_p)),
                out_ptr)
            if out is None:
                return [None] * n
            # .tolist() yields the same Python values ctypes' restype
            # conversion produces for the single-call path
            return out[:n].tolist()


def required_isas(staged: StagedFunction,
                  version: str | None = None) -> frozenset[str]:
    """The ISAs a staged function's intrinsics need, from their CPUIDs.

    ``version`` selects the spec release to resolve intrinsics against;
    it defaults to ``REPRO_SPEC_VERSION`` and then to the registry's
    default, so Table-3 version experiments exercise the real link path.
    """
    from repro.isa.base import IntrinsicsDef
    from repro.lms.defs import iter_defs
    from repro.spec.catalog import all_entries
    from repro.spec.versions import DEFAULT_VERSION

    version = (version or os.environ.get("REPRO_SPEC_VERSION")
               or DEFAULT_VERSION)
    by_name = {e.name: e for e in all_entries(version)}
    needed: set[str] = set()
    for stm, _ in iter_defs(staged.body):
        if isinstance(stm.rhs, IntrinsicsDef):
            spec = by_name.get(stm.rhs.intrinsic_name)
            if spec:
                needed.update(spec.cpuids)
    return frozenset(needed)


def check_kernel_isas(name: str, isas: frozenset[str], system: SystemInfo,
                      compilers: Sequence[CompilerInfo]) -> None:
    """Raise :class:`NativeLinkError` if the host cannot run or no
    available compiler can build a kernel needing ``isas``."""
    unsupported = {i for i in isas
                   if i not in system.isas and i not in ("SVML", "KNCNI")}
    if unsupported:
        raise NativeLinkError(
            f"host CPU lacks ISAs {sorted(unsupported)} required by {name}"
        )
    if "SVML" in isas and not any(c.name == "icc" for c in compilers):
        raise NativeLinkError(
            "SVML intrinsics need the Intel compiler; use the "
            "simulator backend"
        )


_session_root: Path | None = None
_session_lock = threading.Lock()
_build_seq = itertools.count()

#: Unstamped session roots older than this are treated as leaked.
_SWEEP_AGE_S = 3600.0


def _sweep_leaked_workdirs(base: Path) -> int:
    """Remove ``repro-native-*`` session roots leaked by killed
    processes (their atexit cleanup never ran).

    A root is leaked when its ``owner.pid`` stamp names a dead process,
    or when it carries no stamp and has gone untouched for an hour
    (pre-stamp leftovers).  Runs once per session, when this process
    creates its own root.
    """
    swept = 0
    try:
        candidates = list(base.glob("repro-native-*"))
    except OSError:
        return 0
    for root in candidates:
        if not root.is_dir():
            continue
        stamp = root / "owner.pid"
        try:
            pid = int(stamp.read_text().strip())
        except (OSError, ValueError):
            pid = None
        if pid is not None:
            if pid == os.getpid() or pid_alive(pid):
                continue
        else:
            try:
                age = time.time() - root.stat().st_mtime
            except OSError:
                continue
            if age < _SWEEP_AGE_S:
                continue
        shutil.rmtree(root, ignore_errors=True)
        swept += 1
    if swept:
        obs.counter("native.workdirs_swept", swept)
    return swept


def _session_workdir(name: str) -> Path:
    """A per-build directory under one atexit-cleaned session root.

    Replaces the old leak where every ``compile_to_native`` call left a
    ``tempfile.mkdtemp`` behind for the life of the machine; persistent
    artifacts belong to the disk kernel cache instead.  Root creation
    is locked — background compile workers race through here.  Each
    root is stamped with its owner pid so a later process can sweep
    roots whose owners were killed before atexit ran.
    """
    global _session_root
    with _session_lock:
        if _session_root is None or not _session_root.exists():
            _session_root = Path(tempfile.mkdtemp(prefix="repro-native-"))
            try:
                (_session_root / "owner.pid").write_text(str(os.getpid()))
            except OSError:
                pass
            atexit.register(shutil.rmtree, str(_session_root),
                            ignore_errors=True)
            _sweep_leaked_workdirs(_session_root.parent)
        root = _session_root
    wd = root / f"{next(_build_seq):04d}-{name}"
    wd.mkdir(parents=True, exist_ok=True)
    return wd


@dataclass
class NativeArtifact:
    """A compiled-but-not-yet-linked kernel: the unit the resilience
    layer smoke-tests in a forked child before trusting it in-process."""

    staged: StagedFunction
    c_source: str
    so_path: Path
    symbol: str
    isas: frozenset[str]
    system: SystemInfo
    compiler: CompilerInfo | None = None
    flags: tuple[str, ...] = ()


def build_native(staged: StagedFunction,
                 workdir: str | Path | None = None,
                 check_isas: bool = True,
                 compilers: Sequence[CompilerInfo] | None = None,
                 attempts: list[CompileAttempt] | None = None,
                 max_retries: int | None = None,
                 deadline: float | None = None) -> NativeArtifact:
    """Generate C and compile it down the fallback ladder — no linking.

    The returned artifact has not been loaded into this process; link
    it with :func:`link_native` (or let
    :func:`repro.core.resilience.acquire_native` smoke-test it first).
    ``deadline`` (absolute ``time.monotonic()``) bounds the whole
    ladder walk; see :func:`compile_with_fallback`.
    """
    system = inspect_system()
    ccs = list(compilers) if compilers is not None \
        else list(compiler_chain(system))
    if not ccs:
        raise NativeLinkError("no C compiler available")

    isas = required_isas(staged)
    if check_isas:
        check_kernel_isas(staged.name, isas, system, ccs)

    symbol = EXPORT_PREFIX + staged.name
    with obs.span("emit", kernel=staged.name):
        source = emit_c_source(staged, export_name=symbol)
    wd = Path(workdir) if workdir is not None else \
        _session_workdir(staged.name)
    with obs.span("compile", kernel=staged.name) as compile_span:
        so_path, cc, flags = compile_with_fallback(
            source, wd, isas, required=isas, compilers=ccs,
            name=staged.name, attempts=attempts, max_retries=max_retries,
            deadline=deadline)
        compile_span.set("compiler", cc.name)
        compile_span.set("flags", flags)
    return NativeArtifact(staged=staged, c_source=source, so_path=so_path,
                          symbol=symbol, isas=isas, system=system,
                          compiler=cc, flags=flags)


def ctype_signature(staged: StagedFunction) -> tuple[list, Any]:
    """The ctypes ``(argtypes, restype)`` of a staged function's export."""
    return ([_ctype_for(p.tp) for p in staged.params],
            _ctype_for(staged.result_type))


def link_native(artifact: NativeArtifact) -> NativeKernel:
    """Load an artifact's shared library into this process via ctypes."""
    faults.maybe_raise("link.fail", NativeLinkError,
                       f"injected link failure for {artifact.symbol}")
    try:
        lib = ctypes.CDLL(str(artifact.so_path))
        fn = getattr(lib, artifact.symbol)
    except (OSError, AttributeError) as exc:
        raise NativeLinkError(
            f"cannot link {artifact.so_path}: {exc}") from exc
    fn.argtypes, fn.restype = ctype_signature(artifact.staged)
    # The batched entry point is optional: artifacts published before
    # it existed still link, they just batch via a per-call loop.
    batch_fn = getattr(lib, artifact.symbol + BATCH_SUFFIX, None)
    if batch_fn is not None:
        batch_fn.argtypes = [ctypes.c_int64,
                             ctypes.POINTER(ctypes.c_void_p),
                             ctypes.c_void_p]
        batch_fn.restype = None
    return NativeKernel(staged=artifact.staged, c_source=artifact.c_source,
                        library_path=artifact.so_path,
                        symbol=artifact.symbol, _fn=fn,
                        system=artifact.system, _batch_fn=batch_fn)


def compile_to_native(staged: StagedFunction,
                      workdir: str | Path | None = None,
                      check_isas: bool = True) -> NativeKernel:
    """Generate C, compile it and link it back (Figure 3's runtime path).

    This is the direct, trusting path: no smoke-run, no quarantine, no
    disk cache.  The managed pipeline (:mod:`repro.core.pipeline`) goes
    through :func:`repro.core.resilience.acquire_native` instead.
    """
    return link_native(build_native(staged, workdir=workdir,
                                    check_isas=check_isas))
