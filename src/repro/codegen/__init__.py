"""C code generation and the native compile-and-link pipeline.

The runtime half of the paper's Figure 3: unparse the staged computation
graph to C (building block 4), inspect the system (CPUID-derived ISAs,
available compilers and flags), compile a shared library, and link it
back into the managed runtime — here via ``ctypes``, the Python analog of
JNI, including the automatic name binding the paper implements with Scala
macros and reflection.
"""

from repro.codegen.cgen import emit_c_source
from repro.codegen.compiler import (
    CompilerInfo,
    SystemInfo,
    detect_compilers,
    inspect_system,
)
from repro.codegen.native import NativeKernel, compile_to_native

__all__ = [
    "CompilerInfo",
    "NativeKernel",
    "SystemInfo",
    "compile_to_native",
    "detect_compilers",
    "emit_c_source",
    "inspect_system",
]
