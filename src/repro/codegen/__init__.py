"""C code generation and the native compile-and-link pipeline.

The runtime half of the paper's Figure 3: unparse the staged computation
graph to C (building block 4), inspect the system (CPUID-derived ISAs,
available compilers and flags), compile a shared library, and link it
back into the managed runtime — here via ``ctypes``, the Python analog of
JNI, including the automatic name binding the paper implements with Scala
macros and reflection.
"""

from repro.codegen.cgen import emit_c_source
from repro.codegen.compiler import (
    CompileAttempt,
    CompileError,
    CompilerInfo,
    PermanentCompileError,
    SystemInfo,
    TransientCompileError,
    compile_with_fallback,
    compiler_chain,
    detect_compilers,
    flag_ladder,
    inspect_system,
)
from repro.codegen.native import (
    NativeArtifact,
    NativeKernel,
    build_native,
    compile_to_native,
    link_native,
)

__all__ = [
    "CompileAttempt",
    "CompileError",
    "CompilerInfo",
    "NativeArtifact",
    "NativeKernel",
    "PermanentCompileError",
    "SystemInfo",
    "TransientCompileError",
    "build_native",
    "compile_to_native",
    "compile_with_fallback",
    "compiler_chain",
    "detect_compilers",
    "emit_c_source",
    "flag_ladder",
    "inspect_system",
    "link_native",
]
