"""``repro.obs`` — end-to-end observability for the kernel pipeline.

One process-wide :class:`~repro.obs.core.Tracer` and
:class:`~repro.obs.core.MetricsRegistry` sit behind module-level
helpers; the instrumentation threaded through ``repro.core``,
``repro.codegen`` and ``repro.simd`` calls these and nothing else, so
disabling observability (``REPRO_OBS=0``) reduces every site to an
environment lookup and a branch.

Span taxonomy (DESIGN.md §8): a ``pipeline`` root per
``compile_staged`` call with ``stage`` → ``acquire`` (``disk_probe``,
``emit``, ``compile`` with one ``compile.attempt`` child per compiler
invocation, ``smoke``, ``link``) → ``lower`` children.

Environment:

* ``REPRO_OBS`` — master switch (default on).
* ``REPRO_OBS_TRACE_PATH`` — if set, the ring buffer and a metrics
  snapshot are flushed there as JSONL at interpreter exit.
* ``REPRO_OBS_RING`` — finished-span ring capacity (default 4096).
* ``REPRO_OBS_PROFILE`` — opt-in simulator instruction-mix profiling.

``python -m repro.obs report trace.jsonl`` renders a recorded trace:
span tree, top counters, cache ratios, compile-ladder outcomes.
"""

from __future__ import annotations

import atexit
import os
from pathlib import Path
from typing import Any

from repro.obs.core import (
    NULL_SPAN,
    MetricsRegistry,
    Span,
    Tracer,
    obs_enabled,
    profile_enabled,
    read_jsonl,
    write_jsonl,
)

__all__ = [
    "MetricsRegistry",
    "Span",
    "Tracer",
    "counter",
    "event",
    "export_trace",
    "gauge",
    "get_registry",
    "get_tracer",
    "obs_enabled",
    "observe",
    "profile_enabled",
    "prometheus_text",
    "read_jsonl",
    "reset",
    "span",
]

_tracer = Tracer()
_registry = MetricsRegistry()


def get_tracer() -> Tracer:
    return _tracer


def get_registry() -> MetricsRegistry:
    return _registry


def span(name: str, **attrs: Any):
    """Start a span context manager (no-op when ``REPRO_OBS=0``)."""
    if not obs_enabled():
        return NULL_SPAN
    return _tracer.span(name, **attrs)


def event(name: str, **attrs: Any) -> None:
    """Record a zero-duration span."""
    if obs_enabled():
        _tracer.event(name, **attrs)


def counter(name: str, value: float = 1.0, **labels: Any) -> None:
    """Increment a counter cell."""
    if obs_enabled():
        _registry.inc(name, value, **labels)


def gauge(name: str, value: float, **labels: Any) -> None:
    if obs_enabled():
        _registry.set_gauge(name, value, **labels)


def observe(name: str, value: float, **labels: Any) -> None:
    """Record a histogram observation (seconds-scaled default buckets)."""
    if obs_enabled():
        _registry.observe(name, value, **labels)


def prometheus_text() -> str:
    return _registry.prometheus_text()


def export_trace(path: str | Path) -> Path:
    """Write the current ring buffer + metrics snapshot as JSONL."""
    return write_jsonl(path, _tracer.finished_spans(), _registry)


def reset() -> None:
    """Drop all recorded spans and metrics (test hook)."""
    _tracer.clear()
    _registry.reset()


@atexit.register
def _flush_at_exit() -> None:   # pragma: no cover - exercised in subprocess
    path = os.environ.get("REPRO_OBS_TRACE_PATH")
    if not path or not obs_enabled():
        return
    try:
        export_trace(path)
    except OSError:
        pass
