"""Render a recorded (or in-memory) trace as a human-readable summary.

``python -m repro.obs report trace.jsonl`` prints:

* the span tree (indented, durations in ms, interesting attributes),
* the top counters by value,
* cache hit ratios (memory and disk tiers),
* compile-ladder outcomes (ok / transient / permanent / retries /
  downgrades).

The same renderer backs :meth:`repro.core.pipeline.CompiledKernel.explain`.
"""

from __future__ import annotations

import argparse
import sys
from typing import Iterable, Mapping, Sequence

from repro.obs.core import Span, read_jsonl

# Attributes worth showing inline in the span tree.
_SHOWN_ATTRS = ("kernel", "backend", "compiler", "rung", "flags",
                "outcome", "verdict", "status", "cache_source", "error",
                "reason", "requested")


def build_tree(spans: Sequence[Span]
               ) -> tuple[list[Span], dict[int, list[Span]]]:
    """Return ``(roots, children_by_span_id)`` in start order.

    A span whose parent is missing from ``spans`` (evicted from the
    ring, or recorded by another trace) is promoted to a root so the
    tree never silently drops data.
    """
    by_id = {s.span_id: s for s in spans}
    children: dict[int, list[Span]] = {}
    roots: list[Span] = []
    for s in sorted(spans, key=lambda s: (s.start_ns, s.span_id)):
        if s.parent_id is not None and s.parent_id in by_id:
            children.setdefault(s.parent_id, []).append(s)
        else:
            roots.append(s)
    return roots, children


def _attr_suffix(span: Span) -> str:
    parts = []
    for key in _SHOWN_ATTRS:
        if key in span.attrs:
            value = span.attrs[key]
            if isinstance(value, (list, tuple)):
                value = " ".join(str(v) for v in value)
            parts.append(f"{key}={value}")
    return ("  [" + ", ".join(parts) + "]") if parts else ""


def render_span_tree(spans: Sequence[Span]) -> str:
    roots, children = build_tree(spans)
    lines: list[str] = []

    def walk(span: Span, depth: int) -> None:
        mark = "!" if span.status == "error" else ""
        lines.append(f"{'  ' * depth}{span.name}{mark} "
                     f"({span.duration_ms:.2f} ms){_attr_suffix(span)}")
        for child in children.get(span.span_id, []):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(lines)


def _cache_ratio(counters: Mapping[str, float], tier: str) -> str:
    hits = counters.get(f"cache.{tier}.hits", 0.0)
    misses = counters.get(f"cache.{tier}.misses", 0.0)
    total = hits + misses
    if total == 0:
        return f"{tier:4s}: no traffic"
    return (f"{tier:4s}: {int(hits)} hits / {int(misses)} misses "
            f"({100.0 * hits / total:.1f}% hit rate)")


def _ladder_summary(counters: Mapping[str, float]) -> list[str]:
    outcomes = {"ok": 0.0, "transient": 0.0, "permanent": 0.0}
    for cell, value in counters.items():
        if cell.startswith("compile.attempts{"):
            for outcome in outcomes:
                if f"outcome={outcome}" in cell:
                    outcomes[outcome] += value
    retries = counters.get("compile.retries", 0.0)
    downgrades = counters.get("compile.downgrades", 0.0)
    lines = ["  ".join(f"{k}={int(v)}" for k, v in outcomes.items())
             + f"  retries={int(retries)}  downgrades={int(downgrades)}"]
    for cell, value in sorted(counters.items()):
        if cell.startswith("smoke.verdicts"):
            lines.append(f"{cell} = {int(value)}")
    quarantines = counters.get("quarantine.events", 0.0)
    if quarantines:
        lines.append(f"quarantine.events = {int(quarantines)}")
    return lines


_BREAKER_STATE_NAMES = {0: "closed", 1: "half-open", 2: "open"}


def _resilience_summary(counters: Mapping[str, float],
                        gauges: Mapping[str, float]) -> list[str]:
    """Fault injection, watchdog and circuit-breaker activity."""
    lines: list[str] = []
    fault_cells = sorted((cell, value) for cell, value in counters.items()
                         if cell.startswith("faults.fired"))
    if fault_cells:
        for cell, value in fault_cells:
            lines.append(f"{cell} = {int(value)}")
    else:
        lines.append("faults.fired: none")
    watchdog = sum(value for cell, value in counters.items()
                   if cell.startswith("watchdog.kills"))
    lines.append(f"watchdog.kills = {int(watchdog)}")
    # every row prints, zero or not: service dashboards diff reports
    # across runs, and a row that appears only once a counter fires
    # reads as a schema change instead of a value change
    for name in ("tiered.shed", "tiered.abandoned",
                 "tiered.breaker_opens", "cache.disk.recovered",
                 "cache.disk.locks_broken", "native.workdirs_swept"):
        lines.append(f"{name} = {int(counters.get(name, 0.0))}")
    state = gauges.get("tiered.breaker_state")
    if state is not None:
        name = _BREAKER_STATE_NAMES.get(int(state), f"state {state}")
        lines.append(f"breaker: {name}")
    return lines


def _optimizer_summary(counters: Mapping[str, float]) -> list[str]:
    """Middle-end activity (see :mod:`repro.lms.optimize`).  Standing
    rows always print — zeros included — so a report from a
    ``REPRO_OPT=0`` run diffs cleanly against an optimized one."""
    lines: list[str] = []
    lines.append(f"opt.runs = {int(counters.get('opt.runs', 0.0))}")
    eliminated = sorted((cell, value) for cell, value in counters.items()
                        if cell.startswith("opt.eliminated"))
    total = sum(value for _, value in eliminated)
    lines.append(f"opt.eliminated = {int(total)}")
    for cell, value in eliminated:
        lines.append(f"  {cell} = {int(value)}")
    for name in ("opt.folds", "opt.hoisted", "opt.forwarded_loads",
                 "opt.forwarded_reads"):
        lines.append(f"{name} = {int(counters.get(name, 0.0))}")
    return lines


_POLICY_MODE_NAMES = {0: "off", 1: "observe", 2: "learned"}


def _policy_summary(counters: Mapping[str, float],
                    gauges: Mapping[str, float]) -> list[str]:
    """Learned-policy activity (see :mod:`repro.core.policy`): the
    standing rows always print (zeros included), then per-kind decision
    and override totals and the per-choice outcome table."""
    lines: list[str] = []
    mode = gauges.get("policy.mode")
    if mode is not None:
        lines.append("mode: "
                     + _POLICY_MODE_NAMES.get(int(mode), f"code {mode}"))
    records = sum(value for cell, value in counters.items()
                  if cell.startswith("policy.records"))
    lines.append(f"policy.records = {int(records)}")
    for name in ("policy.decisions", "policy.overrides"):
        total = sum(value for cell, value in counters.items()
                    if cell.startswith(name + "{"))
        lines.append(f"{name} = {int(total)}")
        for cell, value in sorted(counters.items()):
            if cell.startswith(name + "{"):
                lines.append(f"  {cell} = {int(value)}")
    lines.append("policy.load = " + (" ".join(
        f"{cell} = {int(value)}" for cell, value in sorted(counters.items())
        if cell.startswith("policy.load{")) or "none"))
    lines.append(f"policy.flushes = "
                 f"{int(counters.get('policy.flushes', 0.0))}")
    outcome_cells = sorted((cell, value) for cell, value in counters.items()
                           if cell.startswith("policy.outcomes{"))
    if outcome_cells:
        lines.append("outcomes by (kind, choice):")
        for cell, value in outcome_cells:
            lines.append(f"  {cell} = {int(value)}")
    return lines


def _service_summary(counters: Mapping[str, float]) -> list[str]:
    """Compile-service activity (daemon- and client-side): rendered
    only when a ``service.*`` family exists, but then every standing
    row prints (zeros included) for the same diff-cleanliness."""
    if not any(cell.startswith("service.") for cell in counters):
        return []
    lines = ["", "== compile service =="]
    for name in ("service.dedup", "service.shed",
                 "service.stale_socket_reclaimed",
                 "service.client.dedup"):
        total = sum(value for cell, value in counters.items()
                    if cell == name or cell.startswith(name + "{"))
        lines.append(f"{name} = {int(total)}")
    for cell, value in sorted(counters.items()):
        if cell.startswith(("service.requests{", "service.compiles{",
                            "service.errors{",
                            "service.client.requests{",
                            "service.client.fallback{")):
            lines.append(f"{cell} = {int(value)}")
    return lines


def render_report(spans: Sequence[Span],
                  metrics: Mapping | None,
                  top: int = 15) -> str:
    """The full text summary of one trace."""
    counters: dict[str, float] = dict((metrics or {}).get("counters", {}))
    out: list[str] = []
    out.append(f"== span tree ({len(spans)} spans) ==")
    out.append(render_span_tree(spans) if spans else "(no spans recorded)")
    out.append("")
    out.append("== top counters ==")
    if counters:
        ranked = sorted(counters.items(), key=lambda kv: (-kv[1], kv[0]))
        for cell, value in ranked[:top]:
            shown = int(value) if float(value).is_integer() else value
            out.append(f"{cell:56s} {shown}")
        if len(ranked) > top:
            out.append(f"... and {len(ranked) - top} more")
    else:
        out.append("(no counters recorded)")
    out.append("")
    out.append("== cache ==")
    out.append(_cache_ratio(counters, "mem"))
    out.append(_cache_ratio(counters, "disk"))
    out.append("")
    out.append("== compile ladder ==")
    out.extend(_ladder_summary(counters))
    out.append("")
    out.append("== optimizer ==")
    out.extend(_optimizer_summary(counters))
    gauges = dict((metrics or {}).get("gauges", {}))
    out.append("")
    out.append("== resilience ==")
    out.extend(_resilience_summary(counters, gauges))
    out.append("")
    out.append("== policy ==")
    out.extend(_policy_summary(counters, gauges))
    out.extend(_service_summary(counters))
    if gauges:
        out.append("")
        out.append("== gauges ==")
        for cell, value in sorted(gauges.items()):
            out.append(f"{cell:56s} {value}")
    return "\n".join(out) + "\n"


def report_from_file(path: str) -> str:
    spans, metrics = read_jsonl(path)
    return render_report(spans, metrics)


def main(argv: Iterable[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observability tooling for the repro pipeline.")
    sub = parser.add_subparsers(dest="command", required=True)

    rep = sub.add_parser(
        "report", help="summarize a recorded JSONL trace (or the "
                       "current process's buffers when no path given)")
    rep.add_argument("trace", nargs="?", default=None,
                     help="path to a JSONL trace "
                          "(default: in-process buffers)")
    rep.add_argument("--top", type=int, default=15,
                     help="how many counters to list")

    prom = sub.add_parser(
        "metrics", help="print the current process's metrics in "
                        "Prometheus text exposition format")

    args = parser.parse_args(list(argv) if argv is not None else None)
    if args.command == "report":
        if args.trace is not None:
            spans, metrics = read_jsonl(args.trace)
        else:
            import repro.obs as obs
            spans = obs.get_tracer().finished_spans()
            metrics = obs.get_registry().snapshot()
        sys.stdout.write(render_report(spans, metrics, top=args.top))
        return 0
    if args.command == "metrics":
        del prom
        import repro.obs as obs
        sys.stdout.write(obs.prometheus_text())
        return 0
    return 2


if __name__ == "__main__":      # pragma: no cover
    raise SystemExit(main())
