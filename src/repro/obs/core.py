"""Tracing and metrics primitives for the stage→compile→dispatch path.

Design constraints (see DESIGN.md §8):

* **Near-zero cost when disabled.**  ``REPRO_OBS=0`` turns every
  instrumentation site into an env lookup plus a branch; :func:`span`
  then hands out a shared no-op context manager and counter updates
  return immediately.
* **Bounded memory.**  Finished spans land in a ring buffer
  (``REPRO_OBS_RING`` entries, default 4096); a long-running process
  never grows without bound.
* **Thread safety.**  The span stack is thread-local (each thread owns
  its own tree); the ring buffer and the metrics registry take a lock
  only on update/snapshot.

The primitives are deliberately tiny — no sampling, no propagation
across processes, no exporter threads.  JSONL export and the
Prometheus-style text exposition are one function call each.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.core.env import env_int

__all__ = [
    "Span",
    "Tracer",
    "MetricsRegistry",
    "NULL_SPAN",
    "obs_enabled",
    "profile_enabled",
]

_FALSY = ("0", "off", "no", "false")


def obs_enabled() -> bool:
    """Tracing/metrics master switch (``REPRO_OBS``, default on)."""
    return os.environ.get("REPRO_OBS", "1") not in _FALSY


def profile_enabled() -> bool:
    """Simulator instruction-mix profiling (``REPRO_OBS_PROFILE``,
    default off — it adds a per-``run()`` flush)."""
    return os.environ.get("REPRO_OBS_PROFILE", "0") not in _FALSY


# ---------------------------------------------------------------------------
# Spans and the tracer.

@dataclass
class Span:
    """One timed region; durations are monotonic-clock nanoseconds."""

    name: str
    span_id: int
    parent_id: int | None
    trace_id: int
    start_ns: int
    end_ns: int | None = None
    attrs: dict[str, Any] = field(default_factory=dict)
    status: str = "ok"              # "ok" | "error"

    @property
    def duration_ns(self) -> int:
        if self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    @property
    def duration_ms(self) -> float:
        return self.duration_ns / 1e6

    def to_dict(self) -> dict:
        return {
            "kind": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "attrs": self.attrs,
            "status": self.status,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "Span":
        return cls(
            name=str(d.get("name", "?")),
            span_id=int(d.get("span_id", 0)),
            parent_id=d.get("parent_id"),
            trace_id=int(d.get("trace_id", 0)),
            start_ns=int(d.get("start_ns", 0)),
            end_ns=d.get("end_ns"),
            attrs=dict(d.get("attrs") or {}),
            status=str(d.get("status", "ok")),
        )


class _ActiveSpan:
    """Context manager for one in-flight span."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def set(self, key: str, value: Any) -> "_ActiveSpan":
        """Attach an attribute to the running span."""
        self._span.attrs[key] = value
        return self

    def __enter__(self) -> "_ActiveSpan":
        self._tracer._push(self._span)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._span.status = "error"
            self._span.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self._span)
        return None


class _NullSpan:
    """The disabled-path stand-in: every operation is a no-op."""

    __slots__ = ()

    def set(self, key: str, value: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NULL_SPAN = _NullSpan()


class Tracer:
    """Thread-safe span recorder with a bounded ring of finished spans.

    Spans form trees: each thread keeps its own stack of open spans, a
    root span allocates a fresh ``trace_id`` and descendants inherit
    it, so one pipeline run's spans can be collected with
    :meth:`spans_for_trace` even when other threads interleave.
    """

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is None:
            capacity = env_int("REPRO_OBS_RING", 4096, minimum=16)
        self._finished: deque[Span] = deque(maxlen=capacity)
        self._ids = itertools.count(1)
        self._traces = itertools.count(1)
        self._lock = threading.Lock()
        self._tls = threading.local()

    # -- span lifecycle ------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def span(self, name: str, **attrs: Any) -> _ActiveSpan:
        stack = self._stack()
        parent = stack[-1] if stack else None
        sp = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=parent.span_id if parent else None,
            trace_id=parent.trace_id if parent else next(self._traces),
            start_ns=time.monotonic_ns(),
            attrs=dict(attrs),
        )
        return _ActiveSpan(self, sp)

    def event(self, name: str, **attrs: Any) -> None:
        """A zero-duration span (quarantine decisions, cache drops...)."""
        with self.span(name, **attrs):
            pass

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        while stack and stack[-1] is not span:
            stack.pop()         # tolerate mismatched exits
        if stack:
            stack.pop()
        span.end_ns = time.monotonic_ns()
        with self._lock:
            self._finished.append(span)

    # -- introspection -------------------------------------------------

    def current_trace_id(self) -> int | None:
        stack = self._stack()
        return stack[-1].trace_id if stack else None

    def finished_spans(self) -> list[Span]:
        """Snapshot of the ring, oldest first (start order within a
        thread; completion order globally)."""
        with self._lock:
            return sorted(self._finished, key=lambda s: (s.start_ns,
                                                         s.span_id))

    def spans_for_trace(self, trace_id: int) -> list[Span]:
        return [s for s in self.finished_spans()
                if s.trace_id == trace_id]

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()


# ---------------------------------------------------------------------------
# Metrics.

# Default histogram buckets: seconds, compile/smoke-run scaled.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0)


def _key(name: str, labels: Mapping[str, Any]
         ) -> tuple[str, tuple[tuple[str, str], ...]]:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


@dataclass
class HistogramData:
    """Fixed-bucket histogram: cumulative counts per upper bound."""

    buckets: tuple[float, ...]
    counts: list[int]
    total: int = 0
    sum: float = 0.0

    def observe(self, value: float) -> None:
        self.total += 1
        self.sum += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1

    def to_dict(self) -> dict:
        return {"buckets": list(self.buckets), "counts": list(self.counts),
                "count": self.total, "sum": self.sum}


class MetricsRegistry:
    """Counters, gauges and fixed-bucket histograms under one lock.

    Metric identity is ``(name, sorted labels)``; names are dotted
    (``compile.attempts``) and mapped to Prometheus conventions
    (``repro_compile_attempts_total``) only at exposition time.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[tuple, float] = {}
        self._gauges: dict[tuple, float] = {}
        self._histograms: dict[tuple, HistogramData] = {}

    # -- updates -------------------------------------------------------

    def inc(self, name: str, value: float = 1.0, **labels: Any) -> None:
        key = _key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        with self._lock:
            self._gauges[_key(name, labels)] = float(value)

    def observe(self, name: str, value: float,
                buckets: Iterable[float] | None = None,
                **labels: Any) -> None:
        key = _key(name, labels)
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                bs = tuple(buckets) if buckets is not None \
                    else DEFAULT_BUCKETS
                hist = HistogramData(buckets=bs, counts=[0] * len(bs))
                self._histograms[key] = hist
            hist.observe(float(value))

    # -- reads ---------------------------------------------------------

    def counter_value(self, name: str, **labels: Any) -> float:
        """One counter cell, or the sum over all label sets of ``name``
        when no labels are given."""
        with self._lock:
            if labels:
                return self._counters.get(_key(name, labels), 0.0)
            return sum(v for (n, _), v in self._counters.items()
                       if n == name)

    def counters(self) -> dict[str, float]:
        """``name{k=v,...} -> value`` for every counter cell."""
        with self._lock:
            return {_format_cell(n, lbls): v
                    for (n, lbls), v in self._counters.items()}

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "kind": "metrics",
                "counters": {_format_cell(n, ls): v
                             for (n, ls), v in self._counters.items()},
                "gauges": {_format_cell(n, ls): v
                           for (n, ls), v in self._gauges.items()},
                "histograms": {_format_cell(n, ls): h.to_dict()
                               for (n, ls), h in self._histograms.items()},
            }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # -- exposition ----------------------------------------------------

    def prometheus_text(self) -> str:
        """Prometheus text exposition format, ``repro_``-prefixed."""
        lines: list[str] = []
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            hists = {k: HistogramData(h.buckets, list(h.counts),
                                      h.total, h.sum)
                     for k, h in self._histograms.items()}
        seen_types: set[str] = set()

        def declare(metric: str, kind: str) -> None:
            if metric not in seen_types:
                seen_types.add(metric)
                lines.append(f"# TYPE {metric} {kind}")

        for (name, labels), value in sorted(counters.items()):
            metric = _prom_name(name) + "_total"
            declare(metric, "counter")
            lines.append(f"{metric}{_prom_labels(labels)} {_prom_num(value)}")
        for (name, labels), value in sorted(gauges.items()):
            metric = _prom_name(name)
            declare(metric, "gauge")
            lines.append(f"{metric}{_prom_labels(labels)} {_prom_num(value)}")
        for (name, labels), hist in sorted(hists.items()):
            metric = _prom_name(name)
            declare(metric, "histogram")
            for bound, count in zip(hist.buckets, hist.counts):
                le = labels + (("le", repr(bound)),)
                lines.append(
                    f"{metric}_bucket{_prom_labels(le)} {count}")
            inf = labels + (("le", "+Inf"),)
            lines.append(f"{metric}_bucket{_prom_labels(inf)} {hist.total}")
            lines.append(f"{metric}_sum{_prom_labels(labels)} "
                         f"{_prom_num(hist.sum)}")
            lines.append(f"{metric}_count{_prom_labels(labels)} "
                         f"{hist.total}")
        return "\n".join(lines) + ("\n" if lines else "")


def _format_cell(name: str, labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


def _prom_name(name: str) -> str:
    clean = "".join(c if c.isalnum() else "_" for c in name)
    return f"repro_{clean}"


def _prom_labels(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{{{inner}}}"


def _prom_num(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


# ---------------------------------------------------------------------------
# JSONL trace export / import.

def write_jsonl(path: str | Path, spans: Iterable[Span],
                metrics: MetricsRegistry | None = None) -> Path:
    """One span per line, then a final metrics-snapshot line."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for span in spans:
            fh.write(json.dumps(span.to_dict()) + "\n")
        if metrics is not None:
            fh.write(json.dumps(metrics.snapshot()) + "\n")
    return path


def read_jsonl(path: str | Path) -> tuple[list[Span], dict | None]:
    """Parse a trace file; malformed lines are skipped, the last
    metrics line wins."""
    spans: list[Span] = []
    metrics: dict | None = None
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except ValueError:
            continue
        if not isinstance(obj, dict):
            continue
        if obj.get("kind") == "metrics":
            metrics = obj
        elif obj.get("kind") == "span":
            spans.append(Span.from_dict(obj))
    return spans, metrics
