"""``python -m repro.obs`` entry point (see :mod:`repro.obs.report`)."""

from repro.obs.report import main

raise SystemExit(main())
