"""The paper's benchmark kernels.

Staged (LMS) kernels built on the generated SIMD eDSLs, and their Java
baselines as MiniVM kernel methods:

* SAXPY — Figure 4 of the paper (AVX + FMA, with the scalar tail loop)
  vs the ``JSaxpy`` Java loop;
* MMM — Figure 5 (blocked, with the 8x8 register transpose) vs the Java
  triple loop and the Java blocked version;
* the variable-precision dots live in :mod:`repro.quant`.
"""

from repro.kernels.saxpy import (
    java_saxpy_method,
    make_staged_saxpy,
    make_staged_saxpy512_masked,
)
from repro.kernels.mmm import (
    java_mmm_blocked_method,
    java_mmm_triple_method,
    make_staged_mmm,
)

__all__ = [
    "java_mmm_blocked_method",
    "java_mmm_triple_method",
    "java_saxpy_method",
    "make_staged_mmm",
    "make_staged_saxpy",
    "make_staged_saxpy512_masked",
]
