"""SAXPY: ``a = a + alpha * b`` (BLAS 1), paper Figure 4.

The staged version uses AVX + FMA with an 8-wide main loop and a scalar
tail loop — a line-for-line port of the paper's ``NSaxpy``.  The Java
baseline is the paper's ``JSaxpy``; HotSpot (and MiniVM) SLP-vectorize
it at SSE width.
"""

from __future__ import annotations

from repro.isa.registry import IntrinsicsNamespace, load_isas
from repro.jvm import ast as jast
from repro.jvm.jtypes import JFLOAT, JINT
from repro.lms import forloop, stage_function
from repro.lms.ops import array_apply, array_update, reflect_mutable
from repro.lms.staging import StagedFunction
from repro.lms.types import FLOAT, INT32, array_of

SAXPY_ISAS = ("AVX", "AVX2", "FMA")


def make_staged_saxpy(cir: IntrinsicsNamespace | None = None
                      ) -> StagedFunction:
    """Stage the AVX+FMA SAXPY of Figure 4."""
    cir = cir if cir is not None else load_isas(*SAXPY_ISAS)

    def saxpy_staged(a, b, scalar, n):
        # make array `a` mutable (the paper's reflectMutableSym)
        reflect_mutable(a)
        # start with the computation
        n0 = (n >> 3) << 3
        vec_s = cir._mm256_set1_ps(scalar)

        def vec_body(i):
            vec_a = cir._mm256_loadu_ps(a, i)
            vec_b = cir._mm256_loadu_ps(b, i)
            res = cir._mm256_fmadd_ps(vec_b, vec_s, vec_a)
            cir._mm256_storeu_ps(a, res, i)

        forloop(0, n0, step=8, body=vec_body)
        forloop(n0, n, step=1, body=lambda i: array_update(
            a, i, array_apply(a, i) + array_apply(b, i) * scalar))

    return stage_function(
        saxpy_staged,
        [array_of(FLOAT), array_of(FLOAT), FLOAT, INT32],
        name="saxpy",
        param_names=["a", "b", "scalar", "n"],
    )


def make_staged_saxpy512_masked(cir: IntrinsicsNamespace | None = None
                                ) -> StagedFunction:
    """AVX-512 SAXPY with a *masked tail* instead of a scalar loop.

    AVX-512's lane masking subsumes the remainder loop of Figure 4: the
    final partial vector is processed with ``maskz_loadu`` /
    ``mask_storeu`` under a mask of ``n - n0`` set bits, and the
    fault-suppression semantics of masked memory operations make the
    out-of-bounds lanes legal.  One of the paper's "future ISA" payoffs,
    expressible with nothing but the generated eDSL.
    """
    cir = cir if cir is not None else load_isas("AVX-512")

    def saxpy512(a, b, scalar, n):
        reflect_mutable(a)
        n0 = (n >> 4) << 4
        vec_s = cir._mm512_set1_ps(scalar)

        def vec_body(i):
            va = cir._mm512_loadu_ps(a, i)
            vb = cir._mm512_loadu_ps(b, i)
            cir._mm512_storeu_ps(a, cir._mm512_fmadd_ps(vb, vec_s, va), i)

        forloop(0, n0, step=16, body=vec_body)

        # Masked remainder: ((1 << rem) - 1) selects the live lanes.
        rem = n - n0
        k = cir._cvtu32_mask16((1 << rem) - 1)
        va = cir._mm512_maskz_loadu_ps(k, a, n0)
        vb = cir._mm512_maskz_loadu_ps(k, b, n0)
        cir._mm512_mask_storeu_ps(
            a, k, cir._mm512_fmadd_ps(vb, vec_s, va), n0)

    return stage_function(
        saxpy512,
        [array_of(FLOAT), array_of(FLOAT), FLOAT, INT32],
        name="saxpy512_masked",
        param_names=["a", "b", "scalar", "n"],
    )


def java_saxpy_method() -> jast.KernelMethod:
    """The paper's ``JSaxpy``::

        for (int i = 0; i < n; i += 1)
            a[i] += b[i] * s;
    """
    L, C, B, A = jast.Local, jast.ConstExpr, jast.Bin, jast.ArrayLoad
    return jast.KernelMethod(
        name="jsaxpy",
        params=[jast.Param("a", JFLOAT, True), jast.Param("b", JFLOAT, True),
                jast.Param("s", JFLOAT), jast.Param("n", JINT)],
        body=jast.Block([
            jast.For("i", C(0, JINT), L("n"), C(1, JINT), jast.Block([
                jast.ArrayStore("a", L("i"),
                                B("+", A("a", L("i")),
                                  B("*", A("b", L("i")), L("s")))),
            ])),
        ]))
