"""Matrix-matrix multiplication, paper Figure 5.

Three versions, exactly as evaluated in Section 3.4:

* the staged blocked MMM using AVX intrinsics, with the 8x8 register
  transpose built from ``unpacklo/unpackhi``, ``shuffle_ps`` and
  ``permute2f128`` — a direct port of Figure 5, including the Scala
  collection combinators (``grouped``/``flatMap``/``zip``) which here
  become list comprehensions: the host language as a macro system;
* a Java triple loop (the baseline);
* a Java blocked version with block size 8.

All versions assume ``n == 8k``, as the paper does.
"""

from __future__ import annotations

from typing import Sequence

from repro.isa.registry import IntrinsicsNamespace, load_isas
from repro.jvm import ast as jast
from repro.jvm.jtypes import JFLOAT, JINT
from repro.lms import forloop, stage_function
from repro.lms.expr import Exp
from repro.lms.ops import reflect_mutable
from repro.lms.staging import StagedFunction
from repro.lms.types import FLOAT, INT32, array_of

MMM_ISAS = ("SSE", "AVX", "AVX2", "FMA")


def transpose(cir: IntrinsicsNamespace,
              row: Sequence[Exp]) -> list[Exp]:
    """Transpose 8 ``__m256`` values (Figure 5's ``transpose``).

    The ``grouped(2)``/``grouped(4)``/``zip`` structure of the Scala
    original maps onto Python comprehensions one-for-one.
    """
    if len(row) != 8:
        raise ValueError("transpose expects 8 vectors")
    pairs = [row[i: i + 2] for i in range(0, 8, 2)]
    stage1 = [v for a, b in pairs
              for v in (cir._mm256_unpacklo_ps(a, b),
                        cir._mm256_unpackhi_ps(a, b))]
    quads = [stage1[i: i + 4] for i in range(0, 8, 4)]
    stage2 = [v for a, b, c, d in quads
              for v in (cir._mm256_shuffle_ps(a, c, 68),
                        cir._mm256_shuffle_ps(a, c, 238),
                        cir._mm256_shuffle_ps(b, d, 68),
                        cir._mm256_shuffle_ps(b, d, 238))]
    zipped = list(zip(stage2[:4], stage2[4:]))
    f = cir._mm256_permute2f128_ps
    return ([f(a, b, 0x20) for a, b in zipped]
            + [f(a, b, 0x31) for a, b in zipped])


def _tree_add(cir: IntrinsicsNamespace, vals: Sequence[Exp]) -> Exp:
    """Figure 5's recursive pairwise sum (the closure ``f``)."""
    if len(vals) == 1:
        return vals[0]
    half = len(vals) // 2
    return cir._mm256_add_ps(_tree_add(cir, vals[:half]),
                             _tree_add(cir, vals[half:]))


def make_staged_mmm(cir: IntrinsicsNamespace | None = None
                    ) -> StagedFunction:
    """Stage the blocked MMM of Figure 5 (``c += a * b``, n == 8k)."""
    cir = cir if cir is not None else load_isas(*MMM_ISAS)

    def staged_mmm_blocked(a, b, c, n):
        reflect_mutable(c)

        def kk_body(kk):
            def jj_body(jj):
                # Load the block of matrix B and transpose it.
                block_b = transpose(cir, [
                    cir._mm256_loadu_ps(b, (kk + i) * n + jj)
                    for i in range(8)
                ])

                def i_body(i):
                    row_a = cir._mm256_loadu_ps(a, i * n + kk)
                    mul_ab = transpose(
                        cir, [cir._mm256_mul_ps(row_a, bb)
                              for bb in block_b])
                    row_c = cir._mm256_loadu_ps(c, i * n + jj)
                    acc_c = cir._mm256_add_ps(_tree_add(cir, mul_ab),
                                              row_c)
                    cir._mm256_storeu_ps(c, acc_c, i * n + jj)

                forloop(0, n, step=1, body=i_body)

            forloop(0, n, step=8, body=jj_body)

        forloop(0, n, step=8, body=kk_body)

    return stage_function(
        staged_mmm_blocked,
        [array_of(FLOAT), array_of(FLOAT), array_of(FLOAT), INT32],
        name="mmm_blocked",
        param_names=["a", "b", "c", "n"],
    )


def java_mmm_triple_method() -> jast.KernelMethod:
    """The standard Java triple loop: ``c[i][j] += a[i][k] * b[k][j]``."""
    L, C, B, A = jast.Local, jast.ConstExpr, jast.Bin, jast.ArrayLoad

    def idx(r, c_):
        return B("+", B("*", L(r), L("n")), L(c_))

    return jast.KernelMethod(
        name="jmmm_triple",
        params=[jast.Param("a", JFLOAT, True), jast.Param("b", JFLOAT, True),
                jast.Param("c", JFLOAT, True), jast.Param("n", JINT)],
        body=jast.Block([
            jast.For("i", C(0, JINT), L("n"), C(1, JINT), jast.Block([
                jast.For("j", C(0, JINT), L("n"), C(1, JINT), jast.Block([
                    jast.Assign("acc", A("c", idx("i", "j"))),
                    jast.For("k", C(0, JINT), L("n"), C(1, JINT),
                             jast.Block([
                                 jast.Assign("acc", B(
                                     "+", L("acc"),
                                     B("*", A("a", idx("i", "k")),
                                       A("b", idx("k", "j"))))),
                             ])),
                    jast.ArrayStore("c", idx("i", "j"), L("acc")),
                ])),
            ])),
        ]))


def java_mmm_blocked_method(block: int = 8) -> jast.KernelMethod:
    """Java blocked MMM (the paper's middle version, block size 8).

    ``block`` parameterizes the tile edge for the block-size ablation.
    """
    L, C, B, A = jast.Local, jast.ConstExpr, jast.Bin, jast.ArrayLoad

    def pl(x, y):
        return B("+", x, y)

    def idx(r_expr, c_expr):
        return pl(B("*", r_expr, L("n")), c_expr)

    inner = jast.For(
        "j", C(0, JINT), C(block, JINT), C(1, JINT), jast.Block([
            jast.Assign("acc", A("c", idx(L("i"), pl(L("jj"), L("j"))))),
            jast.For("k", C(0, JINT), C(block, JINT), C(1, JINT),
                     jast.Block([
                jast.Assign("acc", B(
                    "+", L("acc"),
                    B("*",
                      A("a", idx(L("i"), pl(L("kk"), L("k")))),
                      A("b", idx(pl(L("kk"), L("k")),
                                 pl(L("jj"), L("j"))))))),
            ])),
            jast.ArrayStore("c", idx(L("i"), pl(L("jj"), L("j"))),
                            L("acc")),
        ]))

    return jast.KernelMethod(
        name=f"jmmm_blocked" if block == 8 else f"jmmm_blocked{block}",
        params=[jast.Param("a", JFLOAT, True), jast.Param("b", JFLOAT, True),
                jast.Param("c", JFLOAT, True), jast.Param("n", JINT)],
        body=jast.Block([
            jast.For("kk", C(0, JINT), L("n"), C(block, JINT), jast.Block([
                jast.For("jj", C(0, JINT), L("n"), C(block, JINT),
                         jast.Block([
                             jast.For("i", C(0, JINT), L("n"), C(1, JINT),
                                      jast.Block([inner])),
                         ])),
            ])),
        ]))
