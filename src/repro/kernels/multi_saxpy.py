"""Architecture-independent SAXPY: the artifact's ``TestMultiSaxpy``.

The paper's artifact provides an ISA-agnostic SAXPY for non-Haswell
machines, built in the style of "Abstracting Vector Architectures in
Library Generators" (the paper's reference [27]): a width-generic vector
abstraction chooses the widest available ISA at *staging* time, so the
same kernel source stages to AVX+FMA, AVX, or SSE code with the right
vector length and tail handling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.codegen.compiler import inspect_system
from repro.isa.registry import IntrinsicsNamespace, load_isas
from repro.lms import forloop, stage_function
from repro.lms.expr import Exp
from repro.lms.ops import array_apply, array_update, reflect_mutable
from repro.lms.staging import StagedFunction
from repro.lms.types import FLOAT, INT32, array_of


@dataclass(frozen=True)
class VectorABI:
    """One width-specific instantiation of the vector abstraction."""

    name: str
    isas: tuple[str, ...]
    width: int  # float lanes per register
    load: Callable[[Exp, Exp], Exp]
    store: Callable[[Exp, Exp, Exp], Exp]
    broadcast: Callable[[Exp], Exp]
    fmadd: Callable[[Exp, Exp, Exp], Exp]  # a*b + c


def _avx512_abi() -> VectorABI:
    cir = load_isas("AVX-512")
    return VectorABI(
        name="avx512", isas=("AVX-512",), width=16,
        load=lambda arr, i: cir._mm512_loadu_ps(arr, i),
        store=lambda arr, v, i: cir._mm512_storeu_ps(arr, v, i),
        broadcast=lambda s: cir._mm512_set1_ps(s),
        fmadd=lambda a, b, c: cir._mm512_fmadd_ps(a, b, c),
    )


def _avx_fma_abi() -> VectorABI:
    cir = load_isas("AVX", "AVX2", "FMA")
    return VectorABI(
        name="avx+fma", isas=("AVX", "FMA"), width=8,
        load=lambda arr, i: cir._mm256_loadu_ps(arr, i),
        store=lambda arr, v, i: cir._mm256_storeu_ps(arr, v, i),
        broadcast=lambda s: cir._mm256_set1_ps(s),
        fmadd=lambda a, b, c: cir._mm256_fmadd_ps(a, b, c),
    )


def _avx_abi() -> VectorABI:
    cir = load_isas("AVX")
    return VectorABI(
        name="avx", isas=("AVX",), width=8,
        load=lambda arr, i: cir._mm256_loadu_ps(arr, i),
        store=lambda arr, v, i: cir._mm256_storeu_ps(arr, v, i),
        broadcast=lambda s: cir._mm256_set1_ps(s),
        # Without FMA the multiply-add decomposes.
        fmadd=lambda a, b, c: cir._mm256_add_ps(cir._mm256_mul_ps(a, b), c),
    )


def _sse_abi() -> VectorABI:
    cir = load_isas("SSE")
    return VectorABI(
        name="sse", isas=("SSE",), width=4,
        load=lambda arr, i: cir._mm_loadu_ps(arr, i),
        store=lambda arr, v, i: cir._mm_storeu_ps(arr, v, i),
        broadcast=lambda s: cir._mm_set1_ps(s),
        fmadd=lambda a, b, c: cir._mm_add_ps(cir._mm_mul_ps(a, b), c),
    )


def select_abi(isas: frozenset[str] | None = None) -> VectorABI:
    """Pick the widest ABI the host (or the given ISA set) supports."""
    available = isas if isas is not None else inspect_system().isas
    if "AVX512F" in available or "AVX-512" in available:
        return _avx512_abi()
    if {"AVX", "FMA"} <= set(available):
        return _avx_fma_abi()
    if "AVX" in available:
        return _avx_abi()
    return _sse_abi()


def make_multi_saxpy(abi: VectorABI | None = None) -> StagedFunction:
    """Stage SAXPY against whichever vector ABI fits the target.

    The kernel body is written once over the abstraction; the selected
    ABI fixes the register width (and therefore the loop stride and the
    tail split) at staging time — zero-cost abstraction, again.
    """
    abi = abi if abi is not None else select_abi()
    w = abi.width
    # The width is a staging-time constant: (n / w) * w without shifts
    # so it works for any power-of-two width.
    shift = w.bit_length() - 1

    def saxpy_staged(a, b, scalar, n):
        reflect_mutable(a)
        n0 = (n >> shift) << shift
        vec_s = abi.broadcast(scalar)

        def vec_body(i):
            va = abi.load(a, i)
            vb = abi.load(b, i)
            abi.store(a, abi.fmadd(vb, vec_s, va), i)

        forloop(0, n0, step=w, body=vec_body)
        forloop(n0, n, step=1, body=lambda i: array_update(
            a, i, array_apply(a, i) + array_apply(b, i) * scalar))

    return stage_function(
        saxpy_staged,
        [array_of(FLOAT), array_of(FLOAT), FLOAT, INT32],
        name=f"multi_saxpy_{abi.name.replace('+', '_')}",
        param_names=["a", "b", "scalar", "n"],
    )
