"""MiniVM: the managed-runtime baseline (the HotSpot analog).

The paper's baseline is the HotSpot Server VM: bytecode is interpreted
with profiling, hot methods are compiled by the fast C1 compiler, then by
the optimizing C2 compiler, whose only vectorizer is basic-block SLP
(Larsen & Amarasinghe) — it packs groups of isomorphic instructions into
SSE-width SIMD, cannot vectorize across loop iterations and cannot detect
reduction idioms, and Java promotes sub-32-bit integers to ``int`` before
arithmetic.

MiniVM implements exactly those mechanisms: a Java-typed kernel AST with
mandatory type promotion, a stack bytecode with an interpreter and
invocation/backedge profiling, a tiered C1/C2 JIT, loop unrolling, and an
SLP autovectorizer with the documented limits.  Compiled code is a
structured machine-op kernel the Haswell cost model (:mod:`repro.timing`)
prices, and the interpreter provides bit-exact Java execution semantics
for correctness tests.
"""

from repro.jvm.jtypes import (
    JBOOL, JBYTE, JCHAR, JDOUBLE, JFLOAT, JINT, JLONG, JSHORT, JType,
)
from repro.jvm.ast import (
    ArrayLoad,
    ArrayStore,
    Assign,
    Bin,
    Block,
    ConstExpr,
    Conv,
    For,
    If,
    KernelMethod,
    Local,
    Param,
    Return,
)
from repro.jvm.disasm import disassemble, print_compiled, vector_widths
from repro.jvm.vm import MiniVM, TieredState

__all__ = [
    "ArrayLoad", "ArrayStore", "Assign", "Bin", "Block", "ConstExpr",
    "Conv", "For", "If", "JBOOL", "JBYTE", "JCHAR", "JDOUBLE", "JFLOAT",
    "JINT", "JLONG", "JSHORT", "JType", "KernelMethod", "Local", "MiniVM",
    "Param", "Return", "TieredState", "disassemble", "print_compiled",
    "vector_widths",
]
