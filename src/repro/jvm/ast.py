"""The Java-like kernel AST MiniVM methods are written in.

This plays the role of Java source for the paper's baseline kernels
(``JSaxpy``, the triple-loop and blocked MMM, the 32/16/8/4-bit dot
products).  The type checker enforces JVM semantics — in particular the
mandatory promotion of sub-``int`` integer arithmetic to 32 bits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.jvm.jtypes import (
    JBOOL, JBYTE, JCHAR, JDOUBLE, JFLOAT, JINT, JLONG, JSHORT, JType,
    promote_pair,
)

_ARITH = {"+", "-", "*", "/", "%"}
_BITWISE = {"&", "|", "^", "<<", ">>", ">>>"}
_COMPARE = {"==", "!=", "<", "<=", ">", ">="}


class JavaTypeError(TypeError):
    """A kernel violates JVM typing rules."""


@dataclass(frozen=True)
class Expr:
    pass


@dataclass(frozen=True)
class Local(Expr):
    """Read of a local variable or parameter."""

    name: str


@dataclass(frozen=True)
class ConstExpr(Expr):
    value: Union[int, float, bool]
    jtype: JType


@dataclass(frozen=True)
class ArrayLoad(Expr):
    array: str
    index: Expr


@dataclass(frozen=True)
class Bin(Expr):
    op: str
    lhs: Expr
    rhs: Expr


@dataclass(frozen=True)
class Conv(Expr):
    """Explicit cast, e.g. ``(byte)(x)``."""

    expr: Expr
    target: JType


@dataclass(frozen=True)
class Stmt:
    pass


@dataclass(frozen=True)
class Assign(Stmt):
    name: str
    expr: Expr


@dataclass(frozen=True)
class ArrayStore(Stmt):
    array: str
    index: Expr
    value: Expr


@dataclass(frozen=True)
class Block(Stmt):
    stmts: tuple[Stmt, ...]

    def __init__(self, stmts: Sequence[Stmt]):
        object.__setattr__(self, "stmts", tuple(stmts))


@dataclass(frozen=True)
class For(Stmt):
    """``for (int var = start; var < end; var += step) body``"""

    var: str
    start: Expr
    end: Expr
    step: Expr
    body: Block


@dataclass(frozen=True)
class If(Stmt):
    cond: Expr
    then_body: Block
    else_body: Optional[Block] = None


@dataclass(frozen=True)
class Return(Stmt):
    expr: Optional[Expr] = None


@dataclass(frozen=True)
class Param:
    name: str
    jtype: JType
    is_array: bool = False


@dataclass
class KernelMethod:
    """One method: signature, body, and its inferred static types."""

    name: str
    params: list[Param]
    body: Block
    return_type: Optional[JType] = None
    # Filled by the checker: local name -> type, expr id -> type.
    local_types: dict[str, JType] = field(default_factory=dict)
    _expr_types: dict[int, JType] = field(default_factory=dict)

    def expr_type(self, e: Expr) -> JType:
        return self._expr_types[id(e)]


class TypeChecker:
    """Infers and validates Java types for a kernel method."""

    def __init__(self, method: KernelMethod):
        self.method = method
        self.locals: dict[str, JType] = {}
        self.arrays: dict[str, JType] = {}
        for p in method.params:
            if p.is_array:
                self.arrays[p.name] = p.jtype
            else:
                self.locals[p.name] = p.jtype

    def check(self) -> None:
        self._stmt(self.method.body)
        self.method.local_types = dict(self.locals)

    # -- expressions ------------------------------------------------------------

    def _expr(self, e: Expr) -> JType:
        t = self._expr_inner(e)
        self.method._expr_types[id(e)] = t
        return t

    def _expr_inner(self, e: Expr) -> JType:
        if isinstance(e, ConstExpr):
            return e.jtype
        if isinstance(e, Local):
            if e.name in self.locals:
                return self.locals[e.name]
            if e.name in self.arrays:
                raise JavaTypeError(
                    f"{e.name} is an array; arrays can only be indexed")
            raise JavaTypeError(f"unknown local {e.name!r}")
        if isinstance(e, ArrayLoad):
            if e.array not in self.arrays:
                raise JavaTypeError(f"unknown array {e.array!r}")
            idx_t = self._expr(e.index)
            if idx_t.is_float or idx_t.bits > 32:
                raise JavaTypeError("array index must be int")
            return self.arrays[e.array]
        if isinstance(e, Conv):
            self._expr(e.expr)
            return e.target
        if isinstance(e, Bin):
            lt = self._expr(e.lhs)
            rt = self._expr(e.rhs)
            if e.op in _COMPARE:
                return JBOOL
            if e.op in ("<<", ">>", ">>>"):
                if lt.is_float:
                    raise JavaTypeError("shift on float operand")
                return lt.promoted
            if e.op in _BITWISE:
                if lt.is_float or rt.is_float:
                    raise JavaTypeError(f"{e.op} on float operand")
                return promote_pair(lt, rt)
            if e.op in _ARITH:
                # JLS 5.6.2: byte/short/char arithmetic is promoted to
                # int; this is the promotion tax the paper measures.
                return promote_pair(lt, rt)
            raise JavaTypeError(f"unknown operator {e.op!r}")
        raise JavaTypeError(f"unknown expression {e!r}")

    # -- statements ---------------------------------------------------------------

    def _stmt(self, s: Stmt) -> None:
        if isinstance(s, Block):
            for inner in s.stmts:
                self._stmt(inner)
        elif isinstance(s, Assign):
            t = self._expr(s.expr)
            prior = self.locals.get(s.name)
            if prior is None:
                self.locals[s.name] = t
            elif prior != t:
                # Java requires an explicit narrowing cast.
                if (not prior.is_float and not t.is_float
                        and t.bits > prior.bits):
                    raise JavaTypeError(
                        f"possible lossy conversion from {t} to {prior} in "
                        f"assignment to {s.name!r}; insert a Conv")
                if prior.is_float != t.is_float and not prior.is_float:
                    raise JavaTypeError(
                        f"cannot assign {t} to {prior} local {s.name!r}")
        elif isinstance(s, ArrayStore):
            if s.array not in self.arrays:
                raise JavaTypeError(f"unknown array {s.array!r}")
            self._expr(s.index)
            vt = self._expr(s.value)
            et = self.arrays[s.array]
            if not vt.is_float and not et.is_float and vt.bits > et.bits:
                raise JavaTypeError(
                    f"possible lossy conversion from {vt} to {et}[] store; "
                    f"insert a Conv")
        elif isinstance(s, For):
            self.locals[s.var] = JINT
            self._expr(s.start)
            self._expr(s.end)
            self._expr(s.step)
            self._stmt(s.body)
        elif isinstance(s, If):
            ct = self._expr(s.cond)
            if ct != JBOOL:
                raise JavaTypeError("if condition must be boolean")
            self._stmt(s.then_body)
            if s.else_body is not None:
                self._stmt(s.else_body)
        elif isinstance(s, Return):
            if s.expr is not None:
                t = self._expr(s.expr)
                if self.method.return_type is None:
                    self.method.return_type = t
        else:
            raise JavaTypeError(f"unknown statement {s!r}")


def check_method(method: KernelMethod) -> KernelMethod:
    """Type-check a method in place and return it."""
    TypeChecker(method).check()
    return method
