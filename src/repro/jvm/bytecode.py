"""MiniVM stack bytecode and the AST-to-bytecode compiler.

A deliberately JVM-shaped instruction set: typed arithmetic on an operand
stack, slot-indexed locals, typed array accesses, conditional branches.
Backward branches are what the profiler counts as loop backedges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.jvm.ast import (
    ArrayLoad,
    ArrayStore,
    Assign,
    Bin,
    Block,
    ConstExpr,
    Conv,
    Expr,
    For,
    If,
    KernelMethod,
    Local,
    Return,
    Stmt,
    check_method,
)
from repro.jvm.jtypes import JBOOL, JINT, JType


@dataclass(frozen=True)
class Instr:
    """One bytecode instruction."""

    op: str
    a: object = None
    b: object = None

    def __repr__(self) -> str:
        parts = [self.op]
        if self.a is not None:
            parts.append(str(self.a))
        if self.b is not None:
            parts.append(str(self.b))
        return " ".join(parts)


@dataclass
class CompiledMethod:
    """Bytecode plus metadata; the unit the interpreter and JIT consume."""

    method: KernelMethod
    code: list[Instr]
    n_slots: int
    slot_of: dict[str, int]
    array_slots: dict[str, int]
    # Profiling state (HotSpot-style counters).
    invocations: int = 0
    backedges: int = 0

    @property
    def name(self) -> str:
        return self.method.name


class BytecodeCompiler:
    """Lowers a type-checked kernel AST to stack bytecode."""

    def __init__(self, method: KernelMethod):
        self.method = method
        self.code: list[Instr] = []
        self.slot_of: dict[str, int] = {}
        self.array_slots: dict[str, int] = {}
        for p in method.params:
            slot = len(self.slot_of) + len(self.array_slots)
            if p.is_array:
                self.array_slots[p.name] = slot
            else:
                self.slot_of[p.name] = slot

    def compile(self) -> CompiledMethod:
        self._stmt(self.method.body)
        if not self.code or self.code[-1].op not in ("ret", "retval"):
            self.code.append(Instr("ret"))
        return CompiledMethod(
            method=self.method, code=self.code,
            n_slots=len(self.slot_of) + len(self.array_slots),
            slot_of=dict(self.slot_of),
            array_slots=dict(self.array_slots),
        )

    def _slot(self, name: str) -> int:
        if name not in self.slot_of:
            self.slot_of[name] = len(self.slot_of) + len(self.array_slots)
        return self.slot_of[name]

    # -- expressions ----------------------------------------------------------

    def _expr(self, e: Expr) -> None:
        if isinstance(e, ConstExpr):
            self.code.append(Instr("push", e.value, e.jtype))
        elif isinstance(e, Local):
            self.code.append(Instr("load", self._slot(e.name)))
        elif isinstance(e, ArrayLoad):
            self._expr(e.index)
            self.code.append(Instr("aload", self.array_slots[e.array]))
        elif isinstance(e, Conv):
            self._expr(e.expr)
            self.code.append(Instr("conv", e.target))
        elif isinstance(e, Bin):
            self._expr(e.lhs)
            self._expr(e.rhs)
            t = self.method.expr_type(e)
            self.code.append(Instr("bin", e.op, t))
        else:
            raise TypeError(f"cannot compile expression {e!r}")

    # -- statements --------------------------------------------------------------

    def _stmt(self, s: Stmt) -> None:
        if isinstance(s, Block):
            for inner in s.stmts:
                self._stmt(inner)
        elif isinstance(s, Assign):
            self._expr(s.expr)
            self.code.append(Instr("store", self._slot(s.name)))
        elif isinstance(s, ArrayStore):
            self._expr(s.index)
            self._expr(s.value)
            self.code.append(Instr("astore", self.array_slots[s.array]))
        elif isinstance(s, For):
            slot = self._slot(s.var)
            self._expr(s.start)
            self.code.append(Instr("store", slot))
            loop_top = len(self.code)
            self.code.append(Instr("load", slot))
            self._expr(s.end)
            self.code.append(Instr("bin", "<", JBOOL))
            exit_jump = len(self.code)
            self.code.append(Instr("jmpifnot", None))
            self._stmt(s.body)
            self.code.append(Instr("load", slot))
            self._expr(s.step)
            self.code.append(Instr("bin", "+", JINT))
            self.code.append(Instr("store", slot))
            self.code.append(Instr("jmp", loop_top))  # the backedge
            self.code[exit_jump] = Instr("jmpifnot", len(self.code))
        elif isinstance(s, If):
            self._expr(s.cond)
            else_jump = len(self.code)
            self.code.append(Instr("jmpifnot", None))
            self._stmt(s.then_body)
            if s.else_body is not None:
                end_jump = len(self.code)
                self.code.append(Instr("jmp", None))
                self.code[else_jump] = Instr("jmpifnot", len(self.code))
                self._stmt(s.else_body)
                self.code[end_jump] = Instr("jmp", len(self.code))
            else:
                self.code[else_jump] = Instr("jmpifnot", len(self.code))
        elif isinstance(s, Return):
            if s.expr is not None:
                self._expr(s.expr)
                self.code.append(Instr("retval"))
            else:
                self.code.append(Instr("ret"))
        else:
            raise TypeError(f"cannot compile statement {s!r}")


def compile_method(method: KernelMethod) -> CompiledMethod:
    """Type-check and lower a kernel method to bytecode."""
    return BytecodeCompiler(check_method(method)).compile()
