"""The C1 tier: a fast, lightly optimizing compiler.

C1 lowers bytecode-shaped kernels straight to scalar machine code with
no unrolling and no vectorization; its register allocation and code
selection are deliberately lazy, modelled as a constant throughput
inefficiency over C2 scalar code (HotSpot's C1 is typically 30–100%
slower than C2 on numeric kernels).
"""

from __future__ import annotations

from repro.jvm.ast import KernelMethod, check_method
from repro.jvm.jit.lower import lower_method
from repro.timing.kernelmodel import MachineKernel

C1_INEFFICIENCY = 3.0


def compile_c1(method: KernelMethod) -> MachineKernel:
    """Compile at tier C1."""
    kernel = lower_method(check_method(method))
    kernel.tier = "c1"
    kernel.inefficiency = C1_INEFFICIENCY
    return kernel
