"""Lowering kernel ASTs to machine kernels.

Shared by C1 and C2: walks the (type-checked) Java AST, emits machine
ops for expressions, setup assignments for loop-invariant scalars, and
nested :class:`MachineLoop` structures, annotating memory ops with their
stream, affine stride and constant offset (SLP needs the last two) and
marking loop-carried dependency chains (reductions).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.jvm.ast import (
    ArrayLoad,
    ArrayStore,
    Assign,
    Bin,
    Block,
    ConstExpr,
    Conv,
    Expr,
    For,
    If,
    KernelMethod,
    Local,
    Return,
    Stmt,
)
from repro.jvm.jtypes import JType
from repro.timing.kernelmodel import (
    KernelItem,
    MachineKernel,
    MachineLoop,
    MachineOp,
    SetupAssign,
)

_OP_KIND = {
    "+": "add", "-": "add", "*": "mul", "/": "div", "%": "div",
    "&": "logic", "|": "logic", "^": "logic",
    "<<": "shift", ">>": "shift", ">>>": "shift",
    "==": "cmp", "!=": "cmp", "<": "cmp", "<=": "cmp", ">": "cmp",
    ">=": "cmp",
}


@dataclass
class Affine:
    """index = sum(coeffs[var] * var) + const; coeff None = non-affine."""

    coeffs: dict[str, int | None] = field(default_factory=dict)
    const: int = 0
    exact: bool = True

    def coeff(self, var: str) -> int | None:
        return self.coeffs.get(var, 0)


def analyze_affine(expr: Expr, loop_vars: set[str]) -> Affine:
    """Best-effort affine decomposition of an index expression."""
    if isinstance(expr, ConstExpr):
        return Affine(const=int(expr.value))
    if isinstance(expr, Local):
        if expr.name in loop_vars:
            return Affine(coeffs={expr.name: 1})
        # Loop-invariant symbol: treat as an unknown constant term.
        return Affine(const=0, exact=False)
    if isinstance(expr, Conv):
        return analyze_affine(expr.expr, loop_vars)
    if isinstance(expr, Bin):
        a = analyze_affine(expr.lhs, loop_vars)
        b = analyze_affine(expr.rhs, loop_vars)
        if expr.op == "+" or expr.op == "-":
            sign = 1 if expr.op == "+" else -1
            coeffs: dict[str, int | None] = dict(a.coeffs)
            for var, c in b.coeffs.items():
                prior = coeffs.get(var, 0)
                coeffs[var] = (None if prior is None or c is None
                               else prior + sign * c)
            return Affine(coeffs=coeffs, const=a.const + sign * b.const,
                          exact=a.exact and b.exact)
        if expr.op == "*":
            # const * affine stays affine; symbol * loop var makes the
            # coefficient symbolic ("large stride").
            if not a.coeffs and a.exact:
                scale = a.const
                return Affine(
                    coeffs={v: (None if c is None else c * scale)
                            for v, c in b.coeffs.items()},
                    const=b.const * scale, exact=b.exact)
            if not b.coeffs and b.exact:
                scale = b.const
                return Affine(
                    coeffs={v: (None if c is None else c * scale)
                            for v, c in a.coeffs.items()},
                    const=a.const * scale, exact=a.exact)
            coeffs = {v: None for v in (set(a.coeffs) | set(b.coeffs))}
            return Affine(coeffs=coeffs, const=0, exact=False)
        if expr.op in ("<<",):
            if not b.coeffs and b.exact:
                scale = 1 << b.const
                return Affine(
                    coeffs={v: (None if c is None else c * scale)
                            for v, c in a.coeffs.items()},
                    const=a.const * scale, exact=a.exact)
    # Anything else: unknown in every loop var mentioned.
    mentioned = _vars_of(expr) & loop_vars
    return Affine(coeffs={v: None for v in mentioned}, exact=False)


def _index_vars(aff: Affine) -> tuple[str, ...]:
    """Loop variables the affine index actually depends on."""
    return tuple(sorted(v for v, c in aff.coeffs.items() if c != 0))


def _addressable_index(expr: Expr) -> bool:
    """True when the index folds into addressing modes / strength-reduced
    induction variables: any arithmetic over loop variables, constants
    and loop-invariant scalars (GVN + LICM + strength reduction).  Only
    indirect indices (an array load inside the index) cost real ops."""

    def has_aload(e: Expr) -> bool:
        if isinstance(e, ArrayLoad):
            return True
        if isinstance(e, Bin):
            return has_aload(e.lhs) or has_aload(e.rhs)
        if isinstance(e, Conv):
            return has_aload(e.expr)
        return False

    return not has_aload(expr)


def _vars_of(expr: Expr) -> set[str]:
    if isinstance(expr, Local):
        return {expr.name}
    if isinstance(expr, Bin):
        return _vars_of(expr.lhs) | _vars_of(expr.rhs)
    if isinstance(expr, Conv):
        return _vars_of(expr.expr)
    if isinstance(expr, ArrayLoad):
        return _vars_of(expr.index)
    return set()


def _carried_locals(body: Block) -> set[str]:
    """Loop-carried locals: written in the body and read *before* any
    write (an upward-exposed use), i.e. true accumulators.  A temporary
    defined before its uses within the same iteration is not carried."""
    written: set[str] = set()
    upward_exposed: set[str] = set()

    def walk_expr(e: Expr) -> None:
        if isinstance(e, Local):
            if e.name not in written:
                upward_exposed.add(e.name)
        elif isinstance(e, Bin):
            walk_expr(e.lhs)
            walk_expr(e.rhs)
        elif isinstance(e, Conv):
            walk_expr(e.expr)
        elif isinstance(e, ArrayLoad):
            walk_expr(e.index)

    def walk(s: Stmt) -> None:
        if isinstance(s, Block):
            for inner in s.stmts:
                walk(inner)
        elif isinstance(s, Assign):
            walk_expr(s.expr)
            written.add(s.name)
        elif isinstance(s, ArrayStore):
            walk_expr(s.index)
            walk_expr(s.value)
        elif isinstance(s, For):
            walk(s.body)
        elif isinstance(s, If):
            walk_expr(s.cond)
            walk(s.then_body)
            if s.else_body is not None:
                walk(s.else_body)

    walk(body)
    return written & upward_exposed


class _Lowerer:
    def __init__(self, method: KernelMethod):
        self.method = method
        self.array_types: dict[str, JType] = {
            p.name: p.jtype for p in method.params if p.is_array}

    def lower(self) -> MachineKernel:
        items = self._stmts(self.method.body, loop_vars=set(),
                            innermost_var=None, carried=set(),
                            unroll_shift=0)
        return MachineKernel(
            name=self.method.name,
            params=[p.name for p in self.method.params],
            body=items,
        )

    # -- expression lowering: returns (ops, reads_carried) --------------------

    def _expr_ops(self, e: Expr, loop_vars: set[str],
                  innermost_var: str | None, carried: set[str],
                  unroll_shift: int) -> tuple[list[MachineOp], bool]:
        if isinstance(e, ConstExpr):
            return [], False
        if isinstance(e, Local):
            return [], e.name in carried
        if isinstance(e, Conv):
            ops, on_chain = self._expr_ops(e.expr, loop_vars, innermost_var,
                                           carried, unroll_shift)
            src_t = self.method.expr_type(e.expr)
            ops.append(MachineOp("cvt", bits=max(src_t.bits, e.target.bits),
                                 is_int=not e.target.is_float,
                                 on_dep_chain=on_chain))
            return ops, on_chain
        if isinstance(e, ArrayLoad):
            aff = analyze_affine(e.index, loop_vars)
            stride = aff.coeff(innermost_var) if innermost_var else 0
            # Affine indices fold into x86 addressing modes
            # ([base + idx*scale]); only indirect index math costs ops.
            if _addressable_index(e.index):
                idx_ops = []
            else:
                idx_ops, _ = self._expr_ops(e.index, loop_vars,
                                            innermost_var, carried,
                                            unroll_shift)
            et = self.array_types[e.array]
            idx_ops.append(MachineOp(
                "load", bits=et.bits, stream=e.array,
                stride_elems=stride,
                offset_elems=(aff.const + unroll_shift
                              * (stride if stride is not None else 0)),
                index_vars=_index_vars(aff),
                is_int=not et.is_float))
            return idx_ops, False
        if isinstance(e, Bin):
            lops, lchain = self._expr_ops(e.lhs, loop_vars, innermost_var,
                                          carried, unroll_shift)
            rops, rchain = self._expr_ops(e.rhs, loop_vars, innermost_var,
                                          carried, unroll_shift)
            t = self.method.expr_type(e)
            on_chain = lchain or rchain
            kind = _OP_KIND[e.op]
            if kind == "cmp":
                on_chain = False
            ops = lops + rops
            ops.append(MachineOp(kind, bits=t.bits if t.bits >= 32 else 32,
                                 is_int=not t.is_float,
                                 on_dep_chain=on_chain))
            return ops, on_chain
        raise TypeError(f"cannot lower {e!r}")

    # -- statement lowering ------------------------------------------------------

    def _stmts(self, block: Block, loop_vars: set[str],
               innermost_var: str | None, carried: set[str],
               unroll_shift: int) -> list[KernelItem]:
        items: list[KernelItem] = []
        for s in block.stmts:
            items.extend(self._stmt(s, loop_vars, innermost_var, carried,
                                    unroll_shift))
        return items

    def _stmt(self, s: Stmt, loop_vars: set[str],
              innermost_var: str | None, carried: set[str],
              unroll_shift: int) -> list[KernelItem]:
        if isinstance(s, Block):
            return self._stmts(s, loop_vars, innermost_var, carried,
                               unroll_shift)
        if isinstance(s, Assign):
            ops, _ = self._expr_ops(s.expr, loop_vars, innermost_var,
                                    carried, unroll_shift)
            if not loop_vars:
                return [SetupAssign(name=s.name, expr=s.expr,
                                    ops=tuple(ops))]
            return list(ops)
        if isinstance(s, ArrayStore):
            aff = analyze_affine(s.index, loop_vars)
            if _addressable_index(s.index):
                idx_ops = []
            else:
                idx_ops, _ = self._expr_ops(s.index, loop_vars,
                                            innermost_var, carried,
                                            unroll_shift)
            val_ops, _ = self._expr_ops(s.value, loop_vars, innermost_var,
                                        carried, unroll_shift)
            stride = aff.coeff(innermost_var) if innermost_var else 0
            et = self.array_types[s.array]
            store = MachineOp(
                "store", bits=et.bits, stream=s.array,
                stride_elems=stride,
                offset_elems=(aff.const + unroll_shift
                              * (stride if stride is not None else 0)),
                index_vars=_index_vars(aff),
                is_int=not et.is_float)
            return idx_ops + val_ops + [store]
        if isinstance(s, For):
            inner_carried = _carried_locals(s.body)
            body_items = self._stmts(
                s.body, loop_vars | {s.var}, s.var, inner_carried, 0)
            loop = MachineLoop(var=s.var, start=s.start, end=s.end,
                               step=s.step, body=body_items)
            return [loop]
        if isinstance(s, If):
            cond_ops, _ = self._expr_ops(s.cond, loop_vars, innermost_var,
                                         carried, unroll_shift)
            then_items = self._stmts(s.then_body, loop_vars, innermost_var,
                                     carried, unroll_shift)
            else_items = (self._stmts(s.else_body, loop_vars, innermost_var,
                                      carried, unroll_shift)
                          if s.else_body else [])
            # Branchy cost model: both sides charged at half weight would
            # need probabilities; charge the longer side plus the branch.
            cond_ops.append(MachineOp("branch", is_int=True))
            longer = then_items if len(then_items) >= len(else_items) \
                else else_items
            return list(cond_ops) + longer
        if isinstance(s, Return):
            if s.expr is None:
                return []
            ops, _ = self._expr_ops(s.expr, loop_vars, innermost_var,
                                    carried, unroll_shift)
            return list(ops)
        raise TypeError(f"cannot lower statement {s!r}")


def lower_method(method: KernelMethod) -> MachineKernel:
    """Lower a type-checked kernel method to a scalar machine kernel."""
    return _Lowerer(method).lower()


def unroll_loop(lowerer_method: KernelMethod, loop: For,
                loop_vars: set[str], factor: int) -> list[KernelItem]:
    """Lower ``factor`` copies of a loop body with shifted indices."""
    lw = _Lowerer(lowerer_method)
    carried = _carried_locals(loop.body)
    items: list[KernelItem] = []
    for u in range(factor):
        items.extend(lw._stmts(loop.body, loop_vars | {loop.var}, loop.var,
                               carried, u))
    return items
