"""The MiniVM tiered JIT: C1 (fast, lazy) and C2 (optimizing, SLP)."""

from repro.jvm.jit.c1 import compile_c1
from repro.jvm.jit.c2 import compile_c2

__all__ = ["compile_c1", "compile_c2"]
