"""The SLP autovectorizer (Larsen & Amarasinghe, PLDI 2000), as HotSpot
C2 implements it — with its documented limits.

SLP packs groups of isomorphic scalar instructions from unrolled loop
bodies into SSE-width (128-bit) vector instructions.  The limits the
paper leans on (Sections 2.2, 3.4, 4.2):

* basic blocks only — no cross-iteration vectorization beyond what the
  unroller exposes;
* no reduction idioms — packs that lie on a loop-carried dependency
  chain are rejected;
* conversions (the sub-``int`` promotion traffic of quantized Java code)
  defeat pack formation;
* memory packs need adjacent, unit-stride accesses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.timing.kernelmodel import MachineOp

VECTOR_BITS = 128  # HotSpot emits SSE-width packs (paper, Section 3.4).

_PACKABLE_KINDS = {"load", "store", "add", "mul", "div"}
# int ops of these kinds are assumed to be addressing arithmetic and
# are folded into the vector addressing mode when packing succeeds.
_ADDRESSING_KINDS = {"add", "mul", "shift", "logic"}


@dataclass
class SlpResult:
    """Outcome of one SLP attempt."""

    success: bool
    reason: str
    vector_ops: list[MachineOp] | None = None


def _is_addressing(op: MachineOp) -> bool:
    return op.is_int and op.kind in _ADDRESSING_KINDS and \
        not op.on_dep_chain


def attempt_slp(unrolled: list[MachineOp], factor: int) -> SlpResult:
    """Try to pack an unrolled innermost-loop body.

    ``unrolled`` holds ``factor`` isomorphic copies of the original body
    (the unroller guarantees isomorphism); copy ``u`` occupies positions
    ``[u*L, (u+1)*L)``.
    """
    if factor < 2 or len(unrolled) % factor != 0:
        return SlpResult(False, "unroll factor does not divide body")
    body_len = len(unrolled) // factor

    vector_ops: list[MachineOp] = []
    for p in range(body_len):
        group = [unrolled[u * body_len + p] for u in range(factor)]
        first = group[0]
        if not all(g.kind == first.kind and g.bits == first.bits
                   and g.is_int == first.is_int
                   and g.stream == first.stream for g in group):
            return SlpResult(False, f"non-isomorphic group at {p}")
        if _is_addressing(first) and first.stream is None:
            continue  # folded into vector addressing
        if first.kind == "branch" or first.kind == "cmp":
            return SlpResult(False, "control flow in block")
        if first.on_dep_chain:
            # The reduction idiom HotSpot SLP cannot detect.
            return SlpResult(False, "loop-carried dependency (reduction)")
        if first.kind == "cvt":
            return SlpResult(False, "type conversion defeats packing")
        if first.kind not in _PACKABLE_KINDS:
            return SlpResult(False, f"unpackable op kind {first.kind}")
        if first.is_memory:
            if first.stride_elems != 1:
                return SlpResult(
                    False, f"non-unit stride on stream {first.stream}")
            offsets = sorted(g.offset_elems for g in group)
            if offsets != list(range(offsets[0], offsets[0] + factor)):
                return SlpResult(
                    False, f"non-adjacent accesses on {first.stream}")
        lanes = VECTOR_BITS // first.bits
        if lanes < 2 or factor % lanes != 0:
            return SlpResult(False, f"cannot tile {first.bits}-bit lanes")
        for v in range(factor // lanes):
            vector_ops.append(MachineOp(
                kind=first.kind, bits=first.bits, lanes=lanes,
                stream=first.stream, stride_elems=first.stride_elems,
                offset_elems=first.offset_elems + v * lanes,
                index_vars=first.index_vars, is_int=first.is_int))
    if not any(op.lanes > 1 for op in vector_ops):
        return SlpResult(False, "nothing packed")
    return SlpResult(True, "packed", vector_ops)
