"""The C2 tier: the optimizing compiler with unrolling and SLP.

C2 unrolls hot counted innermost loops and runs the SLP autovectorizer
over the unrolled body.  When SLP succeeds the loop advances by the
unroll factor with SSE-width packs and a scalar tail loop handles the
remainder; when SLP fails (reductions, conversions, strided access) the
loop stays scalar but keeps the unroll, amortizing loop overhead —
exactly the behaviour the paper reports for HotSpot ("the C2 compiler
will unroll the hot loops in both Java versions, but does [not] generate
SIMD instructions").
"""

from __future__ import annotations

from dataclasses import replace

from repro.jvm.ast import (
    Bin,
    ConstExpr,
    For,
    KernelMethod,
    check_method,
)
from repro.jvm.jit.lower import lower_method, unroll_loop, _Lowerer
from repro.jvm.jit.slp import attempt_slp
from repro.jvm.jtypes import JINT
from repro.timing.kernelmodel import (
    KernelItem,
    MachineKernel,
    MachineLoop,
    MachineOp,
)

UNROLL_FACTOR = 8

# Managed-code throughput tax over ideal native scalar code: array
# bounds checks that range-check elimination cannot fully hoist, null
# checks, conservative FP code selection (no -ffast-math reassociation)
# and safepoint polls.  Calibrated so the SLP-vectorized Java SAXPY
# lands at the paper's ~2 flops/cycle in L1.
C2_INEFFICIENCY = 2.0


def _is_simple_innermost(loop: MachineLoop) -> bool:
    return all(isinstance(item, MachineOp) for item in loop.body)


def _main_end_expr(loop: MachineLoop, factor: int):
    """end - ((end - start) % factor) as a bound expression."""
    span = Bin("-", loop.end, loop.start)
    rem = Bin("%", span, ConstExpr(factor, JINT))
    return Bin("-", loop.end, rem)


class _C2:
    def __init__(self, method: KernelMethod, enable_slp: bool = True):
        self.method = method
        self.enable_slp = enable_slp
        self.slp_log: list[tuple[str, str]] = []

    def optimize(self, kernel: MachineKernel,
                 ast_loops: dict[str, For]) -> MachineKernel:
        kernel.body = self._items(kernel.body, ast_loops, set())
        kernel.tier = "c2"
        return kernel

    def _items(self, items: list[KernelItem], ast_loops: dict[str, For],
               enclosing: set[str]) -> list[KernelItem]:
        out: list[KernelItem] = []
        for item in items:
            if isinstance(item, MachineLoop):
                out.extend(self._loop(item, ast_loops, enclosing))
            else:
                out.append(item)
        return out

    def _loop(self, loop: MachineLoop, ast_loops: dict[str, For],
              enclosing: set[str]) -> list[KernelItem]:
        if not _is_simple_innermost(loop):
            loop.body = self._items(loop.body, ast_loops,
                                    enclosing | {loop.var})
            return [loop]
        ast_for = ast_loops.get(loop.var)
        step_const = isinstance(ast_for.step, ConstExpr) and \
            ast_for.step.value == 1 if ast_for is not None else False
        if ast_for is None or not step_const:
            return [loop]

        unrolled_items = unroll_loop(self.method, ast_for, enclosing,
                                     UNROLL_FACTOR)
        unrolled_ops = [i for i in unrolled_items if isinstance(i, MachineOp)]
        if self.enable_slp:
            result = attempt_slp(unrolled_ops, UNROLL_FACTOR)
        else:
            from repro.jvm.jit.slp import SlpResult
            result = SlpResult(False, "SLP disabled")

        main = MachineLoop(
            var=loop.var, start=loop.start,
            end=_main_end_expr(loop, UNROLL_FACTOR),
            step=ConstExpr(UNROLL_FACTOR, JINT),
        )
        tail = MachineLoop(
            var=loop.var + "$tail", start=_main_end_expr(loop, UNROLL_FACTOR),
            end=loop.end, step=ConstExpr(1, JINT),
            body=list(loop.body),
        )
        if result.success:
            self.slp_log.append((loop.var, "vectorized"))
            main.body = list(result.vector_ops or [])
            return [main, tail]
        # SLP failed: unrolled scalar loop (overhead amortized).
        self.slp_log.append((loop.var, f"scalar: {result.reason}"))
        main.body = list(unrolled_ops)
        return [main, tail]


def _collect_ast_loops(method: KernelMethod) -> dict[str, For]:
    loops: dict[str, For] = {}

    def walk(stmt) -> None:
        from repro.jvm.ast import Block, If
        if isinstance(stmt, Block):
            for s in stmt.stmts:
                walk(s)
        elif isinstance(stmt, For):
            loops[stmt.var] = stmt
            walk(stmt.body)
        elif isinstance(stmt, If):
            walk(stmt.then_body)
            if stmt.else_body is not None:
                walk(stmt.else_body)

    walk(method.body)
    return loops


def compile_c2(method: KernelMethod,
               enable_slp: bool = True) -> MachineKernel:
    """Compile at tier C2, optionally disabling SLP (for the ablation)."""
    method = check_method(method)
    kernel = lower_method(method)
    c2 = _C2(method, enable_slp=enable_slp)
    kernel = c2.optimize(kernel, _collect_ast_loops(method))
    kernel.inefficiency = C2_INEFFICIENCY
    kernel.slp_log = c2.slp_log  # type: ignore[attr-defined]
    return kernel
