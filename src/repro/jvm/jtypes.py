"""Java primitive types with JVM arithmetic semantics.

The crucial rule for the paper's variable-precision comparison: *Java
does not support arithmetic on types narrower than 32 bits* — ``byte``,
``short`` and ``char`` operands undergo binary numeric promotion to
``int`` before any arithmetic, and results must be cast back down
explicitly.  MiniVM enforces this in its type checker, which is what
makes the 8-bit and 4-bit Java dot products pay the promotion tax the
paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class JType:
    name: str
    bits: int
    is_float: bool
    dtype: str  # numpy dtype used by the interpreter

    @property
    def np_dtype(self) -> np.dtype:
        return np.dtype(self.dtype)

    @property
    def promoted(self) -> "JType":
        """Binary numeric promotion (JLS 5.6.2) target of this type."""
        if self.is_float:
            return self
        if self.bits < 32:
            return JINT
        return self

    def __str__(self) -> str:
        return self.name


JBOOL = JType("boolean", 8, False, "bool")
JBYTE = JType("byte", 8, False, "int8")
JSHORT = JType("short", 16, False, "int16")
JCHAR = JType("char", 16, False, "uint16")
JINT = JType("int", 32, False, "int32")
JLONG = JType("long", 64, False, "int64")
JFLOAT = JType("float", 32, True, "float32")
JDOUBLE = JType("double", 64, True, "float64")

PRIMITIVES = (JBOOL, JBYTE, JSHORT, JCHAR, JINT, JLONG, JFLOAT, JDOUBLE)


def promote_pair(a: JType, b: JType) -> JType:
    """JLS binary numeric promotion of two operand types."""
    if a == JDOUBLE or b == JDOUBLE:
        return JDOUBLE
    if a == JFLOAT or b == JFLOAT:
        return JFLOAT
    if a == JLONG or b == JLONG:
        return JLONG
    return JINT


def jtype_named(name: str) -> JType:
    for t in PRIMITIVES:
        if t.name == name:
            return t
    raise KeyError(f"unknown Java type {name!r}")
