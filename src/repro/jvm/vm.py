"""The MiniVM facade: method loading, execution, tiered compilation.

Execution semantics always come from the bytecode interpreter (bit-exact
Java arithmetic); the JIT tiers produce *machine kernels* — the cost
model's view of the compiled code.  This split mirrors how we use the
VM: correctness from interpretation, performance figures from pricing
the compiled instruction mix on the Haswell model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.jvm.ast import KernelMethod
from repro.jvm.bytecode import CompiledMethod, compile_method
from repro.jvm.interpreter import Interpreter
from repro.jvm.jit import compile_c1, compile_c2
from repro.timing.kernelmodel import MachineKernel


class TieredState(enum.Enum):
    INTERPRETED = "interpreted"
    C1 = "c1"
    C2 = "c2"


@dataclass
class _LoadedMethod:
    compiled: CompiledMethod
    state: TieredState = TieredState.INTERPRETED
    c1_kernel: MachineKernel | None = None
    c2_kernel: MachineKernel | None = None


@dataclass
class MiniVM:
    """A managed runtime instance (the paper's Server VM analog).

    ``compile_threshold`` matches the artifact's
    ``-XX:CompileThreshold=100``; C1 kicks in at one tenth of it.
    ``enable_slp`` feeds the SLP ablation.
    """

    compile_threshold: int = 100
    enable_slp: bool = True
    methods: dict[str, _LoadedMethod] = field(default_factory=dict)
    interpreter: Interpreter = field(default_factory=Interpreter)

    def load(self, method: KernelMethod) -> str:
        if method.name in self.methods:
            raise ValueError(f"method {method.name!r} already loaded")
        self.methods[method.name] = _LoadedMethod(compile_method(method))
        return method.name

    def call(self, name: str, *args: Any) -> Any:
        lm = self._get(name)
        result = self.interpreter.run(lm.compiled, args)
        self._maybe_tier_up(lm)
        return result

    def warm_up(self, name: str, *args: Any, runs: int | None = None) -> None:
        """Trigger JIT compilation by repeated invocation (the paper's
        100+ warm-up runs)."""
        runs = runs if runs is not None else self.compile_threshold
        for _ in range(runs):
            self.call(name, *args)

    def force_tier(self, name: str, state: TieredState) -> None:
        """Skip warm-up; benchmarks use steady-state C2 directly, like
        the paper's measurements exclude JIT warm-up."""
        lm = self._get(name)
        lm.state = state
        self._ensure_kernels(lm)

    def tier_of(self, name: str) -> TieredState:
        return self._get(name).state

    def machine_kernel(self, name: str) -> MachineKernel:
        """The compiled-code view for the current tier."""
        lm = self._get(name)
        self._ensure_kernels(lm)
        if lm.state == TieredState.C2:
            return lm.c2_kernel  # type: ignore[return-value]
        if lm.state == TieredState.C1:
            return lm.c1_kernel  # type: ignore[return-value]
        raise RuntimeError(
            f"{name} is still interpreted; warm it up or force a tier")

    def profile(self, name: str) -> tuple[int, int]:
        lm = self._get(name)
        return lm.compiled.invocations, lm.compiled.backedges

    # -- internals --------------------------------------------------------------

    def _get(self, name: str) -> _LoadedMethod:
        if name not in self.methods:
            raise KeyError(f"method {name!r} not loaded")
        return self.methods[name]

    def _maybe_tier_up(self, lm: _LoadedMethod) -> None:
        inv = lm.compiled.invocations
        hot = inv + lm.compiled.backedges // 10
        if lm.state == TieredState.INTERPRETED and \
                hot >= max(1, self.compile_threshold // 10):
            lm.state = TieredState.C1
        if lm.state == TieredState.C1 and hot >= self.compile_threshold:
            lm.state = TieredState.C2
        self._ensure_kernels(lm)

    def _ensure_kernels(self, lm: _LoadedMethod) -> None:
        if lm.state == TieredState.C1 and lm.c1_kernel is None:
            lm.c1_kernel = compile_c1(lm.compiled.method)
        if lm.state == TieredState.C2 and lm.c2_kernel is None:
            lm.c2_kernel = compile_c2(lm.compiled.method,
                                      enable_slp=self.enable_slp)
