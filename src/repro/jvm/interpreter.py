"""The MiniVM bytecode interpreter with HotSpot-style profiling.

Executes bytecode with exact Java arithmetic semantics (fixed-width
wraparound, truncating integer division, explicit narrowing on casts)
and counts invocations and loop backedges — the counters the tiered
compilation policy in :mod:`repro.jvm.vm` watches.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.jvm.bytecode import CompiledMethod, Instr
from repro.jvm.jtypes import JBOOL, JType


class JavaArithmeticError(ArithmeticError):
    """Raised for division by zero, like the JVM's ArithmeticException."""


def _coerce(t: JType, value: Any):
    # Integer narrowing wraps (JLS 5.1.3); numpy 2.x raises on
    # out-of-range Python ints, so wrap explicitly.
    if not t.is_float and t.name != "boolean":
        v = int(value) & ((1 << t.bits) - 1)
        if t.name != "char" and v >= (1 << (t.bits - 1)):
            v -= 1 << t.bits
        return t.np_dtype.type(v)
    with np.errstate(over="ignore"):
        return t.np_dtype.type(value)


def _binop(op: str, t: JType, a: Any, b: Any):
    # Binary numeric promotion happens BEFORE the operation (JLS 5.6.2):
    # byte * byte is computed at 32 bits, not 8.
    if t is not JBOOL and op not in ("==", "!=", "<", "<=", ">", ">="):
        a = _coerce(t, a)
        b = _coerce(t, b)
    with np.errstate(over="ignore"):
        if op == "+":
            return _coerce(t, a + b)
        if op == "-":
            return _coerce(t, a - b)
        if op == "*":
            return _coerce(t, a * b)
        if op == "/":
            if not t.is_float:
                if int(b) == 0:
                    raise JavaArithmeticError("/ by zero")
                q = abs(int(a)) // abs(int(b))
                return _coerce(t, q if (int(a) < 0) == (int(b) < 0) else -q)
            return _coerce(t, a / b)
        if op == "%":
            if not t.is_float:
                if int(b) == 0:
                    raise JavaArithmeticError("% by zero")
                ia, ib = int(a), int(b)
                return _coerce(t, ia - (abs(ia) // abs(ib)) * abs(ib)
                               * (1 if ia >= 0 else -1))
            return _coerce(t, np.fmod(a, b))
        if op == "&":
            return _coerce(t, int(a) & int(b))
        if op == "|":
            return _coerce(t, int(a) | int(b))
        if op == "^":
            return _coerce(t, int(a) ^ int(b))
        if op == "<<":
            return _coerce(t, int(a) << (int(b) & (t.bits - 1)))
        if op == ">>":
            return _coerce(t, int(a) >> (int(b) & (t.bits - 1)))
        if op == ">>>":
            shift = int(b) & (t.bits - 1)
            mask = (1 << t.bits) - 1
            return _coerce(t, (int(a) & mask) >> shift)
        if op == "==":
            return bool(a == b)
        if op == "!=":
            return bool(a != b)
        if op == "<":
            return bool(a < b)
        if op == "<=":
            return bool(a <= b)
        if op == ">":
            return bool(a > b)
        if op == ">=":
            return bool(a >= b)
    raise ValueError(f"unknown operator {op!r}")


class Interpreter:
    """Executes one compiled method per call; counts profile events."""

    def __init__(self) -> None:
        self.instructions_retired = 0

    def run(self, cm: CompiledMethod, args: Sequence[Any]) -> Any:
        cm.invocations += 1
        method = cm.method
        if len(args) != len(method.params):
            raise TypeError(
                f"{method.name} expects {len(method.params)} args, got "
                f"{len(args)}"
            )
        slots: list[Any] = [None] * max(cm.n_slots, 64)
        arrays: dict[int, np.ndarray] = {}
        for p, value in zip(method.params, args):
            if p.is_array:
                if not isinstance(value, np.ndarray) or \
                        value.dtype != p.jtype.np_dtype:
                    raise TypeError(
                        f"parameter {p.name} needs a numpy array of "
                        f"{p.jtype.np_dtype}"
                    )
                arrays[cm.array_slots[p.name]] = value
            else:
                slots[cm.slot_of[p.name]] = _coerce(p.jtype, value)

        code = cm.code
        stack: list[Any] = []
        pc = 0
        while pc < len(code):
            instr = code[pc]
            self.instructions_retired += 1
            op = instr.op
            if op == "push":
                stack.append(_coerce(instr.b, instr.a)
                             if instr.b is not JBOOL else bool(instr.a))
            elif op == "load":
                stack.append(slots[instr.a])
            elif op == "store":
                slots[instr.a] = stack.pop()
            elif op == "aload":
                idx = int(stack.pop())
                stack.append(arrays[instr.a][idx])
            elif op == "astore":
                value = stack.pop()
                idx = int(stack.pop())
                arr = arrays[instr.a]
                with np.errstate(over="ignore"):
                    arr[idx] = value
            elif op == "bin":
                b = stack.pop()
                a = stack.pop()
                stack.append(_binop(instr.a, instr.b, a, b))
            elif op == "conv":
                stack.append(_coerce(instr.a, stack.pop()))
            elif op == "jmp":
                if instr.a <= pc:
                    cm.backedges += 1
                pc = instr.a
                continue
            elif op == "jmpifnot":
                if not stack.pop():
                    pc = instr.a
                    continue
            elif op == "retval":
                return stack.pop()
            elif op == "ret":
                return None
            else:
                raise ValueError(f"unknown opcode {instr!r}")
            pc += 1
        return None
