"""Diagnostics: bytecode disassembly and compiled-code dumps.

The paper inspects HotSpot's JIT output with
``-XX:UnlockDiagnosticVMOptions -XX:CompileCommand=print`` to confirm
which loops vectorized and at what width (Section 3.4's "assembly
diagnostics").  MiniVM's analog: :func:`disassemble` pretty-prints a
method's bytecode, and :func:`print_compiled` dumps the machine kernel
of a compiled tier — loop structure, vector widths, dependency chains
and the SLP decision log.
"""

from __future__ import annotations

from io import StringIO

from repro.jvm.bytecode import CompiledMethod
from repro.timing.kernelmodel import (
    KernelItem,
    MachineKernel,
    MachineLoop,
    MachineOp,
    SetupAssign,
)


def disassemble(cm: CompiledMethod) -> str:
    """Human-readable bytecode listing with branch targets."""
    out = StringIO()
    targets = {ins.a for ins in cm.code if ins.op in ("jmp", "jmpifnot")}
    out.write(f"method {cm.name} "
              f"({len(cm.code)} instructions, {cm.n_slots} slots)\n")
    slot_names = {v: k for k, v in cm.slot_of.items()}
    slot_names.update({v: f"{k}[]" for k, v in cm.array_slots.items()})
    for pc, ins in enumerate(cm.code):
        label = "=>" if pc in targets else "  "
        text = ins.op
        if ins.op in ("load", "store", "aload", "astore"):
            text += f" {slot_names.get(ins.a, ins.a)}"
        elif ins.op == "push":
            text += f" {ins.a!r}"
        elif ins.op == "bin":
            text += f" {ins.a} [{ins.b}]"
        elif ins.op == "conv":
            text += f" -> {ins.a}"
        elif ins.op in ("jmp", "jmpifnot"):
            arrow = "^" if isinstance(ins.a, int) and ins.a <= pc else "v"
            text += f" {ins.a} {arrow}"
        out.write(f"{label} {pc:4d}: {text}\n")
    return out.getvalue()


def _format_op(op: MachineOp) -> str:
    width = f"{op.lanes}x{op.bits}b" if op.lanes > 1 else f"{op.bits}b"
    parts = [f"{op.kind:8s} {width:8s}"]
    if op.stream:
        stride = "?" if op.stride_elems is None else op.stride_elems
        parts.append(f"{op.stream}[+{op.offset_elems}, stride {stride}]")
    if op.on_dep_chain:
        parts.append("<loop-carried>")
    if op.is_int:
        parts.append("int")
    return " ".join(parts)


def _dump_items(items: list[KernelItem], out: StringIO,
                depth: int) -> None:
    pad = "    " * depth
    for item in items:
        if isinstance(item, MachineLoop):
            out.write(f"{pad}loop {item.var} "
                      f"[step {getattr(item.step, 'value', '?')}]\n")
            _dump_items(item.body, out, depth + 1)
        elif isinstance(item, SetupAssign):
            out.write(f"{pad}{item.name} = <setup> "
                      f"({len(item.ops)} ops)\n")
        else:
            out.write(f"{pad}{_format_op(item)}\n")


def print_compiled(kernel: MachineKernel) -> str:
    """The ``CompileCommand=print`` analog for a machine kernel."""
    out = StringIO()
    out.write(f"compiled {kernel.name} [tier {kernel.tier}]"
              f" call overhead {kernel.call_overhead_cycles:.0f} cyc,"
              f" inefficiency x{kernel.inefficiency:g}\n")
    slp_log = getattr(kernel, "slp_log", None)
    if slp_log:
        for var, outcome in slp_log:
            out.write(f"  SLP {var}: {outcome}\n")
    _dump_items(kernel.body, out, 1)
    return out.getvalue()


def vector_widths(kernel: MachineKernel) -> set[int]:
    """All SIMD widths (in bits) present in the compiled code."""
    widths: set[int] = set()

    def walk(items: list[KernelItem]) -> None:
        for item in items:
            if isinstance(item, MachineLoop):
                walk(item.body)
            elif isinstance(item, MachineOp) and item.lanes > 1:
                widths.add(item.lanes * item.bits)

    walk(kernel.body)
    return widths
