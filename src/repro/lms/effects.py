"""The LMS effect system.

Effect summaries record which memory *containers* (arrays, mutable
variables) a node reads or writes.  As in the paper, intrinsics inferred to
be loads carry a read effect on each memory argument, and intrinsics
inferred to be stores carry a write effect — these summaries are what makes
scheduling of the DSL sound.

Serialization discipline (classic LMS):

* a read of container ``c`` must follow the last write to ``c``;
* a write to ``c`` must follow the last write *and* every read since it;
* a global effect (e.g. ``_rdrand16_step``) is a full barrier.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Effects:
    """An effect summary for one node or one block."""

    reads: frozenset[int] = frozenset()
    writes: frozenset[int] = frozenset()
    is_global: bool = False
    # Dependencies on earlier effectful statements, filled in at reflect
    # time by the IRBuilder; sym ids this statement must be scheduled after.
    deps: frozenset[int] = frozenset()

    @property
    def pure(self) -> bool:
        return not (self.reads or self.writes or self.is_global)

    @property
    def effectful(self) -> bool:
        return not self.pure

    def merge(self, other: "Effects") -> "Effects":
        return Effects(
            reads=self.reads | other.reads,
            writes=self.writes | other.writes,
            is_global=self.is_global or other.is_global,
            deps=self.deps | other.deps,
        )

    def without_containers(self, local: frozenset[int]) -> "Effects":
        """Drop effects on containers local to a block (e.g. inner vars)."""
        return Effects(
            reads=self.reads - local,
            writes=self.writes - local,
            is_global=self.is_global,
            deps=frozenset(),
        )


PURE = Effects()


def read(*containers: int) -> Effects:
    return Effects(reads=frozenset(containers))


def write(*containers: int) -> Effects:
    return Effects(writes=frozenset(containers))


def global_effect() -> Effects:
    return Effects(is_global=True)


@dataclass
class EffectContext:
    """Per-block bookkeeping used to serialize effectful statements."""

    last_write: dict[int, int] = field(default_factory=dict)
    reads_since_write: dict[int, list[int]] = field(default_factory=dict)
    last_global: int | None = None
    # Every effectful stm since the last global barrier.
    effectful_since_global: list[int] = field(default_factory=list)
    # Containers declared in this block (local mutable variables).
    local_containers: set[int] = field(default_factory=set)

    def dependencies_for(self, eff: Effects) -> frozenset[int]:
        """Compute the sym ids the new effectful statement must follow."""
        deps: set[int] = set()
        if self.last_global is not None:
            deps.add(self.last_global)
        if eff.is_global:
            deps.update(self.effectful_since_global)
        for c in eff.reads:
            if c in self.last_write:
                deps.add(self.last_write[c])
        for c in eff.writes:
            if c in self.last_write:
                deps.add(self.last_write[c])
            deps.update(self.reads_since_write.get(c, ()))
        return frozenset(deps)

    def record(self, sym_id: int, eff: Effects) -> None:
        """Update the bookkeeping after reflecting an effectful statement."""
        if eff.is_global:
            self.last_global = sym_id
            self.effectful_since_global = []
            self.last_write = {}
            self.reads_since_write = {}
            return
        self.effectful_since_global.append(sym_id)
        for c in eff.reads:
            self.reads_since_write.setdefault(c, []).append(sym_id)
        for c in eff.writes:
            self.last_write[c] = sym_id
            self.reads_since_write[c] = []
