"""Staged control flow: ``forloop``, ``if_then_else`` and ``while_loop``.

``forloop`` mirrors the paper's construct of the same name: it creates a
staged counted loop in the computation graph, with a bound index symbol
and a stride — e.g. a stride of 8 for an AVX loop over floats plus a
stride-1 scalar tail loop.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.lms.defs import Block, ForLoop, IfThenElse, WhileLoop
from repro.lms.expr import Const, Exp, Sym, lift
from repro.lms.graph import current_builder
from repro.lms.types import BOOL, INT32, VOID


def forloop(start: Any, end: Any, index: Sym | None = None,
            step: Any = 1, body: Callable[[Sym], Any] | None = None) -> Exp:
    """Stage a counted loop ``for (i = start; i < end; i += step) body(i)``.

    Mirrors the paper's ``forloop(0, n0, fresh[Int], 8, i => ...)``; the
    ``index`` argument may be omitted, in which case a fresh ``Int``
    symbol is allocated.
    """
    if body is None:
        raise TypeError("forloop requires a body function")
    builder = current_builder()
    start = lift(start)
    end = lift(end)
    step = lift(step)
    idx = index if index is not None else builder.fresh(INT32)

    with builder.block(bound=(idx,)) as frame:
        body(idx)
        block, summary = builder.close_block(frame, Const(None, VOID))

    node = ForLoop(start, end, step, idx, block, VOID)
    return builder.reflect_effect(node, summary)


def if_then_else(cond: Exp, then_branch: Callable[[], Any],
                 else_branch: Callable[[], Any] | None = None) -> Exp:
    """Stage a conditional; returns the merged result expression."""
    builder = current_builder()
    if not isinstance(cond, Exp) or cond.tp != BOOL:
        raise TypeError("if_then_else requires a staged Boolean condition")

    with builder.block() as frame:
        then_res = then_branch()
        then_res = lift(then_res) if then_res is not None else Const(None, VOID)
        then_block, then_eff = builder.close_block(frame, then_res)

    with builder.block() as frame:
        else_res = else_branch() if else_branch is not None else None
        else_res = lift(else_res) if else_res is not None else Const(None, VOID)
        else_block, else_eff = builder.close_block(frame, else_res)

    if then_block.result.tp != else_block.result.tp:
        raise TypeError(
            "if_then_else branches must produce the same type, got "
            f"{then_block.result.tp} and {else_block.result.tp}"
        )
    node = IfThenElse(cond, then_block, else_block, then_block.result.tp)
    return builder.reflect_effect(node, then_eff.merge(else_eff))


def while_loop(cond: Callable[[], Exp], body: Callable[[], Any]) -> Exp:
    """Stage a while loop with a staged condition block."""
    builder = current_builder()

    with builder.block() as frame:
        cond_res = cond()
        if not isinstance(cond_res, Exp) or cond_res.tp != BOOL:
            raise TypeError("while_loop condition must produce a staged Boolean")
        cond_block, cond_eff = builder.close_block(frame, cond_res)

    with builder.block() as frame:
        body()
        body_block, body_eff = builder.close_block(frame, Const(None, VOID))

    node = WhileLoop(cond_block, body_block, VOID)
    return builder.reflect_effect(node, cond_eff.merge(body_eff))
