"""Staging entry point: turn a Python function over staged values into a
computation graph (a ``StagedFunction``).

This is the analog of the paper's step 3 ("implement the SIMD logic as a
staged function"): the function body runs once at staging time, each
intrinsic invocation and auxiliary scalar operation is accumulated into
the graph, and the result is handed to the code generators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.lms.defs import Block
from repro.lms.effects import Effects
from repro.lms.expr import Exp, Sym, lift
from repro.lms.graph import IRBuilder, finish_root_block, staging_scope
from repro.lms.types import Type, VOID


@dataclass
class StagedFunction:
    """A staged function: named parameters plus an SSA body block."""

    name: str
    params: list[Sym]
    param_names: list[str]
    body: Block
    effects: Effects
    builder: IRBuilder = field(repr=False)
    # Effective middle-end optimization level this graph was (or is about
    # to be) processed at (see repro.lms.optimize).  Part of the cache
    # identity: repro.core.cache.graph_hash appends a level token when
    # non-zero, so a level-0 artifact is never served to a level-2
    # caller.  Level 0 leaves hashes identical to pre-optimizer builds.
    opt_level: int = field(default=0, compare=False)
    # Per-instance memos (never compared, never printed): the scheduled
    # body, the structural graph hash (repro.core.cache.graph_hash) and
    # the closure-compiled executor program (repro.simd.exec).
    _scheduled_body: Block | None = field(
        default=None, repr=False, compare=False)
    _graph_hash: str | None = field(default=None, repr=False, compare=False)
    _exec_program: object | None = field(
        default=None, repr=False, compare=False)

    @property
    def result_type(self) -> Type:
        return self.body.result.tp

    def scheduled(self) -> Block:
        """The scheduled (dead-code-eliminated) body, computed once.

        ``schedule_block`` is idempotent but O(graph); executors and
        code generators that used to re-schedule on every call go
        through here so repeated runs pay it exactly once.
        """
        if self._scheduled_body is None:
            from repro.lms.schedule import schedule_block
            self._scheduled_body = schedule_block(self.body)
        return self._scheduled_body

    @property
    def param_types(self) -> list[Type]:
        return [p.tp for p in self.params]

    def mutated_params(self) -> list[Sym]:
        """Parameters written by the body (arrays marked mutable and
        actually stored to, per the effect summary)."""
        written = self.effects.writes
        return [p for p in self.params if p.id in written]


def stage_function(fn: Callable[..., object], arg_types: Sequence[Type],
                   name: str | None = None,
                   param_names: Sequence[str] | None = None) -> StagedFunction:
    """Run ``fn`` on fresh staged symbols and capture the graph it builds.

    ``arg_types`` gives the staged type of each parameter.  The function
    may return a staged expression (the kernel's return value) or ``None``
    for a void kernel that only has store effects.
    """
    builder = IRBuilder()
    with staging_scope(builder):
        params = [builder.fresh(tp) for tp in arg_types]
        result = fn(*params)
        if result is not None and not isinstance(result, Exp):
            result = lift(result)
        body, effects = finish_root_block(builder, result)

    fn_name = name if name is not None else getattr(fn, "__name__", "staged")
    if param_names is None:
        code = getattr(fn, "__code__", None)
        if code is not None and code.co_argcount == len(params):
            param_names = list(code.co_varnames[: code.co_argcount])
        else:
            param_names = [f"arg{i}" for i in range(len(params))]
    return StagedFunction(
        name=fn_name,
        params=params,
        param_names=list(param_names),
        body=body,
        effects=effects,
        builder=builder,
    )
