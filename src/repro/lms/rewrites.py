"""Graph rewriting passes built on the transformer machinery.

LMS supports "DSL transformations by substitution" (paper Section 3.2):
once a substitution is defined, mirroring rebuilds the rest of the graph
around it.  This module uses that machinery for a classic cleanup pass —
algebraic simplification with constant propagation — applied to a staged
function before code generation:

* ``x + 0`` (integers), ``x - 0``, ``x * 1``, ``x / 1``, ``x << 0``,
  ``x >> 0``, ``x | 0``, ``x ^ 0`` → ``x``
* ``x * 0``, ``x & 0`` → ``0`` (integers only, and only when the
  discarded operand provably cannot trap — see below)
* ``x * 2^k`` → ``x << k`` (integer strength reduction)
* constant folding happens on reflection already; the pass re-triggers
  it for operands that become constant after substitution.

Float identities are restricted to the IEEE-754-exact ones: ``x + 0.0``
is *not* ``x`` (it maps ``-0.0`` to ``+0.0``), while ``x - 0.0``,
``x * 1.0`` and ``x / 1.0`` are exact for every input including NaN,
infinities and signed zeros.

Two safety mechanisms make the rules, and the optimizer passes built on
top of them (:mod:`repro.lms.optimize`), preserve *error paths* as well
as values:

* :func:`may_trap` classifies the pure nodes that can raise at run time
  (integer division/remainder by a possibly-zero divisor, shifts by a
  non-constant count, float→int casts of non-finite values, and
  division-family intrinsics).
* :class:`SafeTransformer` tracks a transitive "taint" over rebuilt pure
  nodes: a symbol is tainted when its defining subgraph contains a
  may-trap node.  Value-discarding rewrites (``x * 0 → 0``) only fire on
  untainted operands, and may-trap nodes are reflected *without* CSE so
  two occurrences are never merged (merging could turn a dead trapping
  node live, or vice versa, relative to the unoptimized schedule).
"""

from __future__ import annotations

import math

from repro.lms.defs import BinaryOp, Convert, Def, Stm
from repro.lms.expr import Const, Exp, Sym
from repro.lms.graph import current_builder
from repro.lms.staging import StagedFunction
from repro.lms.transform import Transformer, remirror_function
from repro.lms.types import ScalarType

_TRAP_INTRINSIC_MARKERS = ("_div_", "_rem_", "_idiv", "_irem",
                           "_udiv", "_urem")


def _nonzero_const(e: Exp) -> bool:
    return isinstance(e, Const) and isinstance(e.value, (int, bool)) \
        and int(e.value) != 0


def may_trap(rhs: Def) -> bool:
    """True when executing ``rhs`` can raise at run time.

    Conservative in the safe direction: returns True unless the node is
    provably trap-free.  The optimizer never hoists, CSE-merges or
    discards a may-trap node, so a graph optimized at any level raises
    exactly when the unoptimized graph does.
    """
    if isinstance(rhs, BinaryOp):
        tp = rhs.tp
        if rhs.op in ("/", "%"):
            if isinstance(tp, ScalarType) and tp.is_float:
                return False  # IEEE: divide by zero yields inf/NaN
            return not _nonzero_const(rhs.rhs)
        if rhs.op in ("<<", ">>"):
            b = rhs.rhs
            return not (isinstance(b, Const) and isinstance(b.value, (int, bool))
                        and 0 <= int(b.value) < 64)
        return False
    if isinstance(rhs, Convert):
        src = rhs.operand.tp
        dst = rhs.tp
        if isinstance(src, ScalarType) and isinstance(dst, ScalarType) \
                and src.is_float and dst.is_integer:
            # int(NaN) / int(inf) raise in both engines.
            return not isinstance(rhs.operand, Const)
        return False
    name = getattr(rhs, "intrinsic_name", "")
    if name and any(marker in name for marker in _TRAP_INTRINSIC_MARKERS):
        return True
    return False


class SafeTransformer(Transformer):
    """Mirroring transformer with trap-aware taint tracking.

    Subclasses implement rewrites in :meth:`_rewrite` (return ``None``
    to fall through to plain mirroring).  The base class guarantees:

    * every rebuilt pure symbol's taint is recorded (a symbol is tainted
      when its defining subgraph contains a :func:`may_trap` node), and
    * may-trap pure nodes are reflected without CSE, so substitution can
      never merge two trapping occurrences.
    """

    def __init__(self) -> None:
        super().__init__()
        self._tainted: set[int] = set()

    # -- rewrite hook -------------------------------------------------------

    def _rewrite(self, rhs: Def, stm: Stm) -> Exp | None:
        return None

    def mirror(self, rhs: Def, stm: Stm) -> Exp:
        out = self._rewrite(rhs, stm)
        if out is None:
            out = self._mirror_safe(rhs, stm)
        if isinstance(out, Exp):
            self._note_taint(out)
        return out

    def _mirror_safe(self, rhs: Def, stm: Stm) -> Exp:
        f = self
        if stm.effects.pure:
            node: Def | None = None
            if isinstance(rhs, BinaryOp):
                node = BinaryOp(rhs.op, f(rhs.lhs), f(rhs.rhs), rhs.tp)
            elif isinstance(rhs, Convert):
                node = Convert(f(rhs.operand), rhs.tp)
            elif getattr(rhs, "intrinsic_name", None) is not None:
                node = type(rhs)([f(a) if isinstance(a, Exp) else a
                                  for a in rhs.args])
            if node is not None and may_trap(node):
                return current_builder().reflect_pure(node, cse=False)
        return super().mirror(rhs, stm)

    # -- taint --------------------------------------------------------------

    def is_tainted(self, e: Exp) -> bool:
        return isinstance(e, Sym) and e.id in self._tainted

    def discardable(self, e: Exp) -> bool:
        """True when dropping every use of ``e`` cannot change the error
        path: constants, and symbols whose defining subgraph is free of
        may-trap pure nodes."""
        return isinstance(e, Const) or \
            (isinstance(e, Sym) and e.id not in self._tainted)

    def _note_taint(self, exp: Exp) -> None:
        if not isinstance(exp, Sym) or exp.id in self._tainted:
            return
        stm = current_builder().lookup(exp)
        if stm is None or stm.effects.effectful:
            # Effectful statements are always scheduled; discarding a
            # *reference* to one never changes whether it executes.
            return
        rhs = stm.rhs
        if may_trap(rhs) or any(self.is_tainted(a) for a in rhs.exp_args):
            self._tainted.add(exp.id)


def _is_int_zero(e: Exp) -> bool:
    return isinstance(e, Const) and isinstance(e.value, (int, bool)) \
        and int(e.value) == 0


def _is_pos_zero(e: Exp) -> bool:
    """Const ``+0`` of either dtype — explicitly excluding ``-0.0``,
    for which ``x - (-0.0)`` maps ``-0.0`` to ``+0.0``."""
    if not isinstance(e, Const) or e.value != 0:
        return False
    v = e.value
    return not (isinstance(v, float) and math.copysign(1.0, v) < 0)


def _is_one(e: Exp) -> bool:
    return isinstance(e, Const) and not isinstance(e.value, bool) \
        and e.value == 1


def _power_of_two(e: Exp) -> int | None:
    if isinstance(e, Const) and isinstance(e.value, int) and \
            e.value > 1 and (e.value & (e.value - 1)) == 0:
        return e.value.bit_length() - 1
    return None


class SimplifyTransformer(SafeTransformer):
    """Mirroring transformer with algebraic rewrite rules."""

    def __init__(self) -> None:
        super().__init__()
        self.rewrites = 0

    def _rewrite(self, rhs: Def, stm: Stm) -> Exp | None:
        if isinstance(rhs, BinaryOp):
            lhs = self(rhs.lhs)
            rval = self(rhs.rhs)
            simplified = self._simplify(rhs, lhs, rval)
            if simplified is not None:
                self.rewrites += 1
                return simplified
        return None

    def _simplify(self, node: BinaryOp, a: Exp, b: Exp) -> Exp | None:
        op = node.op
        tp = node.tp
        is_int = isinstance(tp, ScalarType) and tp.is_integer

        def same_type(e: Exp) -> Exp | None:
            # Identity rules may only return the surviving operand when
            # its type matches the node's (promotion can widen: returning
            # an int8 where consumers expect the promoted int32 would
            # change wraparound/shift semantics downstream).
            return e if e.tp == tp else None

        if op == "+":
            # Float x + 0.0 is NOT x: it maps -0.0 to +0.0.
            if is_int and _is_int_zero(b):
                return same_type(a)
            if is_int and _is_int_zero(a):
                return same_type(b)
        elif op == "-":
            # x - (+0) is exact for ints and IEEE floats alike (incl.
            # NaN, inf and -0.0); x - (-0.0) is not.
            if _is_pos_zero(b):
                return same_type(a)
        elif op == "*":
            # x * 1.0 is exact for every float input.
            if _is_one(b):
                return same_type(a)
            if _is_one(a):
                return same_type(b)
            if is_int and _is_int_zero(b) and self.discardable(a):
                return Const(0, tp)
            if is_int and _is_int_zero(a) and self.discardable(b):
                return Const(0, tp)
            if is_int and tp == a.tp:
                k = _power_of_two(b)
                if k is not None:
                    from repro.lms.ops import binary
                    return binary("<<", a, Const(k, node.rhs.tp))
        elif op == "/":
            if _is_one(b):
                return same_type(a)
        elif op in ("<<", ">>"):
            if _is_int_zero(b):
                return same_type(a)
        elif op == "|" or op == "^":
            if _is_int_zero(b):
                return same_type(a)
            if _is_int_zero(a):
                return same_type(b)
        elif op == "&":
            if _is_int_zero(b) and self.discardable(a):
                return Const(0, tp)
            if _is_int_zero(a) and self.discardable(b):
                return Const(0, tp)
        return None


def simplify(staged: StagedFunction) -> tuple[StagedFunction, int]:
    """Run the simplification pass; returns (new function, #rewrites)."""
    t = SimplifyTransformer()
    simplified = remirror_function(staged, t)
    return simplified, t.rewrites
