"""Graph rewriting passes built on the transformer machinery.

LMS supports "DSL transformations by substitution" (paper Section 3.2):
once a substitution is defined, mirroring rebuilds the rest of the graph
around it.  This module uses that machinery for a classic cleanup pass —
algebraic simplification with constant propagation — applied to a staged
function before code generation:

* ``x + 0``, ``x - 0``, ``x * 1``, ``x / 1``, ``x << 0``, ``x >> 0``,
  ``x | 0``, ``x ^ 0`` → ``x``
* ``x * 0``, ``x & 0`` → ``0`` (integers only: ``0.0 * x`` is not a
  float identity under NaN/inf)
* ``x * 2^k`` → ``x << k`` (integer strength reduction)
* constant folding happens on reflection already; the pass re-triggers
  it for operands that become constant after substitution.

The pass is semantics-preserving by construction: it only ever replaces
a pure node with an equivalent expression, and effectful statements are
re-reflected in order by the transformer.
"""

from __future__ import annotations

from repro.lms.defs import BinaryOp, Stm
from repro.lms.expr import Const, Exp
from repro.lms.graph import IRBuilder, finish_root_block, staging_scope
from repro.lms.staging import StagedFunction
from repro.lms.transform import Transformer
from repro.lms.types import ScalarType


def _is_const(e: Exp, value) -> bool:
    return isinstance(e, Const) and e.value == value


def _power_of_two(e: Exp) -> int | None:
    if isinstance(e, Const) and isinstance(e.value, int) and \
            e.value > 1 and (e.value & (e.value - 1)) == 0:
        return e.value.bit_length() - 1
    return None


class SimplifyTransformer(Transformer):
    """Mirroring transformer with algebraic rewrite rules."""

    def __init__(self) -> None:
        super().__init__()
        self.rewrites = 0

    def mirror(self, rhs, stm: Stm) -> Exp:
        if isinstance(rhs, BinaryOp):
            lhs = self(rhs.lhs)
            rval = self(rhs.rhs)
            simplified = self._simplify(rhs, lhs, rval)
            if simplified is not None:
                self.rewrites += 1
                return simplified
        return super().mirror(rhs, stm)

    def _simplify(self, node: BinaryOp, a: Exp, b: Exp) -> Exp | None:
        op = node.op
        tp = node.tp
        is_int = isinstance(tp, ScalarType) and tp.is_integer

        if op == "+":
            if _is_const(b, 0) or _is_const(b, 0.0):
                return a
            if _is_const(a, 0) or _is_const(a, 0.0):
                return b
        elif op == "-":
            if _is_const(b, 0) or _is_const(b, 0.0):
                return a
        elif op == "*":
            if _is_const(b, 1) or _is_const(b, 1.0):
                return a
            if _is_const(a, 1) or _is_const(a, 1.0):
                return b
            if is_int and (_is_const(b, 0) or _is_const(a, 0)):
                return Const(0, tp)
            if is_int:
                k = _power_of_two(b)
                if k is not None:
                    from repro.lms.ops import binary
                    return binary("<<", a, Const(k, node.rhs.tp))
        elif op == "/":
            if _is_const(b, 1) or _is_const(b, 1.0):
                return a
        elif op in ("<<", ">>"):
            if _is_const(b, 0):
                return a
        elif op == "|" or op == "^":
            if _is_const(b, 0):
                return a
            if _is_const(a, 0):
                return b
        elif op == "&":
            if _is_const(b, 0) or _is_const(a, 0):
                return Const(0, tp)
        return None


def simplify(staged: StagedFunction) -> tuple[StagedFunction, int]:
    """Run the simplification pass; returns (new function, #rewrites)."""
    builder = IRBuilder()
    t = SimplifyTransformer()
    with staging_scope(builder):
        new_params = [builder.fresh(p.tp) for p in staged.params]
        for old, new in zip(staged.params, new_params):
            t.register(old, new)
        for sym_id in staged.builder.mutable_syms:
            # Mutability marks carry over to the mirrored params.
            for old, new in zip(staged.params, new_params):
                if old.id == sym_id:
                    builder.mark_mutable(new)
        t.transform_statements(staged.body)
        result = t(staged.body.result)
        body, effects = finish_root_block(
            builder, result if not isinstance(result, Const)
            or result.value is not None else None)
    simplified = StagedFunction(
        name=staged.name, params=new_params,
        param_names=list(staged.param_names), body=body,
        effects=effects, builder=builder)
    return simplified, t.rewrites
