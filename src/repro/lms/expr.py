"""Staged expressions: the ``Exp[T]`` hierarchy.

An ``Exp`` is either a ``Const`` (a literal lifted into the staged program)
or a ``Sym`` (a symbolic reference to a graph node by numeric index).  As in
LMS, arithmetic on staged expressions does not compute values — it reflects
new ``Def`` nodes into the current computation graph, so that ``a + b`` on
two staged ``Int`` expressions builds the staged addition ``a' + b'``.
"""

from __future__ import annotations

from typing import Any

from repro.lms.types import (
    BOOL,
    DOUBLE,
    FLOAT,
    INT32,
    INT64,
    ScalarType,
    Type,
)


class Exp:
    """A staged expression of some staged type ``tp``."""

    __slots__ = ("tp",)

    def __init__(self, tp: Type):
        self.tp = tp

    # -- staged arithmetic -------------------------------------------------
    # The imports are local to break the Exp <-> ops cycle; ops constructs
    # Def nodes which reference Exp.

    def _binop(self, op: str, other: Any, reverse: bool = False) -> "Exp":
        from repro.lms import ops
        lhs, rhs = (other, self) if reverse else (self, other)
        return ops.binary(op, lhs, rhs)

    def __add__(self, other: Any) -> "Exp":
        return self._binop("+", other)

    def __radd__(self, other: Any) -> "Exp":
        return self._binop("+", other, reverse=True)

    def __sub__(self, other: Any) -> "Exp":
        return self._binop("-", other)

    def __rsub__(self, other: Any) -> "Exp":
        return self._binop("-", other, reverse=True)

    def __mul__(self, other: Any) -> "Exp":
        return self._binop("*", other)

    def __rmul__(self, other: Any) -> "Exp":
        return self._binop("*", other, reverse=True)

    def __truediv__(self, other: Any) -> "Exp":
        return self._binop("/", other)

    def __rtruediv__(self, other: Any) -> "Exp":
        return self._binop("/", other, reverse=True)

    def __mod__(self, other: Any) -> "Exp":
        return self._binop("%", other)

    def __rmod__(self, other: Any) -> "Exp":
        return self._binop("%", other, reverse=True)

    def __and__(self, other: Any) -> "Exp":
        return self._binop("&", other)

    def __rand__(self, other: Any) -> "Exp":
        return self._binop("&", other, reverse=True)

    def __or__(self, other: Any) -> "Exp":
        return self._binop("|", other)

    def __ror__(self, other: Any) -> "Exp":
        return self._binop("|", other, reverse=True)

    def __xor__(self, other: Any) -> "Exp":
        return self._binop("^", other)

    def __rxor__(self, other: Any) -> "Exp":
        return self._binop("^", other, reverse=True)

    def __lshift__(self, other: Any) -> "Exp":
        return self._binop("<<", other)

    def __rlshift__(self, other: Any) -> "Exp":
        return self._binop("<<", other, reverse=True)

    def __rshift__(self, other: Any) -> "Exp":
        return self._binop(">>", other)

    def __rrshift__(self, other: Any) -> "Exp":
        return self._binop(">>", other, reverse=True)

    def __neg__(self) -> "Exp":
        from repro.lms import ops
        return ops.negate(self)

    def __invert__(self) -> "Exp":
        from repro.lms import ops
        return ops.bitwise_not(self)

    # Comparisons produce staged Boolean expressions.  Note: this makes
    # Exp unhashable by identity unless we restore __hash__, which we do,
    # because Exps are used as dict keys throughout the graph machinery.

    def __eq__(self, other: Any) -> "Exp":  # type: ignore[override]
        return self._binop("==", other)

    def __ne__(self, other: Any) -> "Exp":  # type: ignore[override]
        return self._binop("!=", other)

    def __lt__(self, other: Any) -> "Exp":
        return self._binop("<", other)

    def __le__(self, other: Any) -> "Exp":
        return self._binop("<=", other)

    def __gt__(self, other: Any) -> "Exp":
        return self._binop(">", other)

    def __ge__(self, other: Any) -> "Exp":
        return self._binop(">=", other)

    def __hash__(self) -> int:
        return id(self)

    def same(self, other: Any) -> bool:
        """Structural identity check (``__eq__`` is staged equality)."""
        return self is other


class Const(Exp):
    """A literal value lifted into the staged program."""

    __slots__ = ("value",)

    def __init__(self, value: Any, tp: Type):
        super().__init__(tp)
        self.value = value

    def __repr__(self) -> str:
        return f"Const({self.value!r}: {self.tp})"

    def same(self, other: Any) -> bool:
        return (
            isinstance(other, Const)
            and other.tp == self.tp
            and other.value == self.value
        )

    def _key(self) -> tuple:
        return ("const", self.tp.name, self.value)


class Sym(Exp):
    """A symbolic reference to a graph node through a numeric index."""

    __slots__ = ("id",)

    def __init__(self, sym_id: int, tp: Type):
        super().__init__(tp)
        self.id = sym_id

    def __repr__(self) -> str:
        return f"x{self.id}: {self.tp}"

    def same(self, other: Any) -> bool:
        return isinstance(other, Sym) and other.id == self.id

    def _key(self) -> tuple:
        return ("sym", self.id)


def const(value: Any, tp: ScalarType | None = None) -> Const:
    """Lift a Python literal into a staged constant.

    Without an explicit type, ``bool`` maps to ``Boolean``, ``int`` to
    ``Int`` (or ``Long`` when out of 32-bit range) and ``float`` to
    ``Double``.
    """
    if tp is None:
        if isinstance(value, bool):
            tp = BOOL
        elif isinstance(value, int):
            tp = INT32 if INT32.min_value() <= value <= INT32.max_value() else INT64
        elif isinstance(value, float):
            tp = DOUBLE
        else:
            raise TypeError(f"cannot lift {value!r} into a staged constant")
    return Const(value, tp)


def lift(value: Any, like: Exp | None = None) -> Exp:
    """Return ``value`` unchanged if staged, else lift it as a constant.

    When ``like`` is given and is a float expression, integer literals are
    lifted at the matching float type so mixed arithmetic stays typed.
    """
    if isinstance(value, Exp):
        return value
    if like is not None and isinstance(like.tp, ScalarType):
        if like.tp.is_float and isinstance(value, (int, float)):
            return Const(float(value), like.tp)
        if like.tp.is_integer and isinstance(value, int):
            return Const(value, like.tp)
    if isinstance(value, float) and like is None:
        return Const(value, FLOAT if abs(value) < 3.4e38 else DOUBLE)
    return const(value)
