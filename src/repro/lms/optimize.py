"""The optimizing middle-end: a pass manager between staging and
scheduling.

LMS earns its keep through staging-time specialization, but a staged
graph still carries whatever redundancy the kernel author wrote:
re-materialized broadcast constants inside loops, index arithmetic that
folds to nothing, values stored and immediately reloaded.  Every such
node is paid on *every* simulated step closure and inflated into every
generated C body.  This module runs a classic middle-end over the SSA
graph before ``schedule_block``/``cgen`` see it:

* **simplify** — the algebraic rules of
  :class:`repro.lms.rewrites.SimplifyTransformer` (float-safe, trap-safe).
* **fold** (level 2) — constant folding of pure scalar ops, converts,
  selects and scalar-returning intrinsics, evaluated through the *same*
  :func:`repro.simd.machine.scalar_binop` / semantics handlers the
  simulator executes, so folded results are bit-identical by
  construction.  Folds that raise, or produce non-finite floats (whose C
  literal rendering is not exact), are declined.
* **cse** — global value numbering by re-mirroring (structural CSE
  across the whole function) plus loop-invariant code motion: pure,
  non-trapping, block-free statements whose operands are defined outside
  a loop body are hoisted in front of the loop.
* **forward** (level 2) — same-address load/store forwarding and
  redundant-load elimination within effect regions: scalar array
  reads/writes, the unmasked vector load/store intrinsics, and mutable
  staged variables.  Any array write invalidates *all* array mappings
  (arrays passed twice may alias at run time; variable boxes never
  alias), control-flow bodies start with an empty map, and a control
  node invalidates by its effect summary.
* **dce** — dead-code elimination via :func:`repro.lms.schedule.schedule_block`
  (the effects system decides liveness: effectful statements always
  survive).

The pipeline iterates to a fixpoint (bounded), gated by ``REPRO_OPT``:
``0`` bypasses the middle-end entirely, ``1`` (the default) runs
simplify+cse+dce, ``2`` adds folding and forwarding.

Error-path preservation: value-discarding rewrites only drop operands
whose defining subgraph cannot trap (:func:`repro.lms.rewrites.may_trap`
taint), may-trap nodes are never CSE-merged or hoisted, and declined
folds leave trapping nodes in place — so a graph optimized at any level
raises exactly when, and what, the unoptimized graph raises.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field

import repro.obs as obs
from repro.lms import effects as fx
from repro.lms.defs import (
    ArrayApply,
    ArrayUpdate,
    BinaryOp,
    Block,
    Convert,
    Def,
    ForLoop,
    IfThenElse,
    Select,
    Stm,
    UnaryOp,
    VarAssign,
    VarDecl,
    VarRead,
    WhileLoop,
)
from repro.lms.effects import Effects
from repro.lms.expr import Const, Exp, Sym
from repro.lms.graph import current_builder
from repro.lms.rewrites import SafeTransformer, SimplifyTransformer, may_trap
from repro.lms.schedule import count_statements, schedule_block
from repro.lms.staging import StagedFunction
from repro.lms.transform import remirror_function
from repro.lms.types import ScalarType

DEFAULT_LEVEL = 1
MAX_LEVEL = 2
MAX_ITERATIONS = 4

PASS_NAMES = ("simplify", "fold", "cse", "forward", "dce")


def effective_level(level: int | None = None) -> int:
    """Resolve the middle-end level: an explicit argument wins, then
    ``REPRO_OPT``, then the default (1).  Clamped to ``0..2``."""
    if level is None:
        raw = os.environ.get("REPRO_OPT", "").strip()
        if raw:
            try:
                level = int(raw)
            except ValueError:
                level = DEFAULT_LEVEL
        else:
            level = DEFAULT_LEVEL
    return max(0, min(MAX_LEVEL, int(level)))


@dataclass
class OptStats:
    """What the middle-end did to one staged function."""

    level: int
    iterations: int = 0
    stms_before: int = 0
    stms_after: int = 0
    # statements eliminated, per pass (count delta across the pass).
    eliminated: dict = field(default_factory=dict)
    rewrites: int = 0
    folds: int = 0
    forwarded_loads: int = 0
    forwarded_reads: int = 0
    hoisted: int = 0

    @property
    def total_eliminated(self) -> int:
        return max(0, self.stms_before - self.stms_after)

    def summary_lines(self) -> list[str]:
        lines = [
            f"level={self.level} iterations={self.iterations} "
            f"statements {self.stms_before} -> {self.stms_after} "
            f"(-{self.total_eliminated})"]
        for name in PASS_NAMES:
            if name in self.eliminated:
                lines.append(
                    f"  {name:9s} eliminated={self.eliminated[name]}")
        lines.append(
            f"  rewrites={self.rewrites} folds={self.folds} "
            f"hoisted={self.hoisted} forwarded_loads="
            f"{self.forwarded_loads} forwarded_reads="
            f"{self.forwarded_reads}")
        return lines


# ---------------------------------------------------------------------------
# Constant folding (level 2).
# ---------------------------------------------------------------------------


def _runtime_const(c: Const):
    """A Const's runtime value, exactly as both engines evaluate it."""
    from repro.simd.exec import _as_scalar
    if not isinstance(c.tp, ScalarType):
        raise TypeError(f"not a scalar constant: {c!r}")
    return _as_scalar(c.tp, c.value)


def _const_from(value, tp) -> Const | None:
    """Build a Const carrying ``value`` losslessly, or decline.

    Non-finite floats are declined: a folded NaN cannot be guaranteed
    payload-identical to the natively computed one, and inf has no exact
    decimal C literal through ``_const_c``.
    """
    if not isinstance(tp, ScalarType):
        return None
    if tp.name == "Boolean":
        return Const(bool(value), tp)
    if tp.is_float:
        fv = float(value)
        if not math.isfinite(fv):
            return None
        return Const(fv, tp)
    return Const(int(value), tp)


class FoldTransformer(SafeTransformer):
    """Folds pure nodes with all-constant operands through the machine
    semantics.  Any exception during evaluation declines the fold and
    leaves the (possibly trapping) node in place."""

    def __init__(self) -> None:
        super().__init__()
        self.folds = 0
        self._machine = None

    def _scratch_machine(self):
        if self._machine is None:
            from repro.simd.machine import SimdMachine
            self._machine = SimdMachine(seed=0)
        return self._machine

    def _rewrite(self, rhs: Def, stm: Stm) -> Exp | None:
        if stm.effects.effectful:
            return None
        folded = self._fold_node(rhs)
        if folded is not None:
            self.folds += 1
        return folded

    def _fold_node(self, rhs: Def) -> Const | None:
        from repro.simd.exec import _as_scalar
        f = self
        try:
            if isinstance(rhs, BinaryOp):
                a, b = f(rhs.lhs), f(rhs.rhs)
                if isinstance(a, Const) and isinstance(b, Const) and \
                        isinstance(a.tp, ScalarType) and \
                        isinstance(b.tp, ScalarType):
                    from repro.simd.machine import scalar_binop
                    node = BinaryOp(rhs.op, a, b, rhs.tp)
                    out = scalar_binop(node, _runtime_const(a),
                                       _runtime_const(b))
                    return _const_from(out, rhs.tp)
                return None
            if isinstance(rhs, UnaryOp):
                v = f(rhs.operand)
                if not isinstance(v, Const) or \
                        not isinstance(v.tp, ScalarType):
                    return None
                import numpy as np
                rv = _runtime_const(v)
                if rhs.op == "neg":
                    with np.errstate(over="ignore"):
                        out = -rv
                elif rhs.op == "not":
                    out = ~rv
                else:
                    return None
                tp = rhs.tp
                if isinstance(tp, ScalarType) and tp.name != "Boolean":
                    out = _as_scalar(tp, out)
                return _const_from(out, tp)
            if isinstance(rhs, Convert):
                v = f(rhs.operand)
                if not isinstance(v, Const) or \
                        not isinstance(v.tp, ScalarType):
                    return None
                out = _as_scalar(rhs.tp, _runtime_const(v))
                return _const_from(out, rhs.tp)
            if isinstance(rhs, Select):
                cond, a, b = (f(x) for x in rhs.exp_args)
                if not isinstance(cond, Const):
                    return None
                picked, other = (a, b) if bool(cond.value) else (b, a)
                if isinstance(picked, Const) and \
                        isinstance(picked.tp, ScalarType):
                    out = _runtime_const(picked)
                    tp = rhs.tp
                    if isinstance(tp, ScalarType) and \
                            tp.name != "Boolean":
                        out = _as_scalar(tp, out)
                    return _const_from(out, tp)
                # Partial fold: constant condition selects one arm; the
                # discarded arm must be trap-free (both arms of a staged
                # select are evaluated, like C's ?: after hoisting).
                if isinstance(picked, Exp) and picked.tp == rhs.tp and \
                        self.discardable(other):
                    self.folds += 1
                    return picked
                return None
            name = getattr(rhs, "intrinsic_name", None)
            if name is not None and isinstance(rhs.tp, ScalarType):
                vals = []
                for arg in rhs.args:
                    if isinstance(arg, Exp):
                        arg = f(arg)
                        if not isinstance(arg, Const) or \
                                not isinstance(arg.tp, ScalarType):
                            return None
                        vals.append(_runtime_const(arg))
                    else:
                        vals.append(arg)
                from repro.simd.semantics import lookup
                out = lookup(name)(self._scratch_machine(), *vals)
                return _const_from(out, rhs.tp)
        except Exception:  # noqa: BLE001 - any failure declines the fold
            return None
        return None


# ---------------------------------------------------------------------------
# Loop-invariant code motion (part of the cse/GVN pass).
# ---------------------------------------------------------------------------


def _lift_block(block: Block, extra_bound: set[int]) -> list[Stm]:
    """Remove and return the hoistable statements of a loop block.

    A statement is hoistable when it is pure, has no nested blocks,
    cannot trap (hoisting executes it even when the loop runs zero
    times), and every operand is defined outside the block.  Iterates so
    chains of invariant statements move together, preserving their
    relative order (dependencies stay in front)."""
    defined = {stm.sym.id for stm in block.stms}
    defined.update(s.id for s in block.bound)
    defined |= extra_bound
    moved: list[Stm] = []
    changed = True
    while changed:
        changed = False
        keep: list[Stm] = []
        for stm in block.stms:
            rhs = stm.rhs
            ok = (stm.effects.pure and not rhs.blocks
                  and not may_trap(rhs)
                  and all(not (isinstance(a, Sym) and a.id in defined)
                          for a in rhs.exp_args))
            if ok:
                moved.append(stm)
                defined.discard(stm.sym.id)
                changed = True
            else:
                keep.append(stm)
        block.stms[:] = keep
    return moved


def hoist_loop_invariants(staged: StagedFunction) -> int:
    """Hoist loop-invariant pure statements out of for/while bodies, in
    place.  Returns the number of statements moved."""
    hoisted = 0

    def walk(block: Block) -> None:
        nonlocal hoisted
        for stm in block.stms:
            for inner in stm.rhs.blocks:
                walk(inner)
        new_stms: list[Stm] = []
        for stm in block.stms:
            rhs = stm.rhs
            moved: list[Stm] = []
            if isinstance(rhs, ForLoop):
                moved = _lift_block(rhs.body, set())
            elif isinstance(rhs, WhileLoop):
                moved = _lift_block(rhs.cond_block, set())
                # The body may reference condition-block symbols (the
                # engines keep a flat environment), which must not be
                # hoisted above the loop.
                cond_defs = set(rhs.cond_block.symbols())
                moved += _lift_block(rhs.body, cond_defs)
            new_stms.extend(moved)
            hoisted += len(moved)
            new_stms.append(stm)
        block.stms[:] = new_stms

    walk(staged.body)
    if hoisted:
        staged._scheduled_body = None
        staged._graph_hash = None
        staged._exec_program = None
    return hoisted


# ---------------------------------------------------------------------------
# Load/store forwarding (level 2).
# ---------------------------------------------------------------------------


def _addr_key(e: Exp):
    """A value-identity key for an index/offset expression within one
    linear mirroring pass (SSA symbols are single-assignment, constants
    compare structurally); ``None`` when no stable key exists."""
    if isinstance(e, Sym):
        return ("s", e.id)
    if isinstance(e, Const):
        return ("c", e.tp.name, repr(e.value))
    return None


class _FwdScope:
    """Available-value maps for one effect region."""

    __slots__ = ("scalar", "vec", "vars")

    def __init__(self) -> None:
        # container sym id -> {index key -> value exp}
        self.scalar: dict[int, dict] = {}
        # container sym id -> {(offset key, vector type name) -> value exp}
        self.vec: dict[int, dict] = {}
        # variable sym id -> last known value exp
        self.vars: dict[int, Exp] = {}

    def copy(self) -> "_FwdScope":
        s = _FwdScope()
        s.scalar = {k: dict(v) for k, v in self.scalar.items()}
        s.vec = {k: dict(v) for k, v in self.vec.items()}
        s.vars = dict(self.vars)
        return s

    def clear(self) -> None:
        self.scalar.clear()
        self.vec.clear()
        self.vars.clear()

    def wipe_arrays(self) -> None:
        # Distinct array parameters may alias at run time (the same
        # numpy array passed twice), so a write to *any* array container
        # invalidates every array mapping.  Variable boxes are engine
        # internals and can never alias an array or each other.
        self.scalar.clear()
        self.vec.clear()


class ForwardTransformer(SafeTransformer):
    """Same-address load/store forwarding within effect regions."""

    def __init__(self) -> None:
        super().__init__()
        self.forwarded_loads = 0
        self.forwarded_reads = 0
        self._scopes: list[_FwdScope] = [_FwdScope()]
        self._var_ids: set[int] = set()

    @property
    def _cur(self) -> _FwdScope:
        return self._scopes[-1]

    # -- rewrite hook -------------------------------------------------------

    def _rewrite(self, rhs: Def, stm: Stm) -> Exp | None:
        if isinstance(rhs, (ForLoop, WhileLoop, IfThenElse)):
            return self._mirror_control(rhs)
        if isinstance(rhs, ArrayApply):
            return self._scalar_load(rhs)
        if isinstance(rhs, ArrayUpdate):
            return self._scalar_store(rhs)
        if isinstance(rhs, VarDecl):
            return self._var_decl(rhs)
        if isinstance(rhs, VarRead):
            return self._var_read(rhs)
        if isinstance(rhs, VarAssign):
            return self._var_assign(rhs)
        name = getattr(rhs, "intrinsic_name", None)
        if name is not None:
            from repro.simd.semantics.memory import _LOADS, _STORES
            if name in _LOADS and len(rhs.args) == 2:
                return self._vector_load(rhs)
            if name in _STORES and len(rhs.args) == 3:
                return self._vector_store(rhs)
            if stm.effects.effectful:
                out = self._mirror_safe(rhs, stm)
                if stm.effects.is_global:
                    self._cur.clear()
                elif stm.effects.writes:
                    # Intrinsic memory writes target arrays only.
                    self._cur.wipe_arrays()
                return out
        return None

    # -- scalar arrays ------------------------------------------------------

    def _scalar_load(self, rhs: ArrayApply) -> Exp:
        from repro.lms.ops import array_apply
        f = self
        arr, idx = f(rhs.array), f(rhs.index)
        key = _addr_key(idx)
        if key is not None and isinstance(arr, Sym):
            hit = self._cur.scalar.get(arr.id, {}).get(key)
            if hit is not None and hit.tp == rhs.tp:
                self.forwarded_loads += 1
                return hit
        out = array_apply(arr, idx)
        if key is not None and isinstance(arr, Sym):
            self._cur.scalar.setdefault(arr.id, {})[key] = out
        return out

    def _scalar_store(self, rhs: ArrayUpdate) -> Exp:
        from repro.lms.ops import array_update
        f = self
        arr, idx, val = f(rhs.array), f(rhs.index), f(rhs.value)
        out = array_update(arr, idx, val)
        self._cur.wipe_arrays()
        key = _addr_key(idx)
        if key is not None and isinstance(arr, Sym) and \
                isinstance(val.tp, ScalarType) and val.tp == arr.tp.elem:
            self._cur.scalar.setdefault(arr.id, {})[key] = val
        return out

    # -- vector loads/stores ------------------------------------------------

    def _vector_load(self, rhs: Def) -> Exp:
        f = self
        arr, off = f(rhs.args[0]), f(rhs.args[1])
        key = _addr_key(off)
        if key is not None and isinstance(arr, Sym):
            hit = self._cur.vec.get(arr.id, {}).get((key, rhs.tp.name))
            if hit is not None and hit.tp == rhs.tp:
                self.forwarded_loads += 1
                return hit
        out = rhs.remirror(f)
        if key is not None and isinstance(arr, Sym) and isinstance(out, Exp):
            self._cur.vec.setdefault(arr.id, {})[(key, rhs.tp.name)] = out
        return out

    def _vector_store(self, rhs: Def) -> Exp:
        f = self
        arr, val, off = f(rhs.args[0]), f(rhs.args[1]), f(rhs.args[2])
        out = rhs.remirror(f)
        self._cur.wipe_arrays()
        key = _addr_key(off)
        if key is not None and isinstance(arr, Sym) and isinstance(val, Exp):
            self._cur.vec.setdefault(arr.id, {})[(key, val.tp.name)] = val
        return out

    # -- mutable variables --------------------------------------------------

    def _var_decl(self, rhs: VarDecl) -> Exp:
        init = self(rhs.init)
        out = current_builder().reflect_var_decl(VarDecl(init, rhs.tp))
        self._var_ids.add(out.id)
        if init.tp == rhs.tp:
            self._cur.vars[out.id] = init
        return out

    def _var_read(self, rhs: VarRead) -> Exp:
        var = self(rhs.var)
        hit = self._cur.vars.get(var.id)
        if hit is not None and hit.tp == rhs.tp:
            self.forwarded_reads += 1
            return hit
        out = current_builder().reflect_effect(
            VarRead(var, rhs.tp), fx.read(var.id))
        self._cur.vars[var.id] = out
        return out

    def _var_assign(self, rhs: VarAssign) -> Exp:
        var, val = self(rhs.var), self(rhs.value)
        out = current_builder().reflect_effect(
            VarAssign(var, val, rhs.tp), fx.write(var.id))
        self._cur.vars[var.id] = val
        return out

    # -- control flow -------------------------------------------------------

    def _mirror_control(self, rhs: Def) -> Exp:
        builder = current_builder()
        f = self
        if isinstance(rhs, ForLoop):
            idx = builder.fresh(rhs.index.tp)
            self.register(rhs.index, idx)
            # Loop bodies run many times: nothing recorded outside is
            # known to survive an earlier iteration's writes, and body
            # mappings must not leak out.
            self._scopes.append(_FwdScope())
            try:
                with builder.block(bound=(idx,)) as frame:
                    self.transform_statements(rhs.body)
                    body, summary = builder.close_block(
                        frame, self(rhs.body.result))
            finally:
                self._scopes.pop()
            node = ForLoop(f(rhs.start), f(rhs.end), f(rhs.step), idx,
                           body, rhs.tp)
            out = builder.reflect_effect(node, summary)
            self._invalidate_summary(summary)
            return out
        if isinstance(rhs, IfThenElse):
            blocks = []
            effs = []
            for blk in (rhs.then_block, rhs.else_block):
                # A branch runs at most once, dominated by the outer
                # region: it inherits the outer mappings (by copy — its
                # own additions must not leak out).
                self._scopes.append(self._cur.copy())
                try:
                    with builder.block() as frame:
                        self.transform_statements(blk)
                        newb, eff = builder.close_block(frame, self(blk.result))
                finally:
                    self._scopes.pop()
                blocks.append(newb)
                effs.append(eff)
            node = IfThenElse(f(rhs.cond), blocks[0], blocks[1], rhs.tp)
            merged = effs[0].merge(effs[1])
            out = builder.reflect_effect(node, merged)
            self._invalidate_summary(merged)
            return out
        if isinstance(rhs, WhileLoop):
            self._scopes.append(_FwdScope())
            try:
                with builder.block() as frame:
                    self.transform_statements(rhs.cond_block)
                    condb, ceff = builder.close_block(
                        frame, self(rhs.cond_block.result))
            finally:
                self._scopes.pop()
            self._scopes.append(_FwdScope())
            try:
                with builder.block() as frame:
                    self.transform_statements(rhs.body)
                    bodyb, beff = builder.close_block(
                        frame, self(rhs.body.result))
            finally:
                self._scopes.pop()
            node = WhileLoop(condb, bodyb, rhs.tp)
            merged = ceff.merge(beff)
            out = builder.reflect_effect(node, merged)
            self._invalidate_summary(merged)
            return out
        raise NotImplementedError(type(rhs).__name__)

    def _invalidate_summary(self, effects: Effects) -> None:
        if effects.is_global:
            self._cur.clear()
            return
        if not effects.writes:
            return
        wipe_arrays = False
        for w in effects.writes:
            if w in self._var_ids:
                self._cur.vars.pop(w, None)
            else:
                wipe_arrays = True
        if wipe_arrays:
            self._cur.wipe_arrays()


# ---------------------------------------------------------------------------
# The pass manager.
# ---------------------------------------------------------------------------


class _SimplifyPass:
    name = "simplify"

    def run(self, staged: StagedFunction, stats: OptStats):
        t = SimplifyTransformer()
        out = remirror_function(staged, t)
        stats.rewrites += t.rewrites
        return out, t.rewrites


class _FoldPass:
    name = "fold"

    def run(self, staged: StagedFunction, stats: OptStats):
        t = FoldTransformer()
        out = remirror_function(staged, t)
        stats.folds += t.folds
        return out, t.folds


class _GvnPass:
    """Global value numbering by re-mirroring (the builder's structural
    CSE sees the whole function), plus loop-invariant code motion."""

    name = "cse"

    def run(self, staged: StagedFunction, stats: OptStats):
        t = SafeTransformer()
        out = remirror_function(staged, t)
        hoisted = hoist_loop_invariants(out)
        stats.hoisted += hoisted
        return out, hoisted


class _ForwardPass:
    name = "forward"

    def run(self, staged: StagedFunction, stats: OptStats):
        t = ForwardTransformer()
        out = remirror_function(staged, t)
        stats.forwarded_loads += t.forwarded_loads
        stats.forwarded_reads += t.forwarded_reads
        return out, t.forwarded_loads + t.forwarded_reads


class _DcePass:
    """Dead-code elimination; runs last so every pass's garbage is swept
    in the same iteration.  ``schedule_block`` is the single source of
    liveness truth (shared with the unoptimized path), and its output is
    memoized onto the function so downstream ``scheduled()`` is free."""

    name = "dce"

    def run(self, staged: StagedFunction, stats: OptStats):
        scheduled = schedule_block(staged.body)
        staged.body = scheduled
        staged._scheduled_body = scheduled
        staged._graph_hash = None
        staged._exec_program = None
        return staged, 0


class PassManager:
    """Runs the level's pass list to a (bounded) fixpoint."""

    def __init__(self, level: int, max_iterations: int = MAX_ITERATIONS):
        self.level = level
        self.max_iterations = max_iterations
        self.passes: list = []
        if level >= 1:
            self.passes.append(_SimplifyPass())
        if level >= 2:
            self.passes.append(_FoldPass())
        if level >= 1:
            self.passes.append(_GvnPass())
        if level >= 2:
            self.passes.append(_ForwardPass())
        if level >= 1:
            self.passes.append(_DcePass())

    def run(self, staged: StagedFunction
            ) -> tuple[StagedFunction, OptStats]:
        stats = OptStats(level=self.level,
                         stms_before=count_statements(staged.body))
        current = staged
        for it in range(self.max_iterations):
            stats.iterations = it + 1
            changed = 0
            for p in self.passes:
                before = count_statements(current.body)
                current, activity = p.run(current, stats)
                after = count_statements(current.body)
                delta = max(0, before - after)
                stats.eliminated[p.name] = \
                    stats.eliminated.get(p.name, 0) + delta
                changed += activity + delta
            if changed == 0:
                break
        stats.stms_after = count_statements(current.body)
        current.opt_level = self.level
        return current, stats


def optimize_staged(staged: StagedFunction, level: int | None = None
                    ) -> tuple[StagedFunction, OptStats]:
    """Optimize ``staged`` at ``level`` (default: :func:`effective_level`).

    Returns ``(optimized function, stats)``.  The input function is
    never mutated — level 0 returns it unchanged; higher levels return a
    fresh mirror with ``opt_level`` stamped for cache keying.
    """
    lvl = effective_level(level)
    if lvl <= 0:
        n = count_statements(staged.body)
        return staged, OptStats(level=0, stms_before=n, stms_after=n)
    out, stats = PassManager(lvl).run(staged)
    obs.counter("opt.runs")
    for name, n in stats.eliminated.items():
        if n:
            obs.counter("opt.eliminated", n, **{"pass": name})
    if stats.folds:
        obs.counter("opt.folds", stats.folds)
    if stats.hoisted:
        obs.counter("opt.hoisted", stats.hoisted)
    if stats.forwarded_loads:
        obs.counter("opt.forwarded_loads", stats.forwarded_loads)
    if stats.forwarded_reads:
        obs.counter("opt.forwarded_reads", stats.forwarded_reads)
    return out, stats
