"""SSA graph construction: the ``IRBuilder``.

The builder is the moral equivalent of the LMS trait stack's mutable
state: it allocates symbols, reflects ``Def`` nodes into statements
(performing CSE on pure nodes, the "implicit conversion from ``Exp`` to
``Def``" direction of the paper's four building blocks), tracks effects,
and manages nested blocks for staged control flow.

A thread-local stack of builders makes the generated intrinsic
constructors (e.g. ``_mm256_add_pd``) work without explicitly threading a
context, matching the paper's eDSL ergonomics.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Iterator

from repro.lms import effects as fx
from repro.lms.defs import Block, Def, Stm
from repro.lms.effects import EffectContext, Effects, PURE
from repro.lms.expr import Exp, Sym
from repro.lms.types import Type, VOID


class StagingError(RuntimeError):
    """Raised on misuse of the staging API."""


class _BlockFrame:
    __slots__ = ("stms", "cse", "ectx", "bound")

    def __init__(self, bound: tuple[Sym, ...] = ()):
        self.stms: list[Stm] = []
        self.cse: dict[tuple, Sym] = {}
        self.ectx = EffectContext()
        self.bound = bound


class IRBuilder:
    """Builds an SSA computation graph for one staged function."""

    def __init__(self) -> None:
        self._next_id = 0
        self._frames: list[_BlockFrame] = [_BlockFrame()]
        # sym id -> Stm, across all blocks (for lookups / the simulator).
        self.definitions: dict[int, Stm] = {}
        # sym ids of containers explicitly marked mutable.
        self.mutable_syms: set[int] = set()

    # -- symbols -----------------------------------------------------------

    def fresh(self, tp: Type) -> Sym:
        sym = Sym(self._next_id, tp)
        self._next_id += 1
        return sym

    # -- frames ------------------------------------------------------------

    @property
    def _frame(self) -> _BlockFrame:
        return self._frames[-1]

    @contextlib.contextmanager
    def block(self, bound: tuple[Sym, ...] = ()) -> Iterator[_BlockFrame]:
        """Open a nested block (for a loop body or branch)."""
        frame = _BlockFrame(bound)
        self._frames.append(frame)
        try:
            yield frame
        finally:
            popped = self._frames.pop()
            if popped is not frame:  # pragma: no cover - internal invariant
                raise StagingError("unbalanced block nesting")

    def close_block(self, frame: _BlockFrame, result: Exp) -> tuple[Block, Effects]:
        """Finalize a frame into a Block plus its outward effect summary."""
        local = frozenset(frame.ectx.local_containers)
        summary = PURE
        for stm in frame.stms:
            summary = summary.merge(stm.effects.without_containers(local))
        block = Block(frame.stms, result, frame.bound)
        return block, summary

    # -- reflection ---------------------------------------------------------

    def reflect_pure(self, rhs: Def, cse: bool = True) -> Sym:
        """Reflect a pure node, reusing an existing statement via CSE.

        ``cse=False`` reflects without consulting or entering the CSE
        tables.  The optimizer uses it for pure nodes that can raise at
        run time (integer division, casts of non-finite floats): merging
        two such nodes could turn a dead occurrence live and change
        which error path fires relative to the unoptimized graph.
        """
        if cse:
            key = rhs.structural_key()
            for frame in reversed(self._frames):
                if key in frame.cse:
                    return frame.cse[key]
        sym = self.fresh(rhs.tp)
        stm = Stm(sym, rhs, PURE)
        self._frame.stms.append(stm)
        if cse:
            self._frame.cse[key] = sym
        self.definitions[sym.id] = stm
        return sym

    def reflect_effect(self, rhs: Def, eff: Effects) -> Sym:
        """Reflect an effectful node, serializing it against the context."""
        if eff.pure:
            return self.reflect_pure(rhs)
        sym = self.fresh(rhs.tp)
        deps = self._frame.ectx.dependencies_for(eff)
        stm = Stm(sym, rhs, Effects(eff.reads, eff.writes, eff.is_global, deps))
        self._frame.stms.append(stm)
        self._frame.ectx.record(sym.id, eff)
        self.definitions[sym.id] = stm
        return sym

    def reflect(self, rhs: Def, eff: Effects = PURE) -> Sym:
        return self.reflect_effect(rhs, eff) if eff.effectful else self.reflect_pure(rhs)

    def reflect_var_decl(self, rhs: Def) -> Sym:
        """Reflect a mutable-variable declaration.

        The declaration writes its *own* container (its sym id is only
        known after allocation), and the container is local to the
        current block so it does not leak into the block's summary.
        """
        sym = self.fresh(rhs.tp)
        eff = Effects(writes=frozenset({sym.id}))
        stm = Stm(sym, rhs, eff)
        self._frame.stms.append(stm)
        self._frame.ectx.record(sym.id, eff)
        self._frame.ectx.local_containers.add(sym.id)
        self.definitions[sym.id] = stm
        return sym

    def declare_local_container(self, sym_id: int) -> None:
        self._frame.ectx.local_containers.add(sym_id)

    def mark_mutable(self, sym: Sym) -> None:
        """Mark an argument as a mutable container (``reflectMutableSym``)."""
        self.mutable_syms.add(sym.id)

    def lookup(self, exp: Exp) -> Stm | None:
        """Find the defining statement of a symbol (``Exp -> Def``)."""
        if isinstance(exp, Sym):
            return self.definitions.get(exp.id)
        return None


_tls = threading.local()


def _stack() -> list[IRBuilder]:
    if not hasattr(_tls, "stack"):
        _tls.stack = []
    return _tls.stack


def current_builder() -> IRBuilder:
    """The innermost active builder; staging outside a scope is an error."""
    stack = _stack()
    if not stack:
        raise StagingError(
            "no active staging scope; staged operations must run inside "
            "stage_function() or a staging_scope()"
        )
    return stack[-1]


def has_builder() -> bool:
    return bool(_stack())


@contextlib.contextmanager
def staging_scope(builder: IRBuilder | None = None) -> Iterator[IRBuilder]:
    """Install ``builder`` (or a fresh one) as the current staging context."""
    b = builder if builder is not None else IRBuilder()
    stack = _stack()
    stack.append(b)
    try:
        yield b
    finally:
        stack.pop()


def finish_root_block(builder: IRBuilder, result: Exp | None) -> tuple[Block, Effects]:
    """Close the root frame of ``builder`` into a Block."""
    if len(builder._frames) != 1:
        raise StagingError("staged control flow left an unclosed block")
    frame = builder._frames[0]
    res = result if result is not None else _unit()
    return builder.close_block(frame, res)


def _unit() -> Exp:
    from repro.lms.expr import Const
    return Const(None, VOID)
