"""Transformers and mirroring.

A ``Transformer`` rewrites a block into a fresh builder, applying a
symbol substitution.  When a statement has no substitution, its node is
*mirrored*: rebuilt from transformed operands and reflected into the new
graph — the third of the paper's four generated building blocks.  Core
node classes are mirrored here; generated intrinsics mirror themselves
generically through their uniform constructor (the analog of the
generated ``mirror`` pattern match).
"""

from __future__ import annotations

from typing import Callable

from repro.lms import effects as fx
from repro.lms.defs import (
    ArrayApply,
    ArrayUpdate,
    BinaryOp,
    Block,
    Convert,
    Def,
    ForLoop,
    IfThenElse,
    ReflectMutable,
    Select,
    Stm,
    UnaryOp,
    VarAssign,
    VarDecl,
    VarRead,
    WhileLoop,
)
from repro.lms.expr import Const, Exp, Sym
from repro.lms.graph import IRBuilder, current_builder


class Transformer:
    """A substitution-based graph rewriter."""

    def __init__(self, subst: dict[int, Exp] | None = None):
        self.subst: dict[int, Exp] = dict(subst or {})

    def __call__(self, exp: Exp) -> Exp:
        if isinstance(exp, Sym) and exp.id in self.subst:
            return self.subst[exp.id]
        return exp

    def register(self, old: Sym, new: Exp) -> None:
        self.subst[old.id] = new

    # -- mirroring ----------------------------------------------------------

    def mirror(self, rhs: Def, stm: Stm) -> Exp:
        """Rebuild ``rhs`` with transformed operands in the current builder."""
        builder = current_builder()
        f = self

        if isinstance(rhs, BinaryOp):
            from repro.lms.ops import binary
            return binary(rhs.op, f(rhs.lhs), f(rhs.rhs))
        if isinstance(rhs, UnaryOp):
            return builder.reflect_pure(UnaryOp(rhs.op, f(rhs.operand), rhs.tp))
        if isinstance(rhs, Convert):
            return builder.reflect_pure(Convert(f(rhs.operand), rhs.tp))
        if isinstance(rhs, Select):
            cond, a, b = (f(x) for x in rhs.exp_args)
            return builder.reflect_pure(Select(cond, a, b, rhs.tp))
        if isinstance(rhs, ArrayApply):
            from repro.lms.ops import array_apply
            return array_apply(f(rhs.array), f(rhs.index))
        if isinstance(rhs, ArrayUpdate):
            from repro.lms.ops import array_update
            return array_update(f(rhs.array), f(rhs.index), f(rhs.value))
        if isinstance(rhs, VarDecl):
            return builder.reflect_var_decl(VarDecl(f(rhs.init), rhs.tp))
        if isinstance(rhs, VarRead):
            var = f(rhs.var)
            return builder.reflect_effect(
                VarRead(var, rhs.tp), fx.read(var.id)
            )
        if isinstance(rhs, VarAssign):
            var = f(rhs.var)
            return builder.reflect_effect(
                VarAssign(var, f(rhs.value), rhs.tp), fx.write(var.id)
            )
        if isinstance(rhs, ReflectMutable):
            from repro.lms.ops import reflect_mutable
            return reflect_mutable(f(rhs.source))
        if isinstance(rhs, ForLoop):
            idx = builder.fresh(rhs.index.tp)
            self.register(rhs.index, idx)
            with builder.block(bound=(idx,)) as frame:
                self.transform_statements(rhs.body)
                body, summary = builder.close_block(
                    frame, self(rhs.body.result)
                )
            node = ForLoop(f(rhs.start), f(rhs.end), f(rhs.step), idx,
                           body, rhs.tp)
            return builder.reflect_effect(node, summary)
        if isinstance(rhs, IfThenElse):
            blocks = []
            effs = []
            for blk in (rhs.then_block, rhs.else_block):
                with builder.block() as frame:
                    self.transform_statements(blk)
                    newb, eff = builder.close_block(frame, self(blk.result))
                blocks.append(newb)
                effs.append(eff)
            node = IfThenElse(f(rhs.cond), blocks[0], blocks[1], rhs.tp)
            return builder.reflect_effect(node, effs[0].merge(effs[1]))
        if isinstance(rhs, WhileLoop):
            with builder.block() as frame:
                self.transform_statements(rhs.cond_block)
                condb, ceff = builder.close_block(
                    frame, self(rhs.cond_block.result)
                )
            with builder.block() as frame:
                self.transform_statements(rhs.body)
                bodyb, beff = builder.close_block(frame, self(rhs.body.result))
            node = WhileLoop(condb, bodyb, rhs.tp)
            return builder.reflect_effect(node, ceff.merge(beff))

        # Generated intrinsics (and any node exposing remirror): rebuild
        # through the uniform constructor.
        remirror = getattr(rhs, "remirror", None)
        if remirror is not None:
            return remirror(f)
        raise NotImplementedError(f"cannot mirror {type(rhs).__name__}")

    def transform_statements(self, block: Block) -> None:
        """Mirror each statement of ``block`` into the current builder."""
        for stm in block.stms:
            new_exp = self.mirror(stm.rhs, stm)
            if isinstance(new_exp, Exp):
                self.register(stm.sym, new_exp)


def mirror_block(block: Block, subst: dict[int, Exp] | None = None,
                 builder: IRBuilder | None = None) -> tuple[Block, IRBuilder]:
    """Mirror a whole block into a fresh builder, applying ``subst``."""
    from repro.lms.graph import finish_root_block, staging_scope

    t = Transformer(subst)
    b = builder if builder is not None else IRBuilder()
    with staging_scope(b):
        t.transform_statements(block)
        result = t(block.result)
        new_block, _ = finish_root_block(b, result)
    return new_block, b


def remirror_function(staged, t: Transformer):
    """Mirror a whole :class:`~repro.lms.staging.StagedFunction` through
    ``t`` into a fresh builder, carrying parameter names and mutability
    marks over.  This is the shared entry/exit boilerplate of every
    whole-function rewrite pass (simplification, the optimizer passes).
    """
    from repro.lms.graph import finish_root_block, staging_scope
    from repro.lms.staging import StagedFunction

    builder = IRBuilder()
    with staging_scope(builder):
        new_params = [builder.fresh(p.tp) for p in staged.params]
        for old, new in zip(staged.params, new_params):
            t.register(old, new)
        for sym_id in staged.builder.mutable_syms:
            # Mutability marks carry over to the mirrored params.
            for old, new in zip(staged.params, new_params):
                if old.id == sym_id:
                    builder.mark_mutable(new)
        t.transform_statements(staged.body)
        result = t(staged.body.result)
        body, effects = finish_root_block(
            builder, result if not isinstance(result, Const)
            or result.value is not None else None)
    return StagedFunction(
        name=staged.name, params=new_params,
        param_names=list(staged.param_names), body=body,
        effects=effects, builder=builder,
        opt_level=getattr(staged, "opt_level", 0))
