"""Graph nodes (``Def``), statements and blocks of the staged IR.

``Def`` subclasses represent individual computations, e.g. ``BinaryOp`` or a
generated intrinsic such as ``MM256_ADD_PD``.  A ``Stm`` binds a ``Sym`` to a
``Def`` (the SSA form the paper relies on), and a ``Block`` is a sequence of
statements with a result expression — the body of a staged function or of a
staged control-flow construct.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.lms.expr import Const, Exp, Sym
from repro.lms.types import Type


class Def:
    """A computation-graph node.

    ``args`` holds every operand in order; staged operands are ``Exp``
    while immediate operands (e.g. a shuffle control byte that must be a
    compile-time constant in C) may be plain Python values.  ``blocks``
    holds nested blocks for control-flow nodes.
    """

    mnemonic: str = "def"

    def __init__(self, tp: Type, args: Sequence[object] = ()):
        self.tp = tp
        self.args: tuple[object, ...] = tuple(args)

    @property
    def exp_args(self) -> tuple[Exp, ...]:
        return tuple(a for a in self.args if isinstance(a, Exp))

    @property
    def blocks(self) -> tuple["Block", ...]:
        return ()

    def structural_key(self) -> tuple:
        """A hashable key identifying this node up to operand identity.

        Used for common-subexpression elimination of pure nodes.
        """
        parts: list[object] = [type(self).__name__, self.tp.name, self.mnemonic]
        for a in self.args:
            if isinstance(a, (Sym, Const)):
                parts.append(a._key())
            elif isinstance(a, Exp):
                parts.append(("exp", id(a)))
            else:
                parts.append(("imm", repr(a)))
        return tuple(parts)

    def __repr__(self) -> str:
        args = ", ".join(repr(a) for a in self.args)
        return f"{type(self).__name__}({args})"


class Stm:
    """A single SSA statement ``sym = rhs`` with its effect summary."""

    __slots__ = ("sym", "rhs", "effects")

    def __init__(self, sym: Sym, rhs: Def, effects: "object"):
        self.sym = sym
        self.rhs = rhs
        self.effects = effects

    def __repr__(self) -> str:
        return f"{self.sym!r} = {self.rhs!r}"


class Block:
    """A sequence of statements producing ``result``.

    ``bound`` lists the symbols bound by the enclosing construct (e.g. a
    loop index), which scheduling must not hoist above the construct.
    """

    __slots__ = ("stms", "result", "bound")

    def __init__(self, stms: list[Stm], result: Exp, bound: Sequence[Sym] = ()):
        self.stms = stms
        self.result = result
        self.bound = tuple(bound)

    def __iter__(self) -> Iterator[Stm]:
        return iter(self.stms)

    def __len__(self) -> int:
        return len(self.stms)

    def symbols(self) -> dict[int, Stm]:
        """Map every sym id defined in this block (recursively) to its Stm."""
        table: dict[int, Stm] = {}
        for stm in self.stms:
            table[stm.sym.id] = stm
            for inner in stm.rhs.blocks:
                table.update(inner.symbols())
        return table


# ---------------------------------------------------------------------------
# Core scalar / array / control-flow node classes.
# ---------------------------------------------------------------------------


class BinaryOp(Def):
    """A scalar binary operation: arithmetic, bitwise, shift or compare."""

    def __init__(self, op: str, lhs: Exp, rhs: Exp, tp: Type):
        super().__init__(tp, (lhs, rhs))
        self.op = op
        self.mnemonic = f"bin{op}"

    @property
    def lhs(self) -> Exp:
        return self.args[0]  # type: ignore[return-value]

    @property
    def rhs(self) -> Exp:
        return self.args[1]  # type: ignore[return-value]


class UnaryOp(Def):
    """A scalar unary operation (negate, bitwise not, abs, sqrt...)."""

    def __init__(self, op: str, operand: Exp, tp: Type):
        super().__init__(tp, (operand,))
        self.op = op
        self.mnemonic = f"un{op}"

    @property
    def operand(self) -> Exp:
        return self.args[0]  # type: ignore[return-value]


class Convert(Def):
    """A scalar conversion (C cast) between primitive types."""

    mnemonic = "convert"

    def __init__(self, operand: Exp, tp: Type):
        super().__init__(tp, (operand,))

    @property
    def operand(self) -> Exp:
        return self.args[0]  # type: ignore[return-value]


class Select(Def):
    """A scalar select ``cond ? then : else`` (both sides evaluated)."""

    mnemonic = "select"

    def __init__(self, cond: Exp, then_val: Exp, else_val: Exp, tp: Type):
        super().__init__(tp, (cond, then_val, else_val))


class ArrayApply(Def):
    """An array read ``arr[idx]``."""

    mnemonic = "aload"

    def __init__(self, arr: Exp, idx: Exp, tp: Type):
        super().__init__(tp, (arr, idx))

    @property
    def array(self) -> Exp:
        return self.args[0]  # type: ignore[return-value]

    @property
    def index(self) -> Exp:
        return self.args[1]  # type: ignore[return-value]


class ArrayUpdate(Def):
    """An array write ``arr[idx] = value``."""

    mnemonic = "astore"

    def __init__(self, arr: Exp, idx: Exp, value: Exp, tp: Type):
        super().__init__(tp, (arr, idx, value))

    @property
    def array(self) -> Exp:
        return self.args[0]  # type: ignore[return-value]

    @property
    def index(self) -> Exp:
        return self.args[1]  # type: ignore[return-value]

    @property
    def value(self) -> Exp:
        return self.args[2]  # type: ignore[return-value]


class ForLoop(Def):
    """A staged counted loop with a stride, mirroring the paper's
    ``forloop(start, end, fresh[Int], step, body)``."""

    mnemonic = "for"

    def __init__(self, start: Exp, end: Exp, step: Exp, index: Sym,
                 body: Block, tp: Type):
        super().__init__(tp, (start, end, step))
        self.index = index
        self.body = body

    @property
    def start(self) -> Exp:
        return self.args[0]  # type: ignore[return-value]

    @property
    def end(self) -> Exp:
        return self.args[1]  # type: ignore[return-value]

    @property
    def step(self) -> Exp:
        return self.args[2]  # type: ignore[return-value]

    @property
    def blocks(self) -> tuple[Block, ...]:
        return (self.body,)


class IfThenElse(Def):
    """A staged conditional with two branch blocks."""

    mnemonic = "if"

    def __init__(self, cond: Exp, then_block: Block, else_block: Block,
                 tp: Type):
        super().__init__(tp, (cond,))
        self.then_block = then_block
        self.else_block = else_block

    @property
    def cond(self) -> Exp:
        return self.args[0]  # type: ignore[return-value]

    @property
    def blocks(self) -> tuple[Block, ...]:
        return (self.then_block, self.else_block)


class WhileLoop(Def):
    """A staged while loop: condition block + body block."""

    mnemonic = "while"

    def __init__(self, cond_block: Block, body: Block, tp: Type):
        super().__init__(tp, ())
        self.cond_block = cond_block
        self.body = body

    @property
    def blocks(self) -> tuple[Block, ...]:
        return (self.cond_block, self.body)


class VarDecl(Def):
    """Declaration of a mutable staged variable with an initial value."""

    mnemonic = "vardecl"

    def __init__(self, init: Exp, tp: Type):
        super().__init__(tp, (init,))

    @property
    def init(self) -> Exp:
        return self.args[0]  # type: ignore[return-value]


class VarRead(Def):
    """Read of a mutable staged variable."""

    mnemonic = "varread"

    def __init__(self, var: Sym, tp: Type):
        super().__init__(tp, (var,))

    @property
    def var(self) -> Sym:
        return self.args[0]  # type: ignore[return-value]


class VarAssign(Def):
    """Assignment to a mutable staged variable."""

    mnemonic = "varassign"

    def __init__(self, var: Sym, value: Exp, tp: Type):
        super().__init__(tp, (var, value))

    @property
    def var(self) -> Sym:
        return self.args[0]  # type: ignore[return-value]

    @property
    def value(self) -> Exp:
        return self.args[1]  # type: ignore[return-value]


class ReflectMutable(Def):
    """Marks an argument symbol as mutable (the paper's
    ``reflectMutableSym``); identity operation with a write capability."""

    mnemonic = "mutable"

    def __init__(self, source: Exp, tp: Type):
        super().__init__(tp, (source,))

    @property
    def source(self) -> Exp:
        return self.args[0]  # type: ignore[return-value]


def iter_defs(block: Block) -> Iterable[tuple[Stm, int]]:
    """Yield every statement in ``block`` (recursively) with its depth."""

    def walk(b: Block, depth: int) -> Iterable[tuple[Stm, int]]:
        for stm in b.stms:
            yield stm, depth
            for inner in stm.rhs.blocks:
                yield from walk(inner, depth + 1)

    return walk(block, 0)
