"""Staged scalar and array operations.

These are the "auxiliary scalar operations" the paper interleaves with
intrinsic invocations inside a staged kernel: arithmetic, comparisons,
conversions, array reads/writes and mutable variables.
"""

from __future__ import annotations

from typing import Any

from repro.lms import effects as fx
from repro.lms.defs import (
    ArrayApply,
    ArrayUpdate,
    BinaryOp,
    Convert,
    ReflectMutable,
    Select,
    UnaryOp,
    VarAssign,
    VarDecl,
    VarRead,
)
from repro.lms.expr import Const, Exp, Sym, lift
from repro.lms.graph import current_builder
from repro.lms.types import (
    ArrayType,
    BOOL,
    ScalarType,
    Type,
)

_COMPARISONS = {"==", "!=", "<", "<=", ">", ">="}
_INT_ONLY = {"%", "&", "|", "^", "<<", ">>"}


def promote(a: ScalarType, b: ScalarType) -> ScalarType:
    """C usual arithmetic conversions between two scalar types.

    Sub-``int`` integer operands undergo integer promotion to 32 bits
    first (C11 6.3.1.1) — the same rule the JVM applies, and the reason
    the paper's 8-bit Java baselines pay a promotion tax.
    """
    if a.is_float or b.is_float:
        floats = [t for t in (a, b) if t.is_float]
        return max(floats, key=lambda t: t.bits)
    from repro.lms.types import INT32 as _INT32
    if a.is_integer and a.bits < 32:
        a = _INT32
    if b.is_integer and b.bits < 32:
        b = _INT32
    if a == b:
        return a
    wider = a if a.bits > b.bits else b
    if a.bits == b.bits:
        # Unsigned wins at equal width, as in C.
        wider = a if not a.signed else b
    return wider


def binary(op: str, lhs: Any, rhs: Any) -> Exp:
    """Reflect a scalar binary operation with C-like type promotion."""
    like = lhs if isinstance(lhs, Exp) else rhs if isinstance(rhs, Exp) else None
    lhs = lift(lhs, like if isinstance(like, Exp) else None)
    rhs = lift(rhs, like if isinstance(like, Exp) else None)
    if not isinstance(lhs.tp, ScalarType) or not isinstance(rhs.tp, ScalarType):
        raise TypeError(
            f"binary {op!r} requires scalar operands, got {lhs.tp} and {rhs.tp}"
        )
    if op in _INT_ONLY and (lhs.tp.is_float or rhs.tp.is_float):
        raise TypeError(f"operator {op!r} is not defined on float operands")
    if op in _COMPARISONS:
        out = BOOL
    elif op in ("<<", ">>"):
        out = lhs.tp
    else:
        out = promote(lhs.tp, rhs.tp)
    # Constant folding keeps staged index arithmetic readable in the
    # generated C and in the graph.
    if isinstance(lhs, Const) and isinstance(rhs, Const):
        folded = _fold(op, lhs.value, rhs.value, out)
        if folded is not None:
            return folded
    return current_builder().reflect_pure(BinaryOp(op, lhs, rhs, out))


def _c_div(a: Any, b: Any) -> int:
    """C integer division: truncation toward zero (Python's ``//``
    floors, which differs for negative operands: ``-7 // 2 == -4`` but C
    computes ``-3``).  Matches ``repro.simd.machine.scalar_binop``."""
    q = abs(int(a)) // abs(int(b))
    return q if (int(a) < 0) == (int(b) < 0) else -q


def _c_rem(a: Any, b: Any) -> int:
    """C remainder: sign follows the dividend, satisfying
    ``a == (a / b) * b + a % b`` under truncating division."""
    ia, ib = int(a), int(b)
    return ia - (abs(ia) // abs(ib)) * abs(ib) * (1 if ia >= 0 else -1)


def _fold(op: str, a: Any, b: Any, out: ScalarType) -> Const | None:
    try:
        table = {
            "+": lambda: a + b,
            "-": lambda: a - b,
            "*": lambda: a * b,
            "/": lambda: (_c_div(a, b) if out.is_integer else a / b),
            "%": lambda: _c_rem(a, b),
            "&": lambda: a & b,
            "|": lambda: a | b,
            "^": lambda: a ^ b,
            "<<": lambda: a << b,
            ">>": lambda: a >> b,
            "==": lambda: a == b,
            "!=": lambda: a != b,
            "<": lambda: a < b,
            "<=": lambda: a <= b,
            ">": lambda: a > b,
            ">=": lambda: a >= b,
        }
        if op not in table:
            return None
        value = table[op]()
    except (ZeroDivisionError, TypeError):
        return None
    return Const(value, out)


def negate(operand: Exp) -> Exp:
    if isinstance(operand, Const):
        return Const(-operand.value, operand.tp)
    return current_builder().reflect_pure(UnaryOp("neg", operand, operand.tp))


def bitwise_not(operand: Exp) -> Exp:
    if not isinstance(operand.tp, ScalarType) or not operand.tp.is_integer:
        raise TypeError("bitwise not requires an integer operand")
    return current_builder().reflect_pure(UnaryOp("not", operand, operand.tp))


def convert(operand: Any, tp: ScalarType) -> Exp:
    """Reflect a scalar conversion (cast) to ``tp``."""
    operand = lift(operand)
    if operand.tp == tp:
        return operand
    if isinstance(operand, Const):
        value = operand.value
        if tp.is_float:
            return Const(float(value), tp)
        return Const(int(value), tp)
    return current_builder().reflect_pure(Convert(operand, tp))


def select(cond: Exp, then_val: Any, else_val: Any) -> Exp:
    """Reflect a scalar select; both sides are evaluated (like C's ?:
    after hoisting), so it must only be used on pure operands."""
    then_val = lift(then_val)
    else_val = lift(else_val, then_val)
    tp = then_val.tp
    if isinstance(tp, ScalarType) and isinstance(else_val.tp, ScalarType):
        tp = promote(then_val.tp, else_val.tp)
    return current_builder().reflect_pure(Select(cond, then_val, else_val, tp))


def staged_min(a: Exp, b: Any) -> Exp:
    return select(binary("<", a, b), a, b)


def staged_max(a: Exp, b: Any) -> Exp:
    return select(binary(">", a, b), a, b)


def fresh(tp: Type) -> Sym:
    """Allocate a fresh bound symbol (the paper's ``fresh[Int]``)."""
    return current_builder().fresh(tp)


# -- arrays -----------------------------------------------------------------


def _array_elem(arr: Exp) -> ScalarType:
    if not isinstance(arr.tp, ArrayType):
        raise TypeError(f"expected a staged array, got {arr.tp}")
    return arr.tp.elem


def _container_id(arr: Exp) -> int:
    if not isinstance(arr, Sym):
        raise TypeError("array container must be a symbol")
    return arr.id


def array_apply(arr: Exp, idx: Any) -> Exp:
    """Staged array read ``arr(idx)`` with a read effect on ``arr``."""
    elem = _array_elem(arr)
    idx = lift(idx)
    node = ArrayApply(arr, idx, elem)
    return current_builder().reflect_effect(node, fx.read(_container_id(arr)))


def array_update(arr: Exp, idx: Any, value: Any) -> Exp:
    """Staged array write ``arr(idx) = value`` with a write effect."""
    elem = _array_elem(arr)
    idx = lift(idx)
    value = lift(value, Const(0, elem) if not isinstance(value, Exp) else None)
    if isinstance(value, Exp) and isinstance(value.tp, ScalarType) and value.tp != elem:
        value = convert(value, elem)
    from repro.lms.types import VOID
    node = ArrayUpdate(arr, idx, value, VOID)
    return current_builder().reflect_effect(node, fx.write(_container_id(arr)))


def reflect_mutable(arr: Exp) -> Exp:
    """Mark a staged argument as mutable, the analog of the paper's
    ``reflectMutableSym`` used to make output arrays writable."""
    builder = current_builder()
    if isinstance(arr, Sym):
        builder.mark_mutable(arr)
        return arr
    raise TypeError("only argument symbols can be marked mutable")


# -- mutable staged variables -------------------------------------------------


class Variable:
    """A staged mutable variable (the analog of ``var acc = ...``).

    Reads and writes reflect effectful nodes against the variable's own
    container id, so loop-carried accumulators are ordered correctly.
    """

    def __init__(self, init: Any):
        init = lift(init)
        builder = current_builder()
        self.sym = builder.reflect_var_decl(VarDecl(init, init.tp))
        self.tp = init.tp

    def get(self) -> Exp:
        builder = current_builder()
        return builder.reflect_effect(
            VarRead(self.sym, self.tp), fx.read(self.sym.id)
        )

    def set(self, value: Any) -> None:
        value = lift(value)
        if isinstance(value.tp, ScalarType) and isinstance(self.tp, ScalarType):
            if value.tp != self.tp:
                value = convert(value, self.tp)
        builder = current_builder()
        from repro.lms.types import VOID
        builder.reflect_effect(
            VarAssign(self.sym, value, VOID), fx.write(self.sym.id)
        )
