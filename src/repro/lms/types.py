"""Staged type system: JVM primitives, C types, and SIMD vector types.

This module encodes Table 2 of the paper (the 12-primitive mapping between
JVM types and C/C++ types, including the unsigned types that the JVM lacks
natively) and the ten SIMD vector types (``__m64`` ... ``__m512i``) that the
paper introduces as abstract classes marking DSL expressions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class Type:
    """Base class for all staged types."""

    name: str

    def __str__(self) -> str:
        return self.name

    @property
    def c_name(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class ScalarType(Type):
    """A primitive type with a JVM name, a C name and a numpy dtype.

    ``jvm_name`` and ``c_type`` reproduce Table 2 of the paper.
    """

    jvm_name: str
    c_type: str
    dtype: str
    bits: int
    signed: bool
    is_float: bool

    @property
    def c_name(self) -> str:
        return self.c_type

    @property
    def np_dtype(self) -> np.dtype:
        return np.dtype(self.dtype)

    @property
    def is_integer(self) -> bool:
        return not self.is_float and self.name != "Boolean"

    def min_value(self) -> int:
        if self.is_float:
            raise ValueError(f"{self.name} is not an integer type")
        if not self.signed:
            return 0
        return -(1 << (self.bits - 1))

    def max_value(self) -> int:
        if self.is_float:
            raise ValueError(f"{self.name} is not an integer type")
        if not self.signed:
            return (1 << self.bits) - 1
        return (1 << (self.bits - 1)) - 1


@dataclass(frozen=True)
class VectorType(Type):
    """A SIMD register type such as ``__m256d``.

    ``kind`` is one of ``"float"``, ``"double"``, ``"int"`` or ``"mask"``;
    integer vectors are reinterpretable at any lane width, which is why
    (like the hardware) they carry no fixed element type.
    """

    bits: int
    kind: str

    @property
    def c_name(self) -> str:
        return self.name

    @property
    def default_lane_bits(self) -> int:
        return {"float": 32, "double": 64, "int": 32, "mask": 1}[self.kind]

    def lanes(self, lane_bits: int | None = None) -> int:
        width = lane_bits if lane_bits is not None else self.default_lane_bits
        return self.bits // width


@dataclass(frozen=True)
class ArrayType(Type):
    """An array of primitives; maps to a pointer ``T*`` in generated C."""

    elem: ScalarType = field(default=None)  # type: ignore[assignment]

    @property
    def c_name(self) -> str:
        return f"{self.elem.c_type}*"


@dataclass(frozen=True)
class VoidType(Type):
    @property
    def c_name(self) -> str:
        return "void"


def _scalar(name: str, jvm: str, c: str, dtype: str, bits: int, signed: bool,
            is_float: bool) -> ScalarType:
    return ScalarType(name=name, jvm_name=jvm, c_type=c, dtype=dtype,
                      bits=bits, signed=signed, is_float=is_float)


# Table 2: type mappings between JVM and C/C++ types.
FLOAT = _scalar("Float", "Float", "float", "float32", 32, True, True)
DOUBLE = _scalar("Double", "Double", "double", "float64", 64, True, True)
INT8 = _scalar("Byte", "Byte", "int8_t", "int8", 8, True, False)
INT16 = _scalar("Short", "Short", "int16_t", "int16", 16, True, False)
INT32 = _scalar("Int", "Int", "int32_t", "int32", 32, True, False)
INT64 = _scalar("Long", "Long", "int64_t", "int64", 64, True, False)
# JVM Char maps to int16_t to support UTF-8 (paper, Table 2).
CHAR = _scalar("Char", "Char", "int16_t", "uint16", 16, False, False)
BOOL = _scalar("Boolean", "Boolean", "bool", "bool", 8, False, False)
UINT8 = _scalar("UByte", "UByte", "uint8_t", "uint8", 8, False, False)
UINT16 = _scalar("UShort", "UShort", "uint16_t", "uint16", 16, False, False)
UINT32 = _scalar("UInt", "UInt", "uint32_t", "uint32", 32, False, False)
UINT64 = _scalar("ULong", "ULong", "uint64_t", "uint64", 64, False, False)

VOID = VoidType("Unit")

# SIMD vector types (Section 3.1 of the paper).
M64 = VectorType("__m64", 64, "int")
M128 = VectorType("__m128", 128, "float")
M128D = VectorType("__m128d", 128, "double")
M128I = VectorType("__m128i", 128, "int")
M256 = VectorType("__m256", 256, "float")
M256D = VectorType("__m256d", 256, "double")
M256I = VectorType("__m256i", 256, "int")
M512 = VectorType("__m512", 512, "float")
M512D = VectorType("__m512d", 512, "double")
M512I = VectorType("__m512i", 512, "int")
MASK8 = VectorType("__mmask8", 8, "mask")
MASK16 = VectorType("__mmask16", 16, "mask")

SCALAR_TYPES: tuple[ScalarType, ...] = (
    FLOAT, DOUBLE, INT8, INT16, INT32, INT64,
    CHAR, BOOL, UINT8, UINT16, UINT32, UINT64,
)

VECTOR_TYPES: tuple[VectorType, ...] = (
    M64, M128, M128D, M128I, M256, M256D, M256I, M512, M512D, M512I,
    MASK8, MASK16,
)

_BY_C_NAME: dict[str, ScalarType] = {}
for _t in SCALAR_TYPES:
    # First declaration wins: Short and Char both map to int16_t in
    # Table 2, and C-side lookups resolve to the signed Short.
    _BY_C_NAME.setdefault(_t.c_type, _t)
_BY_NAME: dict[str, Type] = {t.name: t for t in SCALAR_TYPES}
_BY_NAME.update({t.name: t for t in VECTOR_TYPES})
_BY_NAME["Unit"] = VOID


def scalar_for_c_type(c_type: str) -> ScalarType:
    """Look up the scalar type for a C type name such as ``int32_t``.

    Aliases used by the vendor XML (``int``, ``unsigned int``,
    ``__int64`` ...) are normalized first.
    """
    aliases = {
        "int": "int32_t",
        "unsigned int": "uint32_t",
        "unsigned": "uint32_t",
        "char": "int8_t",
        "unsigned char": "uint8_t",
        "short": "int16_t",
        "unsigned short": "uint16_t",
        "long long": "int64_t",
        "__int64": "int64_t",
        "unsigned __int64": "uint64_t",
        "unsigned long long": "uint64_t",
        "size_t": "uint64_t",
        "const int": "int32_t",
    }
    key = aliases.get(c_type, c_type)
    if key not in _BY_C_NAME:
        raise KeyError(f"no scalar type for C type {c_type!r}")
    return _BY_C_NAME[key]


def type_named(name: str) -> Type:
    """Look up a staged type by its canonical name (``Float``, ``__m256d``)."""
    if name not in _BY_NAME:
        raise KeyError(f"unknown staged type {name!r}")
    return _BY_NAME[name]


def array_of(elem: ScalarType) -> ArrayType:
    """The staged array type with element type ``elem``."""
    return ArrayType(name=f"Array[{elem.name}]", elem=elem)


def vector_type_for_bits(bits: int, kind: str) -> VectorType:
    """The vector register type of the given width and element kind."""
    for vt in VECTOR_TYPES:
        if vt.bits == bits and vt.kind == kind:
            return vt
    raise KeyError(f"no vector type with {bits} bits of kind {kind!r}")
