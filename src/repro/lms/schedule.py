"""Scheduling: dead-code elimination over SSA blocks.

Statements are reflected in program order and effectful statements carry
explicit serialization dependencies, so a schedule is the original
statement order restricted to *live* statements: every effectful
statement, plus the pure statements transitively required by live
statements or by the block result.
"""

from __future__ import annotations

from repro.lms.defs import Block, Stm
from repro.lms.expr import Exp, Sym


def _needed_syms(exp: Exp, needed: set[int]) -> None:
    if isinstance(exp, Sym):
        needed.add(exp.id)


def _block_free_syms(block: Block) -> set[int]:
    """Sym ids referenced in ``block`` but not defined or bound in it."""
    defined = {stm.sym.id for stm in block.stms}
    defined.update(s.id for s in block.bound)
    free: set[int] = set()
    for stm in block.stms:
        for arg in stm.rhs.exp_args:
            if isinstance(arg, Sym) and arg.id not in defined:
                free.add(arg.id)
        for inner in stm.rhs.blocks:
            inner_defined = defined | {s.id for s in inner.bound}
            for sym_id in _block_free_syms(inner):
                if sym_id not in inner_defined:
                    free.add(sym_id)
    if isinstance(block.result, Sym) and block.result.id not in defined:
        free.add(block.result.id)
    return free


def schedule_block(block: Block) -> Block:
    """Return ``block`` with dead pure statements removed, recursively."""
    needed: set[int] = set()
    _needed_syms(block.result, needed)

    # First pass (reverse): decide liveness.  Effectful statements are
    # always live; a pure statement is live if a later live statement or
    # the result needs its symbol.
    live: list[Stm] = []
    for stm in reversed(block.stms):
        is_live = stm.effects.effectful or stm.sym.id in needed
        if not is_live:
            continue
        live.append(stm)
        for arg in stm.rhs.exp_args:
            _needed_syms(arg, needed)
        needed.update(stm.effects.deps)
        for inner in stm.rhs.blocks:
            needed.update(_block_free_syms(inner))
    live.reverse()

    # Second pass: recurse into nested blocks of live statements.
    scheduled: list[Stm] = []
    for stm in live:
        rhs = stm.rhs
        if rhs.blocks:
            _schedule_nested(rhs)
        scheduled.append(stm)
    return Block(scheduled, block.result, block.bound)


def _schedule_nested(rhs) -> None:
    """Schedule nested blocks of a control-flow node in place."""
    from repro.lms.defs import ForLoop, IfThenElse, WhileLoop

    if isinstance(rhs, ForLoop):
        rhs.body = schedule_block(rhs.body)
    elif isinstance(rhs, IfThenElse):
        rhs.then_block = schedule_block(rhs.then_block)
        rhs.else_block = schedule_block(rhs.else_block)
    elif isinstance(rhs, WhileLoop):
        rhs.cond_block = schedule_block(rhs.cond_block)
        rhs.body = schedule_block(rhs.body)


def count_statements(block: Block) -> int:
    """Total number of statements in ``block`` including nested blocks."""
    total = 0
    for stm in block.stms:
        total += 1
        for inner in stm.rhs.blocks:
            total += count_statements(inner)
    return total
