"""Command-line eDSL generation (the artifact's ``GenerateIntrinsics``).

``repro-gen-intrinsics --out DIR`` writes the vendor-schema XML
specification files for every historical version plus the generated eDSL
Python sources, and prints per-ISA statistics — the equivalent of the
paper artifact's ``test-only cgo.GenerateIntrinsics`` step that fills the
``Generated_SIMD_Intrinsics`` folder.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.isa.generator import generate_edsl_modules
from repro.spec.catalog import all_entries
from repro.spec.census import take_census
from repro.spec.versions import SPEC_VERSIONS
from repro.spec.xmlgen import write_spec_version


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Generate SIMD intrinsics eDSLs from the vendor-schema "
                    "XML specification.")
    parser.add_argument("--out", default="Generated_SIMD_Intrinsics",
                        help="output directory")
    parser.add_argument("--version", default="3.3.16",
                        choices=sorted(SPEC_VERSIONS),
                        help="spec version to generate eDSLs for")
    parser.add_argument("--all-xml", action="store_true",
                        help="also write every historical XML version")
    args = parser.parse_args(argv)

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    versions = sorted(SPEC_VERSIONS) if args.all_xml else [args.version]
    for v in versions:
        path = write_spec_version(out / "xml", v)
        print(f"wrote {path}")

    entries = all_entries(args.version)
    census = take_census(entries)
    per_isa = generate_edsl_modules(entries, args.version)
    src_dir = out / "edsl"
    src_dir.mkdir(parents=True, exist_ok=True)
    total_lines = 0
    for isa, modules in per_isa.items():
        for gm in modules:
            fname = gm.name.rsplit(".", 1)[-1] + ".py"
            (src_dir / fname).write_text(gm.source)
            total_lines += gm.source.count("\n")
    print(f"\ngenerated eDSLs for {len(per_isa)} ISAs "
          f"({census.total_unique} unique intrinsics, "
          f"{total_lines} lines of generated Scala-analog code)")
    print(f"{'ISA':10s} {'count':>6s} {'paper':>6s}")
    for isa, mine, paper in census.rows():
        print(f"{isa:10s} {mine:6d} {paper if paper else 0:6d}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
