"""Command-line eDSL generation (the artifact's ``GenerateIntrinsics``).

``repro-gen-intrinsics --out DIR`` writes the vendor-schema XML
specification files for every historical version plus the generated eDSL
Python sources, and prints per-ISA statistics — the equivalent of the
paper artifact's ``test-only cgo.GenerateIntrinsics`` step that fills the
``Generated_SIMD_Intrinsics`` folder.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.isa.generator import generate_edsl_modules
from repro.spec.catalog import all_entries
from repro.spec.census import take_census
from repro.spec.versions import SPEC_VERSIONS
from repro.spec.xmlgen import write_spec_version


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Generate SIMD intrinsics eDSLs from the vendor-schema "
                    "XML specification.")
    parser.add_argument("--out", default="Generated_SIMD_Intrinsics",
                        help="output directory")
    parser.add_argument("--version", default="3.3.16",
                        choices=sorted(SPEC_VERSIONS),
                        help="spec version to generate eDSLs for")
    parser.add_argument("--all-xml", action="store_true",
                        help="also write every historical XML version")
    parser.add_argument("--json", nargs="?", const="-", default=None,
                        metavar="PATH", dest="json_out",
                        help="emit the per-ISA census as JSON to PATH "
                             "(or stdout when no PATH is given)")
    args = parser.parse_args(argv)

    # keep stdout machine-parseable when the JSON goes there
    human = sys.stderr if args.json_out == "-" else sys.stdout

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    versions = sorted(SPEC_VERSIONS) if args.all_xml else [args.version]
    for v in versions:
        path = write_spec_version(out / "xml", v)
        print(f"wrote {path}", file=human)

    entries = all_entries(args.version)
    census = take_census(entries)
    per_isa = generate_edsl_modules(entries, args.version)
    src_dir = out / "edsl"
    src_dir.mkdir(parents=True, exist_ok=True)
    total_lines = 0
    for isa, modules in per_isa.items():
        for gm in modules:
            fname = gm.name.rsplit(".", 1)[-1] + ".py"
            (src_dir / fname).write_text(gm.source)
            total_lines += gm.source.count("\n")
    print(f"\ngenerated eDSLs for {len(per_isa)} ISAs "
          f"({census.total_unique} unique intrinsics, "
          f"{total_lines} lines of generated Scala-analog code)",
          file=human)
    print(f"{'ISA':10s} {'count':>6s} {'paper':>6s}", file=human)
    for isa, mine, paper in census.rows():
        print(f"{isa:10s} {mine:6d} {paper if paper else 0:6d}", file=human)

    if args.json_out is not None:
        payload = {
            "version": args.version,
            "total_unique": census.total_unique,
            "shared_avx512_knc": census.shared_avx512_knc,
            "generated_lines": total_lines,
            "isas": [{"isa": isa, "count": mine, "paper": paper}
                     for isa, mine, paper in census.rows()],
            "groups": census.per_group,
        }
        text = json.dumps(payload, indent=2) + "\n"
        if args.json_out == "-":
            sys.stdout.write(text)
        else:
            out_path = Path(args.json_out)
            out_path.parent.mkdir(parents=True, exist_ok=True)
            out_path.write_text(text)
            print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
