"""Automatically generated ISA-specific eDSLs.

The paper's Figure 1 pipeline: parse the vendor XML specification, then
generate — for every intrinsic — the four LMS building blocks:

1. a *definition* class (``Def`` subclass, here :class:`IntrinsicsDef`);
2. the *SSA conversion* (a constructor function reflecting the definition
   into the current graph, with inferred effects);
3. a *mirroring* entry (``remirror``, used by transformers);
4. an *unparsing* entry (the C expression emitter).

Mutability is inferred from the spec category exactly as in the paper:
loads put a read effect on each memory argument, stores a write effect,
and the heuristic extends to gathers, scatters, mask stores and the
hardware RNG.

Because the JVM limits methods to 64KB, the paper splits each ISA's
generated code into subclasses that inherit each other; the analog here
is splitting each generated eDSL module into fixed-size part files.
"""

from repro.isa.base import IntrinsicsDef
from repro.isa.generator import generate_isa_source, generate_edsl_modules
from repro.isa.registry import IntrinsicsNamespace, IntrinsicsIR, load_isas

__all__ = [
    "IntrinsicsDef",
    "IntrinsicsIR",
    "IntrinsicsNamespace",
    "generate_edsl_modules",
    "generate_isa_source",
    "load_isas",
]
