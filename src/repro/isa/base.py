"""Runtime support for generated intrinsic eDSLs.

Each generated intrinsic is a subclass of :class:`IntrinsicsDef` (the
paper's ``abstract class IntrinsicsDef[T] extends Def[T]`` carrying the
category, intrinsic type, performance map and header), plus a module
level constructor function that performs the ``Exp -> Def`` SSA
conversion with inferred effects.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.lms import effects as fx
from repro.lms.defs import Def
from repro.lms.effects import Effects
from repro.lms.expr import Const, Exp, Sym
from repro.lms.graph import current_builder
from repro.lms.types import ArrayType, INT32, ScalarType, Type, VectorType


class IntrinsicsError(TypeError):
    """Raised on a mis-typed intrinsic invocation at staging time."""


class IntrinsicsDef(Def):
    """Base class of every generated intrinsic definition.

    Class attributes (set by the generator):

    * ``intrinsic_name`` — the C name, e.g. ``"_mm256_add_pd"``;
    * ``category`` / ``intrinsic_types`` / ``performance`` / ``header`` —
      straight from the XML specification;
    * ``params_meta`` — ``(varname, c_type, kind)`` per declared
      parameter, ``kind`` in ``{"vec", "scalar", "imm", "mem", "mask"}``;
    * ``mem_effects`` — one of ``"r"``/``"w"``/``"rw"`` per memory param
      (the inferred mutability);
    * ``global_effect`` — True for intrinsics with ambient effects (RNG,
      fences, TSC);
    * ``ret_type`` — the staged result type.
    """

    intrinsic_name: str = "?"
    category: tuple[str, ...] = ()
    intrinsic_types: tuple[str, ...] = ()
    performance: dict = {}
    header: str = "immintrin.h"
    params_meta: tuple[tuple[str, str, str], ...] = ()
    mem_effects: tuple[str, ...] = ()
    global_effect: bool = False
    ret_type: Type = None  # type: ignore[assignment]
    ret_c_type: str = "void"

    def __init__(self, args: Sequence[object]):
        super().__init__(self.ret_type, args)
        self.mnemonic = self.intrinsic_name

    @classmethod
    def mem_indices(cls) -> list[int]:
        return [i for i, (_, _, kind) in enumerate(cls.params_meta)
                if kind == "mem"]

    # -- mirroring (building block 3) -------------------------------------

    def remirror(self, f) -> Exp:
        new_args = [f(a) if isinstance(a, Exp) else a for a in self.args]
        return reflect_intrinsic(type(self), *new_args)

    def __repr__(self) -> str:
        return f"{self.intrinsic_name}({', '.join(map(repr, self.args))})"


def _check_arg(name: str, meta: tuple[str, str, str], arg: Any) -> object:
    varname, c_type, kind = meta
    if kind in ("vec", "mask"):
        if not isinstance(arg, Exp) or not isinstance(arg.tp, VectorType):
            raise IntrinsicsError(
                f"{name}: parameter {varname!r} needs a staged {c_type} "
                f"expression, got {arg!r}"
            )
        return arg
    if kind == "mem":
        if not isinstance(arg, Exp) or not isinstance(arg.tp, ArrayType):
            raise IntrinsicsError(
                f"{name}: parameter {varname!r} needs a staged array "
                f"(memory container), got {arg!r}"
            )
        return arg
    if kind == "imm":
        if isinstance(arg, Const):
            return int(arg.value)
        if isinstance(arg, (int, bool)):
            return int(arg)
        raise IntrinsicsError(
            f"{name}: parameter {varname!r} must be a compile-time "
            f"constant (C immediate), got {arg!r}"
        )
    # kind == "scalar"
    if isinstance(arg, Exp):
        return arg
    if isinstance(arg, (int, float)):
        from repro.lms.types import scalar_for_c_type
        tp = scalar_for_c_type(c_type.replace("const ", ""))
        value = float(arg) if tp.is_float else int(arg)
        return Const(value, tp)
    raise IntrinsicsError(
        f"{name}: parameter {varname!r} needs a staged scalar, got {arg!r}"
    )


def reflect_intrinsic(cls: type[IntrinsicsDef], *args: Any) -> Exp:
    """SSA conversion (building block 2): reflect one intrinsic call.

    Memory parameters take a trailing element-offset argument each, in
    declaration order, mirroring the paper's ``(mem_addr, offset)``
    containers: ``_mm256_storeu_ps(a, value, i)``.
    """
    name = cls.intrinsic_name
    mem_idx = cls.mem_indices()
    expected = len(cls.params_meta) + len(mem_idx)
    if len(args) != expected:
        raise IntrinsicsError(
            f"{name} takes {expected} arguments "
            f"({len(cls.params_meta)} declared + {len(mem_idx)} memory "
            f"offsets), got {len(args)}"
        )

    processed: list[object] = []
    for meta, arg in zip(cls.params_meta, args):
        processed.append(_check_arg(name, meta, arg))
    for off in args[len(cls.params_meta):]:
        if isinstance(off, Exp):
            processed.append(off)
        elif isinstance(off, int):
            processed.append(Const(off, INT32))
        else:
            raise IntrinsicsError(
                f"{name}: memory offset must be a staged Int or a Python "
                f"int, got {off!r}"
            )

    node = cls(processed)
    effects = _infer_effects(cls, processed, mem_idx)
    builder = current_builder()
    if effects.pure:
        return builder.reflect_pure(node)
    return builder.reflect_effect(node, effects)


def _infer_effects(cls: type[IntrinsicsDef], args: Sequence[object],
                   mem_idx: list[int]) -> Effects:
    """Mutability inference (the paper's conservative heuristic)."""
    reads: set[int] = set()
    writes: set[int] = set()
    for effect_kind, param_index in zip(cls.mem_effects, mem_idx):
        container = args[param_index]
        if not isinstance(container, Sym):
            raise IntrinsicsError(
                f"{cls.intrinsic_name}: memory argument must be an array "
                f"symbol"
            )
        if "r" in effect_kind:
            reads.add(container.id)
        if "w" in effect_kind:
            writes.add(container.id)
    return Effects(reads=frozenset(reads), writes=frozenset(writes),
                   is_global=cls.global_effect)
