"""Loading and mixing generated eDSLs.

``load_isas("AVX", "AVX2", "FMA")`` is the analog of the paper's step 2
("create a DSL instance by instantiating one or mixing several
ISA-specific eDSLs"): it generates (or reuses) the eDSL modules for the
requested ISAs and exposes every constructor function as an attribute of
one namespace object.  ``IntrinsicsIR`` mixes in everything — the class
the paper's SAXPY example instantiates.
"""

from __future__ import annotations

import sys
import types
from typing import Iterable

from repro.isa.generator import GeneratedModule, generate_edsl_modules
from repro.spec.catalog import all_entries
from repro.spec.census import isa_memberships
from repro.spec.model import IntrinsicSpec


class IntrinsicsNamespace:
    """A mixed set of eDSLs: intrinsic constructors as attributes."""

    def __init__(self, isas: tuple[str, ...], version: str,
                 functions: dict[str, object],
                 classes: dict[str, type]):
        self.isas = isas
        self.version = version
        self._functions = functions
        self._classes = classes
        for name, fn in functions.items():
            setattr(self, name, fn)

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def function(self, name: str):
        """Look up an intrinsic constructor by its C name."""
        try:
            return self._functions[name]
        except KeyError:
            raise AttributeError(
                f"intrinsic {name} is not provided by ISAs {self.isas} "
                f"(spec version {self.version})"
            ) from None

    def node_class(self, name: str) -> type:
        return self._classes[name]

    def names(self) -> list[str]:
        return sorted(self._functions)

    def __len__(self) -> int:
        return len(self._functions)

    def __repr__(self) -> str:
        return (f"IntrinsicsNamespace(isas={self.isas}, "
                f"intrinsics={len(self)})")


_cache: dict[tuple[str, tuple[str, ...]], IntrinsicsNamespace] = {}


def _entries_for(isas: Iterable[str], version: str) -> list[IntrinsicSpec]:
    requested = set(isas)
    out = []
    for e in all_entries(version):
        buckets = isa_memberships(e)
        if buckets & requested:
            out.append(e)
            continue
        # Small extensions (FP16C, RDRAND, ...) are requested by their
        # CPUID name directly.
        if requested & set(e.cpuids):
            out.append(e)
    return out


def _exec_modules(modules: list[GeneratedModule]) -> tuple[dict, dict]:
    functions: dict[str, object] = {}
    classes: dict[str, type] = {}
    for gm in modules:
        module = types.ModuleType(gm.name)
        module.__file__ = f"<generated {gm.name}>"
        sys.modules[gm.name] = module
        exec(compile(gm.source, module.__file__, "exec"), module.__dict__)
        for name in gm.intrinsic_names:
            fn = module.__dict__.get(name)
            if fn is None:  # pragma: no cover - generator invariant
                raise RuntimeError(f"generator did not emit {name}")
            functions.setdefault(name, fn)
            from repro.isa.generator import class_name_for
            classes.setdefault(name,
                               module.__dict__[class_name_for(name)])
    return functions, classes


def load_isas(*isas: str, version: str = "3.3.16") -> IntrinsicsNamespace:
    """Generate and mix the eDSLs for the requested ISAs."""
    if not isas:
        raise ValueError("load_isas needs at least one ISA name")
    key = (version, tuple(sorted(isas)))
    if key in _cache:
        return _cache[key]
    entries = _entries_for(isas, version)
    if not entries:
        raise ValueError(f"no intrinsics found for ISAs {isas}")
    per_isa = generate_edsl_modules(entries, version)
    modules = [gm for mods in per_isa.values() for gm in mods]
    functions, classes = _exec_modules(modules)
    ns = IntrinsicsNamespace(tuple(sorted(isas)), version, functions, classes)
    _cache[key] = ns
    return ns


_ALL_ISAS = ("MMX", "SSE", "SSE2", "SSE3", "SSSE3", "SSE4.1", "SSE4.2",
             "AVX", "AVX2", "AVX-512", "FMA", "KNC", "SVML",
             "FP16C", "RDRAND", "RDSEED", "AES", "SHA", "PCLMULQDQ",
             "POPCNT", "LZCNT", "BMI1", "BMI2", "TSC")


def IntrinsicsIR(version: str = "3.3.16") -> IntrinsicsNamespace:
    """The paper's ``new IntrinsicsIR``: every ISA mixed into one eDSL."""
    return load_isas(*_ALL_ISAS, version=version)
