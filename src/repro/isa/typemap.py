"""Mapping between vendor C type strings and staged types.

Implements Section 3.1 of the paper: SIMD vector types become abstract
staged types, primitive C types map onto the 12 JVM primitives (Table 2),
and pointer types map onto staged arrays paired with an element offset
(the container convention).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lms.types import (
    M128, M128D, M128I, M256, M256D, M256I, M512, M512D, M512I, M64,
    MASK8, MASK16, ScalarType, Type, VOID, VectorType, scalar_for_c_type,
)

_VECTOR_BY_C: dict[str, VectorType] = {
    "__m64": M64, "__m128": M128, "__m128d": M128D, "__m128i": M128I,
    "__m256": M256, "__m256d": M256D, "__m256i": M256I,
    "__m512": M512, "__m512d": M512D, "__m512i": M512I,
}

_MASK_BY_C: dict[str, VectorType] = {
    "__mmask8": MASK8, "__mmask16": MASK16,
    # Wider masks are modelled at 16 bits of staged type; the runtime
    # MaskValue keeps the true width.
    "__mmask32": MASK16, "__mmask64": MASK16,
}


@dataclass(frozen=True)
class MappedParam:
    """How one spec parameter surfaces in the eDSL."""

    varname: str
    c_type: str
    staged: Type | None      # None for memory params (any array accepted)
    is_memory: bool
    is_immediate: bool       # C requires a compile-time constant


def strip_pointer(c_type: str) -> str:
    return (c_type.replace("const", "").replace("*", "").strip())


def map_return_type(c_type: str) -> Type:
    c_type = c_type.strip()
    if c_type in ("void", ""):
        return VOID
    if c_type in _VECTOR_BY_C:
        return _VECTOR_BY_C[c_type]
    if c_type in _MASK_BY_C:
        return _MASK_BY_C[c_type]
    return scalar_for_c_type(c_type)


def map_param(varname: str, c_type: str) -> MappedParam:
    c = c_type.strip()
    if "*" in c:
        return MappedParam(varname=varname, c_type=c, staged=None,
                           is_memory=True, is_immediate=False)
    if c in _VECTOR_BY_C:
        return MappedParam(varname, c, _VECTOR_BY_C[c], False, False)
    if c in _MASK_BY_C:
        return MappedParam(varname, c, _MASK_BY_C[c], False, False)
    immediate = c.startswith("const ") or varname in (
        "imm8", "rounding", "scale", "pattern", "hint")
    scalar = scalar_for_c_type(c.replace("const ", ""))
    return MappedParam(varname, c, scalar, False, immediate)


def is_vector_c_type(c_type: str) -> bool:
    return c_type.strip() in _VECTOR_BY_C
