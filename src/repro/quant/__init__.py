"""Variable-precision arithmetic: the paper's "build your own virtual
ISA" use case (Section 4).

Provides stochastic quantization into 16/8/4-bit formats and the
two-function virtual ISA the paper defines on top of the SIMD eDSLs::

    int    dot_ps_step (int bits);
    __m256 dot_ps      (int bits, void* x, void* y);

with staged AVX2/FMA/FP16C implementations for 32/16/8/4 bits and the
matching Java baselines (which pay the JVM's sub-``int`` promotion tax).
"""

from repro.quant.quantize import (
    QuantizedArray,
    dequantize,
    pack_nibbles,
    quantize_stochastic,
    scale_factor,
    unpack_nibbles,
)
from repro.quant.dot import (
    DOT_BITS,
    dot_ps_step,
    java_dot_method,
    make_staged_dot,
    reference_dot,
)

__all__ = [
    "DOT_BITS",
    "QuantizedArray",
    "dequantize",
    "dot_ps_step",
    "java_dot_method",
    "make_staged_dot",
    "pack_nibbles",
    "quantize_stochastic",
    "reference_dot",
    "scale_factor",
    "unpack_nibbles",
]
