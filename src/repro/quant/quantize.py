"""Stochastic quantization (Section 4 of the paper).

For a vector ``v`` of size ``n`` and a precision of ``b`` bits, the
scale factor is ``s_v = (2^(b-1) - 1) / max|v_i|``; scaled values are
quantized stochastically, ``v_i -> floor(v_i * s_v + mu)`` with ``mu``
uniform in ``(0, 1)``.  A quantized array is one scale factor plus an
array of ``b``-bit values:

* 16-bit — IEEE half precision for the LMS path (FP16C hardware
  support); quantized ``short`` for the Java path (no half floats on
  the JVM);
* 8-bit — two's complement bytes (Buckwild!);
* 4-bit — sign-magnitude (sign bit then 3 base bits, per ZipML),
  stored as pairs inside the bytes of a byte array.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class QuantizedArray:
    """A quantized vector: one scale factor + packed fixed-width data."""

    bits: int
    scale: float
    data: np.ndarray
    n: int

    @property
    def format_name(self) -> str:
        return {32: "fp32", 16: "fp16", 8: "int8", 4: "sm4"}[self.bits]


def scale_factor(values: np.ndarray, bits: int) -> float:
    """``(2^(b-1) - 1) / max|v|`` — maps values into representable range."""
    peak = float(np.max(np.abs(values))) if values.size else 0.0
    if peak == 0.0:
        return 1.0
    return ((1 << (bits - 1)) - 1) / peak


def _stochastic_round(scaled: np.ndarray, rng: np.random.Generator
                      ) -> np.ndarray:
    mu = rng.uniform(0.0, 1.0, size=scaled.shape)
    return np.floor(scaled + mu)


def pack_nibbles(values: np.ndarray) -> np.ndarray:
    """Pack sign-magnitude 4-bit codes, two per byte (low nibble first).

    Each code: bit 3 = sign, bits 0..2 = magnitude (0..7); *not* two's
    complement (the ZipML format the paper uses).
    """
    if values.size % 2 != 0:
        raise ValueError("4-bit packing needs an even number of values")
    mags = np.minimum(np.abs(values), 7).astype(np.uint8)
    signs = (values < 0).astype(np.uint8) << 3
    codes = (mags | signs).astype(np.uint8)
    return (codes[0::2] | (codes[1::2] << 4)).astype(np.int8)


def unpack_nibbles(packed: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`pack_nibbles`: signed integer values."""
    raw = packed.view(np.uint8)
    lo = raw & 0x0F
    hi = (raw >> 4) & 0x0F
    codes = np.empty(raw.size * 2, dtype=np.uint8)
    codes[0::2] = lo
    codes[1::2] = hi
    mags = (codes & 0x7).astype(np.int32)
    signs = np.where(codes & 0x8, -1, 1)
    return (mags * signs)[:n]


def quantize_stochastic(values: np.ndarray, bits: int,
                        rng: np.random.Generator | None = None
                        ) -> QuantizedArray:
    """Quantize a float vector to the given precision."""
    values = np.asarray(values, dtype=np.float32)
    rng = rng if rng is not None else np.random.default_rng(0x51AB)
    n = values.size
    if bits == 32:
        return QuantizedArray(32, 1.0, values.copy(), n)
    if bits == 16:
        return QuantizedArray(16, 1.0, values.astype(np.float16), n)
    if bits == 8:
        s = scale_factor(values, 8)
        # Scale in float64: extreme inputs (subnormal peaks) would
        # overflow a float32 intermediate.
        scaled = values.astype(np.float64) * s
        q = np.clip(_stochastic_round(scaled, rng), -128, 127)
        return QuantizedArray(8, s, q.astype(np.int8), n)
    if bits == 4:
        s = scale_factor(values, 4)
        scaled = values.astype(np.float64) * s
        q = np.clip(_stochastic_round(scaled, rng), -7, 7)
        if n % 2 != 0:
            q = np.concatenate([q, [0.0]])
        return QuantizedArray(4, s, pack_nibbles(q.astype(np.int8)), n)
    raise ValueError(f"unsupported precision: {bits} bits")


def dequantize(qa: QuantizedArray) -> np.ndarray:
    """Recover float values (lossy inverse)."""
    if qa.bits == 32:
        return qa.data.copy()
    if qa.bits == 16:
        return qa.data.astype(np.float32)
    if qa.bits == 8:
        return qa.data.astype(np.float32) / np.float32(qa.scale)
    if qa.bits == 4:
        return (unpack_nibbles(qa.data, qa.n).astype(np.float32)
                / np.float32(qa.scale))
    raise ValueError(f"unsupported precision: {qa.bits} bits")
