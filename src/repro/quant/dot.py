"""The variable-precision dot product: a virtual ISA (paper Section 4).

The virtual ISA abstracts precision behind two functions::

    int    dot_ps_step (int bits);   # elements consumed per invocation
    __m256 dot_ps      (int bits, void* x, void* y);

``dot_ps_step`` is 32 for the 32/16/8-bit formats and 128 for 4-bit,
exactly as in the paper.  :func:`make_staged_dot` builds the full staged
dot kernel: a loop with stride ``dot_ps_step(bits)`` whose body is the
``dot_ps`` expansion for that precision, an ``acc`` accumulator, and a
final sum reduction of the 8 float lanes.

The Java baselines accumulate into ``int`` and block the loop only to
the extent plain Java allows — sub-``int`` operands are still promoted
to 32 bits before every multiply, which is the promotion tax the paper
measures (up to 40x for the 4-bit format).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.isa.registry import IntrinsicsNamespace, load_isas
from repro.jvm import ast as jast
from repro.jvm.jtypes import JBYTE, JFLOAT, JINT, JLONG, JSHORT
from repro.lms import forloop, stage_function
from repro.lms.expr import Exp
from repro.lms.ops import Variable, array_apply, convert
from repro.lms.staging import StagedFunction
from repro.lms.types import FLOAT, INT16, INT32, INT8, array_of
from repro.quant.quantize import QuantizedArray, unpack_nibbles

DOT_BITS = (32, 16, 8, 4)

_DOT_ISAS = ("SSE", "SSE2", "SSE3", "SSSE3", "SSE4.1", "AVX", "AVX2",
             "FMA", "FP16C")


def dot_ps_step(bits: int) -> int:
    """Elements consumed per ``dot_ps`` invocation (the paper's table)."""
    if bits in (32, 16, 8):
        return 32
    if bits == 4:
        return 128
    raise ValueError(f"unsupported precision: {bits} bits")


def _reduce_ps(cir: IntrinsicsNamespace, v: Exp) -> Exp:
    """Sum-reduce 8 float lanes to one float (the paper's reduce_sum)."""
    hi = cir._mm256_extractf128_ps(v, 1)
    lo = cir._mm256_castps256_ps128(v)
    s = cir._mm_add_ps(hi, lo)
    s = cir._mm_hadd_ps(s, s)
    s = cir._mm_hadd_ps(s, s)
    return cir._mm_cvtss_f32(s)


def _reduce_epi32(cir: IntrinsicsNamespace, v: Exp) -> Exp:
    """Sum-reduce 8 int32 lanes to one float."""
    return _reduce_ps(cir, cir._mm256_cvtepi32_ps(v))


# ---------------------------------------------------------------------------
# dot_ps bodies per precision (each consumes dot_ps_step(bits) elements).
# ---------------------------------------------------------------------------


def _dot_ps_32(cir, acc: Variable, a: Exp, b: Exp, i: Exp) -> None:
    partial = None
    for u in range(4):
        va = cir._mm256_loadu_ps(a, i + 8 * u)
        vb = cir._mm256_loadu_ps(b, i + 8 * u)
        partial = cir._mm256_fmadd_ps(va, vb, partial) if partial is not None \
            else cir._mm256_mul_ps(va, vb)
    acc.set(cir._mm256_add_ps(acc.get(), partial))


def _dot_ps_16(cir, acc: Variable, a: Exp, b: Exp, i: Exp) -> None:
    """Half-precision: FP16C converts on load, math stays in fp32."""
    partial = None
    for u in range(4):
        ha = cir._mm_loadu_si128(a, i + 8 * u)
        hb = cir._mm_loadu_si128(b, i + 8 * u)
        va = cir._mm256_cvtph_ps(ha)
        vb = cir._mm256_cvtph_ps(hb)
        partial = cir._mm256_fmadd_ps(va, vb, partial) if partial is not None \
            else cir._mm256_mul_ps(va, vb)
    acc.set(cir._mm256_add_ps(acc.get(), partial))


def _dot_ps_8(cir, iacc: Variable, a: Exp, b: Exp, i: Exp,
              ones16: Exp) -> None:
    """8-bit two's complement (Buckwild!): abs/sign + maddubs + madd."""
    va = cir._mm256_loadu_si256(a, i)
    vb = cir._mm256_loadu_si256(b, i)
    abs_a = cir._mm256_abs_epi8(va)
    sgn_b = cir._mm256_sign_epi8(vb, va)
    p16 = cir._mm256_maddubs_epi16(abs_a, sgn_b)
    p32 = cir._mm256_madd_epi16(p16, ones16)
    iacc.set(cir._mm256_add_epi32(iacc.get(), p32))


def _dot_ps_4(cir, iacc: Variable, a: Exp, b: Exp, ib: Exp,
              consts: dict[str, Exp]) -> None:
    """4-bit sign-magnitude (ZipML): bit-extract both nibbles, apply the
    combined sign to one magnitude, then the maddubs/madd pipeline."""
    mask0f, mask07, mask08, ones16 = (consts["m0f"], consts["m07"],
                                      consts["m08"], consts["ones16"])
    for half in range(2):  # 64 values per 32-byte load, two loads = 128
        va = cir._mm256_loadu_si256(a, ib + 32 * half)
        vb = cir._mm256_loadu_si256(b, ib + 32 * half)
        for nib in range(2):
            if nib == 0:
                na = cir._mm256_and_si256(va, mask0f)
                nb = cir._mm256_and_si256(vb, mask0f)
            else:
                na = cir._mm256_and_si256(
                    cir._mm256_srli_epi16(va, 4), mask0f)
                nb = cir._mm256_and_si256(
                    cir._mm256_srli_epi16(vb, 4), mask0f)
            mag_a = cir._mm256_and_si256(na, mask07)
            mag_b = cir._mm256_and_si256(nb, mask07)
            # Combined sign: negate b's magnitude where exactly one of
            # the two sign bits is set ((na ^ nb) & 8), via the two's
            # complement identity (x ^ m) - m with m = 0 or -1.
            m = cir._mm256_cmpeq_epi8(
                cir._mm256_and_si256(cir._mm256_xor_si256(na, nb), mask08),
                mask08)
            signed_b = cir._mm256_sub_epi8(
                cir._mm256_xor_si256(mag_b, m), m)
            p16 = cir._mm256_maddubs_epi16(mag_a, signed_b)
            p32 = cir._mm256_madd_epi16(p16, ones16)
            iacc.set(cir._mm256_add_epi32(iacc.get(), p32))


# ---------------------------------------------------------------------------
# Full staged kernels.
# ---------------------------------------------------------------------------


def make_staged_dot(bits: int,
                    cir: IntrinsicsNamespace | None = None
                    ) -> StagedFunction:
    """Stage the variable-precision dot kernel for one precision.

    Signatures (arrays padded to ``dot_ps_step(bits)``):

    * 32: ``(a: float[], b: float[], n) -> float``
    * 16: ``(a: short[] fp16 bits, b, n) -> float``
    * 8:  ``(a: byte[], b: byte[], inv_scale: float, n) -> float``
    * 4:  ``(a: byte[] packed, b, inv_scale: float, n) -> float``
      (``n`` counts values; bytes hold two each)
    """
    cir = cir if cir is not None else load_isas(*_DOT_ISAS)
    step = dot_ps_step(bits)

    if bits == 32:
        def dot32(a, b, n):
            acc = Variable(cir._mm256_setzero_ps())
            forloop(0, n, step=step,
                    body=lambda i: _dot_ps_32(cir, acc, a, b, i))
            return _reduce_ps(cir, acc.get())

        return stage_function(
            dot32, [array_of(FLOAT), array_of(FLOAT), INT32], "dot32_staged")

    if bits == 16:
        def dot16(a, b, n):
            acc = Variable(cir._mm256_setzero_ps())
            forloop(0, n, step=step,
                    body=lambda i: _dot_ps_16(cir, acc, a, b, i))
            return _reduce_ps(cir, acc.get())

        return stage_function(
            dot16, [array_of(INT16), array_of(INT16), INT32], "dot16_staged")

    if bits == 8:
        def dot8(a, b, inv_scale, n):
            iacc = Variable(cir._mm256_setzero_si256())
            ones16 = cir._mm256_set1_epi16(1)
            forloop(0, n, step=step,
                    body=lambda i: _dot_ps_8(cir, iacc, a, b, i, ones16))
            return _reduce_epi32(cir, iacc.get()) * inv_scale

        return stage_function(
            dot8, [array_of(INT8), array_of(INT8), FLOAT, INT32],
            "dot8_staged")

    if bits == 4:
        def dot4(a, b, inv_scale, n):
            iacc = Variable(cir._mm256_setzero_si256())
            consts = {
                "m0f": cir._mm256_set1_epi8(0x0F),
                "m07": cir._mm256_set1_epi8(0x07),
                "m08": cir._mm256_set1_epi8(0x08),
                "ones16": cir._mm256_set1_epi16(1),
            }
            nbytes = n >> 1
            forloop(0, nbytes, step=step >> 1,
                    body=lambda ib: _dot_ps_4(cir, iacc, a, b, ib, consts))
            return _reduce_epi32(cir, iacc.get()) * inv_scale

        return stage_function(
            dot4, [array_of(INT8), array_of(INT8), FLOAT, INT32],
            "dot4_staged")

    raise ValueError(f"unsupported precision: {bits} bits")


# ---------------------------------------------------------------------------
# Java baselines.
# ---------------------------------------------------------------------------


def java_dot_method(bits: int) -> jast.KernelMethod:
    """The Java implementation of one precision (paper Section 4.1)."""
    L, C, B, A = jast.Local, jast.ConstExpr, jast.Bin, jast.ArrayLoad

    if bits == 32:
        return jast.KernelMethod(
            name="jdot32",
            params=[jast.Param("a", JFLOAT, True),
                    jast.Param("b", JFLOAT, True), jast.Param("n", JINT)],
            body=jast.Block([
                jast.Assign("acc", C(0.0, JFLOAT)),
                jast.For("i", C(0, JINT), L("n"), C(1, JINT), jast.Block([
                    jast.Assign("acc", B("+", L("acc"),
                                         B("*", A("a", L("i")),
                                           A("b", L("i"))))),
                ])),
                jast.Return(L("acc")),
            ]))

    if bits in (16, 8):
        elem = JSHORT if bits == 16 else JBYTE
        # The 16-bit products are up to 2^30; a 32-bit accumulator would
        # overflow on realistic sizes, so Java needs a long accumulator
        # (one more width-widening the LMS version avoids).
        acc_t = JLONG if bits == 16 else JINT
        return jast.KernelMethod(
            name=f"jdot{bits}",
            params=[jast.Param("a", elem, True),
                    jast.Param("b", elem, True),
                    jast.Param("inv_scale", JFLOAT), jast.Param("n", JINT)],
            body=jast.Block([
                jast.Assign("acc", C(0, acc_t)),
                jast.For("i", C(0, JINT), L("n"), C(1, JINT), jast.Block([
                    # byte/short operands are promoted to int here: the
                    # unavoidable JVM promotion tax.
                    jast.Assign("acc", B("+", L("acc"),
                                         B("*", A("a", L("i")),
                                           A("b", L("i"))))),
                ])),
                jast.Return(B("*", jast.Conv(L("acc"), JFLOAT),
                              L("inv_scale"))),
            ]))

    if bits == 4:
        def nibble_val(arr: str, which: str):
            # lo: v & 15; hi: (v >>> 4) & 15
            raw = A(arr, L("ib"))
            nib = B("&", raw, C(15, JINT)) if which == "lo" else \
                B("&", B(">>>", raw, C(4, JINT)), C(15, JINT))
            return nib

        def signed(name: str):
            # value = mag * (1 - ((nib & 8) >> 2))  -> mag or -mag
            mag = B("&", L(name), C(7, JINT))
            sgn = B("-", C(1, JINT),
                    B(">>", B("&", L(name), C(8, JINT)), C(2, JINT)))
            return B("*", mag, sgn)

        body = []
        for which in ("lo", "hi"):
            body.append(jast.Assign(f"na_{which}", nibble_val("a", which)))
            body.append(jast.Assign(f"nb_{which}", nibble_val("b", which)))
            body.append(jast.Assign(
                "acc", B("+", L("acc"), B("*", signed(f"na_{which}"),
                                          signed(f"nb_{which}")))))
        return jast.KernelMethod(
            name="jdot4",
            params=[jast.Param("a", JBYTE, True),
                    jast.Param("b", JBYTE, True),
                    jast.Param("inv_scale", JFLOAT), jast.Param("n", JINT)],
            body=jast.Block([
                jast.Assign("acc", C(0, JINT)),
                jast.Assign("nb2", B(">>", L("n"), C(1, JINT))),
                jast.For("ib", C(0, JINT), L("nb2"), C(1, JINT),
                         jast.Block(body)),
                jast.Return(B("*", jast.Conv(L("acc"), JFLOAT),
                              L("inv_scale"))),
            ]))

    raise ValueError(f"unsupported precision: {bits} bits")


def reference_dot(qa: QuantizedArray, qb: QuantizedArray) -> float:
    """Numpy reference over the quantized representations."""
    if qa.bits != qb.bits:
        raise ValueError("precision mismatch")
    if qa.bits == 32:
        return float(np.dot(qa.data.astype(np.float64),
                            qb.data.astype(np.float64)))
    if qa.bits == 16:
        return float(np.dot(qa.data.astype(np.float32),
                            qb.data.astype(np.float32)))
    if qa.bits == 8:
        acc = int(np.dot(qa.data.astype(np.int64), qb.data.astype(np.int64)))
        return acc / (qa.scale * qb.scale)
    va = unpack_nibbles(qa.data, qa.n).astype(np.int64)
    vb = unpack_nibbles(qb.data, qb.n).astype(np.int64)
    return float(np.dot(va, vb)) / (qa.scale * qb.scale)
