"""``python -m repro.serve`` — run or poke the compile daemon.

``run`` (the default) starts the daemon in the foreground and serves
until SIGTERM/SIGINT, removing the socket and pid file on the way out.
The other commands are thin client one-shots against a running daemon:
``ping``, ``status``, ``stats``, ``metrics`` (Prometheus text on
stdout) and ``shutdown``.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys

from repro.serve.client import ServiceError, request
from repro.serve.daemon import DaemonAlreadyRunningError, \
    KernelCompileDaemon

_CLIENT_COMMANDS = ("ping", "status", "stats", "metrics", "shutdown")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="kernel compilation service daemon and client")
    parser.add_argument(
        "command", nargs="?", default="run",
        choices=("run",) + _CLIENT_COMMANDS,
        help="run the daemon (default) or send one verb to it")
    parser.add_argument(
        "--socket", default=None, metavar="PATH",
        help="socket path (default: REPRO_SERVICE_SOCKET or the "
             "per-user runtime dir)")
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="compile worker threads (default: REPRO_COMPILE_WORKERS)")
    args = parser.parse_args(argv)

    if args.command in _CLIENT_COMMANDS:
        try:
            response = request({"verb": args.command},
                               socket_path=args.socket)
        except ServiceError as exc:
            print(str(exc), file=sys.stderr)
            return 1
        if args.command == "metrics" and "prometheus" in response:
            print(response["prometheus"], end="")
        else:
            print(json.dumps(response, indent=2, sort_keys=True))
        return 0 if response.get("ok") else 1

    daemon = KernelCompileDaemon(socket_path=args.socket,
                                 workers=args.workers)

    def _terminate(_signum, _frame):  # noqa: ANN001
        daemon.stop()

    signal.signal(signal.SIGTERM, _terminate)
    signal.signal(signal.SIGINT, _terminate)
    try:
        daemon.start()
    except DaemonAlreadyRunningError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(f"repro-serve listening on {daemon.socket_path} "
          f"({daemon.workers} workers)", flush=True)
    daemon.serve_forever()
    daemon.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
