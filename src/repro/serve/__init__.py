"""The kernel compilation service (DESIGN.md §12).

``python -m repro.serve`` runs the multi-tenant compile daemon;
``repro.serve.client.ServiceKernelManager`` is the drop-in client
selected by ``REPRO_SERVICE=auto|require``.  Nothing in ``repro.core``
imports this package eagerly — the service layer is opt-in.
"""

from repro.serve.client import (
    ServiceError,
    ServiceKernelManager,
    ServiceUnavailableError,
    daemon_available,
    get_service_manager,
    reset_service,
)
from repro.serve.daemon import (
    DaemonAlreadyRunningError,
    KernelCompileDaemon,
    shutdown_local_daemons,
)
from repro.serve.protocol import (
    FrameTooLargeError,
    ProtocolError,
    max_frame_bytes,
    pid_path,
    service_socket_path,
    service_timeout,
)

__all__ = [
    "DaemonAlreadyRunningError",
    "FrameTooLargeError",
    "KernelCompileDaemon",
    "ProtocolError",
    "ServiceError",
    "ServiceKernelManager",
    "ServiceUnavailableError",
    "daemon_available",
    "get_service_manager",
    "max_frame_bytes",
    "pid_path",
    "reset_service",
    "service_socket_path",
    "service_timeout",
    "shutdown_local_daemons",
]
