"""The client side of the kernel compilation service.

:class:`ServiceKernelManager` is a drop-in :class:`KernelManager`
whose compile backend delegates to the daemon: instead of walking the
compiler ladder in-process, ``_acquire`` ships the kernel's generated C
to ``python -m repro.serve`` over the Unix socket, waits for the daemon
to publish the artifact into the shared sharded
:class:`~repro.core.cache.DiskKernelCache`, then runs the ordinary
local :func:`~repro.core.resilience.acquire_native` — which now disk-
hits, smoke-tests and links without ever invoking a compiler.  The
``.so`` is always loaded by the process that will call it; the daemon
never links.

Selection is by ``REPRO_SERVICE`` (see
:func:`repro.core.tiered.service_mode`), consulted by
:func:`repro.core.tiered.get_manager`.  The failure contract is
*degraded, never broken*:

========================  ======================  =====================
daemon state              ``auto``                ``require``
========================  ======================  =====================
reachable, compile ok     native (local link)     native (local link)
unreachable / mid-crash   in-process compile      demote to simulator
sheds (breaker/bound)     in-process compile      demote to simulator
reports compile failure   demote to simulator     demote to simulator
========================  ======================  =====================

Every row ends with a working kernel — the simulator is the floor.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from pathlib import Path
from typing import Any

import repro.obs as obs
from repro.codegen.cgen import EXPORT_PREFIX, emit_c_source
from repro.codegen.compiler import (
    CompileDeadlineError,
    PermanentCompileError,
    TransientCompileError,
    compiler_chain,
    flag_ladder,
    inspect_system,
)
from repro.codegen.native import NativeLinkError, required_isas
from repro.core import resilience
from repro.core.cache import DiskKernelCache, default_cache, graph_hash
from repro.core.resilience import acquire_native
from repro.core.tiered import KernelManager, compile_deadline, service_mode
from repro.serve.protocol import (
    ProtocolError,
    read_frame,
    service_socket_path,
    service_timeout,
    write_frame,
)

__all__ = [
    "ServiceError",
    "ServiceKernelManager",
    "ServiceUnavailableError",
    "daemon_available",
    "get_service_manager",
    "request",
    "reset_service",
]


class ServiceError(RuntimeError):
    """The daemon answered, but not with a usable result."""


class ServiceUnavailableError(ServiceError):
    """No daemon on the socket (or it died mid-conversation)."""


def request(message: dict[str, Any], *,
            socket_path: str | Path | None = None,
            reply_timeout: float | None = None) -> dict[str, Any]:
    """One request/response round-trip on a fresh connection.

    Connect and handshake are bounded by ``REPRO_SERVICE_TIMEOUT``;
    ``reply_timeout`` (default: the same) bounds the wait for the
    response frame — compile requests pass their remaining deadline.
    Any connection-level failure raises
    :class:`ServiceUnavailableError`; a daemon that closes the stream
    without replying (killed mid-request) does too.
    """
    path = Path(socket_path) if socket_path is not None \
        else service_socket_path()
    connect_timeout = service_timeout()
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        sock.settimeout(connect_timeout)
        try:
            sock.connect(str(path))
        except (OSError, ValueError) as exc:
            raise ServiceUnavailableError(
                f"compile service unreachable on {path}: {exc}") from exc
        try:
            write_frame(sock, message)
            sock.settimeout(reply_timeout if reply_timeout is not None
                            else connect_timeout)
            response = read_frame(sock)
        except ProtocolError as exc:
            raise ServiceError(
                f"compile service protocol error: {exc}") from exc
        except OSError as exc:
            raise ServiceUnavailableError(
                f"compile service unreachable (connection lost): "
                f"{exc}") from exc
        if response is None:
            raise ServiceUnavailableError(
                "compile service unreachable: daemon closed the "
                "connection without replying")
        return response
    finally:
        try:
            sock.close()
        except OSError:
            pass


def daemon_available(socket_path: str | Path | None = None) -> bool:
    """Whether a live daemon answers ``ping`` on the socket."""
    try:
        return bool(request({"verb": "ping"},
                            socket_path=socket_path).get("ok"))
    except ServiceError:
        return False


class ServiceKernelManager(KernelManager):
    """A :class:`KernelManager` whose compiles go through the daemon.

    Everything above the compile backend — tier dispatch, hot-swap,
    single-flight, the client-side circuit breaker, queue bound — is
    inherited unchanged; only :meth:`_acquire` differs.  The client-
    side breaker still matters: when the daemon is unreachable in
    ``require`` mode every job fails with an environment-level reason,
    so the breaker opens and stops even *enqueuing* doomed jobs.
    """

    def __init__(self, socket_path: str | Path | None = None,
                 workers: int | None = None) -> None:
        super().__init__(workers=workers)
        self._socket_path = Path(socket_path) \
            if socket_path is not None else None

    @property
    def socket_path(self) -> Path:
        return self._socket_path if self._socket_path is not None \
            else service_socket_path()

    def _artifact_published(self, ghash: str,
                            isas: frozenset[str]) -> bool:
        """Cheap local probe: skip the daemon round-trip entirely when
        any ladder-producible artifact is already on disk.

        Uses :meth:`DiskKernelCache.contains` — a stat-only existence
        check — rather than ``get``: probing every ladder rung with
        ``get`` would read and checksum full artifact pairs and bump a
        manifest hit count per rung, inflating the (hits, recency)
        eviction ranking with probes that never serve anything.  The
        serving path (``acquire_native``) still goes through ``get``
        and records the one real hit."""
        disk = default_cache.disk
        for cc in compiler_chain(inspect_system()):
            for _rung, flags in flag_ladder(cc, isas, required=isas):
                key = DiskKernelCache.artifact_key(ghash, cc.version,
                                                   flags, isas)
                if disk.contains(key):
                    return True
        return False

    def _remote_compile(self, staged, ghash: str,
                        isas: frozenset[str],
                        deadline: float | None) -> dict[str, Any]:
        symbol = EXPORT_PREFIX + staged.name
        source = emit_c_source(staged, export_name=symbol)
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                # A lapsed budget must fail like the local ladder does,
                # not clamp up and dispatch a doomed remote compile.
                raise CompileDeadlineError(
                    f"compile deadline exhausted before dispatching "
                    f"{staged.name!r} to the compile service")
            remaining = max(0.5, remaining)
        else:
            remaining = compile_deadline() or 300.0
        message = {
            "verb": "compile",
            "ghash": ghash,
            "name": staged.name,
            "symbol": symbol,
            "c_source": source,
            "isas": sorted(isas),
            "client": f"pid-{os.getpid()}",
            "timeout_s": remaining,
        }
        start = time.perf_counter()
        response = request(message, socket_path=self.socket_path,
                           reply_timeout=remaining + 30.0)
        obs.observe("service.client.roundtrip.seconds",
                    time.perf_counter() - start)
        return response

    def _acquire(self, staged, deadline: float | None):
        mode = service_mode()
        if not resilience._disk_enabled():
            # without the shared disk tier the daemon cannot hand the
            # artifact back; the service adds nothing
            return acquire_native(staged, deadline=deadline)
        ghash = graph_hash(staged)
        isas = required_isas(staged)
        if self._artifact_published(ghash, isas):
            obs.counter("service.client.requests", outcome="local_hit")
            return acquire_native(staged, deadline=deadline)
        try:
            response = self._remote_compile(staged, ghash, isas,
                                            deadline)
        except ServiceError as exc:
            obs.counter("service.client.requests",
                        outcome="unreachable")
            if mode == "require":
                err = NativeLinkError(
                    f"compile service unreachable "
                    f"(REPRO_SERVICE=require): {exc}")
                raise err from exc
            obs.counter("service.client.fallback", reason="unreachable")
            return acquire_native(staged, deadline=deadline)
        if response.get("ok"):
            obs.counter("service.client.requests",
                        outcome=str(response.get("outcome", "ok")))
            if response.get("dedup"):
                obs.counter("service.client.dedup")
            # the artifact is on disk: this is a probe+smoke+link, no
            # compiler runs locally
            return acquire_native(staged, deadline=deadline)
        kind = str(response.get("kind", "error"))
        error = str(response.get("error") or "service compile failed")
        obs.counter("service.client.requests", outcome=kind)
        if kind in ("shed", "shutdown", "timeout"):
            if mode == "require":
                raise TransientCompileError(
                    f"compile service refused the request ({kind}): "
                    f"{error}")
            obs.counter("service.client.fallback", reason=kind)
            return acquire_native(staged, deadline=deadline)
        # a reported compile failure is deterministic: retrying locally
        # would walk the same ladder to the same diagnostics
        raise PermanentCompileError(
            f"service compile failed ({kind}): {error}")


_service_lock = threading.Lock()
_service_manager: ServiceKernelManager | None = None


def get_service_manager() -> ServiceKernelManager:
    """The process-wide service-backed manager (created on first use;
    :func:`repro.core.tiered.get_manager` routes here when
    ``REPRO_SERVICE`` is ``auto`` or ``require``)."""
    global _service_manager
    with _service_lock:
        if _service_manager is None:
            _service_manager = ServiceKernelManager()
        return _service_manager


def reset_service() -> None:
    """Drop the service-manager singleton (draining its pool) — part
    of :func:`repro.core.resilience.clear_session_state`, so suites
    that flip ``REPRO_SERVICE``/``REPRO_SERVICE_SOCKET`` never leak a
    manager bound to the old endpoint."""
    global _service_manager
    with _service_lock:
        manager, _service_manager = _service_manager, None
    if manager is not None:
        manager.reset()
