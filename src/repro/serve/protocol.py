"""The wire format of the kernel compilation service.

One frame per message, in both directions: a 4-byte big-endian
unsigned length followed by that many bytes of UTF-8 JSON encoding a
single object.  Length-prefixing keeps the parser trivial and makes
malformed input cheap to reject: a frame whose declared length is zero,
not JSON, not an object, or larger than ``REPRO_SERVICE_MAX_FRAME``
(default 8 MiB — generated C sources are the big payload) is a
:class:`ProtocolError` before any allocation proportional to the claim.

Verbs (requests carry ``{"verb": ...}``, responses ``{"ok": ...}``):

* ``compile`` — compile one kernel's generated C and publish the
  artifact to the shared disk cache; deduplicated by graph hash.
* ``status`` — daemon identity and queue snapshot.
* ``stats`` — request/dedup/shed/compile counters per client.
* ``metrics`` — the daemon's Prometheus text exposition.
* ``ping`` — liveness probe.
* ``shutdown`` — stop the daemon (it removes its socket and pid file).

The framing helpers work on connected sockets; they never log and never
raise anything but :class:`ProtocolError` / ``OSError`` family errors,
so both daemon and client can treat any failure as "this peer is gone".
"""

from __future__ import annotations

import json
import os
import socket
import struct
import tempfile
from pathlib import Path
from typing import Any

from repro.core.env import env_float, env_int

__all__ = [
    "FrameTooLargeError",
    "ProtocolError",
    "max_frame_bytes",
    "pid_path",
    "read_frame",
    "service_socket_path",
    "service_timeout",
    "write_frame",
]


def service_socket_path() -> Path:
    """Where the daemon listens (``REPRO_SERVICE_SOCKET``; default
    ``$XDG_RUNTIME_DIR/repro-serve-<uid>.sock``, falling back to the
    system temp dir).  AF_UNIX paths are length-bounded (~107 bytes on
    Linux), which is why the default avoids deep cache directories."""
    override = os.environ.get("REPRO_SERVICE_SOCKET")
    if override:
        return Path(override).expanduser()
    runtime = os.environ.get("XDG_RUNTIME_DIR")
    base = Path(runtime) if runtime else Path(tempfile.gettempdir())
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return base / f"repro-serve-{uid}.sock"


def pid_path(socket_path: Path | None = None) -> Path:
    """The pid file next to the socket: the stale-socket detector
    (``procutil.pid_alive``) probes the pid stamped here."""
    sock = socket_path if socket_path is not None \
        else service_socket_path()
    return sock.with_name(sock.name + ".pid")


def service_timeout() -> float:
    """Client-side connect/handshake timeout in seconds
    (``REPRO_SERVICE_TIMEOUT``, default 5).  Compile replies get a
    separate budget derived from the compile deadline."""
    return env_float("REPRO_SERVICE_TIMEOUT", 5.0, minimum=0.01)

_LEN = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """The peer sent bytes that are not a valid protocol frame."""


class FrameTooLargeError(ProtocolError):
    """A frame's declared (or encoded) length exceeds the bound."""


def max_frame_bytes() -> int:
    """Upper bound on one frame's payload
    (``REPRO_SERVICE_MAX_FRAME``, default 8 MiB)."""
    return env_int("REPRO_SERVICE_MAX_FRAME", 8 << 20, minimum=1024)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise :class:`ProtocolError` on a
    mid-frame EOF.  A clean EOF before any byte returns ``b""``."""
    chunks: list[bytes] = []
    got = 0
    while got < n:
        chunk = sock.recv(min(n - got, 1 << 16))
        if not chunk:
            if got == 0:
                return b""
            raise ProtocolError(
                f"connection closed mid-frame ({got}/{n} bytes)")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> dict[str, Any] | None:
    """Read one frame; ``None`` on clean EOF (peer closed between
    frames).  Raises :class:`ProtocolError` for malformed input and
    lets socket timeouts/``OSError`` propagate."""
    header = _recv_exact(sock, _LEN.size)
    if not header:
        return None
    if len(header) < _LEN.size:  # pragma: no cover - _recv_exact raises
        raise ProtocolError("truncated frame header")
    (length,) = _LEN.unpack(header)
    bound = max_frame_bytes()
    if length == 0:
        raise ProtocolError("zero-length frame")
    if length > bound:
        raise FrameTooLargeError(
            f"frame of {length} bytes exceeds the "
            f"{bound}-byte bound (REPRO_SERVICE_MAX_FRAME)")
    body = _recv_exact(sock, length)
    if len(body) < length:
        raise ProtocolError("connection closed mid-frame")
    try:
        obj = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"frame body is not JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"frame body must be a JSON object, got {type(obj).__name__}")
    return obj


def write_frame(sock: socket.socket, obj: dict[str, Any]) -> None:
    """Serialize and send one frame.  Raises
    :class:`FrameTooLargeError` before sending anything when the
    encoded object exceeds the bound."""
    body = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(body) > max_frame_bytes():
        raise FrameTooLargeError(
            f"encoded frame of {len(body)} bytes exceeds the "
            f"{max_frame_bytes()}-byte bound")
    sock.sendall(_LEN.pack(len(body)) + body)
