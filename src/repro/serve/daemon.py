"""The kernel compilation daemon: one compile pool, many client
processes.

``python -m repro.serve`` turns the library-shaped pipeline into a
serving system: a long-lived process listens on a Unix domain socket
(:func:`repro.serve.protocol.service_socket_path`) and compiles staged
kernels' generated C on behalf of every client process on the host,
publishing artifacts through the crash-consistent sharded
:class:`repro.core.cache.DiskKernelCache` so clients link the ``.so``
locally after a cheap cache probe (DESIGN.md §12).

Three properties make it multi-tenant rather than just remote:

* **Cluster-wide single-flight.**  Compile requests are deduplicated by
  structural graph hash across *processes*: while a compile is in
  flight, identical requests from any client attach to it and all
  receive the one result — the cross-the-wire extension of
  :class:`repro.core.cache.InflightCompiles`.  A thundering herd of N
  clients staging the same kernel costs one ladder walk.
* **Per-client fair queueing.**  Each client gets its own FIFO queue
  and the worker pool drains queues round-robin, so one client batch-
  warming 500 kernels cannot starve another client's single compile.
  Admission control reuses the PR 6 machinery: a
  :class:`repro.core.tiered.CircuitBreaker` sheds work while the
  toolchain is broken, and ``REPRO_QUEUE_BOUND`` bounds distinct
  in-flight jobs.
* **Crash-safe lifecycle.**  The socket and pid file are removed on
  every exit path (``stop``, atexit, the ``__main__`` SIGTERM handler);
  on startup a leftover socket whose pid-file owner is dead
  (``procutil.pid_alive``) is swept and the address reclaimed, so a
  crashed daemon never wedges ``REPRO_SERVICE=auto`` clients.

The daemon exposes its own observability: ``stats`` returns the
request/dedup/shed counters, ``metrics`` returns the process's
Prometheus text exposition over the socket (the service dashboard).
"""

from __future__ import annotations

import atexit
import itertools
import os
import shutil
import socket
import tempfile
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any

import repro.obs as obs
from repro.codegen.compiler import (
    CompileError,
    PermanentCompileError,
    compile_with_fallback,
    compiler_chain,
    flag_ladder,
    inspect_system,
)
from repro.core.cache import DiskKernelCache, default_cache
from repro.core.procutil import pid_alive
from repro.core.tiered import (
    CircuitBreaker,
    compile_deadline,
    compile_workers,
    environment_failure,
    queue_bound,
)
from repro.serve.protocol import (
    FrameTooLargeError,
    ProtocolError,
    pid_path,
    read_frame,
    service_socket_path,
    write_frame,
)

__all__ = [
    "DaemonAlreadyRunningError",
    "KernelCompileDaemon",
    "shutdown_local_daemons",
]


class DaemonAlreadyRunningError(RuntimeError):
    """The service socket is owned by a live daemon process."""


class _ServiceJob:
    """One deduplicated compile: the queue entry every identical
    request attaches to."""

    __slots__ = ("ghash", "name", "symbol", "c_source", "isas", "client",
                 "is_probe", "waiters", "result", "event", "enqueued_at")

    def __init__(self, ghash: str, name: str, symbol: str,
                 c_source: str, isas: frozenset[str], client: str) -> None:
        self.ghash = ghash
        self.name = name
        self.symbol = symbol
        self.c_source = c_source
        self.isas = isas
        self.client = client
        self.is_probe = False
        self.waiters = 1
        self.result: dict[str, Any] | None = None
        self.event = threading.Event()
        self.enqueued_at = time.monotonic()


# Daemons started inside this process (embedded in tests, or the
# __main__ entry point).  clear_session_state() shuts these down so a
# suite can never leak a listener — and with it the socket/pid files.
_local_daemons: list["KernelCompileDaemon"] = []
_local_lock = threading.Lock()


def shutdown_local_daemons() -> None:
    """Stop every daemon started by this process (removing their
    socket and pid files).  Invoked by
    :func:`repro.core.resilience.clear_session_state`."""
    with _local_lock:
        daemons = list(_local_daemons)
    for daemon in daemons:
        daemon.stop()


class KernelCompileDaemon:
    """The multi-tenant compile service (see the module docstring).

    ``start`` binds and spawns the accept loop plus ``workers`` compile
    threads; ``stop`` is idempotent and always removes the socket and
    pid file.  ``serve_forever`` is the ``__main__`` entry: start, then
    block until something calls ``stop`` (a signal handler, the
    ``shutdown`` verb, or another thread).
    """

    def __init__(self, socket_path: str | Path | None = None,
                 workers: int | None = None) -> None:
        self.socket_path = Path(socket_path).expanduser() \
            if socket_path is not None else service_socket_path()
        self.pid_file = pid_path(self.socket_path)
        self.workers = workers if workers is not None else compile_workers()
        self.breaker = CircuitBreaker()
        self.started_at = 0.0
        self._listener: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._conns: set[socket.socket] = set()
        self._cond = threading.Condition()
        self._queues: dict[str, deque[_ServiceJob]] = {}
        self._rr: deque[str] = deque()
        self._inflight: dict[str, _ServiceJob] = {}
        self._stopping = False
        self._started = False
        self._workroot: Path | None = None
        self._build_seq = itertools.count()
        self._counts = {key: 0 for key in (
            "requests", "compiled", "cached", "dedup", "shed", "errors",
            "timeouts", "protocol_errors")}
        self._per_client: dict[str, int] = {}

    # -- lifecycle -----------------------------------------------------

    def _read_stamped_pid(self) -> int | None:
        try:
            return int(self.pid_file.read_text().strip())
        except (OSError, ValueError):
            return None

    def _reclaim_stale_socket(self) -> None:
        """Sweep a dead daemon's leftovers so this one can bind.

        A socket file whose stamped owner is alive is a real daemon —
        refuse to start.  A dead (or unreadable) stamp means the
        previous daemon crashed before cleanup: remove both files and
        count the reclaim.
        """
        if not self.socket_path.exists():
            return
        pid = self._read_stamped_pid()
        if pid is not None and pid_alive(pid):
            raise DaemonAlreadyRunningError(
                f"kernel service already running (pid {pid}) on "
                f"{self.socket_path}")
        for leftover in (self.socket_path, self.pid_file):
            try:
                leftover.unlink()
            except OSError:
                pass
        obs.counter("service.stale_socket_reclaimed")
        obs.event("service.stale_socket", path=str(self.socket_path))

    def start(self) -> None:
        if self._started:
            return
        self._reclaim_stale_socket()
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            listener.bind(str(self.socket_path))
        except OSError:
            listener.close()
            raise
        listener.listen(64)
        self._listener = listener
        try:
            self.pid_file.write_text(str(os.getpid()))
        except OSError:
            pass
        self._workroot = Path(tempfile.mkdtemp(prefix="repro-serve-"))
        self._stopping = False
        self._started = True
        self.started_at = time.monotonic()
        accept = threading.Thread(target=self._accept_loop,
                                  name="repro-serve-accept", daemon=True)
        accept.start()
        self._threads.append(accept)
        for i in range(self.workers):
            worker = threading.Thread(target=self._worker_loop,
                                      name=f"repro-serve-worker-{i}",
                                      daemon=True)
            worker.start()
            self._threads.append(worker)
        with _local_lock:
            _local_daemons.append(self)
        atexit.register(self.stop)
        obs.event("service.start", socket=str(self.socket_path),
                  workers=self.workers)

    def stop(self) -> None:
        """Stop serving and remove the socket and pid file.  Safe to
        call from any thread, any number of times, including from a
        SIGTERM handler and atexit."""
        with self._cond:
            if not self._started:
                return
            self._started = False
            self._stopping = True
            self._cond.notify_all()
        listener, self._listener = self._listener, None
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass
        # unlink the address first: from here on no client can reach a
        # dying daemon, and a crash later in teardown leaves no stale
        # socket behind
        for leftover in (self.socket_path, self.pid_file):
            try:
                leftover.unlink()
            except OSError:
                pass
        with self._cond:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        # settle queued jobs so no client waits out its full timeout
        with self._cond:
            pending = [job for q in self._queues.values() for job in q]
            self._queues.clear()
            self._rr.clear()
            for job in pending:
                self._inflight.pop(job.ghash, None)
        for job in pending:
            job.result = {"ok": False, "kind": "shutdown",
                          "error": "daemon is shutting down"}
            job.event.set()
        current = threading.current_thread()
        for thread in self._threads:
            if thread is not current:
                thread.join(timeout=5.0)
        self._threads.clear()
        if self._workroot is not None:
            shutil.rmtree(self._workroot, ignore_errors=True)
            self._workroot = None
        with _local_lock:
            if self in _local_daemons:
                _local_daemons.remove(self)
        obs.event("service.stop", socket=str(self.socket_path))

    def serve_forever(self) -> None:
        """Start (if needed) and block until :meth:`stop` runs."""
        self.start()
        try:
            while True:
                with self._cond:
                    if self._stopping:
                        return
                    self._cond.wait(timeout=1.0)
        except KeyboardInterrupt:
            self.stop()

    @property
    def running(self) -> bool:
        return self._started

    # -- accept/connection side ----------------------------------------

    def _accept_loop(self) -> None:
        listener = self._listener
        while listener is not None:
            try:
                conn, _addr = listener.accept()
            except OSError:
                return      # listener closed: shutting down
            with self._cond:
                if self._stopping:
                    conn.close()
                    return
                self._conns.add(conn)
            handler = threading.Thread(
                target=self._serve_connection, args=(conn,),
                name="repro-serve-conn", daemon=True)
            handler.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            while True:
                try:
                    request = read_frame(conn)
                except FrameTooLargeError as exc:
                    self._bump("protocol_errors")
                    obs.counter("service.errors", kind="oversized")
                    self._try_respond(conn, {
                        "ok": False, "kind": "protocol",
                        "error": str(exc)})
                    return   # cannot resync after refusing a frame
                except ProtocolError as exc:
                    self._bump("protocol_errors")
                    obs.counter("service.errors", kind="protocol")
                    self._try_respond(conn, {
                        "ok": False, "kind": "protocol",
                        "error": str(exc)})
                    return
                except OSError:
                    return
                if request is None:
                    return   # clean EOF
                response = self._dispatch(request)
                control = {key: response.pop(key)
                           for key in ("_close", "_stop")
                           if key in response}
                try:
                    write_frame(conn, response)
                except (OSError, ProtocolError):
                    return
                if control.get("_stop"):
                    threading.Thread(target=self.stop,
                                     daemon=True).start()
                if control:
                    return
        finally:
            with self._cond:
                self._conns.discard(conn)
            try:
                conn.close()
            except OSError:
                pass

    @staticmethod
    def _try_respond(conn: socket.socket, obj: dict) -> None:
        try:
            write_frame(conn, obj)
        except (OSError, ProtocolError):
            pass

    def _bump(self, key: str, n: int = 1) -> None:
        with self._cond:
            self._counts[key] = self._counts.get(key, 0) + n

    def _dispatch(self, request: dict) -> dict:
        verb = request.get("verb")
        self._bump("requests")
        obs.counter("service.requests", verb=str(verb))
        start = time.perf_counter()
        try:
            if verb == "ping":
                return {"ok": True, "pid": os.getpid()}
            if verb == "status":
                return self._status()
            if verb == "stats":
                return self._stats()
            if verb == "metrics":
                return {"ok": True,
                        "prometheus": obs.prometheus_text()}
            if verb == "shutdown":
                # the handler flushes the reply *before* acting on
                # ``_stop`` (and cannot join itself, hence the thread)
                return {"ok": True, "stopping": True,
                        "_close": True, "_stop": True}
            if verb == "compile":
                return self._handle_compile(request)
            self._bump("errors")
            obs.counter("service.errors", kind="bad_verb")
            return {"ok": False, "kind": "protocol",
                    "error": f"unknown verb {verb!r}"}
        finally:
            obs.observe("service.request.seconds",
                        time.perf_counter() - start, verb=str(verb))

    # -- the compile verb: dedup + fair queueing -----------------------

    def _handle_compile(self, request: dict) -> dict:
        missing = [field for field in
                   ("ghash", "name", "symbol", "c_source")
                   if not isinstance(request.get(field), str)
                   or not request.get(field)]
        if missing:
            self._bump("errors")
            obs.counter("service.errors", kind="bad_request")
            return {"ok": False, "kind": "protocol",
                    "error": f"compile request missing {missing}"}
        client = str(request.get("client") or "anonymous")
        ghash = request["ghash"]
        dedup = False
        with self._cond:
            job = self._inflight.get(ghash)
            if job is not None:
                job.waiters += 1
                dedup = True
                self._counts["dedup"] += 1
            else:
                admit, is_probe = self.breaker.allow()
                if not admit:
                    self._counts["shed"] += 1
                    obs.counter("service.shed", reason="breaker")
                    return {"ok": False, "kind": "shed",
                            "error": "circuit breaker open: the "
                                     "compile environment is failing"}
                if not is_probe and len(self._inflight) >= queue_bound():
                    self._counts["shed"] += 1
                    obs.counter("service.shed", reason="queue_bound")
                    return {"ok": False, "kind": "shed",
                            "error": f"compile queue at bound "
                                     f"({queue_bound()})"}
                job = _ServiceJob(
                    ghash=ghash, name=request["name"],
                    symbol=request["symbol"],
                    c_source=request["c_source"],
                    isas=frozenset(request.get("isas") or ()),
                    client=client)
                job.is_probe = is_probe
                self._inflight[ghash] = job
                queue = self._queues.setdefault(client, deque())
                if not queue and client not in self._rr:
                    self._rr.append(client)
                queue.append(job)
                self._per_client[client] = \
                    self._per_client.get(client, 0) + 1
                self._cond.notify()
            depth = len(self._inflight)
        obs.gauge("service.queue_depth", depth)
        if dedup:
            obs.counter("service.dedup")
        timeout = request.get("timeout_s")
        if not isinstance(timeout, (int, float)) or timeout <= 0:
            budget = compile_deadline()
            timeout = (budget or 300.0) + 30.0
        if not job.event.wait(float(timeout)):
            self._bump("timeouts")
            obs.counter("service.errors", kind="timeout")
            return {"ok": False, "kind": "timeout",
                    "error": f"compile of {ghash} still in flight "
                             f"after {timeout}s"}
        response = dict(job.result or {
            "ok": False, "kind": "internal", "error": "job lost"})
        response["dedup"] = dedup
        return response

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                while not self._stopping and not self._rr:
                    self._cond.wait()
                if self._stopping:
                    return
                client = self._rr.popleft()
                queue = self._queues.get(client)
                if not queue:
                    self._queues.pop(client, None)
                    continue
                job = queue.popleft()
                if queue:
                    self._rr.append(client)   # back of the line: fair
                else:
                    self._queues.pop(client, None)
            self._execute(job)

    def _execute(self, job: _ServiceJob) -> None:
        start = time.perf_counter()
        result: dict[str, Any]
        report_attempts: list = []
        try:
            with obs.span("service.compile", kernel=job.name,
                          graph_hash=job.ghash, client=job.client
                          ) as span:
                result = self._compile_job(job, report_attempts)
                span.set("outcome", result.get("outcome", "error"))
        except CompileError as exc:
            result = {"ok": False, "kind": "compile", "error": str(exc)}
        except Exception as exc:  # noqa: BLE001 - workers never unwind
            result = {"ok": False, "kind": "internal",
                      "error": f"{type(exc).__name__}: {exc}"}
        result["duration_s"] = time.perf_counter() - start
        if result.get("ok"):
            self.breaker.record_success(probe=job.is_probe)
            self._bump(str(result.get("outcome", "compiled")))
        else:
            self._bump("errors")
            obs.counter("service.errors", kind=result.get("kind", "?"))
            class _R:     # minimal report shim for the taxonomy check
                attempts = report_attempts
            if environment_failure(result.get("error"), _R()):
                self.breaker.record_env_failure(probe=job.is_probe)
            else:
                self.breaker.record_other(probe=job.is_probe)
        obs.observe("service.compile.seconds",
                    time.perf_counter() - start)
        job.result = result
        with self._cond:
            self._inflight.pop(job.ghash, None)
            depth = len(self._inflight)
        obs.gauge("service.queue_depth", depth)
        job.event.set()

    def _compile_job(self, job: _ServiceJob,
                     attempts: list) -> dict[str, Any]:
        """Probe the shared artifact store, else compile the generated
        C down the ladder and publish the result."""
        system = inspect_system()
        ccs = list(compiler_chain(system))
        if not ccs:
            raise PermanentCompileError("no C compiler available")
        disk = default_cache.disk
        for cc in ccs:
            for _rung, flags in flag_ladder(cc, job.isas,
                                            required=job.isas):
                key = DiskKernelCache.artifact_key(
                    job.ghash, cc.version, flags, job.isas)
                if disk.get(key) is not None:
                    obs.counter("service.compiles", outcome="cached")
                    return {"ok": True, "outcome": "cached", "key": key,
                            "compiler": cc.name, "flags": list(flags),
                            "attempts": 0}
        budget = compile_deadline()
        deadline = None if budget is None \
            else time.monotonic() + budget
        workroot = self._workroot or Path(tempfile.gettempdir())
        workdir = workroot / f"{next(self._build_seq):04d}-{job.name}"
        so_path, cc, flags = compile_with_fallback(
            job.c_source, workdir, job.isas, required=job.isas,
            compilers=ccs, name=job.name, attempts=attempts,
            deadline=deadline)
        blob = so_path.read_bytes()
        key = DiskKernelCache.artifact_key(job.ghash, cc.version, flags,
                                           job.isas)
        meta = {
            "graph_hash": job.ghash,
            "symbol": job.symbol,
            "c_source": job.c_source,
            "isas": sorted(job.isas),
            "compiler": cc.name,
            "compiler_version": cc.version,
            "flags": list(flags),
            "created": time.time(),
            "published_by": f"repro-serve:{os.getpid()}",
        }
        disk.put(key, blob, meta)
        shutil.rmtree(workdir, ignore_errors=True)
        obs.counter("service.compiles", outcome="compiled")
        return {"ok": True, "outcome": "compiled", "key": key,
                "compiler": cc.name, "flags": list(flags),
                "attempts": len(attempts)}

    # -- introspection verbs -------------------------------------------

    def _status(self) -> dict:
        with self._cond:
            queued = sum(len(q) for q in self._queues.values())
            inflight = len(self._inflight)
            clients = sorted(self._queues)
        return {
            "ok": True,
            "pid": os.getpid(),
            "socket": str(self.socket_path),
            "workers": self.workers,
            "uptime_s": time.monotonic() - self.started_at,
            "queued": queued,
            "inflight": inflight,
            "queued_clients": clients,
        }

    def _stats(self) -> dict:
        with self._cond:
            counts = dict(self._counts)
            per_client = dict(self._per_client)
            inflight = len(self._inflight)
        return {
            "ok": True,
            "counts": counts,
            "per_client": per_client,
            "inflight": inflight,
            "breaker": self.breaker.state,
        }
