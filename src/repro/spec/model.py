"""Schema model for the Intel intrinsics XML specification.

Mirrors the structure of the vendor's ``data-*.xml`` (Figure 2 of the
paper): each ``<intrinsic>`` carries a return type, a name, one or more
``<CPUID>`` tags, a ``<category>``, ordered ``<parameter>`` tags, a
``<description>``, a pseudocode ``<operation>``, ``<instruction>`` forms
and a ``<header>``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# The 13 ISAs of Table 1b, in the paper's order.
ISA_ORDER: tuple[str, ...] = (
    "MMX",
    "SSE",
    "SSE2",
    "SSE3",
    "SSSE3",
    "SSE4.1",
    "SSE4.2",
    "AVX",
    "AVX2",
    "AVX-512",
    "FMA",
    "KNC",
    "SVML",
)

# AVX-512 sub-ISAs (the paper: F / BW / CD / DQ / ER / IFMA52 / PF / VBMI / VL).
AVX512_PARTS: tuple[str, ...] = (
    "AVX512F", "AVX512BW", "AVX512CD", "AVX512DQ", "AVX512ER",
    "AVX512IFMA52", "AVX512PF", "AVX512VBMI", "AVX512VL",
)

# Smaller ISA extensions the paper also includes.
SMALL_EXTENSIONS: tuple[str, ...] = (
    "ADX", "AES", "BMI1", "BMI2", "CLFLUSHOPT", "CLWB", "FP16C",
    "FSGSBASE", "FXSR", "INVPCID", "LZCNT", "MONITOR", "MPX",
    "PCLMULQDQ", "POPCNT", "PREFETCHWT1", "RDPID", "RDRAND", "RDSEED",
    "RDTSCP", "RTM", "SHA", "TSC", "XSAVE", "XSAVEC", "XSAVEOPT", "XSS",
)

# Categories (Table 1a plus the remaining vendor categories).
CATEGORIES: tuple[str, ...] = (
    "Arithmetic",
    "Bit Manipulation",
    "Cast",
    "Compare",
    "Convert",
    "Cryptography",
    "Elementary Math Functions",
    "General Support",
    "Load",
    "Logical",
    "Mask",
    "Miscellaneous",
    "Move",
    "OS-Targeted",
    "Probability/Statistics",
    "Random",
    "Set",
    "Shift",
    "Special Math Functions",
    "Store",
    "String Compare",
    "Swizzle",
    "Trigonometry",
)

INTRINSIC_TYPES: tuple[str, ...] = ("Floating Point", "Integer", "Mask", "Flag")


@dataclass(frozen=True)
class Parameter:
    """One ordered ``<parameter varname=... type=.../>`` entry."""

    varname: str
    type: str

    @property
    def is_pointer(self) -> bool:
        return "*" in self.type

    @property
    def is_void_pointer(self) -> bool:
        return self.type.replace("const ", "").strip() in ("void*", "void const*")


@dataclass(frozen=True)
class Instruction:
    """One ``<instruction name=... form=.../>`` entry."""

    name: str
    form: str = ""


@dataclass(frozen=True)
class IntrinsicSpec:
    """One fully parsed ``<intrinsic>`` element."""

    name: str
    rettype: str
    params: tuple[Parameter, ...]
    cpuids: tuple[str, ...]
    category: str
    types: tuple[str, ...] = ()
    description: str = ""
    operation: str = ""
    instructions: tuple[Instruction, ...] = ()
    header: str = "immintrin.h"

    @property
    def primary_isa(self) -> str:
        """The Table 1b bucket this intrinsic is counted under."""
        return isa_bucket(self.cpuids)

    @property
    def has_memory_params(self) -> bool:
        return any(p.is_pointer for p in self.params)

    @property
    def is_load_like(self) -> bool:
        return self.category == "Load" or (
            self.category == "Miscellaneous" and self.name.endswith("gather")
        )

    @property
    def is_store_like(self) -> bool:
        return self.category == "Store"

    @property
    def is_sequence(self) -> bool:
        """True when the intrinsic maps to an instruction *sequence*."""
        return len(self.instructions) > 1


def isa_bucket(cpuids: tuple[str, ...]) -> str:
    """Fold a CPUID list into one of the paper's 13 Table 1b buckets.

    AVX-512 sub-ISAs all fold into "AVX-512"; intrinsics shared between
    AVX-512 and KNC are bucketed as AVX-512 (the paper counts them once
    and notes 338 shared).  Small extensions fold into the ISA they ship
    with when listed alongside one, else keep their own name.
    """
    if not cpuids:
        return "SSE"
    names = tuple(cpuids)
    if any(c.startswith("AVX512") or c == "AVX-512" for c in names):
        return "AVX-512"
    if "KNCNI" in names or "KNC" in names:
        return "KNC"
    if "SVML" in names:
        return "SVML"
    if "FMA" in names:
        return "FMA"
    for isa in ("AVX2", "AVX", "SSE4.2", "SSE4.1", "SSSE3", "SSE3",
                "SSE2", "SSE", "MMX"):
        if isa in names:
            return isa
    return names[0]


def validate_spec(spec: IntrinsicSpec) -> list[str]:
    """Return a list of schema problems (empty when valid)."""
    problems: list[str] = []
    if not spec.name.startswith("_"):
        problems.append(f"{spec.name}: intrinsic names start with '_'")
    if spec.category not in CATEGORIES:
        problems.append(f"{spec.name}: unknown category {spec.category!r}")
    if not spec.cpuids:
        problems.append(f"{spec.name}: missing CPUID")
    seen: set[str] = set()
    for p in spec.params:
        if p.varname in seen:
            problems.append(f"{spec.name}: duplicate parameter {p.varname!r}")
        seen.add(p.varname)
    return problems
