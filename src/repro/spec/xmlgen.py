"""Emit vendor-schema XML specification files.

Serializes the catalog into the structure of Intel's ``data-*.xml``
(Figure 2 of the paper), including the schema drift across historical
versions described in :mod:`repro.spec.versions`.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path

from repro.spec.model import IntrinsicSpec
from repro.spec.versions import SPEC_VERSIONS, SpecVersion


def _intrinsic_element(spec: IntrinsicSpec, sv: SpecVersion) -> ET.Element:
    attrs = {"name": spec.name}
    if sv.rettype_style == "attr":
        attrs["rettype"] = spec.rettype
    el = ET.Element("intrinsic", attrs)
    if sv.rettype_style == "elem":
        ET.SubElement(el, "return", {"type": spec.rettype, "varname": "dst"})
    if sv.has_type_tags:
        for t in spec.types:
            ET.SubElement(el, "type").text = t
    for cpuid in spec.cpuids:
        ET.SubElement(el, "CPUID").text = cpuid
    ET.SubElement(el, "category").text = spec.category
    for p in spec.params:
        ET.SubElement(el, "parameter", {"varname": p.varname, "type": p.type})
    ET.SubElement(el, "description").text = spec.description
    if spec.operation:
        ET.SubElement(el, "operation").text = "\n" + spec.operation + "\n"
    for instr in spec.instructions:
        attrs = {"name": instr.name}
        if instr.form and sv.has_instruction_forms:
            attrs["form"] = instr.form
        if instr.name == "sequence" and sv.rettype_style == "elem":
            # data-3.4 expresses instruction sequences as a flag.
            el.set("sequence", "TRUE")
            continue
        ET.SubElement(el, "instruction", attrs)
    ET.SubElement(el, "header").text = spec.header
    return el


def emit_spec_xml(entries: list[IntrinsicSpec], version: str = "3.3.16") -> str:
    """Serialize catalog entries into one XML document string."""
    sv = SPEC_VERSIONS[version]
    root = ET.Element("intrinsics_list", {
        "version": sv.version,
        "date": sv.date,
    })
    for spec in entries:
        root.append(_intrinsic_element(spec, sv))
    ET.indent(root, space="    ")
    return ET.tostring(root, encoding="unicode", xml_declaration=True)


def write_spec_version(out_dir: str | Path, version: str = "3.3.16") -> Path:
    """Write ``data-<version>.xml`` for the entries visible in ``version``."""
    from repro.spec.catalog import all_entries

    sv = SPEC_VERSIONS[version]
    out_path = Path(out_dir) / sv.filename
    out_path.parent.mkdir(parents=True, exist_ok=True)
    text = emit_spec_xml(all_entries(version), version)
    out_path.write_text(text)
    return out_path


def write_all_versions(out_dir: str | Path) -> list[Path]:
    """Write every historical spec version (the Table 3 set)."""
    return [write_spec_version(out_dir, v) for v in SPEC_VERSIONS]
