"""Diffing two specification versions.

The paper's generator had to survive Intel "continuously updating the
XML specifications, improving the description / performance of each
intrinsic function" (Section 3.4).  This module computes what actually
changed between two parsed specs — added/removed intrinsics and
per-field modifications — which is both a maintenance tool and the
regression oracle for the version-robustness benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.spec.model import IntrinsicSpec

_COMPARED_FIELDS = ("rettype", "params", "cpuids", "category", "types",
                    "description", "operation", "header")


@dataclass(frozen=True)
class FieldChange:
    name: str
    fields: tuple[str, ...]


@dataclass
class SpecDiff:
    """The delta between an old and a new specification."""

    added: list[str] = field(default_factory=list)
    removed: list[str] = field(default_factory=list)
    changed: list[FieldChange] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return not (self.added or self.removed or self.changed)

    def summary(self) -> str:
        parts = [f"+{len(self.added)} intrinsics",
                 f"-{len(self.removed)} intrinsics",
                 f"~{len(self.changed)} modified"]
        return ", ".join(parts)


def diff_specs(old: list[IntrinsicSpec],
               new: list[IntrinsicSpec]) -> SpecDiff:
    """Structural diff of two spec snapshots, keyed by intrinsic name."""
    old_by_name = {e.name: e for e in old}
    new_by_name = {e.name: e for e in new}
    out = SpecDiff()
    out.added = sorted(set(new_by_name) - set(old_by_name))
    out.removed = sorted(set(old_by_name) - set(new_by_name))
    for name in sorted(set(old_by_name) & set(new_by_name)):
        a, b = old_by_name[name], new_by_name[name]
        fields = tuple(f for f in _COMPARED_FIELDS
                       if getattr(a, f) != getattr(b, f))
        if fields:
            out.changed.append(FieldChange(name=name, fields=fields))
    return out


def diff_versions(old_version: str, new_version: str) -> SpecDiff:
    """Diff two historical catalog versions (Table 3 entries)."""
    from repro.spec.catalog import all_entries

    return diff_specs(all_entries(old_version), all_entries(new_version))


def isa_growth(old_version: str, new_version: str) -> dict[str, int]:
    """Per-ISA intrinsic-count delta between two versions."""
    from repro.spec.catalog import all_entries
    from repro.spec.census import take_census

    old_census = take_census(all_entries(old_version))
    new_census = take_census(all_entries(new_version))
    isas = set(old_census.per_isa) | set(new_census.per_isa)
    return {isa: new_census.per_isa.get(isa, 0)
            - old_census.per_isa.get(isa, 0)
            for isa in sorted(isas)
            if new_census.per_isa.get(isa, 0)
            != old_census.per_isa.get(isa, 0)}
