"""Census over a parsed specification: Tables 1a and 1b.

Counts intrinsics per Table 1b ISA bucket (membership counting, so an
intrinsic shared between AVX-512 and KNC contributes to both buckets and
once to the deduplicated total, exactly as the paper counts "5912 in
total, of which 338 are shared between AVX-512 and KNC").
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.spec.model import ISA_ORDER, IntrinsicSpec

# Paper Table 1b, for side-by-side reporting.
PAPER_TABLE_1B: dict[str, int] = {
    "MMX": 124, "SSE": 154, "SSE2": 236, "SSE3": 11, "SSSE3": 32,
    "SSE4.1": 61, "SSE4.2": 19, "AVX": 188, "AVX2": 191, "AVX-512": 3857,
    "FMA": 32, "KNC": 601, "SVML": 406,
}
PAPER_TOTAL = 5912
PAPER_SHARED_AVX512_KNC = 338

# Table 1a: the paper's 12 classification groups with its examples.
PAPER_TABLE_1A: dict[str, tuple[str, ...]] = {
    "Arithmetics": ("_mm256_add_pd", "_mm256_hadd_ps"),
    "Shuffles": ("_mm256_permutevar_pd", "_mm256_shufflehi_epi16"),
    "Statistics": ("_mm_avg_epu8", "_mm256_cdfnorm_pd"),
    "Loads": ("_mm_i32gather_epi32", "_mm256_broadcast_ps"),
    "Compare": ("_mm_cmp_epi16_mask", "_mm_cmpeq_epi8"),
    "String": ("_mm_cmpestrm", "_mm_cmpistrz"),
    "Logical": ("_mm256_or_pd", "_mm256_andnot_pd"),
    "Stores": ("_mm512_storenrngo_pd", "_mm_store_pd1"),
    "Random": ("_rdrand16_step", "_rdseed64_step"),
    "Bitwise": ("_mm256_bslli_epi128", "_mm512_rol_epi32"),
    "Crypto": ("_mm_aesdec_si128", "_mm_sha1msg1_epu32"),
    "Conversion": ("_mm256_castps_pd", "_mm256_cvtps_epi32"),
}

# Map Table 1a group labels onto the spec categories they aggregate.
GROUP_CATEGORIES: dict[str, tuple[str, ...]] = {
    "Arithmetics": ("Arithmetic",),
    "Shuffles": ("Swizzle", "Move"),
    "Statistics": ("Probability/Statistics",),
    "Loads": ("Load",),
    "Compare": ("Compare",),
    "String": ("String Compare",),
    "Logical": ("Logical", "Mask"),
    "Stores": ("Store",),
    "Random": ("Random",),
    "Bitwise": ("Bit Manipulation", "Shift"),
    "Crypto": ("Cryptography",),
    "Conversion": ("Convert", "Cast"),
}


def isa_memberships(spec: IntrinsicSpec) -> set[str]:
    """The Table 1b buckets an intrinsic belongs to (possibly several)."""
    buckets: set[str] = set()
    for cpuid in spec.cpuids:
        if cpuid.startswith("AVX512"):
            buckets.add("AVX-512")
        elif cpuid in ("KNC", "KNCNI"):
            buckets.add("KNC")
        elif cpuid in ("SVML",):
            buckets.add("SVML")
        elif cpuid == "FMA":
            buckets.add("FMA")
        elif cpuid in ISA_ORDER:
            buckets.add(cpuid)
    if not buckets:
        buckets.add("other")
    # Shared AVX-512 / KNC entries count in both (paper counts 338 shared).
    return buckets


@dataclass
class Census:
    """Aggregate counts for one parsed specification."""

    per_isa: dict[str, int] = field(default_factory=dict)
    per_group: dict[str, int] = field(default_factory=dict)
    total_unique: int = 0
    shared_avx512_knc: int = 0
    other: int = 0

    def rows(self) -> list[tuple[str, int, int | None]]:
        """(isa, measured count, paper count) rows in Table 1b order."""
        out = []
        for isa in ISA_ORDER:
            out.append((isa, self.per_isa.get(isa, 0),
                        PAPER_TABLE_1B.get(isa)))
        return out


def take_census(entries: list[IntrinsicSpec]) -> Census:
    per_isa: dict[str, int] = defaultdict(int)
    per_group: dict[str, int] = defaultdict(int)
    shared = 0
    other = 0
    seen: set[str] = set()
    for e in entries:
        if e.name in seen:
            continue
        seen.add(e.name)
        buckets = isa_memberships(e)
        if "AVX-512" in buckets and "KNC" in buckets:
            shared += 1
        for b in buckets:
            if b == "other":
                other += 1
            else:
                per_isa[b] += 1
        for group, cats in GROUP_CATEGORIES.items():
            if e.category in cats:
                per_group[group] += 1
                break
    return Census(per_isa=dict(per_isa), per_group=dict(per_group),
                  total_unique=len(seen), shared_avx512_knc=shared,
                  other=other)


def classification_examples(entries: list[IntrinsicSpec]) -> dict[str, list[str]]:
    """For Table 1a: two member intrinsics per classification group,
    preferring the paper's own examples when present in the catalog."""
    by_name = {e.name for e in entries}
    out: dict[str, list[str]] = {}
    for group, examples in PAPER_TABLE_1A.items():
        found = [x for x in examples if x in by_name]
        if len(found) < 2:
            cats = GROUP_CATEGORIES[group]
            for e in entries:
                if e.category in cats and e.name not in found:
                    found.append(e.name)
                if len(found) >= 2:
                    break
        out[group] = found[:2]
    return out
