"""Intel intrinsics specification substrate.

The paper generates its eDSLs from Intel's vendor-provided XML
specification (``data-3.3.16.xml``).  That file is proprietary and this
environment has no network, so this package provides the closest
synthetic equivalent that exercises the same code path:

* :mod:`repro.spec.model` — the schema (intrinsic, parameters, CPUID,
  category, pseudocode operation, instruction forms);
* :mod:`repro.spec.catalog` — a curated core of intrinsics with full
  pseudocode semantics plus systematic op x type x mask families that
  reconstruct the vendor set's combinatorial structure for all 13 ISAs
  of Table 1b;
* :mod:`repro.spec.xmlgen` — emits vendor-schema XML files for several
  historical spec versions (the Table 3 analog);
* :mod:`repro.spec.parser` — the version-tolerant XML parser the eDSL
  generator consumes;
* :mod:`repro.spec.census` — the Table 1a/1b census over a parsed spec.
"""

from repro.spec.diff import SpecDiff, diff_specs, diff_versions
from repro.spec.model import (
    CATEGORIES,
    ISA_ORDER,
    IntrinsicSpec,
    Parameter,
)
from repro.spec.parser import parse_spec_file, parse_spec_xml
from repro.spec.xmlgen import emit_spec_xml, write_spec_version
from repro.spec.versions import SPEC_VERSIONS, default_version

__all__ = [
    "CATEGORIES",
    "ISA_ORDER",
    "IntrinsicSpec",
    "Parameter",
    "SpecDiff",
    "diff_specs",
    "diff_versions",
    "SPEC_VERSIONS",
    "default_version",
    "emit_spec_xml",
    "parse_spec_file",
    "parse_spec_xml",
    "write_spec_version",
]
