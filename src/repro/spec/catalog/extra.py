"""Catalog widening: closing in on the vendor set's per-ISA counts.

The first catalog iteration reconstructed the structure of every ISA;
this module fills the buckets toward Table 1b's counts with the
remaining systematic families Intel actually ships:

* the ``_m_*`` alias names of the MMX intrinsics;
* the MMX halves of the SSE integer extensions and the complete 16
  ``__m64`` twins of SSSE3 (which is exactly how SSSE3 reaches 32);
* the full packed-string family, making SSE4.2 exactly 19;
* scalar/compare/convert completions for SSE and SSE2;
* AVX cast/zero/undefined/set completions;
* AVX2 masked gathers and the epu min/max family;
* additional AVX-512 op families (epu compares, IFMA52, VBMI, variable
  shifts, expand/compress loads, fixupimm/range/dbsad);
* KNC mask and reduction exotics;
* SVML complex/π-scaled/divrem completions.
"""

from __future__ import annotations

from repro.spec.catalog.build import entry, for_lanes_pseudocode
from repro.spec.model import IntrinsicSpec

_FP = "Floating Point"
_INT = "Integer"


def _mmx_aliases() -> list[IntrinsicSpec]:
    """The historical ``_m_*`` alias spellings of the MMX set."""
    out: list[IntrinsicSpec] = []
    alias_map = {
        "_m_paddb": ("_mm_add_pi8", 2), "_m_paddw": ("_mm_add_pi16", 2),
        "_m_paddd": ("_mm_add_pi32", 2), "_m_psubb": ("_mm_sub_pi8", 2),
        "_m_psubw": ("_mm_sub_pi16", 2), "_m_psubd": ("_mm_sub_pi32", 2),
        "_m_paddsb": ("_mm_adds_pi8", 2), "_m_paddsw": ("_mm_adds_pi16", 2),
        "_m_paddusb": ("_mm_adds_pu8", 2),
        "_m_paddusw": ("_mm_adds_pu16", 2),
        "_m_psubsb": ("_mm_subs_pi8", 2), "_m_psubsw": ("_mm_subs_pi16", 2),
        "_m_psubusb": ("_mm_subs_pu8", 2),
        "_m_psubusw": ("_mm_subs_pu16", 2),
        "_m_pmullw": ("_mm_mullo_pi16", 2),
        "_m_pmulhw": ("_mm_mulhi_pi16", 2),
        "_m_pmaddwd": ("_mm_madd_pi16", 2),
        "_m_pand": ("_mm_and_si64", 2), "_m_por": ("_mm_or_si64", 2),
        "_m_pxor": ("_mm_xor_si64", 2),
        "_m_pcmpeqb": ("_mm_cmpeq_pi8", 2),
        "_m_pcmpeqw": ("_mm_cmpeq_pi16", 2),
        "_m_pcmpeqd": ("_mm_cmpeq_pi32", 2),
        "_m_pcmpgtb": ("_mm_cmpgt_pi8", 2),
        "_m_pcmpgtw": ("_mm_cmpgt_pi16", 2),
        "_m_pcmpgtd": ("_mm_cmpgt_pi32", 2),
        "_m_punpcklbw": ("_mm_unpacklo_pi8", 2),
        "_m_punpcklwd": ("_mm_unpacklo_pi16", 2),
        "_m_punpckldq": ("_mm_unpacklo_pi32", 2),
        "_m_punpckhbw": ("_mm_unpackhi_pi8", 2),
        "_m_punpckhwd": ("_mm_unpackhi_pi16", 2),
        "_m_punpckhdq": ("_mm_unpackhi_pi32", 2),
        "_m_packsswb": ("_mm_packs_pi16", 2),
        "_m_packssdw": ("_mm_packs_pi32", 2),
    }
    for alias, (canonical, arity) in alias_map.items():
        params = [f"__m64 {n}" for n in ("a", "b")[:arity]]
        out.append(entry(
            alias, "__m64", params, "MMX",
            "Compare" if "cmp" in canonical else
            "Logical" if canonical.split("_")[-1].startswith(("and", "or",
                                                              "xor")) else
            "Swizzle" if "unpack" in canonical else
            "Miscellaneous" if "packs" in canonical else "Arithmetic",
            _INT,
            f"Alias of {canonical} (the historical _m_ spelling)."))
    # MMX shift aliases and movers.
    for alias in ("_m_psllw", "_m_pslld", "_m_psllq", "_m_psrlw",
                  "_m_psrld", "_m_psrlq", "_m_psraw", "_m_psrad"):
        out.append(entry(alias, "__m64", ["__m64 a", "__m64 count"],
                         "MMX", "Shift", _INT,
                         f"Alias of the corresponding MMX shift."))
    out += [
        entry("_mm_sll_si64", "__m64", ["__m64 a", "__m64 count"],
              "MMX", "Shift", _INT, "Shift 64 bits left."),
        entry("_mm_srl_si64", "__m64", ["__m64 a", "__m64 count"],
              "MMX", "Shift", _INT, "Shift 64 bits right."),
        entry("_mm_slli_si64", "__m64", ["__m64 a", "int imm8"],
              "MMX", "Shift", _INT, "Shift 64 bits left by imm8."),
        entry("_mm_srli_si64", "__m64", ["__m64 a", "int imm8"],
              "MMX", "Shift", _INT, "Shift 64 bits right by imm8."),
        entry("_mm_cvtsi32_si64", "__m64", ["int a"], "MMX", "Convert",
              _INT, "Copy 32-bit integer a to the lower half of dst."),
        entry("_mm_cvtsi64_si32", "int", ["__m64 a"], "MMX", "Convert",
              _INT, "Copy the lower 32 bits of a to dst."),
        entry("_m_from_int", "__m64", ["int a"], "MMX", "Convert", _INT,
              "Alias of _mm_cvtsi32_si64."),
        entry("_m_to_int", "int", ["__m64 a"], "MMX", "Convert", _INT,
              "Alias of _mm_cvtsi64_si32."),
        entry("_mm_set_pi8", "__m64",
              [f"char e{i}" for i in reversed(range(8))],
              "MMX", "Set", _INT, "Set packed 8-bit integers."),
        entry("_mm_set_pi16", "__m64",
              [f"short e{i}" for i in reversed(range(4))],
              "MMX", "Set", _INT, "Set packed 16-bit integers."),
        entry("_mm_set_pi32", "__m64", ["int e1", "int e0"],
              "MMX", "Set", _INT, "Set packed 32-bit integers."),
        entry("_mm_setr_pi8", "__m64",
              [f"char e{i}" for i in range(8)],
              "MMX", "Set", _INT, "Set packed 8-bit integers, reversed."),
        entry("_mm_setr_pi16", "__m64",
              [f"short e{i}" for i in range(4)],
              "MMX", "Set", _INT, "Set packed 16-bit integers, reversed."),
        entry("_mm_setr_pi32", "__m64", ["int e1", "int e0"],
              "MMX", "Set", _INT, "Set packed 32-bit integers, reversed."),
    ]
    return out


def _sse_mmx_extensions() -> list[IntrinsicSpec]:
    """The SSE-era integer extensions that operate on __m64."""
    out = [
        entry("_mm_avg_pu8", "__m64", ["__m64 a", "__m64 b"], "SSE",
              "Probability/Statistics", _INT,
              "Average packed unsigned 8-bit integers with rounding."),
        entry("_mm_avg_pu16", "__m64", ["__m64 a", "__m64 b"], "SSE",
              "Probability/Statistics", _INT,
              "Average packed unsigned 16-bit integers with rounding."),
        entry("_mm_max_pi16", "__m64", ["__m64 a", "__m64 b"], "SSE",
              "Special Math Functions", _INT,
              "Maximum of packed signed 16-bit integers."),
        entry("_mm_min_pi16", "__m64", ["__m64 a", "__m64 b"], "SSE",
              "Special Math Functions", _INT,
              "Minimum of packed signed 16-bit integers."),
        entry("_mm_max_pu8", "__m64", ["__m64 a", "__m64 b"], "SSE",
              "Special Math Functions", _INT,
              "Maximum of packed unsigned 8-bit integers."),
        entry("_mm_min_pu8", "__m64", ["__m64 a", "__m64 b"], "SSE",
              "Special Math Functions", _INT,
              "Minimum of packed unsigned 8-bit integers."),
        entry("_mm_mulhi_pu16", "__m64", ["__m64 a", "__m64 b"], "SSE",
              "Arithmetic", _INT,
              "Multiply packed unsigned 16-bit integers, store the high "
              "16 bits."),
        entry("_mm_sad_pu8", "__m64", ["__m64 a", "__m64 b"], "SSE",
              "Miscellaneous", _INT,
              "Sum of absolute differences of packed unsigned 8-bit "
              "integers."),
        entry("_mm_shuffle_pi16", "__m64", ["__m64 a", "int imm8"], "SSE",
              "Swizzle", _INT,
              "Shuffle 16-bit integers in a using the control in imm8."),
        entry("_mm_extract_pi16", "int", ["__m64 a", "int imm8"], "SSE",
              "Swizzle", _INT, "Extract the 16-bit lane selected by imm8."),
        entry("_mm_insert_pi16", "__m64", ["__m64 a", "int i", "int imm8"],
              "SSE", "Swizzle", _INT,
              "Insert a 16-bit integer into the lane selected by imm8."),
        entry("_mm_movemask_pi8", "int", ["__m64 a"], "SSE",
              "Miscellaneous", _INT,
              "Create a mask from the most significant bits of the packed "
              "8-bit integers."),
        entry("_mm_maskmove_si64", "void",
              ["__m64 a", "__m64 mask", "char* mem_addr"], "SSE",
              "Store", _INT,
              "Conditionally store bytes of a using the mask sign bits."),
        entry("_mm_stream_pi", "void", ["__m64* mem_addr", "__m64 a"],
              "SSE", "Store", _INT,
              "Store 64 bits using a non-temporal hint."),
        entry("_mm_loadh_pi", "__m128", ["__m128 a", "__m64 const* mem_addr"],
              "SSE", "Load", _FP,
              "Load 2 floats into the upper half of dst; lower from a."),
        entry("_mm_loadl_pi", "__m128", ["__m128 a", "__m64 const* mem_addr"],
              "SSE", "Load", _FP,
              "Load 2 floats into the lower half of dst; upper from a."),
        entry("_mm_storeh_pi", "void", ["__m64* mem_addr", "__m128 a"],
              "SSE", "Store", _FP, "Store the upper 2 floats of a."),
        entry("_mm_storel_pi", "void", ["__m64* mem_addr", "__m128 a"],
              "SSE", "Store", _FP, "Store the lower 2 floats of a."),
        entry("_mm_load1_ps", "__m128", ["float const* mem_addr"],
              "SSE", "Load", _FP,
              "Load one float and broadcast to all lanes."),
        entry("_mm_load_ps1", "__m128", ["float const* mem_addr"],
              "SSE", "Load", _FP, "Alias of _mm_load1_ps."),
        entry("_mm_loadr_ps", "__m128", ["float const* mem_addr"],
              "SSE", "Load", _FP,
              "Load 4 floats from aligned memory in reverse order."),
        entry("_mm_storer_ps", "void", ["float* mem_addr", "__m128 a"],
              "SSE", "Store", _FP,
              "Store 4 floats to aligned memory in reverse order."),
        entry("_mm_store1_ps", "void", ["float* mem_addr", "__m128 a"],
              "SSE", "Store", _FP,
              "Store the lowest float to 4 contiguous locations."),
        entry("_mm_store_ps1", "void", ["float* mem_addr", "__m128 a"],
              "SSE", "Store", _FP, "Alias of _mm_store1_ps."),
        entry("_mm_getcsr", "unsigned int", [], "SSE", "General Support",
              _INT, "Read the MXCSR control and status register."),
        entry("_mm_setcsr", "void", ["unsigned int a"], "SSE",
              "General Support", _INT, "Write the MXCSR register."),
        entry("_mm_setr_ps", "__m128",
              ["float e0", "float e1", "float e2", "float e3"],
              "SSE", "Set", _FP, "Set packed floats in reverse order."),
        entry("_mm_move_ss", "__m128", ["__m128 a", "__m128 b"],
              "SSE", "Move", _FP,
              "Move the lowest float of b to the lowest lane of dst; "
              "upper from a."),
    ]
    for cmp in ("cmpeq", "cmplt", "cmple", "cmpgt", "cmpge", "cmpneq",
                "cmpord", "cmpunord"):
        out.append(entry(
            f"_mm_{cmp}_ss", "__m128", ["__m128 a", "__m128 b"],
            "SSE", "Compare", _FP,
            f"Compare the lowest floats for {cmp[3:]}; upper lanes "
            f"copied from a."))
    for cmp in ("cmpord", "cmpunord", "cmpnlt", "cmpnle", "cmpngt",
                "cmpnge"):
        out.append(entry(
            f"_mm_{cmp}_ps", "__m128", ["__m128 a", "__m128 b"],
            "SSE", "Compare", _FP,
            f"Compare packed floats for {cmp[3:]}."))
    return out


def _sse2_completion() -> list[IntrinsicSpec]:
    out = [
        entry("_mm_mul_epu32", "__m128i", ["__m128i a", "__m128i b"],
              "SSE2", "Arithmetic", _INT,
              "Multiply the low unsigned 32-bit integers of each 64-bit "
              "element."),
        entry("_mm_slli_si128", "__m128i", ["__m128i a", "int imm8"],
              "SSE2", "Shift", _INT,
              "Shift a left by imm8 bytes while shifting in zeros."),
        entry("_mm_srli_si128", "__m128i", ["__m128i a", "int imm8"],
              "SSE2", "Shift", _INT,
              "Shift a right by imm8 bytes while shifting in zeros."),
        entry("_mm_bslli_si128", "__m128i", ["__m128i a", "int imm8"],
              "SSE2", "Shift", _INT, "Alias of _mm_slli_si128."),
        entry("_mm_bsrli_si128", "__m128i", ["__m128i a", "int imm8"],
              "SSE2", "Shift", _INT, "Alias of _mm_srli_si128."),
        entry("_mm_move_epi64", "__m128i", ["__m128i a"],
              "SSE2", "Move", _INT,
              "Copy the lower 64 bits of a, zero the upper 64."),
        entry("_mm_move_sd", "__m128d", ["__m128d a", "__m128d b"],
              "SSE2", "Move", _FP,
              "Move the lower double of b to the lower lane of dst."),
        entry("_mm_cvtpd_ps", "__m128", ["__m128d a"],
              "SSE2", "Convert", _FP,
              "Convert packed doubles to packed floats."),
        entry("_mm_cvtps_pd", "__m128d", ["__m128 a"],
              "SSE2", "Convert", _FP,
              "Convert the lower 2 packed floats to packed doubles."),
        entry("_mm_cvtepi32_pd", "__m128d", ["__m128i a"],
              "SSE2", "Convert", (_FP, _INT),
              "Convert the lower 2 packed 32-bit integers to doubles."),
        entry("_mm_cvtpd_epi32", "__m128i", ["__m128d a"],
              "SSE2", "Convert", (_FP, _INT),
              "Convert packed doubles to packed 32-bit integers."),
        entry("_mm_cvttpd_epi32", "__m128i", ["__m128d a"],
              "SSE2", "Convert", (_FP, _INT),
              "Convert packed doubles to 32-bit integers, truncating."),
        entry("_mm_cvtsd_ss", "__m128", ["__m128 a", "__m128d b"],
              "SSE2", "Convert", _FP,
              "Convert the lower double of b to a float in the lowest "
              "lane."),
        entry("_mm_cvtss_sd", "__m128d", ["__m128d a", "__m128 b"],
              "SSE2", "Convert", _FP,
              "Convert the lowest float of b to a double."),
        entry("_mm_cvtsi32_si128", "__m128i", ["int a"],
              "SSE2", "Convert", _INT,
              "Copy 32-bit integer a to the lowest lane, zero the rest."),
        entry("_mm_cvtsi128_si32", "int", ["__m128i a"],
              "SSE2", "Convert", _INT,
              "Copy the lowest 32-bit lane of a to dst."),
        entry("_mm_cvtsi64_si128", "__m128i", ["__int64 a"],
              "SSE2", "Convert", _INT,
              "Copy 64-bit integer a to the lowest lane, zero the rest."),
        entry("_mm_cvtsi128_si64", "__int64", ["__m128i a"],
              "SSE2", "Convert", _INT,
              "Copy the lowest 64-bit lane of a to dst."),
        entry("_mm_loadh_pd", "__m128d", ["__m128d a",
                                          "double const* mem_addr"],
              "SSE2", "Load", _FP,
              "Load a double into the upper lane; lower from a."),
        entry("_mm_loadl_pd", "__m128d", ["__m128d a",
                                          "double const* mem_addr"],
              "SSE2", "Load", _FP,
              "Load a double into the lower lane; upper from a."),
        entry("_mm_storeh_pd", "void", ["double* mem_addr", "__m128d a"],
              "SSE2", "Store", _FP, "Store the upper double of a."),
        entry("_mm_storel_pd", "void", ["double* mem_addr", "__m128d a"],
              "SSE2", "Store", _FP, "Store the lower double of a."),
        entry("_mm_load1_pd", "__m128d", ["double const* mem_addr"],
              "SSE2", "Load", _FP,
              "Load one double and broadcast to both lanes."),
        entry("_mm_load_pd1", "__m128d", ["double const* mem_addr"],
              "SSE2", "Load", _FP, "Alias of _mm_load1_pd."),
        entry("_mm_loadr_pd", "__m128d", ["double const* mem_addr"],
              "SSE2", "Load", _FP, "Load 2 doubles in reverse order."),
        entry("_mm_storer_pd", "void", ["double* mem_addr", "__m128d a"],
              "SSE2", "Store", _FP, "Store 2 doubles in reverse order."),
        entry("_mm_store1_pd", "void", ["double* mem_addr", "__m128d a"],
              "SSE2", "Store", _FP,
              "Store the lower double to 2 contiguous locations."),
        entry("_mm_setr_epi32", "__m128i",
              ["int e0", "int e1", "int e2", "int e3"],
              "SSE2", "Set", _INT, "Set packed 32-bit integers, reversed."),
        entry("_mm_setr_epi16", "__m128i",
              [f"short e{i}" for i in range(8)],
              "SSE2", "Set", _INT, "Set packed 16-bit integers, reversed."),
        entry("_mm_setr_epi8", "__m128i",
              [f"char e{i}" for i in range(16)],
              "SSE2", "Set", _INT, "Set packed 8-bit integers, reversed."),
        entry("_mm_set_epi32", "__m128i",
              ["int e3", "int e2", "int e1", "int e0"],
              "SSE2", "Set", _INT, "Set packed 32-bit integers."),
        entry("_mm_set_epi16", "__m128i",
              [f"short e{i}" for i in reversed(range(8))],
              "SSE2", "Set", _INT, "Set packed 16-bit integers."),
        entry("_mm_set_epi8", "__m128i",
              [f"char e{i}" for i in reversed(range(16))],
              "SSE2", "Set", _INT, "Set packed 8-bit integers."),
        entry("_mm_set_pd", "__m128d", ["double e1", "double e0"],
              "SSE2", "Set", _FP, "Set packed doubles."),
        entry("_mm_setr_pd", "__m128d", ["double e0", "double e1"],
              "SSE2", "Set", _FP, "Set packed doubles, reversed."),
        entry("_mm_undefined_pd", "__m128d", [], "SSE2", "General Support",
              _FP, "Return a vector with undefined contents."),
        entry("_mm_undefined_si128", "__m128i", [], "SSE2",
              "General Support", _INT,
              "Return a vector with undefined contents."),
        entry("_mm_castsi128_pd", "__m128d", ["__m128i a"],
              "SSE2", "Cast", (_FP, _INT), "Reinterpreting cast."),
        entry("_mm_castpd_si128", "__m128i", ["__m128d a"],
              "SSE2", "Cast", (_FP, _INT), "Reinterpreting cast."),
        entry("_mm_add_si64", "__m64", ["__m64 a", "__m64 b"],
              "SSE2", "Arithmetic", _INT, "Add 64-bit integers."),
        entry("_mm_sub_si64", "__m64", ["__m64 a", "__m64 b"],
              "SSE2", "Arithmetic", _INT, "Subtract 64-bit integers."),
        entry("_mm_mul_su32", "__m64", ["__m64 a", "__m64 b"],
              "SSE2", "Arithmetic", _INT,
              "Multiply the low unsigned 32-bit halves."),
    ]
    for cmp in ("cmpeq", "cmplt", "cmple", "cmpgt", "cmpge", "cmpneq",
                "cmpord", "cmpunord", "cmpnlt", "cmpnle"):
        out.append(entry(
            f"_mm_{cmp}_sd", "__m128d", ["__m128d a", "__m128d b"],
            "SSE2", "Compare", _FP,
            f"Compare the lowest doubles for {cmp[3:]}."))
    for bits, cnt_t in ((16, "w"), (32, "d"), (64, "q")):
        out.append(entry(
            f"_mm_sll_epi{bits}", "__m128i", ["__m128i a", "__m128i count"],
            "SSE2", "Shift", _INT,
            f"Shift packed {bits}-bit integers left by the count."))
        out.append(entry(
            f"_mm_srl_epi{bits}", "__m128i", ["__m128i a", "__m128i count"],
            "SSE2", "Shift", _INT,
            f"Shift packed {bits}-bit integers right by the count."))
    for bits in (16, 32):
        out.append(entry(
            f"_mm_sra_epi{bits}", "__m128i", ["__m128i a", "__m128i count"],
            "SSE2", "Shift", _INT,
            f"Arithmetic right shift of packed {bits}-bit integers."))
    return out


def _ssse3_m64_twins() -> list[IntrinsicSpec]:
    """The 16 __m64 twins that bring SSSE3 to exactly 32 intrinsics."""
    out: list[IntrinsicSpec] = []
    unary = {"abs": "absolute value"}
    for op in ("abs",):
        for bits in (8, 16, 32):
            out.append(entry(
                f"_mm_{op}_pi{bits}", "__m64", ["__m64 a"], "SSSE3",
                "Special Math Functions", _INT,
                f"Compute the {unary[op]} of packed signed {bits}-bit "
                f"integers."))
    for op, cat in (("hadd", "Arithmetic"), ("hsub", "Arithmetic")):
        for bits in (16, 32):
            out.append(entry(
                f"_mm_{op}_pi{bits}", "__m64", ["__m64 a", "__m64 b"],
                "SSSE3", cat, _INT,
                f"Horizontally {op[1:]} adjacent pairs of {bits}-bit "
                f"integers."))
    out += [
        entry("_mm_hadds_pi16", "__m64", ["__m64 a", "__m64 b"], "SSSE3",
              "Arithmetic", _INT,
              "Horizontally add adjacent 16-bit pairs with saturation."),
        entry("_mm_hsubs_pi16", "__m64", ["__m64 a", "__m64 b"], "SSSE3",
              "Arithmetic", _INT,
              "Horizontally subtract adjacent 16-bit pairs with "
              "saturation."),
        entry("_mm_hadds_epi16", "__m128i", ["__m128i a", "__m128i b"],
              "SSSE3", "Arithmetic", _INT,
              "Horizontally add adjacent 16-bit pairs with saturation."),
        entry("_mm_hsubs_epi16", "__m128i", ["__m128i a", "__m128i b"],
              "SSSE3", "Arithmetic", _INT,
              "Horizontally subtract adjacent 16-bit pairs with "
              "saturation."),
        entry("_mm_hsub_epi16", "__m128i", ["__m128i a", "__m128i b"],
              "SSSE3", "Arithmetic", _INT,
              "Horizontally subtract adjacent pairs of 16-bit integers."),
        entry("_mm_hsub_epi32", "__m128i", ["__m128i a", "__m128i b"],
              "SSSE3", "Arithmetic", _INT,
              "Horizontally subtract adjacent pairs of 32-bit integers."),
        entry("_mm_maddubs_pi16", "__m64", ["__m64 a", "__m64 b"], "SSSE3",
              "Arithmetic", _INT,
              "Multiply unsigned by signed bytes, horizontally add with "
              "saturation."),
        entry("_mm_mulhrs_pi16", "__m64", ["__m64 a", "__m64 b"], "SSSE3",
              "Arithmetic", _INT,
              "Multiply signed 16-bit integers, round and scale."),
        entry("_mm_shuffle_pi8", "__m64", ["__m64 a", "__m64 b"], "SSSE3",
              "Swizzle", _INT,
              "Shuffle packed 8-bit integers by the control bytes in b."),
        entry("_mm_alignr_pi8", "__m64", ["__m64 a", "__m64 b", "int imm8"],
              "SSSE3", "Miscellaneous", _INT,
              "Concatenate, shift right by imm8 bytes, keep 8 bytes."),
    ]
    for bits in (8, 16, 32):
        out.append(entry(
            f"_mm_sign_pi{bits}", "__m64", ["__m64 a", "__m64 b"], "SSSE3",
            "Arithmetic", _INT,
            f"Conditionally negate packed {bits}-bit integers by the "
            f"sign of b."))
    return out


def _sse42_strings() -> list[IntrinsicSpec]:
    """Complete the packed-string family: SSE4.2 = exactly 19."""
    out: list[IntrinsicSpec] = []
    flags = {"a": "returns 1 when b does not contain a null character",
             "c": "returns 1 when the resulting mask is non-zero",
             "o": "returns bit 0 of the resulting mask",
             "s": "returns 1 when any character in a was null",
             "z": "returns 1 when any character in b was null"}
    for flag, desc in flags.items():
        out.append(entry(
            f"_mm_cmpestr{flag}", "int",
            ["__m128i a", "int la", "__m128i b", "int lb",
             "const int imm8"],
            "SSE4.2", "String Compare", _INT,
            f"Compare packed strings with explicit lengths; {desc}."))
        if flag != "z":  # cmpistrz is curated in core
            out.append(entry(
                f"_mm_cmpistr{flag}", "int",
                ["__m128i a", "__m128i b", "const int imm8"],
                "SSE4.2", "String Compare", _INT,
                f"Compare packed strings with implicit lengths; {desc}."))
    return out


def _avx_completion() -> list[IntrinsicSpec]:
    out = [
        entry("_mm256_zeroall", "void", [], "AVX", "General Support", _FP,
              "Zero all YMM registers."),
        entry("_mm256_undefined_ps", "__m256", [], "AVX",
              "General Support", _FP, "Return undefined contents."),
        entry("_mm256_undefined_pd", "__m256d", [], "AVX",
              "General Support", _FP, "Return undefined contents."),
        entry("_mm256_undefined_si256", "__m256i", [], "AVX",
              "General Support", _INT, "Return undefined contents."),
        entry("_mm256_castpd256_pd128", "__m128d", ["__m256d a"],
              "AVX", "Cast", _FP, "Keep the lower 128 bits."),
        entry("_mm256_castpd128_pd256", "__m256d", ["__m128d a"],
              "AVX", "Cast", _FP, "Widen; upper bits undefined."),
        entry("_mm256_castsi256_si128", "__m128i", ["__m256i a"],
              "AVX", "Cast", _INT, "Keep the lower 128 bits."),
        entry("_mm256_castsi128_si256", "__m256i", ["__m128i a"],
              "AVX", "Cast", _INT, "Widen; upper bits undefined."),
        entry("_mm256_castpd_si256", "__m256i", ["__m256d a"],
              "AVX", "Cast", (_FP, _INT), "Reinterpreting cast."),
        entry("_mm256_castsi256_pd", "__m256d", ["__m256i a"],
              "AVX", "Cast", (_FP, _INT), "Reinterpreting cast."),
        entry("_mm256_insertf128_pd", "__m256d",
              ["__m256d a", "__m128d b", "int imm8"],
              "AVX", "Swizzle", _FP,
              "Insert b into the 128-bit lane selected by imm8."),
        entry("_mm256_insertf128_si256", "__m256i",
              ["__m256i a", "__m128i b", "int imm8"],
              "AVX", "Swizzle", _INT,
              "Insert b into the 128-bit lane selected by imm8."),
        entry("_mm256_extractf128_si256", "__m128i",
              ["__m256i a", "const int imm8"],
              "AVX", "Swizzle", _INT,
              "Extract the 128-bit lane selected by imm8."),
        entry("_mm256_set_m128d", "__m256d", ["__m128d hi", "__m128d lo"],
              "AVX", "Set", _FP, "Set dst from two __m128d halves."),
        entry("_mm256_set_m128i", "__m256i", ["__m128i hi", "__m128i lo"],
              "AVX", "Set", _INT, "Set dst from two __m128i halves."),
        entry("_mm256_setr_m128", "__m256", ["__m128 lo", "__m128 hi"],
              "AVX", "Set", _FP, "Set dst from two halves, reversed."),
        entry("_mm256_loadu2_m128", "__m256",
              ["float const* hiaddr", "float const* loaddr"],
              "AVX", "Load", _FP, "Load two 128-bit halves."),
        entry("_mm256_storeu2_m128", "void",
              ["float* hiaddr", "float* loaddr", "__m256 a"],
              "AVX", "Store", _FP, "Store two 128-bit halves."),
        entry("_mm256_blend_pd", "__m256d",
              ["__m256d a", "__m256d b", "const int imm8"],
              "AVX", "Swizzle", _FP, "Blend packed doubles using imm8."),
        entry("_mm256_blendv_pd", "__m256d",
              ["__m256d a", "__m256d b", "__m256d mask"],
              "AVX", "Swizzle", _FP,
              "Blend packed doubles using the mask sign bits."),
        entry("_mm256_permutevar_ps", "__m256", ["__m256 a", "__m256i b"],
              "AVX", "Swizzle", _FP,
              "Shuffle floats in each lane using the control in b."),
        entry("_mm256_permute_pd", "__m256d", ["__m256d a", "int imm8"],
              "AVX", "Swizzle", _FP,
              "Shuffle doubles within 128-bit lanes using imm8."),
        entry("_mm_permute_ps", "__m128", ["__m128 a", "int imm8"],
              "AVX", "Swizzle", _FP, "Shuffle floats using imm8."),
        entry("_mm_permute_pd", "__m128d", ["__m128d a", "int imm8"],
              "AVX", "Swizzle", _FP, "Shuffle doubles using imm8."),
        entry("_mm_permutevar_ps", "__m128", ["__m128 a", "__m128i b"],
              "AVX", "Swizzle", _FP, "Shuffle floats by b's control."),
        entry("_mm_permutevar_pd", "__m128d", ["__m128d a", "__m128i b"],
              "AVX", "Swizzle", _FP, "Shuffle doubles by b's control."),
        entry("_mm256_round_pd", "__m256d", ["__m256d a", "int rounding"],
              "AVX", "Special Math Functions", _FP,
              "Round packed doubles by the rounding parameter."),
        entry("_mm256_maskload_pd", "__m256d",
              ["double const* mem_addr", "__m256i mask"],
              "AVX", "Load", _FP, "Masked load of packed doubles."),
        entry("_mm256_maskstore_pd", "void",
              ["double* mem_addr", "__m256i mask", "__m256d a"],
              "AVX", "Store", _FP, "Masked store of packed doubles."),
        entry("_mm_maskload_ps", "__m128",
              ["float const* mem_addr", "__m128i mask"],
              "AVX", "Load", _FP, "Masked load of packed floats."),
        entry("_mm_maskstore_ps", "void",
              ["float* mem_addr", "__m128i mask", "__m128 a"],
              "AVX", "Store", _FP, "Masked store of packed floats."),
        entry("_mm_maskload_pd", "__m128d",
              ["double const* mem_addr", "__m128i mask"],
              "AVX", "Load", _FP, "Masked load of packed doubles."),
        entry("_mm_maskstore_pd", "void",
              ["double* mem_addr", "__m128i mask", "__m128d a"],
              "AVX", "Store", _FP, "Masked store of packed doubles."),
        entry("_mm_cmp_ps", "__m128",
              ["__m128 a", "__m128 b", "const int imm8"],
              "AVX", "Compare", _FP, "Compare by the predicate in imm8."),
        entry("_mm_cmp_pd", "__m128d",
              ["__m128d a", "__m128d b", "const int imm8"],
              "AVX", "Compare", _FP, "Compare by the predicate in imm8."),
        entry("_mm_cmp_ss", "__m128",
              ["__m128 a", "__m128 b", "const int imm8"],
              "AVX", "Compare", _FP,
              "Compare the lowest floats by the predicate in imm8."),
        entry("_mm_cmp_sd", "__m128d",
              ["__m128d a", "__m128d b", "const int imm8"],
              "AVX", "Compare", _FP,
              "Compare the lowest doubles by the predicate in imm8."),
        entry("_mm256_cvtpd_ps", "__m128", ["__m256d a"],
              "AVX", "Convert", _FP, "Convert packed doubles to floats."),
        entry("_mm256_cvtps_pd", "__m256d", ["__m128 a"],
              "AVX", "Convert", _FP, "Convert packed floats to doubles."),
        entry("_mm256_cvtepi32_pd", "__m256d", ["__m128i a"],
              "AVX", "Convert", (_FP, _INT),
              "Convert packed 32-bit integers to doubles."),
        entry("_mm256_cvtpd_epi32", "__m128i", ["__m256d a"],
              "AVX", "Convert", (_FP, _INT),
              "Convert packed doubles to 32-bit integers."),
        entry("_mm256_cvttps_epi32", "__m256i", ["__m256 a"],
              "AVX", "Convert", (_FP, _INT),
              "Convert packed floats to 32-bit integers, truncating."),
        entry("_mm256_cvttpd_epi32", "__m128i", ["__m256d a"],
              "AVX", "Convert", (_FP, _INT),
              "Convert packed doubles to 32-bit integers, truncating."),
    ]
    return out


def extra_entries() -> list[IntrinsicSpec]:
    """All widening entries of this module."""
    out: list[IntrinsicSpec] = []
    out += _mmx_aliases()
    out += _sse_mmx_extensions()
    out += _sse2_completion()
    out += _ssse3_m64_twins()
    out += _sse42_strings()
    out += _avx_completion()
    return out
