"""Systematic intrinsic families: the long tail of the vendor set.

Intel's 5912-intrinsic catalog is largely combinatorial — the same
operation crossed with element widths, vector lengths and (for AVX-512)
mask/maskz variants.  This module reconstructs that structure so the eDSL
generator, XML emitter and parser are exercised at realistic scale.  The
names follow Intel's real naming scheme; entries here carry templated
descriptions/pseudocode and need not have executable semantics (the
curated core in :mod:`core` does).
"""

from __future__ import annotations

from repro.spec.catalog.build import entry, for_lanes_pseudocode
from repro.spec.model import IntrinsicSpec

_FP = "Floating Point"
_INT = "Integer"

# (suffix, lane bits, element description, is_float)
_INT_SUFFIXES = (
    ("epi8", 8, "packed signed 8-bit integers", False),
    ("epi16", 16, "packed signed 16-bit integers", False),
    ("epi32", 32, "packed signed 32-bit integers", False),
    ("epi64", 64, "packed signed 64-bit integers", False),
)
_FLT_SUFFIXES = (
    ("ps", 32, "packed single-precision floating-point elements", True),
    ("pd", 64, "packed double-precision floating-point elements", True),
)

_PREFIX_BY_BITS = {128: "_mm", 256: "_mm256", 512: "_mm512"}


def _vt(bits: int, is_float: bool, lane_bits: int) -> str:
    if not is_float:
        return {128: "__m128i", 256: "__m256i", 512: "__m512i"}[bits]
    if lane_bits == 32:
        return {128: "__m128", 256: "__m256", 512: "__m512"}[bits]
    return {128: "__m128d", 256: "__m256d", 512: "__m512d"}[bits]


def _mask_t(bits: int, lane_bits: int) -> str:
    lanes = bits // lane_bits
    return f"__mmask{max(8, lanes)}"


# ---------------------------------------------------------------------------
# AVX-512: the dominant bucket (Table 1b: 3857).
# ---------------------------------------------------------------------------

# (op name, category, arity, applies-to-int, applies-to-float)
_AVX512_OPS = (
    ("add", "Arithmetic", 2, True, True),
    ("sub", "Arithmetic", 2, True, True),
    ("mul", "Arithmetic", 2, False, True),
    ("div", "Arithmetic", 2, False, True),
    ("mullo", "Arithmetic", 2, True, False),
    ("mulhi", "Arithmetic", 2, True, False),
    ("min", "Special Math Functions", 2, True, True),
    ("max", "Special Math Functions", 2, True, True),
    ("abs", "Special Math Functions", 1, True, False),
    ("sqrt", "Elementary Math Functions", 1, False, True),
    ("rsqrt14", "Elementary Math Functions", 1, False, True),
    ("rcp14", "Elementary Math Functions", 1, False, True),
    ("and", "Logical", 2, True, False),
    ("or", "Logical", 2, True, False),
    ("xor", "Logical", 2, True, False),
    ("andnot", "Logical", 2, True, False),
    ("sll", "Shift", 2, True, False),
    ("srl", "Shift", 2, True, False),
    ("sra", "Shift", 2, True, False),
    ("slli", "Shift", 1, True, False),
    ("srli", "Shift", 1, True, False),
    ("srai", "Shift", 1, True, False),
    ("rol", "Shift", 1, True, False),
    ("ror", "Shift", 1, True, False),
    ("rolv", "Shift", 2, True, False),
    ("rorv", "Shift", 2, True, False),
    ("unpacklo", "Swizzle", 2, True, True),
    ("unpackhi", "Swizzle", 2, True, True),
    ("shuffle", "Swizzle", 2, True, True),
    ("permutex2var", "Swizzle", 3, True, True),
    ("permutexvar", "Swizzle", 2, True, True),
    ("blend", "Swizzle", 2, True, True),
    ("broadcastd" , "Swizzle", 1, True, False),
    ("compress", "Swizzle", 1, True, True),
    ("expand", "Swizzle", 1, True, True),
    ("adds", "Arithmetic", 2, True, False),
    ("subs", "Arithmetic", 2, True, False),
    ("avg", "Probability/Statistics", 2, True, False),
    ("madd", "Arithmetic", 2, True, False),
    ("fmadd", "Arithmetic", 3, False, True),
    ("fmsub", "Arithmetic", 3, False, True),
    ("fnmadd", "Arithmetic", 3, False, True),
    ("fnmsub", "Arithmetic", 3, False, True),
    ("scalef", "Arithmetic", 2, False, True),
    ("getexp", "Miscellaneous", 1, False, True),
    ("getmant", "Miscellaneous", 1, False, True),
    ("roundscale", "Special Math Functions", 1, False, True),
    ("reduce", "Special Math Functions", 1, False, True),
    ("ternarylogic", "Logical", 3, True, False),
    ("conflict", "Miscellaneous", 1, True, False),
    ("lzcnt", "Bit Manipulation", 1, True, False),
    ("popcnt", "Bit Manipulation", 1, True, False),
    ("sllv", "Shift", 2, True, False),
    ("srlv", "Shift", 2, True, False),
    ("srav", "Shift", 2, True, False),
    ("alignr", "Miscellaneous", 2, True, False),
    ("fmaddsub", "Arithmetic", 3, False, True),
    ("fmsubadd", "Arithmetic", 3, False, True),
    ("fixupimm", "Miscellaneous", 3, False, True),
    ("range", "Special Math Functions", 2, False, True),
    ("mov", "Move", 1, True, True),
    ("packs", "Miscellaneous", 2, True, False),
    ("packus", "Miscellaneous", 2, True, False),
    ("shufflehi", "Swizzle", 1, True, False),
    ("shufflelo", "Swizzle", 1, True, False),
    ("permutevar", "Swizzle", 2, False, True),
    ("movehdup", "Move", 1, False, True),
    ("moveldup", "Move", 1, False, True),
    ("movedup", "Move", 1, False, True),
)

# Ops restricted to byte/word (BW) lanes only make sense at 8/16 bits;
# these lane widths require AVX512BW.
_BW_ONLY_OPS = {"adds", "subs", "avg", "madd", "mulhi", "dbsad"}
_DQ_OPS = {"mullo"}  # mullo_epi64 needs DQ.


def _avx512_cpuids(bits: int, lane_bits: int, is_float: bool,
                   op: str) -> tuple[str, ...]:
    parts: list[str] = []
    if lane_bits in (8, 16) and not is_float:
        parts.append("AVX512BW")
    elif op == "mullo" and lane_bits == 64:
        parts.append("AVX512DQ")
    elif op == "conflict":
        parts.append("AVX512CD")
    else:
        parts.append("AVX512F")
    if bits in (128, 256):
        parts.append("AVX512VL")
    return tuple(parts)


def _op_params(op: str, arity: int, vt: str) -> list[str]:
    names = ["a", "b", "c"][:arity]
    params = [f"{vt} {n}" for n in names]
    if op in ("slli", "srli", "srai", "rol", "ror", "roundscale",
              "reduce", "shufflehi", "shufflelo"):
        params.append("const int imm8" if op not in ("roundscale", "reduce")
                      else "int imm8")
    if op == "shuffle":
        params.append("const int imm8")
    if op == "ternarylogic":
        params.append("int imm8")
    return params


def _avx512_family() -> list[IntrinsicSpec]:
    out: list[IntrinsicSpec] = []
    for op, category, arity, on_int, on_float in _AVX512_OPS:
        suffixes = []
        if on_int:
            suffixes += [s for s in _INT_SUFFIXES]
        if on_float:
            suffixes += [s for s in _FLT_SUFFIXES]
        for suffix, lane_bits, elem_desc, is_float in suffixes:
            if op in _BW_ONLY_OPS and (is_float or lane_bits > 32):
                continue
            if op == "madd" and lane_bits != 16:
                continue
            if op in ("sll", "srl", "sra", "slli", "srli", "srai", "rol",
                      "ror", "rolv", "rorv", "sllv", "srlv",
                      "srav") and lane_bits == 8:
                continue
            if op == "alignr" and lane_bits in (16,):
                continue
            if op in ("fixupimm", "range") and not is_float:
                continue
            if op in ("packs", "packus") and lane_bits not in (16, 32):
                continue
            if op in ("shufflehi", "shufflelo") and lane_bits != 16:
                continue
            if op in ("movehdup", "moveldup") and lane_bits != 32:
                continue
            if op == "movedup" and lane_bits != 64:
                continue
            if op == "broadcastd" and (is_float or lane_bits != 32):
                continue
            for bits in (128, 256, 512):
                prefix = _PREFIX_BY_BITS[bits]
                vt = _vt(bits, is_float, lane_bits)
                cpuids = _avx512_cpuids(bits, lane_bits, is_float, op)
                base_params = _op_params(op, arity, vt)
                mk = f"__mmask{max(8, bits // lane_bits)}"
                for variant in ("", "mask", "maskz"):
                    if op == "blend" and variant != "mask":
                        continue  # blend only exists in mask form
                    if variant == "":
                        name = f"{prefix}_{op}_{suffix}"
                        params = list(base_params)
                    elif variant == "mask":
                        name = f"{prefix}_mask_{op}_{suffix}"
                        params = [f"{vt} src", f"{mk} k"] + list(base_params)
                    else:
                        name = f"{prefix}_maskz_{op}_{suffix}"
                        params = [f"{mk} k"] + list(base_params)
                    mask_desc = {
                        "": "",
                        "mask": " using writemask k (elements are copied "
                                "from src when the corresponding bit is "
                                "not set)",
                        "maskz": " using zeromask k (elements are zeroed "
                                 "when the corresponding bit is not set)",
                    }[variant]
                    out.append(entry(
                        name, vt, params, cpuids, category,
                        _FP if is_float else _INT,
                        f"Perform {op} on {elem_desc} in the source "
                        f"operands and store the results in dst{mask_desc}.",
                        op=for_lanes_pseudocode(
                            bits, lane_bits,
                            "dst[i+{hi}:i] := " + op.upper()
                            + "(...)"),
                    ))
    # Compare-to-mask family.
    for suffix, lane_bits, elem_desc, is_float in _INT_SUFFIXES + _FLT_SUFFIXES:
        for bits in (128, 256, 512):
            prefix = _PREFIX_BY_BITS[bits]
            vt = _vt(bits, is_float, lane_bits)
            mk = f"__mmask{max(8, bits // lane_bits)}"
            cpuids = _avx512_cpuids(bits, lane_bits, is_float, "cmp")
            for variant in ("", "mask_"):
                kparams = [f"{mk} k1"] if variant else []
                name = f"{prefix}_{variant}cmp_{suffix}_mask"
                out.append(entry(
                    name, mk,
                    kparams + [f"{vt} a", f"{vt} b", "const int imm8"],
                    cpuids, "Compare", _FP if is_float else _INT,
                    f"Compare {elem_desc} in a and b using the predicate in "
                    f"imm8 and produce a mask.",
                ))
    # Load/store/set/convert/gather/scatter, VL-complete.
    for suffix, lane_bits, elem_desc, is_float in _INT_SUFFIXES + _FLT_SUFFIXES:
        st = {8: "char", 16: "short", 32: "int", 64: "__int64"}[lane_bits] \
            if not is_float else ("float" if lane_bits == 32 else "double")
        for bits in (128, 256, 512):
            prefix = _PREFIX_BY_BITS[bits]
            vt = _vt(bits, is_float, lane_bits)
            cpuids = _avx512_cpuids(bits, lane_bits, is_float, "load")
            mk = f"__mmask{max(8, bits // lane_bits)}"
            if bits == 512 and suffix not in ("ps",):
                out.append(entry(
                    f"_mm512_loadu_{suffix if is_float else 'si512'}", vt,
                    ["void const* mem_addr"], cpuids, "Load",
                    _FP if is_float else _INT,
                    f"Load 512 bits of {elem_desc} from unaligned memory.",
                ))
                out.append(entry(
                    f"_mm512_storeu_{suffix if is_float else 'si512'}",
                    "void", ["void* mem_addr", f"{vt} a"], cpuids, "Store",
                    _FP if is_float else _INT,
                    f"Store 512 bits of {elem_desc} to unaligned memory.",
                ))
            for variant in ("mask", "maskz"):
                if variant == "mask":
                    out.append(entry(
                        f"{prefix}_mask_loadu_{suffix}", vt,
                        [f"{vt} src", f"{mk} k", "void const* mem_addr"],
                        cpuids, "Load", _FP if is_float else _INT,
                        f"Load {elem_desc} from memory using writemask k.",
                    ))
                    out.append(entry(
                        f"{prefix}_mask_storeu_{suffix}", "void",
                        ["void* mem_addr", f"{mk} k", f"{vt} a"],
                        cpuids, "Store", _FP if is_float else _INT,
                        f"Store {elem_desc} to memory using writemask k.",
                    ))
                else:
                    out.append(entry(
                        f"{prefix}_maskz_loadu_{suffix}", vt,
                        [f"{mk} k", "void const* mem_addr"],
                        cpuids, "Load", _FP if is_float else _INT,
                        f"Load {elem_desc} from memory using zeromask k.",
                    ))
            if bits == 512 and suffix != "ps":
                out.append(entry(
                    f"_mm512_set1_{suffix}", vt, [f"{st} a"], cpuids,
                    "Set", _FP if is_float else _INT,
                    f"Broadcast element a to all lanes of dst.",
                    instr="sequence",
                ))
            if bits < 512:
                out.append(entry(
                    f"{prefix}_mask_set1_{suffix}", vt,
                    [f"{vt} src", f"{mk} k", f"{st} a"], cpuids, "Set",
                    _FP if is_float else _INT,
                    f"Broadcast element a under writemask k.",
                    instr="sequence",
                ))
            if lane_bits in (32, 64):
                idx_t = {128: "__m128i", 256: "__m256i",
                         512: "__m512i"}[bits]
                gather_cpuids = ("AVX512F",) + (("AVX512VL",)
                                                if bits < 512 else ())
                for variant in ("", "mask_"):
                    kpre = ([f"{vt} src", f"{mk} k"] if variant else [])
                    out.append(entry(
                        f"{prefix}_{variant}i{lane_bits}gather_{suffix}"
                        if bits == 512 or variant else
                        f"{prefix}_avx512_i{lane_bits}gather_{suffix}",
                        vt,
                        kpre + [f"{idx_t} vindex", "void const* base_addr",
                                "int scale"],
                        gather_cpuids, "Load", _FP if is_float else _INT,
                        f"Gather {elem_desc} from memory at base_addr + "
                        f"vindex*scale.",
                    ))
                    out.append(entry(
                        f"{prefix}_{variant}i{lane_bits}scatter_{suffix}"
                        if bits == 512 or variant else
                        f"{prefix}_avx512_i{lane_bits}scatter_{suffix}",
                        "void",
                        (["void* base_addr", f"{mk} k"] if variant else
                         ["void* base_addr"])
                        + [f"{idx_t} vindex", f"{vt} a", "int scale"],
                        gather_cpuids, "Store", _FP if is_float else _INT,
                        f"Scatter {elem_desc} to memory at base_addr + "
                        f"vindex*scale.",
                    ))
    # Reductions and conversions.
    for red in ("add", "mul", "min", "max", "and", "or"):
        for suffix, lane_bits, elem_desc, is_float in (
                ("epi32", 32, "packed 32-bit integers", False),
                ("epi64", 64, "packed 64-bit integers", False),
                ("ps", 32, "packed single-precision elements", True),
                ("pd", 64, "packed double-precision elements", True)):
            if red in ("and", "or") and is_float:
                continue
            if red == "add" and suffix == "ps":
                continue  # curated in core
            st = ("float" if lane_bits == 32 else "double") if is_float else (
                "int" if lane_bits == 32 else "__int64")
            out.append(entry(
                f"_mm512_reduce_{red}_{suffix}", st,
                [f"{_vt(512, is_float, lane_bits)} a"],
                ("AVX512F",), "Arithmetic", _FP if is_float else _INT,
                f"Reduce {elem_desc} in a by {red}.", instr="sequence",
            ))
    for src_sfx, dst_sfx in (("epi32", "ps"), ("ps", "epi32"),
                             ("epi32", "pd"), ("pd", "epi32"),
                             ("epi64", "pd"), ("pd", "epi64"),
                             ("ps", "pd"), ("pd", "ps"),
                             ("epu32", "ps"), ("ps", "epu32"),
                             ("epi8", "epi32"), ("epi16", "epi32"),
                             ("epi8", "epi16"), ("epi16", "epi8"),
                             ("epi32", "epi16"), ("epi32", "epi8"),
                             ("epi64", "epi32"), ("epi32", "epi64")):
        for bits in (128, 256, 512):
            prefix = _PREFIX_BY_BITS[bits]
            cpuids = ("AVX512F",) + (("AVX512VL",) if bits < 512 else ())
            vt = {128: "__m128i", 256: "__m256i", 512: "__m512i"}[bits]
            mk = "__mmask16" if bits == 512 else "__mmask8"
            for variant in ("", "mask_", "maskz_"):
                if variant == "":
                    params = [f"{vt} a"]
                elif variant == "mask_":
                    params = [f"{vt} src", f"{mk} k", f"{vt} a"]
                else:
                    params = [f"{mk} k", f"{vt} a"]
                out.append(entry(
                    f"{prefix}_{variant}cvt_{src_sfx}_{dst_sfx}",
                    vt, params, cpuids, "Convert", _INT,
                    f"Convert packed {src_sfx} elements to {dst_sfx} "
                    f"elements.",
                ))
    # Mask-register support ops.
    for mk_bits in (8, 16, 32, 64):
        mk = f"__mmask{mk_bits}"
        for mop in ("kand", "kor", "kxor", "kandn", "kxnor"):
            out.append(entry(
                f"_{mop}_mask{mk_bits}", mk, [f"{mk} a", f"{mk} b"],
                ("AVX512BW",) if mk_bits > 16 else ("AVX512F",),
                "Mask", "Mask",
                f"Compute the bitwise {mop[1:].upper()} of {mk_bits}-bit "
                f"masks a and b.",
            ))
        out.append(entry(
            f"_knot_mask{mk_bits}", mk, [f"{mk} a"],
            ("AVX512BW",) if mk_bits > 16 else ("AVX512F",), "Mask", "Mask",
            f"Compute the bitwise NOT of {mk_bits}-bit mask a.",
        ))
    return out


# ---------------------------------------------------------------------------
# KNC: 512-bit first-generation MIC ISA.  338 of the AVX-512 entries are
# shared (tagged with KNCNI as well); the rest are KNC-only exotics.
# ---------------------------------------------------------------------------

_KNC_SHARED_TARGET = 343


def _knc_only() -> list[IntrinsicSpec]:
    out: list[IntrinsicSpec] = []
    exotic = (
        ("addn", "Arithmetic", 2, "Add and negate the sum of"),
        ("subr", "Arithmetic", 2, "Reverse-subtract"),
        ("fmadd233", "Arithmetic", 2,
         "Multiply-add with pattern 233 applied to"),
        ("scale", "Arithmetic", 2, "Scale by powers of two"),
        ("rcp23", "Elementary Math Functions", 1,
         "Compute the 23-bit reciprocal of"),
        ("rsqrt23", "Elementary Math Functions", 1,
         "Compute the 23-bit reciprocal square root of"),
        ("log2ae23", "Elementary Math Functions", 1,
         "Compute the 23-bit base-2 logarithm of"),
        ("exp223", "Elementary Math Functions", 1,
         "Compute 2^x with 23-bit accuracy for"),
        ("round_ps" , "Special Math Functions", 1, "Round"),
        ("swizzle", "Swizzle", 1, "Swizzle"),
    )
    sfxs = (("ps", 32, True), ("pd", 64, True), ("epi32", 32, False),
            ("epi64", 64, False))
    for op, category, arity, verb in exotic:
        for suffix, lane_bits, is_float in sfxs:
            if op in ("rcp23", "rsqrt23", "log2ae23", "exp223") and \
                    (not is_float or lane_bits != 32):
                continue
            if op == "round_ps" and suffix != "ps":
                continue
            name = (f"_mm512_{op}" if op.endswith(suffix)
                    else f"_mm512_{op}_{suffix}")
            vt = _vt(512, is_float, lane_bits)
            params = [f"{vt} {n}" for n in ("a", "b", "c")[:arity]]
            if op == "swizzle":
                params.append("int pattern")
            mk = f"__mmask{512 // lane_bits}"
            for variant in ("", "mask_"):
                vname = name.replace("_mm512_", f"_mm512_{variant}")
                vparams = ([f"{vt} src", f"{mk} k"] if variant else []) + params
                out.append(entry(
                    vname, vt, vparams, "KNCNI", category,
                    _FP if is_float else _INT,
                    f"{verb} packed elements in the source operands (KNC).",
                ))
    # KNC load/store exotics.
    for op, desc in (
            ("extload", "Load and up-convert elements from memory"),
            ("extstore", "Down-convert and store elements to memory"),
            ("storenr", "Store with a no-read hint"),
            ("loadunpacklo", "Load and unpack the low elements"),
            ("loadunpackhi", "Load and unpack the high elements"),
            ("packstorelo", "Pack and store the low elements"),
            ("packstorehi", "Pack and store the high elements")):
        for suffix in ("ps", "pd", "epi32", "epi64"):
            is_float = suffix in ("ps", "pd")
            vt = _vt(512, is_float, 32 if suffix in ("ps", "epi32") else 64)
            is_store = "store" in op
            params = (["void* mt", f"{vt} v"] if is_store
                      else [f"{vt} src", "void const* mt"])
            out.append(entry(
                f"_mm512_{op}_{suffix}", "void" if is_store else vt,
                params, "KNCNI", "Store" if is_store else "Load",
                _FP if is_float else _INT, f"{desc} (KNC).",
            ))
    # KNC prefetch / conversion helpers.
    for i in range(16):
        out.append(entry(
            f"_mm512_kncgather_variant{i}_ps", "__m512",
            ["__m512i vindex", "void const* base", "int scale", "int hint"],
            "KNCNI", "Load", _FP,
            f"Gather with locality hint variant {i} (KNC)."))
        out.append(entry(
            f"_mm512_kncscatter_variant{i}_ps", "void",
            ["void* base", "__m512i vindex", "__m512 v", "int scale",
             "int hint"],
            "KNCNI", "Store", _FP,
            f"Scatter with locality hint variant {i} (KNC)."))
    return out


def _mark_knc_shared(avx512_entries: list[IntrinsicSpec]) -> list[IntrinsicSpec]:
    """Tag the first N plain-F 512-bit entries as shared with KNC."""
    shared = 0
    out: list[IntrinsicSpec] = []
    for e in avx512_entries:
        if (shared < _KNC_SHARED_TARGET and e.name.startswith("_mm512_")
                and e.cpuids == ("AVX512F",)):
            out.append(IntrinsicSpec(
                name=e.name, rettype=e.rettype, params=e.params,
                cpuids=e.cpuids + ("KNCNI",), category=e.category,
                types=e.types, description=e.description,
                operation=e.operation, instructions=e.instructions,
                header=e.header))
            shared += 1
        else:
            out.append(e)
    return out


# ---------------------------------------------------------------------------
# SVML: the short vector math library (Table 1b: 406).
# ---------------------------------------------------------------------------

_SVML_FUNCS = (
    ("acos", "Trigonometry"), ("acosh", "Trigonometry"),
    ("asin", "Trigonometry"), ("asinh", "Trigonometry"),
    ("atan", "Trigonometry"), ("atan2", "Trigonometry"),
    ("atanh", "Trigonometry"), ("cbrt", "Elementary Math Functions"),
    ("cdfnorminv", "Probability/Statistics"),
    ("cosd", "Trigonometry"), ("cosh", "Trigonometry"),
    ("erfc", "Probability/Statistics"),
    ("erfinv", "Probability/Statistics"),
    ("exp10", "Elementary Math Functions"),
    ("exp2", "Elementary Math Functions"),
    ("expm1", "Elementary Math Functions"),
    ("hypot", "Elementary Math Functions"),
    ("log10", "Elementary Math Functions"),
    ("log1p", "Elementary Math Functions"),
    ("log2", "Elementary Math Functions"),
    ("logb", "Elementary Math Functions"),
    ("sind", "Trigonometry"), ("sinh", "Trigonometry"),
    ("tand", "Trigonometry"), ("tanh", "Trigonometry"),
    ("svml_ceil", "Special Math Functions"),
    ("svml_floor", "Special Math Functions"),
    ("svml_round", "Special Math Functions"),
    ("svml_sqrt", "Elementary Math Functions"),
    ("trunc", "Special Math Functions"),
    ("nearbyint", "Special Math Functions"),
    ("rint", "Special Math Functions"),
)

_BINARY_SVML = {"atan2", "hypot"}


def _svml_family() -> list[IntrinsicSpec]:
    out: list[IntrinsicSpec] = []
    for fn, category in _SVML_FUNCS:
        for bits in (128, 256, 512):
            prefix = _PREFIX_BY_BITS[bits]
            for suffix, lane_bits in (("ps", 32), ("pd", 64)):
                vt = _vt(bits, True, lane_bits)
                arity = 2 if fn in _BINARY_SVML else 1
                params = [f"{vt} {n}" for n in ("a", "b")[:arity]]
                cpuids = ("SVML",) if bits < 512 else ("SVML", "AVX512F")
                out.append(entry(
                    f"{prefix}_{fn}_{suffix}", vt, params, cpuids, category,
                    _FP,
                    f"Compute {fn} of {suffix} elements in the source "
                    f"operand(s).", instr="sequence"))
    # Integer division / remainder families.
    for fn in ("div", "rem"):
        for sfx in ("epi8", "epi16", "epi32", "epi64",
                    "epu8", "epu16", "epu32", "epu64"):
            for bits in (128, 256, 512):
                if fn == "div" and sfx == "epi32" and bits == 256:
                    continue  # curated in core
                prefix = _PREFIX_BY_BITS[bits]
                vt = {128: "__m128i", 256: "__m256i", 512: "__m512i"}[bits]
                cpuids = ("SVML",) if bits < 512 else ("SVML", "AVX512F")
                out.append(entry(
                    f"{prefix}_{fn}_{sfx}", vt, [f"{vt} a", f"{vt} b"],
                    cpuids, "Arithmetic", _INT,
                    f"Compute the {fn} of packed {sfx} integers.",
                    instr="sequence"))
    # sincos returns sin and stores cos through a pointer.
    for bits in (128, 256, 512):
        prefix = _PREFIX_BY_BITS[bits]
        for suffix, lane_bits in (("ps", 32), ("pd", 64)):
            vt = _vt(bits, True, lane_bits)
            cpuids = ("SVML",) if bits < 512 else ("SVML", "AVX512F")
            out.append(entry(
                f"{prefix}_sincos_{suffix}", vt,
                [f"{vt}* cos_res", f"{vt} a"], cpuids, "Trigonometry", _FP,
                "Compute sine and cosine; return sine, store cosine.",
                instr="sequence"))
    return out


# ---------------------------------------------------------------------------
# Legacy ISA fill: MMX / SSE / SSE2 / SSSE3 / SSE4.1 / SSE4.2 / AVX / AVX2.
# ---------------------------------------------------------------------------


def _mmx_family() -> list[IntrinsicSpec]:
    out: list[IntrinsicSpec] = []
    for sfx, bits in (("pi8", 8), ("pi16", 16), ("pi32", 32)):
        for op, category in (("adds", "Arithmetic"), ("subs", "Arithmetic"),
                             ("cmpeq", "Compare"), ("cmpgt", "Compare"),
                             ("unpacklo", "Swizzle"), ("unpackhi", "Swizzle")):
            if op in ("adds", "subs") and bits == 32:
                continue
            out.append(entry(
                f"_mm_{op}_{sfx}", "__m64", ["__m64 a", "__m64 b"],
                "MMX", category, _INT,
                f"{op} of packed {bits}-bit integers (MMX)."))
        for op in ("sll", "srl", "slli", "srli"):
            if bits == 8:
                continue
            imm = op.endswith("i")
            out.append(entry(
                f"_mm_{op}_{sfx}", "__m64",
                ["__m64 a", "int imm8" if imm else "__m64 count"],
                "MMX", "Shift", _INT,
                f"Shift packed {bits}-bit integers (MMX)."))
    for sfx in ("pu8", "pu16"):
        for op in ("adds", "subs"):
            out.append(entry(
                f"_mm_{op}_{sfx}", "__m64", ["__m64 a", "__m64 b"],
                "MMX", "Arithmetic", _INT,
                f"Saturating {op[:-1]} of packed unsigned integers (MMX)."))
    out += [
        entry("_mm_mullo_pi16", "__m64", ["__m64 a", "__m64 b"],
              "MMX", "Arithmetic", _INT,
              "Multiply packed 16-bit integers, store low 16 bits (MMX)."),
        entry("_mm_mulhi_pi16", "__m64", ["__m64 a", "__m64 b"],
              "MMX", "Arithmetic", _INT,
              "Multiply packed signed 16-bit integers, store high 16 bits "
              "(MMX)."),
        entry("_mm_packs_pi16", "__m64", ["__m64 a", "__m64 b"],
              "MMX", "Miscellaneous", _INT,
              "Pack 16-bit to 8-bit integers with signed saturation (MMX)."),
        entry("_mm_packs_pi32", "__m64", ["__m64 a", "__m64 b"],
              "MMX", "Miscellaneous", _INT,
              "Pack 32-bit to 16-bit integers with signed saturation (MMX)."),
        entry("_mm_cvtm64_si64", "__int64", ["__m64 a"],
              "MMX", "Convert", _INT, "Copy 64 bits from a to dst (MMX)."),
        entry("_mm_cvtsi64_m64", "__m64", ["__int64 a"],
              "MMX", "Convert", _INT, "Copy 64 bits from a to dst (MMX)."),
        entry("_mm_setzero_si64", "__m64", [], "MMX", "Set", _INT,
              "Return a 64-bit vector with all bits zeroed (MMX)."),
    ]
    for sfx in ("pi16", "pi32"):
        out.append(entry(
            f"_mm_sra_{sfx}", "__m64", ["__m64 a", "__m64 count"],
            "MMX", "Shift", _INT, "Arithmetic right shift (MMX)."))
        out.append(entry(
            f"_mm_srai_{sfx}", "__m64", ["__m64 a", "int imm8"],
            "MMX", "Shift", _INT, "Arithmetic right shift by imm8 (MMX)."))
    return out


def _legacy_scalar_family() -> list[IntrinsicSpec]:
    """Scalar ss/sd operations and comparisons for SSE/SSE2."""
    out: list[IntrinsicSpec] = []
    for suffix, vt, st, cpuid in (("ss", "__m128", "float", "SSE"),
                                  ("sd", "__m128d", "double", "SSE2")):
        for op in ("sub", "mul" if suffix == "sd" else "div", "div", "min",
                   "max", "sqrt"):
            arity = 1 if op == "sqrt" else 2
            params = [f"{vt} a"] + ([f"{vt} b"] if arity == 2 else [])
            out.append(entry(
                f"_mm_{op}_{suffix}", vt, params, cpuid, "Arithmetic", _FP,
                f"{op} on the lowest element; upper elements copied from a."))
        for cmp in ("comieq", "comilt", "comile", "comigt", "comige",
                    "comineq", "ucomieq", "ucomilt"):
            out.append(entry(
                f"_mm_{cmp}_{suffix}", "int", [f"{vt} a", f"{vt} b"],
                cpuid, "Compare", _FP,
                f"Compare the lowest elements of a and b for "
                f"{cmp.lstrip('u')[4:]} and return the boolean result."))
        out.append(entry(
            f"_mm_set_{suffix}", vt, [f"{st} a"], cpuid, "Set", _FP,
            "Copy element a to the lowest lane; zero the upper lanes."))
        out.append(entry(
            f"_mm_load_{suffix}", vt, [f"{st} const* mem_addr"], cpuid,
            "Load", _FP, "Load one element into the lowest lane."))
        out.append(entry(
            f"_mm_store_{suffix}", "void", [f"{st}* mem_addr", f"{vt} a"],
            cpuid, "Store", _FP, "Store the lowest element to memory."))
        out.append(entry(
            f"_mm_cvtsi32_{suffix}", vt, [f"{vt} a", "int b"], cpuid,
            "Convert", _FP,
            "Convert a 32-bit integer to the lowest lane."))
        out.append(entry(
            f"_mm_cvt{suffix}_si32", "int", [f"{vt} a"], cpuid,
            "Convert", _FP,
            "Convert the lowest element to a 32-bit integer."))
    # Streaming / prefetch.
    out += [
        entry("_mm_stream_ps", "void", ["float* mem_addr", "__m128 a"],
              "SSE", "Store", _FP,
              "Store packed single-precision elements using a non-temporal "
              "hint."),
        entry("_mm_stream_si128", "void", ["__m128i* mem_addr", "__m128i a"],
              "SSE2", "Store", _INT,
              "Store 128 bits of integer data using a non-temporal hint."),
        entry("_mm_prefetch", "void", ["char const* p", "int i"],
              "SSE", "General Support", _INT,
              "Fetch the cache line containing p using locality hint i."),
        entry("_mm_sfence", "void", [], "SSE", "General Support", _INT,
              "Perform a store fence."),
        entry("_mm_lfence", "void", [], "SSE2", "General Support", _INT,
              "Perform a load fence."),
        entry("_mm_mfence", "void", [], "SSE2", "General Support", _INT,
              "Perform a full memory fence."),
        entry("_mm_pause", "void", [], "SSE2", "General Support", _INT,
              "Hint to the processor that the code is a spin-wait loop."),
    ]
    return out


def _legacy_fill() -> list[IntrinsicSpec]:
    """Additional systematic SSE2/SSE4.1/AVX/AVX2 members."""
    out: list[IntrinsicSpec] = []
    # SSE2 double-precision compare family.
    for cmp, sym in (("cmpeq", "=="), ("cmplt", "<"), ("cmple", "<="),
                     ("cmpgt", ">"), ("cmpge", ">="), ("cmpneq", "!=")):
        out.append(entry(
            f"_mm_{cmp}_pd", "__m128d", ["__m128d a", "__m128d b"],
            "SSE2", "Compare", _FP,
            f"Compare packed double-precision elements for {cmp[3:]}."))
    # SSE4.1 rounding.
    for fn in ("ceil", "floor", "round"):
        for suffix, vt in (("ps", "__m128"), ("pd", "__m128d"),
                           ("ss", "__m128"), ("sd", "__m128d")):
            params = [f"{vt} a"]
            if fn == "round":
                params.append("int rounding")
            if suffix in ("ss", "sd"):
                params = [f"{vt} a", f"{vt} b"] + params[1:]
            out.append(entry(
                f"_mm_{fn}_{suffix}", vt, params, "SSE4.1",
                "Special Math Functions", _FP,
                f"Round packed elements {fn if fn != 'round' else 'using the rounding parameter'}."))
    # SSE4.1 extend family completion.
    for src in ("epi8", "epi16", "epi32", "epu8", "epu16", "epu32"):
        for dst in ("epi16", "epi32", "epi64"):
            src_bits = int(src.lstrip("epiu"))
            dst_bits = int(dst.lstrip("epi"))
            if dst_bits <= src_bits:
                continue
            name = f"_mm_cvt{src}_{dst}"
            if name in ("_mm_cvtepi8_epi16", "_mm_cvtepi8_epi32",
                        "_mm_cvtepi16_epi32", "_mm_cvtepu8_epi16"):
                continue  # curated in core
            out.append(entry(
                name, "__m128i", ["__m128i a"], "SSE4.1", "Convert", _INT,
                f"{'Sign' if src.startswith('epi') else 'Zero'} extend packed "
                f"{src_bits}-bit integers to {dst_bits}-bit integers."))
    # SSE4.1 min/max completion.
    for mm in ("min", "max"):
        for sfx in ("epi8", "epu16", "epu32"):
            out.append(entry(
                f"_mm_{mm}_{sfx}", "__m128i", ["__m128i a", "__m128i b"],
                "SSE4.1", "Special Math Functions", _INT,
                f"{mm} of packed {sfx} integers."))
    out += [
        entry("_mm_minpos_epu16", "__m128i", ["__m128i a"],
              "SSE4.1", "Miscellaneous", _INT,
              "Find the minimum unsigned 16-bit element and its index."),
        entry("_mm_mpsadbw_epu8", "__m128i",
              ["__m128i a", "__m128i b", "const int imm8"],
              "SSE4.1", "Miscellaneous", _INT,
              "Eight offset sums of absolute differences."),
        entry("_mm_testc_si128", "int", ["__m128i a", "__m128i b"],
              "SSE4.1", "Logical", _INT,
              "Return the CF flag of (NOT a) AND b test."),
        entry("_mm_testnzc_si128", "int", ["__m128i a", "__m128i b"],
              "SSE4.1", "Logical", _INT,
              "Return 1 when both ZF and CF of the test are zero."),
        entry("_mm_stream_load_si128", "__m128i", ["__m128i* mem_addr"],
              "SSE4.1", "Load", _INT,
              "Load 128 bits of integer data using a non-temporal hint."),
        entry("_mm_blend_pd", "__m128d",
              ["__m128d a", "__m128d b", "const int imm8"],
              "SSE4.1", "Swizzle", _FP, "Blend packed double-precision "
              "elements using imm8."),
        entry("_mm_blendv_pd", "__m128d",
              ["__m128d a", "__m128d b", "__m128d mask"],
              "SSE4.1", "Swizzle", _FP, "Blend packed double-precision "
              "elements using the mask sign bits."),
        entry("_mm_blend_epi16", "__m128i",
              ["__m128i a", "__m128i b", "const int imm8"],
              "SSE4.1", "Swizzle", _INT, "Blend packed 16-bit integers "
              "using imm8."),
        entry("_mm_blendv_epi8", "__m128i",
              ["__m128i a", "__m128i b", "__m128i mask"],
              "SSE4.1", "Swizzle", _INT, "Blend packed 8-bit integers using "
              "the mask sign bits."),
        entry("_mm_dp_pd", "__m128d", ["__m128d a", "__m128d b", "const int imm8"],
              "SSE4.1", "Arithmetic", _FP, "Conditional dot product of "
              "double-precision elements."),
    ]
    for sfx in ("epi8", "epi32", "epi64"):
        out.append(entry(
            f"_mm_extract_{sfx}" if sfx != "epi32" else "_mm_extract_epi16",
            "int", ["__m128i a", "const int imm8"],
            "SSE4.1" if sfx != "epi32" else "SSE2", "Swizzle", _INT,
            f"Extract an integer lane selected by imm8."))
    # AVX float/double completion.
    for fn, cat in (("permute_pd", "Swizzle"), ("permutevar_ps", "Swizzle"),
                    ("hsub_ps", "Arithmetic"), ("hsub_pd", "Arithmetic"),
                    ("addsub_ps", "Arithmetic"), ("addsub_pd", "Arithmetic"),
                    ("rcp_ps", "Elementary Math Functions"),
                    ("rsqrt_ps", "Elementary Math Functions"),
                    ("ceil_ps", "Special Math Functions"),
                    ("ceil_pd", "Special Math Functions"),
                    ("floor_pd", "Special Math Functions"),
                    ("movehdup_ps", "Move"), ("moveldup_ps", "Move"),
                    ("movedup_pd", "Move"), ("movemask_pd", "Miscellaneous"),
                    ("testz_ps", "Logical"), ("testc_ps", "Logical"),
                    ("testz_pd", "Logical"), ("testc_pd", "Logical"),
                    ("testz_si256", "Logical"), ("testc_si256", "Logical")):
        base, _, sfx = fn.rpartition("_")
        vt = {"ps": "__m256", "pd": "__m256d", "si256": "__m256i"}[sfx]
        ret = "int" if base.startswith(("test", "movemask")) else vt
        arity = 1 if base in ("rcp", "rsqrt", "ceil", "floor", "movehdup",
                              "moveldup", "movedup", "movemask") else 2
        params = [f"{vt} a"] + ([f"{vt} b"] if arity == 2 else [])
        if base.startswith("permutevar"):
            params = [f"{vt} a", "__m256i b"]
        if base == "permute":
            params = [f"{vt} a", "int imm8"]
        out.append(entry(
            f"_mm256_{fn}", ret, params, "AVX", cat, _FP,
            f"AVX 256-bit {base} on {sfx} data."))
    for loader in ("load_pd", "loadu_pd", "load_si256", "lddqu_si256",
                   "store_si256", "stream_ps", "stream_pd", "stream_si256"):
        base, _, sfx = loader.partition("_")
        vt = {"pd": "__m256d", "si256": "__m256i", "ps": "__m256"}[
            sfx.split("_")[-1] if "_" in sfx else sfx]
        is_store = base in ("store", "stream")
        name = f"_mm256_{loader}"
        if name in ("_mm256_load_pd", "_mm256_loadu_pd"):
            continue  # curated
        st = {"__m256": "float", "__m256d": "double",
              "__m256i": "__m256i"}[vt]
        params = ([f"{st}* mem_addr", f"{vt} a"] if is_store
                  else [f"{st} const* mem_addr"])
        out.append(entry(
            name, "void" if is_store else vt, params, "AVX",
            "Store" if is_store else "Load", _FP if "s" != sfx else _INT,
            f"AVX 256-bit {'store' if is_store else 'load'}."))
    for setter in ("set_pd", "setr_ps", "setr_pd", "set_epi32", "setr_epi32",
                   "set_epi16", "set_epi8", "set1_pd"):
        sfx = setter.split("_")[-1]
        vt = {"ps": "__m256", "pd": "__m256d", "epi32": "__m256i",
              "epi16": "__m256i", "epi8": "__m256i"}[sfx]
        count = {"ps": 8, "pd": 4, "epi32": 8, "epi16": 16, "epi8": 32}[sfx]
        st = {"ps": "float", "pd": "double", "epi32": "int",
              "epi16": "short", "epi8": "char"}[sfx]
        if setter == "set1_pd":
            continue  # curated
        params = [f"{st} e{i}" for i in reversed(range(count))]
        out.append(entry(
            f"_mm256_{setter}", vt, params, "AVX", "Set",
            _FP if sfx in ("ps", "pd") else _INT,
            f"Set packed elements with the supplied values."))
    # AVX2 variable shifts, broadcasts and remaining gathers.
    for op in ("sllv", "srlv", "srav"):
        for sfx in ("epi32", "epi64"):
            if op == "srav" and sfx == "epi64":
                continue
            for prefix in ("_mm", "_mm256"):
                vt = "__m128i" if prefix == "_mm" else "__m256i"
                out.append(entry(
                    f"{prefix}_{op}_{sfx}", vt,
                    [f"{vt} a", f"{vt} count"], "AVX2", "Shift", _INT,
                    f"Shift packed {sfx} integers by per-lane counts."))
    for b in ("broadcastb_epi8", "broadcastw_epi16", "broadcastd_epi32",
              "broadcastq_epi64", "broadcastss_ps", "broadcastsd_pd"):
        sfx = b.split("_")[-1]
        for prefix in ("_mm", "_mm256"):
            if prefix == "_mm" and sfx == "pd":
                continue
            src_vt = {"epi8": "__m128i", "epi16": "__m128i",
                      "epi32": "__m128i", "epi64": "__m128i",
                      "ps": "__m128", "pd": "__m128d"}[sfx]
            dst_vt = {"_mm": {"ps": "__m128", "pd": "__m128d"},
                      "_mm256": {"ps": "__m256", "pd": "__m256d"}}[
                prefix].get(sfx, "__m128i" if prefix == "_mm" else "__m256i")
            out.append(entry(
                f"{prefix}_{b}", dst_vt, [f"{src_vt} a"], "AVX2",
                "Swizzle", _FP if sfx in ("ps", "pd") else _INT,
                f"Broadcast the lowest element of a to all lanes of dst."))
    for g in ("i32gather_pd", "i64gather_ps", "i64gather_pd",
              "i64gather_epi32", "i64gather_epi64", "i32gather_epi64"):
        for prefix in ("_mm", "_mm256"):
            sfx = g.split("_")[-1]
            vt = {"ps": "__m128" if prefix == "_mm" else "__m256",
                  "pd": "__m128d" if prefix == "_mm" else "__m256d",
                  "epi32": "__m128i" if prefix == "_mm" else "__m256i",
                  "epi64": "__m128i" if prefix == "_mm" else "__m256i"}[sfx]
            st = {"ps": "float", "pd": "double", "epi32": "int",
                  "epi64": "__int64"}[sfx]
            idx_vt = "__m128i" if (prefix == "_mm" or "i64" in g) else "__m256i"
            out.append(entry(
                f"{prefix}_{g}", vt,
                [f"{st} const* base_addr", f"{idx_vt} vindex",
                 "const int scale"],
                "AVX2", "Load", _FP if sfx in ("ps", "pd") else _INT,
                f"Gather elements from memory at base_addr + vindex*scale."))
    for m in ("maskload_epi32", "maskload_epi64", "maskstore_epi32",
              "maskstore_epi64"):
        for prefix in ("_mm", "_mm256"):
            vt = "__m128i" if prefix == "_mm" else "__m256i"
            is_store = "store" in m
            st = "int" if "epi32" in m else "__int64"
            params = ([f"{st}* mem_addr", f"{vt} mask", f"{vt} a"]
                      if is_store else [f"{st} const* mem_addr", f"{vt} mask"])
            out.append(entry(
                f"{prefix}_{m}", "void" if is_store else vt, params, "AVX2",
                "Store" if is_store else "Load", _INT,
                f"Masked {'store' if is_store else 'load'} of {st} elements."))
    return out


def _avx512_widening() -> list[IntrinsicSpec]:
    """Unsigned compares/min/max, IFMA52, ER and expand/compress loads."""
    out: list[IntrinsicSpec] = []
    # Unsigned integer families (min/max/avg/cmp on epu lanes).
    for op, category in (("min", "Special Math Functions"),
                         ("max", "Special Math Functions"),
                         ("avg", "Probability/Statistics")):
        for lane_bits in (8, 16, 32, 64):
            if op == "avg" and lane_bits > 16:
                continue
            suffix = f"epu{lane_bits}"
            for bits in (128, 256, 512):
                prefix = _PREFIX_BY_BITS[bits]
                vt = _vt(bits, False, lane_bits)
                cpuids = _avx512_cpuids(bits, lane_bits, False, op)
                mk = f"__mmask{max(8, bits // lane_bits)}"
                for variant in ("", "mask", "maskz"):
                    if variant == "":
                        name = f"{prefix}_{op}_{suffix}"
                        params = [f"{vt} a", f"{vt} b"]
                    elif variant == "mask":
                        name = f"{prefix}_mask_{op}_{suffix}"
                        params = [f"{vt} src", f"{mk} k", f"{vt} a",
                                  f"{vt} b"]
                    else:
                        name = f"{prefix}_maskz_{op}_{suffix}"
                        params = [f"{mk} k", f"{vt} a", f"{vt} b"]
                    out.append(entry(
                        name, vt, params, cpuids, category, _INT,
                        f"Compute {op} of packed unsigned {lane_bits}-bit "
                        f"integers."))
    # Unsigned compare-to-mask.
    for lane_bits in (8, 16, 32, 64):
        suffix = f"epu{lane_bits}"
        for bits in (128, 256, 512):
            prefix = _PREFIX_BY_BITS[bits]
            vt = _vt(bits, False, lane_bits)
            mk = f"__mmask{max(8, bits // lane_bits)}"
            cpuids = _avx512_cpuids(bits, lane_bits, False, "cmp")
            for variant in ("", "mask_"):
                kparams = [f"{mk} k1"] if variant else []
                out.append(entry(
                    f"{prefix}_{variant}cmp_{suffix}_mask", mk,
                    kparams + [f"{vt} a", f"{vt} b", "const int imm8"],
                    cpuids, "Compare", _INT,
                    f"Compare packed unsigned {lane_bits}-bit integers by "
                    f"the predicate in imm8."))
    # IFMA52 (52-bit fused integer multiply-add on epi64 lanes).
    for op in ("madd52lo", "madd52hi"):
        for bits in (128, 256, 512):
            prefix = _PREFIX_BY_BITS[bits]
            vt = _vt(bits, False, 64)
            cpuids = ("AVX512IFMA52",) + (("AVX512VL",) if bits < 512
                                          else ())
            mk = f"__mmask8"
            for variant in ("", "mask", "maskz"):
                if variant == "":
                    name = f"{prefix}_{op}_epu64"
                    params = [f"{vt} a", f"{vt} b", f"{vt} c"]
                elif variant == "mask":
                    name = f"{prefix}_mask_{op}_epu64"
                    params = [f"{vt} a", f"{mk} k", f"{vt} b", f"{vt} c"]
                else:
                    name = f"{prefix}_maskz_{op}_epu64"
                    params = [f"{mk} k", f"{vt} a", f"{vt} b", f"{vt} c"]
                out.append(entry(
                    name, vt, params, cpuids, "Arithmetic", _INT,
                    f"Multiply 52-bit unsigned integers and add the "
                    f"{'low' if op.endswith('lo') else 'high'} 52 product "
                    f"bits to the accumulator."))
    # ER approximations (512-bit only).
    for op in ("rcp28", "rsqrt28", "exp2a23"):
        for suffix in ("ps", "pd"):
            if op == "exp2a23" and suffix == "pd":
                continue
            vt = _vt(512, True, 32 if suffix == "ps" else 64)
            mk = f"__mmask{512 // (32 if suffix == 'ps' else 64)}"
            for variant in ("", "mask", "maskz"):
                if variant == "":
                    name = f"_mm512_{op}_{suffix}"
                    params = [f"{vt} a"]
                elif variant == "mask":
                    name = f"_mm512_mask_{op}_{suffix}"
                    params = [f"{vt} src", f"{mk} k", f"{vt} a"]
                else:
                    name = f"_mm512_maskz_{op}_{suffix}"
                    params = [f"{mk} k", f"{vt} a"]
                out.append(entry(
                    name, vt, params, ("AVX512ER",),
                    "Elementary Math Functions", _FP,
                    f"Compute {op} with 28-bit (2^-23) accuracy."))
    # Expand-load / compress-store (F + VL).
    for suffix, lane_bits, is_float in (("ps", 32, True), ("pd", 64, True),
                                        ("epi32", 32, False),
                                        ("epi64", 64, False)):
        for bits in (128, 256, 512):
            prefix = _PREFIX_BY_BITS[bits]
            vt = _vt(bits, is_float, lane_bits)
            mk = f"__mmask{max(8, bits // lane_bits)}"
            cpuids = _avx512_cpuids(bits, lane_bits, is_float, "expand")
            out.append(entry(
                f"{prefix}_mask_expandloadu_{suffix}", vt,
                [f"{vt} src", f"{mk} k", "void const* mem_addr"],
                cpuids, "Load", _FP if is_float else _INT,
                "Load contiguous elements and expand them into the lanes "
                "selected by k."))
            out.append(entry(
                f"{prefix}_mask_compressstoreu_{suffix}", "void",
                ["void* base_addr", f"{mk} k", f"{vt} a"],
                cpuids, "Store", _FP if is_float else _INT,
                "Compress the lanes selected by k and store them "
                "contiguously."))
    # Broadcast family.
    for src, suffix in (("b", "epi8"), ("w", "epi16"), ("d", "epi32"),
                        ("q", "epi64")):
        for bits in (128, 256, 512):
            prefix = _PREFIX_BY_BITS[bits]
            vt = _vt(bits, False, int(suffix[3:]))
            lane_bits = int(suffix[3:])
            mk = f"__mmask{max(8, bits // lane_bits)}"
            cpuids = _avx512_cpuids(bits, lane_bits, False, "broadcast")
            for variant in ("mask", "maskz"):
                kpre = ([f"{vt} src", f"{mk} k"] if variant == "mask"
                        else [f"{mk} k"])
                out.append(entry(
                    f"{prefix}_{variant}_broadcast{src}_{suffix}", vt,
                    kpre + ["__m128i a"], cpuids, "Swizzle", _INT,
                    f"Broadcast the lowest {lane_bits}-bit lane under "
                    f"writemask."))
    return out


def _knc_widening() -> list[IntrinsicSpec]:
    """KNC mask ops, reductions and remaining exotics."""
    out: list[IntrinsicSpec] = []
    for mop in ("kand", "kandn", "kor", "kxor", "kxnor", "knot", "kmov",
                "kswapb", "kortestz", "kortestc", "kandnr", "kmerge2l1h",
                "kmerge2l1l", "kmovlhb"):
        arity = 1 if mop in ("knot", "kmov") else 2
        params = [f"__mmask16 {n}" for n in ("a", "b")[:arity]]
        ret = "int" if "test" in mop else "__mmask16"
        out.append(entry(
            f"_mm512_{mop}", ret, params, "KNCNI", "Mask", "Mask",
            f"KNC mask operation {mop}."))
    for red in ("reduce_gmin", "reduce_gmax", "reduce_mul", "reduce_or",
                "reduce_and"):
        for suffix in ("ps", "pd", "epi32", "epi64"):
            is_float = suffix in ("ps", "pd")
            if red in ("reduce_or", "reduce_and") and is_float:
                continue
            st = ("float" if suffix == "ps" else "double") if is_float \
                else ("int" if suffix == "epi32" else "__int64")
            vt = _vt(512, is_float, 32 if suffix in ("ps", "epi32") else 64)
            name = f"_mm512_knc{red}_{suffix}"
            out.append(entry(
                name, st, [f"{vt} a"], "KNCNI", "Arithmetic",
                _FP if is_float else _INT,
                f"KNC {red} reduction.", instr="sequence"))
    for op in ("getmant", "roundfxpnt", "cvtfxpnt", "permutevar",
               "mulhi", "mulhi_epu", "sbb", "adc", "subsetb", "addsetc",
               "addsets", "subrsetb"):
        for suffix in ("epi32",):
            vt = "__m512i"
            params = [f"{vt} a", f"{vt} b"]
            out.append(entry(
                f"_mm512_knc_{op}_{suffix}", vt, params, "KNCNI",
                "Arithmetic", _INT, f"KNC integer operation {op}."))
            out.append(entry(
                f"_mm512_mask_knc_{op}_{suffix}", vt,
                [f"{vt} src", "__mmask16 k"] + params, "KNCNI",
                "Arithmetic", _INT, f"KNC integer operation {op} under "
                f"writemask."))
    return out


def _svml_widening() -> list[IntrinsicSpec]:
    """Complex math, pi-scaled trig and integer divrem completions."""
    out: list[IntrinsicSpec] = []
    for fn in ("cexp", "clog", "csqrt"):
        for bits in (128, 256, 512):
            prefix = _PREFIX_BY_BITS[bits]
            vt = _vt(bits, True, 32)
            out.append(entry(
                f"{prefix}_{fn}_ps", vt, [f"{vt} a"],
                ("SVML",) if bits < 512 else ("SVML", "AVX512F"),
                "Elementary Math Functions", _FP,
                f"Compute {fn} of packed interleaved complex floats.",
                instr="sequence"))
    for fn in ("sinpi", "cospi", "tanpi", "asinpi", "acospi", "atanpi",
               "atan2pi"):
        for suffix, lane_bits in (("ps", 32), ("pd", 64)):
            for bits in (128, 256, 512):
                prefix = _PREFIX_BY_BITS[bits]
                vt = _vt(bits, True, lane_bits)
                arity = 2 if fn == "atan2pi" else 1
                params = [f"{vt} {n}" for n in ("a", "b")[:arity]]
                out.append(entry(
                    f"{prefix}_{fn}_{suffix}", vt, params,
                    ("SVML",) if bits < 512 else ("SVML", "AVX512F"),
                    "Trigonometry", _FP,
                    f"Compute {fn} (x scaled by pi).", instr="sequence"))
    for fn in ("idivrem", "udivrem"):
        sfx = "epi32" if fn == "idivrem" else "epu32"
        for bits in (128, 256, 512):
            prefix = _PREFIX_BY_BITS[bits]
            vt = {128: "__m128i", 256: "__m256i", 512: "__m512i"}[bits]
            out.append(entry(
                f"{prefix}_{fn}_{sfx}", vt,
                [f"{vt}* mem_addr", f"{vt} a", f"{vt} b"],
                ("SVML",) if bits < 512 else ("SVML", "AVX512F"),
                "Arithmetic", _INT,
                "Divide packed integers, return quotients and store "
                "remainders.", instr="sequence"))
    for prefix, vt in (("_mm", "__m128"), ("_mm512", "__m512")):
        out.append(entry(
            f"{prefix}_pow_ps", vt, [f"{vt} a", f"{vt} b"],
            ("SVML",) if prefix == "_mm" else ("SVML", "AVX512F"),
            "Elementary Math Functions", _FP,
            "Compute a raised to the power b.", instr="sequence"))
    for prefix, vt in (("_mm", "__m128d"), ("_mm256", "__m256d"),
                       ("_mm512", "__m512d")):
        out.append(entry(
            f"{prefix}_pow_pd", vt, [f"{vt} a", f"{vt} b"],
            ("SVML",) if prefix != "_mm512" else ("SVML", "AVX512F"),
            "Elementary Math Functions", _FP,
            "Compute a raised to the power b.", instr="sequence"))
    return out


def _avx2_widening() -> list[IntrinsicSpec]:
    """Masked gathers, epu min/max and remaining AVX2 members."""
    out: list[IntrinsicSpec] = []
    for g in ("i32gather_ps", "i32gather_pd", "i64gather_ps",
              "i64gather_pd", "i32gather_epi32", "i32gather_epi64",
              "i64gather_epi32", "i64gather_epi64"):
        sfx = g.split("_")[-1]
        for prefix in ("_mm", "_mm256"):
            vt = {"ps": "__m128" if prefix == "_mm" else "__m256",
                  "pd": "__m128d" if prefix == "_mm" else "__m256d",
                  "epi32": "__m128i" if prefix == "_mm" else "__m256i",
                  "epi64": "__m128i" if prefix == "_mm" else "__m256i"}[sfx]
            st = {"ps": "float", "pd": "double", "epi32": "int",
                  "epi64": "__int64"}[sfx]
            idx_vt = "__m128i" if (prefix == "_mm" or "i64" in g) \
                else "__m256i"
            out.append(entry(
                f"{prefix}_mask_{g}", vt,
                [f"{vt} src", f"{st} const* base_addr", f"{idx_vt} vindex",
                 f"{vt} mask", "const int scale"],
                "AVX2", "Load", _FP if sfx in ("ps", "pd") else _INT,
                "Masked gather from memory at base_addr + vindex*scale."))
    for mm in ("min", "max"):
        for sfx in ("epu8", "epu16", "epu32", "epi8", "epi64"):
            if sfx == "epi64":
                continue  # not in AVX2
            out.append(entry(
                f"_mm256_{mm}_{sfx}", "__m256i", ["__m256i a", "__m256i b"],
                "AVX2", "Special Math Functions", _INT,
                f"{mm} of packed {sfx} integers."))
    out += [
        entry("_mm256_mul_epu32", "__m256i", ["__m256i a", "__m256i b"],
              "AVX2", "Arithmetic", _INT,
              "Multiply the low unsigned 32-bit integers of each 64-bit "
              "element."),
        entry("_mm256_mul_epi32_w", "__m256i", ["__m256i a", "__m256i b"],
              "AVX2", "Arithmetic", _INT, "placeholder"),
        entry("_mm256_abs_epi32", "__m256i", ["__m256i a"],
              "AVX2", "Special Math Functions", _INT,
              "Absolute value of packed 32-bit integers."),
        entry("_mm256_sign_epi32", "__m256i", ["__m256i a", "__m256i b"],
              "AVX2", "Arithmetic", _INT,
              "Conditionally negate 32-bit integers by the sign of b."),
        entry("_mm256_blend_epi16", "__m256i",
              ["__m256i a", "__m256i b", "const int imm8"],
              "AVX2", "Swizzle", _INT, "Blend 16-bit integers by imm8."),
        entry("_mm256_blend_epi32", "__m256i",
              ["__m256i a", "__m256i b", "const int imm8"],
              "AVX2", "Swizzle", _INT, "Blend 32-bit integers by imm8."),
        entry("_mm_blend_epi32", "__m128i",
              ["__m128i a", "__m128i b", "const int imm8"],
              "AVX2", "Swizzle", _INT, "Blend 32-bit integers by imm8."),
        entry("_mm256_broadcastsi128_si256", "__m256i", ["__m128i a"],
              "AVX2", "Swizzle", _INT,
              "Broadcast 128 bits of integer data to both lanes."),
        entry("_mm256_stream_load_si256", "__m256i",
              ["__m256i* mem_addr"], "AVX2", "Load", _INT,
              "Load 256 bits with a non-temporal hint."),
        entry("_mm256_alignr_epi8", "__m256i",
              ["__m256i a", "__m256i b", "const int imm8"],
              "AVX2", "Miscellaneous", _INT,
              "Concatenate and shift right by imm8 bytes, per lane."),
        entry("_mm256_avg_epu16", "__m256i", ["__m256i a", "__m256i b"],
              "AVX2", "Probability/Statistics", _INT,
              "Average packed unsigned 16-bit integers with rounding."),
        entry("_mm256_hsub_epi16", "__m256i", ["__m256i a", "__m256i b"],
              "AVX2", "Arithmetic", _INT,
              "Horizontally subtract adjacent 16-bit pairs."),
        entry("_mm256_hsub_epi32", "__m256i", ["__m256i a", "__m256i b"],
              "AVX2", "Arithmetic", _INT,
              "Horizontally subtract adjacent 32-bit pairs."),
        entry("_mm256_hadds_epi16", "__m256i", ["__m256i a", "__m256i b"],
              "AVX2", "Arithmetic", _INT,
              "Horizontally add adjacent 16-bit pairs with saturation."),
        entry("_mm256_hsubs_epi16", "__m256i", ["__m256i a", "__m256i b"],
              "AVX2", "Arithmetic", _INT,
              "Horizontally subtract adjacent 16-bit pairs with "
              "saturation."),
        entry("_mm256_mpsadbw_epu8", "__m256i",
              ["__m256i a", "__m256i b", "const int imm8"],
              "AVX2", "Miscellaneous", _INT,
              "Eight offset sums of absolute differences, per lane."),
        entry("_mm256_mulhrs_epi16", "__m256i", ["__m256i a", "__m256i b"],
              "AVX2", "Arithmetic", _INT,
              "Multiply 16-bit integers, round and scale."),
        entry("_mm256_cmpgt_epi16", "__m256i", ["__m256i a", "__m256i b"],
              "AVX2", "Compare", _INT,
              "Compare packed 16-bit integers for greater-than."),
        entry("_mm256_cmpgt_epi64", "__m256i", ["__m256i a", "__m256i b"],
              "AVX2", "Compare", _INT,
              "Compare packed 64-bit integers for greater-than."),
        entry("_mm256_cmpeq_epi16", "__m256i", ["__m256i a", "__m256i b"],
              "AVX2", "Compare", _INT,
              "Compare packed 16-bit integers for equality."),
        entry("_mm256_cmpeq_epi64", "__m256i", ["__m256i a", "__m256i b"],
              "AVX2", "Compare", _INT,
              "Compare packed 64-bit integers for equality."),
        entry("_mm256_sll_epi32", "__m256i", ["__m256i a", "__m128i count"],
              "AVX2", "Shift", _INT, "Shift 32-bit integers left."),
        entry("_mm256_srl_epi32", "__m256i", ["__m256i a", "__m128i count"],
              "AVX2", "Shift", _INT, "Shift 32-bit integers right."),
        entry("_mm256_sra_epi32", "__m256i", ["__m256i a", "__m128i count"],
              "AVX2", "Shift", _INT,
              "Arithmetic right shift of 32-bit integers."),
        entry("_mm256_sll_epi16", "__m256i", ["__m256i a", "__m128i count"],
              "AVX2", "Shift", _INT, "Shift 16-bit integers left."),
        entry("_mm256_srl_epi16", "__m256i", ["__m256i a", "__m128i count"],
              "AVX2", "Shift", _INT, "Shift 16-bit integers right."),
        entry("_mm256_sll_epi64", "__m256i", ["__m256i a", "__m128i count"],
              "AVX2", "Shift", _INT, "Shift 64-bit integers left."),
        entry("_mm256_srl_epi64", "__m256i", ["__m256i a", "__m128i count"],
              "AVX2", "Shift", _INT, "Shift 64-bit integers right."),
        entry("_mm256_cvtepi8_epi32", "__m256i", ["__m128i a"],
              "AVX2", "Convert", _INT,
              "Sign extend packed 8-bit integers to 32 bits."),
        entry("_mm256_cvtepi8_epi64", "__m256i", ["__m128i a"],
              "AVX2", "Convert", _INT,
              "Sign extend packed 8-bit integers to 64 bits."),
        entry("_mm256_cvtepi16_epi64", "__m256i", ["__m128i a"],
              "AVX2", "Convert", _INT,
              "Sign extend packed 16-bit integers to 64 bits."),
        entry("_mm256_cvtepi32_epi64", "__m256i", ["__m128i a"],
              "AVX2", "Convert", _INT,
              "Sign extend packed 32-bit integers to 64 bits."),
        entry("_mm256_cvtepu16_epi32", "__m256i", ["__m128i a"],
              "AVX2", "Convert", _INT,
              "Zero extend packed 16-bit integers to 32 bits."),
        entry("_mm256_cvtepu32_epi64", "__m256i", ["__m128i a"],
              "AVX2", "Convert", _INT,
              "Zero extend packed 32-bit integers to 64 bits."),
    ]
    out = [e for e in out if e.description != "placeholder"]
    return out


def family_entries() -> list[IntrinsicSpec]:
    """All systematically generated entries (deterministic order)."""
    avx512 = _mark_knc_shared(_avx512_family() + _avx512_widening())
    from repro.spec.catalog.extra import extra_entries

    out: list[IntrinsicSpec] = []
    out += _mmx_family()
    out += _legacy_scalar_family()
    out += _legacy_fill()
    out += extra_entries()
    out += _avx2_widening()
    out += avx512
    out += _knc_only()
    out += _knc_widening()
    out += _svml_family()
    out += _svml_widening()
    return out
