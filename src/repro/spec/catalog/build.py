"""Helpers for authoring catalog entries compactly."""

from __future__ import annotations

from repro.spec.model import Instruction, IntrinsicSpec, Parameter


def _parse_param(text: str) -> Parameter:
    """Parse ``"__m256d a"`` or ``"float const* mem_addr"`` into a Parameter."""
    type_part, _, var = text.rpartition(" ")
    return Parameter(varname=var, type=type_part.strip())


def entry(name: str, ret: str, params: list[str] | tuple[str, ...],
          cpuid: str | tuple[str, ...], category: str, itype: str | tuple[str, ...],
          desc: str, op: str = "", instr: str | tuple[str, str] | None = None,
          header: str = "immintrin.h") -> IntrinsicSpec:
    """Build one catalog entry from compact notation."""
    cpuids = (cpuid,) if isinstance(cpuid, str) else tuple(cpuid)
    itypes = (itype,) if isinstance(itype, str) else tuple(itype)
    itypes = tuple(t for t in itypes if t)
    if instr is None:
        instructions: tuple[Instruction, ...] = ()
    elif isinstance(instr, str):
        instructions = (Instruction(name=instr),)
    else:
        instructions = (Instruction(name=instr[0], form=instr[1]),)
    return IntrinsicSpec(
        name=name,
        rettype=ret,
        params=tuple(_parse_param(p) for p in params),
        cpuids=cpuids,
        category=category,
        types=itypes,
        description=desc,
        operation=op,
        instructions=instructions,
        header=header,
    )


def for_lanes_pseudocode(total_bits: int, lane_bits: int, body: str,
                         zero_upper: bool = False) -> str:
    """Emit Intel-guide-style ``FOR j := 0 to N`` pseudocode.

    ``body`` uses ``i`` for the running bit offset, e.g.
    ``"dst[i+{hi}:i] := a[i+{hi}:i] + b[i+{hi}:i]"`` — the ``{hi}``
    placeholder is replaced with ``lane_bits - 1``.
    """
    lanes = total_bits // lane_bits
    hi = lane_bits - 1
    text = (
        f"FOR j := 0 to {lanes - 1}\n"
        f"\ti := j*{lane_bits}\n"
        f"\t{body.format(hi=hi, lane=lane_bits)}\n"
        f"ENDFOR"
    )
    if zero_upper:
        text += f"\ndst[MAX:{total_bits}] := 0"
    return text


def lanewise(total_bits: int, lane_bits: int, c_op: str) -> str:
    """Pseudocode for a plain lane-wise binary operation."""
    return for_lanes_pseudocode(
        total_bits, lane_bits,
        "dst[i+{hi}:i] := a[i+{hi}:i] " + c_op + " b[i+{hi}:i]",
        zero_upper=total_bits >= 256,
    )
