"""The intrinsics catalog: curated core + systematic families.

``all_entries(version)`` is the single source of truth the XML synthesizer
serializes and the census counts.  The curated core (:mod:`core`) carries
hand-written, bit-accurate pseudocode and is fully executable by the SIMD
machine in :mod:`repro.simd`; the families (:mod:`families`) reconstruct
the combinatorial op x type x mask structure of the vendor set so the
eDSL generator is exercised at realistic scale (Table 1b).
"""

from repro.spec.catalog.build import entry, for_lanes_pseudocode
from repro.spec.catalog.core import core_entries
from repro.spec.catalog.families import family_entries


def all_entries(version: str = "3.3.16"):
    """Every catalog entry visible in the given spec version."""
    from repro.spec.versions import version_filter

    entries = list(core_entries()) + list(family_entries())
    flt = version_filter(version)
    seen: set[str] = set()
    out = []
    for e in entries:
        if e.name in seen:
            continue
        seen.add(e.name)
        if flt(e):
            out.append(e)
    return out


__all__ = ["all_entries", "entry", "for_lanes_pseudocode"]
