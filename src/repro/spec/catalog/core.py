"""Curated intrinsics: the executable core of the catalog.

Every entry produced here has bit-accurate executable semantics in
:mod:`repro.simd.semantics` (a test enforces the correspondence), and the
generated C for each is a real Intel intrinsic invocation, so staged
kernels using these run identically on the simulated SIMD machine and —
where the host supports the ISA — through the gcc/clang native backend.
"""

from __future__ import annotations

from repro.spec.catalog.build import entry, for_lanes_pseudocode, lanewise
from repro.spec.model import IntrinsicSpec

_FP = "Floating Point"
_INT = "Integer"


def _vec_w(prefix: str) -> int:
    return {"_mm": 128, "_mm256": 256, "_mm512": 512}[prefix]


def _float_suite(prefix: str, suffix: str, vt: str, st: str, lane_bits: int,
                 cpuid: str) -> list[IntrinsicSpec]:
    """The standard float arithmetic/logic/memory suite for one width."""
    w = _vec_w(prefix)
    lanes = w // lane_bits
    elem = "single" if lane_bits == 32 else "double"
    out: list[IntrinsicSpec] = []

    def mk(op_name: str, c_op: str, category: str = "Arithmetic") -> None:
        out.append(entry(
            f"{prefix}_{op_name}_{suffix}", vt, [f"{vt} a", f"{vt} b"],
            cpuid, category, _FP,
            f"{op_name.capitalize()} packed {elem}-precision ({lane_bits}-bit) "
            f"floating-point elements in a and b, and store the results in dst.",
            op=lanewise(w, lane_bits, c_op),
            instr=(f"v{op_name}{'ps' if lane_bits == 32 else 'pd'}", "vec, vec, vec"),
        ))

    mk("add", "+")
    mk("sub", "-")
    mk("mul", "*")
    mk("div", "/")
    for m in ("min", "max"):
        out.append(entry(
            f"{prefix}_{m}_{suffix}", vt, [f"{vt} a", f"{vt} b"],
            cpuid, "Special Math Functions", _FP,
            f"Compare packed {elem}-precision elements in a and b and store "
            f"packed {m}imum values in dst.",
            op=for_lanes_pseudocode(
                w, lane_bits,
                "dst[i+{hi}:i] := " + m.upper() + "(a[i+{hi}:i], b[i+{hi}:i])"),
        ))
    out.append(entry(
        f"{prefix}_sqrt_{suffix}", vt, [f"{vt} a"], cpuid,
        "Elementary Math Functions", _FP,
        f"Compute the square root of packed {elem}-precision elements in a.",
        op=for_lanes_pseudocode(w, lane_bits, "dst[i+{hi}:i] := SQRT(a[i+{hi}:i])"),
    ))
    for lop, sym in (("and", "AND"), ("or", "OR"), ("xor", "XOR")):
        out.append(entry(
            f"{prefix}_{lop}_{suffix}", vt, [f"{vt} a", f"{vt} b"],
            cpuid, "Logical", _FP,
            f"Compute the bitwise {sym} of packed {elem}-precision elements "
            f"in a and b.",
            op=f"dst[{w - 1}:0] := (a[{w - 1}:0] {sym} b[{w - 1}:0])",
        ))
    out.append(entry(
        f"{prefix}_andnot_{suffix}", vt, [f"{vt} a", f"{vt} b"],
        cpuid, "Logical", _FP,
        f"Compute the bitwise NOT of a and then AND with b.",
        op=f"dst[{w - 1}:0] := ((NOT a[{w - 1}:0]) AND b[{w - 1}:0])",
    ))
    # Memory + set.
    out.append(entry(
        f"{prefix}_loadu_{suffix}", vt, [f"{st} const* mem_addr"],
        cpuid, "Load", _FP,
        f"Load {lanes} {elem}-precision elements from unaligned memory into dst.",
        op=f"dst[{w - 1}:0] := MEM[mem_addr+{w - 1}:mem_addr]",
    ))
    out.append(entry(
        f"{prefix}_load_{suffix}", vt, [f"{st} const* mem_addr"],
        cpuid, "Load", _FP,
        f"Load {lanes} {elem}-precision elements from {w // 8}-byte aligned "
        f"memory into dst.",
        op=f"dst[{w - 1}:0] := MEM[mem_addr+{w - 1}:mem_addr]",
    ))
    out.append(entry(
        f"{prefix}_storeu_{suffix}", "void",
        [f"{st}* mem_addr", f"{vt} a"], cpuid, "Store", _FP,
        f"Store {lanes} {elem}-precision elements from a into unaligned memory.",
        op=f"MEM[mem_addr+{w - 1}:mem_addr] := a[{w - 1}:0]",
    ))
    out.append(entry(
        f"{prefix}_store_{suffix}", "void",
        [f"{st}* mem_addr", f"{vt} a"], cpuid, "Store", _FP,
        f"Store {lanes} {elem}-precision elements from a into aligned memory.",
        op=f"MEM[mem_addr+{w - 1}:mem_addr] := a[{w - 1}:0]",
    ))
    out.append(entry(
        f"{prefix}_set1_{suffix}", vt, [f"{st} a"], cpuid, "Set", _FP,
        f"Broadcast {elem}-precision element a to all lanes of dst.",
        op=for_lanes_pseudocode(w, lane_bits, "dst[i+{hi}:i] := a[{hi}:0]"),
        instr="sequence",
    ))
    out.append(entry(
        f"{prefix}_setzero_{suffix}", vt, [], cpuid, "Set", _FP,
        f"Return vector of type {vt} with all elements set to zero.",
        op=f"dst[MAX:0] := 0",
        instr=("vxorps" if lane_bits == 32 else "vxorpd", "vec, vec, vec"),
    ))
    out.append(entry(
        f"{prefix}_unpacklo_{suffix}", vt, [f"{vt} a", f"{vt} b"],
        cpuid, "Swizzle", _FP,
        f"Unpack and interleave {elem}-precision elements from the low half "
        f"of each 128-bit lane in a and b.",
    ))
    out.append(entry(
        f"{prefix}_unpackhi_{suffix}", vt, [f"{vt} a", f"{vt} b"],
        cpuid, "Swizzle", _FP,
        f"Unpack and interleave {elem}-precision elements from the high half "
        f"of each 128-bit lane in a and b.",
    ))
    return out


def _fma_suite() -> list[IntrinsicSpec]:
    """All 32 FMA intrinsics (Table 1b: FMA = 32)."""
    out: list[IntrinsicSpec] = []
    kinds = (
        ("fmadd", "(a*b) + c"),
        ("fmsub", "(a*b) - c"),
        ("fnmadd", "-(a*b) + c"),
        ("fnmsub", "-(a*b) - c"),
        ("fmaddsub", "alternately (a*b) - c and (a*b) + c"),
        ("fmsubadd", "alternately (a*b) + c and (a*b) - c"),
    )
    for kind, formula in kinds:
        for prefix in ("_mm", "_mm256"):
            w = _vec_w(prefix)
            for suffix, vt, lane_bits in (
                ("ps", "__m128" if w == 128 else "__m256", 32),
                ("pd", "__m128d" if w == 128 else "__m256d", 64),
            ):
                out.append(entry(
                    f"{prefix}_{kind}_{suffix}", vt,
                    [f"{vt} a", f"{vt} b", f"{vt} c"],
                    "FMA", "Arithmetic", _FP,
                    f"Multiply packed elements in a and b, and compute "
                    f"{formula}, storing the result in dst.",
                    op=for_lanes_pseudocode(
                        w, lane_bits,
                        "dst[i+{hi}:i] := fused " + formula),
                    instr=(f"v{kind}213{suffix}", "vec, vec, vec"),
                ))
        if kind in ("fmadd", "fmsub", "fnmadd", "fnmsub"):
            for suffix, vt in (("ss", "__m128"), ("sd", "__m128d")):
                out.append(entry(
                    f"_mm_{kind}_{suffix}", vt,
                    [f"{vt} a", f"{vt} b", f"{vt} c"],
                    "FMA", "Arithmetic", _FP,
                    f"Compute {formula} on the lowest element, copy upper "
                    f"elements from a.",
                ))
    return out


def _sse_extras() -> list[IntrinsicSpec]:
    out = [
        entry("_mm_shuffle_ps", "__m128", ["__m128 a", "__m128 b", "unsigned int imm8"],
              "SSE", "Swizzle", _FP,
              "Shuffle single-precision elements in a and b using the control "
              "in imm8: low two lanes select from a, high two from b.",
              op=("dst[31:0] := SELECT4(a, imm8[1:0])\n"
                  "dst[63:32] := SELECT4(a, imm8[3:2])\n"
                  "dst[95:64] := SELECT4(b, imm8[5:4])\n"
                  "dst[127:96] := SELECT4(b, imm8[7:6])"),
              instr=("shufps", "xmm, xmm, imm8")),
        entry("_mm_movehl_ps", "__m128", ["__m128 a", "__m128 b"],
              "SSE", "Move", _FP,
              "Move the upper 2 single-precision elements of b to the lower 2 "
              "of dst; upper 2 from a."),
        entry("_mm_movelh_ps", "__m128", ["__m128 a", "__m128 b"],
              "SSE", "Move", _FP,
              "Move the lower 2 single-precision elements of b to the upper 2 "
              "of dst; lower 2 from a."),
        entry("_mm_cvtss_f32", "float", ["__m128 a"],
              "SSE", "Convert", _FP,
              "Copy the lowest single-precision element of a to dst.",
              op="dst[31:0] := a[31:0]"),
        entry("_mm_add_ss", "__m128", ["__m128 a", "__m128 b"],
              "SSE", "Arithmetic", _FP,
              "Add the lowest single-precision elements of a and b; copy the "
              "upper 3 from a."),
        entry("_mm_mul_ss", "__m128", ["__m128 a", "__m128 b"],
              "SSE", "Arithmetic", _FP,
              "Multiply the lowest single-precision elements of a and b."),
        entry("_mm_movemask_ps", "int", ["__m128 a"],
              "SSE", "Miscellaneous", _FP,
              "Set each bit of dst to the sign bit of the corresponding "
              "single-precision element of a."),
        entry("_mm_set_ps", "__m128",
              ["float e3", "float e2", "float e1", "float e0"],
              "SSE", "Set", _FP,
              "Set packed single-precision elements with the supplied values "
              "(e0 is the lowest lane)."),
        entry("_mm_rcp_ps", "__m128", ["__m128 a"],
              "SSE", "Elementary Math Functions", _FP,
              "Approximate reciprocal of packed single-precision elements."),
        entry("_mm_rsqrt_ps", "__m128", ["__m128 a"],
              "SSE", "Elementary Math Functions", _FP,
              "Approximate reciprocal square root of packed single-precision "
              "elements."),
    ]
    for cmp_name, sym in (("cmpeq", "=="), ("cmplt", "<"), ("cmple", "<="),
                          ("cmpgt", ">"), ("cmpge", ">=")):
        out.append(entry(
            f"_mm_{cmp_name}_ps", "__m128", ["__m128 a", "__m128 b"],
            "SSE", "Compare", _FP,
            f"Compare packed single-precision elements for {cmp_name[3:]}; "
            f"lanes are set to all ones when the comparison holds.",
            op=for_lanes_pseudocode(
                128, 32,
                "dst[i+{hi}:i] := (a[i+{hi}:i] " + sym
                + " b[i+{hi}:i]) ? 0xFFFFFFFF : 0"),
        ))
    return out


def _sse2_int_suite() -> list[IntrinsicSpec]:
    out: list[IntrinsicSpec] = []
    for bits in (8, 16, 32, 64):
        for op_name, c_op in (("add", "+"), ("sub", "-")):
            out.append(entry(
                f"_mm_{op_name}_epi{bits}", "__m128i",
                ["__m128i a", "__m128i b"], "SSE2", "Arithmetic", _INT,
                f"{op_name.capitalize()} packed {bits}-bit integers in a and b.",
                op=lanewise(128, bits, c_op),
                instr=(f"p{op_name}{'bwdq'[(8, 16, 32, 64).index(bits)]}",
                       "xmm, xmm"),
            ))
    for sfx, what in (("epi8", "signed 8-bit"), ("epi16", "signed 16-bit"),
                      ("epu8", "unsigned 8-bit"), ("epu16", "unsigned 16-bit")):
        for op_name in ("adds", "subs"):
            out.append(entry(
                f"_mm_{op_name}_{sfx}", "__m128i", ["__m128i a", "__m128i b"],
                "SSE2", "Arithmetic", _INT,
                f"{'Add' if op_name == 'adds' else 'Subtract'} packed {what} "
                f"integers using saturation.",
            ))
    out += [
        entry("_mm_mullo_epi16", "__m128i", ["__m128i a", "__m128i b"],
              "SSE2", "Arithmetic", _INT,
              "Multiply packed 16-bit integers, store the low 16 bits of each "
              "32-bit product."),
        entry("_mm_mulhi_epi16", "__m128i", ["__m128i a", "__m128i b"],
              "SSE2", "Arithmetic", _INT,
              "Multiply packed signed 16-bit integers, store the high 16 bits "
              "of each 32-bit product."),
        entry("_mm_madd_epi16", "__m128i", ["__m128i a", "__m128i b"],
              "SSE2", "Arithmetic", _INT,
              "Multiply packed signed 16-bit integers, horizontally add "
              "adjacent 32-bit products.",
              op=for_lanes_pseudocode(
                  128, 32,
                  "dst[i+31:i] := SignExtend32(a[i+31:i+16]*b[i+31:i+16]) + "
                  "SignExtend32(a[i+15:i]*b[i+15:i])")),
        entry("_mm_avg_epu8", "__m128i", ["__m128i a", "__m128i b"],
              "SSE2", "Probability/Statistics", _INT,
              "Average packed unsigned 8-bit integers in a and b with rounding.",
              op=for_lanes_pseudocode(
                  128, 8, "dst[i+{hi}:i] := (a[i+{hi}:i] + b[i+{hi}:i] + 1) >> 1")),
        entry("_mm_avg_epu16", "__m128i", ["__m128i a", "__m128i b"],
              "SSE2", "Probability/Statistics", _INT,
              "Average packed unsigned 16-bit integers in a and b with rounding."),
        entry("_mm_min_epi16", "__m128i", ["__m128i a", "__m128i b"],
              "SSE2", "Special Math Functions", _INT,
              "Minimum of packed signed 16-bit integers."),
        entry("_mm_max_epi16", "__m128i", ["__m128i a", "__m128i b"],
              "SSE2", "Special Math Functions", _INT,
              "Maximum of packed signed 16-bit integers."),
        entry("_mm_min_epu8", "__m128i", ["__m128i a", "__m128i b"],
              "SSE2", "Special Math Functions", _INT,
              "Minimum of packed unsigned 8-bit integers."),
        entry("_mm_max_epu8", "__m128i", ["__m128i a", "__m128i b"],
              "SSE2", "Special Math Functions", _INT,
              "Maximum of packed unsigned 8-bit integers."),
        entry("_mm_sad_epu8", "__m128i", ["__m128i a", "__m128i b"],
              "SSE2", "Miscellaneous", _INT,
              "Sum of absolute differences of packed unsigned 8-bit integers; "
              "two 16-bit partial sums in lanes 0 and 4 of 64-bit results."),
        entry("_mm_and_si128", "__m128i", ["__m128i a", "__m128i b"],
              "SSE2", "Logical", _INT, "Bitwise AND of 128 bits.",
              op="dst[127:0] := (a[127:0] AND b[127:0])"),
        entry("_mm_or_si128", "__m128i", ["__m128i a", "__m128i b"],
              "SSE2", "Logical", _INT, "Bitwise OR of 128 bits."),
        entry("_mm_xor_si128", "__m128i", ["__m128i a", "__m128i b"],
              "SSE2", "Logical", _INT, "Bitwise XOR of 128 bits."),
        entry("_mm_andnot_si128", "__m128i", ["__m128i a", "__m128i b"],
              "SSE2", "Logical", _INT,
              "Bitwise NOT of a then AND with b."),
        entry("_mm_loadu_si128", "__m128i", ["__m128i const* mem_addr"],
              "SSE2", "Load", _INT,
              "Load 128 bits of integer data from unaligned memory.",
              op="dst[127:0] := MEM[mem_addr+127:mem_addr]"),
        entry("_mm_load_si128", "__m128i", ["__m128i const* mem_addr"],
              "SSE2", "Load", _INT,
              "Load 128 bits of integer data from aligned memory."),
        entry("_mm_storeu_si128", "void", ["__m128i* mem_addr", "__m128i a"],
              "SSE2", "Store", _INT,
              "Store 128 bits of integer data to unaligned memory.",
              op="MEM[mem_addr+127:mem_addr] := a[127:0]"),
        entry("_mm_store_si128", "void", ["__m128i* mem_addr", "__m128i a"],
              "SSE2", "Store", _INT,
              "Store 128 bits of integer data to aligned memory."),
        entry("_mm_setzero_si128", "__m128i", [], "SSE2", "Set", _INT,
              "Return a vector with all bits zeroed.", op="dst[MAX:0] := 0"),
        entry("_mm_movemask_epi8", "int", ["__m128i a"],
              "SSE2", "Miscellaneous", _INT,
              "Create a 16-bit mask from the most significant bits of the "
              "packed 8-bit integers in a."),
        entry("_mm_packs_epi16", "__m128i", ["__m128i a", "__m128i b"],
              "SSE2", "Miscellaneous", _INT,
              "Convert packed signed 16-bit integers to packed 8-bit integers "
              "using signed saturation."),
        entry("_mm_packus_epi16", "__m128i", ["__m128i a", "__m128i b"],
              "SSE2", "Miscellaneous", _INT,
              "Convert packed signed 16-bit integers to packed 8-bit integers "
              "using unsigned saturation."),
        entry("_mm_packs_epi32", "__m128i", ["__m128i a", "__m128i b"],
              "SSE2", "Miscellaneous", _INT,
              "Convert packed signed 32-bit integers to packed 16-bit integers "
              "using signed saturation."),
        entry("_mm_shuffle_epi32", "__m128i", ["__m128i a", "int imm8"],
              "SSE2", "Swizzle", _INT,
              "Shuffle 32-bit integers in a using the control in imm8."),
        entry("_mm_shufflelo_epi16", "__m128i", ["__m128i a", "int imm8"],
              "SSE2", "Swizzle", _INT,
              "Shuffle 16-bit integers in the low 64 bits of a using imm8."),
        entry("_mm_shufflehi_epi16", "__m128i", ["__m128i a", "int imm8"],
              "SSE2", "Swizzle", _INT,
              "Shuffle 16-bit integers in the high 64 bits of a using imm8."),
        entry("_mm_cvtepi32_ps", "__m128", ["__m128i a"],
              "SSE2", "Convert", (_FP, _INT),
              "Convert packed signed 32-bit integers to packed single-precision "
              "floating-point elements.",
              op=for_lanes_pseudocode(
                  128, 32, "dst[i+{hi}:i] := Convert_Int32_To_FP32(a[i+{hi}:i])")),
        entry("_mm_cvtps_epi32", "__m128i", ["__m128 a"],
              "SSE2", "Convert", (_FP, _INT),
              "Convert packed single-precision elements to packed 32-bit "
              "integers (round to nearest)."),
        entry("_mm_cvttps_epi32", "__m128i", ["__m128 a"],
              "SSE2", "Convert", (_FP, _INT),
              "Convert packed single-precision elements to packed 32-bit "
              "integers with truncation."),
        entry("_mm_cvtsd_f64", "double", ["__m128d a"],
              "SSE2", "Convert", _FP,
              "Copy the lowest double-precision element of a to dst."),
        entry("_mm_castps_pd", "__m128d", ["__m128 a"],
              "SSE2", "Cast", _FP,
              "Cast vector of type __m128 to type __m128d (no operation)."),
        entry("_mm_castpd_ps", "__m128", ["__m128d a"],
              "SSE2", "Cast", _FP,
              "Cast vector of type __m128d to type __m128 (no operation)."),
        entry("_mm_castps_si128", "__m128i", ["__m128 a"],
              "SSE2", "Cast", (_FP, _INT),
              "Cast vector of type __m128 to type __m128i (no operation)."),
        entry("_mm_castsi128_ps", "__m128", ["__m128i a"],
              "SSE2", "Cast", (_FP, _INT),
              "Cast vector of type __m128i to type __m128 (no operation)."),
        entry("_mm_store_pd1", "void", ["double* mem_addr", "__m128d a"],
              "SSE2", "Store", _FP,
              "Store the lower double-precision element of a into 2 contiguous "
              "aligned memory locations."),
        entry("_mm_cmpeq_epi8", "__m128i", ["__m128i a", "__m128i b"],
              "SSE2", "Compare", _INT,
              "Compare packed 8-bit integers for equality.",
              op=for_lanes_pseudocode(
                  128, 8,
                  "dst[i+{hi}:i] := (a[i+{hi}:i] == b[i+{hi}:i]) ? 0xFF : 0")),
        entry("_mm_cmpeq_epi16", "__m128i", ["__m128i a", "__m128i b"],
              "SSE2", "Compare", _INT,
              "Compare packed 16-bit integers for equality."),
        entry("_mm_cmpeq_epi32", "__m128i", ["__m128i a", "__m128i b"],
              "SSE2", "Compare", _INT,
              "Compare packed 32-bit integers for equality."),
        entry("_mm_cmpgt_epi8", "__m128i", ["__m128i a", "__m128i b"],
              "SSE2", "Compare", _INT,
              "Compare packed signed 8-bit integers for greater-than."),
        entry("_mm_cmpgt_epi16", "__m128i", ["__m128i a", "__m128i b"],
              "SSE2", "Compare", _INT,
              "Compare packed signed 16-bit integers for greater-than."),
        entry("_mm_cmpgt_epi32", "__m128i", ["__m128i a", "__m128i b"],
              "SSE2", "Compare", _INT,
              "Compare packed signed 32-bit integers for greater-than."),
    ]
    for bits in (16, 32, 64):
        out.append(entry(
            f"_mm_slli_epi{bits}", "__m128i", ["__m128i a", "int imm8"],
            "SSE2", "Shift", _INT,
            f"Shift packed {bits}-bit integers in a left by imm8 while "
            f"shifting in zeros.",
            op=for_lanes_pseudocode(
                128, bits, "dst[i+{hi}:i] := a[i+{hi}:i] << imm8"),
        ))
        out.append(entry(
            f"_mm_srli_epi{bits}", "__m128i", ["__m128i a", "int imm8"],
            "SSE2", "Shift", _INT,
            f"Shift packed {bits}-bit integers in a right by imm8 while "
            f"shifting in zeros.",
        ))
    for bits in (16, 32):
        out.append(entry(
            f"_mm_srai_epi{bits}", "__m128i", ["__m128i a", "int imm8"],
            "SSE2", "Shift", _INT,
            f"Shift packed {bits}-bit integers in a right by imm8 while "
            f"shifting in sign bits.",
        ))
    for bits, code in ((8, "b"), (16, "w"), (32, "d"), (64, "qdq")):
        for half in ("lo", "hi"):
            out.append(entry(
                f"_mm_unpack{half}_epi{bits}", "__m128i",
                ["__m128i a", "__m128i b"], "SSE2", "Swizzle", _INT,
                f"Unpack and interleave {bits}-bit integers from the "
                f"{'low' if half == 'lo' else 'high'} half of a and b.",
                instr=(f"punpck{half}{code}", "xmm, xmm"),
            ))
    for bits in (8, 16, 32):
        out.append(entry(
            f"_mm_set1_epi{bits}", "__m128i", [f"char a" if bits == 8 else
                                               f"short a" if bits == 16 else "int a"],
            "SSE2", "Set", _INT,
            f"Broadcast {bits}-bit integer a to all elements of dst.",
            op=for_lanes_pseudocode(128, bits, "dst[i+{hi}:i] := a[{hi}:0]"),
            instr="sequence",
        ))
    out.append(entry(
        "_mm_set1_epi64x", "__m128i", ["__int64 a"], "SSE2", "Set", _INT,
        "Broadcast 64-bit integer a to all elements of dst.",
        instr="sequence",
    ))
    return out


def _ssse3_sse41_sse42() -> list[IntrinsicSpec]:
    out: list[IntrinsicSpec] = []
    for bits in (8, 16, 32):
        out.append(entry(
            f"_mm_abs_epi{bits}", "__m128i", ["__m128i a"],
            "SSSE3", "Special Math Functions", _INT,
            f"Compute the absolute value of packed signed {bits}-bit integers.",
            op=for_lanes_pseudocode(128, bits, "dst[i+{hi}:i] := ABS(a[i+{hi}:i])"),
        ))
        out.append(entry(
            f"_mm_sign_epi{bits}", "__m128i", ["__m128i a", "__m128i b"],
            "SSSE3", "Arithmetic", _INT,
            f"Negate packed {bits}-bit integers in a when the corresponding "
            f"element in b is negative; zero them when b is zero.",
        ))
    out += [
        entry("_mm_hadd_epi16", "__m128i", ["__m128i a", "__m128i b"],
              "SSSE3", "Arithmetic", _INT,
              "Horizontally add adjacent pairs of 16-bit integers."),
        entry("_mm_hadd_epi32", "__m128i", ["__m128i a", "__m128i b"],
              "SSSE3", "Arithmetic", _INT,
              "Horizontally add adjacent pairs of 32-bit integers."),
        entry("_mm_maddubs_epi16", "__m128i", ["__m128i a", "__m128i b"],
              "SSSE3", "Arithmetic", _INT,
              "Vertically multiply unsigned 8-bit integers in a with signed "
              "8-bit integers in b, horizontally add adjacent pairs with "
              "signed saturation."),
        entry("_mm_mulhrs_epi16", "__m128i", ["__m128i a", "__m128i b"],
              "SSSE3", "Arithmetic", _INT,
              "Multiply packed signed 16-bit integers, round and scale."),
        entry("_mm_shuffle_epi8", "__m128i", ["__m128i a", "__m128i b"],
              "SSSE3", "Swizzle", _INT,
              "Shuffle packed 8-bit integers in a according to the control "
              "bytes in b."),
        entry("_mm_alignr_epi8", "__m128i",
              ["__m128i a", "__m128i b", "int imm8"],
              "SSSE3", "Miscellaneous", _INT,
              "Concatenate a and b, shift right by imm8 bytes, return the low "
              "16 bytes."),
    ]
    # SSE4.1
    out += [
        entry("_mm_mullo_epi32", "__m128i", ["__m128i a", "__m128i b"],
              "SSE4.1", "Arithmetic", _INT,
              "Multiply packed 32-bit integers, store the low 32 bits of each "
              "64-bit product.",
              op=lanewise(128, 32, "*")),
        entry("_mm_mul_epi32", "__m128i", ["__m128i a", "__m128i b"],
              "SSE4.1", "Arithmetic", _INT,
              "Multiply the low signed 32-bit integers of each 64-bit element, "
              "store the signed 64-bit products."),
        entry("_mm_blendv_ps", "__m128",
              ["__m128 a", "__m128 b", "__m128 mask"],
              "SSE4.1", "Swizzle", _FP,
              "Blend packed single-precision elements from a and b using the "
              "sign bit of mask."),
        entry("_mm_blend_ps", "__m128", ["__m128 a", "__m128 b", "int imm8"],
              "SSE4.1", "Swizzle", _FP,
              "Blend packed single-precision elements from a and b using imm8."),
        entry("_mm_dp_ps", "__m128", ["__m128 a", "__m128 b", "int imm8"],
              "SSE4.1", "Arithmetic", _FP,
              "Conditionally multiply packed single-precision elements, sum "
              "the products, and conditionally store the sum."),
        entry("_mm_cvtepi8_epi16", "__m128i", ["__m128i a"],
              "SSE4.1", "Convert", _INT,
              "Sign extend packed 8-bit integers to packed 16-bit integers."),
        entry("_mm_cvtepi8_epi32", "__m128i", ["__m128i a"],
              "SSE4.1", "Convert", _INT,
              "Sign extend packed 8-bit integers to packed 32-bit integers."),
        entry("_mm_cvtepi16_epi32", "__m128i", ["__m128i a"],
              "SSE4.1", "Convert", _INT,
              "Sign extend packed 16-bit integers to packed 32-bit integers."),
        entry("_mm_cvtepu8_epi16", "__m128i", ["__m128i a"],
              "SSE4.1", "Convert", _INT,
              "Zero extend packed unsigned 8-bit integers to packed 16-bit "
              "integers."),
        entry("_mm_min_epi32", "__m128i", ["__m128i a", "__m128i b"],
              "SSE4.1", "Special Math Functions", _INT,
              "Minimum of packed signed 32-bit integers."),
        entry("_mm_max_epi32", "__m128i", ["__m128i a", "__m128i b"],
              "SSE4.1", "Special Math Functions", _INT,
              "Maximum of packed signed 32-bit integers."),
        entry("_mm_extract_epi32", "int", ["__m128i a", "int imm8"],
              "SSE4.1", "Swizzle", _INT,
              "Extract the 32-bit integer lane of a selected by imm8."),
        entry("_mm_insert_epi32", "__m128i", ["__m128i a", "int i", "int imm8"],
              "SSE4.1", "Swizzle", _INT,
              "Insert the 32-bit integer i into lane imm8 of a."),
        entry("_mm_testz_si128", "int", ["__m128i a", "__m128i b"],
              "SSE4.1", "Logical", _INT,
              "Return 1 when the bitwise AND of a and b is all zeros."),
        entry("_mm_packus_epi32", "__m128i", ["__m128i a", "__m128i b"],
              "SSE4.1", "Miscellaneous", _INT,
              "Convert packed signed 32-bit integers to packed 16-bit integers "
              "using unsigned saturation."),
    ]
    # SSE4.2
    out += [
        entry("_mm_cmpgt_epi64", "__m128i", ["__m128i a", "__m128i b"],
              "SSE4.2", "Compare", _INT,
              "Compare packed signed 64-bit integers for greater-than."),
        entry("_mm_cmpestrm", "__m128i",
              ["__m128i a", "int la", "__m128i b", "int lb", "const int imm8"],
              "SSE4.2", "String Compare", _INT,
              "Compare packed strings in a and b with explicit lengths and "
              "return the generated mask.",
              instr=("pcmpestrm", "xmm, xmm, imm8")),
        entry("_mm_cmpestri", "int",
              ["__m128i a", "int la", "__m128i b", "int lb", "const int imm8"],
              "SSE4.2", "String Compare", _INT,
              "Compare packed strings in a and b with explicit lengths and "
              "return the generated index."),
        entry("_mm_cmpistrm", "__m128i",
              ["__m128i a", "__m128i b", "const int imm8"],
              "SSE4.2", "String Compare", _INT,
              "Compare packed strings with implicit lengths and return the "
              "generated mask."),
        entry("_mm_cmpistri", "int",
              ["__m128i a", "__m128i b", "const int imm8"],
              "SSE4.2", "String Compare", _INT,
              "Compare packed strings with implicit lengths and return the "
              "generated index."),
        entry("_mm_cmpistrz", "int",
              ["__m128i a", "__m128i b", "const int imm8"],
              "SSE4.2", "String Compare", _INT,
              "Compare packed strings with implicit lengths and return 1 when "
              "any byte of b is null."),
    ]
    for bits, ty in ((8, "unsigned char"), (16, "unsigned short"),
                     (32, "unsigned int"), (64, "unsigned __int64")):
        ret = "unsigned int" if bits < 64 else "unsigned __int64"
        out.append(entry(
            f"_mm_crc32_u{bits}", ret,
            [f"{ret} crc", f"{ty} v"],
            "SSE4.2", "Cryptography", _INT,
            f"Accumulate CRC32 (polynomial 0x11EDC6F41) over an unsigned "
            f"{bits}-bit integer.",
            instr=("crc32", "r32, r8" if bits == 8 else "r, r"),
        ))
    return out


def _avx_extras() -> list[IntrinsicSpec]:
    out = [
        entry("_mm256_shuffle_ps", "__m256",
              ["__m256 a", "__m256 b", "const int imm8"],
              "AVX", "Swizzle", _FP,
              "Shuffle single-precision elements within each 128-bit lane of "
              "a and b using the control in imm8.",
              instr=("vshufps", "ymm, ymm, ymm, imm8")),
        entry("_mm256_shuffle_pd", "__m256d",
              ["__m256d a", "__m256d b", "const int imm8"],
              "AVX", "Swizzle", _FP,
              "Shuffle double-precision elements within 128-bit lanes."),
        entry("_mm256_permute2f128_ps", "__m256",
              ["__m256 a", "__m256 b", "int imm8"],
              "AVX", "Swizzle", _FP,
              "Shuffle 128-bit lanes selected from a and b by the control in "
              "imm8 (bit 3 of each nibble zeroes the lane).",
              instr=("vperm2f128", "ymm, ymm, ymm, imm8")),
        entry("_mm256_permute2f128_pd", "__m256d",
              ["__m256d a", "__m256d b", "int imm8"],
              "AVX", "Swizzle", _FP,
              "Shuffle 128-bit lanes of double-precision data from a and b."),
        entry("_mm256_permute_ps", "__m256", ["__m256 a", "int imm8"],
              "AVX", "Swizzle", _FP,
              "Shuffle single-precision elements in each 128-bit lane of a "
              "using the control in imm8."),
        entry("_mm256_permutevar_pd", "__m256d", ["__m256d a", "__m256i b"],
              "AVX", "Swizzle", _FP,
              "Shuffle double-precision elements in each 128-bit lane of a "
              "using the control in the corresponding 64-bit element of b."),
        entry("_mm256_blend_ps", "__m256",
              ["__m256 a", "__m256 b", "const int imm8"],
              "AVX", "Swizzle", _FP,
              "Blend packed single-precision elements from a and b using imm8."),
        entry("_mm256_blendv_ps", "__m256",
              ["__m256 a", "__m256 b", "__m256 mask"],
              "AVX", "Swizzle", _FP,
              "Blend packed single-precision elements from a and b using the "
              "sign bit of mask."),
        entry("_mm256_broadcast_ss", "__m256", ["float const* mem_addr"],
              "AVX", "Load", _FP,
              "Broadcast a single-precision element from memory to all "
              "elements of dst."),
        entry("_mm256_broadcast_sd", "__m256d", ["double const* mem_addr"],
              "AVX", "Load", _FP,
              "Broadcast a double-precision element from memory to all "
              "elements of dst."),
        entry("_mm256_broadcast_ps", "__m256", ["__m128 const* mem_addr"],
              "AVX", "Load", _FP,
              "Broadcast 128 bits of 4 single-precision elements from memory "
              "to both lanes of dst."),
        entry("_mm256_extractf128_ps", "__m128", ["__m256 a", "const int imm8"],
              "AVX", "Swizzle", _FP,
              "Extract the 128-bit lane of a selected by imm8."),
        entry("_mm256_extractf128_pd", "__m128d", ["__m256d a", "const int imm8"],
              "AVX", "Swizzle", _FP,
              "Extract the 128-bit double-precision lane selected by imm8."),
        entry("_mm256_insertf128_ps", "__m256",
              ["__m256 a", "__m128 b", "int imm8"],
              "AVX", "Swizzle", _FP,
              "Insert b into the 128-bit lane of a selected by imm8."),
        entry("_mm256_castps256_ps128", "__m128", ["__m256 a"],
              "AVX", "Cast", _FP,
              "Cast vector of type __m256 to type __m128 (no operation)."),
        entry("_mm256_castps128_ps256", "__m256", ["__m128 a"],
              "AVX", "Cast", _FP,
              "Cast vector of type __m128 to type __m256; upper bits undefined."),
        entry("_mm256_castps_pd", "__m256d", ["__m256 a"],
              "AVX", "Cast", _FP,
              "Cast vector of type __m256 to type __m256d (no operation)."),
        entry("_mm256_castpd_ps", "__m256", ["__m256d a"],
              "AVX", "Cast", _FP,
              "Cast vector of type __m256d to type __m256 (no operation)."),
        entry("_mm256_castps_si256", "__m256i", ["__m256 a"],
              "AVX", "Cast", (_FP, _INT),
              "Cast vector of type __m256 to type __m256i (no operation)."),
        entry("_mm256_castsi256_ps", "__m256", ["__m256i a"],
              "AVX", "Cast", (_FP, _INT),
              "Cast vector of type __m256i to type __m256 (no operation)."),
        entry("_mm256_cvtps_epi32", "__m256i", ["__m256 a"],
              "AVX", "Convert", (_FP, _INT),
              "Convert packed single-precision elements to packed 32-bit "
              "integers (round to nearest)."),
        entry("_mm256_cvtepi32_ps", "__m256", ["__m256i a"],
              "AVX", "Convert", (_FP, _INT),
              "Convert packed signed 32-bit integers to packed single-precision "
              "elements.",
              op=for_lanes_pseudocode(
                  256, 32, "dst[i+{hi}:i] := Convert_Int32_To_FP32(a[i+{hi}:i])")),
        entry("_mm256_hadd_ps", "__m256", ["__m256 a", "__m256 b"],
              "AVX", "Arithmetic", _FP,
              "Horizontally add adjacent pairs of single-precision elements "
              "within each 128-bit lane of a and b."),
        entry("_mm256_hadd_pd", "__m256d", ["__m256d a", "__m256d b"],
              "AVX", "Arithmetic", _FP,
              "Horizontally add adjacent pairs of double-precision elements."),
        entry("_mm256_dp_ps", "__m256", ["__m256 a", "__m256 b", "const int imm8"],
              "AVX", "Arithmetic", _FP,
              "Conditionally multiply packed single-precision elements within "
              "128-bit lanes, sum, and conditionally store."),
        entry("_mm256_movemask_ps", "int", ["__m256 a"],
              "AVX", "Miscellaneous", _FP,
              "Set each bit of dst to the sign bit of the corresponding "
              "single-precision element of a."),
        entry("_mm256_zeroupper", "void", [], "AVX", "General Support", _FP,
              "Zero the upper 128 bits of all YMM registers."),
        entry("_mm256_set_ps", "__m256",
              ["float e7", "float e6", "float e5", "float e4",
               "float e3", "float e2", "float e1", "float e0"],
              "AVX", "Set", _FP,
              "Set packed single-precision elements with the supplied values "
              "(e0 is the lowest lane)."),
        entry("_mm256_set_m128", "__m256", ["__m128 hi", "__m128 lo"],
              "AVX", "Set", _FP,
              "Set dst from two __m128 halves."),
        entry("_mm256_maskload_ps", "__m256",
              ["float const* mem_addr", "__m256i mask"],
              "AVX", "Load", _FP,
              "Load packed single-precision elements from memory using the "
              "sign bit of each mask element."),
        entry("_mm256_maskstore_ps", "void",
              ["float* mem_addr", "__m256i mask", "__m256 a"],
              "AVX", "Store", _FP,
              "Store packed single-precision elements to memory using the "
              "sign bit of each mask element."),
        entry("_mm256_round_ps", "__m256", ["__m256 a", "int rounding"],
              "AVX", "Special Math Functions", _FP,
              "Round packed single-precision elements using the rounding mode."),
        entry("_mm256_floor_ps", "__m256", ["__m256 a"],
              "AVX", "Special Math Functions", _FP,
              "Round packed single-precision elements down to integers."),
        entry("_mm256_cmp_ps", "__m256",
              ["__m256 a", "__m256 b", "const int imm8"],
              "AVX", "Compare", _FP,
              "Compare packed single-precision elements using the predicate "
              "in imm8."),
        entry("_mm256_cmp_pd", "__m256d",
              ["__m256d a", "__m256d b", "const int imm8"],
              "AVX", "Compare", _FP,
              "Compare packed double-precision elements using the predicate "
              "in imm8."),
    ]
    return out


def _avx2_suite() -> list[IntrinsicSpec]:
    out: list[IntrinsicSpec] = []
    for bits in (8, 16, 32, 64):
        for op_name, c_op in (("add", "+"), ("sub", "-")):
            out.append(entry(
                f"_mm256_{op_name}_epi{bits}", "__m256i",
                ["__m256i a", "__m256i b"], "AVX2", "Arithmetic", _INT,
                f"{op_name.capitalize()} packed {bits}-bit integers in a and b.",
                op=lanewise(256, bits, c_op),
            ))
    for sfx in ("epi8", "epi16", "epu8", "epu16"):
        for op_name in ("adds", "subs"):
            out.append(entry(
                f"_mm256_{op_name}_{sfx}", "__m256i",
                ["__m256i a", "__m256i b"], "AVX2", "Arithmetic", _INT,
                f"Saturating {op_name[:-1]} of packed {sfx} integers.",
            ))
    out += [
        entry("_mm256_mullo_epi16", "__m256i", ["__m256i a", "__m256i b"],
              "AVX2", "Arithmetic", _INT,
              "Multiply packed 16-bit integers, store the low 16 bits."),
        entry("_mm256_mullo_epi32", "__m256i", ["__m256i a", "__m256i b"],
              "AVX2", "Arithmetic", _INT,
              "Multiply packed 32-bit integers, store the low 32 bits."),
        entry("_mm256_mulhi_epi16", "__m256i", ["__m256i a", "__m256i b"],
              "AVX2", "Arithmetic", _INT,
              "Multiply packed signed 16-bit integers, store the high 16 bits."),
        entry("_mm256_madd_epi16", "__m256i", ["__m256i a", "__m256i b"],
              "AVX2", "Arithmetic", _INT,
              "Multiply packed signed 16-bit integers, horizontally add "
              "adjacent 32-bit products.",
              op=for_lanes_pseudocode(
                  256, 32,
                  "dst[i+31:i] := SignExtend32(a[i+31:i+16]*b[i+31:i+16]) + "
                  "SignExtend32(a[i+15:i]*b[i+15:i])")),
        entry("_mm256_maddubs_epi16", "__m256i", ["__m256i a", "__m256i b"],
              "AVX2", "Arithmetic", _INT,
              "Vertically multiply unsigned 8-bit integers in a with signed "
              "8-bit integers in b, horizontally add adjacent pairs with "
              "signed saturation.",
              op=for_lanes_pseudocode(
                  256, 16,
                  "dst[i+15:i] := Saturate16(a[i+15:i+8]*b[i+15:i+8] + "
                  "a[i+7:i]*b[i+7:i])")),
        entry("_mm256_sign_epi8", "__m256i", ["__m256i a", "__m256i b"],
              "AVX2", "Arithmetic", _INT,
              "Negate packed 8-bit integers in a when the corresponding "
              "element in b is negative; zero them when b is zero.",
              op=for_lanes_pseudocode(
                  256, 8,
                  "dst[i+7:i] := (b[i+7:i] < 0) ? -a[i+7:i] : "
                  "((b[i+7:i] == 0) ? 0 : a[i+7:i])")),
        entry("_mm256_sign_epi16", "__m256i", ["__m256i a", "__m256i b"],
              "AVX2", "Arithmetic", _INT,
              "Conditionally negate packed 16-bit integers in a by the sign "
              "of b."),
        entry("_mm256_abs_epi8", "__m256i", ["__m256i a"],
              "AVX2", "Special Math Functions", _INT,
              "Compute the absolute value of packed signed 8-bit integers.",
              op=for_lanes_pseudocode(256, 8, "dst[i+{hi}:i] := ABS(a[i+{hi}:i])")),
        entry("_mm256_abs_epi16", "__m256i", ["__m256i a"],
              "AVX2", "Special Math Functions", _INT,
              "Compute the absolute value of packed signed 16-bit integers."),
        entry("_mm256_avg_epu8", "__m256i", ["__m256i a", "__m256i b"],
              "AVX2", "Probability/Statistics", _INT,
              "Average packed unsigned 8-bit integers with rounding."),
        entry("_mm256_and_si256", "__m256i", ["__m256i a", "__m256i b"],
              "AVX2", "Logical", _INT, "Bitwise AND of 256 bits.",
              op="dst[255:0] := (a[255:0] AND b[255:0])"),
        entry("_mm256_or_si256", "__m256i", ["__m256i a", "__m256i b"],
              "AVX2", "Logical", _INT, "Bitwise OR of 256 bits."),
        entry("_mm256_xor_si256", "__m256i", ["__m256i a", "__m256i b"],
              "AVX2", "Logical", _INT, "Bitwise XOR of 256 bits."),
        entry("_mm256_andnot_si256", "__m256i", ["__m256i a", "__m256i b"],
              "AVX2", "Logical", _INT, "Bitwise NOT of a then AND with b."),
        entry("_mm256_loadu_si256", "__m256i", ["__m256i const* mem_addr"],
              "AVX", "Load", _INT,
              "Load 256 bits of integer data from unaligned memory.",
              op="dst[255:0] := MEM[mem_addr+255:mem_addr]"),
        entry("_mm256_storeu_si256", "void", ["__m256i* mem_addr", "__m256i a"],
              "AVX", "Store", _INT,
              "Store 256 bits of integer data to unaligned memory."),
        entry("_mm256_setzero_si256", "__m256i", [], "AVX", "Set", _INT,
              "Return a 256-bit vector with all bits zeroed.",
              op="dst[MAX:0] := 0"),
        entry("_mm256_set1_epi8", "__m256i", ["char a"], "AVX", "Set", _INT,
              "Broadcast 8-bit integer a to all elements of dst.",
              instr="sequence"),
        entry("_mm256_set1_epi16", "__m256i", ["short a"], "AVX", "Set", _INT,
              "Broadcast 16-bit integer a to all elements of dst.",
              instr="sequence"),
        entry("_mm256_set1_epi32", "__m256i", ["int a"], "AVX", "Set", _INT,
              "Broadcast 32-bit integer a to all elements of dst.",
              instr="sequence"),
        entry("_mm256_set1_epi64x", "__m256i", ["__int64 a"], "AVX", "Set", _INT,
              "Broadcast 64-bit integer a to all elements of dst.",
              instr="sequence"),
        entry("_mm256_movemask_epi8", "int", ["__m256i a"],
              "AVX2", "Miscellaneous", _INT,
              "Create a 32-bit mask from the most significant bits of the "
              "packed 8-bit integers in a."),
        entry("_mm256_packs_epi16", "__m256i", ["__m256i a", "__m256i b"],
              "AVX2", "Miscellaneous", _INT,
              "Convert packed signed 16-bit integers to 8-bit using signed "
              "saturation, within 128-bit lanes."),
        entry("_mm256_packs_epi32", "__m256i", ["__m256i a", "__m256i b"],
              "AVX2", "Miscellaneous", _INT,
              "Convert packed signed 32-bit integers to 16-bit using signed "
              "saturation, within 128-bit lanes."),
        entry("_mm256_packus_epi16", "__m256i", ["__m256i a", "__m256i b"],
              "AVX2", "Miscellaneous", _INT,
              "Convert packed signed 16-bit integers to 8-bit using unsigned "
              "saturation, within 128-bit lanes."),
        entry("_mm256_unpacklo_epi8", "__m256i", ["__m256i a", "__m256i b"],
              "AVX2", "Swizzle", _INT,
              "Unpack and interleave 8-bit integers from the low half of each "
              "128-bit lane."),
        entry("_mm256_unpackhi_epi8", "__m256i", ["__m256i a", "__m256i b"],
              "AVX2", "Swizzle", _INT,
              "Unpack and interleave 8-bit integers from the high half of "
              "each 128-bit lane."),
        entry("_mm256_unpacklo_epi16", "__m256i", ["__m256i a", "__m256i b"],
              "AVX2", "Swizzle", _INT,
              "Unpack and interleave 16-bit integers from the low half of "
              "each 128-bit lane."),
        entry("_mm256_unpackhi_epi16", "__m256i", ["__m256i a", "__m256i b"],
              "AVX2", "Swizzle", _INT,
              "Unpack and interleave 16-bit integers from the high half of "
              "each 128-bit lane."),
        entry("_mm256_shuffle_epi8", "__m256i", ["__m256i a", "__m256i b"],
              "AVX2", "Swizzle", _INT,
              "Shuffle packed 8-bit integers in a within 128-bit lanes "
              "according to the control bytes in b."),
        entry("_mm256_shuffle_epi32", "__m256i", ["__m256i a", "const int imm8"],
              "AVX2", "Swizzle", _INT,
              "Shuffle 32-bit integers within each 128-bit lane of a."),
        entry("_mm256_shufflehi_epi16", "__m256i", ["__m256i a", "const int imm8"],
              "AVX2", "Swizzle", _INT,
              "Shuffle 16-bit integers in the high 64 bits of each 128-bit "
              "lane of a using imm8."),
        entry("_mm256_shufflelo_epi16", "__m256i", ["__m256i a", "const int imm8"],
              "AVX2", "Swizzle", _INT,
              "Shuffle 16-bit integers in the low 64 bits of each 128-bit "
              "lane of a using imm8."),
        entry("_mm256_permutevar8x32_epi32", "__m256i",
              ["__m256i a", "__m256i idx"],
              "AVX2", "Swizzle", _INT,
              "Shuffle 32-bit integers in a across lanes using the indices "
              "in idx."),
        entry("_mm256_permute2x128_si256", "__m256i",
              ["__m256i a", "__m256i b", "const int imm8"],
              "AVX2", "Swizzle", _INT,
              "Shuffle 128-bit lanes selected from a and b by imm8."),
        entry("_mm256_extracti128_si256", "__m128i",
              ["__m256i a", "const int imm8"],
              "AVX2", "Swizzle", _INT,
              "Extract the 128-bit integer lane of a selected by imm8."),
        entry("_mm256_inserti128_si256", "__m256i",
              ["__m256i a", "__m128i b", "const int imm8"],
              "AVX2", "Swizzle", _INT,
              "Insert b into the 128-bit lane of a selected by imm8."),
        entry("_mm256_bslli_epi128", "__m256i", ["__m256i a", "const int imm8"],
              "AVX2", "Shift", _INT,
              "Shift each 128-bit lane of a left by imm8 bytes while shifting "
              "in zeros."),
        entry("_mm256_bsrli_epi128", "__m256i", ["__m256i a", "const int imm8"],
              "AVX2", "Shift", _INT,
              "Shift each 128-bit lane of a right by imm8 bytes while "
              "shifting in zeros."),
        entry("_mm256_blendv_epi8", "__m256i",
              ["__m256i a", "__m256i b", "__m256i mask"],
              "AVX2", "Swizzle", _INT,
              "Blend packed 8-bit integers from a and b using the sign bit "
              "of each mask byte."),
        entry("_mm256_cmpeq_epi8", "__m256i", ["__m256i a", "__m256i b"],
              "AVX2", "Compare", _INT,
              "Compare packed 8-bit integers for equality."),
        entry("_mm256_cmpeq_epi32", "__m256i", ["__m256i a", "__m256i b"],
              "AVX2", "Compare", _INT,
              "Compare packed 32-bit integers for equality."),
        entry("_mm256_cmpgt_epi8", "__m256i", ["__m256i a", "__m256i b"],
              "AVX2", "Compare", _INT,
              "Compare packed signed 8-bit integers for greater-than."),
        entry("_mm256_cmpgt_epi32", "__m256i", ["__m256i a", "__m256i b"],
              "AVX2", "Compare", _INT,
              "Compare packed signed 32-bit integers for greater-than."),
        entry("_mm256_i32gather_epi32", "__m256i",
              ["int const* base_addr", "__m256i vindex", "const int scale"],
              "AVX2", "Load", _INT,
              "Gather 32-bit integers from memory at base_addr + "
              "vindex*scale.",
              instr=("vpgatherdd", "ymm, vm32x, ymm")),
        entry("_mm256_i32gather_ps", "__m256",
              ["float const* base_addr", "__m256i vindex", "const int scale"],
              "AVX2", "Load", _FP,
              "Gather single-precision elements from memory at base_addr + "
              "vindex*scale."),
        entry("_mm_i32gather_epi32", "__m128i",
              ["int const* base_addr", "__m128i vindex", "const int scale"],
              "AVX2", "Load", _INT,
              "Gather 32-bit integers from memory at base_addr + "
              "vindex*scale."),
        entry("_mm256_sad_epu8", "__m256i", ["__m256i a", "__m256i b"],
              "AVX2", "Miscellaneous", _INT,
              "Sum of absolute differences of packed unsigned 8-bit integers; "
              "four 16-bit partial sums in the low lanes of 64-bit results."),
    ]
    for bits in (16, 32, 64):
        out.append(entry(
            f"_mm256_slli_epi{bits}", "__m256i", ["__m256i a", "int imm8"],
            "AVX2", "Shift", _INT,
            f"Shift packed {bits}-bit integers left by imm8, shifting in "
            f"zeros.",
            op=for_lanes_pseudocode(
                256, bits, "dst[i+{hi}:i] := a[i+{hi}:i] << imm8"),
        ))
        out.append(entry(
            f"_mm256_srli_epi{bits}", "__m256i", ["__m256i a", "int imm8"],
            "AVX2", "Shift", _INT,
            f"Shift packed {bits}-bit integers right by imm8, shifting in "
            f"zeros.",
        ))
    for bits in (16, 32):
        out.append(entry(
            f"_mm256_srai_epi{bits}", "__m256i", ["__m256i a", "int imm8"],
            "AVX2", "Shift", _INT,
            f"Shift packed {bits}-bit integers right by imm8, shifting in "
            f"sign bits.",
        ))
    for bits in (16, 32):
        out.append(entry(
            f"_mm256_min_epi{bits}", "__m256i", ["__m256i a", "__m256i b"],
            "AVX2", "Special Math Functions", _INT,
            f"Minimum of packed signed {bits}-bit integers."))
        out.append(entry(
            f"_mm256_max_epi{bits}", "__m256i", ["__m256i a", "__m256i b"],
            "AVX2", "Special Math Functions", _INT,
            f"Maximum of packed signed {bits}-bit integers."))
    out += [
        entry("_mm256_hadd_epi16", "__m256i", ["__m256i a", "__m256i b"],
              "AVX2", "Arithmetic", _INT,
              "Horizontally add adjacent pairs of 16-bit integers within "
              "128-bit lanes."),
        entry("_mm256_hadd_epi32", "__m256i", ["__m256i a", "__m256i b"],
              "AVX2", "Arithmetic", _INT,
              "Horizontally add adjacent pairs of 32-bit integers within "
              "128-bit lanes."),
        entry("_mm256_cvtepi8_epi16", "__m256i", ["__m128i a"],
              "AVX2", "Convert", _INT,
              "Sign extend packed 8-bit integers to packed 16-bit integers."),
        entry("_mm256_cvtepi16_epi32", "__m256i", ["__m128i a"],
              "AVX2", "Convert", _INT,
              "Sign extend packed 16-bit integers to packed 32-bit integers."),
        entry("_mm256_cvtepu8_epi16", "__m256i", ["__m128i a"],
              "AVX2", "Convert", _INT,
              "Zero extend packed unsigned 8-bit integers to 16-bit integers."),
    ]
    return out


def _fp16c_rdrand_misc() -> list[IntrinsicSpec]:
    out = [
        entry("_mm_cvtph_ps", "__m128", ["__m128i a"],
              "FP16C", "Convert", _FP,
              "Convert the lower 4 packed half-precision elements in a to "
              "packed single-precision elements.",
              op=for_lanes_pseudocode(
                  128, 32, "dst[i+{hi}:i] := Convert_FP16_To_FP32(a[j*16+15:j*16])"),
              instr=("vcvtph2ps", "xmm, xmm")),
        entry("_mm256_cvtph_ps", "__m256", ["__m128i a"],
              "FP16C", "Convert", _FP,
              "Convert 8 packed half-precision elements in a to packed "
              "single-precision elements.",
              instr=("vcvtph2ps", "ymm, xmm")),
        entry("_mm_cvtps_ph", "__m128i", ["__m128 a", "int rounding"],
              "FP16C", "Convert", _FP,
              "Convert the 4 packed single-precision elements in a to packed "
              "half-precision elements."),
        entry("_mm256_cvtps_ph", "__m128i", ["__m256 a", "int rounding"],
              "FP16C", "Convert", _FP,
              "Convert the 8 packed single-precision elements in a to packed "
              "half-precision elements.",
              instr=("vcvtps2ph", "xmm, ymm, imm8")),
        entry("_rdrand16_step", "int", ["unsigned short* val"],
              "RDRAND", "Random", _INT,
              "Read a hardware generated 16-bit random value, store it to "
              "val, return 1 on success.",
              instr=("rdrand", "r16")),
        entry("_rdrand32_step", "int", ["unsigned int* val"],
              "RDRAND", "Random", _INT,
              "Read a hardware generated 32-bit random value, store it to "
              "val, return 1 on success.",
              instr=("rdrand", "r32")),
        entry("_rdrand64_step", "int", ["unsigned __int64* val"],
              "RDRAND", "Random", _INT,
              "Read a hardware generated 64-bit random value, store it to "
              "val, return 1 on success."),
        entry("_rdseed16_step", "int", ["unsigned short* val"],
              "RDSEED", "Random", _INT,
              "Read a 16-bit NIST SP800-90B/C conditioned entropy sample."),
        entry("_rdseed32_step", "int", ["unsigned int* val"],
              "RDSEED", "Random", _INT,
              "Read a 32-bit NIST SP800-90B/C conditioned entropy sample."),
        entry("_rdseed64_step", "int", ["unsigned __int64* val"],
              "RDSEED", "Random", _INT,
              "Read a 64-bit NIST SP800-90B/C conditioned entropy sample."),
        entry("_mm_aesenc_si128", "__m128i", ["__m128i a", "__m128i RoundKey"],
              "AES", "Cryptography", _INT,
              "Perform one round of AES encryption on a using RoundKey."),
        entry("_mm_aesdec_si128", "__m128i", ["__m128i a", "__m128i RoundKey"],
              "AES", "Cryptography", _INT,
              "Perform one round of AES decryption on a using RoundKey."),
        entry("_mm_sha1msg1_epu32", "__m128i", ["__m128i a", "__m128i b"],
              "SHA", "Cryptography", _INT,
              "Perform an intermediate calculation for the next four SHA1 "
              "message values."),
        entry("_mm_sha256msg1_epu32", "__m128i", ["__m128i a", "__m128i b"],
              "SHA", "Cryptography", _INT,
              "Perform an intermediate calculation for the next four SHA256 "
              "message values."),
        entry("_mm_clmulepi64_si128", "__m128i",
              ["__m128i a", "__m128i b", "const int imm8"],
              "PCLMULQDQ", "Cryptography", _INT,
              "Carry-less multiplication of two 64-bit polynomials selected "
              "by imm8."),
        entry("_mm_popcnt_u32", "int", ["unsigned int a"],
              "POPCNT", "Bit Manipulation", _INT,
              "Count the number of bits set to 1 in a.",
              op="dst := POPCNT(a)"),
        entry("_mm_popcnt_u64", "__int64", ["unsigned __int64 a"],
              "POPCNT", "Bit Manipulation", _INT,
              "Count the number of bits set to 1 in a."),
        entry("_lzcnt_u32", "unsigned int", ["unsigned int a"],
              "LZCNT", "Bit Manipulation", _INT,
              "Count the number of leading zero bits in a."),
        entry("_tzcnt_u32", "unsigned int", ["unsigned int a"],
              "BMI1", "Bit Manipulation", _INT,
              "Count the number of trailing zero bits in a."),
        entry("_pext_u32", "unsigned int", ["unsigned int a", "unsigned int mask"],
              "BMI2", "Bit Manipulation", _INT,
              "Extract bits of a selected by mask to contiguous low bits."),
        entry("_pdep_u32", "unsigned int", ["unsigned int a", "unsigned int mask"],
              "BMI2", "Bit Manipulation", _INT,
              "Deposit contiguous low bits of a to positions selected by mask."),
        entry("_rdtsc", "unsigned __int64", [],
              "TSC", "OS-Targeted", _INT,
              "Read the processor time stamp counter."),
    ]
    return out


def _mmx_core() -> list[IntrinsicSpec]:
    out: list[IntrinsicSpec] = []
    for bits, code in ((8, "b"), (16, "w"), (32, "d")):
        for op_name, c_op in (("add", "+"), ("sub", "-")):
            out.append(entry(
                f"_mm_{op_name}_pi{bits}", "__m64", ["__m64 a", "__m64 b"],
                "MMX", "Arithmetic", _INT,
                f"{op_name.capitalize()} packed {bits}-bit integers in a "
                f"and b.",
                op=lanewise(64, bits, c_op),
                instr=(f"p{op_name}{code}", "mm, mm"),
            ))
        out.append(entry(
            f"_mm_set1_pi{bits}", "__m64",
            ["char a" if bits == 8 else "short a" if bits == 16 else "int a"],
            "MMX", "Set", _INT,
            f"Broadcast {bits}-bit integer a to all elements of dst.",
            instr="sequence",
        ))
    out += [
        entry("_mm_and_si64", "__m64", ["__m64 a", "__m64 b"],
              "MMX", "Logical", _INT, "Bitwise AND of 64 bits."),
        entry("_mm_or_si64", "__m64", ["__m64 a", "__m64 b"],
              "MMX", "Logical", _INT, "Bitwise OR of 64 bits."),
        entry("_mm_xor_si64", "__m64", ["__m64 a", "__m64 b"],
              "MMX", "Logical", _INT, "Bitwise XOR of 64 bits."),
        entry("_mm_madd_pi16", "__m64", ["__m64 a", "__m64 b"],
              "MMX", "Arithmetic", _INT,
              "Multiply packed signed 16-bit integers, horizontally add "
              "adjacent 32-bit products."),
        entry("_m_empty", "void", [], "MMX", "General Support", _INT,
              "Empty the MMX state, enabling subsequent x87 use.",
              instr="emms"),
    ]
    return out


def _avx512_core() -> list[IntrinsicSpec]:
    out = [
        entry("_mm512_loadu_ps", "__m512", ["void const* mem_addr"],
              "AVX512F", "Load", _FP,
              "Load 16 single-precision elements from unaligned memory.",
              op="dst[511:0] := MEM[mem_addr+511:mem_addr]"),
        entry("_mm512_storeu_ps", "void", ["void* mem_addr", "__m512 a"],
              "AVX512F", "Store", _FP,
              "Store 16 single-precision elements to unaligned memory."),
        entry("_mm512_set1_ps", "__m512", ["float a"], "AVX512F", "Set", _FP,
              "Broadcast single-precision element a to all lanes of dst.",
              instr="sequence"),
        entry("_mm512_setzero_ps", "__m512", [], "AVX512F", "Set", _FP,
              "Return a 512-bit vector with all elements zeroed."),
        entry("_mm512_add_ps", "__m512", ["__m512 a", "__m512 b"],
              "AVX512F", "Arithmetic", _FP,
              "Add packed single-precision elements in a and b.",
              op=lanewise(512, 32, "+")),
        entry("_mm512_mul_ps", "__m512", ["__m512 a", "__m512 b"],
              "AVX512F", "Arithmetic", _FP,
              "Multiply packed single-precision elements in a and b."),
        entry("_mm512_fmadd_ps", "__m512", ["__m512 a", "__m512 b", "__m512 c"],
              "AVX512F", "Arithmetic", _FP,
              "Fused multiply-add of packed single-precision elements."),
        entry("_mm512_mask_add_ps", "__m512",
              ["__m512 src", "__mmask16 k", "__m512 a", "__m512 b"],
              "AVX512F", "Arithmetic", _FP,
              "Add packed single-precision elements; copy lanes from src "
              "where the mask bit is clear."),
        entry("_mm512_reduce_add_ps", "float", ["__m512 a"],
              "AVX512F", "Arithmetic", _FP,
              "Reduce the packed single-precision elements in a by addition.",
              instr="sequence"),
        entry("_mm512_rol_epi32", "__m512i", ["__m512i a", "const int imm8"],
              "AVX512F", "Shift", _INT,
              "Rotate the bits of each packed 32-bit integer in a left by "
              "imm8."),
        entry("_mm_cmp_epi16_mask", "__mmask8",
              ["__m128i a", "__m128i b", "const int imm8"],
              ("AVX512BW", "AVX512VL"), "Compare", _INT,
              "Compare packed signed 16-bit integers using the predicate in "
              "imm8 and produce a mask."),
        entry("_mm512_storenrngo_pd", "void", ["void* mc", "__m512d v"],
              "KNCNI", "Store", _FP,
              "Store packed double-precision elements with a no-read hint "
              "using weakly-ordered memory consistency (non-globally ordered).",
              header="immintrin.h"),
        entry("_cvtu32_mask16", "__mmask16", ["unsigned int a"],
              "AVX512F", "Mask", "Mask",
              "Convert a 32-bit integer to a 16-bit mask register value."),
        entry("_cvtmask16_u32", "unsigned int", ["__mmask16 a"],
              "AVX512F", "Mask", "Mask",
              "Convert a 16-bit mask register value to a 32-bit integer."),
        entry("_cvtu32_mask8", "__mmask8", ["unsigned int a"],
              "AVX512DQ", "Mask", "Mask",
              "Convert a 32-bit integer to an 8-bit mask register value."),
    ]
    return out


def _svml_core() -> list[IntrinsicSpec]:
    out: list[IntrinsicSpec] = []
    funcs = (
        ("sin", "Trigonometry", "sine"),
        ("cos", "Trigonometry", "cosine"),
        ("tan", "Trigonometry", "tangent"),
        ("exp", "Elementary Math Functions", "exponential"),
        ("log", "Elementary Math Functions", "natural logarithm"),
        ("erf", "Probability/Statistics", "error function"),
        ("cdfnorm", "Probability/Statistics",
         "cumulative normal distribution function"),
        ("invsqrt", "Elementary Math Functions", "inverse square root"),
    )
    for fn, cat, desc in funcs:
        for prefix, vt_ps, vt_pd in (("_mm", "__m128", "__m128d"),
                                     ("_mm256", "__m256", "__m256d")):
            out.append(entry(
                f"{prefix}_{fn}_ps", vt_ps, [f"{vt_ps} a"],
                "SVML" if prefix != "_mm512" else ("SVML", "AVX512F"),
                cat, _FP,
                f"Compute the {desc} of packed single-precision elements "
                f"in a.",
                instr="sequence", header="immintrin.h",
            ))
            out.append(entry(
                f"{prefix}_{fn}_pd", vt_pd, [f"{vt_pd} a"],
                "SVML", cat, _FP,
                f"Compute the {desc} of packed double-precision elements "
                f"in a.",
                instr="sequence", header="immintrin.h",
            ))
    out.append(entry(
        "_mm256_pow_ps", "__m256", ["__m256 a", "__m256 b"],
        "SVML", "Elementary Math Functions", _FP,
        "Compute a raised to the power b for packed single-precision "
        "elements.", instr="sequence"))
    out.append(entry(
        "_mm256_div_epi32", "__m256i", ["__m256i a", "__m256i b"],
        "SVML", "Arithmetic", _INT,
        "Divide packed signed 32-bit integers in a by those in b.",
        instr="sequence"))
    return out


def core_entries() -> list[IntrinsicSpec]:
    """Every curated entry, in a deterministic order."""
    out: list[IntrinsicSpec] = []
    out += _float_suite("_mm", "ps", "__m128", "float", 32, "SSE")
    out += _float_suite("_mm", "pd", "__m128d", "double", 64, "SSE2")
    out += _float_suite("_mm256", "ps", "__m256", "float", 32, "AVX")
    out += _float_suite("_mm256", "pd", "__m256d", "double", 64, "AVX")
    out += _sse_extras()
    out += _sse2_int_suite()
    # SSE3: exactly the 11 intrinsics of Table 1b.
    out += [
        entry("_mm_addsub_ps", "__m128", ["__m128 a", "__m128 b"],
              "SSE3", "Arithmetic", _FP,
              "Alternately subtract and add packed single-precision elements."),
        entry("_mm_addsub_pd", "__m128d", ["__m128d a", "__m128d b"],
              "SSE3", "Arithmetic", _FP,
              "Alternately subtract and add packed double-precision elements."),
        entry("_mm_hadd_ps", "__m128", ["__m128 a", "__m128 b"],
              "SSE3", "Arithmetic", _FP,
              "Horizontally add adjacent pairs of single-precision elements.",
              op=("dst[31:0] := a[63:32] + a[31:0]\n"
                  "dst[63:32] := a[127:96] + a[95:64]\n"
                  "dst[95:64] := b[63:32] + b[31:0]\n"
                  "dst[127:96] := b[127:96] + b[95:64]")),
        entry("_mm_hadd_pd", "__m128d", ["__m128d a", "__m128d b"],
              "SSE3", "Arithmetic", _FP,
              "Horizontally add adjacent pairs of double-precision elements."),
        entry("_mm_hsub_ps", "__m128", ["__m128 a", "__m128 b"],
              "SSE3", "Arithmetic", _FP,
              "Horizontally subtract adjacent pairs of single-precision "
              "elements."),
        entry("_mm_hsub_pd", "__m128d", ["__m128d a", "__m128d b"],
              "SSE3", "Arithmetic", _FP,
              "Horizontally subtract adjacent pairs of double-precision "
              "elements."),
        entry("_mm_lddqu_si128", "__m128i", ["__m128i const* mem_addr"],
              "SSE3", "Load", _INT,
              "Load 128 bits of integer data from unaligned memory, "
              "optimized for cache-line splits."),
        entry("_mm_loaddup_pd", "__m128d", ["double const* mem_addr"],
              "SSE3", "Load", _FP,
              "Load a double-precision element from memory into both lanes."),
        entry("_mm_movedup_pd", "__m128d", ["__m128d a"],
              "SSE3", "Move", _FP,
              "Duplicate the low double-precision element of a."),
        entry("_mm_movehdup_ps", "__m128", ["__m128 a"],
              "SSE3", "Move", _FP,
              "Duplicate odd-indexed single-precision elements of a."),
        entry("_mm_moveldup_ps", "__m128", ["__m128 a"],
              "SSE3", "Move", _FP,
              "Duplicate even-indexed single-precision elements of a."),
    ]
    out += _ssse3_sse41_sse42()
    out += _avx_extras()
    out += _avx2_suite()
    out += _fma_suite()
    out += _fp16c_rdrand_misc()
    out += _mmx_core()
    out += _avx512_core()
    out += _svml_core()
    return out
