"""Historical spec versions (the Table 3 analog).

The paper salvages six iterations of Intel's XML specification from the
Wayback Machine (Table 3) and shows its eDSL generator is robust across
them.  We reconstruct that evolution: earlier versions carry fewer ISAs
and the 3.4 release changes the XML schema (return type expressed as a
``<return>`` element instead of a ``rettype`` attribute, and an explicit
``sequence`` flag on instructions) — the parser must tolerate both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.spec.model import IntrinsicSpec


@dataclass(frozen=True)
class SpecVersion:
    """One release of the vendor XML specification."""

    version: str
    date: str                  # as in Table 3 (dd.mm.yyyy)
    filename: str
    # ISA prefixes absent from this release.
    excluded_cpuid_prefixes: tuple[str, ...] = ()
    # Schema flavor: "attr" (rettype attribute) or "elem" (<return> tag).
    rettype_style: str = "attr"
    has_type_tags: bool = True
    has_instruction_forms: bool = True


SPEC_VERSIONS: dict[str, SpecVersion] = {
    "3.2.2": SpecVersion(
        version="3.2.2", date="03.09.2014", filename="data-3.2.2.xml",
        excluded_cpuid_prefixes=("AVX512", "RDPID", "CLWB", "CLFLUSHOPT",
                                 "XSAVEC", "SHA", "MPX"),
        has_type_tags=False, has_instruction_forms=False,
    ),
    "3.3.1": SpecVersion(
        version="3.3.1", date="17.10.2014", filename="data-3.3.1.xml",
        excluded_cpuid_prefixes=("AVX512VBMI", "AVX512IFMA52", "RDPID",
                                 "CLWB"),
        has_type_tags=False,
    ),
    "3.3.11": SpecVersion(
        version="3.3.11", date="27.07.2015", filename="data-3.3.11.xml",
        excluded_cpuid_prefixes=("AVX512VBMI", "RDPID"),
    ),
    "3.3.14": SpecVersion(
        version="3.3.14", date="12.01.2016", filename="data-3.3.14.xml",
        excluded_cpuid_prefixes=("RDPID",),
    ),
    "3.3.16": SpecVersion(
        version="3.3.16", date="26.01.2016", filename="data-3.3.16.xml",
    ),
    "3.4": SpecVersion(
        version="3.4", date="07.09.2017", filename="data-3.4.xml",
        rettype_style="elem",
    ),
}

DEFAULT_VERSION = "3.3.16"


def default_version() -> SpecVersion:
    return SPEC_VERSIONS[DEFAULT_VERSION]


def version_filter(version: str) -> Callable[[IntrinsicSpec], bool]:
    """Predicate selecting the entries visible in a given spec version."""
    if version not in SPEC_VERSIONS:
        raise KeyError(f"unknown spec version {version!r}; "
                       f"known: {sorted(SPEC_VERSIONS)}")
    sv = SPEC_VERSIONS[version]

    def visible(e: IntrinsicSpec) -> bool:
        for cpuid in e.cpuids:
            if any(cpuid.startswith(p) for p in sv.excluded_cpuid_prefixes):
                # Excluded unless another CPUID keeps it alive.
                continue
            return True
        return not e.cpuids

    return visible
