"""Version-tolerant parser for the vendor XML specification.

This is the first stage of the paper's Figure 1 pipeline ("Parse XML
intrinsics specification").  It accepts both schema flavors the historical
spec releases use: the ``rettype`` attribute style (3.2.2 – 3.3.16) and
the ``<return type=...>`` element style (3.4), with or without ``<type>``
tags and instruction ``form`` attributes.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path

from repro.spec.model import Instruction, IntrinsicSpec, Parameter


class SpecParseError(ValueError):
    """Raised when the XML does not match any known schema flavor."""


def _parse_intrinsic(el: ET.Element) -> IntrinsicSpec:
    name = el.get("name")
    if not name:
        raise SpecParseError("<intrinsic> without a name attribute")

    rettype = el.get("rettype")
    if rettype is None:
        ret_el = el.find("return")
        if ret_el is None:
            raise SpecParseError(f"{name}: no rettype attribute and no "
                                 "<return> element")
        rettype = ret_el.get("type", "void")

    params = tuple(
        Parameter(varname=p.get("varname", f"arg{i}"), type=p.get("type", ""))
        for i, p in enumerate(el.findall("parameter"))
    )
    cpuids = tuple(c.text.strip() for c in el.findall("CPUID") if c.text)
    category_el = el.find("category")
    category = category_el.text.strip() if category_el is not None and \
        category_el.text else "Miscellaneous"
    types = tuple(t.text.strip() for t in el.findall("type") if t.text)
    desc_el = el.find("description")
    description = (desc_el.text or "").strip() if desc_el is not None else ""
    op_el = el.find("operation")
    operation = (op_el.text or "").strip() if op_el is not None else ""
    instructions = tuple(
        Instruction(name=i.get("name", ""), form=i.get("form", ""))
        for i in el.findall("instruction")
    )
    if el.get("sequence", "").upper() == "TRUE":
        instructions = instructions + (Instruction(name="sequence"),)
    header_el = el.find("header")
    header = header_el.text.strip() if header_el is not None and \
        header_el.text else "immintrin.h"

    return IntrinsicSpec(
        name=name, rettype=rettype, params=params, cpuids=cpuids,
        category=category, types=types, description=description,
        operation=operation, instructions=instructions, header=header,
    )


def parse_spec_xml(text: str) -> list[IntrinsicSpec]:
    """Parse one XML specification document into IntrinsicSpec entries."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise SpecParseError(f"malformed specification XML: {exc}") from exc
    if root.tag != "intrinsics_list":
        raise SpecParseError(f"unexpected root element <{root.tag}>")
    return [_parse_intrinsic(el) for el in root.iter("intrinsic")]


def parse_spec_file(path: str | Path) -> list[IntrinsicSpec]:
    """Parse a ``data-*.xml`` file from disk."""
    return parse_spec_xml(Path(path).read_text())
