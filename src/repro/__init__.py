"""repro — a reproduction of "SIMD Intrinsics on Managed Language
Runtimes" (Stojanov, Toskov, Rompf, Püschel; CGO 2018).

The package rebuilds the paper's entire system in Python:

* :mod:`repro.spec` — the vendor intrinsics-specification substrate
  (schema, synthesizer for all 13 ISAs and 6 historical versions,
  version-tolerant parser, Table 1 census);
* :mod:`repro.lms` — the LMS staging framework (expressions, SSA graph,
  effects, staged control flow, transformers, scheduling);
* :mod:`repro.isa` — the eDSL generator: spec in, per-ISA eDSL modules
  out (definition classes, effect-inferring constructors, mirroring,
  unparsing);
* :mod:`repro.simd` — a bit-accurate SIMD machine executing staged
  graphs (the simulated-native backend);
* :mod:`repro.codegen` — the C backend: unparser, compiler discovery,
  CPUID inspection, ctypes linking (the JNI analog);
* :mod:`repro.jvm` — MiniVM, the managed-runtime baseline: Java-typed
  kernels, bytecode interpreter with profiling, tiered C1/C2 JIT with an
  SLP autovectorizer (and its HotSpot-documented limits);
* :mod:`repro.timing` — the Haswell cost model that prices compiled
  kernels in cycles (ports, latency chains, reuse-aware cache model,
  JNI overhead);
* :mod:`repro.quant` — the variable-precision virtual ISA (stochastic
  quantization; 32/16/8/4-bit dot products);
* :mod:`repro.kernels` — the paper's benchmark kernels (SAXPY, MMM);
* :mod:`repro.core` — the public NGen-style pipeline:
  ``compile_staged`` / ``compile_kernel``.
"""

from repro.core import CompiledKernel, compile_kernel, compile_staged

__version__ = "1.0.0"

__all__ = ["CompiledKernel", "compile_kernel", "compile_staged",
           "__version__"]
