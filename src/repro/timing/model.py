"""The cost model: machine kernels to cycles.

Per innermost-loop iteration the model takes the maximum of three
bounds — the classic roofline-with-latency view of a warm kernel:

* **throughput**: ops per resource class divided by the port caps;
* **dependency latency**: the summed latency of the loop-carried chain
  (what binds unvectorized reductions);
* **memory**: bytes moved from each access's *residency level* divided
  by that level's bandwidth.

Residency is reuse-aware: an access invariant in some enclosing loop is
served from the level that holds its *reuse working set* (the bytes
touched by the loops inside that invariant loop).  This is what makes
blocking pay off — the 8x8 B-block of the blocked MMM is L1-resident
across the row loop while the triple-loop column walk streams whole
cache lines from L3/DRAM.  Unit-stride accesses move their own bytes;
non-unit strides move full lines; L1-resident accesses cost nothing here
because the load/store ports already bound them.

Fixed per-call costs (the JNI boundary for native kernels) are added
once, producing the paper's small-``n`` crossover where the Java SAXPY
beats the LMS kernel (Figure 6a).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.timing.cache import (
    CacheHierarchy,
    HASWELL_CACHES,
    StreamInfo,
    assign_streams,
)
from repro.timing.kernelmodel import (
    BoundEvalError,
    KernelItem,
    MachineKernel,
    MachineLoop,
    MachineOp,
    SetupAssign,
    eval_bound,
    trip_count,
)
from repro.timing.uarch import HASWELL, Microarch


@dataclass
class KernelCost:
    """The priced kernel: total cycles and the binding-resource trace."""

    cycles: float
    call_overhead: float
    bounds: dict[str, float] = field(default_factory=dict)

    def flops_per_cycle(self, flops: float) -> float:
        return flops / self.cycles if self.cycles > 0 else 0.0


@dataclass
class CostModel:
    uarch: Microarch = HASWELL
    caches: CacheHierarchy = HASWELL_CACHES

    # -- public ---------------------------------------------------------------

    def cost(self, kernel: MachineKernel, params: dict[str, float],
             footprints: dict[str, float] | None = None,
             calls: int = 1) -> KernelCost:
        """Price one invocation (times ``calls``) of a machine kernel.

        ``footprints`` maps stream names (array parameters) to their
        total footprint in bytes; it is the fallback residency for
        accesses with no reuse in any enclosing loop.
        """
        streams = assign_streams(footprints or {}, self.caches)
        env: dict[str, float] = dict(params)
        body_cycles, bounds = self._items_cost(
            kernel.body, env, streams, kernel.inefficiency, loop_stack=[])
        per_call = body_cycles + kernel.call_overhead_cycles
        return KernelCost(cycles=per_call * calls,
                          call_overhead=kernel.call_overhead_cycles,
                          bounds=bounds)

    # -- internals ---------------------------------------------------------------

    def _items_cost(self, items: Sequence[KernelItem],
                    env: dict[str, float],
                    streams: dict[str, StreamInfo],
                    inefficiency: float,
                    loop_stack: list[tuple[str, int]]
                    ) -> tuple[float, dict[str, float]]:
        total = 0.0
        bounds: dict[str, float] = {}
        flat: list[MachineOp] = []
        for item in items:
            if isinstance(item, SetupAssign):
                try:
                    env[item.name] = eval_bound(item.expr, env)
                except BoundEvalError:
                    pass  # data value, never used in a loop bound
                flat.extend(item.ops)
            elif isinstance(item, MachineOp):
                flat.append(item)
            elif isinstance(item, MachineLoop):
                loop_cycles, loop_bounds = self._loop_cost(
                    item, env, streams, inefficiency, loop_stack)
                total += loop_cycles
                for k, v in loop_bounds.items():
                    bounds[k] = bounds.get(k, 0.0) + v
        if flat:
            cycles, which = self._iter_cost(flat, streams, inefficiency,
                                            loop_stack)
            total += cycles
            bounds[which] = bounds.get(which, 0.0) + cycles
        return total, bounds

    def _loop_cost(self, loop: MachineLoop, env: dict[str, float],
                   streams: dict[str, StreamInfo],
                   inefficiency: float,
                   loop_stack: list[tuple[str, int]]
                   ) -> tuple[float, dict[str, float]]:
        trips = trip_count(loop, env)
        if trips == 0:
            return 0.0, {}
        flat = [i for i in loop.body if isinstance(i, MachineOp)]
        inner = [i for i in loop.body if isinstance(i, MachineLoop)]
        setups = [i for i in loop.body if isinstance(i, SetupAssign)]

        # Bind the loop var for inner-loop bounds; rectangular nests only
        # need one representative value.
        env_inner = dict(env)
        env_inner[loop.var] = eval_bound(loop.start, env)
        for s in setups:
            try:
                env_inner[s.name] = eval_bound(s.expr, env_inner)
            except BoundEvalError:
                pass  # data value, never used in a loop bound
            flat.extend(s.ops)

        stack = loop_stack + [(loop.var, trips)]
        iter_cycles = 0.0
        bounds: dict[str, float] = {}
        if flat or not inner:
            ops = flat + list(loop.overhead)
            cycles, which = self._iter_cost(ops, streams, inefficiency,
                                            stack)
            iter_cycles += cycles
            bounds[which] = trips * cycles
        for il in inner:
            inner_cycles, inner_bounds = self._loop_cost(
                il, env_inner, streams, inefficiency, stack)
            iter_cycles += inner_cycles
            for k, v in inner_bounds.items():
                bounds[k] = bounds.get(k, 0.0) + trips * v
        return trips * iter_cycles, bounds

    def _iter_cost(self, ops: Sequence[MachineOp],
                   streams: dict[str, StreamInfo],
                   inefficiency: float,
                   loop_stack: list[tuple[str, int]]
                   ) -> tuple[float, str]:
        u = self.uarch
        fp_add = fp_mul = fp_total = 0.0
        loads = stores = 0.0
        int_alu = int_vec = int_vec_mul = 0.0
        int_vec_logic = int_vec_shift = 0.0
        shuffles = branches = cvts = 0.0
        serial = 0.0
        uops = 0.0
        chain_latency = 0.0
        mem_cycles = 0.0

        for op in ops:
            n = op.count
            # 512-bit ops on a 256-bit machine split into two uops.
            splits = max(1, (op.bits * op.lanes) // u.vector_bits) \
                if op.lanes > 1 else 1
            n_eff = n * splits
            uops += n_eff
            if op.on_dep_chain:
                chain_latency += u.latency_of(op.kind, op.is_int) * n
            if op.is_memory:
                if op.kind == "gather":
                    serial += u.gather_cycles_per_lane * op.lanes * n
                elif op.kind == "load":
                    loads += n_eff
                else:
                    stores += n_eff
                mem_cycles += self._mem_cost(op, streams, loop_stack) * n
                continue
            if op.kind in ("add", "sub"):
                if op.is_int:
                    if op.lanes == 1:
                        int_alu += n_eff
                    else:
                        int_vec += n_eff
                else:
                    fp_add += n_eff
                    fp_total += n_eff
            elif op.kind == "mul":
                if op.is_int:
                    if op.lanes == 1:
                        int_alu += n_eff
                    else:
                        int_vec_mul += n_eff
                else:
                    fp_mul += n_eff
                    fp_total += n_eff
            elif op.kind == "fma":
                fp_mul += n_eff
                fp_total += n_eff
            elif op.kind == "div":
                serial += u.div_cycles.get(op.bits, 8.0) * n_eff
            elif op.kind == "sqrt":
                serial += u.sqrt_cycles * n_eff
            elif op.kind == "math":
                serial += u.math_cycles * n_eff
            elif op.kind == "rng":
                serial += u.rng_cycles * n
            elif op.kind == "cvt":
                cvts += n_eff
            elif op.kind in ("logic", "mov"):
                if op.lanes == 1:
                    int_alu += n_eff
                else:
                    int_vec_logic += n_eff
            elif op.kind == "shift":
                if op.lanes == 1:
                    int_alu += n_eff
                else:
                    int_vec_shift += n_eff
            elif op.kind in ("shuffle", "reduce"):
                shuffles += n_eff
            elif op.kind in ("cmp",):
                int_alu += n_eff
            elif op.kind == "branch":
                branches += n_eff
            else:
                int_alu += n_eff

        throughput = max(
            fp_add / u.fp_add_per_cycle,
            fp_total / u.fp_total_per_cycle,
            loads / u.loads_per_cycle,
            stores / u.stores_per_cycle,
            int_alu / u.int_alu_per_cycle,
            int_vec / u.int_vec_per_cycle,
            int_vec_logic / u.int_vec_logic_per_cycle,
            int_vec_shift / u.int_vec_shift_per_cycle,
            int_vec_mul / u.int_vec_mul_per_cycle,
            shuffles / u.shuffle_per_cycle,
            branches / u.branch_per_cycle,
            cvts / u.cvt_per_cycle,
            uops / u.issue_width,
        ) * inefficiency + serial

        best = max(throughput, chain_latency, mem_cycles)
        if best == mem_cycles and mem_cycles > 0:
            which = "memory"
        elif best == chain_latency and chain_latency > 0:
            which = "latency"
        else:
            which = "compute"
        return best, which

    def _mem_cost(self, op: MachineOp, streams: dict[str, StreamInfo],
                  loop_stack: list[tuple[str, int]]) -> float:
        elem_bytes = op.bits // 8
        level = self._residency(op, streams, loop_stack, elem_bytes)
        if level is None or level.name == "L1":
            return 0.0  # port pressure already accounted for
        if op.stride_elems is None or \
                abs(op.stride_elems) * elem_bytes > level.line_bytes:
            bytes_moved = float(level.line_bytes)
        else:
            bytes_moved = float(op.vector_bytes)
        return bytes_moved / level.bytes_per_cycle

    def _residency(self, op: MachineOp, streams: dict[str, StreamInfo],
                   loop_stack: list[tuple[str, int]], elem_bytes: int):
        """Reuse-aware residency of one access.

        Scan enclosing loops from innermost out; the first loop whose
        variable does not appear in the access index re-executes the
        same addresses, so the access is served from the level holding
        the bytes touched by the loops inside it.
        """
        index_vars = set(op.index_vars)
        bytes_per_access = float(op.vector_bytes)
        if op.stride_elems is None or \
                abs(op.stride_elems or 0) * elem_bytes > 64:
            bytes_per_access = 64.0
        info = streams.get(op.stream or "")
        cap = info.footprint_bytes if info is not None and \
            info.footprint_bytes > 0 else float("inf")
        reuse_bytes = min(bytes_per_access, cap)
        for var, trips in reversed(loop_stack):
            if var not in index_vars:
                return self.caches.residency(reuse_bytes)
            reuse_bytes = min(reuse_bytes * max(1, trips), cap)
        # No reuse in any enclosing loop: fall back to the stream's
        # total-footprint residency (streaming behaviour).
        if info is None:
            return None
        return info.level
