"""The machine-kernel representation both backends lower to.

A :class:`MachineKernel` is a structured description of compiled code:
scalar setup assignments (whose values parameterize loop bounds), nested
counted loops, and flat machine operations.  Loop bounds are kept as
Java-AST expressions evaluated against the runtime parameters, so one
lowering prices every problem size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.jvm.ast import Expr
else:  # bounds are duck-typed Java-AST expressions
    Expr = object


@dataclass(frozen=True)
class MachineOp:
    """One machine operation of compiled code.

    ``kind`` classes: ``load``, ``store``, ``add``, ``mul``, ``div``,
    ``fma``, ``cmp``, ``branch``, ``mov``, ``cvt``, ``logic``, ``shift``,
    ``shuffle``, ``gather``, ``reduce``, ``rng``, ``math`` (SVML-class).

    ``lanes`` > 1 marks a SIMD op (4 = SSE floats, 8 = AVX floats...).
    ``stream`` labels the array a memory op touches, with
    ``stride_elems`` the per-iteration element stride of the *innermost*
    loop (non-unit strides cost full cache lines).
    ``on_dep_chain`` marks ops on the loop-carried dependency cycle
    (accumulators): they bound the loop by latency, not throughput.
    """

    kind: str
    bits: int = 32
    lanes: int = 1
    stream: str | None = None
    stride_elems: int | None = 1
    offset_elems: int = 0
    # Enclosing loop variables the access index depends on; loops NOT
    # listed here see the same addresses every iteration (reuse), which
    # drives the cost model's cache-residency analysis.
    index_vars: tuple[str, ...] = ()
    on_dep_chain: bool = False
    is_int: bool = False
    count: int = 1

    @property
    def is_memory(self) -> bool:
        return self.kind in ("load", "store", "gather")

    @property
    def vector_bytes(self) -> int:
        return self.bits * self.lanes // 8


@dataclass(frozen=True)
class SetupAssign:
    """A scalar setup statement: binds a name used in loop bounds."""

    name: str
    expr: Expr
    ops: tuple[MachineOp, ...] = ()


@dataclass
class MachineLoop:
    """A counted loop: bounds as expressions, body of items."""

    var: str
    start: Expr
    end: Expr
    step: Expr
    body: list["KernelItem"] = field(default_factory=list)
    # Loop overhead ops per iteration (index add + cmp + branch).
    overhead: tuple[MachineOp, ...] = (
        MachineOp("add", is_int=True), MachineOp("cmp", is_int=True),
        MachineOp("branch", is_int=True),
    )


KernelItem = Union[MachineOp, MachineLoop, SetupAssign]


@dataclass
class MachineKernel:
    """Compiled code ready for pricing."""

    name: str
    params: list[str]
    body: list[KernelItem] = field(default_factory=list)
    # Per-invocation fixed overhead in cycles (JNI boundary, call cost).
    call_overhead_cycles: float = 0.0
    # Compilation tier that produced this kernel ("c1", "c2", "native").
    tier: str = "native"
    # Multiplier on compute throughput (C1 emits lazier code).
    inefficiency: float = 1.0


class BoundEvalError(RuntimeError):
    """A loop bound could not be evaluated from the parameters."""


def eval_bound(expr: Expr, env: dict[str, float]) -> float:
    """Evaluate a scalar bound expression against the runtime env."""
    from repro.jvm.ast import ArrayLoad, Bin, ConstExpr, Conv, Local

    if isinstance(expr, ConstExpr):
        return expr.value
    if isinstance(expr, Local):
        if expr.name not in env:
            raise BoundEvalError(f"unbound {expr.name!r} in loop bound")
        return env[expr.name]
    if isinstance(expr, Conv):
        value = eval_bound(expr.expr, env)
        return int(value) if not expr.target.is_float else float(value)
    if isinstance(expr, Bin):
        a = eval_bound(expr.lhs, env)
        b = eval_bound(expr.rhs, env)
        table = {
            "+": lambda: a + b, "-": lambda: a - b, "*": lambda: a * b,
            "/": lambda: a / b if isinstance(a, float) else int(a) // int(b),
            "%": lambda: a % b,
            "<<": lambda: int(a) << int(b), ">>": lambda: int(a) >> int(b),
            "&": lambda: int(a) & int(b), "|": lambda: int(a) | int(b),
            "^": lambda: int(a) ^ int(b),
            "<": lambda: a < b, "<=": lambda: a <= b,
            ">": lambda: a > b, ">=": lambda: a >= b,
            "==": lambda: a == b, "!=": lambda: a != b,
        }
        if expr.op not in table:
            raise BoundEvalError(f"operator {expr.op!r} in loop bound")
        return table[expr.op]()
    if isinstance(expr, ArrayLoad):
        raise BoundEvalError("array loads cannot appear in loop bounds")
    raise BoundEvalError(f"cannot evaluate {expr!r}")


def trip_count(loop: MachineLoop, env: dict[str, float]) -> int:
    start = eval_bound(loop.start, env)
    end = eval_bound(loop.end, env)
    step = eval_bound(loop.step, env)
    if step <= 0:
        raise BoundEvalError("loop step must be positive")
    return max(0, -(-int(end - start) // int(step)))


def flat_ops(items: Sequence[KernelItem]) -> list[MachineOp]:
    """The machine ops at this nesting level (loops excluded)."""
    out: list[MachineOp] = []
    for item in items:
        if isinstance(item, MachineOp):
            out.append(item)
        elif isinstance(item, SetupAssign):
            out.extend(item.ops)
    return out


def inner_loops(items: Sequence[KernelItem]) -> list[MachineLoop]:
    return [item for item in items if isinstance(item, MachineLoop)]
