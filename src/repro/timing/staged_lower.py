"""Lowering LMS-staged kernels to machine kernels for pricing.

The native backend compiles staged graphs to real machine code; this
module produces the cost model's view of that code.  Intrinsic nodes map
to vector machine ops by name pattern (an FMA is an FMA), staged scalar
arithmetic maps to scalar ALU ops, staged loops map to
:class:`MachineLoop` with their bound expressions translated, and
variable accumulators are traced to mark loop-carried dependency chains.

Every native invocation carries the JNI-boundary overhead (call, no
inlining, plus per-array pinning — the paper's
``GetPrimitiveArrayCritical``), which produces the small-``n`` SAXPY
crossover of Figure 6a.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.isa.base import IntrinsicsDef
from repro.jvm import ast as jast
from repro.jvm.jit.lower import analyze_affine
from repro.jvm.jtypes import JDOUBLE, JFLOAT, JINT, JLONG
from repro.lms import defs as ldefs
from repro.lms.expr import Const, Exp, Sym
from repro.lms.staging import StagedFunction
from repro.lms.types import ArrayType, ScalarType, VectorType
from repro.timing.kernelmodel import (
    KernelItem,
    MachineKernel,
    MachineLoop,
    MachineOp,
    SetupAssign,
)
from repro.timing.uarch import HASWELL, Microarch

ARRAY_PIN_CYCLES = 150.0  # GetPrimitiveArrayCritical per array

# gcc -O3 output is close to, but not exactly, the ideal schedule the
# port model assumes (register moves, imperfect scheduling); calibrated
# against the paper's Figure 6 peak values.
NATIVE_INEFFICIENCY = 1.3


def _sym_name(sym: Sym) -> str:
    return f"x{sym.id}"


def lms_to_java_expr(exp: Exp, defs: dict[int, ldefs.Stm]) -> jast.Expr:
    """Translate a staged scalar expression into a Java-AST expression.

    Symbols defined by pure scalar nodes are inlined recursively so loop
    bounds like ``(n >> 3) << 3`` survive translation; other symbols
    become ``Local`` references (bound by SetupAssign or loop vars).
    """
    if isinstance(exp, Const):
        tp = exp.tp
        if isinstance(tp, ScalarType) and tp.is_float:
            jt = JFLOAT if tp.bits == 32 else JDOUBLE
        else:
            jt = JLONG if isinstance(tp, ScalarType) and tp.bits == 64 \
                else JINT
        return jast.ConstExpr(exp.value, jt)
    if isinstance(exp, Sym):
        return jast.Local(_sym_name(exp))
    raise TypeError(f"cannot translate {exp!r}")


@dataclass
class _Classified:
    kind: str
    is_int: bool = False
    mem: str | None = None  # "load" | "store" | "gather" | None


_NAME_PATTERNS: tuple[tuple[str, _Classified], ...] = (
    (r"(fmadd|fmsub|fnmadd|fnmsub|fmaddsub|fmsubadd)", _Classified("fma")),
    (r"(loadu|load|lddqu|loaddup|maskload|broadcast_s[sd]|broadcast_ps"
     r"|stream_load|extload|loadunpack)", _Classified("load", mem="load")),
    (r"(storeu|store|maskstore|stream|packstore|extstore|storenr)",
     _Classified("store", mem="store")),
    (r"gather", _Classified("gather", mem="gather")),
    (r"scatter", _Classified("store", mem="store")),
    (r"(sin|cos|tan|exp|log|pow|erf|cdfnorm|cbrt|hypot|atan|asin|acos"
     r"|sinh|cosh|tanh|invsqrt|svml)", _Classified("math")),
    (r"(rdrand|rdseed)", _Classified("rng")),
    (r"sqrt", _Classified("sqrt")),
    (r"(div|rem)_(ps|pd|ss|sd)", _Classified("div")),
    (r"(div|rem)_ep", _Classified("math", is_int=True)),
    # Multiply-class patterns come before the add family: "madd" would
    # otherwise be swallowed by the "add" alternation.
    (r"(mullo|mulhi|mulhrs|maddubs|madd|mul|dp)_(ps|pd|ss|sd)",
     _Classified("mul")),
    (r"(mullo|mulhi|mulhrs|maddubs|madd|mul)_(ep|pi)",
     _Classified("mul", is_int=True)),
    (r"(add|sub|hadd|hsub|addsub|min|max|avg|abs|sign|sad)_(ps|pd|ss|sd)",
     _Classified("add")),
    (r"(add|sub|hadd|hsub|adds|subs|min|max|avg|abs|sign|sad)_(ep|pi|pu)",
     _Classified("add", is_int=True)),
    (r"(and|or|xor|andnot|test[zc]|ternarylogic)", _Classified("logic",
                                                               is_int=True)),
    (r"(sll|srl|sra|rol|ror|bslli|bsrli)", _Classified("shift",
                                                       is_int=True)),
    (r"(unpack|shuffle|permute|blend|pack|alignr|insert|extract"
     r"|broadcast|movehl|movelh|movehdup|moveldup|movedup|swizzle"
     r"|compress|expand)", _Classified("shuffle")),
    (r"(cvt|castps|castpd|castsi|round|floor|ceil|trunc)",
     _Classified("cvt")),
    (r"(movemask|popcnt|lzcnt|tzcnt|crc32|pext|pdep|cmpestr|cmpistr)",
     _Classified("cmp", is_int=True)),
    (r"reduce", _Classified("reduce")),
    (r"(cmp|cmpeq|cmpgt|cmplt)", _Classified("cmp")),
    (r"(set1|setzero|setr|set)_", _Classified("shuffle")),
)


def classify_intrinsic(name: str) -> _Classified:
    for pattern, cls in _NAME_PATTERNS:
        if re.search(pattern, name):
            return cls
    return _Classified("add")  # something cheap and lane-wise


def _lanes_bits(node: IntrinsicsDef) -> tuple[int, int]:
    tp = node.tp
    if isinstance(tp, VectorType) and tp.kind != "mask":
        return max(1, tp.bits // 32), 32
    # void (stores) or scalar returns: infer from the first vector arg.
    for arg in node.args:
        if isinstance(arg, Exp) and isinstance(arg.tp, VectorType):
            return max(1, arg.tp.bits // 32), 32
    return 1, 32


@dataclass
class _StagedLowerer:
    staged: StagedFunction
    uarch: Microarch = HASWELL
    defs: dict[int, ldefs.Stm] = field(default_factory=dict)
    param_name_of: dict[int, str] = field(default_factory=dict)
    address_syms: set[int] = field(default_factory=set)

    def lower(self) -> MachineKernel:
        body = self.staged.scheduled()
        self.defs = {s.sym.id: s for s in _all_stms(body)}
        for sym, name in zip(self.staged.params, self.staged.param_names):
            self.param_name_of[sym.id] = name
        self.address_syms = self._find_address_syms(body)
        items = self._items(body.stms, loop_vars=[], chain_syms=set())
        n_arrays = sum(1 for p in self.staged.params
                       if isinstance(p.tp, ArrayType))
        return MachineKernel(
            name=self.staged.name,
            params=[_sym_name(p) for p in self.staged.params],
            body=items,
            call_overhead_cycles=self.uarch.jni_overhead_cycles
            + ARRAY_PIN_CYCLES * n_arrays,
            tier="native",
            inefficiency=NATIVE_INEFFICIENCY,
        )

    # -- helpers -------------------------------------------------------------

    def _find_address_syms(self, body: ldefs.Block) -> set[int]:
        """Scalar syms consumed only by memory addressing.

        x86 addressing modes and strength-reduced induction variables
        absorb affine index arithmetic, so these ops cost nothing in the
        compiled code (matching what gcc emits for the staged loops).
        """
        stms = _all_stms(body)
        offset_roots: set[int] = set()
        compute_uses: set[int] = set()
        for stm in stms:
            rhs = stm.rhs
            if isinstance(rhs, IntrinsicsDef):
                n_regular = len(rhs.params_meta)
                for arg in rhs.args[n_regular:]:
                    if isinstance(arg, Sym):
                        offset_roots.add(arg.id)
                for arg in rhs.args[:n_regular]:
                    if isinstance(arg, Sym):
                        compute_uses.add(arg.id)
            elif isinstance(rhs, (ldefs.ArrayApply, ldefs.ArrayUpdate)):
                if isinstance(rhs.index, Sym):
                    offset_roots.add(rhs.index.id)
                if isinstance(rhs, ldefs.ArrayUpdate) and \
                        isinstance(rhs.value, Sym):
                    compute_uses.add(rhs.value.id)
            elif isinstance(rhs, (ldefs.ForLoop,)):
                continue  # bounds are evaluated, not executed per-iter
            else:
                for arg in rhs.exp_args:
                    if isinstance(arg, Sym):
                        compute_uses.add(arg.id)

        # Expand offset roots through pure scalar arithmetic.
        address: set[int] = set()
        frontier = list(offset_roots)
        while frontier:
            sid = frontier.pop()
            if sid in address:
                continue
            stm = self.defs.get(sid)
            if stm is None:
                continue
            if isinstance(stm.rhs, (ldefs.BinaryOp, ldefs.Convert)):
                address.add(sid)
                for arg in stm.rhs.exp_args:
                    if isinstance(arg, Sym):
                        frontier.append(arg.id)
        return address - compute_uses

    def _stream_of(self, arr: Exp) -> str:
        if isinstance(arr, Sym):
            return self.param_name_of.get(arr.id, _sym_name(arr))
        return "?"

    def _offset_info(self, offset: Exp, loop_vars: list[str]
                     ) -> tuple[int | None, int, tuple[str, ...]]:
        try:
            jexpr = self._java(offset)
        except TypeError:
            return None, 0, tuple(loop_vars)
        aff = analyze_affine(jexpr, set(loop_vars))
        innermost = loop_vars[-1] if loop_vars else None
        stride = aff.coeff(innermost) if innermost else 0
        index_vars = tuple(sorted(v for v, c in aff.coeffs.items()
                                  if c != 0))
        return stride, aff.const, index_vars

    def _java(self, exp: Exp) -> jast.Expr:
        """Translate, inlining pure scalar defs so bounds evaluate."""
        if isinstance(exp, Const):
            return lms_to_java_expr(exp, self.defs)
        if isinstance(exp, Sym):
            stm = self.defs.get(exp.id)
            if stm is not None and isinstance(stm.rhs, ldefs.BinaryOp):
                return jast.Bin(stm.rhs.op, self._java(stm.rhs.lhs),
                                self._java(stm.rhs.rhs))
            if stm is not None and isinstance(stm.rhs, ldefs.Convert):
                return self._java(stm.rhs.operand)
            return jast.Local(_sym_name(exp))
        raise TypeError(f"cannot translate {exp!r}")

    # -- chain detection -----------------------------------------------------

    def _chain_syms(self, stms: list[ldefs.Stm]) -> set[int]:
        """Sym ids on a loop-carried variable-accumulator path."""
        reads: dict[int, int] = {}  # var sym id -> read result sym id
        for stm in stms:
            if isinstance(stm.rhs, ldefs.VarRead):
                reads[stm.rhs.var.id] = stm.sym.id
        chain: set[int] = set()
        for stm in stms:
            if not isinstance(stm.rhs, ldefs.VarAssign):
                continue
            var_id = stm.rhs.var.id
            if var_id not in reads:
                continue
            target = reads[var_id]
            # Walk back from the assigned value; mark syms whose
            # transitive inputs include the read.
            memo: dict[int, bool] = {}

            def depends(sym_id: int) -> bool:
                if sym_id == target:
                    return True
                if sym_id in memo:
                    return memo[sym_id]
                memo[sym_id] = False
                stm2 = self.defs.get(sym_id)
                if stm2 is None:
                    return False
                hit = any(isinstance(a, Sym) and depends(a.id)
                          for a in stm2.rhs.exp_args)
                memo[sym_id] = hit
                return hit

            value = stm.rhs.value
            if isinstance(value, Sym) and depends(value.id):
                # Everything on the path from read to assignment.
                for stm2 in stms:
                    sid = stm2.sym.id
                    if sid == target:
                        continue
                    if depends(sid) and sid != stm.sym.id:
                        chain.add(sid)
        return chain

    # -- lowering ------------------------------------------------------------

    def _items(self, stms: list[ldefs.Stm], loop_vars: list[str],
               chain_syms: set[int]) -> list[KernelItem]:
        items: list[KernelItem] = []
        for stm in stms:
            items.extend(self._stm(stm, loop_vars, chain_syms))
        return items

    def _stm(self, stm: ldefs.Stm, loop_vars: list[str],
             chain_syms: set[int]) -> list[KernelItem]:
        rhs = stm.rhs
        on_chain = stm.sym.id in chain_syms
        loop_var = loop_vars[-1] if loop_vars else None
        if isinstance(rhs, (ldefs.BinaryOp, ldefs.Convert)) and \
                stm.sym.id in self.address_syms and loop_vars:
            return []  # folded into addressing modes
        if isinstance(rhs, ldefs.BinaryOp):
            tp = rhs.tp
            is_int = isinstance(tp, ScalarType) and not tp.is_float
            kind = {"+": "add", "-": "add", "*": "mul", "/": "div",
                    "%": "div", "&": "logic", "|": "logic", "^": "logic",
                    "<<": "shift", ">>": "shift"}.get(rhs.op, "cmp")
            if kind == "div" and is_int:
                kind = "mul"  # strength-reduced by the compiler
            op = MachineOp(kind, bits=32, is_int=is_int,
                           on_dep_chain=on_chain)
            if loop_var is None:
                return [SetupAssign(name=_sym_name(stm.sym),
                                    expr=self._java(stm.sym), ops=(op,))]
            return [op]
        if isinstance(rhs, (ldefs.UnaryOp, ldefs.Select)):
            return [MachineOp("add", is_int=True, on_dep_chain=on_chain)]
        if isinstance(rhs, ldefs.Convert):
            if loop_var is None:
                return [SetupAssign(name=_sym_name(stm.sym),
                                    expr=self._java(stm.sym),
                                    ops=(MachineOp("cvt", is_int=True),))]
            return [MachineOp("cvt", on_dep_chain=on_chain)]
        if isinstance(rhs, ldefs.ArrayApply):
            stride, offset, ivars = self._offset_info(rhs.index, loop_vars)
            et = rhs.tp
            bits = et.bits if isinstance(et, ScalarType) else 32
            return [MachineOp("load", bits=bits,
                              stream=self._stream_of(rhs.array),
                              stride_elems=stride, offset_elems=offset,
                              index_vars=ivars,
                              is_int=isinstance(et, ScalarType)
                              and not et.is_float)]
        if isinstance(rhs, ldefs.ArrayUpdate):
            stride, offset, ivars = self._offset_info(rhs.index, loop_vars)
            et = rhs.value.tp
            bits = et.bits if isinstance(et, ScalarType) else 32
            return [MachineOp("store", bits=bits,
                              stream=self._stream_of(rhs.array),
                              stride_elems=stride, offset_elems=offset,
                              index_vars=ivars,
                              is_int=isinstance(et, ScalarType)
                              and not et.is_float)]
        if isinstance(rhs, (ldefs.VarDecl, ldefs.VarRead)):
            return []  # register-allocated
        if isinstance(rhs, ldefs.VarAssign):
            return []
        if isinstance(rhs, ldefs.ReflectMutable):
            return []
        if isinstance(rhs, ldefs.ForLoop):
            chain = self._chain_syms(list(rhs.body.stms))
            body = self._items(list(rhs.body.stms),
                               loop_vars=loop_vars + [_sym_name(rhs.index)],
                               chain_syms=chain)
            return [MachineLoop(
                var=_sym_name(rhs.index),
                start=self._java(rhs.start), end=self._java(rhs.end),
                step=self._java(rhs.step), body=body)]
        if isinstance(rhs, ldefs.IfThenElse):
            then_items = self._items(list(rhs.then_block.stms), loop_vars,
                                     chain_syms)
            else_items = self._items(list(rhs.else_block.stms), loop_vars,
                                     chain_syms)
            longer = then_items if len(then_items) >= len(else_items) \
                else else_items
            return [MachineOp("branch", is_int=True)] + longer
        if isinstance(rhs, ldefs.WhileLoop):
            # Price as a loop with unknown trip count of 1 (rare in
            # kernels; the paper's examples never use staged while).
            body = self._items(list(rhs.body.stms), loop_vars, chain_syms)
            return [MachineOp("branch", is_int=True)] + body
        if isinstance(rhs, IntrinsicsDef):
            return [self._intrinsic(stm, rhs, loop_vars, on_chain)]
        return []

    def _intrinsic(self, stm: ldefs.Stm, rhs: IntrinsicsDef,
                   loop_vars: list[str], on_chain: bool) -> MachineOp:
        cls = classify_intrinsic(rhs.intrinsic_name)
        lanes, bits = _lanes_bits(rhs)
        stream = None
        stride: int | None = 1
        offset = 0
        ivars: tuple[str, ...] = ()
        if cls.mem is not None:
            mem_idx = rhs.mem_indices()
            if mem_idx:
                n_regular = len(rhs.params_meta)
                arr = rhs.args[mem_idx[0]]
                off_exp = rhs.args[n_regular]
                stream = self._stream_of(arr)
                if isinstance(off_exp, Exp):
                    stride, offset, ivars = self._offset_info(
                        off_exp, loop_vars)
                # Vector loads move lanes elements per unit offset; the
                # element stride for adjacency is in array elements.
        return MachineOp(
            kind=cls.kind if cls.mem is None else cls.mem,
            bits=bits, lanes=lanes, stream=stream,
            stride_elems=stride, offset_elems=offset, index_vars=ivars,
            on_dep_chain=on_chain, is_int=cls.is_int)


def _all_stms(block: ldefs.Block) -> list[ldefs.Stm]:
    out: list[ldefs.Stm] = []
    for stm in block.stms:
        out.append(stm)
        for inner in stm.rhs.blocks:
            out.extend(_all_stms(inner))
    return out


def lower_staged(staged: StagedFunction,
                 uarch: Microarch = HASWELL) -> MachineKernel:
    """Lower a staged function to the cost model's machine kernel."""
    return _StagedLowerer(staged, uarch).lower()


def param_env(staged: StagedFunction, values: dict[str, float]
              ) -> dict[str, float]:
    """Build the cost-model environment from named parameter values."""
    env: dict[str, float] = {}
    for sym, name in zip(staged.params, staged.param_names):
        if name in values:
            env[_sym_name(sym)] = values[name]
            env[name] = values[name]
    return env
