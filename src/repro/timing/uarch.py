"""Microarchitecture parameters (Haswell, the paper's test machine).

Latencies and throughputs follow Intel's optimization manual and Agner
Fog's tables for Haswell (Xeon E3-1285L v3): two FMA/multiply ports, one
FP add port (the Haswell quirk), two load ports and one store port, a
4-uop issue width.  The cost model uses these as resource caps per loop
iteration and sums latencies along loop-carried dependency chains.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Microarch:
    """Per-cycle resource caps and per-op latencies."""

    name: str
    issue_width: float = 4.0
    # Throughput caps: ops per cycle by resource class.
    fp_add_per_cycle: float = 1.0      # Haswell: FP add only on port 1
    fp_mul_fma_per_cycle: float = 2.0  # ports 0 and 1
    fp_total_per_cycle: float = 2.0
    loads_per_cycle: float = 2.0
    stores_per_cycle: float = 1.0
    int_alu_per_cycle: float = 4.0
    int_vec_per_cycle: float = 2.0      # paddb/pminsb...: ports 1,5
    int_vec_logic_per_cycle: float = 3.0  # vpand/vpxor: ports 0,1,5
    int_vec_shift_per_cycle: float = 1.0  # vpsrlw/vpsllw: port 0
    int_vec_mul_per_cycle: float = 1.0  # pmaddubsw/pmaddwd: port 0
    shuffle_per_cycle: float = 1.0     # port 5
    branch_per_cycle: float = 2.0
    cvt_per_cycle: float = 1.0
    # Serialized (unpipelined-ish) op costs in cycles per op.
    div_cycles: dict[int, float] = field(default_factory=lambda: {
        32: 5.0, 64: 8.0})  # per vector op (vdivps ~ 5c recip tput)
    sqrt_cycles: float = 7.0
    math_cycles: float = 20.0          # SVML-class polynomial routines
    rng_cycles: float = 300.0          # RDRAND is ~300+ cycles on Haswell
    gather_cycles_per_lane: float = 2.0
    # Latencies (cycles) for dependency chains.
    lat_fp_add: float = 3.0
    lat_fp_mul: float = 5.0
    lat_fma: float = 5.0
    lat_fp_div: float = 13.0
    lat_int_alu: float = 1.0
    lat_int_mul: float = 3.0
    lat_cvt: float = 3.0
    lat_load: float = 4.0              # L1 hit
    lat_shuffle: float = 1.0
    # Native vector register width.
    vector_bits: int = 256
    # Fixed cost of crossing the managed/native boundary (JNI call:
    # argument marshalling, no inlining, callee-saved spills).
    jni_overhead_cycles: float = 450.0

    def latency_of(self, kind: str, is_int: bool, on_fma: bool = False
                   ) -> float:
        if kind == "load":
            return self.lat_load
        if kind == "add":
            return self.lat_int_alu if is_int else self.lat_fp_add
        if kind == "mul":
            return self.lat_int_mul if is_int else self.lat_fp_mul
        if kind == "fma":
            return self.lat_fma
        if kind == "div":
            return self.lat_fp_div
        if kind == "cvt":
            return self.lat_cvt
        if kind in ("logic", "shift", "mov", "cmp"):
            return self.lat_int_alu
        if kind == "shuffle":
            return self.lat_shuffle
        if kind == "reduce":
            return self.lat_fp_add * 3  # log2(8) stages
        return 1.0


HASWELL = Microarch(name="Haswell (Xeon E3-1285L v3)")

# The artifact notes "Broadwell, Skylake, Kaby Lake or later would also
# work"; Skylake's relevant deltas: FP add runs on both FMA ports at
# latency 4 (no more port-1-only adds), slightly better divider, and
# higher sustained L2 bandwidth (modelled in the cache hierarchy).
SKYLAKE = Microarch(
    name="Skylake",
    fp_add_per_cycle=2.0,
    lat_fp_add=4.0,
    lat_fp_mul=4.0,
    lat_fma=4.0,
    lat_fp_div=11.0,
    div_cycles={32: 4.0, 64: 8.0},
)
