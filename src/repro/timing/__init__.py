"""The Haswell cost model.

The paper reports performance in flops/cycle on a Haswell Xeon
E3-1285L v3 under a warm-cache protocol.  Wall-clock timing of a Python
interpreter cannot reproduce flops-per-cycle figures, so this package
prices the *actual instruction mix* of each compiled kernel on an
analytical Haswell model: issue-port throughput, dependency-chain
latency, the L1/L2/L3/DRAM hierarchy with line-granularity traffic, and
the JNI invocation overhead that penalizes native kernels at small sizes
(Section 3.4: "JNI methods are not inlined and incur additional cost").

Both execution engines lower to the same
:class:`~repro.timing.kernelmodel.MachineKernel` representation: the
MiniVM JIT (C1/C2/SLP) for the Java baselines and
:mod:`repro.timing.staged_lower` for LMS-generated kernels.
"""

from repro.timing.kernelmodel import (
    MachineKernel,
    MachineLoop,
    MachineOp,
    SetupAssign,
)
from repro.timing.uarch import HASWELL, Microarch
from repro.timing.cache import CacheHierarchy, HASWELL_CACHES
from repro.timing.model import CostModel, KernelCost

__all__ = [
    "CacheHierarchy",
    "CostModel",
    "HASWELL",
    "HASWELL_CACHES",
    "KernelCost",
    "MachineKernel",
    "MachineLoop",
    "MachineOp",
    "Microarch",
    "SetupAssign",
]
