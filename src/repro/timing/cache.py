"""The memory hierarchy model (warm-cache protocol, like the paper).

Each memory stream (one array) is assigned the smallest cache level that
holds its footprint — the steady state a warm-cache benchmark converges
to.  Accesses are charged bandwidth from that level: unit-stride
accesses move exactly their bytes, strided accesses move whole cache
lines (the triple-loop MMM's column walk), and L1-resident streams cost
no bandwidth beyond the load/store ports the port model already counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CacheLevel:
    name: str
    capacity_bytes: int
    bytes_per_cycle: float  # sustained bandwidth to the core
    line_bytes: int = 64


@dataclass(frozen=True)
class CacheHierarchy:
    levels: tuple[CacheLevel, ...]
    dram: CacheLevel

    def residency(self, footprint_bytes: float) -> CacheLevel:
        """The smallest level whose capacity holds the footprint."""
        for level in self.levels:
            if footprint_bytes <= level.capacity_bytes:
                return level
        return self.dram

    def level_named(self, name: str) -> CacheLevel:
        for level in self.levels:
            if level.name == name:
                return level
        if name == self.dram.name:
            return self.dram
        raise KeyError(f"unknown cache level {name!r}")


# Haswell Xeon E3-1285L v3: 32KB L1D, 256KB L2, 8MB shared L3.
HASWELL_CACHES = CacheHierarchy(
    levels=(
        CacheLevel("L1", 32 * 1024, bytes_per_cycle=96.0),   # 2x32B ld + 32B st
        CacheLevel("L2", 256 * 1024, bytes_per_cycle=28.0),
        CacheLevel("L3", 8 * 1024 * 1024, bytes_per_cycle=14.0),
    ),
    dram=CacheLevel("DRAM", 1 << 62, bytes_per_cycle=7.0),
)


@dataclass
class StreamInfo:
    """Footprint and residency for one memory stream."""

    name: str
    footprint_bytes: float
    level: CacheLevel

    @property
    def in_l1(self) -> bool:
        return self.level.name == "L1"


def assign_streams(footprints: dict[str, float],
                   hierarchy: CacheHierarchy,
                   shared: bool = True) -> dict[str, StreamInfo]:
    """Assign each stream its residency level.

    With ``shared=True`` (default) the *combined* footprint competes for
    capacity, which is what a warm benchmark touching all arrays every
    iteration experiences.
    """
    total = sum(footprints.values()) if shared else None
    out: dict[str, StreamInfo] = {}
    for name, bytes_ in footprints.items():
        basis = total if shared else bytes_
        out[name] = StreamInfo(name=name, footprint_bytes=bytes_,
                               level=hierarchy.residency(basis))
    return out
