"""Batched kernel execution: coalesce calls, amortize the boundary tax.

The paper's cost model charges the managed-to-native boundary once per
invocation; at serving scale that tax dominates small kernels.  This
module amortizes it two ways (DESIGN.md §13):

* :func:`execute_batch` — the explicit batch API: run N argument sets
  against one kernel, re-reading the kernel's single-attribute tiered
  dispatch per chunk so a concurrent hot-swap splits the batch on a
  chunk boundary (every chunk runs atomically on exactly one tier).
  Native chunks go through :meth:`NativeKernel.call_batch` (one ctypes
  call over a packed ``void**`` table); simulated chunks go through
  :meth:`SimdMachine.run_batch` (one whole-batch numpy sweep when the
  entries share a control-flow path).

* :class:`KernelBatcher` — the implicit coalescing layer behind
  ``REPRO_BATCH=1``: concurrent callers of the same kernel elect a
  leader, which waits out a bounded window (``REPRO_BATCH_WINDOW``
  seconds; 0 coalesces opportunistically — whatever arrived during the
  previous flush forms the next batch) and flushes everything queued
  as one :func:`execute_batch`.

Batching is opt-in and bit-transparent: results, mutated arrays and
simulator op accounting match the equivalent call-by-call loop
(``tests/test_batch.py``).  The one documented semantic difference is
error handling under coalescing: when a flush raises and the batch
cannot be safely replayed entry by entry (the kernel mutates arrays,
so a replay would double-apply side effects), every coalesced caller
in that flush sees the same exception.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Sequence

import repro.obs as obs
from repro.core.env import env_float, env_int

__all__ = [
    "KernelBatcher",
    "batch_enabled",
    "batch_max",
    "batch_window",
    "default_batcher",
    "execute_batch",
]

_TRUTHY = ("1", "true", "on", "yes")

#: Hard ceiling on the coalescing window: the batcher must never turn
#: a microsecond kernel call into an unbounded stall.
_MAX_WINDOW_S = 0.25


def batch_enabled() -> bool:
    """``REPRO_BATCH``: route kernel calls through the coalescing
    batcher (off by default)."""
    import os
    return os.environ.get("REPRO_BATCH", "").strip().lower() in _TRUTHY


def batch_window() -> float:
    """``REPRO_BATCH_WINDOW``: seconds a flush leader waits for
    followers before flushing, clamped to [0, 0.25].  0 (the default)
    never sleeps — calls that arrive while a flush is running form the
    next batch."""
    window = env_float("REPRO_BATCH_WINDOW", 0.0, minimum=0.0)
    return min(window, _MAX_WINDOW_S)


def batch_max() -> int:
    """``REPRO_BATCH_MAX``: largest slice handed to one tier in one
    call.  Chunking bounds arena growth and gives a concurrent
    hot-swap a boundary to land on mid-batch."""
    return env_int("REPRO_BATCH_MAX", 1024, minimum=1)


def execute_batch(kernel, args_seq: Sequence[Sequence[Any]]) -> list:
    """Run every argument set in ``args_seq`` against ``kernel``,
    batching per tier; returns per-entry results in order.

    The kernel's ``_impl`` (the one attribute the tiered hot-swap
    stores to) is re-read for every chunk, so tier promotion stays
    atomic: a batch in flight when the swap lands finishes its current
    chunk on the old tier and runs the rest on the new one.
    """
    entries = [tuple(args) for args in args_seq]
    if not entries:
        return []
    results: list = []
    limit = batch_max()
    for i in range(0, len(entries), limit):
        chunk = entries[i:i + limit]
        impl = kernel._impl
        runner = getattr(impl, "call_batch", None)
        obs.observe("batch.size", float(len(chunk)))
        if runner is not None:
            results.extend(runner(chunk))
        elif impl == getattr(kernel, "_sim_call", None):
            # Unmanaged simulated kernel: the dispatch is a bound
            # method, but the machine still sweeps whole batches.
            results.extend(
                kernel._machine.run_batch(kernel.staged, chunk))
        else:
            results.extend(impl(*args) for args in chunk)
    return results


class _Entry:
    """One queued invocation awaiting its flush."""

    __slots__ = ("args", "done", "result", "error")

    def __init__(self, args: tuple):
        self.args = args
        self.done = threading.Event()
        self.result: Any = None
        self.error: BaseException | None = None


class _Queue:
    """Per-kernel pending entries plus the leader flag."""

    __slots__ = ("lock", "entries", "leader")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.entries: list[_Entry] = []
        self.leader = False


class KernelBatcher:
    """Leader/follower coalescing of concurrent same-kernel calls.

    Queues are keyed by ``id(kernel)``: :class:`CompiledKernel` is an
    unhashable dataclass whose ``==`` stages graph comparisons, and
    identity is exactly the sharing the batcher cares about.
    """

    def __init__(self, window: float | None = None,
                 max_batch: int | None = None) -> None:
        self._window = window
        self._max = max_batch
        self._lock = threading.Lock()
        self._queues: dict[int, _Queue] = {}

    def _queue_for(self, kernel) -> _Queue:
        key = id(kernel)
        with self._lock:
            queue = self._queues.get(key)
            if queue is None:
                queue = self._queues[key] = _Queue()
            return queue

    def submit(self, kernel, args: Sequence[Any]) -> Any:
        """Execute ``kernel(*args)``, coalescing with concurrent
        submissions of the same kernel.  The first caller to find no
        leader becomes one: it waits out the window, then flushes
        everything queued (draining until the queue stays empty) and
        settles every waiter."""
        entry = _Entry(tuple(args))
        queue = self._queue_for(kernel)
        with queue.lock:
            queue.entries.append(entry)
            lead = not queue.leader
            if lead:
                queue.leader = True
        if lead:
            self._lead(kernel, queue)
        else:
            entry.done.wait()
        if entry.error is not None:
            raise entry.error
        return entry.result

    # -- leader side ---------------------------------------------------

    def _lead(self, kernel, queue: _Queue) -> None:
        window = self._window if self._window is not None \
            else batch_window()
        if window > 0:
            time.sleep(min(window, _MAX_WINDOW_S))
        while True:
            with queue.lock:
                batch = list(queue.entries)
                queue.entries.clear()
                if not batch:
                    # Checked under the queue lock: an arrival after
                    # this sees leader == False and elects itself.
                    queue.leader = False
                    return
            self._flush(kernel, batch)

    def _flush(self, kernel, batch: list[_Entry]) -> None:
        start = time.perf_counter()
        try:
            try:
                values = execute_batch(kernel, [e.args for e in batch])
            except Exception as exc:  # noqa: BLE001 - settled per entry
                self._settle_failed(kernel, batch, exc)
            else:
                for entry, value in zip(batch, values):
                    entry.result = value
        finally:
            for entry in batch:
                entry.done.set()
            obs.counter("batch.flushes")
            obs.observe("batch.flush.seconds",
                        time.perf_counter() - start)

    def _settle_failed(self, kernel, batch: list[_Entry],
                       exc: Exception) -> None:
        """A flush raised.  A single-entry batch owns its exception; a
        pure kernel (no mutated arrays) is replayed entry by entry so
        one poisoned call cannot fail its neighbors; a mutating kernel
        cannot be replayed without double-applying side effects, so
        the whole batch shares the exception (documented above)."""
        obs.counter("batch.flush_errors")
        if len(batch) == 1:
            batch[0].error = exc
            return
        staged = getattr(kernel, "staged", None)
        if staged is not None and not staged.mutated_params():
            impl = kernel._impl
            for entry in batch:
                try:
                    entry.result = impl(*entry.args)
                except Exception as err:  # noqa: BLE001 - per caller
                    entry.error = err
            return
        for entry in batch:
            entry.error = exc


_default_batcher = KernelBatcher()


def default_batcher() -> KernelBatcher:
    """The process-wide batcher behind ``REPRO_BATCH=1``."""
    return _default_batcher
