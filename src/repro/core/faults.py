"""Deterministic fault injection for the kernel pipeline.

The stage→compile→smoke→link→publish→dispatch path claims to survive
compiler hangs, partial disk writes and workers killed mid-publish.
This module makes those claims testable: named **injection points** are
threaded through :mod:`repro.codegen.compiler`,
:mod:`repro.codegen.native`, :mod:`repro.core.resilience` and
:mod:`repro.core.cache`, and a ``REPRO_FAULTS`` spec arms any subset of
them with deterministic schedules.  The chaos differential suite
(``tests/test_chaos.py``) runs the tier-1 kernels under randomized
schedules and requires bit-identical results with zero exceptions
leaking into callers.

Spec grammar (comma-separated, whitespace-tolerant)::

    REPRO_FAULTS="disk.partial_write:p=0.3:seed=7,compile.hang:n=2"

Per-point keys:

* ``p`` — firing probability per eligible attempt (default 1.0).
* ``seed`` — the point's private RNG seed (default: derived from the
  point name, so two runs of the same spec fire identically).
* ``n`` — maximum number of firings (default unlimited).
* ``after`` — skip the first K eligible attempts (default 0).

Determinism: each armed point owns a ``random.Random(seed)``; given the
same spec and the same sequence of ``fire()`` calls, the same attempts
fire.  Every firing is counted in ``repro.obs``
(``faults.fired{point=...}``) and recorded as a trace event.

The catalog below is the authoritative list of injection points; a spec
naming an unknown point warns but still arms it, so call sites can grow
points before the catalog documents them.
"""

from __future__ import annotations

import os
import random
import signal
import threading
import warnings
import zlib
from dataclasses import dataclass

import repro.obs as obs

__all__ = [
    "CATALOG",
    "FaultError",
    "FaultPlan",
    "FaultSpec",
    "active_plan",
    "corrupt_bytes",
    "fire",
    "fired_counts",
    "maybe_kill",
    "maybe_raise",
    "parse_spec",
    "reset",
]

#: Injection-point catalog (see DESIGN.md §11).  Keys are the names a
#: ``REPRO_FAULTS`` spec arms; values describe what a firing does at
#: the call site.
CATALOG: dict[str, str] = {
    "disk.partial_write": (
        "truncate the artifact payload during publish, modelling a torn "
        "write; the stored checksum no longer matches, so readers must "
        "treat the entry as a miss"),
    "disk.corrupt_blob": (
        "flip a byte of the artifact payload after its checksum is "
        "computed (silent media corruption caught by get-side "
        "validation)"),
    "disk.torn_publish": (
        "raise between the .so rename and the manifest commit, leaving "
        "an uncommitted artifact half for the recovery sweep"),
    "disk.kill_mid_publish": (
        "SIGKILL the publishing process between the two halves of a "
        "publish (cross-process crash-consistency tests)"),
    "compile.transient": (
        "raise TransientCompileError instead of invoking the compiler"),
    "compile.permanent": (
        "raise PermanentCompileError instead of invoking the compiler"),
    "compile.hang": (
        "replace the compiler invocation with a child that sleeps until "
        "the watchdog kills its process group"),
    "smoke.kill_child": (
        "SIGKILL the forked smoke-run child mid-run (contained crash)"),
    "link.fail": (
        "raise NativeLinkError instead of linking the artifact"),
}

_SPEC_KEYS = ("p", "seed", "n", "after")


class FaultError(OSError):
    """A deterministic injected fault.

    Subclasses :class:`OSError` on purpose: the disk-publish injection
    points fire inside code whose callers already absorb I/O errors
    (a full or read-only cache must never block compilation), so an
    injected crash exercises exactly the handling a real one would.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One parsed ``point[:k=v]*`` entry of a ``REPRO_FAULTS`` spec."""

    point: str
    p: float = 1.0
    seed: int | None = None
    n: int | None = None
    after: int = 0

    def derived_seed(self) -> int:
        if self.seed is not None:
            return self.seed
        return zlib.crc32(self.point.encode())


def parse_spec(text: str) -> list[FaultSpec]:
    """Parse a ``REPRO_FAULTS`` value; malformed entries warn and are
    skipped (a chaos knob must never take the pipeline down itself)."""
    specs: list[FaultSpec] = []
    for raw_entry in text.split(","):
        entry = raw_entry.strip()
        if not entry:
            continue
        parts = entry.split(":")
        point = parts[0].strip()
        if not point:
            continue
        if point not in CATALOG:
            warnings.warn(
                f"REPRO_FAULTS arms unknown injection point {point!r} "
                f"(catalog: {', '.join(sorted(CATALOG))})",
                RuntimeWarning, stacklevel=2)
        kwargs: dict = {}
        ok = True
        for part in parts[1:]:
            key, sep, value = part.partition("=")
            key = key.strip()
            if not sep or key not in _SPEC_KEYS:
                warnings.warn(
                    f"ignoring malformed REPRO_FAULTS entry {entry!r} "
                    f"(bad clause {part!r})", RuntimeWarning, stacklevel=2)
                ok = False
                break
            try:
                kwargs[key] = float(value) if key == "p" else int(value)
            except ValueError:
                warnings.warn(
                    f"ignoring malformed REPRO_FAULTS entry {entry!r} "
                    f"({key}={value!r} is not numeric)",
                    RuntimeWarning, stacklevel=2)
                ok = False
                break
        if ok:
            specs.append(FaultSpec(point=point, **kwargs))
    return specs


class _ArmedPoint:
    __slots__ = ("spec", "rng", "attempts", "fired")

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self.rng = random.Random(spec.derived_seed())
        self.attempts = 0
        self.fired = 0

    def should_fire(self) -> bool:
        self.attempts += 1
        if self.attempts <= self.spec.after:
            return False
        if self.spec.n is not None and self.fired >= self.spec.n:
            return False
        if self.spec.p < 1.0 and self.rng.random() >= self.spec.p:
            return False
        self.fired += 1
        return True


class FaultPlan:
    """The armed injection points of one parsed spec (thread-safe)."""

    def __init__(self, specs: list[FaultSpec]) -> None:
        self._lock = threading.Lock()
        self._points = {s.point: _ArmedPoint(s) for s in specs}

    def should_fire(self, point: str) -> bool:
        with self._lock:
            armed = self._points.get(point)
            if armed is None:
                return False
            return armed.should_fire()

    def fired_counts(self) -> dict[str, int]:
        with self._lock:
            return {name: p.fired for name, p in self._points.items()}

    def points(self) -> list[str]:
        with self._lock:
            return sorted(self._points)


# The active plan is cached on the raw spec string, so per-point
# schedules (n=, after=, the RNG stream) persist across fire() calls
# but a changed REPRO_FAULTS takes effect immediately.
_cache_lock = threading.Lock()
_cached_raw: str | None = None
_cached_plan: FaultPlan | None = None


def active_plan() -> FaultPlan | None:
    """The plan armed by ``REPRO_FAULTS``, or ``None`` when unset."""
    global _cached_raw, _cached_plan
    raw = os.environ.get("REPRO_FAULTS", "").strip()
    if not raw:
        with _cache_lock:
            _cached_raw = _cached_plan = None
        return None
    with _cache_lock:
        if raw != _cached_raw:
            _cached_raw = raw
            _cached_plan = FaultPlan(parse_spec(raw))
        return _cached_plan


def reset() -> None:
    """Drop the cached plan so the next lookup re-arms with fresh
    schedules (test hook; invoked by
    :func:`repro.core.resilience.clear_session_state`)."""
    global _cached_raw, _cached_plan
    with _cache_lock:
        _cached_raw = _cached_plan = None


def fire(point: str) -> bool:
    """Whether the armed fault at ``point`` fires on this attempt.

    Always false when ``REPRO_FAULTS`` is unset — the fast path is one
    env lookup.  Firings are counted (``faults.fired{point=...}``) and
    land in the trace ring as zero-duration ``fault`` events.
    """
    plan = active_plan()
    if plan is None:
        return False
    hit = plan.should_fire(point)
    if hit:
        obs.counter("faults.fired", point=point)
        obs.event("fault", point=point)
    return hit


def maybe_raise(point: str, exc_type: type[BaseException] = FaultError,
                message: str | None = None) -> None:
    """Raise ``exc_type`` if the fault at ``point`` fires."""
    if fire(point):
        raise exc_type(message or f"injected fault at {point}")


def maybe_kill(point: str, sig: int = signal.SIGKILL) -> None:
    """SIGKILL the *current process* if the fault at ``point`` fires.

    Only meaningful in worker/child processes spawned by tests; the
    whole point is that the parent must recover from the corpse.
    """
    if fire(point):
        os.kill(os.getpid(), sig)


def corrupt_bytes(point: str, data: bytes) -> bytes:
    """Return ``data`` mangled if the fault at ``point`` fires.

    ``disk.partial_write`` truncates to half; every other point flips
    the middle byte.  Either way the result is deterministic for a
    given input.
    """
    if not fire(point) or not data:
        return data
    if point == "disk.partial_write":
        return data[: len(data) // 2]
    mid = len(data) // 2
    return data[:mid] + bytes([data[mid] ^ 0xFF]) + data[mid + 1:]


def fired_counts() -> dict[str, int]:
    """Firing counts of the active plan (empty when faults are off)."""
    plan = active_plan()
    return plan.fired_counts() if plan is not None else {}
