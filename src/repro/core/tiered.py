"""Tiered kernel execution: HotSpot's shape for native SIMD kernels.

The paper's managed-runtime baseline is HotSpot's tiered pipeline —
interpret immediately, JIT in the background, hot-swap when the
compiled method is ready.  This module gives the reproduction the same
shape: a :class:`KernelManager` serves every call instantly from the
bit-accurate simulator (tier 0, the closure-compiled executor of
DESIGN.md §9) while a bounded worker pool walks the full
emit→ladder→smoke→link path off-thread, then hot-swaps the kernel to
native (tier 1) atomically.

* **Atomic swap, lock-free read path.**  ``CompiledKernel.__call__``
  reads exactly one attribute (``_impl``) and calls it.  Promotion
  publishes a fully wired :class:`NativeDispatch` with a single
  attribute store — atomic under the GIL — so a concurrent caller sees
  either the old simulated dispatch or the new native one, never a
  torn kernel.
* **Quarantine-aware demotion.**  A background compile that exhausts
  the ladder, fails its forked smoke-run (quarantine) or cannot link
  never raises into callers: the kernel records the reason and keeps
  serving simulated results, exactly like the inline ``"auto"`` path.
* **Single-flight.**  Jobs dedup by structural graph hash through
  :class:`repro.core.cache.InflightCompiles`; N threads warming the
  same kernel cost one ladder walk, and all their handles swap
  together.
* **Hotness gating.**  ``REPRO_TIER=hot`` mirrors HotSpot's invocation
  counters: compilation is enqueued only after ``REPRO_HOT_THRESHOLD``
  calls, so throwaway kernels never pay for a compile at all.

Environment: ``REPRO_TIER`` (``sync`` | ``async`` | ``hot``, default
``sync``), ``REPRO_COMPILE_WORKERS`` (default ``min(4, cpus)``) and
``REPRO_HOT_THRESHOLD`` (default 8).  The compiler ladder and the
smoke-run already execute in subprocesses, so worker *threads* get
real parallelism — ``compile_many`` over N independent kernels costs
roughly one ladder-walk of wall clock, not N.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import repro.obs as obs
from repro.codegen.compiler import CompileError
from repro.codegen.native import NativeKernel, NativeLinkError
from repro.core import policy
from repro.core.cache import CompileJob, InflightCompiles, graph_hash
from repro.core.env import env_float, env_int
from repro.core.resilience import KernelQuarantinedError, acquire_native

__all__ = [
    "CircuitBreaker",
    "KernelManager",
    "SERVICE_MODES",
    "TierEvent",
    "TIER_MODES",
    "breaker_cooldown",
    "breaker_threshold",
    "compile_deadline",
    "compile_many",
    "compile_workers",
    "default_manager",
    "environment_failure",
    "get_manager",
    "hot_threshold",
    "queue_bound",
    "service_mode",
    "tier_mode",
    "wait_all",
]

TIER_MODES = ("sync", "async", "hot")

SERVICE_MODES = ("off", "auto", "require")


def service_mode() -> str:
    """Whether deferred compiles go through the kernel compilation
    service (``REPRO_SERVICE``): ``off`` (default) compiles in-process,
    ``auto`` uses the daemon when reachable and falls back locally,
    ``require`` demotes to the simulator rather than compile locally
    when the daemon is down (DESIGN.md §12)."""
    raw = os.environ.get("REPRO_SERVICE")
    if raw is None or not raw.strip():
        return "off"
    mode = raw.strip().lower()
    if mode not in SERVICE_MODES:
        warnings.warn(
            f"ignoring unknown REPRO_SERVICE={raw!r}; using 'off'",
            RuntimeWarning, stacklevel=2)
        return "off"
    return mode


def tier_mode() -> str:
    """The tiering policy for ``backend="auto"`` kernels
    (``REPRO_TIER``): ``sync`` compiles inline (the pre-tiered
    behaviour), ``async`` enqueues native compilation immediately,
    ``hot`` enqueues it after :func:`hot_threshold` invocations."""
    raw = os.environ.get("REPRO_TIER")
    if raw is None or not raw.strip():
        return "sync"
    mode = raw.strip().lower()
    if mode not in TIER_MODES:
        warnings.warn(
            f"ignoring unknown REPRO_TIER={raw!r}; using 'sync'",
            RuntimeWarning, stacklevel=2)
        return "sync"
    return mode


def compile_workers() -> int:
    """Background compile pool width (``REPRO_COMPILE_WORKERS``,
    default ``min(4, cpus)``)."""
    return env_int("REPRO_COMPILE_WORKERS",
                   min(4, os.cpu_count() or 1), minimum=1)


def hot_threshold() -> int:
    """Invocations before a ``hot``-tier kernel enqueues native
    compilation (``REPRO_HOT_THRESHOLD``, default 8)."""
    return env_int("REPRO_HOT_THRESHOLD", 8, minimum=1)


def breaker_threshold() -> int:
    """Consecutive environment-level compile failures before the
    circuit breaker opens (``REPRO_BREAKER_THRESHOLD``, default 3)."""
    return env_int("REPRO_BREAKER_THRESHOLD", 3, minimum=1)


def breaker_cooldown() -> float:
    """Seconds an open breaker waits before admitting one half-open
    probe compile (``REPRO_BREAKER_COOLDOWN``, default 30)."""
    return env_float("REPRO_BREAKER_COOLDOWN", 30.0, minimum=0.0)


def queue_bound() -> int:
    """Background compile admission bound (``REPRO_QUEUE_BOUND``,
    default 64): promotions past this many in-flight jobs are shed to
    the simulator instead of growing the queue unboundedly."""
    return env_int("REPRO_QUEUE_BOUND", 64, minimum=1)


def compile_deadline() -> float | None:
    """Per-kernel wall-clock budget for one background compile
    (``REPRO_COMPILE_DEADLINE``, default 300 s; ``0`` disables).  The
    manager converts it to an absolute deadline threaded down the whole
    ladder walk, so a hung compiler can never wedge a worker slot
    longer than this."""
    value = env_float("REPRO_COMPILE_DEADLINE", 300.0, minimum=0.0)
    return None if value <= 0 else value


_BREAKER_STATE_CODES = {"closed": 0, "half-open": 1, "open": 2}

# reason substrings that implicate the toolchain/host rather than one
# kernel's code (see CircuitBreaker and _environment_failure)
_ENV_FAILURE_MARKERS = (
    "no c compiler",
    "could not be invoked",
    "deadline",
    "watchdog",
    "timed out",
    "unreachable",
)


def environment_failure(reason: str | None, report=None) -> bool:
    """Whether a failed compile implicates the environment (feeds the
    breaker) rather than the kernel's own code.

    Environment-level: every recorded ladder attempt transient
    (timeouts, watchdog kills, failed execs, an unreachable compile
    service), or a reason carrying one of the toolchain-failure
    markers.  Kernel-level: permanent diagnostics, quarantines, link
    failures of a built artifact.  Shared by the in-process manager and
    the serve daemon so both breakers trip on the same taxonomy.
    """
    text = (reason or "").lower()
    if any(marker in text for marker in _ENV_FAILURE_MARKERS):
        return True
    attempts = getattr(report, "attempts", None) or []
    return bool(attempts) and all(
        a.outcome == "transient" for a in attempts)


class CircuitBreaker:
    """Admission control for background compiles when the *environment*
    is broken.

    A kernel whose own code fails to compile is that kernel's problem —
    it gets demoted and the pipeline moves on.  But when the toolchain
    itself is gone (compiler uninstalled, every rung hitting the
    watchdog, deadlines expiring), each doomed compile still burns a
    worker slot for its full timeout.  After ``REPRO_BREAKER_THRESHOLD``
    *consecutive* environment-level failures the breaker **opens**:
    ``auto`` kernels are shed straight to the simulator with zero
    compiles enqueued.  After ``REPRO_BREAKER_COOLDOWN`` seconds the
    breaker goes **half-open** and admits exactly one probe compile;
    its success closes the breaker, its failure re-opens it for another
    cooldown.  A *kernel-specific* failure (quarantine, diagnostics)
    counts as proof the toolchain works and resets the streak.

    State is exported as the ``tiered.breaker_state`` gauge
    (closed=0, half-open=1, open=2); transitions into open bump
    ``tiered.breaker_opens``.  ``clock`` is injectable for tests.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic
                 ) -> None:
        self._lock = threading.Lock()
        self._clock = clock
        self.state = "closed"
        self.failure_streak = 0
        self.opened_at = 0.0
        self._probe_inflight = False
        self.opens = 0

    def _gauge(self) -> None:
        obs.gauge("tiered.breaker_state",
                  _BREAKER_STATE_CODES[self.state])

    def _open(self) -> None:
        self.state = "open"
        self.opened_at = self._clock()
        self._probe_inflight = False
        self.opens += 1
        obs.counter("tiered.breaker_opens")
        obs.event("breaker", state="open",
                  failure_streak=self.failure_streak)
        self._gauge()

    def allow(self) -> tuple[bool, bool]:
        """Whether a new compile may be enqueued: ``(admit, is_probe)``.

        Closed admits everything; open admits nothing until the
        cooldown elapses, then (half-open) exactly one probe at a time.
        """
        with self._lock:
            if self.state == "closed":
                return True, False
            if self.state == "open":
                if self._clock() - self.opened_at < breaker_cooldown():
                    return False, False
                self.state = "half-open"
                self._gauge()
            # half-open: one probe in flight at a time
            if self._probe_inflight:
                return False, False
            self._probe_inflight = True
            return True, True

    def record_success(self, probe: bool = False) -> None:
        """A compile produced a linked native kernel."""
        with self._lock:
            if probe:
                self._probe_inflight = False
            self.failure_streak = 0
            if self.state != "closed":
                self.state = "closed"
                obs.event("breaker", state="closed")
                self._gauge()

    def record_env_failure(self, probe: bool = False) -> None:
        """A compile failed for environment-level reasons."""
        with self._lock:
            if probe:
                self._probe_inflight = False
            self.failure_streak += 1
            if self.state == "half-open" or (
                    self.state == "closed"
                    and self.failure_streak >= breaker_threshold()):
                self._open()

    def record_other(self, probe: bool = False) -> None:
        """A compile failed, but in a way that proves the toolchain
        works (quarantine, kernel-specific diagnostics)."""
        with self._lock:
            if probe:
                self._probe_inflight = False
            self.failure_streak = 0
            if self.state == "half-open":
                self.state = "closed"
                obs.event("breaker", state="closed")
                self._gauge()

    def record_aborted(self, probe: bool = False) -> None:
        """A compile was cancelled before running (drain).  An aborted
        probe returns the breaker to open *without* restarting the
        cooldown, so the next promotion can probe immediately."""
        with self._lock:
            if probe and self.state == "half-open":
                self._probe_inflight = False
                self.state = "open"
                self._gauge()

    def reset(self) -> None:
        with self._lock:
            self.state = "closed"
            self.failure_streak = 0
            self._probe_inflight = False
            self._gauge()


@dataclass
class TierEvent:
    """One step of a kernel's tier history (see
    ``CompiledKernel.explain``)."""

    action: str     # "start" | "enqueue" | "swap" | "demote" |
    #                 "cancel" | "shed"
    tier: str       # the tier serving calls after this event
    at: float       # time.monotonic() when it happened
    detail: str = ""


class SimulatedDispatch:
    """The simulated-tier call path of a managed kernel.

    Counts tier-at-call, ticks the hotness gate, and runs the
    simulator.  The hot-swap replaces this object wholesale, so no
    per-call branching on "am I native yet" is needed.

    The gate is race-safe without a fast-path lock: ``countdown``
    holds the armed threshold (``None`` disarms it) and never changes
    per call; ``itertools.count`` hands each tick to exactly one
    caller (its ``__next__`` is atomic under the GIL), so exactly one
    thread observes the threshold tick and fires :meth:`promote` —
    concurrent callers can neither lose ticks nor double-fire.
    """

    __slots__ = ("kernel", "manager", "countdown", "_ticks")

    def __init__(self, kernel, manager: "KernelManager",
                 countdown: int | None = None) -> None:
        self.kernel = kernel
        self.manager = manager
        self.countdown = countdown   # None: no hotness gate pending
        self._ticks = itertools.count(1)

    def __call__(self, *args: Any) -> Any:
        kernel = self.kernel
        kernel.tier_calls["simulated"] += 1
        obs.counter("tiered.calls", tier="simulated")
        threshold = self.countdown
        if threshold is not None and \
                next(self._ticks) == (threshold if threshold > 0 else 1):
            self.countdown = None
            self.manager.promote(kernel)
        return kernel._machine.run(kernel.staged, args)

    def call_batch(self, args_seq: Sequence[Sequence[Any]]) -> list:
        """Batch entry point: every entry counts one invocation (the
        hotness gate sees batch traffic), then one whole-batch
        simulator run."""
        kernel = self.kernel
        n = len(args_seq)
        kernel.tier_calls["simulated"] += n
        obs.counter("tiered.calls", n, tier="simulated")
        threshold = self.countdown
        if threshold is not None:
            arm = threshold if threshold > 0 else 1
            ticks = self._ticks
            for _ in range(n):
                if next(ticks) == arm:
                    self.countdown = None
                    self.manager.promote(kernel)
                    break
        return kernel._machine.run_batch(kernel.staged, args_seq)


class NativeDispatch:
    """The native-tier call path: one counter bump, then the
    :class:`NativeKernel`'s precomputed marshalling plan."""

    __slots__ = ("kernel", "native")

    def __init__(self, kernel, native: NativeKernel) -> None:
        self.kernel = kernel
        self.native = native

    def __call__(self, *args: Any) -> Any:
        self.kernel.tier_calls["native"] += 1
        obs.counter("tiered.calls", tier="native")
        return self.native(*args)

    def call_batch(self, args_seq: Sequence[Sequence[Any]]) -> list:
        """Batch entry point: one packed native call for the whole
        slice (zero-copy arrays, one scalar pack — see
        :meth:`NativeKernel.call_batch`)."""
        n = len(args_seq)
        self.kernel.tier_calls["native"] += n
        obs.counter("tiered.calls", n, tier="native")
        return self.native.call_batch(args_seq)


class KernelManager:
    """Bounded background compilation with atomic hot-swap.

    One process-wide instance (:data:`default_manager`) owns a lazy
    :class:`ThreadPoolExecutor` of :func:`compile_workers` threads and
    the single-flight job table.  ``manage`` installs the tiered call
    path on a fresh simulated kernel; ``promote`` enqueues (or joins)
    its background compile; the worker swaps or demotes every handle
    attached to the job when :func:`repro.core.resilience.acquire_native`
    settles.
    """

    def __init__(self, workers: int | None = None) -> None:
        self._lock = threading.Lock()
        self._pool: ThreadPoolExecutor | None = None
        self._workers = workers
        self._inflight = InflightCompiles()
        self.breaker = CircuitBreaker()
        self._counts = {key: 0 for key in (
            "submitted", "attached", "swapped", "demoted", "cancelled",
            "shed")}

    # -- introspection -------------------------------------------------

    @property
    def pending(self) -> int:
        """In-flight background compiles (the queue-depth gauge)."""
        return self._inflight.pending()

    def stats(self) -> dict[str, int]:
        with self._lock:
            snapshot = dict(self._counts)
        snapshot["pending"] = self._inflight.pending()
        return snapshot

    def _bump(self, key: str) -> None:
        with self._lock:
            self._counts[key] += 1

    def _update_gauge(self) -> None:
        obs.gauge("tiered.queue_depth", self._inflight.pending())

    # -- the management surface ----------------------------------------

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._workers or compile_workers(),
                    thread_name_prefix="repro-tier")
            return self._pool

    def manage(self, kernel, mode: str) -> None:
        """Install the tiered call path on a fresh simulated-tier
        kernel.  ``async`` promotes immediately; ``hot`` arms the
        invocation countdown.

        Under ``REPRO_POLICY=learned`` the ``hot`` countdown is not the
        fixed :func:`hot_threshold` but a per-family learned value:
        cheap-to-compile families promote after fewer calls, expensive
        or promotion-failing ones later (DESIGN.md §15).  Admission
        control — the circuit breaker, the queue bound — stays
        downstream in :meth:`promote`, so an open breaker always wins
        over any learned eagerness."""
        kernel._record_tier_event("start", "simulated",
                                  detail=f"mode={mode}")
        countdown = None if mode == "async" else hot_threshold()
        if countdown is not None and policy.acting():
            family = policy.family_of(kernel.staged.name)
            countdown, note = policy.learned_hot_threshold(
                family, countdown)
            if note:
                kernel._policy_note(note)
        kernel._impl = SimulatedDispatch(kernel, self, countdown)
        obs.counter("tiered.managed", mode=mode)
        if mode == "async":
            self.promote(kernel)

    def _shed(self, kernel, reason: str) -> None:
        """Refuse a promotion: the kernel stays (permanently, unless
        re-managed) on the simulated tier with ``reason`` recorded."""
        kernel._record_tier_event("shed", "simulated", detail=reason)
        kernel._demote(reason)
        self._bump("shed")
        obs.counter("tiered.shed")
        obs.event("shed", kernel=kernel.staged.name, reason=reason)

    def promote(self, kernel) -> CompileJob | None:
        """Enqueue background native compilation for ``kernel``
        (single-flight by graph hash); returns the in-flight job.

        Admission control: returns ``None`` — and demotes the kernel to
        simulated-with-reason — when the circuit breaker refuses new
        compiles or the background queue is at ``REPRO_QUEUE_BOUND``.
        Joining an *existing* in-flight job is always admitted (it
        costs nothing).
        """
        existing = kernel._tier_job
        if existing is not None:
            return existing
        ghash = graph_hash(kernel.staged)
        if not self._inflight.has(ghash):
            admit, is_probe = self.breaker.allow()
            if not admit:
                self._shed(kernel, "circuit breaker open: compile "
                           "environment is failing")
                return None
            if not is_probe and \
                    self._inflight.pending() >= queue_bound():
                # probes bypass the bound: they are the recovery path
                self._shed(kernel, f"compile queue at bound "
                           f"({queue_bound()})")
                return None
        else:
            is_probe = False
        job, owner = self._inflight.join_or_open(ghash, kernel)
        kernel._tier_job = job
        kernel._record_tier_event(
            "enqueue", "simulated",
            detail="owner" if owner else "joined in-flight compile")
        if owner:
            job.is_probe = is_probe
            self._bump("submitted")
            job.future = self._ensure_pool().submit(self._run_job, job)
            job.future.add_done_callback(
                lambda fut, j=job: self._future_done(j, fut))
        else:
            if is_probe:
                # lost the has()/join race; someone else owns the job
                self.breaker.record_aborted(probe=True)
            self._bump("attached")
        obs.counter("tiered.enqueued",
                    mode="owner" if owner else "attached")
        self._update_gauge()
        return job

    # -- worker side ---------------------------------------------------

    # kept as a method name for callers/tests; the logic is module-level
    # so the serve daemon shares the exact taxonomy
    _environment_failure = staticmethod(environment_failure)

    def _acquire(self, staged, deadline: float | None):
        """The compile backend: produce ``(NativeKernel, report)`` for
        one staged kernel.  The base manager compiles in-process;
        :class:`repro.serve.client.ServiceKernelManager` overrides this
        to delegate the compile to the daemon and link the published
        artifact locally."""
        return acquire_native(staged, deadline=deadline)

    def _run_job(self, job: CompileJob) -> str:
        staged = job.kernels[0].staged
        start = time.perf_counter()
        native = report = None
        reason: str | None = None
        budget = compile_deadline()
        deadline = None if budget is None else time.monotonic() + budget
        with obs.span("tiered.compile", kernel=staged.name,
                      graph_hash=job.key) as compile_span:
            trace_id = obs.get_tracer().current_trace_id()
            try:
                native, report = self._acquire(staged, deadline)
            except KernelQuarantinedError as exc:
                reason = f"quarantined: {exc.reason}"
                report = exc.report
            except (NativeLinkError, CompileError) as exc:
                reason = str(exc)
                report = getattr(exc, "report", None)
            except Exception as exc:  # noqa: BLE001 - never unwind the pool
                reason = f"{type(exc).__name__}: {exc}"
            compile_span.set(
                "outcome", "native" if native is not None else "demoted")
        if native is not None:
            self.breaker.record_success(probe=job.is_probe)
        elif self._environment_failure(reason, report):
            self.breaker.record_env_failure(probe=job.is_probe)
        else:
            self.breaker.record_other(probe=job.is_probe)
        duration = time.perf_counter() - start
        if policy.recording():
            # the learned tier policy feeds on both halves: how long
            # this family's compiles take, and whether promotion lands
            table = policy.get_policy()
            family = policy.family_of(staged.name)
            table.record_value(family, "compile_cost", duration)
            table.record(family, "tier", "promote", native is not None)
        obs.observe("tiered.compile.seconds", duration)
        trace = obs.get_tracer().spans_for_trace(trace_id) \
            if trace_id is not None else []
        kernels = self._inflight.settle(job.key)
        for kernel in kernels:
            if native is not None:
                with obs.span("swap", kernel=staged.name,
                              graph_hash=job.key):
                    kernel._swap_to_native(native, report, trace=trace)
                self._bump("swapped")
                obs.counter("tiered.swaps")
            else:
                with obs.span("demote", kernel=staged.name,
                              graph_hash=job.key, reason=reason):
                    kernel._demote(reason, report, trace=trace)
                self._bump("demoted")
                obs.counter("tiered.demotions")
        job.finish("native" if native is not None
                   else f"demoted: {reason}")
        self._update_gauge()
        return job.outcome or ""

    def _future_done(self, job: CompileJob, fut) -> None:
        """Settle jobs whose pool future was cancelled before it ran
        (``drain``); completed futures were settled by the worker."""
        if not fut.cancelled():
            return
        self.breaker.record_aborted(probe=job.is_probe)
        for kernel in self._inflight.settle(job.key):
            kernel._record_tier_event(
                "cancel", "simulated",
                detail="background compile cancelled")
            self._bump("cancelled")
            obs.counter("tiered.cancelled")
        job.finish("cancelled")
        self._update_gauge()

    # -- lifecycle -----------------------------------------------------

    def drain(self, cancel: bool = True) -> None:
        """Cancel queued background compiles and wait out the running
        ones.  The pool is discarded; the next ``promote`` builds a
        fresh one (re-reading ``REPRO_COMPILE_WORKERS``)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=cancel)

    def reset(self) -> None:
        """Drain pending work and zero the counters — the hermetic-test
        hook, also invoked by
        :func:`repro.core.resilience.clear_session_state`.

        Compiles abandoned by the drain (their pool future was
        cancelled before running) are *logged*, not silently dropped:
        a ``tiered.abandoned`` counter and a :class:`RuntimeWarning`
        naming the graph hashes, so a suite (or service shutdown) that
        throws work away leaves a trace.
        """
        snapshot = self._inflight.jobs()
        self.drain(cancel=True)
        abandoned = [job.key for job in snapshot
                     if job.outcome == "cancelled"]
        if abandoned:
            obs.counter("tiered.abandoned", len(abandoned))
            warnings.warn(
                f"abandoned {len(abandoned)} pending background "
                f"compile(s) on reset: {', '.join(sorted(abandoned))}",
                RuntimeWarning, stacklevel=2)
        self.breaker.reset()
        with self._lock:
            for key in self._counts:
                self._counts[key] = 0
        self._update_gauge()


default_manager = KernelManager()


def get_manager() -> KernelManager:
    """The manager deferred compiles go through.

    ``REPRO_SERVICE=auto|require`` routes to the drop-in
    :class:`repro.serve.client.ServiceKernelManager` (imported lazily —
    ``serve`` is never loaded unless asked for); ``off`` — and any
    failure to construct the service client — keeps the in-process
    :data:`default_manager`, so a broken service layer degrades to
    exactly the pre-service behaviour.
    """
    if service_mode() != "off":
        try:
            from repro.serve.client import get_service_manager
            return get_service_manager()
        except Exception:  # noqa: BLE001 - degraded, never broken
            warnings.warn(
                "REPRO_SERVICE is set but the service client could not "
                "be initialised; compiling in-process",
                RuntimeWarning, stacklevel=2)
    return default_manager


# ---------------------------------------------------------------------------
# Batch compilation: warming a fleet of kernels in one ladder-walk.

def compile_many(fns: Sequence[Callable[..., object]],
                 arg_types_list: Sequence[Sequence],
                 names: Sequence[str | None] | None = None,
                 backend: str | None = None,
                 use_cache: bool = True) -> list:
    """Stage a fleet of kernels and fan their native compiles across
    the background pool.

    Returns :class:`~repro.core.pipeline.CompiledKernel` handles
    *immediately*: each serves from the simulated tier and hot-swaps
    to native as its compile lands, so warming N independent kernels
    (a benchmark suite, the variable-precision dot family) costs
    roughly one ladder-walk of wall clock instead of N.  With a warm
    disk cache the batch is a pure prewarm — workers probe the cache,
    smoke-test and link without ever invoking a compiler.  Duplicate
    graph hashes in (or across) batches collapse to one compile via
    the single-flight table.  Use :func:`wait_all` (or
    ``kernel.wait_native()``) to block until the swaps settle.
    """
    from repro.core.pipeline import compile_staged

    if names is None:
        names = [None] * len(fns)
    if not (len(fns) == len(arg_types_list) == len(names)):
        raise ValueError(
            "fns, arg_types_list and names must have equal lengths")
    return [compile_staged(fn, arg_types, name=name, backend=backend,
                           use_cache=use_cache, tier="async")
            for fn, arg_types, name in zip(fns, arg_types_list, names)]


def wait_all(kernels: Sequence, timeout: float | None = None) -> list:
    """Block until every kernel's background promotion settles (either
    tier); returns the kernels.  ``timeout`` bounds the whole batch."""
    deadline = None if timeout is None else time.monotonic() + timeout
    for kernel in kernels:
        remaining = None if deadline is None \
            else max(0.0, deadline - time.monotonic())
        kernel.wait_native(remaining)
    return list(kernels)
