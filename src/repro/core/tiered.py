"""Tiered kernel execution: HotSpot's shape for native SIMD kernels.

The paper's managed-runtime baseline is HotSpot's tiered pipeline —
interpret immediately, JIT in the background, hot-swap when the
compiled method is ready.  This module gives the reproduction the same
shape: a :class:`KernelManager` serves every call instantly from the
bit-accurate simulator (tier 0, the closure-compiled executor of
DESIGN.md §9) while a bounded worker pool walks the full
emit→ladder→smoke→link path off-thread, then hot-swaps the kernel to
native (tier 1) atomically.

* **Atomic swap, lock-free read path.**  ``CompiledKernel.__call__``
  reads exactly one attribute (``_impl``) and calls it.  Promotion
  publishes a fully wired :class:`NativeDispatch` with a single
  attribute store — atomic under the GIL — so a concurrent caller sees
  either the old simulated dispatch or the new native one, never a
  torn kernel.
* **Quarantine-aware demotion.**  A background compile that exhausts
  the ladder, fails its forked smoke-run (quarantine) or cannot link
  never raises into callers: the kernel records the reason and keeps
  serving simulated results, exactly like the inline ``"auto"`` path.
* **Single-flight.**  Jobs dedup by structural graph hash through
  :class:`repro.core.cache.InflightCompiles`; N threads warming the
  same kernel cost one ladder walk, and all their handles swap
  together.
* **Hotness gating.**  ``REPRO_TIER=hot`` mirrors HotSpot's invocation
  counters: compilation is enqueued only after ``REPRO_HOT_THRESHOLD``
  calls, so throwaway kernels never pay for a compile at all.

Environment: ``REPRO_TIER`` (``sync`` | ``async`` | ``hot``, default
``sync``), ``REPRO_COMPILE_WORKERS`` (default ``min(4, cpus)``) and
``REPRO_HOT_THRESHOLD`` (default 8).  The compiler ladder and the
smoke-run already execute in subprocesses, so worker *threads* get
real parallelism — ``compile_many`` over N independent kernels costs
roughly one ladder-walk of wall clock, not N.
"""

from __future__ import annotations

import os
import threading
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import repro.obs as obs
from repro.codegen.compiler import CompileError
from repro.codegen.native import NativeKernel, NativeLinkError
from repro.core.cache import CompileJob, InflightCompiles, graph_hash
from repro.core.env import env_int
from repro.core.resilience import KernelQuarantinedError, acquire_native

__all__ = [
    "KernelManager",
    "TierEvent",
    "TIER_MODES",
    "compile_many",
    "compile_workers",
    "default_manager",
    "get_manager",
    "hot_threshold",
    "tier_mode",
    "wait_all",
]

TIER_MODES = ("sync", "async", "hot")


def tier_mode() -> str:
    """The tiering policy for ``backend="auto"`` kernels
    (``REPRO_TIER``): ``sync`` compiles inline (the pre-tiered
    behaviour), ``async`` enqueues native compilation immediately,
    ``hot`` enqueues it after :func:`hot_threshold` invocations."""
    raw = os.environ.get("REPRO_TIER")
    if raw is None or not raw.strip():
        return "sync"
    mode = raw.strip().lower()
    if mode not in TIER_MODES:
        warnings.warn(
            f"ignoring unknown REPRO_TIER={raw!r}; using 'sync'",
            RuntimeWarning, stacklevel=2)
        return "sync"
    return mode


def compile_workers() -> int:
    """Background compile pool width (``REPRO_COMPILE_WORKERS``,
    default ``min(4, cpus)``)."""
    return env_int("REPRO_COMPILE_WORKERS",
                   min(4, os.cpu_count() or 1), minimum=1)


def hot_threshold() -> int:
    """Invocations before a ``hot``-tier kernel enqueues native
    compilation (``REPRO_HOT_THRESHOLD``, default 8)."""
    return env_int("REPRO_HOT_THRESHOLD", 8, minimum=1)


@dataclass
class TierEvent:
    """One step of a kernel's tier history (see
    ``CompiledKernel.explain``)."""

    action: str     # "start" | "enqueue" | "swap" | "demote" | "cancel"
    tier: str       # the tier serving calls after this event
    at: float       # time.monotonic() when it happened
    detail: str = ""


class SimulatedDispatch:
    """The simulated-tier call path of a managed kernel.

    Counts tier-at-call, decrements the hotness countdown, and runs
    the simulator.  The hot-swap replaces this object wholesale, so no
    per-call branching on "am I native yet" is needed.
    """

    __slots__ = ("kernel", "manager", "countdown")

    def __init__(self, kernel, manager: "KernelManager",
                 countdown: int | None = None) -> None:
        self.kernel = kernel
        self.manager = manager
        self.countdown = countdown   # None: no hotness gate pending

    def __call__(self, *args: Any) -> Any:
        kernel = self.kernel
        kernel.tier_calls["simulated"] += 1
        obs.counter("tiered.calls", tier="simulated")
        countdown = self.countdown
        if countdown is not None:
            countdown -= 1
            self.countdown = countdown
            if countdown <= 0:
                self.countdown = None
                self.manager.promote(kernel)
        return kernel._machine.run(kernel.staged, args)


class NativeDispatch:
    """The native-tier call path: one counter bump, then the
    :class:`NativeKernel`'s precomputed marshalling plan."""

    __slots__ = ("kernel", "native")

    def __init__(self, kernel, native: NativeKernel) -> None:
        self.kernel = kernel
        self.native = native

    def __call__(self, *args: Any) -> Any:
        self.kernel.tier_calls["native"] += 1
        obs.counter("tiered.calls", tier="native")
        return self.native(*args)


class KernelManager:
    """Bounded background compilation with atomic hot-swap.

    One process-wide instance (:data:`default_manager`) owns a lazy
    :class:`ThreadPoolExecutor` of :func:`compile_workers` threads and
    the single-flight job table.  ``manage`` installs the tiered call
    path on a fresh simulated kernel; ``promote`` enqueues (or joins)
    its background compile; the worker swaps or demotes every handle
    attached to the job when :func:`repro.core.resilience.acquire_native`
    settles.
    """

    def __init__(self, workers: int | None = None) -> None:
        self._lock = threading.Lock()
        self._pool: ThreadPoolExecutor | None = None
        self._workers = workers
        self._inflight = InflightCompiles()
        self._counts = {key: 0 for key in (
            "submitted", "attached", "swapped", "demoted", "cancelled")}

    # -- introspection -------------------------------------------------

    @property
    def pending(self) -> int:
        """In-flight background compiles (the queue-depth gauge)."""
        return self._inflight.pending()

    def stats(self) -> dict[str, int]:
        with self._lock:
            snapshot = dict(self._counts)
        snapshot["pending"] = self._inflight.pending()
        return snapshot

    def _bump(self, key: str) -> None:
        with self._lock:
            self._counts[key] += 1

    def _update_gauge(self) -> None:
        obs.gauge("tiered.queue_depth", self._inflight.pending())

    # -- the management surface ----------------------------------------

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._workers or compile_workers(),
                    thread_name_prefix="repro-tier")
            return self._pool

    def manage(self, kernel, mode: str) -> None:
        """Install the tiered call path on a fresh simulated-tier
        kernel.  ``async`` promotes immediately; ``hot`` arms the
        invocation countdown."""
        kernel._record_tier_event("start", "simulated",
                                  detail=f"mode={mode}")
        countdown = None if mode == "async" else hot_threshold()
        kernel._impl = SimulatedDispatch(kernel, self, countdown)
        obs.counter("tiered.managed", mode=mode)
        if mode == "async":
            self.promote(kernel)

    def promote(self, kernel) -> CompileJob:
        """Enqueue background native compilation for ``kernel``
        (single-flight by graph hash); returns the in-flight job."""
        existing = kernel._tier_job
        if existing is not None:
            return existing
        ghash = graph_hash(kernel.staged)
        job, owner = self._inflight.join_or_open(ghash, kernel)
        kernel._tier_job = job
        kernel._record_tier_event(
            "enqueue", "simulated",
            detail="owner" if owner else "joined in-flight compile")
        if owner:
            self._bump("submitted")
            job.future = self._ensure_pool().submit(self._run_job, job)
            job.future.add_done_callback(
                lambda fut, j=job: self._future_done(j, fut))
        else:
            self._bump("attached")
        obs.counter("tiered.enqueued",
                    mode="owner" if owner else "attached")
        self._update_gauge()
        return job

    # -- worker side ---------------------------------------------------

    def _run_job(self, job: CompileJob) -> str:
        staged = job.kernels[0].staged
        start = time.perf_counter()
        native = report = None
        reason: str | None = None
        with obs.span("tiered.compile", kernel=staged.name,
                      graph_hash=job.key) as compile_span:
            trace_id = obs.get_tracer().current_trace_id()
            try:
                native, report = acquire_native(staged)
            except KernelQuarantinedError as exc:
                reason = f"quarantined: {exc.reason}"
                report = exc.report
            except (NativeLinkError, CompileError) as exc:
                reason = str(exc)
                report = getattr(exc, "report", None)
            except Exception as exc:  # noqa: BLE001 - never unwind the pool
                reason = f"{type(exc).__name__}: {exc}"
            compile_span.set(
                "outcome", "native" if native is not None else "demoted")
        obs.observe("tiered.compile.seconds",
                    time.perf_counter() - start)
        trace = obs.get_tracer().spans_for_trace(trace_id) \
            if trace_id is not None else []
        kernels = self._inflight.settle(job.key)
        for kernel in kernels:
            if native is not None:
                with obs.span("swap", kernel=staged.name,
                              graph_hash=job.key):
                    kernel._swap_to_native(native, report, trace=trace)
                self._bump("swapped")
                obs.counter("tiered.swaps")
            else:
                with obs.span("demote", kernel=staged.name,
                              graph_hash=job.key, reason=reason):
                    kernel._demote(reason, report, trace=trace)
                self._bump("demoted")
                obs.counter("tiered.demotions")
        job.finish("native" if native is not None
                   else f"demoted: {reason}")
        self._update_gauge()
        return job.outcome or ""

    def _future_done(self, job: CompileJob, fut) -> None:
        """Settle jobs whose pool future was cancelled before it ran
        (``drain``); completed futures were settled by the worker."""
        if not fut.cancelled():
            return
        for kernel in self._inflight.settle(job.key):
            kernel._record_tier_event(
                "cancel", "simulated",
                detail="background compile cancelled")
            self._bump("cancelled")
            obs.counter("tiered.cancelled")
        job.finish("cancelled")
        self._update_gauge()

    # -- lifecycle -----------------------------------------------------

    def drain(self, cancel: bool = True) -> None:
        """Cancel queued background compiles and wait out the running
        ones.  The pool is discarded; the next ``promote`` builds a
        fresh one (re-reading ``REPRO_COMPILE_WORKERS``)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=cancel)

    def reset(self) -> None:
        """Drain pending work and zero the counters — the hermetic-test
        hook, also invoked by
        :func:`repro.core.resilience.clear_session_state`."""
        self.drain(cancel=True)
        with self._lock:
            for key in self._counts:
                self._counts[key] = 0
        self._update_gauge()


default_manager = KernelManager()


def get_manager() -> KernelManager:
    return default_manager


# ---------------------------------------------------------------------------
# Batch compilation: warming a fleet of kernels in one ladder-walk.

def compile_many(fns: Sequence[Callable[..., object]],
                 arg_types_list: Sequence[Sequence],
                 names: Sequence[str | None] | None = None,
                 backend: str | None = None,
                 use_cache: bool = True) -> list:
    """Stage a fleet of kernels and fan their native compiles across
    the background pool.

    Returns :class:`~repro.core.pipeline.CompiledKernel` handles
    *immediately*: each serves from the simulated tier and hot-swaps
    to native as its compile lands, so warming N independent kernels
    (a benchmark suite, the variable-precision dot family) costs
    roughly one ladder-walk of wall clock instead of N.  With a warm
    disk cache the batch is a pure prewarm — workers probe the cache,
    smoke-test and link without ever invoking a compiler.  Duplicate
    graph hashes in (or across) batches collapse to one compile via
    the single-flight table.  Use :func:`wait_all` (or
    ``kernel.wait_native()``) to block until the swaps settle.
    """
    from repro.core.pipeline import compile_staged

    if names is None:
        names = [None] * len(fns)
    if not (len(fns) == len(arg_types_list) == len(names)):
        raise ValueError(
            "fns, arg_types_list and names must have equal lengths")
    return [compile_staged(fn, arg_types, name=name, backend=backend,
                           use_cache=use_cache, tier="async")
            for fn, arg_types, name in zip(fns, arg_types_list, names)]


def wait_all(kernels: Sequence, timeout: float | None = None) -> list:
    """Block until every kernel's background promotion settles (either
    tier); returns the kernels.  ``timeout`` bounds the whole batch."""
    deadline = None if timeout is None else time.monotonic() + timeout
    for kernel in kernels:
        remaining = None if deadline is None \
            else max(0.0, deadline - time.monotonic())
        kernel.wait_native(remaining)
    return list(kernels)
