"""Fault tolerance for the compile-and-link path.

The paper's Section 3.5 names the two weak points of linking generated
SIMD code into a live managed runtime: invalid code faults the host
process ("it is the responsibility of the developer to write valid SIMD
code"), and code generation itself can fail or stall.  This module is
the harness layer around both:

* **Compiler fallback** — :func:`repro.codegen.compiler.compile_with_fallback`
  retries transient failures with bounded exponential backoff and
  degrades down the icc→gcc→clang chain and a flag ladder; every
  invocation lands in a :class:`CompileReport`.
* **Crash containment** — before a freshly built (or disk-cached)
  artifact is linked into the host, :func:`acquire_native` smoke-runs it
  once in a forked child against simulator-validated shadow arguments
  and compares the results with the bit-accurate simulator.  A SIGSEGV,
  hang or mismatch quarantines the kernel by graph hash for the rest of
  the session and the pipeline falls back to the simulator backend.
* **Persistent caching** — validated artifacts live in the disk tier of
  :class:`repro.core.cache.DiskKernelCache`, keyed by ``(graph hash,
  compiler version, flags, ISA set)``, so a second process skips the
  compiler entirely (visible as ``cache_source == "disk"`` with zero
  attempts in the report).

Exception taxonomy: :class:`TransientCompileError` (retryable),
:class:`PermanentCompileError` (ladder moves on), and
:class:`KernelQuarantinedError` (this session will not link the kernel).
"""

from __future__ import annotations

import ctypes
import faulthandler
import hashlib
import os
import signal
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

import numpy as np

import repro.obs as obs
from repro.codegen.compiler import (
    CompileAttempt,
    CompileError,
    CompilerInfo,
    PermanentCompileError,
    SystemInfo,
    TransientCompileError,
    compiler_chain,
    flag_ladder,
    inspect_system,
)
from repro.codegen.native import (
    NativeArtifact,
    NativeKernel,
    NativeLinkError,
    build_native,
    check_kernel_isas,
    ctype_signature,
    link_native,
    required_isas,
)
from repro.core import faults
from repro.core.cache import DiskKernelCache, default_cache, graph_hash
from repro.core.env import env_float
from repro.lms.staging import StagedFunction
from repro.lms.types import ArrayType, ScalarType
from repro.simd.machine import SimdMachine

__all__ = [
    "CompileReport",
    "KernelQuarantinedError",
    "PermanentCompileError",
    "TransientCompileError",
    "acquire_native",
    "clear_session_state",
    "quarantined_kernels",
]


@dataclass
class CompileReport:
    """Everything that happened while acquiring one native kernel."""

    graph_hash: str
    attempts: list[CompileAttempt] = field(default_factory=list)
    cache_source: str | None = None   # "disk" | "compiled" | None
    smoke: str = "not-run"
    fallback_reason: str | None = None
    compiler: str | None = None
    compiler_version: str | None = None
    flags: tuple[str, ...] = ()

    @property
    def compiler_invocations(self) -> int:
        return len(self.attempts)

    def to_dict(self) -> dict:
        return {
            "graph_hash": self.graph_hash,
            "attempts": [a.to_dict() for a in self.attempts],
            "cache_source": self.cache_source,
            "smoke": self.smoke,
            "fallback_reason": self.fallback_reason,
            "compiler": self.compiler,
            "compiler_version": self.compiler_version,
            "flags": list(self.flags),
        }


class KernelQuarantinedError(RuntimeError):
    """This kernel crashed or mis-computed in its smoke-run (now or
    earlier this session); the runtime refuses to link it."""

    def __init__(self, graph_hash_: str, reason: str,
                 report: CompileReport | None = None) -> None:
        super().__init__(
            f"kernel {graph_hash_} is quarantined: {reason}")
        self.graph_hash = graph_hash_
        self.reason = reason
        self.report = report


# Session state: kernels proven dangerous, artifacts proven safe.
_quarantined: dict[str, str] = {}
_trusted: set[tuple[str, str]] = set()
_state_lock = threading.Lock()


def quarantine(graph_hash_: str, reason: str) -> None:
    with _state_lock:
        _quarantined[graph_hash_] = reason
    obs.counter("quarantine.events")
    obs.event("quarantine", graph_hash=graph_hash_, reason=reason)


def quarantined_kernels() -> dict[str, str]:
    """Graph hash → reason for every kernel quarantined this session."""
    with _state_lock:
        return dict(_quarantined)


def clear_session_state() -> None:
    """Forget quarantines and smoke-trusted artifacts, after draining
    any pending background compiles and resetting the tiered manager's
    counters (test hook; keeps suites hermetic under ``REPRO_TIER``).

    Order matters: the manager drains first so an in-flight compile
    cannot quarantine a kernel *after* the registry is cleared.

    The serve layer is reset only if it was ever imported
    (``sys.modules.get`` — never load it eagerly): the service client
    singleton is dropped and any daemon started by *this* process is
    stopped, which removes its socket and pid file.
    """
    from repro.core.tiered import default_manager
    default_manager.reset()
    serve_client = sys.modules.get("repro.serve.client")
    if serve_client is not None:
        serve_client.reset_service()
    serve_daemon = sys.modules.get("repro.serve.daemon")
    if serve_daemon is not None:
        serve_daemon.shutdown_local_daemons()
    with _state_lock:
        _quarantined.clear()
        _trusted.clear()
    faults.reset()
    from repro.core import policy
    policy.reset_tables()


# ---------------------------------------------------------------------------
# Shadow arguments: small deterministic inputs the simulator validates.

_SHADOW_LEN = 64
_SHADOW_BOUNDS = (64, 16, 8, 1, 0)


def _candidate_shadow_args(staged: StagedFunction
                           ) -> Iterator[list[Any]]:
    """Candidate argument sets: arrays of ``_SHADOW_LEN`` elements and a
    descending ladder of integer-scalar values (loop bounds, usually).
    The first set the simulator executes cleanly is used for the smoke
    run; if it raises (e.g. out-of-bounds for that bound), try smaller.
    """
    for bound in _SHADOW_BOUNDS:
        args: list[Any] = []
        ok = True
        for i, p in enumerate(staged.params):
            tp = p.tp
            if isinstance(tp, ArrayType):
                elem = tp.elem
                if elem.is_float:
                    arr = ((np.arange(_SHADOW_LEN) % 7 + 1 + i)
                           .astype(elem.np_dtype) / elem.np_dtype.type(4))
                elif elem.name == "Boolean":
                    arr = (np.arange(_SHADOW_LEN) % 2 == 0)
                else:
                    arr = ((np.arange(_SHADOW_LEN) + i) % 5
                           ).astype(elem.np_dtype)
                args.append(np.ascontiguousarray(arr))
            elif isinstance(tp, ScalarType):
                if tp.is_float:
                    args.append(1.5)
                elif tp.name == "Boolean":
                    args.append(True)
                else:
                    args.append(bound)
            else:
                ok = False
                break
        if ok:
            yield args


def _copy_args(args: Sequence[Any]) -> list[Any]:
    return [np.array(a, copy=True) if isinstance(a, np.ndarray) else a
            for a in args]


def _validated_shadow_args(staged: StagedFunction,
                           machine: SimdMachine | None = None
                           ) -> list[Any] | None:
    """The first candidate set the bit-accurate simulator accepts."""
    if machine is None:
        machine = SimdMachine()
    for args in _candidate_shadow_args(staged):
        try:
            machine.run(staged, _copy_args(args))
        except Exception:  # noqa: BLE001 - any failure disqualifies
            continue
        return args
    return None


def _scalars_match(tp, got: Any, want: Any) -> bool:
    if not isinstance(tp, ScalarType):
        return True
    a = tp.np_dtype.type(got)
    b = tp.np_dtype.type(want)
    if tp.is_float and np.isnan(a) and np.isnan(b):
        return True
    return a.tobytes() == b.tobytes()


def _arrays_match(a: np.ndarray, b: np.ndarray) -> bool:
    if np.issubdtype(a.dtype, np.floating):
        return np.array_equal(a, b, equal_nan=True)
    return np.array_equal(a, b)


# ---------------------------------------------------------------------------
# The forked smoke-run.

@dataclass
class SmokeVerdict:
    status: str          # "passed" | "skipped" | "crashed" | "mismatch"
    #                      | "timeout" | "child-error"
    detail: str = ""

    @property
    def failed(self) -> bool:
        return self.status in ("crashed", "mismatch", "timeout")


def _smoke_timeout() -> float:
    return env_float("REPRO_SMOKE_TIMEOUT", 30.0, minimum=0.01)


def _child_smoke(artifact: NativeArtifact, shadow: list[Any],
                 expected_args: list[Any], expected_ret: Any,
                 write_fd: int) -> int:
    """Runs in the forked child: link, run, compare.  Returns exit code
    0 (match), 3 (mismatch) or 4 (infrastructure error); a crash in the
    native code never returns at all — that is the point of the fork.
    """
    try:
        # injected mid-smoke crash: the fork is the containment
        # boundary this exercises — the parent sees WIFSIGNALED
        faults.maybe_kill("smoke.kill_child")
        # faulthandler is imported at module scope: the child must not
        # touch the import machinery (a lock another thread may hold at
        # fork time, now that smoke-runs happen on compile workers).
        if faulthandler.is_enabled():
            # a crash here is expected and contained; don't let the
            # inherited handler dump the parent's stack to stderr
            faulthandler.disable()
        lib = ctypes.CDLL(str(artifact.so_path))
        fn = getattr(lib, artifact.symbol)
        fn.argtypes, fn.restype = ctype_signature(artifact.staged)
        kernel = NativeKernel(
            staged=artifact.staged, c_source=artifact.c_source,
            library_path=artifact.so_path, symbol=artifact.symbol,
            _fn=fn, system=artifact.system)
        got = kernel(*shadow)
        problems: list[str] = []
        for param, have, want in zip(artifact.staged.params, shadow,
                                     expected_args):
            if isinstance(have, np.ndarray) and \
                    not _arrays_match(have, want):
                problems.append(f"array {param!r} diverges")
        if not _scalars_match(artifact.staged.result_type, got,
                              expected_ret):
            problems.append(
                f"return value {got!r} != simulator {expected_ret!r}")
        if problems:
            os.write(write_fd, "; ".join(problems).encode()[:512])
            return 3
        return 0
    except BaseException as exc:  # noqa: BLE001 - child must not unwind
        try:
            os.write(write_fd, f"{type(exc).__name__}: {exc}"
                     .encode()[:512])
        except OSError:
            pass
        return 4


def smoke_test_artifact(artifact: NativeArtifact,
                        timeout: float | None = None) -> SmokeVerdict:
    """Run the artifact once in a forked child on simulator-validated
    shadow arguments and compare against :meth:`run_simulated` output.

    The host process never maps the library: a SIGSEGV, abort or hang
    kills only the child.  Platforms without ``os.fork`` skip.
    """
    if not hasattr(os, "fork"):
        return SmokeVerdict("skipped", "os.fork unavailable")
    # One machine validates and produces the expectation: the staged
    # function's compiled executor program is built once and shared.
    machine = SimdMachine()
    shadow = _validated_shadow_args(artifact.staged, machine)
    if shadow is None:
        return SmokeVerdict(
            "skipped", "no simulator-validated shadow arguments")
    expected_args = _copy_args(shadow)
    expected_ret = machine.run(artifact.staged, expected_args)
    if timeout is None:
        timeout = _smoke_timeout()

    read_fd, write_fd = os.pipe()
    pid = os.fork()
    if pid == 0:
        code = 4
        try:
            os.close(read_fd)
            code = _child_smoke(artifact, shadow, expected_args,
                                expected_ret, write_fd)
        finally:
            os._exit(code)
    os.close(write_fd)
    try:
        deadline = time.monotonic() + timeout
        status: int | None = None
        while True:
            wpid, wstatus = os.waitpid(pid, os.WNOHANG)
            if wpid == pid:
                status = wstatus
                break
            if time.monotonic() > deadline:
                try:
                    os.kill(pid, signal.SIGKILL)
                except OSError:
                    pass
                os.waitpid(pid, 0)
                break
        detail = b""
        try:
            while True:
                chunk = os.read(read_fd, 4096)
                if not chunk:
                    break
                detail += chunk
        except OSError:
            pass
    finally:
        os.close(read_fd)

    if status is None:
        return SmokeVerdict("timeout",
                            f"smoke-run exceeded {timeout}s; child killed")
    if os.WIFSIGNALED(status):
        sig = os.WTERMSIG(status)
        try:
            name = signal.Signals(sig).name
        except ValueError:
            name = f"signal {sig}"
        return SmokeVerdict("crashed", f"native smoke-run died with {name}")
    code = os.WEXITSTATUS(status)
    text = detail.decode(errors="replace")
    if code == 0:
        return SmokeVerdict("passed")
    if code == 3:
        return SmokeVerdict("mismatch", text or "results diverge")
    return SmokeVerdict("child-error", text or f"child exit {code}")


# ---------------------------------------------------------------------------
# The acquisition path: disk cache → ladder compile → smoke → link.

def _smoke_enabled() -> bool:
    return os.environ.get("REPRO_SMOKE", "1") not in ("0", "off", "no")


def _disk_enabled() -> bool:
    return os.environ.get("REPRO_DISK_CACHE", "1") not in ("0", "off", "no")


def _disk_lookup(disk: DiskKernelCache, staged: StagedFunction,
                 ghash: str, isas: frozenset[str],
                 ccs: Sequence[CompilerInfo], system: SystemInfo,
                 report: CompileReport) -> NativeArtifact | None:
    """Probe the disk tier under every key the ladder could produce,
    preferred configuration first."""
    for cc in ccs:
        for _rung, flags in flag_ladder(cc, isas, required=isas):
            key = DiskKernelCache.artifact_key(ghash, cc.version, flags,
                                               isas)
            entry = disk.get(key)
            if entry is None:
                continue
            meta = entry.meta
            report.cache_source = "disk"
            report.compiler = cc.name
            report.compiler_version = cc.version
            report.flags = tuple(flags)
            return NativeArtifact(
                staged=staged,
                c_source=meta.get("c_source", ""),
                so_path=entry.so_path,
                symbol=meta.get("symbol", ""),
                isas=frozenset(meta.get("isas", sorted(isas))),
                system=system, compiler=cc, flags=tuple(flags))
    return None


def _disk_store(disk: DiskKernelCache, artifact: NativeArtifact,
                ghash: str) -> None:
    if artifact.compiler is None:
        return
    try:
        blob = artifact.so_path.read_bytes()
    except OSError:
        return
    key = DiskKernelCache.artifact_key(
        ghash, artifact.compiler.version, artifact.flags, artifact.isas)
    meta = {
        "graph_hash": ghash,
        "symbol": artifact.symbol,
        "c_source": artifact.c_source,
        "isas": sorted(artifact.isas),
        "compiler": artifact.compiler.name,
        "compiler_version": artifact.compiler.version,
        "flags": list(artifact.flags),
        "created": time.time(),
    }
    try:
        disk.put(key, blob, meta)
    except OSError:
        pass  # a full or read-only cache never blocks compilation


def _artifact_token(ghash: str, so_path) -> tuple[str, str]:
    try:
        digest = hashlib.sha256(so_path.read_bytes()).hexdigest()
    except OSError:
        digest = "unreadable"
    return (ghash, digest)


def acquire_native(staged: StagedFunction, *,
                   system: SystemInfo | None = None,
                   compilers: Sequence[CompilerInfo] | None = None,
                   use_disk_cache: bool | None = None,
                   smoke: bool | None = None,
                   max_retries: int | None = None,
                   deadline: float | None = None,
                   ) -> tuple[NativeKernel, CompileReport]:
    """Produce a trusted, linked native kernel — or refuse loudly.

    The full resilience path: quarantine check, disk-cache probe,
    ladder compile (with retries), disk-cache store, forked smoke-run,
    then (and only then) ``ctypes`` linking into this process.
    ``deadline`` (absolute ``time.monotonic()``) bounds the compile
    ladder — see :class:`repro.codegen.compiler.CompileDeadlineError`.
    Raises :class:`KernelQuarantinedError`,
    :class:`PermanentCompileError` / :class:`TransientCompileError`
    (both :class:`CompileError`) or :class:`NativeLinkError`; each
    carries the ``report`` attribute.
    """
    system = system or inspect_system()
    ccs = list(compilers) if compilers is not None \
        else list(compiler_chain(system))
    ghash = graph_hash(staged)
    report = CompileReport(graph_hash=ghash)

    with obs.span("acquire", kernel=staged.name,
                  graph_hash=ghash) as acq_span:
        with _state_lock:
            reason = _quarantined.get(ghash)
        if reason is not None:
            report.fallback_reason = f"quarantined: {reason}"
            raise KernelQuarantinedError(ghash, reason, report)

        if not ccs:
            exc: Exception = NativeLinkError("no C compiler available")
            exc.report = report  # type: ignore[attr-defined]
            raise exc

        isas = required_isas(staged)
        try:
            check_kernel_isas(staged.name, isas, system, ccs)
        except NativeLinkError as err:
            err.report = report  # type: ignore[attr-defined]
            raise

        use_disk = _disk_enabled() if use_disk_cache is None \
            else use_disk_cache
        disk = default_cache.disk if use_disk else None

        artifact = None
        if disk is not None:
            with obs.span("disk_probe") as probe_span:
                artifact = _disk_lookup(disk, staged, ghash, isas, ccs,
                                        system, report)
                probe_span.set(
                    "outcome", "hit" if artifact is not None else "miss")
            obs.counter("acquire.disk_probe",
                        outcome="hit" if artifact is not None else "miss")
        if artifact is None:
            try:
                artifact = build_native(staged, check_isas=False,
                                        compilers=ccs,
                                        attempts=report.attempts,
                                        max_retries=max_retries,
                                        deadline=deadline)
            except CompileError as err:
                report.fallback_reason = str(err)
                err.report = report  # type: ignore[attr-defined]
                raise
            report.cache_source = "compiled"
            if artifact.compiler is not None:
                report.compiler = artifact.compiler.name
                report.compiler_version = artifact.compiler.version
                report.flags = artifact.flags
            if disk is not None:
                _disk_store(disk, artifact, ghash)
        acq_span.set("cache_source", report.cache_source)

        run_smoke = _smoke_enabled() if smoke is None else smoke
        with obs.span("smoke", kernel=staged.name) as smoke_span:
            if not run_smoke:
                report.smoke = "disabled"
            else:
                token = _artifact_token(ghash, artifact.so_path)
                with _state_lock:
                    already_trusted = token in _trusted
                if already_trusted:
                    report.smoke = "trusted"
                else:
                    verdict = smoke_test_artifact(artifact)
                    report.smoke = verdict.status
                    if verdict.failed:
                        reason = f"{verdict.status}: {verdict.detail}" \
                            if verdict.detail else verdict.status
                        smoke_span.set("verdict", report.smoke)
                        obs.counter("smoke.verdicts", status=report.smoke)
                        quarantine(ghash, reason)
                        if disk is not None and \
                                artifact.compiler is not None:
                            # never serve a condemned artifact to others
                            disk.invalidate(DiskKernelCache.artifact_key(
                                ghash, artifact.compiler.version,
                                artifact.flags, artifact.isas))
                        report.fallback_reason = f"quarantined: {reason}"
                        raise KernelQuarantinedError(ghash, reason, report)
                    if verdict.status == "passed":
                        with _state_lock:
                            _trusted.add(token)
            smoke_span.set("verdict", report.smoke)
        obs.counter("smoke.verdicts", status=report.smoke)

        with obs.span("link", kernel=staged.name):
            try:
                native = link_native(artifact)
            except NativeLinkError as err:
                err.report = report  # type: ignore[attr-defined]
                raise
        return native, report
