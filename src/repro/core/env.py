"""Tolerant environment-variable parsing shared across the runtime.

Configuration knobs (`REPRO_SMOKE_TIMEOUT`, `REPRO_COMPILE_RETRIES`,
cache bounds, observability limits, ...) are read at call sites deep in
the compile path, where a malformed value must never abort a kernel
build.  These helpers warn once per lookup and fall back to the
documented default instead of raising.
"""

from __future__ import annotations

import os
import warnings

__all__ = ["env_float", "env_int"]


def _clamp(value, minimum):
    if minimum is not None and value < minimum:
        return minimum
    return value


def env_float(name: str, default: float,
              minimum: float | None = None) -> float:
    """``float(os.environ[name])`` with a warn-and-default fallback."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        return _clamp(float(raw), minimum)
    except ValueError:
        warnings.warn(
            f"ignoring malformed {name}={raw!r}; using default {default}",
            RuntimeWarning, stacklevel=2)
        return default


def env_int(name: str, default: int, minimum: int | None = None) -> int:
    """``int(os.environ[name])`` with a warn-and-default fallback."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        return _clamp(int(raw), minimum)
    except ValueError:
        warnings.warn(
            f"ignoring malformed {name}={raw!r}; using default {default}",
            RuntimeWarning, stacklevel=2)
        return default
