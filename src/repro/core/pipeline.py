"""The compile pipeline: stage, generate, compile, link, price.

``compile_staged`` is the functional entry point; ``compile_kernel``
plus ``native_placeholder`` mirror the paper's class-based workflow
(Figure 4's ``NSaxpy``), including the automatic placeholder binding the
paper implements with Scala macros and JVM reflection.
"""

from __future__ import annotations

import enum
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

import repro.obs as obs
from repro.codegen.cgen import emit_c_source
from repro.codegen.compiler import CompileError
from repro.codegen.native import NativeKernel, NativeLinkError
from repro.core import policy
from repro.core.batch import batch_enabled, default_batcher, execute_batch
from repro.core.resilience import (
    CompileReport,
    KernelQuarantinedError,
    acquire_native,
)
from repro.core.tiered import (
    TIER_MODES,
    NativeDispatch,
    SimulatedDispatch,
    TierEvent,
    get_manager,
    tier_mode,
)
from repro.lms.optimize import OptStats, effective_level, optimize_staged
from repro.lms.staging import StagedFunction, stage_function
from repro.lms.types import Type
from repro.simd.machine import SimdMachine
from repro.timing.kernelmodel import MachineKernel
from repro.timing.model import CostModel, KernelCost
from repro.timing.staged_lower import lower_staged, param_env


class BackendKind(enum.Enum):
    NATIVE = "native"       # real C -> gcc/clang -> ctypes
    SIMULATED = "simulated"  # the bit-accurate SIMD machine


class UnsatisfiedLinkError(RuntimeError):
    """A ``@native`` placeholder was invoked before ``compile_kernel``."""


@dataclass
class CompiledKernel:
    """A staged kernel, linked and priceable.

    Calling the kernel dispatches through ``_impl`` — the one attribute
    the read path touches, so the tiered hot-swap (see
    :mod:`repro.core.tiered`) is a single atomic store and the call
    path needs no lock.  ``cost`` prices the kernel on the Haswell
    model (in cycles) for given parameter values and stream footprints.
    """

    staged: StagedFunction
    backend: BackendKind
    c_source: str
    machine_kernel: MachineKernel = field(repr=False)
    _native: NativeKernel | None = field(default=None, repr=False)
    _machine: SimdMachine = field(default_factory=SimdMachine, repr=False)
    fallback_reason: str | None = None
    cost_model: CostModel = field(default_factory=CostModel, repr=False)
    report: CompileReport | None = field(default=None, repr=False)
    trace: list = field(default_factory=list, repr=False)
    tier_events: list = field(default_factory=list, repr=False)
    tier_calls: dict = field(
        default_factory=lambda: {"simulated": 0, "native": 0},
        repr=False)
    opt_stats: OptStats | None = field(
        default=None, repr=False, compare=False)
    policy_log: list = field(
        default_factory=list, repr=False, compare=False)
    _impl: Any = field(default=None, repr=False, compare=False)
    _tier_job: Any = field(default=None, repr=False, compare=False)
    _batcher: Any = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self._impl is None:
            if self.backend == BackendKind.NATIVE and \
                    self._native is not None:
                self._impl = self._native
            else:
                self._impl = self._sim_call

    @property
    def name(self) -> str:
        return self.staged.name

    def __call__(self, *args: Any) -> Any:
        batcher = self._batcher
        if batcher is not None:
            return batcher.submit(self, args)
        return self._impl(*args)

    def call_batch(self, args_seq: Sequence[Sequence[Any]]) -> list:
        """Execute many argument sets as tier-level batches (the
        explicit batch API; see :func:`repro.core.batch.execute_batch`
        for the chunking and hot-swap splitting rules).  Results,
        array mutations and simulator op accounting are bit-identical
        to calling the kernel once per entry."""
        return execute_batch(self, args_seq)

    def _sim_call(self, *args: Any) -> Any:
        return self._machine.run(self.staged, args)

    # -- tiered execution (see repro.core.tiered) ----------------------

    @property
    def tier(self) -> str:
        """The tier currently serving calls: ``native`` or
        ``simulated``."""
        return "native" if (self.backend == BackendKind.NATIVE
                            and self._native is not None) \
            else "simulated"

    def _record_tier_event(self, action: str, tier: str,
                           detail: str = "") -> None:
        self.tier_events.append(
            TierEvent(action, tier, time.monotonic(), detail))

    def _policy_note(self, note: str) -> None:
        """Record one learned-policy decision this kernel received
        (surfaced by :meth:`explain`)."""
        self.policy_log.append(note)

    def _swap_to_native(self, native: NativeKernel,
                        report: CompileReport | None = None,
                        trace: list | None = None) -> None:
        """Atomic hot-swap to the native tier (runs on a manager worker
        thread).  All bookkeeping lands *before* the final ``_impl``
        store — the only attribute the call path reads — so a racing
        caller observes either the old simulated dispatch or the fully
        wired native one, never a torn kernel.
        """
        self._native = native
        if report is not None:
            self.report = report
        self.fallback_reason = None
        if native.c_source:
            self.c_source = native.c_source
        if trace:
            self.trace = list(self.trace) + list(trace)
        self.backend = BackendKind.NATIVE
        self._record_tier_event(
            "swap", "native",
            detail=(report.cache_source or "")
            if report is not None else "")
        self._impl = NativeDispatch(self, native)

    def _demote(self, reason: str | None,
                report: CompileReport | None = None,
                trace: list | None = None) -> None:
        """A managed kernel stays on the simulated tier — quarantine,
        ladder exhaustion and link failures demote instead of raising
        into callers."""
        self.fallback_reason = reason
        if report is not None:
            self.report = report
        if trace:
            self.trace = list(self.trace) + list(trace)
        self.backend = BackendKind.SIMULATED
        self._record_tier_event("demote", "simulated",
                                detail=reason or "")

    def wait_native(self, timeout: float | None = None
                    ) -> "CompiledKernel":
        """Block until this kernel's background promotion settles on
        either tier; returns ``self``.  A no-op for unmanaged (sync)
        kernels.  Under ``hot`` tiering this forces the enqueue even if
        the invocation counter has not reached the threshold yet.
        Raises :class:`TimeoutError` if the compile outlives
        ``timeout`` seconds.
        """
        job = self._tier_job
        if job is None:
            impl = self._impl
            if isinstance(impl, SimulatedDispatch) and \
                    self.fallback_reason is None:
                impl.countdown = None    # the hotness gate is moot now
                job = impl.manager.promote(self)
                if job is None:       # shed: breaker open / queue full
                    return self
            else:
                return self
        if not job.wait(timeout):
            raise TimeoutError(
                f"native compile of {self.name!r} did not settle "
                f"within {timeout}s")
        return self

    def run_simulated(self, *args: Any) -> Any:
        """Force the simulator backend (used to cross-check native)."""
        return self._machine.run(self.staged, args)

    def validate(self, *args: Any) -> Any:
        """Run the bit-accurate simulator on ``args`` first, so invalid
        SIMD code (out-of-bounds loads/stores) raises a Python
        exception instead of faulting in native code — the safety net
        the paper's Section 3.5 says LMS lacks ("it is the
        responsibility of the developer to write valid SIMD code").
        Returns the simulated result; call the kernel afterwards.
        """
        return self._machine.run(self.staged, _shadow_args(args))

    def cost(self, params: dict[str, float],
             footprints: dict[str, float] | None = None,
             calls: int = 1) -> KernelCost:
        """Cycles for one (or ``calls``) invocation at the given sizes."""
        env = param_env(self.staged, params)
        return self.cost_model.cost(self.machine_kernel, env,
                                    footprints=footprints, calls=calls)

    def flops_per_cycle(self, flops: float, params: dict[str, float],
                        footprints: dict[str, float] | None = None) -> float:
        return self.cost(params, footprints).flops_per_cycle(flops)

    def explain(self) -> str:
        """What happened when this kernel was built, and where its
        runtime goes: the build-time span tree (``self.trace``), the
        compile report, and — when the simulator backend has executed —
        the instruction mix observed so far.
        """
        from repro.obs.report import render_span_tree
        lines = [f"kernel {self.name!r}: backend={self.backend.value}"]
        lines.append(f"simulator engine: {self._machine.executor}")
        calls = self.tier_calls
        lines.append(
            f"tier: {self.tier} (calls: "
            f"simulated={calls['simulated']} native={calls['native']})")
        if self.tier_events:
            lines.append("tier history:")
            t0 = self.tier_events[0].at
            for ev in self.tier_events:
                suffix = f"  ({ev.detail})" if ev.detail else ""
                lines.append(
                    f"  +{(ev.at - t0) * 1e3:8.1f} ms  "
                    f"{ev.action:8s}-> {ev.tier}{suffix}")
        if self.fallback_reason:
            lines.append(f"fallback_reason: {self.fallback_reason}")
        if self.policy_log:
            lines.append("policy decisions:")
            for note in self.policy_log:
                lines.append(f"  {note}")
        else:
            lines.append(f"policy decisions: (none; "
                         f"REPRO_POLICY={policy.policy_mode()})")
        if self.opt_stats is not None:
            lines.append("optimizer:")
            for ln in self.opt_stats.summary_lines():
                lines.append(f"  {ln}")
        else:
            lines.append("optimizer: (REPRO_OPT=0 or served from cache)")
        if self.report is not None:
            r = self.report
            lines.append(
                f"compile report: cache_source={r.cache_source} "
                f"smoke={r.smoke} compiler={r.compiler} "
                f"invocations={r.compiler_invocations}")
            for a in r.attempts:
                lines.append(f"  attempt {a.compiler}/{a.rung}: "
                             f"{a.outcome} ({a.duration_s * 1e3:.1f} ms)")
        if self.trace:
            lines.append("build trace:")
            lines.append(render_span_tree(self.trace))
        else:
            lines.append("build trace: (none recorded; REPRO_OBS off or "
                         "served from the in-memory cache)")
        mix = self._machine.op_counts
        if mix:
            lines.append("simulated instruction mix (top 10):")
            for op, count in mix.most_common(10):
                lines.append(f"  {op:40s} {count}")
        return "\n".join(lines)


def _shadow_args(args: Sequence[Any]) -> list[Any]:
    """Deep-enough copies of ``args`` that simulator writes never leak
    into caller memory — including through non-contiguous array views,
    which are copied into fresh C-contiguous buffers."""
    shadow: list[Any] = []
    for a in args:
        if isinstance(a, np.ndarray):
            shadow.append(np.array(a, dtype=a.dtype, order="C", copy=True))
        elif hasattr(a, "copy"):
            shadow.append(a.copy())
        else:
            shadow.append(a)
    return shadow


def _pick_backend(staged: StagedFunction, requested: str,
                  notes: list[str] | None = None) -> tuple[
        BackendKind, NativeKernel | None, str | None,
        CompileReport | None]:
    """Resolve the backend through the resilience layer.

    The exception taxonomy threads through here: a quarantined kernel
    (:class:`KernelQuarantinedError`) and a ladder-exhausted compile
    (:class:`PermanentCompileError` / :class:`TransientCompileError`,
    both :class:`CompileError`) degrade to the simulator under
    ``"auto"`` with the reason recorded, and propagate under
    ``"native"``.

    Every settled ``"auto"``/``"native"`` probe records a per-family
    backend verdict in the policy table; under ``REPRO_POLICY=learned``
    a family whose probes keep failing (quarantine-prone, ladder
    doomed) is routed straight to the simulator without paying the
    native probe tax (DESIGN.md §15).  Explicit ``"native"`` requests
    are never gated — the caller asked to see the failure.
    """
    if requested == "simulated":
        return BackendKind.SIMULATED, None, None, None
    family = policy.family_of(staged.name)
    if requested == "auto" and policy.acting():
        gate = policy.native_backend_gate(family)
        if gate is not None:
            if notes is not None:
                notes.append(gate)
            return BackendKind.SIMULATED, None, gate, None
    table = policy.get_policy() if policy.recording() else None
    try:
        native, report = acquire_native(staged)
        if table is not None:
            table.record(family, "backend", "native", True)
        return BackendKind.NATIVE, native, None, report
    except KernelQuarantinedError as exc:
        if table is not None:
            table.record(family, "backend", "native", False)
        if requested == "native":
            raise
        return (BackendKind.SIMULATED, None,
                f"quarantined: {exc.reason}", exc.report)
    except (NativeLinkError, CompileError) as exc:
        if table is not None:
            table.record(family, "backend", "native", False)
        if requested == "native":
            raise
        return (BackendKind.SIMULATED, None, str(exc),
                getattr(exc, "report", None))


def compile_staged(fn: Callable[..., object], arg_types: Sequence[Type],
                   name: str | None = None,
                   backend: str | None = None,
                   use_cache: bool = True,
                   tier: str | None = None) -> CompiledKernel:
    """Stage ``fn`` and link it (Figure 3's runtime path).

    ``backend`` is ``"auto"`` (default), ``"native"`` or ``"simulated"``;
    the ``REPRO_BACKEND`` environment variable overrides the default.
    ``tier`` is ``"sync"`` (compile natively inline), ``"async"``
    (serve from the simulator now, compile in the background and
    hot-swap) or ``"hot"`` (like ``async``, but gated on an invocation
    counter); it defaults to ``REPRO_TIER`` and only applies to the
    ``"auto"`` backend — explicit ``"native"`` keeps its inline,
    raise-on-failure semantics.  Identical kernels (by structural graph
    hash) are served from the kernel cache, amortizing staging and
    native compilation (the mitigation for the paper's Section 3.5
    code-generation overhead).
    """
    requested = backend or os.environ.get("REPRO_BACKEND", "auto")
    if requested not in ("auto", "native", "simulated"):
        raise ValueError(f"unknown backend {requested!r}")
    if tier is not None and tier not in TIER_MODES:
        raise ValueError(f"unknown tier {tier!r}")
    mode = tier if tier is not None else tier_mode()
    deferred = requested == "auto" and mode in ("async", "hot")
    trace_id: int | None = None
    with obs.span("pipeline", requested=requested) as pipe_span:
        trace_id = obs.get_tracer().current_trace_id()
        with obs.span("stage"):
            staged = stage_function(fn, arg_types, name)
        pipe_span.set("kernel", staged.name)
        # Stamp the effective middle-end level *before* the cache probe:
        # graph_hash folds it in, so a kernel optimized at one level is
        # never served to a caller running at another.
        opt_level = effective_level()
        staged.opt_level = opt_level
        pre_opt = staged
        if use_cache:
            from repro.core.cache import default_cache
            cached = default_cache.get_for(pre_opt, requested)
            if cached is not None:
                pipe_span.set("cache_source", "memory")
                # One atomic store: cached kernels track the current
                # REPRO_BATCH setting instead of the one at creation.
                cached._batcher = default_batcher() \
                    if batch_enabled() else None
                return cached
        opt_stats: OptStats | None = None
        if opt_level > 0:
            with obs.span("opt", level=opt_level) as opt_span:
                staged, opt_stats = optimize_staged(staged, opt_level)
                opt_span.set("eliminated", opt_stats.total_eliminated)
                opt_span.set("iterations", opt_stats.iterations)
        policy_notes: list[str] = []
        if deferred:
            # The HotSpot shape: the simulated tier serves immediately;
            # acquire_native runs on the manager's worker pool and the
            # kernel is hot-swapped (or demoted) when it settles.
            kind: BackendKind = BackendKind.SIMULATED
            native = None
            reason = report = None
        else:
            kind, native, reason, report = _pick_backend(
                staged, requested, notes=policy_notes)
        c_source = native.c_source \
            if native is not None and native.c_source \
            else _try_emit_c(staged)
        with obs.span("lower"):
            machine_kernel = lower_staged(staged)
        kernel = CompiledKernel(
            staged=staged, backend=kind, c_source=c_source,
            machine_kernel=machine_kernel, _native=native,
            fallback_reason=reason, report=report,
            opt_stats=opt_stats, policy_log=policy_notes,
        )
        if batch_enabled():
            kernel._batcher = default_batcher()
        pipe_span.set("backend", kind.value)
        obs.counter("pipeline.backend", kind=kind.value)
        if reason is not None:
            pipe_span.set("reason", reason)
            obs.counter("pipeline.fallbacks")
        if use_cache:
            from repro.core.cache import default_cache
            # Keyed on the pre-optimization graph: the probe above used
            # it, and re-staging the same kernel reproduces it exactly.
            default_cache.put_for(pre_opt, requested, kernel)
        if deferred:
            pipe_span.set("tier", mode)
            # get_manager: REPRO_SERVICE routes deferred compiles
            # through the service-backed manager
            get_manager().manage(kernel, mode)
    if trace_id is not None:
        kernel.trace = obs.get_tracer().spans_for_trace(trace_id)
    return kernel


def _try_emit_c(staged: StagedFunction) -> str:
    try:
        return emit_c_source(staged)
    except Exception as exc:  # noqa: BLE001 - C source is informative only
        return f"/* C generation failed: {exc} */"


@dataclass
class NativePlaceholder:
    """The ``@native def apply(...)`` marker of the paper's step 1.

    Optionally carries the declared signature.  The paper lists the
    missing isomorphism check between placeholder and staged function as
    a limitation ("it is the responsibility of the developer to define
    this isomorphic relation"); declaring ``arg_types`` here lets
    :func:`compile_kernel` enforce it.
    """

    name: str = "apply"
    arg_types: tuple[Type, ...] | None = None

    def __call__(self, *args: Any) -> Any:
        raise UnsatisfiedLinkError(
            f"native method {self.name!r} has not been compiled yet; "
            f"call compile_kernel(...) first (the paper's step 4)"
        )


def native_placeholder(name: str = "apply",
                       arg_types: Sequence[Type] | None = None
                       ) -> NativePlaceholder:
    return NativePlaceholder(
        name, tuple(arg_types) if arg_types is not None else None)


class SignatureMismatchError(TypeError):
    """Placeholder and staged function disagree (the isomorphism check
    the paper leaves to the developer)."""


def compile_kernel(staged_fn: Callable[..., object],
                   arg_types: Sequence[Type], obj: Any,
                   method_name: str, backend: str | None = None
                   ) -> CompiledKernel:
    """The paper's ``compile(saxpy_staged _, this, nameOf(apply _))``.

    Stages and links ``staged_fn`` and rebinds ``obj.<method_name>`` —
    which must currently be a :class:`NativePlaceholder` — to the
    compiled kernel, giving the same refactoring-robust automatic
    binding the paper builds from Scala macros.
    """
    current = getattr(obj, method_name, None)
    if not isinstance(current, NativePlaceholder):
        raise TypeError(
            f"{type(obj).__name__}.{method_name} is not a native "
            f"placeholder; declare it with native_placeholder()"
        )
    if current.arg_types is not None and \
            tuple(current.arg_types) != tuple(arg_types):
        raise SignatureMismatchError(
            f"placeholder {method_name!r} declares "
            f"{[str(t) for t in current.arg_types]} but the staged "
            f"function is compiled with {[str(t) for t in arg_types]}"
        )
    kernel = compile_staged(staged_fn, arg_types, name=method_name,
                            backend=backend)
    setattr(obj, method_name, kernel)
    return kernel
