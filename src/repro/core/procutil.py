"""Small process utilities shared by the resilience machinery.

The cross-process cache locks, the compile watchdog and the leaked
workdir sweep all need the same two primitives: "is this pid alive?"
and "kill this whole process group".  They live here so the cache,
compiler and native layers do not grow copies with diverging edge-case
handling.
"""

from __future__ import annotations

import os
import signal

__all__ = ["kill_process_group", "pid_alive"]


def pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (signal-0 probe).

    ``EPERM`` counts as alive — the process exists, we just may not
    signal it.  Non-positive pids are never considered alive (0 / -1
    would probe whole process groups).
    """
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    return True


def kill_process_group(pid: int, sig: int = signal.SIGKILL) -> bool:
    """Kill the process group led by ``pid`` (fall back to the single
    process when it has no group of its own).  Returns whether any
    signal was delivered."""
    try:
        os.killpg(pid, sig)
        return True
    except (ProcessLookupError, PermissionError, OSError):
        pass
    try:
        os.kill(pid, sig)
        return True
    except OSError:
        return False
