"""Kernel caching: amortizing staging and native compilation.

The paper notes (Section 3.5) that "LMS is not optimized for fast code
generation, which might result in an overhead surpassing the HotSpot
interpretation speed" for light kernels.  The standard mitigation is to
cache compiled kernels under a structural hash of the staged graph, so
re-staging an identical kernel (same intrinsics, same control structure,
same immediates) reuses the compiled artifact.
"""

from __future__ import annotations

import hashlib

from repro.lms.defs import Block, Stm
from repro.lms.expr import Const, Exp, Sym
from repro.lms.staging import StagedFunction


def _exp_token(e: Exp) -> str:
    if isinstance(e, Const):
        return f"c:{e.tp.name}:{e.value!r}"
    if isinstance(e, Sym):
        return f"s:{e.id}"
    return f"e:{id(e)}"


def _stm_tokens(stm: Stm, out: list[str]) -> None:
    rhs = stm.rhs
    out.append(f"{stm.sym.id}={type(rhs).__name__}:{rhs.mnemonic}")
    for arg in rhs.args:
        out.append(_exp_token(arg) if isinstance(arg, Exp)
                   else f"i:{arg!r}")
    for block in rhs.blocks:
        out.append("[")
        _block_tokens(block, out)
        out.append("]")


def _block_tokens(block: Block, out: list[str]) -> None:
    for stm in block.stms:
        _stm_tokens(stm, out)
    out.append(f"->{_exp_token(block.result)}")


def graph_hash(staged: StagedFunction) -> str:
    """A structural hash of a staged function.

    Two stagings of the same kernel produce identical SSA numbering
    (the builder is deterministic), so the hash is stable across
    re-staging and across processes.
    """
    tokens: list[str] = [staged.name]
    tokens += [f"p:{p.id}:{p.tp.name}" for p in staged.params]
    _block_tokens(staged.body, tokens)
    digest = hashlib.sha256("\n".join(tokens).encode()).hexdigest()
    return digest[:24]


class KernelCache:
    """An in-process cache of compiled kernels.

    Keys combine the structural graph hash with the requested backend,
    so forcing the simulator does not serve a native kernel (or vice
    versa).
    """

    def __init__(self) -> None:
        self._kernels: dict[tuple[str, str], object] = {}
        self.hits = 0
        self.misses = 0

    def get_for(self, staged: StagedFunction, backend: str):
        key = (graph_hash(staged), backend)
        kernel = self._kernels.get(key)
        if kernel is not None:
            self.hits += 1
        return kernel

    def put_for(self, staged: StagedFunction, backend: str,
                kernel: object) -> None:
        self.misses += 1
        self._kernels[(graph_hash(staged), backend)] = kernel

    def __len__(self) -> int:
        return len(self._kernels)


default_cache = KernelCache()
