"""Kernel caching: amortizing staging and native compilation.

The paper notes (Section 3.5) that "LMS is not optimized for fast code
generation, which might result in an overhead surpassing the HotSpot
interpretation speed" for light kernels.  The standard mitigation is to
cache compiled kernels under a structural hash of the staged graph, so
re-staging an identical kernel (same intrinsics, same control structure,
same immediates) reuses the compiled artifact.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

import repro.obs as obs
from repro.core.env import env_int
from repro.lms.defs import Block, Stm
from repro.lms.expr import Const, Exp, Sym
from repro.lms.staging import StagedFunction


def _exp_token(e: Exp) -> str:
    if isinstance(e, Const):
        return f"c:{e.tp.name}:{e.value!r}"
    if isinstance(e, Sym):
        return f"s:{e.id}"
    return f"e:{id(e)}"


def _stm_tokens(stm: Stm, out: list[str]) -> None:
    rhs = stm.rhs
    out.append(f"{stm.sym.id}={type(rhs).__name__}:{rhs.mnemonic}")
    for arg in rhs.args:
        out.append(_exp_token(arg) if isinstance(arg, Exp)
                   else f"i:{arg!r}")
    for block in rhs.blocks:
        out.append("[")
        _block_tokens(block, out)
        out.append("]")


def _block_tokens(block: Block, out: list[str]) -> None:
    for stm in block.stms:
        _stm_tokens(stm, out)
    out.append(f"->{_exp_token(block.result)}")


def graph_hash(staged: StagedFunction) -> str:
    """A structural hash of a staged function.

    Two stagings of the same kernel produce identical SSA numbering
    (the builder is deterministic), so the hash is stable across
    re-staging and across processes.  Memoized on the instance: every
    cache tier keys on it, and hashing before vs after scheduling (which
    rewrites nested blocks in place) must yield one stable key.
    """
    cached = getattr(staged, "_graph_hash", None)
    if cached is not None:
        return cached
    tokens: list[str] = [staged.name]
    tokens += [f"p:{p.id}:{p.tp.name}" for p in staged.params]
    _block_tokens(staged.body, tokens)
    digest = hashlib.sha256("\n".join(tokens).encode()).hexdigest()[:24]
    try:
        staged._graph_hash = digest
    except AttributeError:  # pragma: no cover - non-dataclass stand-in
        pass
    return digest


def cache_root() -> Path:
    """The persistent kernel-cache directory.

    ``REPRO_CACHE_DIR`` overrides; otherwise XDG conventions apply
    (``$XDG_CACHE_HOME/repro-kernels``, default ``~/.cache/repro-kernels``).
    """
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro-kernels"


@dataclass
class DiskCacheEntry:
    """A validated on-disk artifact: the shared library plus metadata."""

    so_path: Path
    meta: dict


class DiskKernelCache:
    """The persistent tier: compiled ``.so`` artifacts on disk.

    Entries are keyed by ``(graph_hash, compiler version, flags, ISA
    set)`` and written atomically (write to a temp file in the cache
    directory, then ``os.replace``).  Loads verify a SHA-256 checksum of
    the library against the metadata sidecar; any corruption —
    unreadable metadata, missing library, checksum mismatch — is a
    silent miss that also removes the entry, forcing a recompile.  The
    entry count is LRU-bounded (by mtime; reads touch entries).
    """

    def __init__(self, root: str | Path | None = None,
                 max_entries: int | None = None) -> None:
        self.root = Path(root).expanduser() if root is not None \
            else cache_root()
        self.max_entries = max_entries if max_entries is not None \
            else env_int("REPRO_CACHE_DISK_ENTRIES", 128, minimum=1)
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()

    @staticmethod
    def artifact_key(graph_hash_: str, compiler_version: str,
                     flags: Iterable[str], isas: Iterable[str]) -> str:
        token = "\n".join([graph_hash_, compiler_version,
                           " ".join(flags), " ".join(sorted(isas))])
        return hashlib.sha256(token.encode()).hexdigest()[:32]

    def _paths(self, key: str) -> tuple[Path, Path]:
        return self.root / f"{key}.so", self.root / f"{key}.json"

    def _drop(self, key: str) -> None:
        for p in self._paths(key):
            try:
                p.unlink()
            except OSError:
                pass

    def get(self, key: str) -> DiskCacheEntry | None:
        with self._lock:
            so_path, meta_path = self._paths(key)
            try:
                meta = json.loads(meta_path.read_text())
                blob = so_path.read_bytes()
            except (OSError, ValueError):
                self._drop(key)
                self.misses += 1
                obs.counter("cache.disk.misses")
                return None
            if not isinstance(meta, dict) or \
                    hashlib.sha256(blob).hexdigest() != meta.get("checksum"):
                self._drop(key)
                self.misses += 1
                obs.counter("cache.disk.misses")
                return None
            for p in (so_path, meta_path):
                try:
                    os.utime(p)  # touch for LRU recency
                except OSError:
                    pass
            self.hits += 1
            obs.counter("cache.disk.hits")
            return DiskCacheEntry(so_path=so_path, meta=meta)

    def invalidate(self, key: str) -> None:
        """Remove an entry (e.g. after its artifact was quarantined)."""
        with self._lock:
            self._drop(key)

    def put(self, key: str, so_bytes: bytes, meta: dict) -> Path:
        with self._lock:
            self.root.mkdir(parents=True, exist_ok=True)
            so_path, meta_path = self._paths(key)
            meta = dict(meta)
            meta["checksum"] = hashlib.sha256(so_bytes).hexdigest()
            for target, payload in ((so_path, so_bytes),
                                    (meta_path,
                                     json.dumps(meta).encode())):
                fd, tmp = tempfile.mkstemp(dir=self.root,
                                           prefix=f".{target.name}.")
                try:
                    os.write(fd, payload)
                    os.fsync(fd)
                finally:
                    os.close(fd)
                os.replace(tmp, target)
            self._evict()
            return so_path

    def _evict(self) -> None:
        try:
            metas = sorted(self.root.glob("*.json"),
                           key=lambda p: p.stat().st_mtime)
        except OSError:
            return
        excess = len(metas) - self.max_entries
        for meta_path in metas[:max(0, excess)]:
            self._drop(meta_path.stem)

    def __len__(self) -> int:
        return len(list(self.root.glob("*.json")))


class KernelCache:
    """The in-process tier of the kernel cache.

    Keys combine the structural graph hash with the requested backend,
    so forcing the simulator does not serve a native kernel (or vice
    versa).  Get/put are thread-safe; entries are LRU-bounded.  A miss
    is counted when ``get_for`` comes back empty (the caller will
    compile); ``put_for`` only stores.  The ``disk`` property exposes
    the persistent artifact tier rooted at the current ``cache_root()``.
    """

    def __init__(self, maxsize: int | None = None) -> None:
        self._kernels: OrderedDict[tuple[str, str], object] = OrderedDict()
        self._maxsize = maxsize if maxsize is not None \
            else env_int("REPRO_CACHE_MEM_ENTRIES", 256, minimum=1)
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._disk: DiskKernelCache | None = None

    @property
    def disk(self) -> DiskKernelCache:
        with self._lock:
            root = cache_root()
            if self._disk is None or self._disk.root != root:
                self._disk = DiskKernelCache(root=root)
            return self._disk

    def get_for(self, staged: StagedFunction, backend: str):
        key = (graph_hash(staged), backend)
        with self._lock:
            kernel = self._kernels.get(key)
            if kernel is None:
                self.misses += 1
            else:
                self.hits += 1
                self._kernels.move_to_end(key)
        obs.counter("cache.mem.hits" if kernel is not None
                    else "cache.mem.misses")
        return kernel

    def put_for(self, staged: StagedFunction, backend: str,
                kernel: object) -> None:
        key = (graph_hash(staged), backend)
        with self._lock:
            self._kernels[key] = kernel
            self._kernels.move_to_end(key)
            while len(self._kernels) > self._maxsize:
                self._kernels.popitem(last=False)

    def clear(self) -> None:
        """Drop the in-memory tier (the disk tier is untouched)."""
        with self._lock:
            self._kernels.clear()
            self.hits = 0
            self.misses = 0
            self._disk = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._kernels)


class ProgramCache:
    """In-process memo of closure-compiled simulator programs.

    Keyed by structural graph hash alone (unlike :class:`KernelCache`
    there is no backend dimension — a compiled program is the simulator
    backend).  Re-staging an identical kernel, a benchmark sweep over
    sizes, or a smoke-run against a fresh ``SimdMachine`` all reuse one
    program; entries are LRU-bounded by ``REPRO_CACHE_PROGRAM_ENTRIES``.
    """

    def __init__(self, maxsize: int | None = None) -> None:
        self._programs: OrderedDict[str, object] = OrderedDict()
        self._maxsize = maxsize if maxsize is not None \
            else env_int("REPRO_CACHE_PROGRAM_ENTRIES", 256, minimum=1)
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()

    def get(self, staged: StagedFunction):
        key = graph_hash(staged)
        with self._lock:
            program = self._programs.get(key)
            if program is None:
                self.misses += 1
            else:
                self.hits += 1
                self._programs.move_to_end(key)
        obs.counter("cache.program.hits" if program is not None
                    else "cache.program.misses")
        return program

    def put(self, staged: StagedFunction, program: object) -> None:
        key = graph_hash(staged)
        with self._lock:
            self._programs[key] = program
            self._programs.move_to_end(key)
            while len(self._programs) > self._maxsize:
                self._programs.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._programs.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._programs)


class CompileJob:
    """One in-flight background native compile: the single-flight unit.

    Every :class:`~repro.core.pipeline.CompiledKernel` that requests
    promotion of the same graph hash while the compile is in flight
    attaches here, and all of them are hot-swapped (or demoted)
    together when the job settles.  ``wait`` blocks callers that need
    the settled tier (``CompiledKernel.wait_native``).
    """

    __slots__ = ("key", "kernels", "future", "outcome", "_done")

    def __init__(self, key: str) -> None:
        self.key = key
        self.kernels: list = []
        self.future = None          # set by the manager after submit
        self.outcome: str | None = None   # "native" | "demoted: ..." |
        #                                   "cancelled"
        self._done = threading.Event()

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        return self._done.wait(timeout)

    def finish(self, outcome: str) -> None:
        self.outcome = outcome
        self._done.set()


class InflightCompiles:
    """Single-flight registry of background compiles, keyed by graph
    hash.

    ``join_or_open`` and ``settle`` share one lock, so a kernel either
    lands on the job the worker will settle (and gets swapped with it)
    or opens a fresh job — never the gap in between.  Two threads
    compiling the same graph hash therefore produce exactly one
    compiler-ladder walk.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._jobs: dict[str, CompileJob] = {}

    def join_or_open(self, key: str, kernel) -> tuple[CompileJob, bool]:
        """Attach ``kernel`` to the open job for ``key``, or open a new
        one.  Returns ``(job, owner)``; the owner submits the work."""
        with self._lock:
            job = self._jobs.get(key)
            if job is not None:
                # identity, not ==: kernel equality recurses into
                # staged Exp.__eq__, which *stages* a comparison op
                if kernel is not None and not any(
                        k is kernel for k in job.kernels):
                    job.kernels.append(kernel)
                return job, False
            job = CompileJob(key)
            if kernel is not None:
                job.kernels.append(kernel)
            self._jobs[key] = job
            return job, True

    def settle(self, key: str) -> list:
        """Detach the job for ``key`` and return its kernels.  Later
        ``join_or_open`` calls start a fresh job (which will be served
        by the now-trusted artifact caches)."""
        with self._lock:
            job = self._jobs.pop(key, None)
            return list(job.kernels) if job is not None else []

    def pending(self) -> int:
        with self._lock:
            return len(self._jobs)

    def keys(self) -> list[str]:
        with self._lock:
            return list(self._jobs)


default_cache = KernelCache()
program_cache = ProgramCache()
