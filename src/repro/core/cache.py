"""Kernel caching: amortizing staging and native compilation.

The paper notes (Section 3.5) that "LMS is not optimized for fast code
generation, which might result in an overhead surpassing the HotSpot
interpretation speed" for light kernels.  The standard mitigation is to
cache compiled kernels under a structural hash of the staged graph, so
re-staging an identical kernel (same intrinsics, same control structure,
same immediates) reuses the compiled artifact.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX hosts
    fcntl = None  # type: ignore[assignment]

import repro.obs as obs
from repro.core import faults, policy
from repro.core.env import env_float, env_int
from repro.core.procutil import pid_alive
from repro.lms.defs import Block, Stm
from repro.lms.expr import Const, Exp, Sym
from repro.lms.staging import StagedFunction


def _exp_token(e: Exp) -> str:
    if isinstance(e, Const):
        return f"c:{e.tp.name}:{e.value!r}"
    if isinstance(e, Sym):
        return f"s:{e.id}"
    return f"e:{id(e)}"


def _stm_tokens(stm: Stm, out: list[str]) -> None:
    rhs = stm.rhs
    out.append(f"{stm.sym.id}={type(rhs).__name__}:{rhs.mnemonic}")
    for arg in rhs.args:
        out.append(_exp_token(arg) if isinstance(arg, Exp)
                   else f"i:{arg!r}")
    for block in rhs.blocks:
        out.append("[")
        _block_tokens(block, out)
        out.append("]")


def _block_tokens(block: Block, out: list[str]) -> None:
    for stm in block.stms:
        _stm_tokens(stm, out)
    out.append(f"->{_exp_token(block.result)}")


def graph_hash(staged: StagedFunction) -> str:
    """A structural hash of a staged function.

    Two stagings of the same kernel produce identical SSA numbering
    (the builder is deterministic), so the hash is stable across
    re-staging and across processes.  Memoized on the instance: every
    cache tier keys on it, and hashing before vs after scheduling (which
    rewrites nested blocks in place) must yield one stable key.
    """
    cached = getattr(staged, "_graph_hash", None)
    if cached is not None:
        return cached
    tokens: list[str] = [staged.name]
    # The middle-end level is part of the cache identity: a level-2
    # graph must never be served to a level-0 caller (and vice versa).
    # Level 0 adds no token, keeping hashes identical to builds that
    # predate the optimizer.
    opt_level = getattr(staged, "opt_level", 0)
    if opt_level:
        tokens.append(f"opt:{opt_level}")
    tokens += [f"p:{p.id}:{p.tp.name}" for p in staged.params]
    _block_tokens(staged.body, tokens)
    digest = hashlib.sha256("\n".join(tokens).encode()).hexdigest()[:24]
    try:
        staged._graph_hash = digest
    except AttributeError:  # pragma: no cover - non-dataclass stand-in
        pass
    return digest


def cache_root() -> Path:
    """The persistent kernel-cache directory.

    ``REPRO_CACHE_DIR`` overrides; otherwise XDG conventions apply
    (``$XDG_CACHE_HOME/repro-kernels``, default ``~/.cache/repro-kernels``).
    """
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro-kernels"


@dataclass
class DiskCacheEntry:
    """A validated on-disk artifact: the shared library plus metadata."""

    so_path: Path
    meta: dict


class CacheLockTimeout(OSError):
    """A shard lock could not be acquired within the configured
    timeout and could not be broken as stale.  Subclasses
    :class:`OSError` so disk-cache callers that already absorb I/O
    failures degrade the same way (a wedged cache never blocks
    compilation)."""


def _fsync_dir(path: Path) -> None:
    """fsync a directory so a rename inside it survives power loss.

    Best-effort: some filesystems refuse directory fsync; crash
    consistency then degrades to the filesystem's own ordering.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class _ShardLock:
    """A held per-shard advisory lock (fd + path), released via
    :meth:`release`."""

    __slots__ = ("fd", "path")

    def __init__(self, fd: int, path: Path) -> None:
        self.fd = fd
        self.path = path

    def release(self) -> None:
        if self.fd < 0:
            return
        try:
            if fcntl is not None:
                fcntl.flock(self.fd, fcntl.LOCK_UN)
        except OSError:
            pass
        finally:
            try:
                os.close(self.fd)
            except OSError:
                pass
            self.fd = -1


class DiskKernelCache:
    """The persistent tier: compiled ``.so`` artifacts on disk,
    crash-consistent and safe under concurrent *processes*.

    Layout (v2, sharded): entries are keyed by ``(graph_hash, compiler
    version, flags, ISA set)`` and live under ``root/<key[:2]>/`` —
    256 shards, each with its own ``.lock`` file taken with ``fcntl``
    advisory locks (``flock``), so two processes hammering different
    kernels never serialize on one global lock.

    **Atomic publish, one rename commits.**  ``put`` writes the ``.so``
    payload to a temp file, fsyncs it, renames it to ``<key>.so``, then
    writes the JSON manifest (carrying the SHA-256 checksum) the same
    way and renames it to ``<key>.json`` — fsyncing the shard
    directory after each rename.  The *manifest* rename is the commit
    point: readers resolve entries through the manifest, so an ``.so``
    without one is invisible, and a crash anywhere in the window leaves
    either nothing or an orphaned half that the recovery sweep (and any
    ``get``) deletes.  There is no window in which a reader can observe
    a committed manifest without its library having been fully renamed
    first.

    **Validation on read.**  ``get`` re-hashes the library against the
    manifest checksum under the shard lock; unreadable metadata, a
    missing library, or a mismatch is a silent miss that drops *both*
    halves, forcing a recompile.

    **Recovery sweep.**  Opening the cache sweeps every shard under its
    lock: leftover ``*.tmp`` files, ``.so`` halves without a manifest
    and manifests without (or with unreadable) libraries are deleted.
    Because publishers hold the shard lock for the whole publish, any
    temp file visible under the lock is orphaned by definition.

    **Stale-lock breaking.**  ``flock`` locks die with their holder, so
    a killed publisher never wedges the shard.  If acquisition still
    times out (``REPRO_CACHE_LOCK_TIMEOUT``), the pid stamped into the
    lock file is probed; a dead owner's lock file is broken (unlinked)
    and acquisition retried once, after which :class:`CacheLockTimeout`
    is raised.

    **Lock-held eviction.**  The entry count is bounded across all
    shards by (hits, recency): every ``get`` records a hit count in the
    manifest (and touches it), and eviction drops the least-hit entries
    first, manifest mtime breaking ties.  Victims are dropped
    shard-by-shard under each shard's lock.  Under
    ``REPRO_POLICY=learned`` the ranking switches to a *decayed* hit
    history (half-life ``REPRO_CACHE_HALF_LIFE`` seconds), so a
    formerly-hot-now-dead kernel can actually be evicted ahead of a
    currently-warm one (DESIGN.md §15).

    **Batched hit write-back.**  Persisting the hit count used to cost
    a write+fsync+rename on every ``get``; hits are now accumulated in
    memory and flushed to the manifest every ``hit_flush`` hits per key
    (``REPRO_CACHE_HIT_FLUSH``, default 16), and on eviction,
    invalidation and :meth:`flush_hits`.  A crash loses at most
    ``hit_flush - 1`` hits of popularity per key, never an artifact.
    """

    def __init__(self, root: str | Path | None = None,
                 max_entries: int | None = None,
                 lock_timeout: float | None = None,
                 hit_flush: int | None = None) -> None:
        self.root = Path(root).expanduser() if root is not None \
            else cache_root()
        self.max_entries = max_entries if max_entries is not None \
            else env_int("REPRO_CACHE_DISK_ENTRIES", 128, minimum=1)
        self.lock_timeout = lock_timeout if lock_timeout is not None \
            else env_float("REPRO_CACHE_LOCK_TIMEOUT", 10.0, minimum=0.01)
        self.hit_flush = hit_flush if hit_flush is not None \
            else env_int("REPRO_CACHE_HIT_FLUSH", 16, minimum=1)
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._pending: dict[str, int] = {}
        if self.root.is_dir():
            try:
                self.recover()
            except OSError:
                pass

    @staticmethod
    def artifact_key(graph_hash_: str, compiler_version: str,
                     flags: Iterable[str], isas: Iterable[str]) -> str:
        token = "\n".join([graph_hash_, compiler_version,
                           " ".join(flags), " ".join(sorted(isas))])
        return hashlib.sha256(token.encode()).hexdigest()[:32]

    # -- shard geometry and locking ------------------------------------

    def shard_dir(self, key: str) -> Path:
        return self.root / key[:2]

    def _paths(self, key: str) -> tuple[Path, Path]:
        shard = self.shard_dir(key)
        return shard / f"{key}.so", shard / f"{key}.json"

    def _break_stale(self, lock_path: Path) -> bool:
        """Unlink a lock file whose stamped owner pid is dead.

        With ``flock`` the kernel releases a dead owner's lock, so this
        only triggers for lock files left by foreign locking schemes or
        corrupted stamps — but a chaos-killed publisher must never be
        able to wedge a shard forever, whatever the mechanism.
        """
        try:
            raw = lock_path.read_text().strip()
            pid = int(raw) if raw else -1
        except (OSError, ValueError):
            pid = -1
        if pid > 0 and pid_alive(pid):
            return False
        try:
            lock_path.unlink()
        except OSError:
            return False
        obs.counter("cache.disk.locks_broken")
        return True

    def _acquire_shard_lock(self, shard: Path) -> _ShardLock:
        """Take the shard's advisory lock, bounded by
        ``self.lock_timeout`` and with one stale-break attempt."""
        lock_path = shard / ".lock"
        if fcntl is None:  # pragma: no cover - non-POSIX hosts
            return _ShardLock(-1, lock_path)
        deadline = time.monotonic() + self.lock_timeout
        broke_stale = False
        while True:
            try:
                fd = os.open(lock_path, os.O_RDWR | os.O_CREAT, 0o644)
            except OSError as exc:
                raise CacheLockTimeout(
                    f"cannot open shard lock {lock_path}: {exc}") from exc
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                os.close(fd)
                if time.monotonic() >= deadline:
                    if not broke_stale and self._break_stale(lock_path):
                        broke_stale = True
                        deadline = time.monotonic() + self.lock_timeout
                        continue
                    raise CacheLockTimeout(
                        f"shard lock {lock_path} held for more than "
                        f"{self.lock_timeout}s")
                time.sleep(0.005)
                continue
            # stamp the owner pid for stale-lock diagnosis
            try:
                os.ftruncate(fd, 0)
                os.write(fd, str(os.getpid()).encode())
            except OSError:
                pass
            return _ShardLock(fd, lock_path)

    # -- the read/write surface ----------------------------------------

    def _drop_locked(self, key: str) -> None:
        """Remove both halves of ``key`` (caller holds the shard lock)."""
        self._pending.pop(key, None)
        for p in self._paths(key):
            try:
                p.unlink()
            except OSError:
                pass

    def _miss(self) -> None:
        self.misses += 1
        obs.counter("cache.disk.misses")

    def get(self, key: str) -> DiskCacheEntry | None:
        with self._lock:
            so_path, meta_path = self._paths(key)
            shard = self.shard_dir(key)
            if not shard.is_dir():
                self._miss()
                return None
            try:
                lock = self._acquire_shard_lock(shard)
            except CacheLockTimeout:
                self._miss()
                return None
            try:
                try:
                    meta = json.loads(meta_path.read_text())
                    blob = so_path.read_bytes()
                except (OSError, ValueError):
                    # torn pair or absent entry: drop whichever half
                    # survives so no future reader sees it
                    self._drop_locked(key)
                    self._miss()
                    return None
                if not isinstance(meta, dict) or \
                        hashlib.sha256(blob).hexdigest() != \
                        meta.get("checksum"):
                    self._drop_locked(key)
                    self._miss()
                    obs.counter("cache.disk.corrupt_dropped")
                    return None
                # record the hit so eviction can rank by popularity,
                # not recency alone — but batch the manifest write-back:
                # hits accumulate in memory and persist every
                # ``hit_flush`` hits per key (and on eviction/
                # invalidation/flush_hits), so a steady-state hot
                # kernel stops paying a write+fsync+rename per call
                pending = self._pending.get(key, 0) + 1
                self._stamp_hits(meta, pending)
                if pending >= self.hit_flush:
                    try:
                        self._publish_file(meta_path,
                                           json.dumps(meta).encode())
                        self._pending.pop(key, None)
                    except OSError:
                        # read-only store: recency via utime below
                        self._pending[key] = pending
                else:
                    self._pending[key] = pending
                for p in (so_path, meta_path):
                    try:
                        os.utime(p)  # touch for LRU recency
                    except OSError:
                        pass
                self.hits += 1
                obs.counter("cache.disk.hits")
                return DiskCacheEntry(so_path=so_path, meta=meta)
            finally:
                lock.release()

    def contains(self, key: str) -> bool:
        """Whether both halves of ``key`` are present, by ``stat`` alone.

        A pure existence probe for planners (e.g. the service client's
        "is any ladder rung already published?" scan): no payload
        reads, no checksum validation, and — unlike :meth:`get` — no
        hit-count bump or recency touch, so probing every ladder rung
        cannot inflate the ``(hits, recency)`` eviction ranking with
        non-serving hits.  A torn pair may answer ``True``; the
        serving-path :meth:`get` still validates before anything is
        linked.
        """
        so_path, meta_path = self._paths(key)
        try:
            found = so_path.is_file() and meta_path.is_file()
        except OSError:
            found = False
        obs.counter("cache.disk.probes",
                    outcome="present" if found else "absent")
        return found

    def invalidate(self, key: str) -> None:
        """Remove an entry (e.g. after its artifact was quarantined)."""
        with self._lock:
            shard = self.shard_dir(key)
            if not shard.is_dir():
                return
            lock = self._acquire_shard_lock(shard)
            try:
                self._drop_locked(key)
            finally:
                lock.release()

    def _publish_file(self, target: Path, payload: bytes) -> None:
        """Write-fsync-rename one file into its shard (lock held)."""
        tmp = target.with_name(
            f".{target.name}.{os.getpid()}.{time.monotonic_ns():x}.tmp")
        fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        try:
            os.write(fd, payload)
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, target)
        _fsync_dir(target.parent)

    def put(self, key: str, so_bytes: bytes, meta: dict) -> Path:
        with self._lock:
            so_path, meta_path = self._paths(key)
            shard = self.shard_dir(key)
            shard.mkdir(parents=True, exist_ok=True)
            meta = dict(meta)
            meta["checksum"] = hashlib.sha256(so_bytes).hexdigest()
            if policy.recording():
                # one unit of decayed history at publication: the
                # compile that produced this artifact was itself
                # demanded, so under learned eviction a fresh entry
                # outranks a formerly-hot key whose decayed history
                # has already died (raw-hits ranking is unchanged)
                meta.setdefault("hist", 1.0)
                meta.setdefault("hist_at", time.time())
            # Injected torn writes / media corruption mangle the payload
            # *after* the checksum is computed, exactly like a real torn
            # write: the manifest promises bytes the disk does not hold,
            # and only get-side validation can catch it.
            payload = faults.corrupt_bytes("disk.partial_write", so_bytes)
            if payload is so_bytes:
                payload = faults.corrupt_bytes("disk.corrupt_blob",
                                               so_bytes)
            lock = self._acquire_shard_lock(shard)
            try:
                self._publish_file(so_path, payload)
                # the torn-publish window: the library is renamed but
                # the manifest — the commit record — is not
                faults.maybe_kill("disk.kill_mid_publish")
                faults.maybe_raise(
                    "disk.torn_publish",
                    message=f"injected crash between publish halves "
                            f"of {key}")
                self._publish_file(meta_path, json.dumps(meta).encode())
            finally:
                lock.release()
            self._evict()
            return so_path

    # -- batched hit write-back ----------------------------------------

    @staticmethod
    def _half_life() -> float:
        return env_float("REPRO_CACHE_HALF_LIFE", 300.0, minimum=0.01)

    def _stamp_hits(self, meta: dict, count: int) -> None:
        """Fold ``count`` freshly-observed hits into ``meta`` in place:
        the raw lifetime counter always, plus — while the policy layer
        is recording — the exponentially-decayed history pair
        (``hist``, ``hist_at``) that learned eviction ranks by."""
        try:
            meta["hits"] = int(meta.get("hits", 0)) + count
        except (TypeError, ValueError):
            meta["hits"] = count
        if not policy.recording():
            return
        now = time.time()
        try:
            hist = float(meta.get("hist", 0.0))
            hist_at = float(meta.get("hist_at", now))
        except (TypeError, ValueError):
            hist, hist_at = 0.0, now
        age = max(0.0, now - hist_at)
        meta["hist"] = hist * 0.5 ** (age / self._half_life()) + count
        meta["hist_at"] = now

    def _flush_key_locked(self, key: str, count: int) -> None:
        """Fold ``count`` pending hits into ``key``'s manifest (caller
        holds the shard lock).  The entry having vanished is fine: the
        popularity of a dropped artifact is moot."""
        _so_path, meta_path = self._paths(key)
        try:
            meta = json.loads(meta_path.read_text())
        except (OSError, ValueError):
            return
        if not isinstance(meta, dict):
            return
        self._stamp_hits(meta, count)
        try:
            self._publish_file(meta_path, json.dumps(meta).encode())
        except OSError:
            pass

    def _flush_hits_locked(self) -> None:
        pending, self._pending = self._pending, {}
        if not pending:
            return
        by_shard: dict[Path, list[tuple[str, int]]] = {}
        for key, count in pending.items():
            by_shard.setdefault(self.shard_dir(key), []).append(
                (key, count))
        for shard, items in by_shard.items():
            if not shard.is_dir():
                continue
            try:
                lock = self._acquire_shard_lock(shard)
            except CacheLockTimeout:
                continue
            try:
                for key, count in items:
                    self._flush_key_locked(key, count)
            finally:
                lock.release()
        obs.counter("cache.disk.hit_flushes")

    def flush_hits(self) -> None:
        """Persist every batched hit count now (the close hook)."""
        with self._lock:
            self._flush_hits_locked()

    # -- eviction and recovery -----------------------------------------

    def _shards(self) -> list[Path]:
        try:
            return sorted(p for p in self.root.iterdir()
                          if p.is_dir() and len(p.name) == 2)
        except OSError:
            return []

    def _count_manifests(self) -> int:
        """A cheap census: manifest names only, no reads, no parsing."""
        total = 0
        for shard in self._shards():
            try:
                total += sum(1 for _ in shard.glob("*.json"))
            except OSError:
                continue
        return total

    def _evict(self) -> None:
        """Bound the manifest count (callers hold ``self._lock``),
        evicting by (hits, recency): the coldest entries go first, and
        recency only breaks ties between equally-unpopular entries —
        a once-written never-read artifact loses to a hot kernel no
        matter how recently it was published.  Under
        ``REPRO_POLICY=learned`` the rank is the decayed hit history
        instead of the raw lifetime counter, so popularity that died
        ``REPRO_CACHE_HALF_LIFE`` seconds ago no longer pins an entry.

        The full read-and-rank pass used to run on *every* put; a
        name-only census now gates it, so a store under its bound
        never JSON-parses a manifest here (``cache.disk.evict_scans``
        counts the expensive passes that actually ran).

        Victim selection scans without locks (read-only); each victim
        is then dropped under its shard's lock, re-checking existence —
        a concurrent toucher losing an entry costs one recompile, never
        a torn read.
        """
        if self._count_manifests() <= self.max_entries:
            return
        # rank on persisted counts: fold batched hits in first
        self._flush_hits_locked()
        obs.counter("cache.disk.evict_scans")
        learned = policy.acting()
        now = time.time()
        half_life = self._half_life()
        entries: list[tuple[float, float, Path]] = []
        for shard in self._shards():
            try:
                for meta_path in shard.glob("*.json"):
                    mtime = meta_path.stat().st_mtime
                    try:
                        meta = json.loads(meta_path.read_text())
                        hits = int(meta.get("hits", 0))
                    except (OSError, ValueError, TypeError,
                            AttributeError):
                        meta, hits = {}, 0  # unreadable: evict first
                    if learned:
                        try:
                            hist = float(meta.get("hist", hits))
                            hist_at = float(meta.get("hist_at", mtime))
                        except (TypeError, ValueError):
                            hist, hist_at = float(hits), mtime
                        age = max(0.0, now - hist_at)
                        rank = hist * 0.5 ** (age / half_life)
                    else:
                        rank = float(hits)
                    entries.append((rank, mtime, meta_path))
            except OSError:
                continue
        excess = len(entries) - self.max_entries
        if excess <= 0:
            return
        entries.sort(key=lambda entry: (entry[0], entry[1]))
        by_shard: dict[Path, list[str]] = {}
        for _hits, _mtime, meta_path in entries[:excess]:
            by_shard.setdefault(meta_path.parent, []).append(
                meta_path.stem)
        for shard, keys in by_shard.items():
            try:
                lock = self._acquire_shard_lock(shard)
            except CacheLockTimeout:
                continue
            try:
                for key in keys:
                    self._drop_locked(key)
                    obs.counter("cache.disk.evictions")
            finally:
                lock.release()

    def recover(self) -> dict[str, int]:
        """Sweep every shard for crash debris: orphaned temp files and
        torn pairs (either half without a readable other half).

        Runs under each shard's lock, so an in-flight publish in
        another process is never mistaken for debris.  Returns removal
        counts; also invoked on cache open.
        """
        removed = {"tmp": 0, "orphan_so": 0, "orphan_meta": 0}
        for shard in self._shards():
            try:
                lock = self._acquire_shard_lock(shard)
            except CacheLockTimeout:
                continue
            try:
                try:
                    names = {p.name for p in shard.iterdir()}
                except OSError:
                    continue
                for name in names:
                    if name.endswith(".tmp"):
                        try:
                            (shard / name).unlink()
                            removed["tmp"] += 1
                        except OSError:
                            pass
                for name in sorted(names):
                    if name.endswith(".so") and \
                            f"{name[:-3]}.json" not in names:
                        try:
                            (shard / name).unlink()
                            removed["orphan_so"] += 1
                        except OSError:
                            pass
                    elif name.endswith(".json"):
                        key = name[:-5]
                        meta_ok = True
                        try:
                            meta = json.loads((shard / name).read_text())
                            meta_ok = isinstance(meta, dict)
                        except (OSError, ValueError):
                            meta_ok = False
                        if not meta_ok or f"{key}.so" not in names:
                            # unlink shard-locally, not via the key's
                            # canonical shard — a misfiled entry must be
                            # deleted where it was found
                            for half in (shard / name,
                                         shard / f"{key}.so"):
                                try:
                                    half.unlink()
                                except OSError:
                                    pass
                            removed["orphan_meta"] += 1
            finally:
                lock.release()
        swept = sum(removed.values())
        if swept:
            obs.counter("cache.disk.recovered", swept)
        return removed

    def __len__(self) -> int:
        # shard census, not a bare */*.json glob: the policy table
        # persists under <root>/policy/ and is not a cache entry
        return self._count_manifests()


class KernelCache:
    """The in-process tier of the kernel cache.

    Keys combine the structural graph hash with the requested backend,
    so forcing the simulator does not serve a native kernel (or vice
    versa).  Get/put are thread-safe; entries are LRU-bounded.  A miss
    is counted when ``get_for`` comes back empty (the caller will
    compile); ``put_for`` only stores.  The ``disk`` property exposes
    the persistent artifact tier rooted at the current ``cache_root()``.

    Under ``REPRO_POLICY=learned`` eviction switches from pure LRU to
    a decayed-hit score (each access adds 1, prior score decays by
    ``REPRO_POLICY_DECAY`` per global access tick), so one old burst
    of hits cannot pin an entry forever, and a steadily-warm kernel
    survives a one-shot scan that would have rotated it out of the LRU.
    At ``REPRO_POLICY=off`` eviction is byte-for-byte the old LRU.
    """

    def __init__(self, maxsize: int | None = None) -> None:
        self._kernels: OrderedDict[tuple[str, str], object] = OrderedDict()
        self._maxsize = maxsize if maxsize is not None \
            else env_int("REPRO_CACHE_MEM_ENTRIES", 256, minimum=1)
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._disk: DiskKernelCache | None = None
        # decayed-hit history per key: (score, tick-of-last-access)
        self._tick = 0
        self._scores: dict[tuple[str, str], tuple[float, int]] = {}

    @property
    def disk(self) -> DiskKernelCache:
        with self._lock:
            root = cache_root()
            if self._disk is None or self._disk.root != root:
                self._disk = DiskKernelCache(root=root)
            return self._disk

    def _bump_locked(self, key: tuple[str, str]) -> None:
        """Decayed-hit bookkeeping: prior score decays one notch per
        global access tick, then the fresh access adds 1."""
        self._tick += 1
        d = policy.decay()
        score, at = self._scores.get(key, (0.0, self._tick))
        self._scores[key] = \
            (score * d ** (self._tick - at) + 1.0, self._tick)

    def _coldest_locked(self, exclude: tuple[str, str]
                        ) -> tuple[str, str]:
        """The resident key with the lowest decayed score; insertion
        order breaks ties (deterministic, matches LRU on a cold table).
        ``exclude`` shields the just-inserted key — like LRU, a fresh
        entry is never its own eviction victim."""
        d = policy.decay()
        best_key = None
        best_score: float | None = None
        for key in self._kernels:
            if key == exclude:
                continue
            score, at = self._scores.get(key, (0.0, self._tick))
            current = score * d ** (self._tick - at)
            if best_score is None or current < best_score:
                best_key, best_score = key, current
        return best_key if best_key is not None else exclude

    def get_for(self, staged: StagedFunction, backend: str):
        key = (graph_hash(staged), backend)
        with self._lock:
            kernel = self._kernels.get(key)
            if kernel is None:
                self.misses += 1
            else:
                self.hits += 1
                self._kernels.move_to_end(key)
                if policy.recording():
                    self._bump_locked(key)
        obs.counter("cache.mem.hits" if kernel is not None
                    else "cache.mem.misses")
        return kernel

    def put_for(self, staged: StagedFunction, backend: str,
                kernel: object) -> None:
        key = (graph_hash(staged), backend)
        evicted_learned = 0
        with self._lock:
            self._kernels[key] = kernel
            self._kernels.move_to_end(key)
            if policy.recording():
                self._bump_locked(key)
            while len(self._kernels) > self._maxsize:
                if policy.acting():
                    victim = self._coldest_locked(exclude=key)
                    self._kernels.pop(victim, None)
                    self._scores.pop(victim, None)
                    evicted_learned += 1
                else:
                    dropped, _ = self._kernels.popitem(last=False)
                    self._scores.pop(dropped, None)
        if evicted_learned:
            obs.counter("cache.mem.evictions", evicted_learned,
                        mode="learned")

    def clear(self) -> None:
        """Drop the in-memory tier (the disk tier is untouched, but
        its batched hit counts are flushed first)."""
        with self._lock:
            self._kernels.clear()
            self._scores.clear()
            self._tick = 0
            self.hits = 0
            self.misses = 0
            disk, self._disk = self._disk, None
        if disk is not None:
            try:
                disk.flush_hits()
            except OSError:
                pass

    def __len__(self) -> int:
        with self._lock:
            return len(self._kernels)


class ProgramCache:
    """In-process memo of closure-compiled simulator programs.

    Keyed by structural graph hash alone (unlike :class:`KernelCache`
    there is no backend dimension — a compiled program is the simulator
    backend).  Re-staging an identical kernel, a benchmark sweep over
    sizes, or a smoke-run against a fresh ``SimdMachine`` all reuse one
    program; entries are LRU-bounded by ``REPRO_CACHE_PROGRAM_ENTRIES``.
    """

    def __init__(self, maxsize: int | None = None) -> None:
        self._programs: OrderedDict[str, object] = OrderedDict()
        self._maxsize = maxsize if maxsize is not None \
            else env_int("REPRO_CACHE_PROGRAM_ENTRIES", 256, minimum=1)
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()

    def get(self, staged: StagedFunction):
        key = graph_hash(staged)
        with self._lock:
            program = self._programs.get(key)
            if program is None:
                self.misses += 1
            else:
                self.hits += 1
                self._programs.move_to_end(key)
        obs.counter("cache.program.hits" if program is not None
                    else "cache.program.misses")
        return program

    def put(self, staged: StagedFunction, program: object) -> None:
        key = graph_hash(staged)
        with self._lock:
            self._programs[key] = program
            self._programs.move_to_end(key)
            while len(self._programs) > self._maxsize:
                self._programs.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._programs.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._programs)


class CompileJob:
    """One in-flight background native compile: the single-flight unit.

    Every :class:`~repro.core.pipeline.CompiledKernel` that requests
    promotion of the same graph hash while the compile is in flight
    attaches here, and all of them are hot-swapped (or demoted)
    together when the job settles.  ``wait`` blocks callers that need
    the settled tier (``CompiledKernel.wait_native``).
    """

    __slots__ = ("key", "kernels", "future", "outcome", "is_probe",
                 "_done")

    def __init__(self, key: str) -> None:
        self.key = key
        self.kernels: list = []
        self.future = None          # set by the manager after submit
        self.outcome: str | None = None   # "native" | "demoted: ..." |
        #                                   "cancelled"
        self.is_probe = False       # a half-open circuit-breaker probe
        self._done = threading.Event()

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        return self._done.wait(timeout)

    def finish(self, outcome: str) -> None:
        self.outcome = outcome
        self._done.set()


class InflightCompiles:
    """Single-flight registry of background compiles, keyed by graph
    hash.

    ``join_or_open`` and ``settle`` share one lock, so a kernel either
    lands on the job the worker will settle (and gets swapped with it)
    or opens a fresh job — never the gap in between.  Two threads
    compiling the same graph hash therefore produce exactly one
    compiler-ladder walk.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._jobs: dict[str, CompileJob] = {}

    def join_or_open(self, key: str, kernel) -> tuple[CompileJob, bool]:
        """Attach ``kernel`` to the open job for ``key``, or open a new
        one.  Returns ``(job, owner)``; the owner submits the work."""
        with self._lock:
            job = self._jobs.get(key)
            if job is not None:
                # identity, not ==: kernel equality recurses into
                # staged Exp.__eq__, which *stages* a comparison op
                if kernel is not None and not any(
                        k is kernel for k in job.kernels):
                    job.kernels.append(kernel)
                return job, False
            job = CompileJob(key)
            if kernel is not None:
                job.kernels.append(kernel)
            self._jobs[key] = job
            return job, True

    def settle(self, key: str) -> list:
        """Detach the job for ``key`` and return its kernels.  Later
        ``join_or_open`` calls start a fresh job (which will be served
        by the now-trusted artifact caches)."""
        with self._lock:
            job = self._jobs.pop(key, None)
            return list(job.kernels) if job is not None else []

    def pending(self) -> int:
        with self._lock:
            return len(self._jobs)

    def keys(self) -> list[str]:
        with self._lock:
            return list(self._jobs)

    def has(self, key: str) -> bool:
        with self._lock:
            return key in self._jobs

    def jobs(self) -> list[CompileJob]:
        """Snapshot of the open jobs (for abandoned-work accounting)."""
        with self._lock:
            return list(self._jobs.values())


default_cache = KernelCache()
program_cache = ProgramCache()
