"""The public API: the paper's NGen runtime, in Python.

The paper's developer workflow (Figure 3) has four compile-time steps:

1. implement a native function placeholder (``@native`` /
   :func:`native_placeholder`);
2. create a DSL instance by mixing ISA-specific eDSLs
   (:func:`repro.isa.IntrinsicsIR` / :func:`repro.isa.load_isas`);
3. implement the SIMD logic as a staged function;
4. call :func:`compile_kernel` to generate, compile and link the code.

At runtime the pipeline inspects the system (CPUID, compilers), stages
the function, and links it back — natively through gcc/clang + ctypes
when the host supports the kernel's ISAs, falling back to the
bit-accurate SIMD machine otherwise.  Either way the kernel also carries
its Haswell cost-model lowering, which is what the benchmarks price.
"""

from repro.core.pipeline import (
    BackendKind,
    CompiledKernel,
    NativePlaceholder,
    SignatureMismatchError,
    UnsatisfiedLinkError,
    compile_kernel,
    compile_staged,
    native_placeholder,
)
from repro.core.resilience import (
    CompileReport,
    KernelQuarantinedError,
    PermanentCompileError,
    TransientCompileError,
    acquire_native,
    quarantined_kernels,
)
from repro.core.tiered import (
    CircuitBreaker,
    KernelManager,
    compile_many,
    default_manager,
    wait_all,
)

__all__ = [
    "BackendKind",
    "CircuitBreaker",
    "CompileReport",
    "CompiledKernel",
    "KernelManager",
    "KernelQuarantinedError",
    "NativePlaceholder",
    "PermanentCompileError",
    "SignatureMismatchError",
    "TransientCompileError",
    "UnsatisfiedLinkError",
    "acquire_native",
    "compile_kernel",
    "compile_many",
    "compile_staged",
    "default_manager",
    "native_placeholder",
    "quarantined_kernels",
    "wait_all",
]
