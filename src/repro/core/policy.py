"""Learned, history-weighted policies for adaptive pipeline decisions.

Every adaptive decision in the pipeline used to be a fixed constant:
the compiler ladder walked icc→gcc→clang / O3→O2→minimal-ISA in the
same doomed order for every kernel, ``REPRO_TIER=hot`` promoted at a
hard-coded call count, the backend prober paid for a native attempt on
families that quarantine every time, and both cache tiers evicted by
``(hits, recency)`` with no notion of *future* value.  This module is
the shared learning substrate behind all four decision points
(DESIGN.md §15): a thread-safe **bit-history table** keyed by
``(kernel_family, decision_kind, choice)``.

* **Bit history.**  Each entry is a fixed-width 64-bit shift register
  of recent success/failure observations (bit 0 = most recent).  The
  score is a recency-weighted popcount: ``sum(bit_i * decay**i) /
  sum(decay**i)`` over the observed window, so one old success cannot
  outrank a streak of recent failures, and history older than 64
  observations falls off the end (saturation).
* **Deterministic ranking.**  ``rank`` orders choices by score
  (unobserved choices take the neutral prior 0.5) with deterministic
  tie-breaking: ties keep the caller's fixed order, unless
  ``REPRO_POLICY_SEED`` is set to a non-zero value, in which case ties
  break by a seeded keyed hash — stable across processes with the same
  seed.  A cold table therefore reproduces the fixed ordering exactly.
* **Mode gating.**  ``REPRO_POLICY`` is ``off`` (record nothing, act
  on nothing — bit-for-bit the fixed pipeline), ``observe`` (the
  default: record outcomes and export counters, never change a
  decision), or ``learned`` (record *and* act).
* **Crash-safe persistence.**  Tables live under
  ``REPRO_CACHE_DIR/policy/policy.json`` with the same
  write-fsync-rename discipline as the disk kernel cache, flushed
  every ``_FLUSH_EVERY`` records and at interpreter exit.  A torn or
  corrupt file is a clean cold start, never a crash.  Because the
  serve daemon and its clients share one ``REPRO_CACHE_DIR``, history
  learned by the daemon's compiles is shared with every tenant.

Policy decisions are bit-transparent by construction: they reorder
*when and how* native code arrives (ladder order, promotion timing,
eviction victims) and never change computed results — every ladder
rung is exactness-preserving, so the differential suites must pass
unchanged at ``REPRO_POLICY=learned``.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import os
import threading
import warnings
from pathlib import Path

import repro.obs as obs
from repro.core.env import env_float, env_int

__all__ = [
    "MODES",
    "BitHistory",
    "PolicyTable",
    "decay",
    "family_of",
    "get_policy",
    "learned_hot_threshold",
    "native_backend_gate",
    "policy_mode",
    "policy_seed",
    "recording",
    "acting",
    "reset_tables",
]

MODES = ("off", "observe", "learned")

_HISTORY_BITS = 64
_MASK = (1 << _HISTORY_BITS) - 1

#: Score assigned to a never-observed choice when ranking: neutral, so
#: proven-good choices rise above it and proven-bad ones sink below.
NEUTRAL_PRIOR = 0.5

#: Observations required before a learned decision may *override* the
#: fixed behaviour (backend gate, tier deferral) — one unlucky sample
#: must not flip a decision.
MIN_OBSERVATIONS = 4

#: Success-rate floor below which the native backend probe (and the
#: hot-tier promotion) is considered a waste of a compile.
FAILURE_FLOOR = 0.25

#: The compile-cost pivot for the learned hot threshold: a family whose
#: measured native acquisition costs exactly this many seconds keeps
#: the configured base threshold; cheaper families promote earlier,
#: more expensive ones later (clamped to [1, 8 * base]).
COST_PIVOT_S = 1.0

_FLUSH_EVERY = 32

_MODE_CODES = {"off": 0, "observe": 1, "learned": 2}


def policy_mode() -> str:
    """The policy gate (``REPRO_POLICY``): ``off`` | ``observe``
    (default) | ``learned``."""
    raw = os.environ.get("REPRO_POLICY")
    if raw is None or not raw.strip():
        return "observe"
    mode = raw.strip().lower()
    if mode not in MODES:
        warnings.warn(
            f"ignoring unknown REPRO_POLICY={raw!r}; using 'observe'",
            RuntimeWarning, stacklevel=2)
        return "observe"
    return mode


def recording() -> bool:
    """Whether outcomes are recorded (``observe`` and ``learned``)."""
    return policy_mode() != "off"


def acting() -> bool:
    """Whether learned scores may change decisions (``learned`` only)."""
    return policy_mode() == "learned"


def policy_seed() -> int:
    """Tie-break seed (``REPRO_POLICY_SEED``, default 0).  Zero keeps
    ties in the caller's fixed order; any other value breaks ties by a
    seeded keyed hash, deterministic across processes."""
    return env_int("REPRO_POLICY_SEED", 0)


def decay() -> float:
    """Per-observation decay of the bit-history weighting
    (``REPRO_POLICY_DECAY``, default 0.9, clamped to [0.01, 0.999])."""
    value = env_float("REPRO_POLICY_DECAY", 0.9, minimum=0.01)
    return min(value, 0.999)


def family_of(name: str) -> str:
    """The kernel family a kernel name belongs to.

    Trailing digits, underscores and dots are stripped so variants of
    one logical kernel (``dot8``/``dot16``/``dot32``, ``saxpy_2``)
    share one history; a name that is *all* suffix keeps itself.
    """
    stripped = name.rstrip("0123456789_.")
    return stripped or name


class BitHistory:
    """One (family, kind, choice) entry: a 64-bit success/failure shift
    register plus the observed count (capped at the register width)."""

    __slots__ = ("bits", "n")

    def __init__(self, bits: int = 0, n: int = 0) -> None:
        self.bits = bits & _MASK
        self.n = max(0, min(int(n), _HISTORY_BITS))

    def record(self, success: bool) -> None:
        self.bits = ((self.bits << 1) | (1 if success else 0)) & _MASK
        self.n = min(self.n + 1, _HISTORY_BITS)

    def score(self, decay_: float) -> float | None:
        """Recency-weighted popcount over the observed window, in
        [0, 1]; ``None`` when nothing has been observed."""
        if self.n == 0:
            return None
        num = 0.0
        den = 0.0
        weight = 1.0
        bits = self.bits
        for i in range(self.n):
            if (bits >> i) & 1:
                num += weight
            den += weight
            weight *= decay_
        return num / den

    def to_state(self) -> dict:
        return {"bits": self.bits, "n": self.n}


def _tie_hash(seed: int, family: str, kind: str, choice: str) -> int:
    digest = hashlib.blake2b(
        f"{seed}\x1f{family}\x1f{kind}\x1f{choice}".encode(),
        digest_size=8).digest()
    return int.from_bytes(digest, "big")


class PolicyTable:
    """The thread-safe bit-history table behind every learned decision.

    ``record`` shifts one success/failure bit into the entry for
    ``(family, kind, choice)``; ``score`` reads its decayed success
    probability; ``rank`` orders a fixed candidate list by score with
    deterministic ties.  ``record_value``/``value`` keep an auxiliary
    EWMA per ``(family, kind)`` — the measured compile cost feeding the
    learned hot threshold.  Everything persists to ``<dir>/policy.json``
    (write-fsync-rename); concurrent writers are last-writer-wins,
    which is acceptable because each process's table converges on the
    same traffic and the file is advisory history, not a ledger.
    """

    _EWMA_ALPHA = 0.3

    def __init__(self, directory: str | Path | None) -> None:
        self.directory = Path(directory) if directory is not None else None
        self._lock = threading.Lock()
        self._entries: dict[tuple[str, str, str], BitHistory] = {}
        self._values: dict[tuple[str, str], tuple[float, int]] = {}
        self._dirty = 0
        if self.directory is not None:
            self._load()
        obs.gauge("policy.mode", _MODE_CODES[policy_mode()])

    # -- recording -----------------------------------------------------

    def record(self, family: str, kind: str, choice: str,
               success: bool) -> None:
        with self._lock:
            entry = self._entries.get((family, kind, choice))
            if entry is None:
                entry = BitHistory()
                self._entries[(family, kind, choice)] = entry
            entry.record(success)
            self._dirty += 1
            should_flush = self._dirty >= _FLUSH_EVERY
        obs.counter("policy.records", kind=kind)
        obs.counter("policy.outcomes", kind=kind, choice=choice,
                    outcome="ok" if success else "fail")
        if should_flush:
            self.flush()

    def record_value(self, family: str, kind: str, value: float) -> None:
        """Fold ``value`` into the (family, kind) EWMA (e.g. measured
        native-acquisition seconds for the learned hot threshold)."""
        with self._lock:
            prev = self._values.get((family, kind))
            if prev is None:
                self._values[(family, kind)] = (float(value), 1)
            else:
                mean, n = prev
                alpha = self._EWMA_ALPHA
                self._values[(family, kind)] = (
                    (1.0 - alpha) * mean + alpha * float(value), n + 1)
            self._dirty += 1
            should_flush = self._dirty >= _FLUSH_EVERY
        if should_flush:
            self.flush()

    # -- reading -------------------------------------------------------

    def score(self, family: str, kind: str, choice: str) -> float | None:
        with self._lock:
            entry = self._entries.get((family, kind, choice))
        return entry.score(decay()) if entry is not None else None

    def observations(self, family: str, kind: str, choice: str) -> int:
        with self._lock:
            entry = self._entries.get((family, kind, choice))
        return entry.n if entry is not None else 0

    def value(self, family: str, kind: str) -> float | None:
        with self._lock:
            stored = self._values.get((family, kind))
        return stored[0] if stored is not None else None

    def rank(self, family: str, kind: str,
             choices: list[str] | tuple[str, ...]) -> list[int]:
        """A permutation of ``range(len(choices))``: highest learned
        score first, ties deterministic (fixed order, or seeded hash
        when ``REPRO_POLICY_SEED`` is non-zero).  A cold table returns
        the identity permutation."""
        d = decay()
        seed = policy_seed()
        with self._lock:
            scores = []
            for choice in choices:
                entry = self._entries.get((family, kind, choice))
                s = entry.score(d) if entry is not None else None
                scores.append(NEUTRAL_PRIOR if s is None else s)

        def sort_key(idx: int):
            tie = _tie_hash(seed, family, kind, choices[idx]) \
                if seed else 0
            return (-scores[idx], tie, idx)

        return sorted(range(len(choices)), key=sort_key)

    def snapshot(self) -> dict:
        """A JSON-ready view of every entry (debugging / the report)."""
        d = decay()
        with self._lock:
            entries = [
                {"family": fam, "kind": kind, "choice": choice,
                 "n": e.n, "score": e.score(d)}
                for (fam, kind, choice), e in sorted(self._entries.items())]
            values = [
                {"family": fam, "kind": kind, "value": v, "n": n}
                for (fam, kind), (v, n) in sorted(self._values.items())]
        return {"entries": entries, "values": values}

    # -- persistence ---------------------------------------------------

    @property
    def path(self) -> Path | None:
        return self.directory / "policy.json" \
            if self.directory is not None else None

    def _load(self) -> None:
        path = self.path
        if path is None:
            return
        try:
            raw = path.read_bytes()
        except OSError:
            obs.counter("policy.load", outcome="absent")
            return
        try:
            state = json.loads(raw)
            if not isinstance(state, dict) or state.get("version") != 1:
                raise ValueError("unrecognized policy state")
            for item in state.get("entries", []):
                key = (str(item["family"]), str(item["kind"]),
                       str(item["choice"]))
                self._entries[key] = BitHistory(int(item["bits"]),
                                                int(item["n"]))
            for item in state.get("values", []):
                self._values[(str(item["family"]), str(item["kind"]))] = (
                    float(item["value"]), int(item.get("n", 1)))
        except (KeyError, TypeError, ValueError):
            # torn write or foreign schema: clean cold start, and the
            # next flush overwrites the debris
            self._entries.clear()
            self._values.clear()
            obs.counter("policy.load", outcome="corrupt")
            return
        obs.counter("policy.load", outcome="ok")

    def flush(self, force: bool = False) -> None:
        """Persist the table (write-fsync-rename, same crash discipline
        as the disk kernel cache).  Best-effort: a read-only or deleted
        cache directory never blocks the pipeline."""
        path = self.path
        if path is None:
            return
        with self._lock:
            if self._dirty == 0 and not force:
                return
            payload = json.dumps({
                "version": 1,
                "entries": [
                    {"family": fam, "kind": kind, "choice": choice,
                     **entry.to_state()}
                    for (fam, kind, choice), entry
                    in sorted(self._entries.items())],
                "values": [
                    {"family": fam, "kind": kind, "value": v, "n": n}
                    for (fam, kind), (v, n)
                    in sorted(self._values.items())],
            }).encode()
            self._dirty = 0
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC,
                         0o644)
            try:
                os.write(fd, payload)
                os.fsync(fd)
            finally:
                os.close(fd)
            os.replace(tmp, path)
            try:
                dir_fd = os.open(path.parent, os.O_RDONLY)
            except OSError:
                dir_fd = -1
            if dir_fd >= 0:
                try:
                    os.fsync(dir_fd)
                except OSError:
                    pass
                finally:
                    os.close(dir_fd)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        obs.counter("policy.flushes")


# ---------------------------------------------------------------------------
# The process-wide table registry (one table per policy directory, so a
# test that re-points REPRO_CACHE_DIR gets a fresh table that loads the
# new directory's history).

_tables: dict[Path, PolicyTable] = {}
_tables_lock = threading.Lock()


def _policy_dir() -> Path:
    from repro.core.cache import cache_root
    return cache_root() / "policy"


def get_policy() -> PolicyTable:
    """The policy table for the current ``REPRO_CACHE_DIR``."""
    directory = _policy_dir()
    with _tables_lock:
        table = _tables.get(directory)
        if table is None:
            table = PolicyTable(directory)
            _tables[directory] = table
        return table


def reset_tables(flush: bool = True) -> None:
    """Flush and drop every live table (the hermetic-test hook, also
    invoked by :func:`repro.core.resilience.clear_session_state`).
    Persisted history survives — only in-memory state is dropped."""
    with _tables_lock:
        tables = list(_tables.values())
        _tables.clear()
    if flush and recording():
        for table in tables:
            table.flush()


@atexit.register
def _flush_at_exit() -> None:  # pragma: no cover - exit path
    if not recording():
        return
    with _tables_lock:
        tables = list(_tables.values())
    for table in tables:
        try:
            table.flush()
        except Exception:  # noqa: BLE001 - never fail interpreter exit
            pass


# ---------------------------------------------------------------------------
# Decision helpers: the four wired-in policy consumers call these.

def native_backend_gate(family: str) -> str | None:
    """A reason to *skip* the native backend probe for ``family``, or
    ``None`` to proceed.

    Only consulted in ``learned`` mode and only for ``backend="auto"``
    requests: a family whose native acquisition has failed (quarantine,
    ladder exhaustion, link failure) in at least
    :data:`MIN_OBSERVATIONS` recent attempts with a decayed success
    rate below :data:`FAILURE_FLOOR` stops paying the probe tax and is
    served by the simulator immediately.  Fresh successes recorded by
    the tiered path re-open the gate as the history re-weights.
    """
    table = get_policy()
    score = table.score(family, "backend", "native")
    nobs = table.observations(family, "backend", "native")
    obs.counter("policy.decisions", kind="backend")
    if score is not None and nobs >= MIN_OBSERVATIONS \
            and score < FAILURE_FLOOR:
        obs.counter("policy.overrides", kind="backend")
        return (f"policy: family {family!r} native success rate "
                f"{score:.2f} over {nobs} recent attempts; "
                f"skipping native probe")
    return None


def learned_hot_threshold(family: str, base: int) -> tuple[int, str]:
    """The promotion threshold for a ``hot``-tier kernel of ``family``.

    Replaces the fixed ``REPRO_HOT_THRESHOLD`` with a learned score:
    the threshold scales with the family's measured native-acquisition
    cost relative to :data:`COST_PIVOT_S` (cheap-to-compile
    frequently-called kernels promote early, expensive ones later),
    clamped to ``[1, 8 * base]``; a family whose promotions mostly
    *fail* (decayed success below :data:`FAILURE_FLOOR` over at least
    :data:`MIN_OBSERVATIONS` observations) is pinned to the ceiling so
    it stays on the simulator unless traffic insists.  An open circuit
    breaker still wins: admission control runs at promote time,
    downstream of this gate.  Returns ``(threshold, note)``.
    """
    table = get_policy()
    cost = table.value(family, "compile_cost")
    threshold = base
    parts = []
    if cost is not None:
        threshold = max(1, min(base * 8,
                               round(base * (cost / COST_PIVOT_S))))
        parts.append(f"acquire cost ~{cost * 1e3:.0f} ms")
    score = table.score(family, "tier", "promote")
    nobs = table.observations(family, "tier", "promote")
    if score is not None and nobs >= MIN_OBSERVATIONS \
            and score < FAILURE_FLOOR:
        threshold = base * 8
        parts.append(f"promote success {score:.2f} over {nobs} obs")
    obs.counter("policy.decisions", kind="tier")
    if threshold != base:
        obs.counter("policy.overrides", kind="tier")
    note = (f"policy: hot threshold {threshold} (base {base}"
            + (", " + ", ".join(parts) if parts else "") + ")")
    return threshold, note
