"""Compile-once closure executor for the SIMD machine.

The tree-walking interpreter in :mod:`repro.simd.machine` re-dispatches
every statement through an ``isinstance`` chain on every run.  This
module compiles a scheduled SSA block **once** into "threaded code": a
flat tuple of Python closures (``step(machine, regs, counts)``), each
specialized at compile time for its node —

* symbols live in a slot-indexed register file (a plain list) instead of
  a per-run ``dict[int, Any]`` environment; constants and intrinsic
  immediates are pre-coerced into reserved slots of an init template
  that is ``list.copy()``-ed per run;
* intrinsic semantics are resolved through :func:`~repro.simd.semantics
  .lookup` at compile time (with bit-identical fast-path replacements
  for the hottest intrinsics), so runs pay zero registry lookups;
* op counting is an integer bump on a dense counter array, folded back
  into ``machine.op_counts`` when the run finishes (or raises);
* loop bodies are compiled once and re-entered with a plain ``int``
  index written into a reused slot.

Numerical contract: a compiled program is bit-identical to the tree
interpreter — results, mutated arrays, ``op_counts`` and profile
counters all match (enforced by ``tests/test_differential.py``).

This module is imported by :mod:`repro.simd.machine` (which re-exports
:class:`ExecutionError`, :func:`_as_scalar` and :class:`_Box` for
backwards compatibility) and must never import it back; semantic
handlers receive the machine duck-typed as ``ctx``.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Sequence

import numpy as np

import repro.obs as obs
from repro.lms.defs import (
    ArrayApply,
    ArrayUpdate,
    BinaryOp,
    Block,
    Convert,
    ForLoop,
    IfThenElse,
    ReflectMutable,
    Select,
    Stm,
    UnaryOp,
    VarAssign,
    VarDecl,
    VarRead,
    WhileLoop,
)
from repro.lms.expr import Const, Exp, Sym
from repro.lms.staging import StagedFunction
from repro.lms.types import (
    M128,
    M128D,
    M128I,
    M256,
    M256D,
    M256I,
    M512,
    M64,
    ArrayType,
    ScalarType,
)
from repro.simd.semantics import UnimplementedIntrinsic, lookup, registry
from repro.simd.semantics.memory import _LOADS, _STORES
from repro.simd.vector import VecValue

__all__ = [
    "CompiledProgram",
    "ExecutionError",
    "check_arg",
    "compile_program",
]


class ExecutionError(RuntimeError):
    """Raised when a staged graph cannot be executed."""


def _as_scalar(tp: ScalarType, value: Any):
    """Coerce a runtime value to the numpy scalar type of ``tp``.

    Integer coercion wraps two's-complement style (C semantics with
    ``-fwrapv``); numpy 2.x would raise on out-of-range Python ints.
    """
    if not tp.is_float and tp.name != "Boolean":
        v = int(value) & ((1 << tp.bits) - 1)
        if tp.signed and v >= (1 << (tp.bits - 1)):
            v -= 1 << tp.bits
        return tp.np_dtype.type(v)
    with np.errstate(over="ignore"):
        return tp.np_dtype.type(value)


class _Box:
    """Mutable cell backing a staged variable."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value


def check_arg(param: Sym, value: Any) -> Any:
    """Validate/coerce one runtime argument against a staged parameter."""
    if isinstance(param.tp, ArrayType):
        if not isinstance(value, np.ndarray):
            raise ExecutionError(
                f"parameter {param!r} needs a numpy array"
            )
        expected = param.tp.elem.np_dtype
        if value.dtype != expected:
            raise ExecutionError(
                f"parameter {param!r} needs dtype {expected}, got "
                f"{value.dtype}"
            )
        return value
    if isinstance(param.tp, ScalarType):
        return _as_scalar(param.tp, value)
    return value


# ---------------------------------------------------------------------------
# Fast-path intrinsic semantics.
#
# The registry handlers in repro.simd.semantics are the *reference*
# implementations the tree engine always uses; the compiled engine may
# substitute a handler from this table when one exists.  Every entry
# must be bit-identical to its registry counterpart — same lane values,
# same raised exceptions, same messages — it only sheds interpretation
# overhead (per-call errstate blocks, defensive copies through
# VecValue.from_lanes, Python loops over 128-bit lanes).  The compiled
# run wraps all steps in one blanket errstate, which is what makes
# dropping the per-op errstate safe.
# ---------------------------------------------------------------------------

_fast_semantics: dict[str, Callable] = {}

_F32 = np.dtype(np.float32)
_F64 = np.dtype(np.float64)


def _vec(vt, data: np.ndarray, tv=None) -> VecValue:
    # Invariant-preserving VecValue construction without ctor validation:
    # callers guarantee `data` is a fresh uint8 array of vt.bits // 8.
    # ``tv`` optionally seeds the typed-view cache with the (dtype,
    # array) pair the producing handler already holds.
    v = VecValue.__new__(VecValue)
    v.vt = vt
    v.data = data
    v._tv = tv
    return v


_DATA_SLOT = VecValue.__dict__["data"]


class _LaneVec(VecValue):
    """A register value materialized from typed lanes.

    Lane-producing fast handlers (arithmetic, FMA, loads, broadcasts)
    naturally end with a typed lane array; building the uint8 byte
    image eagerly costs a ~200ns view per op that most consumers (which
    read lanes through :func:`_fv`) never look at.  This subclass
    shadows the parent's ``data`` slot with a property that builds the
    byte view on first access, so byte-level consumers (swizzles, the
    differential tests, ``repr``) still see a plain ``VecValue``.
    """

    __slots__ = ()

    @property
    def data(self) -> np.ndarray:
        d = _DATA_SLOT.__get__(self, VecValue)
        if d is None:
            d = self._tv[1].view(np.uint8)
            _DATA_SLOT.__set__(self, d)
        return d

    @data.setter
    def data(self, value: np.ndarray) -> None:
        _DATA_SLOT.__set__(self, value)


def _lvec(vt, dt: np.dtype, lanes: np.ndarray) -> VecValue:
    # Lazy-byte-image construction: callers guarantee ``lanes`` is a
    # fresh C-contiguous array of vt.bits // 8 bytes.  The data slot
    # holds None until a byte-level consumer materializes the view.
    v = _LaneVec.__new__(_LaneVec)
    v.vt = vt
    _DATA_SLOT.__set__(v, None)
    v._tv = (dt, lanes)
    return v


def _fv(v: VecValue, dt: np.dtype) -> np.ndarray:
    """The ``dt``-typed view of ``v``, cached on the value.

    Creating a numpy view costs ~200ns; arithmetic chains touch each
    operand's lanes once per consumer, so memoizing the view on the
    VecValue (it aliases ``data``, never stale) is a net win.  The
    dtype is compared by identity — fast paths only pass the module
    singletons ``_F32``/``_F64``.
    """
    tv = v._tv
    if tv is not None and tv[0] is dt:
        return tv[1]
    view = v.data.view(dt)
    v._tv = (dt, view)
    return view


def _fw64(v: VecValue, dt: np.dtype) -> np.ndarray:
    """``v``'s ``dt`` lanes upcast to float64, cached on the value.

    Unlike :func:`_fv` this is a *conversion* (astype copy), cached in
    the optional tail of ``_tv``; safe because handler-produced values
    are never mutated after construction.  Pays off when an FMA operand
    is loop-invariant (a ``set1`` broadcast): the upcast happens once
    per run instead of once per iteration.
    """
    tv = v._tv
    if tv is not None and len(tv) == 4 and tv[2] is dt:
        return tv[3]
    w = _fv(v, dt).astype(np.float64)
    tv = v._tv  # _fv may have just (re)set the primary entry
    v._tv = (tv[0], tv[1], dt, w)
    return w


def _fast(name: str, fn: Callable) -> None:
    # Only shadow names the registry actually implements: a fast path
    # for an unregistered intrinsic would let the compiled engine run
    # programs the reference engine rejects.
    if name in registry:
        _fast_semantics[name] = fn


# Call-site specializers: ``factory(args)`` inspects one intrinsic call's
# raw argument tuple and, when the trailing immediates are compile-time
# constants, returns a handler with the immediate pre-decoded (e.g. a
# shuffle's byte-gather index array built once); it returns ``None`` to
# decline, falling back to the generic handler with the immediate in a
# register slot.
_fast_factories: dict[str, Callable] = {}


def _fast_factory(name: str, factory: Callable) -> None:
    if name in registry:
        _fast_factories[name] = factory


def _install_fast_memory() -> None:
    for name, vt in _LOADS.items():
        nbytes = vt.bits // 8

        def load(ctx, arr, offset, _vt=vt, _n=nbytes):
            byte_off = int(offset) * arr.itemsize
            raw = arr.view(np.uint8)[byte_off: byte_off + _n]
            if raw.size != _n:
                raise IndexError(
                    f"SIMD load of {_n} bytes at element {offset} runs off "
                    f"the end of an array of {arr.nbytes} bytes"
                )
            return _vec(_vt, raw.copy())

        _fast(name, load)

        # Call-site specialization: the array operand's static element
        # type fixes the itemsize, so the load can slice in *element*
        # space (one cheap copy that doubles as the typed-view seed)
        # instead of re-viewing the whole array as bytes per call.
        def load_factory(args, _vt=vt, _n=nbytes, _generic=load):
            if not (len(args) == 2 and isinstance(args[0], Exp)
                    and isinstance(args[0].tp, ArrayType)):
                return None
            adt = args[0].tp.elem.np_dtype
            if _n % adt.itemsize:
                return None
            lanes = _n // adt.itemsize

            def fn(ctx, arr, offset, _l=lanes, _adt=adt,
                   _LV=_LaneVec, _ds=_DATA_SLOT.__set__):
                if not arr.flags.c_contiguous:
                    return _generic(ctx, arr, offset)
                o = int(offset)
                raw = arr[o: o + _l]
                if raw.size != _l:
                    raise IndexError(
                        f"SIMD load of {_n} bytes at element {offset} runs "
                        f"off the end of an array of {arr.nbytes} bytes"
                    )
                # _lvec inlined; see _pair_gather.
                v = _LV.__new__(_LV)
                v.vt = _vt
                _ds(v, None)
                v._tv = (_adt, raw.copy())
                return v

            if isinstance(args[1], Exp):
                return fn
            if not _is_imm(args[1]):
                return None
            off = int(args[1])
            return lambda ctx, arr, _f=fn, _o=off: _f(ctx, arr, _o)

        _fast_factory(name, load_factory)

    for name in _STORES:
        def store(ctx, arr, value, offset):
            data = value.data
            nbytes = data.size
            byte_off = int(offset) * arr.itemsize
            view = arr.view(np.uint8)
            if byte_off + nbytes > view.size:
                raise IndexError(
                    f"SIMD store of {nbytes} bytes at element {offset} runs "
                    f"off the end of an array of {arr.nbytes} bytes"
                )
            view[byte_off: byte_off + nbytes] = data

        _fast(name, store)

        def store_factory(args, _generic=store):
            if not (len(args) == 3 and isinstance(args[0], Exp)
                    and isinstance(args[0].tp, ArrayType)
                    and isinstance(args[1], Exp)
                    and getattr(args[1].tp, "bits", None)):
                return None
            nbytes = args[1].tp.bits // 8
            adt = args[0].tp.elem.np_dtype
            if nbytes % adt.itemsize:
                return None
            lanes = nbytes // adt.itemsize

            def fn(ctx, arr, value, offset, _l=lanes, _adt=adt,
                   _n=nbytes, _isz=adt.itemsize):
                if not arr.flags.c_contiguous:
                    return _generic(ctx, arr, value, offset)
                o = int(offset)
                if o * _isz + _n > arr.nbytes:
                    raise IndexError(
                        f"SIMD store of {_n} bytes at element {offset} runs "
                        f"off the end of an array of {arr.nbytes} bytes"
                    )
                tv = value._tv
                arr[o: o + _l] = tv[1] \
                    if tv is not None and tv[0] is _adt \
                    else _fv(value, _adt)

            if isinstance(args[2], Exp):
                return fn
            if not _is_imm(args[2]):
                return None
            off = int(args[2])
            return lambda ctx, arr, value, _f=fn, _o=off: \
                _f(ctx, arr, value, _o)

        _fast_factory(name, store_factory)

    sets = (("_mm_set1_ps", M128, _F32), ("_mm256_set1_ps", M256, _F32),
            ("_mm512_set1_ps", M512, _F32), ("_mm_set1_pd", M128D, _F64),
            ("_mm256_set1_pd", M256D, _F64))
    for name, vt, dt in sets:
        lanes = vt.bits // (dt.itemsize * 8)

        def set1(ctx, a, _vt=vt, _dt=dt, _n=lanes):
            # np.full casts the fill value with the same IEEE rounding
            # as the reference's np.array(a).astype(_dt) round-trip.
            return _lvec(_vt, _dt, np.full(_n, a, dtype=_dt))

        _fast(name, set1)

    zeros = (("_mm_setzero_ps", M128), ("_mm_setzero_pd", M128D),
             ("_mm_setzero_si128", M128I), ("_mm256_setzero_ps", M256),
             ("_mm256_setzero_pd", M256D), ("_mm256_setzero_si256", M256I),
             ("_mm512_setzero_ps", M512), ("_mm_setzero_si64", M64))
    for name, vt in zeros:
        nbytes = vt.bits // 8

        def setzero(ctx, _vt=vt, _n=nbytes):
            return _vec(_vt, np.zeros(_n, dtype=np.uint8))

        _fast(name, setzero)


def _install_fast_arith() -> None:
    binops = (("add", np.add), ("sub", np.subtract), ("mul", np.multiply),
              ("div", np.divide), ("min", np.minimum), ("max", np.maximum))
    for sfx, dt in (("ps", _F32), ("pd", _F64)):
        for prefix in ("_mm", "_mm256", "_mm512"):
            for op, ufn in binops:
                def binop(ctx, a, b, _dt=dt, _u=ufn, _LV=_LaneVec,
                          _ds=_DATA_SLOT.__set__):
                    # _fv (hit path) and _lvec inlined; see _pair_gather.
                    tv = a._tv
                    va = tv[1] if tv is not None and tv[0] is _dt \
                        else _fv(a, _dt)
                    tv = b._tv
                    vb = tv[1] if tv is not None and tv[0] is _dt \
                        else _fv(b, _dt)
                    v = _LV.__new__(_LV)
                    v.vt = a.vt
                    _ds(v, None)
                    v._tv = (_dt, _u(va, vb))
                    return v

                _fast(f"{prefix}_{op}_{sfx}", binop)

    # FMA: compute in float64 and round once, exactly as the reference
    # models the fused operation.  The product is accumulated in place
    # (``wa`` is a fresh astype copy), so each kind is the same ufunc
    # sequence as the reference expression, just without temporaries.
    kinds = {
        "fmadd": (False, np.add),
        "fmsub": (False, np.subtract),
        "fnmadd": (True, np.add),
        "fnmsub": (True, np.subtract),
    }
    for kind, (negate, combine) in kinds.items():
        for sfx, dt in (("ps", _F32), ("pd", _F64)):
            for prefix, bits in (("_mm", 128), ("_mm256", 256),
                                 ("_mm512", 512)):
                lanes = bits // (dt.itemsize * 8)
                scratch = np.empty(lanes, dtype=np.float64)

                def fma(ctx, a, b, c, _neg=negate, _fn=combine, _dt=dt,
                        _w=scratch, _LV=_LaneVec, _ds=_DATA_SLOT.__set__):
                    # Mixed-dtype ufuncs promote the float32 operand to
                    # float64 exactly like the reference's astype
                    # upcast, fused into the operation; ``b``'s upcast
                    # is cached (it is the broadcast coefficient in
                    # FMA-style kernels, loop-invariant across runs).
                    # The float64 intermediate lives in a per-handler
                    # scratch (safe: handlers never re-enter) and only
                    # the final rounded result is a fresh array.
                    # _fv (hit path) and _lvec inlined; see _pair_gather.
                    tv = a._tv
                    va = tv[1] if tv is not None and tv[0] is _dt \
                        else _fv(a, _dt)
                    np.multiply(va, _fw64(b, _dt), out=_w)
                    if _neg:
                        np.negative(_w, out=_w)
                    tv = c._tv
                    vc = tv[1] if tv is not None and tv[0] is _dt \
                        else _fv(c, _dt)
                    _fn(_w, vc, out=_w)
                    v = _LV.__new__(_LV)
                    v.vt = a.vt
                    _ds(v, None)
                    v._tv = (_dt, _w.astype(_dt))
                    return v

                _fast(f"{prefix}_{kind}_{sfx}", fma)


def _pair_gather(dt: np.dtype, nlanes: int,
                 lane_srcs: Sequence[int]) -> Callable:
    """A two-source lane shuffle: copy both registers' typed lanes into
    a scratch buffer and gather the output in one fancy index (~4-5x
    cheaper than per-lane strided assignments).  Working in lane space
    rather than byte space means the inputs hit the cached typed view
    (no byte-image materialization) and the output carries its typed
    view from birth; same-dtype numpy copies are raw memcpys, so NaN
    payloads and every other bit pattern survive exactly.  The scratch
    is private to the handler closure; a handler call never re-enters
    another handler, so reuse is safe and the gathered output is always
    a fresh array.
    """
    scratch = np.empty(2 * nlanes, dtype=dt)
    idx = np.array(lane_srcs, dtype=np.intp)

    # _fv (hit path) and _lvec are inlined below: a shuffle executes
    # tens of thousands of times per kernel run and each avoided Python
    # call is ~70ns.
    def fn(ctx, a, b, _sc=scratch, _idx=idx, _n=nlanes, _dt=dt,
           _LV=_LaneVec, _ds=_DATA_SLOT.__set__):
        tv = a._tv
        _sc[:_n] = tv[1] if tv is not None and tv[0] is _dt \
            else _fv(a, _dt)
        tv = b._tv
        _sc[_n:] = tv[1] if tv is not None and tv[0] is _dt \
            else _fv(b, _dt)
        v = _LV.__new__(_LV)
        v.vt = a.vt
        _ds(v, None)
        v._tv = (_dt, _sc[_idx])
        return v

    return fn


def _shuffle_lanes(imm: int, halves: int) -> list[int]:
    """Concat-space source lanes of ``(v)shufps`` for one immediate."""
    s = [(imm >> (2 * k)) & 3 for k in range(4)]
    lanes = halves * 4  # lanes per source register
    out = []
    for h in range(halves):
        base = 4 * h
        out += [base + s[0], base + s[1],
                lanes + base + s[2], lanes + base + s[3]]
    return out


def _is_imm(value: Any) -> bool:
    return isinstance(value, (int, np.integer)) and not isinstance(
        value, bool)


def _install_fast_swizzle() -> None:
    # Unpacks take no immediate: one precomputed gather per (name, width).
    for half, o in (("lo", 0), ("hi", 2)):
        _fast(f"_mm_unpack{half}_ps", _pair_gather(
            _F32, 4, [o, 4 + o, o + 1, 4 + o + 1]))
        _fast(f"_mm256_unpack{half}_ps", _pair_gather(
            _F32, 8, [o, 8 + o, o + 1, 8 + o + 1,
                      4 + o, 12 + o, 4 + o + 1, 12 + o + 1]))
    for half, o in (("lo", 0), ("hi", 1)):
        _fast(f"_mm_unpack{half}_pd", _pair_gather(
            _F64, 2, [o, 2 + o]))
        _fast(f"_mm256_unpack{half}_pd", _pair_gather(
            _F64, 4, [o, 4 + o, 2 + o, 4 + 2 + o]))

    # Shuffles: the immediate is almost always a compile-time constant,
    # so the call-site factory pre-decodes it into a gather index array
    # built once per program.  The imm-in-a-register generic handlers
    # below remain the fallback for staged (dynamic) immediates.
    def shuffle_ps_factory(args):
        if len(args) == 3 and isinstance(args[0], Exp) \
                and isinstance(args[1], Exp) and _is_imm(args[2]):
            imm = int(args[2])
            return _pair_gather(_F32, 4, _shuffle_lanes(imm, 1))
        return None

    def shuffle_ps256_factory(args):
        if len(args) == 3 and isinstance(args[0], Exp) \
                and isinstance(args[1], Exp) and _is_imm(args[2]):
            imm = int(args[2])
            return _pair_gather(_F32, 8, _shuffle_lanes(imm, 2))
        return None

    _fast_factory("_mm_shuffle_ps", shuffle_ps_factory)
    _fast_factory("_mm256_shuffle_ps", shuffle_ps256_factory)

    def shuffle_ps(ctx, a, b, imm8):
        imm = int(imm8)
        va = a.data.view(np.float32)
        vb = b.data.view(np.float32)
        out = np.array([va[imm & 3], va[(imm >> 2) & 3],
                        vb[(imm >> 4) & 3], vb[(imm >> 6) & 3]],
                       dtype=np.float32)
        return _vec(a.vt, out.view(np.uint8))

    _fast("_mm_shuffle_ps", shuffle_ps)

    def shuffle_ps256(ctx, a, b, imm8):
        imm = int(imm8)
        va = a.data.view(np.float32).reshape(2, 4)
        vb = b.data.view(np.float32).reshape(2, 4)
        out = np.empty((2, 4), dtype=np.float32)
        out[:, 0] = va[:, imm & 3]
        out[:, 1] = va[:, (imm >> 2) & 3]
        out[:, 2] = vb[:, (imm >> 4) & 3]
        out[:, 3] = vb[:, (imm >> 6) & 3]
        return _vec(a.vt, out.reshape(-1).view(np.uint8))

    _fast("_mm256_shuffle_ps", shuffle_ps256)

    # permute2f128: each output half is a contiguous 16-byte copy (or a
    # zero fill); the factory decodes both 4-bit controls up front.
    def perm2f128_factory(args):
        if not (len(args) == 3 and isinstance(args[0], Exp)
                and isinstance(args[1], Exp) and _is_imm(args[2])):
            return None
        imm = int(args[2])
        parts = []
        for shift in (0, 4):
            ctl = (imm >> shift) & 0xF
            parts.append(None if ctl & 0x8
                         else ((ctl >> 1) & 1, (ctl & 1) * 4))
        p0, p1 = parts

        def fn(ctx, a, b, _p0=p0, _p1=p1, _dt=_F32,
               _LV=_LaneVec, _ds=_DATA_SLOT.__set__):
            # Each 128-bit half is a contiguous raw copy; moving it as
            # four float32 lanes keeps the whole op in typed-view space
            # (exact for integer vectors too — same-dtype numpy copies
            # are memcpys).  _fv (hit path) and _lvec inlined; see
            # _pair_gather.
            out = np.empty(8, dtype=_dt)
            if _p0 is None:
                out[:4] = 0
            else:
                s = b if _p0[0] else a
                tv = s._tv
                d = tv[1] if tv is not None and tv[0] is _dt \
                    else _fv(s, _dt)
                lo = _p0[1]
                out[:4] = d[lo: lo + 4]
            if _p1 is None:
                out[4:] = 0
            else:
                s = b if _p1[0] else a
                tv = s._tv
                d = tv[1] if tv is not None and tv[0] is _dt \
                    else _fv(s, _dt)
                lo = _p1[1]
                out[4:] = d[lo: lo + 4]
            v = _LV.__new__(_LV)
            v.vt = a.vt
            _ds(v, None)
            v._tv = (_dt, out)
            return v

        return fn

    def perm2f128(ctx, a, b, imm8):
        imm = int(imm8)
        out = np.empty(32, dtype=np.uint8)
        for pos, shift in ((0, 0), (1, 4)):
            ctl = (imm >> shift) & 0xF
            base = pos * 16
            if ctl & 0x8:
                out[base: base + 16] = 0
            else:
                src = a.data if (ctl & 2) == 0 else b.data
                half = (ctl & 1) * 16
                out[base: base + 16] = src[half: half + 16]
        return _vec(a.vt, out)

    for name in ("_mm256_permute2f128_ps", "_mm256_permute2f128_pd",
                 "_mm256_permute2x128_si256"):
        _fast_factory(name, perm2f128_factory)
        _fast(name, perm2f128)

    def castps256_ps128(ctx, a):
        return _lvec(M128, _F32, _fv(a, _F32)[:4].copy())

    _fast("_mm256_castps256_ps128", castps256_ps128)


_install_fast_memory()
_install_fast_arith()
_install_fast_swizzle()


# ---------------------------------------------------------------------------
# Step factories.  Each returns a closure `step(machine, regs, counts)`
# specialized for one SSA statement; the factory arguments become fast
# LOAD_DEREF cells inside the closure.
# ---------------------------------------------------------------------------

_CMP_FNS = {
    "==": operator.eq, "!=": operator.ne, "<": operator.lt,
    "<=": operator.le, ">": operator.gt, ">=": operator.ge,
}


def _c_div(a: int, b: int) -> int:
    # C semantics: truncation toward zero.
    q = abs(a) // abs(b)
    return q if (a < 0) == (b < 0) else -q


def _c_mod(a: int, b: int) -> int:
    return a - (abs(a) // abs(b)) * abs(b) * (1 if a >= 0 else -1)


def _gen_mod(a, b):
    return _c_mod(int(a), int(b))


def _gen_shl(a, b):
    return int(a) << int(b)


def _gen_shr(a, b):
    return int(a) >> int(b)


# Integer fast path: operate on two's-complement-wrapped Python ints.
_INT_FNS = {
    "+": operator.add, "-": operator.sub, "*": operator.mul,
    "&": operator.and_, "|": operator.or_, "^": operator.xor,
    "<<": operator.lshift, ">>": operator.rshift,
    "/": _c_div, "%": _c_mod,
}

# Generic path: numpy-typed operands, mirroring SimdMachine._binop.
_GEN_FNS = {
    "+": operator.add, "-": operator.sub, "*": operator.mul,
    "&": operator.and_, "|": operator.or_, "^": operator.xor,
    "<<": _gen_shl, ">>": _gen_shr, "/": operator.truediv, "%": _gen_mod,
}


def _raise_step(ci: int, exc: BaseException) -> Callable:
    # The tree engine bumps the op counter before it fails on an
    # unknown op / unimplemented intrinsic; preserve that on replay.
    def step(m, regs, counts):
        counts[ci] += 1
        raise exc

    return step


def _cmp_step(dst, ia, ib, ci, fn) -> Callable:
    def step(m, regs, counts):
        counts[ci] += 1
        regs[dst] = bool(fn(regs[ia], regs[ib]))

    return step


def _int_binop_step(dst, ia, ib, ci, fn, tp: ScalarType) -> Callable:
    mask = (1 << tp.bits) - 1
    wrap = 1 << tp.bits
    # For unsigned types the sign threshold is unreachable (> mask), so
    # one code path covers both signednesses.
    sbit = (1 << (tp.bits - 1)) if tp.signed else wrap
    npt = tp.np_dtype.type

    def step(m, regs, counts):
        counts[ci] += 1
        a = int(regs[ia]) & mask
        if a >= sbit:
            a -= wrap
        b = int(regs[ib]) & mask
        if b >= sbit:
            b -= wrap
        c = fn(a, b) & mask
        if c >= sbit:
            c -= wrap
        regs[dst] = npt(c)

    return step


def _np_binop_step(dst, ia, ib, ci, fn, npt, coerce_operands) -> Callable:
    if coerce_operands:
        def step(m, regs, counts):
            counts[ci] += 1
            regs[dst] = npt(fn(npt(regs[ia]), npt(regs[ib])))
    else:
        def step(m, regs, counts):
            counts[ci] += 1
            regs[dst] = npt(fn(regs[ia], regs[ib]))

    return step


def _raw_binop_step(dst, ia, ib, ci, fn) -> Callable:
    def step(m, regs, counts):
        counts[ci] += 1
        regs[dst] = fn(regs[ia], regs[ib])

    return step


def _unary_step(dst, i0, ci, fn, tp) -> Callable:
    if isinstance(tp, ScalarType) and tp.name != "Boolean":
        def step(m, regs, counts):
            counts[ci] += 1
            regs[dst] = _as_scalar(tp, fn(regs[i0]))
    else:
        def step(m, regs, counts):
            counts[ci] += 1
            regs[dst] = fn(regs[i0])

    return step


def _convert_step(dst, i0, tp) -> Callable:
    def step(m, regs, counts):
        regs[dst] = _as_scalar(tp, regs[i0])

    return step


def _select_step(dst, ic, ia, ib, tp) -> Callable:
    if isinstance(tp, ScalarType) and tp.name != "Boolean":
        def step(m, regs, counts):
            regs[dst] = _as_scalar(
                tp, regs[ia] if regs[ic] else regs[ib])
    else:
        def step(m, regs, counts):
            regs[dst] = regs[ia] if regs[ic] else regs[ib]

    return step


def _aload_step(dst, iarr, iidx) -> Callable:
    def step(m, regs, counts):
        regs[dst] = regs[iarr][int(regs[iidx])]

    return step


def _astore_step(dst, iarr, iidx, ival) -> Callable:
    def step(m, regs, counts):
        regs[iarr][int(regs[iidx])] = regs[ival]
        regs[dst] = None

    return step


def _vardecl_step(dst, ii) -> Callable:
    def step(m, regs, counts):
        regs[dst] = _Box(regs[ii])

    return step


def _varread_step(dst, ivar) -> Callable:
    def step(m, regs, counts):
        regs[dst] = regs[ivar].value

    return step


def _varassign_step(dst, ivar, ival) -> Callable:
    def step(m, regs, counts):
        regs[ivar].value = regs[ival]
        regs[dst] = None

    return step


def _copy_step(dst, isrc) -> Callable:
    def step(m, regs, counts):
        regs[dst] = regs[isrc]

    return step


def _for_step(dst, i_start, i_end, i_step, ix, body) -> Callable:
    def step(m, regs, counts):
        start = int(regs[i_start])
        end = int(regs[i_end])
        stride = int(regs[i_step])
        if stride <= 0:
            raise ExecutionError("forloop step must be positive")
        for i in range(start, end, stride):
            regs[ix] = i
            for s in body:
                s(m, regs, counts)
        regs[dst] = None

    return step


def _if_step(dst, ic, then_steps, then_res, else_steps, else_res) -> Callable:
    def step(m, regs, counts):
        if regs[ic]:
            for s in then_steps:
                s(m, regs, counts)
            regs[dst] = regs[then_res]
        else:
            for s in else_steps:
                s(m, regs, counts)
            regs[dst] = regs[else_res]

    return step


def _while_step(dst, cond_steps, cond_res, body) -> Callable:
    def step(m, regs, counts):
        while True:
            for s in cond_steps:
                s(m, regs, counts)
            if not regs[cond_res]:
                break
            for s in body:
                s(m, regs, counts)
        regs[dst] = None

    return step


def _intrin_step(dst, ci, fn, idxs: tuple[int, ...]) -> Callable:
    n = len(idxs)
    if n == 2:
        i0, i1 = idxs

        def step(m, regs, counts):
            counts[ci] += 1
            regs[dst] = fn(m, regs[i0], regs[i1])
    elif n == 3:
        i0, i1, i2 = idxs

        def step(m, regs, counts):
            counts[ci] += 1
            regs[dst] = fn(m, regs[i0], regs[i1], regs[i2])
    elif n == 1:
        i0, = idxs

        def step(m, regs, counts):
            counts[ci] += 1
            regs[dst] = fn(m, regs[i0])
    elif n == 4:
        i0, i1, i2, i3 = idxs

        def step(m, regs, counts):
            counts[ci] += 1
            regs[dst] = fn(m, regs[i0], regs[i1], regs[i2], regs[i3])
    elif n == 0:
        def step(m, regs, counts):
            counts[ci] += 1
            regs[dst] = fn(m)
    else:
        def step(m, regs, counts):
            counts[ci] += 1
            regs[dst] = fn(m, *[regs[i] for i in idxs])

    return step


# ---------------------------------------------------------------------------
# The compiler: one pass over the scheduled SSA block.
# ---------------------------------------------------------------------------

class _Compiler:
    def __init__(self, staged: StagedFunction):
        self.staged = staged
        self._slots: dict[int, int] = {}      # sym id -> register slot
        self._init: list[Any] = []            # register-file template
        self._consts: dict[tuple, int] = {}   # dedup of const/imm slots
        self._counter_ix: dict[str, int] = {}
        self._counter_names: list[str] = []

    def compile(self) -> "CompiledProgram":
        body = self.staged.scheduled()
        param_slots = tuple(self._define(p) for p in self.staged.params)
        steps = self._block_steps(body)
        result_slot = self._operand(body.result)
        tp = body.result.tp
        result_tp = tp if isinstance(tp, ScalarType) \
            and tp.name != "Boolean" else None
        return CompiledProgram(
            name=self.staged.name,
            params=tuple(self.staged.params),
            param_slots=param_slots,
            init=self._init,
            steps=steps,
            result_slot=result_slot,
            result_tp=result_tp,
            counter_names=tuple(self._counter_names),
        )

    # -- slot allocation -----------------------------------------------------

    def _new_slot(self, value: Any = None) -> int:
        self._init.append(value)
        return len(self._init) - 1

    def _define(self, sym: Sym) -> int:
        slot = self._slots.get(sym.id)
        if slot is None:
            slot = self._new_slot()
            self._slots[sym.id] = slot
        return slot

    def _operand(self, exp: Exp) -> int:
        if isinstance(exp, Sym):
            slot = self._slots.get(exp.id)
            if slot is None:
                # The tree engine diagnoses this on first evaluation;
                # the compiler diagnoses it up front, same error type.
                raise ExecutionError(f"unbound symbol {exp!r}")
            return slot
        if isinstance(exp, Const):
            key = ("c", exp.tp.name, type(exp.value).__name__,
                   repr(exp.value))
            slot = self._consts.get(key)
            if slot is None:
                if exp.value is None:
                    value = None
                elif isinstance(exp.tp, ScalarType):
                    value = _as_scalar(exp.tp, exp.value)
                else:
                    value = exp.value
                slot = self._new_slot(value)
                self._consts[key] = slot
            return slot
        raise ExecutionError(f"cannot evaluate {exp!r}")

    def _immediate(self, value: Any) -> int:
        key = ("imm", type(value).__name__, repr(value))
        slot = self._consts.get(key)
        if slot is None:
            slot = self._new_slot(value)
            self._consts[key] = slot
        return slot

    def _counter(self, name: str) -> int:
        ix = self._counter_ix.get(name)
        if ix is None:
            ix = len(self._counter_names)
            self._counter_ix[name] = ix
            self._counter_names.append(name)
        return ix

    # -- statement compilation -----------------------------------------------

    def _block_steps(self, block: Block) -> tuple[Callable, ...]:
        return tuple(self._stm_step(stm) for stm in block.stms)

    def _stm_step(self, stm: Stm) -> Callable:
        rhs = stm.rhs

        if isinstance(rhs, BinaryOp):
            return self._binop_step(stm)
        if isinstance(rhs, UnaryOp):
            i0 = self._operand(rhs.operand)
            ci = self._counter("scalar." + rhs.op)
            dst = self._define(stm.sym)
            if rhs.op == "neg":
                return _unary_step(dst, i0, ci, operator.neg, rhs.tp)
            if rhs.op == "not":
                return _unary_step(dst, i0, ci, operator.invert, rhs.tp)
            return _raise_step(
                ci, ExecutionError(f"unknown unary op {rhs.op}"))
        if isinstance(rhs, Convert):
            i0 = self._operand(rhs.operand)
            return _convert_step(self._define(stm.sym), i0, rhs.tp)
        if isinstance(rhs, Select):
            cond, then_val, else_val = rhs.exp_args
            ic = self._operand(cond)
            ia = self._operand(then_val)
            ib = self._operand(else_val)
            return _select_step(self._define(stm.sym), ic, ia, ib, rhs.tp)
        if isinstance(rhs, ArrayApply):
            iarr = self._operand(rhs.array)
            iidx = self._operand(rhs.index)
            return _aload_step(self._define(stm.sym), iarr, iidx)
        if isinstance(rhs, ArrayUpdate):
            iarr = self._operand(rhs.array)
            iidx = self._operand(rhs.index)
            ival = self._operand(rhs.value)
            return _astore_step(self._define(stm.sym), iarr, iidx, ival)
        if isinstance(rhs, VarDecl):
            ii = self._operand(rhs.init)
            return _vardecl_step(self._define(stm.sym), ii)
        if isinstance(rhs, VarRead):
            ivar = self._operand(rhs.var)
            return _varread_step(self._define(stm.sym), ivar)
        if isinstance(rhs, VarAssign):
            ivar = self._operand(rhs.var)
            ival = self._operand(rhs.value)
            return _varassign_step(self._define(stm.sym), ivar, ival)
        if isinstance(rhs, ReflectMutable):
            isrc = self._operand(rhs.source)
            return _copy_step(self._define(stm.sym), isrc)
        if isinstance(rhs, ForLoop):
            i_start = self._operand(rhs.start)
            i_end = self._operand(rhs.end)
            i_step = self._operand(rhs.step)
            ix = self._define(rhs.index)
            body = self._block_steps(rhs.body)
            return _for_step(self._define(stm.sym), i_start, i_end,
                             i_step, ix, body)
        if isinstance(rhs, IfThenElse):
            ic = self._operand(rhs.cond)
            then_steps = self._block_steps(rhs.then_block)
            then_res = self._operand(rhs.then_block.result)
            else_steps = self._block_steps(rhs.else_block)
            else_res = self._operand(rhs.else_block.result)
            return _if_step(self._define(stm.sym), ic, then_steps,
                            then_res, else_steps, else_res)
        if isinstance(rhs, WhileLoop):
            cond_steps = self._block_steps(rhs.cond_block)
            cond_res = self._operand(rhs.cond_block.result)
            body = self._block_steps(rhs.body)
            return _while_step(self._define(stm.sym), cond_steps,
                               cond_res, body)

        name = getattr(rhs, "intrinsic_name", None)
        if name is not None:
            ci = self._counter("simd." + name)
            dst = self._define(stm.sym)
            factory = _fast_factories.get(name)
            if factory is not None:
                fn = factory(rhs.args)
                if fn is not None:
                    # Immediates are pre-decoded into the handler; only
                    # the Exp operands occupy argument positions.
                    idxs = tuple(self._operand(a) for a in rhs.args
                                 if isinstance(a, Exp))
                    return _intrin_step(dst, ci, fn, idxs)
            idxs = tuple(self._operand(a) if isinstance(a, Exp)
                         else self._immediate(a) for a in rhs.args)
            try:
                fn = _fast_semantics.get(name) or lookup(name)
            except UnimplementedIntrinsic as exc:
                return _raise_step(ci, exc)
            return _intrin_step(dst, ci, fn, idxs)
        raise ExecutionError(f"cannot execute node {type(rhs).__name__}")

    def _binop_step(self, stm: Stm) -> Callable:
        rhs = stm.rhs
        op, tp = rhs.op, rhs.tp
        ia = self._operand(rhs.lhs)
        ib = self._operand(rhs.rhs)
        ci = self._counter("scalar." + op)
        dst = self._define(stm.sym)
        if op in _CMP_FNS:
            return _cmp_step(dst, ia, ib, ci, _CMP_FNS[op])
        fn = _GEN_FNS.get(op)
        if fn is None:
            return _raise_step(
                ci, ExecutionError(f"unknown binary op {op}"))
        if isinstance(tp, ScalarType) and tp.is_integer:
            return _int_binop_step(dst, ia, ib, ci, _INT_FNS[op], tp)
        if isinstance(tp, ScalarType):
            # Only float and Boolean reach here (is_integer excludes
            # Boolean), so "/" is true division as in the tree engine.
            coerce = tp.name != "Boolean"
            return _np_binop_step(dst, ia, ib, ci, fn,
                                  tp.np_dtype.type, coerce)
        return _raw_binop_step(dst, ia, ib, ci, fn)


class CompiledProgram:
    """A staged function compiled to threaded code.

    Stateless between runs: ``run`` copies the init register template,
    executes the step closures under one blanket ``np.errstate`` and
    folds the dense op-count array back into ``machine.op_counts``
    (even when a step raises, matching the tree engine's partial
    counts).
    """

    __slots__ = ("name", "params", "param_slots", "init", "steps",
                 "result_slot", "result_tp", "counter_names")

    def __init__(self, *, name: str, params: tuple[Sym, ...],
                 param_slots: tuple[int, ...], init: list,
                 steps: tuple[Callable, ...], result_slot: int,
                 result_tp: ScalarType | None,
                 counter_names: tuple[str, ...]):
        self.name = name
        self.params = params
        self.param_slots = param_slots
        self.init = init
        self.steps = steps
        self.result_slot = result_slot
        self.result_tp = result_tp
        self.counter_names = counter_names

    @property
    def n_slots(self) -> int:
        return len(self.init)

    def run(self, machine, args: Sequence[Any]) -> Any:
        params = self.params
        if len(args) != len(params):
            raise ExecutionError(
                f"{self.name} expects {len(params)} arguments, "
                f"got {len(args)}"
            )
        regs = self.init.copy()
        for slot, param, value in zip(self.param_slots, params, args):
            regs[slot] = check_arg(param, value)
        counter_names = self.counter_names
        counts = [0] * len(counter_names)
        try:
            with np.errstate(over="ignore", divide="ignore",
                             invalid="ignore"):
                for step in self.steps:
                    step(machine, regs, counts)
                result = regs[self.result_slot]
        finally:
            op_counts = machine.op_counts
            for cname, count in zip(counter_names, counts):
                if count:
                    op_counts[cname] += count
        tp = self.result_tp
        if tp is not None and result is not None:
            result = _as_scalar(tp, result)
        return result


def compile_program(staged: StagedFunction) -> CompiledProgram:
    """Compile ``staged`` to threaded code, memoized three ways.

    Instance-level (``staged._exec_program``), then the process-wide
    :data:`repro.core.cache.program_cache` keyed by structural graph
    hash (so re-staging an identical kernel reuses the program), then
    an actual compile under a ``sim.exec.compile`` span.
    """
    program = getattr(staged, "_exec_program", None)
    if program is not None:
        return program
    from repro.core.cache import program_cache
    program = program_cache.get(staged)
    if program is None:
        with obs.span("sim.exec.compile", kernel=staged.name) as span:
            program = _Compiler(staged).compile()
            span.set("steps", len(program.steps))
            span.set("slots", program.n_slots)
        program_cache.put(staged, program)
    try:
        staged._exec_program = program
    except AttributeError:  # pragma: no cover - exotic StagedFunction stand-in
        pass
    return program
