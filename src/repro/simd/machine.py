"""The SIMD machine: executes staged computation graphs bit-accurately.

This is the "simulated native" backend: the same computation graph that
the C backend unparses and compiles is interpreted here against the
executable intrinsic semantics, with C scalar semantics for the auxiliary
operations (fixed-width wraparound, truncating division).  Arrays are
numpy arrays, playing the role of pinned JVM primitive arrays.

Two execution engines share this front door:

* ``compiled`` (default) — the compile-once closure executor of
  :mod:`repro.simd.exec`: the scheduled block is translated once into a
  flat tuple of specialized step closures over a slot-indexed register
  file, memoized per :class:`StagedFunction` and by structural graph
  hash.
* ``tree`` — the reference tree-walking interpreter below, kept
  bit-identical to the compiled engine and selectable with
  ``REPRO_SIM_EXEC=tree`` or ``SimdMachine(executor="tree")`` for
  differential testing and debugging.
"""

from __future__ import annotations

import os
import random
from collections import Counter
from typing import Any, Sequence

import numpy as np

import repro.obs as obs
from repro.lms.defs import (
    ArrayApply,
    ArrayUpdate,
    BinaryOp,
    Block,
    Convert,
    ForLoop,
    IfThenElse,
    ReflectMutable,
    Select,
    Stm,
    UnaryOp,
    VarAssign,
    VarDecl,
    VarRead,
    WhileLoop,
)
from repro.lms.expr import Const, Exp, Sym
from repro.lms.staging import StagedFunction
from repro.lms.types import ScalarType
from repro.simd.exec import (  # noqa: F401  (re-exported for compatibility)
    ExecutionError,
    _as_scalar,
    _Box,
    check_arg,
    compile_program,
)
from repro.simd.semantics import lookup

_EXECUTORS = ("compiled", "tree")


def scalar_binop(rhs: BinaryOp, a: Any, b: Any) -> Any:
    """One auxiliary scalar binary op with C semantics (usual arithmetic
    conversions, fixed-width wraparound, truncating integer division).

    Shared by the tree engine below and the whole-batch sweep of
    :mod:`repro.simd.batch_exec` (for its batch-uniform operands), so
    the two cannot drift apart.
    """
    op = rhs.op
    tp = rhs.tp
    # C usual arithmetic conversions happen before the operation.
    if isinstance(tp, ScalarType) and tp.name != "Boolean" and \
            op not in ("==", "!=", "<", "<=", ">", ">="):
        a = _as_scalar(tp, a)
        b = _as_scalar(tp, b)
    with np.errstate(over="ignore", divide="ignore",
                     invalid="ignore"):
        if op == "+":
            out = a + b
        elif op == "-":
            out = a - b
        elif op == "*":
            out = a * b
        elif op == "/":
            if isinstance(tp, ScalarType) and tp.is_integer:
                # C semantics: truncation toward zero.
                q = abs(int(a)) // abs(int(b))
                out = q if (int(a) < 0) == (int(b) < 0) else -q
            else:
                out = a / b
        elif op == "%":
            ia, ib = int(a), int(b)
            out = ia - (abs(ia) // abs(ib)) * abs(ib) * \
                (1 if ia >= 0 else -1)
        elif op == "&":
            out = a & b
        elif op == "|":
            out = a | b
        elif op == "^":
            out = a ^ b
        elif op == "<<":
            out = int(a) << int(b)
        elif op == ">>":
            out = int(a) >> int(b)
        elif op == "==":
            return bool(a == b)
        elif op == "!=":
            return bool(a != b)
        elif op == "<":
            return bool(a < b)
        elif op == "<=":
            return bool(a <= b)
        elif op == ">":
            return bool(a > b)
        elif op == ">=":
            return bool(a >= b)
        else:
            raise ExecutionError(f"unknown binary op {op}")
    if isinstance(tp, ScalarType):
        return _as_scalar(tp, out)
    return out


def default_executor() -> str:
    """The engine used when ``SimdMachine(executor=...)`` is not given:
    ``REPRO_SIM_EXEC``, defaulting to ``compiled``."""
    return os.environ.get("REPRO_SIM_EXEC", "compiled")


_WIDTH_PREFIXES = (("_mm512", 512), ("_mm256", 256), ("_mm", 128))


def classify_mnemonic(name: str) -> tuple[str, int]:
    """``(family, vector-width bits)`` of one op-counter key.

    ``simd._mm256_fmadd_ps`` → ``("fmadd", 256)``; scalar auxiliary ops
    (``scalar.+``) and non-``_mm`` intrinsics (``_rdrand16_step``)
    report width 0.
    """
    if name.startswith("scalar."):
        return name[len("scalar."):], 0
    if name.startswith("simd."):
        name = name[len("simd."):]
    for prefix, width in _WIDTH_PREFIXES:
        if name.startswith(prefix + "_"):
            rest = name[len(prefix) + 1:]
            return rest.split("_", 1)[0], width
    return name.lstrip("_").split("_", 1)[0], 0


class SimdMachine:
    """Interprets staged functions over numpy memory."""

    def __init__(self, seed: int = 0x5EED, profile: bool | None = None,
                 executor: str | None = None):
        self.rng = random.Random(seed)
        self.tsc = 0
        self.op_counts: Counter[str] = Counter()
        # Opt-in instruction-mix profiling: when on, each run() flushes
        # its op-count delta into the repro.obs metrics registry,
        # classified by mnemonic family and vector width.  Defaults to
        # the REPRO_OBS_PROFILE environment switch (off).
        self._profile = obs.profile_enabled() if profile is None \
            else profile
        engine = executor if executor is not None else default_executor()
        if engine not in _EXECUTORS:
            raise ValueError(
                f"unknown simulator executor {engine!r}; "
                f"expected one of {_EXECUTORS}"
            )
        self.executor = engine

    # -- public API ----------------------------------------------------------

    def run(self, staged: StagedFunction, args: Sequence[Any]) -> Any:
        """Execute ``staged`` on concrete arguments.

        Array parameters must be numpy arrays with the dtype of the staged
        array type; scalars are coerced to their staged type.
        """
        if len(args) != len(staged.params):
            raise ExecutionError(
                f"{staged.name} expects {len(staged.params)} arguments, "
                f"got {len(args)}"
            )
        profiling = self._profile and obs.obs_enabled()
        before = Counter(self.op_counts) if profiling else None
        obs.counter("sim.exec", engine=self.executor)
        if self.executor == "compiled":
            result = compile_program(staged).run(self, args)
        else:
            result = self._run_tree(staged, args)
        if profiling:
            self._flush_profile(before)
        return result

    def run_batch(self, staged: StagedFunction,
                  args_list: Sequence[Sequence[Any]]) -> list:
        """Execute a batch of argument sets, amortizing interpretation.

        Batches whose entries follow the same control-flow path are
        *swept*: one whole-batch tree walk over ``(N,)`` numpy columns
        (:mod:`repro.simd.batch_exec`) instead of N engine runs.
        Anything the sweep cannot vectorize bit-exactly — intrinsics,
        batch-varying branches, aliased mutated arrays — falls back to
        a per-entry loop through the configured engine.  Results,
        mutated arrays and ``op_counts`` are bit-identical to calling
        :meth:`run` once per entry either way.
        """
        entries = [tuple(args) for args in args_list]
        for args in entries:
            if len(args) != len(staged.params):
                raise ExecutionError(
                    f"{staged.name} expects {len(staged.params)} "
                    f"arguments, got {len(args)}"
                )
        if not entries:
            return []
        profiling = self._profile and obs.obs_enabled()
        before = Counter(self.op_counts) if profiling else None
        obs.counter("sim.exec.batch", engine=self.executor)
        obs.observe("sim.exec.batch.size", float(len(entries)))
        results = None
        if len(entries) > 1:
            from repro.simd.batch_exec import BatchFallback, sweep_batch
            try:
                results = sweep_batch(self, staged, entries)
                obs.counter("sim.exec.batch.swept")
            except BatchFallback:
                obs.counter("sim.exec.batch.fallback")
            except Exception:
                # The sweep never touches caller arrays before its
                # final copy-back, so the loop below replays the batch
                # with exact per-entry error semantics (partial side
                # effects, the entry's own exception).
                obs.counter("sim.exec.batch.fallback")
        if results is None:
            if self.executor == "compiled":
                program = compile_program(staged)
                results = [program.run(self, args) for args in entries]
            else:
                results = [self._run_tree(staged, args)
                           for args in entries]
        if profiling:
            self._flush_profile(before)
        return results

    def _run_tree(self, staged: StagedFunction, args: Sequence[Any]) -> Any:
        env: dict[int, Any] = {}
        for param, value in zip(staged.params, args):
            env[param.id] = check_arg(param, value)
        body = staged.scheduled()
        self._exec_block(body, env)
        result = self._eval(body.result, env)
        tp = body.result.tp
        if result is not None and isinstance(tp, ScalarType) \
                and tp.name != "Boolean":
            result = _as_scalar(tp, result)
        return result

    def _flush_profile(self, before: Counter) -> None:
        """Export this run's op-count delta as ``sim.ops`` counters."""
        delta = Counter(self.op_counts)
        delta.subtract(before)
        for op, count in delta.items():
            if count <= 0:
                continue
            family, width = classify_mnemonic(op)
            obs.counter("sim.ops", count, family=family, width=width)

    # -- argument checking -----------------------------------------------------

    def _check_arg(self, param: Sym, value: Any) -> Any:
        return check_arg(param, value)

    # -- evaluation -------------------------------------------------------------

    def _eval(self, exp: Exp, env: dict[int, Any]) -> Any:
        if isinstance(exp, Const):
            if exp.value is None:
                return None
            if isinstance(exp.tp, ScalarType):
                return _as_scalar(exp.tp, exp.value)
            return exp.value
        if isinstance(exp, Sym):
            if exp.id not in env:
                raise ExecutionError(f"unbound symbol {exp!r}")
            return env[exp.id]
        raise ExecutionError(f"cannot evaluate {exp!r}")

    def _exec_block(self, block: Block, env: dict[int, Any]) -> Any:
        for stm in block.stms:
            env[stm.sym.id] = self._exec_stm(stm, env)
        return self._eval(block.result, env)

    def _exec_stm(self, stm: Stm, env: dict[int, Any]) -> Any:
        rhs = stm.rhs

        if isinstance(rhs, BinaryOp):
            self.op_counts["scalar." + rhs.op] += 1
            return self._binop(rhs, self._eval(rhs.lhs, env),
                               self._eval(rhs.rhs, env))
        if isinstance(rhs, UnaryOp):
            self.op_counts["scalar." + rhs.op] += 1
            operand = self._eval(rhs.operand, env)
            if rhs.op == "neg":
                with np.errstate(over="ignore"):
                    out = -operand
            elif rhs.op == "not":
                out = ~operand
            else:
                raise ExecutionError(f"unknown unary op {rhs.op}")
            tp = rhs.tp
            if isinstance(tp, ScalarType) and tp.name != "Boolean":
                return _as_scalar(tp, out)
            return out
        if isinstance(rhs, Convert):
            value = self._eval(rhs.operand, env)
            return _as_scalar(rhs.tp, value)  # type: ignore[arg-type]
        if isinstance(rhs, Select):
            cond, a, b = (self._eval(x, env) for x in rhs.exp_args)
            out = a if cond else b
            tp = rhs.tp
            if isinstance(tp, ScalarType) and tp.name != "Boolean":
                return _as_scalar(tp, out)
            return out
        if isinstance(rhs, ArrayApply):
            arr = self._eval(rhs.array, env)
            return arr[int(self._eval(rhs.index, env))]
        if isinstance(rhs, ArrayUpdate):
            arr = self._eval(rhs.array, env)
            idx = int(self._eval(rhs.index, env))
            with np.errstate(over="ignore"):
                arr[idx] = self._eval(rhs.value, env)
            return None
        if isinstance(rhs, VarDecl):
            return _Box(self._eval(rhs.init, env))
        if isinstance(rhs, VarRead):
            box = env[rhs.var.id]
            return box.value
        if isinstance(rhs, VarAssign):
            box = env[rhs.var.id]
            box.value = self._eval(rhs.value, env)
            return None
        if isinstance(rhs, ReflectMutable):
            return self._eval(rhs.source, env)
        if isinstance(rhs, ForLoop):
            start = int(self._eval(rhs.start, env))
            end = int(self._eval(rhs.end, env))
            step = int(self._eval(rhs.step, env))
            if step <= 0:
                raise ExecutionError("forloop step must be positive")
            index_id = rhs.index.id
            body = rhs.body
            # The index is a plain int (consumers coerce); allocating a
            # numpy scalar per iteration would dominate light loops.
            for i in range(start, end, step):
                env[index_id] = i
                self._exec_block(body, env)
            return None
        if isinstance(rhs, IfThenElse):
            if bool(self._eval(rhs.cond, env)):
                return self._exec_block(rhs.then_block, env)
            return self._exec_block(rhs.else_block, env)
        if isinstance(rhs, WhileLoop):
            while bool(self._exec_block(rhs.cond_block, env)):
                self._exec_block(rhs.body, env)
            return None

        name = getattr(rhs, "intrinsic_name", None)
        if name is not None:
            self.op_counts["simd." + name] += 1
            fn = lookup(name)
            values = [a if not isinstance(a, Exp) else self._eval(a, env)
                      for a in rhs.args]
            return fn(self, *values)
        raise ExecutionError(f"cannot execute node {type(rhs).__name__}")

    def _binop(self, rhs: BinaryOp, a: Any, b: Any) -> Any:
        return scalar_binop(rhs, a, b)


def execute_staged(staged: StagedFunction, args: Sequence[Any],
                   seed: int = 0x5EED) -> Any:
    """Convenience wrapper: run ``staged`` on a fresh machine."""
    return SimdMachine(seed=seed).run(staged, args)
