"""The SIMD machine: executes staged computation graphs bit-accurately.

This is the "simulated native" backend: the same computation graph that
the C backend unparses and compiles is interpreted here against the
executable intrinsic semantics, with C scalar semantics for the auxiliary
operations (fixed-width wraparound, truncating division).  Arrays are
numpy arrays, playing the role of pinned JVM primitive arrays.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Any, Sequence

import numpy as np

import repro.obs as obs
from repro.lms.defs import (
    ArrayApply,
    ArrayUpdate,
    BinaryOp,
    Block,
    Convert,
    ForLoop,
    IfThenElse,
    ReflectMutable,
    Select,
    Stm,
    UnaryOp,
    VarAssign,
    VarDecl,
    VarRead,
    WhileLoop,
)
from repro.lms.expr import Const, Exp, Sym
from repro.lms.schedule import schedule_block
from repro.lms.staging import StagedFunction
from repro.lms.types import ArrayType, ScalarType
from repro.simd.semantics import lookup


class ExecutionError(RuntimeError):
    """Raised when a staged graph cannot be executed."""


_WIDTH_PREFIXES = (("_mm512", 512), ("_mm256", 256), ("_mm", 128))


def classify_mnemonic(name: str) -> tuple[str, int]:
    """``(family, vector-width bits)`` of one op-counter key.

    ``simd._mm256_fmadd_ps`` → ``("fmadd", 256)``; scalar auxiliary ops
    (``scalar.+``) and non-``_mm`` intrinsics (``_rdrand16_step``)
    report width 0.
    """
    if name.startswith("scalar."):
        return name[len("scalar."):], 0
    if name.startswith("simd."):
        name = name[len("simd."):]
    for prefix, width in _WIDTH_PREFIXES:
        if name.startswith(prefix + "_"):
            rest = name[len(prefix) + 1:]
            return rest.split("_", 1)[0], width
    return name.lstrip("_").split("_", 1)[0], 0


def _as_scalar(tp: ScalarType, value: Any):
    """Coerce a runtime value to the numpy scalar type of ``tp``.

    Integer coercion wraps two's-complement style (C semantics with
    ``-fwrapv``); numpy 2.x would raise on out-of-range Python ints.
    """
    if not tp.is_float and tp.name != "Boolean":
        v = int(value) & ((1 << tp.bits) - 1)
        if tp.signed and v >= (1 << (tp.bits - 1)):
            v -= 1 << tp.bits
        return tp.np_dtype.type(v)
    with np.errstate(over="ignore"):
        return tp.np_dtype.type(value)


class SimdMachine:
    """Interprets staged functions over numpy memory."""

    def __init__(self, seed: int = 0x5EED, profile: bool | None = None):
        self.rng = random.Random(seed)
        self.tsc = 0
        self.op_counts: Counter[str] = Counter()
        # Opt-in instruction-mix profiling: when on, each run() flushes
        # its op-count delta into the repro.obs metrics registry,
        # classified by mnemonic family and vector width.  Defaults to
        # the REPRO_OBS_PROFILE environment switch (off).
        self._profile = obs.profile_enabled() if profile is None \
            else profile

    # -- public API ----------------------------------------------------------

    def run(self, staged: StagedFunction, args: Sequence[Any]) -> Any:
        """Execute ``staged`` on concrete arguments.

        Array parameters must be numpy arrays with the dtype of the staged
        array type; scalars are coerced to their staged type.
        """
        if len(args) != len(staged.params):
            raise ExecutionError(
                f"{staged.name} expects {len(staged.params)} arguments, "
                f"got {len(args)}"
            )
        env: dict[int, Any] = {}
        for param, value in zip(staged.params, args):
            env[param.id] = self._check_arg(param, value)
        profiling = self._profile and obs.obs_enabled()
        before = Counter(self.op_counts) if profiling else None
        body = schedule_block(staged.body)
        self._exec_block(body, env)
        result = self._eval(body.result, env)
        if profiling:
            self._flush_profile(before)
        return result

    def _flush_profile(self, before: Counter) -> None:
        """Export this run's op-count delta as ``sim.ops`` counters."""
        delta = Counter(self.op_counts)
        delta.subtract(before)
        for op, count in delta.items():
            if count <= 0:
                continue
            family, width = classify_mnemonic(op)
            obs.counter("sim.ops", count, family=family, width=width)

    # -- argument checking -----------------------------------------------------

    def _check_arg(self, param: Sym, value: Any) -> Any:
        if isinstance(param.tp, ArrayType):
            if not isinstance(value, np.ndarray):
                raise ExecutionError(
                    f"parameter {param!r} needs a numpy array"
                )
            expected = param.tp.elem.np_dtype
            if value.dtype != expected:
                raise ExecutionError(
                    f"parameter {param!r} needs dtype {expected}, got "
                    f"{value.dtype}"
                )
            return value
        if isinstance(param.tp, ScalarType):
            return _as_scalar(param.tp, value)
        return value

    # -- evaluation -------------------------------------------------------------

    def _eval(self, exp: Exp, env: dict[int, Any]) -> Any:
        if isinstance(exp, Const):
            if exp.value is None:
                return None
            if isinstance(exp.tp, ScalarType):
                return _as_scalar(exp.tp, exp.value)
            return exp.value
        if isinstance(exp, Sym):
            if exp.id not in env:
                raise ExecutionError(f"unbound symbol {exp!r}")
            return env[exp.id]
        raise ExecutionError(f"cannot evaluate {exp!r}")

    def _exec_block(self, block: Block, env: dict[int, Any]) -> Any:
        for stm in block.stms:
            env[stm.sym.id] = self._exec_stm(stm, env)
        return self._eval(block.result, env)

    def _exec_stm(self, stm: Stm, env: dict[int, Any]) -> Any:
        rhs = stm.rhs
        ev = lambda e: self._eval(e, env)

        if isinstance(rhs, BinaryOp):
            self.op_counts["scalar." + rhs.op] += 1
            return self._binop(rhs, ev(rhs.lhs), ev(rhs.rhs))
        if isinstance(rhs, UnaryOp):
            self.op_counts["scalar." + rhs.op] += 1
            operand = ev(rhs.operand)
            if rhs.op == "neg":
                with np.errstate(over="ignore"):
                    return -operand
            if rhs.op == "not":
                return ~operand
            raise ExecutionError(f"unknown unary op {rhs.op}")
        if isinstance(rhs, Convert):
            value = ev(rhs.operand)
            return _as_scalar(rhs.tp, value)  # type: ignore[arg-type]
        if isinstance(rhs, Select):
            cond, a, b = (ev(x) for x in rhs.exp_args)
            return a if cond else b
        if isinstance(rhs, ArrayApply):
            arr = ev(rhs.array)
            return arr[int(ev(rhs.index))]
        if isinstance(rhs, ArrayUpdate):
            arr = ev(rhs.array)
            idx = int(ev(rhs.index))
            with np.errstate(over="ignore"):
                arr[idx] = ev(rhs.value)
            return None
        if isinstance(rhs, VarDecl):
            return _Box(ev(rhs.init))
        if isinstance(rhs, VarRead):
            box = env[rhs.var.id]
            return box.value
        if isinstance(rhs, VarAssign):
            box = env[rhs.var.id]
            box.value = ev(rhs.value)
            return None
        if isinstance(rhs, ReflectMutable):
            return ev(rhs.source)
        if isinstance(rhs, ForLoop):
            start = int(ev(rhs.start))
            end = int(ev(rhs.end))
            step = int(ev(rhs.step))
            if step <= 0:
                raise ExecutionError("forloop step must be positive")
            for i in range(start, end, step):
                env[rhs.index.id] = np.int32(i)
                self._exec_block(rhs.body, env)
            return None
        if isinstance(rhs, IfThenElse):
            if bool(ev(rhs.cond)):
                return self._exec_block(rhs.then_block, env)
            return self._exec_block(rhs.else_block, env)
        if isinstance(rhs, WhileLoop):
            while bool(self._exec_block(rhs.cond_block, env)):
                self._exec_block(rhs.body, env)
            return None

        name = getattr(rhs, "intrinsic_name", None)
        if name is not None:
            self.op_counts["simd." + name] += 1
            fn = lookup(name)
            values = [a if not isinstance(a, Exp) else ev(a)
                      for a in rhs.args]
            return fn(self, *values)
        raise ExecutionError(f"cannot execute node {type(rhs).__name__}")

    def _binop(self, rhs: BinaryOp, a: Any, b: Any) -> Any:
        op = rhs.op
        tp = rhs.tp
        # C usual arithmetic conversions happen before the operation.
        if isinstance(tp, ScalarType) and tp.name != "Boolean" and \
                op not in ("==", "!=", "<", "<=", ">", ">="):
            a = _as_scalar(tp, a)
            b = _as_scalar(tp, b)
        with np.errstate(over="ignore", divide="ignore",
                        invalid="ignore"):
            if op == "+":
                out = a + b
            elif op == "-":
                out = a - b
            elif op == "*":
                out = a * b
            elif op == "/":
                if isinstance(tp, ScalarType) and tp.is_integer:
                    # C semantics: truncation toward zero.
                    q = abs(int(a)) // abs(int(b))
                    out = q if (int(a) < 0) == (int(b) < 0) else -q
                else:
                    out = a / b
            elif op == "%":
                ia, ib = int(a), int(b)
                out = ia - (abs(ia) // abs(ib)) * abs(ib) * \
                    (1 if ia >= 0 else -1)
            elif op == "&":
                out = a & b
            elif op == "|":
                out = a | b
            elif op == "^":
                out = a ^ b
            elif op == "<<":
                out = int(a) << int(b)
            elif op == ">>":
                out = int(a) >> int(b)
            elif op == "==":
                return bool(a == b)
            elif op == "!=":
                return bool(a != b)
            elif op == "<":
                return bool(a < b)
            elif op == "<=":
                return bool(a <= b)
            elif op == ">":
                return bool(a > b)
            elif op == ">=":
                return bool(a >= b)
            else:
                raise ExecutionError(f"unknown binary op {op}")
        if isinstance(tp, ScalarType):
            return _as_scalar(tp, out)
        return out


class _Box:
    """Mutable cell backing a staged variable."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value


def execute_staged(staged: StagedFunction, args: Sequence[Any],
                   seed: int = 0x5EED) -> Any:
    """Convenience wrapper: run ``staged`` on a fresh machine."""
    return SimdMachine(seed=seed).run(staged, args)
