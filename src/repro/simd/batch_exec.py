"""NumPy whole-batch execution for the simulator tier (DESIGN.md §13).

A batch of N invocations of the same staged function normally costs N
interpreter runs.  When every entry follows the same control-flow path
— loop bounds, branch conditions and shift amounts agree across the
batch — the scheduled block can instead be *swept* once, with each SSA
value holding either a batch-uniform scalar (exactly the value the
per-entry engines would compute) or a ``(N,)`` numpy column of
per-entry values.  Array arguments are stacked into fresh ``(N, L)``
copies so the sweep never touches caller memory until the final
copy-back, which makes fallback safe: any condition the sweep cannot
vectorize *exactly* raises :class:`BatchFallback` and the caller
re-executes the batch entry by entry through the normal engines,
reproducing per-entry error semantics and partial side effects
bit-for-bit.

Numerical contract: a swept batch is bit-identical to the per-entry
loop — results, mutated arrays and ``op_counts`` (each sweep op counts
once per entry) all match; anything that cannot keep that promise
falls back instead of approximating.  Enforced by
``tests/test_batch.py``.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Sequence

import numpy as np

from repro.lms.defs import (
    ArrayApply,
    ArrayUpdate,
    BinaryOp,
    Block,
    Convert,
    ForLoop,
    IfThenElse,
    ReflectMutable,
    Select,
    Stm,
    UnaryOp,
    VarAssign,
    VarDecl,
    VarRead,
    WhileLoop,
)
from repro.lms.expr import Const, Exp, Sym
from repro.lms.staging import StagedFunction
from repro.lms.types import ArrayType, ScalarType
from repro.simd.exec import ExecutionError, _as_scalar, _Box, check_arg

__all__ = ["BatchFallback", "sweep_batch"]

#: Stacked-copy budget: batches whose array arguments would need more
#: than this many bytes of fresh copies fall back to the loop.
_MAX_STACK_BYTES = 1 << 26  # 64 MiB

_COMPARISONS = ("==", "!=", "<", "<=", ">", ">=")


class BatchFallback(Exception):
    """The batch cannot be swept exactly (intrinsics, batch-varying
    control flow, aliasing, or a value numpy cannot vectorize with
    bit-exact C semantics); the caller runs it entry by entry."""


def _batched(value: Any) -> bool:
    """A per-entry ``(N,)`` column, as opposed to a batch-uniform
    scalar (numpy scalars and Python ints/bools are never ndarrays)."""
    return isinstance(value, np.ndarray) and value.ndim == 1


def _coerce_col(tp: ScalarType, col: np.ndarray) -> np.ndarray:
    """Columnwise :func:`~repro.simd.exec._as_scalar`: coerce a batch
    column to ``tp`` with the same two's-complement wrap and C
    truncation the scalar coercion applies, or refuse."""
    if not tp.is_float and tp.name != "Boolean":
        if col.dtype.kind == "f":
            # int(x) truncates toward zero and raises on non-finite or
            # arbitrarily large values; only vectorize the exact range.
            if not np.all(np.isfinite(col)):
                raise BatchFallback("non-finite float-to-int batch")
            if np.any(np.abs(col) >= float(1 << 63)):
                raise BatchFallback("float-to-int batch out of range")
            u = np.trunc(col).astype(np.int64).astype(np.uint64)
        elif col.dtype.kind == "u":
            u = col.astype(np.uint64)
        elif col.dtype.kind in ("i", "b"):
            u = col.astype(np.int64).astype(np.uint64)
        else:
            raise BatchFallback(f"cannot coerce {col.dtype} batch")
        if tp.bits < 64:
            u = u & np.uint64((1 << tp.bits) - 1)
            v = u.astype(np.int64)
            if tp.signed:
                half = np.int64(1 << (tp.bits - 1))
                full = np.int64(1 << tp.bits)
                v = np.where(v >= half, v - full, v)
            return v.astype(tp.np_dtype)
        signed = u.view(np.int64) if tp.signed else u
        return signed.astype(tp.np_dtype)
    if tp.name == "Boolean":
        return col.astype(np.bool_)
    with np.errstate(over="ignore"):
        return col.astype(tp.np_dtype)


class _Sweep:
    """One whole-batch tree walk over a scheduled block."""

    __slots__ = ("n", "env", "counts", "_iota")

    def __init__(self, n: int, env: dict[int, Any]):
        self.n = n
        self.env = env
        self.counts: Counter[str] = Counter()
        self._iota: np.ndarray | None = None

    def _rows(self) -> np.ndarray:
        if self._iota is None:
            self._iota = np.arange(self.n)
        return self._iota

    @staticmethod
    def _coerce(tp: ScalarType, value: Any) -> Any:
        if _batched(value):
            return _coerce_col(tp, value)
        return _as_scalar(tp, value)

    # -- evaluation ---------------------------------------------------------

    def eval(self, exp: Exp) -> Any:
        if isinstance(exp, Const):
            if exp.value is None:
                return None
            if isinstance(exp.tp, ScalarType):
                return _as_scalar(exp.tp, exp.value)
            return exp.value
        if isinstance(exp, Sym):
            env = self.env
            if exp.id not in env:
                raise ExecutionError(f"unbound symbol {exp!r}")
            return env[exp.id]
        raise ExecutionError(f"cannot evaluate {exp!r}")

    def _uniform(self, exp: Exp, what: str) -> Any:
        value = self.eval(exp)
        if _batched(value):
            raise BatchFallback(f"batch-varying {what}")
        return value

    def exec_block(self, block: Block) -> Any:
        env = self.env
        for stm in block.stms:
            env[stm.sym.id] = self.exec_stm(stm)
        return self.eval(block.result)

    def _index_col(self, idx: np.ndarray) -> np.ndarray:
        """Batched index column with ``int(x)`` truncation semantics."""
        if idx.dtype.kind == "f":
            if not np.all(np.isfinite(idx)):
                raise BatchFallback("non-finite batched index")
            return np.trunc(idx).astype(np.int64)
        if idx.dtype == np.uint64 and np.any(idx >= np.uint64(1 << 63)):
            raise BatchFallback("batched index out of int64 range")
        return idx.astype(np.int64)

    def exec_stm(self, stm: Stm) -> Any:
        rhs = stm.rhs

        if isinstance(rhs, BinaryOp):
            self.counts["scalar." + rhs.op] += 1
            return self._binop(rhs, self.eval(rhs.lhs),
                               self.eval(rhs.rhs))
        if isinstance(rhs, UnaryOp):
            self.counts["scalar." + rhs.op] += 1
            operand = self.eval(rhs.operand)
            if rhs.op == "neg":
                with np.errstate(over="ignore"):
                    out = -operand
            elif rhs.op == "not":
                out = ~operand
            else:
                raise ExecutionError(f"unknown unary op {rhs.op}")
            tp = rhs.tp
            if isinstance(tp, ScalarType) and tp.name != "Boolean":
                return self._coerce(tp, out)
            return out
        if isinstance(rhs, Convert):
            return self._coerce(rhs.tp, self.eval(rhs.operand))
        if isinstance(rhs, Select):
            cond, a, b = (self.eval(x) for x in rhs.exp_args)
            tp = rhs.tp
            scalar = isinstance(tp, ScalarType) and tp.name != "Boolean"
            if not _batched(cond):
                out = a if cond else b
                return self._coerce(tp, out) if scalar else out
            if scalar:
                # Coercion commutes with elementwise selection.
                return np.where(cond, self._coerce(tp, a),
                                self._coerce(tp, b))
            if isinstance(tp, ScalarType):  # Boolean
                return np.where(cond, a, b)
            raise BatchFallback("batch-varying non-scalar select")
        if isinstance(rhs, ArrayApply):
            arr = self.eval(rhs.array)
            if not (isinstance(arr, np.ndarray) and arr.ndim == 2):
                raise BatchFallback("array expression did not stack")
            idx = self.eval(rhs.index)
            if _batched(idx):
                return arr[self._rows(), self._index_col(idx)]
            # Copy: a later ArrayUpdate must not retro-patch this load.
            return arr[:, int(idx)].copy()
        if isinstance(rhs, ArrayUpdate):
            arr = self.eval(rhs.array)
            if not (isinstance(arr, np.ndarray) and arr.ndim == 2):
                raise BatchFallback("array expression did not stack")
            idx = self.eval(rhs.index)
            value = self.eval(rhs.value)
            with np.errstate(over="ignore"):
                if _batched(idx):
                    arr[self._rows(), self._index_col(idx)] = value
                else:
                    arr[:, int(idx)] = value
            return None
        if isinstance(rhs, VarDecl):
            return _Box(self.eval(rhs.init))
        if isinstance(rhs, VarRead):
            return self.env[rhs.var.id].value
        if isinstance(rhs, VarAssign):
            self.env[rhs.var.id].value = self.eval(rhs.value)
            return None
        if isinstance(rhs, ReflectMutable):
            return self.eval(rhs.source)
        if isinstance(rhs, ForLoop):
            start = int(self._uniform(rhs.start, "loop bound"))
            end = int(self._uniform(rhs.end, "loop bound"))
            step = int(self._uniform(rhs.step, "loop step"))
            if step <= 0:
                raise ExecutionError("forloop step must be positive")
            env = self.env
            index_id = rhs.index.id
            body = rhs.body
            for i in range(start, end, step):
                env[index_id] = i
                self.exec_block(body)
            return None
        if isinstance(rhs, IfThenElse):
            if bool(self._uniform(rhs.cond, "branch condition")):
                return self.exec_block(rhs.then_block)
            return self.exec_block(rhs.else_block)
        if isinstance(rhs, WhileLoop):
            while True:
                cond = self.exec_block(rhs.cond_block)
                if _batched(cond):
                    raise BatchFallback("batch-varying loop condition")
                if not bool(cond):
                    break
                self.exec_block(rhs.body)
            return None

        if getattr(rhs, "intrinsic_name", None) is not None:
            raise BatchFallback(
                f"intrinsic {rhs.intrinsic_name} does not sweep")
        raise ExecutionError(f"cannot execute node {type(rhs).__name__}")

    # -- binary ops ---------------------------------------------------------

    def _binop(self, rhs: BinaryOp, a: Any, b: Any) -> Any:
        if not (_batched(a) or _batched(b)):
            from repro.simd.machine import scalar_binop
            return scalar_binop(rhs, a, b)
        op = rhs.op
        tp = rhs.tp
        if op in _COMPARISONS:
            with np.errstate(invalid="ignore"):
                if op == "==":
                    out = a == b
                elif op == "!=":
                    out = a != b
                elif op == "<":
                    out = a < b
                elif op == "<=":
                    out = a <= b
                elif op == ">":
                    out = a > b
                else:
                    out = a >= b
            return np.asarray(out)
        if not isinstance(tp, ScalarType):
            raise BatchFallback(f"op {op} at {tp} does not sweep")
        if tp.name == "Boolean":
            if op == "&":
                return a & b
            if op == "|":
                return a | b
            if op == "^":
                return a ^ b
            raise BatchFallback(f"op {op} on booleans does not sweep")
        a = self._coerce(tp, a)
        b = self._coerce(tp, b)
        with np.errstate(over="ignore", divide="ignore",
                         invalid="ignore"):
            if op == "+":
                out = a + b
            elif op == "-":
                out = a - b
            elif op == "*":
                out = a * b
            elif op == "/":
                if tp.is_integer:
                    return self._int_div(tp, a, b)
                out = a / b
            elif op == "%":
                return self._int_mod(tp, a, b)
            elif op == "&":
                out = a & b
            elif op == "|":
                out = a | b
            elif op == "^":
                out = a ^ b
            elif op in ("<<", ">>"):
                return self._shift(tp, op, a, b)
            else:
                raise ExecutionError(f"unknown binary op {op}")
        return self._coerce(tp, out)

    def _int_div(self, tp: ScalarType, a: Any, b: Any) -> Any:
        # The scalar engines raise ZeroDivisionError per entry; let the
        # loop reproduce that rather than vectorizing a poison value.
        if np.any(np.asarray(b) == 0):
            raise BatchFallback("division by zero in batch")
        if tp.signed and tp.bits == 64:
            raise BatchFallback("64-bit signed division does not sweep")
        if not tp.signed:
            return self._coerce(tp, a // b)
        a64 = np.asarray(a, dtype=np.int64)
        b64 = np.asarray(b, dtype=np.int64)
        q = np.abs(a64) // np.abs(b64)  # C semantics: truncate to zero
        return self._coerce(tp, np.where((a64 < 0) == (b64 < 0), q, -q))

    def _int_mod(self, tp: ScalarType, a: Any, b: Any) -> Any:
        if not tp.is_integer:
            raise BatchFallback("non-integer modulo does not sweep")
        if np.any(np.asarray(b) == 0):
            raise BatchFallback("modulo by zero in batch")
        if tp.signed and tp.bits == 64:
            raise BatchFallback("64-bit signed modulo does not sweep")
        if not tp.signed:
            return self._coerce(tp, a % b)
        a64 = np.asarray(a, dtype=np.int64)
        b64 = np.asarray(b, dtype=np.int64)
        ab = np.abs(b64)
        out = a64 - (np.abs(a64) // ab) * ab * np.where(a64 >= 0, 1, -1)
        return self._coerce(tp, out)

    def _shift(self, tp: ScalarType, op: str, a: Any, b: Any) -> Any:
        if _batched(b):
            raise BatchFallback("batch-varying shift amount")
        shift = int(b)
        if shift < 0:
            raise BatchFallback("negative shift amount")
        col = np.asarray(a)
        if op == "<<":
            # Python-int shift then two's-complement wrap == shift in
            # the value's image mod 2**64 then wrap to tp.
            if col.dtype.kind == "u":
                u = col.astype(np.uint64)
            else:
                u = col.astype(np.int64).astype(np.uint64)
            out = np.zeros_like(u) if shift >= 64 \
                else u << np.uint64(shift)
            return self._coerce(tp, out)
        if tp.signed:
            # Arithmetic shift of the signed value, like int(a) >> s.
            return self._coerce(
                tp, col.astype(np.int64) >> np.int64(min(shift, 63)))
        u = col.astype(np.uint64)
        out = np.zeros_like(u) if shift >= 64 else u >> np.uint64(shift)
        return self._coerce(tp, out)


def sweep_batch(machine, staged: StagedFunction,
                entries: Sequence[tuple]) -> list:
    """Execute ``entries`` (argument tuples) as one whole-batch sweep.

    Returns the per-entry results and applies array mutations exactly
    as a per-entry loop would, folding ``op_counts`` (sweep counts ×
    N) into ``machine.op_counts``; raises :class:`BatchFallback` when
    the batch cannot be swept bit-exactly.  Caller memory is never
    touched before the final copy-back, so a fallback (or any error)
    leaves the arguments untouched for a clean per-entry replay.
    """
    n = len(entries)
    body = staged.scheduled()
    mutated = {p.id for p in staged.mutated_params()}
    env: dict[int, Any] = {}
    stacked: list[tuple[Sym, int, np.ndarray]] = []
    alias_keys: dict[int, list[int]] = {}
    total_bytes = 0
    for j, param in enumerate(staged.params):
        values = [check_arg(param, args[j]) for args in entries]
        if isinstance(param.tp, ArrayType):
            first = values[0]
            if first.ndim != 1:
                raise BatchFallback("only 1-D array arguments sweep")
            if any(v.shape != first.shape for v in values):
                raise BatchFallback("ragged array argument shapes")
            writes = param.id in mutated
            for v in values:
                if writes and not v.flags.writeable:
                    raise BatchFallback("read-only mutated argument")
                base = v.base
                alias_keys.setdefault(
                    id(base) if base is not None else id(v),
                    []).append(param.id)
            total_bytes += first.nbytes * n
            if total_bytes > _MAX_STACK_BYTES:
                raise BatchFallback("batch exceeds the stacking budget")
            col = np.stack(values) if n else \
                np.empty((0,) + first.shape, dtype=first.dtype)
            env[param.id] = col
            stacked.append((param, j, col))
        else:
            first_bytes = values[0].tobytes()
            if all(v.tobytes() == first_bytes for v in values[1:]):
                env[param.id] = values[0]
            else:
                env[param.id] = np.array(values,
                                         dtype=param.tp.np_dtype)
    # Aliasing: entries sharing memory with anything a sweep mutates
    # would see the loop's cumulative writes; only distinct buffers
    # (or purely read-only sharing) sweep.
    for holders in alias_keys.values():
        if len(holders) > 1 and any(p in mutated for p in holders):
            raise BatchFallback("aliased mutated array arguments")

    sweep = _Sweep(n, env)
    result = sweep.exec_block(body)

    tp = body.result.tp
    if result is not None and isinstance(tp, ScalarType) \
            and tp.name != "Boolean":
        result = sweep._coerce(tp, result)
        results = list(result) if _batched(result) else [result] * n
    elif result is None:
        results = [None] * n
    elif _batched(result) or isinstance(result, np.ndarray):
        # Batch-varying booleans (the loop returns Python bools from
        # comparisons, np.bool_ from converts — provenance the sweep
        # does not track) and array results stay on the loop path.
        raise BatchFallback("result does not extract from a sweep")
    else:
        results = [result] * n

    # Everything from here on is infallible: copy mutations back into
    # caller arrays, then fold the op counts (sweep counts once per
    # batch, the per-entry engines once per call).
    for param, j, col in stacked:
        if param.id not in mutated:
            continue
        for i, args in enumerate(entries):
            np.copyto(args[j], col[i])
    op_counts = machine.op_counts
    for name, count in sweep.counts.items():
        op_counts[name] += count * n
    return results
