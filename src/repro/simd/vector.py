"""Bit-accurate SIMD register values.

A ``VecValue`` is a fixed-width bag of bytes plus the vector type it was
produced as; lane interpretation is chosen per operation (exactly like the
hardware, where ``__m256i`` may hold 8/16/32/64-bit lanes).  All lane
views are numpy arrays over the same underlying buffer, so reinterpreting
casts (``_mm256_castps_si256``) are free and exact.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.lms.types import VectorType


class VecValue:
    """A SIMD register value: ``vt.bits`` bits of raw storage."""

    __slots__ = ("vt", "data", "_tv")

    def __init__(self, vt: VectorType, data: np.ndarray):
        if data.dtype != np.uint8 or data.size != vt.bits // 8:
            raise ValueError(
                f"{vt.name} needs {vt.bits // 8} raw bytes, got "
                f"{data.dtype} x {data.size}"
            )
        self.vt = vt
        self.data = data
        # Lazily-populated (dtype, ndarray) typed view over ``data``,
        # shared with the executor's fast paths; views alias the same
        # buffer, so the cache never goes stale.
        self._tv = None

    # -- constructors --------------------------------------------------------

    @classmethod
    def zero(cls, vt: VectorType) -> "VecValue":
        return cls(vt, np.zeros(vt.bits // 8, dtype=np.uint8))

    @classmethod
    def from_bytes(cls, vt: VectorType, raw: bytes | np.ndarray) -> "VecValue":
        arr = np.frombuffer(bytes(raw), dtype=np.uint8).copy()
        return cls(vt, arr)

    @classmethod
    def from_lanes(cls, vt: VectorType, dtype: str | np.dtype,
                   lanes: Iterable) -> "VecValue":
        dt = np.dtype(dtype)
        arr = np.asarray(list(lanes) if not isinstance(lanes, np.ndarray)
                         else lanes, dtype=dt)
        if arr.nbytes != vt.bits // 8:
            raise ValueError(
                f"{vt.name} needs {vt.bits // 8} bytes of lanes, got "
                f"{arr.nbytes}"
            )
        return cls(vt, arr.view(np.uint8).copy())

    @classmethod
    def broadcast(cls, vt: VectorType, dtype: str | np.dtype,
                  value) -> "VecValue":
        dt = np.dtype(dtype)
        lanes = vt.bits // (dt.itemsize * 8)
        return cls.from_lanes(vt, dt, np.full(lanes, value, dtype=dt))

    # -- views ----------------------------------------------------------------

    def view(self, dtype: str | np.dtype) -> np.ndarray:
        """A typed numpy view over the register's bytes (no copy)."""
        return self.data.view(np.dtype(dtype))

    def lanes(self, dtype: str | np.dtype) -> np.ndarray:
        """A typed *copy* of the register's lanes."""
        return self.view(dtype).copy()

    def cast(self, vt: VectorType) -> "VecValue":
        """Reinterpret as another vector type of the same width."""
        if vt.bits != self.vt.bits:
            raise ValueError(
                f"cannot cast {self.vt.name} ({self.vt.bits}b) to "
                f"{vt.name} ({vt.bits}b) without widening rules"
            )
        return VecValue(vt, self.data.copy())

    def low_half(self, vt: VectorType) -> "VecValue":
        return VecValue(vt, self.data[: vt.bits // 8].copy())

    # -- misc -----------------------------------------------------------------

    def __eq__(self, other) -> bool:
        return (isinstance(other, VecValue) and self.vt == other.vt
                and bool(np.array_equal(self.data, other.data)))

    def __hash__(self) -> int:  # pragma: no cover - not used as keys
        return hash((self.vt.name, self.data.tobytes()))

    def __repr__(self) -> str:
        if self.vt.kind == "float":
            body = ", ".join(f"{x:g}" for x in self.view(np.float32))
        elif self.vt.kind == "double":
            body = ", ".join(f"{x:g}" for x in self.view(np.float64))
        else:
            body = self.data.tobytes().hex()
        return f"{self.vt.name}[{body}]"


class MaskValue:
    """An AVX-512 ``__mmaskN`` value: an N-bit integer."""

    __slots__ = ("bits", "value")

    def __init__(self, bits: int, value: int):
        self.bits = bits
        self.value = value & ((1 << bits) - 1)

    def test(self, lane: int) -> bool:
        return bool((self.value >> lane) & 1)

    def __eq__(self, other) -> bool:
        return (isinstance(other, MaskValue) and self.bits == other.bits
                and self.value == other.value)

    def __hash__(self) -> int:
        return hash((self.bits, self.value))

    def __repr__(self) -> str:
        return f"__mmask{self.bits}[{self.value:#x}]"
