"""The SIMD machine: bit-accurate vector values and executable semantics.

This package is the "simulated native" backend.  A staged kernel's
computation graph can be executed here with bit-accurate Intel semantics
(wraparound, saturation, lane crossing rules), which

* guarantees staged kernels run on any host, with or without a C
  toolchain or AVX hardware, and
* provides the reference against which the real gcc/clang backend is
  validated.
"""

from repro.simd.vector import VecValue, MaskValue
from repro.simd.exec import CompiledProgram, compile_program
from repro.simd.machine import SimdMachine, execute_staged
from repro.simd.semantics import registry as semantics_registry

__all__ = [
    "CompiledProgram",
    "MaskValue",
    "SimdMachine",
    "VecValue",
    "compile_program",
    "execute_staged",
    "semantics_registry",
]
