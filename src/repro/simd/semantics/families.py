"""Auto-generated semantics for the systematic AVX-512 families.

The mask/maskz structure of AVX-512 is uniform, so executable models for
a large slice of the family entries can be derived mechanically: the
plain op computes lanes, the ``mask`` variant merges with ``src`` and the
``maskz`` variant merges with zero.
"""

from __future__ import annotations

import numpy as np

from repro.simd.semantics import register_as
from repro.simd.semantics.util import DTYPE_BY_SUFFIX, result
from repro.simd.vector import MaskValue, VecValue

_PREFIXES = {"_mm": 128, "_mm256": 256, "_mm512": 512}

_LANE_OPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": lambda a, b: a / b,
    "mullo": lambda a, b: a * b,
    "min": np.minimum,
    "max": np.maximum,
}

_LANE_UNOPS = {
    "abs": np.abs,
    "mov": lambda a: a,
    "sqrt": np.sqrt,
    "rcp14": lambda a: (1.0 / a),
    "rsqrt14": lambda a: (1.0 / np.sqrt(a)),
}

_INT_OK_UNOPS = {"abs", "mov"}


def _mask_select(k: MaskValue, computed: np.ndarray,
                 fallback: np.ndarray) -> np.ndarray:
    sel = np.array([k.test(i) for i in range(computed.size)])
    return np.where(sel, computed, fallback)


def _register_masked_families() -> None:
    suffixes = ("epi8", "epi16", "epi32", "epi64", "ps", "pd")
    for op, fn in _LANE_OPS.items():
        for suffix in suffixes:
            dt = DTYPE_BY_SUFFIX[suffix]
            if op in ("mul", "div") and not np.issubdtype(dt, np.floating):
                continue
            for prefix in _PREFIXES:
                def plain(ctx, a, b, _fn=fn, _dt=dt):
                    with np.errstate(over="ignore"):
                        return result(a.vt, _dt,
                                      np.asarray(_fn(a.view(_dt),
                                                     b.view(_dt))).astype(_dt))

                def masked(ctx, src, k, a, b, _fn=fn, _dt=dt):
                    with np.errstate(over="ignore"):
                        computed = np.asarray(
                            _fn(a.view(_dt), b.view(_dt))).astype(_dt)
                    return result(a.vt, _dt,
                                  _mask_select(k, computed, src.view(_dt)))

                def maskz(ctx, k, a, b, _fn=fn, _dt=dt):
                    with np.errstate(over="ignore"):
                        computed = np.asarray(
                            _fn(a.view(_dt), b.view(_dt))).astype(_dt)
                    return result(a.vt, _dt,
                                  _mask_select(k, computed,
                                               np.zeros_like(computed)))

                register_as(f"{prefix}_{op}_{suffix}", plain)
                register_as(f"{prefix}_mask_{op}_{suffix}", masked)
                register_as(f"{prefix}_maskz_{op}_{suffix}", maskz)
    for op, fn in _LANE_UNOPS.items():
        for suffix in suffixes:
            dt = DTYPE_BY_SUFFIX[suffix]
            if op not in _INT_OK_UNOPS and \
                    not np.issubdtype(dt, np.floating):
                continue
            for prefix in _PREFIXES:
                def plain1(ctx, a, _fn=fn, _dt=dt):
                    with np.errstate(all="ignore"):
                        return result(a.vt, _dt,
                                      np.asarray(_fn(a.view(_dt))).astype(_dt))

                def masked1(ctx, src, k, a, _fn=fn, _dt=dt):
                    with np.errstate(all="ignore"):
                        computed = np.asarray(_fn(a.view(_dt))).astype(_dt)
                    return result(a.vt, _dt,
                                  _mask_select(k, computed, src.view(_dt)))

                def maskz1(ctx, k, a, _fn=fn, _dt=dt):
                    with np.errstate(all="ignore"):
                        computed = np.asarray(_fn(a.view(_dt))).astype(_dt)
                    return result(a.vt, _dt,
                                  _mask_select(k, computed,
                                               np.zeros_like(computed)))

                register_as(f"{prefix}_{op}_{suffix}", plain1)
                register_as(f"{prefix}_mask_{op}_{suffix}", masked1)
                register_as(f"{prefix}_maskz_{op}_{suffix}", maskz1)


def _register_cmp_masks() -> None:
    _PREDS = {0: np.equal, 1: np.less, 2: np.less_equal, 4: np.not_equal,
              5: np.greater_equal, 6: np.greater}
    for suffix in ("epi8", "epi16", "epi32", "epi64", "ps", "pd"):
        dt = DTYPE_BY_SUFFIX[suffix]
        for prefix, bits in _PREFIXES.items():
            lanes = bits // (dt.itemsize * 8)

            def cmp(ctx, a, b, imm8, _dt=dt, _lanes=lanes):
                pred = _PREDS.get(int(imm8) & 7)
                if pred is None:
                    raise NotImplementedError(
                        f"cmp predicate {int(imm8)} not modelled")
                cond = pred(a.view(_dt), b.view(_dt))
                value = sum(int(c) << i for i, c in enumerate(cond))
                return MaskValue(max(8, _lanes), value)

            register_as(f"{prefix}_cmp_{suffix}_mask", cmp)


def _register_mask_register_ops() -> None:
    ops = {"kand": lambda a, b: a & b, "kor": lambda a, b: a | b,
           "kxor": lambda a, b: a ^ b, "kandn": lambda a, b: ~a & b,
           "kxnor": lambda a, b: ~(a ^ b)}
    for bits in (8, 16, 32, 64):
        for op, fn in ops.items():
            def kop(ctx, a, b, _fn=fn, _bits=bits):
                return MaskValue(_bits, _fn(a.value, b.value))

            register_as(f"_{op}_mask{bits}", kop)

        def knot(ctx, a, _bits=bits):
            return MaskValue(_bits, ~a.value)

        register_as(f"_knot_mask{bits}", knot)


def _register_rotates_and_masked_memory() -> None:
    from repro.lms.types import M128I, M256I, M512I
    from repro.simd.semantics.memory import read_vec, write_vec

    vts = {"_mm": M128I, "_mm256": M256I, "_mm512": M512I}
    for bits_ in (16, 32, 64):
        udt = np.dtype(f"uint{bits_}")
        dt = np.dtype(f"int{bits_}")
        for prefix in _PREFIXES:
            def rol(ctx, a, imm8, _udt=udt, _dt=dt, _w=bits_):
                r = int(imm8) % _w
                u = a.view(_udt)
                out = (u << _udt.type(r)) | (u >> _udt.type((_w - r) % _w))                     if r else u
                return result(a.vt, _dt, np.asarray(out).astype(_udt)
                              .view(_dt))

            def ror(ctx, a, imm8, _udt=udt, _dt=dt, _w=bits_):
                r = int(imm8) % _w
                u = a.view(_udt)
                out = (u >> _udt.type(r)) | (u << _udt.type((_w - r) % _w))                     if r else u
                return result(a.vt, _dt, np.asarray(out).astype(_udt)
                              .view(_dt))

            register_as(f"{prefix}_rol_epi{bits_}", rol)
            register_as(f"{prefix}_ror_epi{bits_}", ror)

    # Masked loads/stores across widths: lane-masked memory movement.
    from repro.lms.types import (
        M128, M128D, M256, M256D, M512, M512D,
    )
    float_vts = {("_mm", "ps"): (M128, np.float32),
                 ("_mm256", "ps"): (M256, np.float32),
                 ("_mm512", "ps"): (M512, np.float32),
                 ("_mm", "pd"): (M128D, np.float64),
                 ("_mm256", "pd"): (M256D, np.float64),
                 ("_mm512", "pd"): (M512D, np.float64)}
    int_vts = {("_mm", "epi32"): (M128I, np.int32),
               ("_mm256", "epi32"): (M256I, np.int32),
               ("_mm512", "epi32"): (M512I, np.int32),
               ("_mm", "epi64"): (M128I, np.int64),
               ("_mm256", "epi64"): (M256I, np.int64),
               ("_mm512", "epi64"): (M512I, np.int64)}
    for (prefix, suffix), (vt, dt) in {**float_vts, **int_vts}.items():
        lanes = vt.bits // (np.dtype(dt).itemsize * 8)

        # AVX-512 masked memory ops suppress faults on masked-off
        # lanes, so a masked tail may legally hang off the end of the
        # array: only selected lanes are touched, per-lane.

        def _lane_view(arr, _dt):
            flat = arr.view(np.uint8)
            usable = flat.size // np.dtype(_dt).itemsize
            return flat[: usable * np.dtype(_dt).itemsize].view(_dt)

        def mask_loadu(ctx, src, k, arr, offset, _vt=vt, _dt=dt,
                       _lanes=lanes):
            lanes_out = src.view(_dt).copy()
            data = _lane_view(arr, _dt)
            base = int(offset)
            for i in range(_lanes):
                if k.test(i):
                    lanes_out[i] = data[base + i]
            return VecValue.from_lanes(_vt, _dt, lanes_out)

        def maskz_loadu(ctx, k, arr, offset, _vt=vt, _dt=dt,
                        _lanes=lanes):
            lanes_out = np.zeros(_lanes, dtype=_dt)
            data = _lane_view(arr, _dt)
            base = int(offset)
            for i in range(_lanes):
                if k.test(i):
                    lanes_out[i] = data[base + i]
            return VecValue.from_lanes(_vt, _dt, lanes_out)

        def mask_storeu(ctx, arr, k, a, offset, _vt=vt, _dt=dt,
                        _lanes=lanes):
            data = _lane_view(arr, _dt)
            lanes_in = a.view(_dt)
            base = int(offset)
            for i in range(_lanes):
                if k.test(i):
                    data[base + i] = lanes_in[i]

        register_as(f"{prefix}_mask_loadu_{suffix}", mask_loadu)
        register_as(f"{prefix}_maskz_loadu_{suffix}", maskz_loadu)
        register_as(f"{prefix}_mask_storeu_{suffix}", mask_storeu)


def _register_mask_conversions() -> None:
    from repro.simd.semantics import register

    @register("_cvtu32_mask16")
    def cvtu32_mask16(ctx, a):
        return MaskValue(16, int(a))

    @register("_cvtmask16_u32")
    def cvtmask16_u32(ctx, a):
        return np.uint32(a.value)

    @register("_cvtu32_mask8")
    def cvtu32_mask8(ctx, a):
        return MaskValue(8, int(a))


def _register_512_memory_reduce() -> None:
    from repro.lms.types import M512, M512D, M512I
    from repro.simd.semantics.memory import read_vec, write_vec

    for suffix, vt in (("pd", M512D), ("si512", M512I)):
        def load(ctx, arr, offset, _vt=vt):
            return read_vec(_vt, arr, offset)

        def store(ctx, arr, value, offset):
            write_vec(arr, offset, value)

        register_as(f"_mm512_loadu_{suffix}", load)
        register_as(f"_mm512_storeu_{suffix}", store)

    for suffix, dt, vt in (("pd", np.float64, M512D),
                           ("epi8", np.int8, M512I),
                           ("epi16", np.int16, M512I),
                           ("epi32", np.int32, M512I),
                           ("epi64", np.int64, M512I)):
        def set1(ctx, a, _dt=dt, _vt=vt):
            with np.errstate(over="ignore"):
                value = np.array(a).astype(_dt)
            return VecValue.broadcast(_vt, _dt, value)

        register_as(f"_mm512_set1_{suffix}", set1)

    reducers = {"add": np.add.reduce, "mul": np.multiply.reduce,
                "min": np.minimum.reduce, "max": np.maximum.reduce,
                "and": np.bitwise_and.reduce, "or": np.bitwise_or.reduce}
    for red, fn in reducers.items():
        for suffix in ("epi32", "epi64", "ps", "pd"):
            dt = DTYPE_BY_SUFFIX[suffix]
            if red in ("and", "or") and np.issubdtype(dt, np.floating):
                continue

            def reduce(ctx, a, _fn=fn, _dt=dt):
                with np.errstate(over="ignore"):
                    return _dt.type(_fn(a.view(_dt)))

            register_as(f"_mm512_reduce_{red}_{suffix}", reduce)


_register_masked_families()
_register_cmp_masks()
_register_mask_register_ops()
_register_rotates_and_masked_memory()
_register_mask_conversions()
_register_512_memory_reduce()
