"""Shared helpers for the semantic modules."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.lms.types import (
    M128, M128D, M128I, M256, M256D, M256I, M512, M512D, M512I, M64,
    VectorType,
)
from repro.simd.vector import VecValue

VT_BY_NAME: dict[str, VectorType] = {
    "__m64": M64, "__m128": M128, "__m128d": M128D, "__m128i": M128I,
    "__m256": M256, "__m256d": M256D, "__m256i": M256I,
    "__m512": M512, "__m512d": M512D, "__m512i": M512I,
}

# Element-suffix -> numpy dtype (Intel naming).
DTYPE_BY_SUFFIX: dict[str, np.dtype] = {
    "epi8": np.dtype(np.int8), "epi16": np.dtype(np.int16),
    "epi32": np.dtype(np.int32), "epi64": np.dtype(np.int64),
    "epu8": np.dtype(np.uint8), "epu16": np.dtype(np.uint16),
    "epu32": np.dtype(np.uint32), "epu64": np.dtype(np.uint64),
    "ps": np.dtype(np.float32), "pd": np.dtype(np.float64),
    "pi8": np.dtype(np.int8), "pi16": np.dtype(np.int16),
    "pi32": np.dtype(np.int32),
    "pu8": np.dtype(np.uint8), "pu16": np.dtype(np.uint16),
}

INT_VT_BY_BITS = {64: M64, 128: M128I, 256: M256I, 512: M512I}
PS_VT_BY_BITS = {128: M128, 256: M256, 512: M512}
PD_VT_BY_BITS = {128: M128D, 256: M256D, 512: M512D}


def result(vt: VectorType, dtype: np.dtype, lanes: np.ndarray) -> VecValue:
    """Pack computed lanes (cast to dtype, wrapping) into a register."""
    arr = np.asarray(lanes)
    if arr.dtype != dtype:
        if np.issubdtype(dtype, np.integer) and np.issubdtype(
                arr.dtype, np.integer):
            arr = arr.astype(dtype)  # wraps, like the hardware
        else:
            arr = arr.astype(dtype)
    return VecValue.from_lanes(vt, dtype, arr)


def lane_binop(dtype: np.dtype, fn: Callable) -> Callable:
    """Build a ctx-taking semantic function for a lane-wise binary op."""

    def sem(ctx, a: VecValue, b: VecValue) -> VecValue:
        va, vb = a.view(dtype), b.view(dtype)
        return result(a.vt, dtype, fn(va, vb))

    return sem


def lane_unop(dtype: np.dtype, fn: Callable) -> Callable:
    def sem(ctx, a: VecValue) -> VecValue:
        return result(a.vt, dtype, fn(a.view(dtype)))

    return sem


def saturate(values: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """Clip values into the representable range of ``dtype``."""
    info = np.iinfo(dtype)
    return np.clip(values, info.min, info.max).astype(dtype)


def wrap_add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    with np.errstate(over="ignore"):
        return a + b


def wrap_sub(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    with np.errstate(over="ignore"):
        return a - b


def wrap_mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    with np.errstate(over="ignore"):
        return a * b


def cmp_mask(dtype: np.dtype, cond: np.ndarray) -> np.ndarray:
    """All-ones / all-zeros lanes from a boolean array (compare results)."""
    ones = np.array(-1, dtype=np.int64).astype(
        dtype if np.issubdtype(dtype, np.integer)
        else {4: np.int32, 8: np.int64}[dtype.itemsize])
    out = np.where(cond, ones, 0)
    if np.issubdtype(dtype, np.floating):
        return out.astype({4: np.int32, 8: np.int64}[dtype.itemsize]).view(dtype)
    return out.astype(dtype)


def interleave(a: np.ndarray, b: np.ndarray, half: str,
               lane_elems: int) -> np.ndarray:
    """Unpack lo/hi interleave within each 128-bit lane.

    ``lane_elems`` is the number of elements per 128-bit lane; numpy
    arrays ``a``/``b`` cover the whole register.
    """
    out = np.empty_like(a)
    n_lanes = a.size // lane_elems
    h = lane_elems // 2
    for ln in range(n_lanes):
        base = ln * lane_elems
        src = slice(base, base + h) if half == "lo" else \
            slice(base + h, base + lane_elems)
        sa, sb = a[src], b[src]
        woven = np.empty(lane_elems, dtype=a.dtype)
        woven[0::2] = sa
        woven[1::2] = sb
        out[base: base + lane_elems] = woven
    return out
