"""Scalar-integer intrinsics: CRC32, popcount, bit manipulation, RNG, TSC."""

from __future__ import annotations

import numpy as np

from repro.simd.semantics import register

_CRC32C_POLY = 0x82F63B78  # reflected 0x1EDC6F41 (the Castagnoli polynomial)

_crc_table: list[int] | None = None


def _table() -> list[int]:
    global _crc_table
    if _crc_table is None:
        table = []
        for i in range(256):
            crc = i
            for _ in range(8):
                crc = (crc >> 1) ^ (_CRC32C_POLY if crc & 1 else 0)
            table.append(crc)
        _crc_table = table
    return _crc_table


def _crc32c(crc: int, data: bytes) -> int:
    t = _table()
    for byte in data:
        crc = (crc >> 8) ^ t[(crc ^ byte) & 0xFF]
    return crc & 0xFFFFFFFF


def _register_crc() -> None:
    for bits in (8, 16, 32, 64):
        def crc(ctx, acc, v, _bits=bits):
            data = int(v) & ((1 << _bits) - 1)
            out = _crc32c(int(acc) & 0xFFFFFFFF,
                          data.to_bytes(_bits // 8, "little"))
            return np.uint64(out) if _bits == 64 else np.uint32(out)

        register(f"_mm_crc32_u{bits}")(crc)


def _register_bits() -> None:
    @register("_mm_popcnt_u32")
    def popcnt32(ctx, a):
        return np.int32(bin(int(a) & 0xFFFFFFFF).count("1"))

    @register("_mm_popcnt_u64")
    def popcnt64(ctx, a):
        return np.int64(bin(int(a) & (2**64 - 1)).count("1"))

    @register("_lzcnt_u32")
    def lzcnt(ctx, a):
        v = int(a) & 0xFFFFFFFF
        return np.uint32(32 if v == 0 else 32 - v.bit_length())

    @register("_tzcnt_u32")
    def tzcnt(ctx, a):
        v = int(a) & 0xFFFFFFFF
        return np.uint32(32 if v == 0 else (v & -v).bit_length() - 1)

    @register("_pext_u32")
    def pext(ctx, a, mask):
        av, mv = int(a), int(mask)
        out = 0
        bit = 0
        for i in range(32):
            if (mv >> i) & 1:
                out |= ((av >> i) & 1) << bit
                bit += 1
        return np.uint32(out)

    @register("_pdep_u32")
    def pdep(ctx, a, mask):
        av, mv = int(a), int(mask)
        out = 0
        bit = 0
        for i in range(32):
            if (mv >> i) & 1:
                out |= ((av >> bit) & 1) << i
                bit += 1
        return np.uint32(out)


def _register_rng_tsc() -> None:
    # The hardware RNG writes through a pointer parameter and returns a
    # success flag; the pointer follows the container convention (array +
    # trailing element offset).
    for bits, np_t in ((16, np.uint16), (32, np.uint32), (64, np.uint64)):
        def rdrand(ctx, arr, offset, _bits=bits, _t=np_t):
            value = ctx.rng.getrandbits(_bits)
            arr.view(_t)[int(offset)] = _t(value)
            return np.int32(1)

        register(f"_rdrand{bits}_step")(rdrand)

        def rdseed(ctx, arr, offset, _bits=bits, _t=np_t):
            value = ctx.rng.getrandbits(_bits)
            arr.view(_t)[int(offset)] = _t(value)
            return np.int32(1)

        register(f"_rdseed{bits}_step")(rdseed)

    @register("_rdtsc")
    def rdtsc(ctx):
        ctx.tsc += 1
        return np.uint64(ctx.tsc)


_register_crc()
_register_bits()
_register_rng_tsc()
