"""SVML semantics: short vector math library functions."""

from __future__ import annotations

import numpy as np
from scipy import special as _sp

from repro.simd.semantics import register_as
from repro.simd.semantics.util import DTYPE_BY_SUFFIX, result

_PREFIXES = ("_mm", "_mm256", "_mm512")

_UNARY = {
    "sin": np.sin, "cos": np.cos, "tan": np.tan,
    "asin": np.arcsin, "acos": np.arccos, "atan": np.arctan,
    "sinh": np.sinh, "cosh": np.cosh, "tanh": np.tanh,
    "asinh": np.arcsinh, "acosh": np.arccosh, "atanh": np.arctanh,
    "exp": np.exp, "exp2": np.exp2, "exp10": lambda a: np.power(10.0, a),
    "expm1": np.expm1,
    "log": np.log, "log2": np.log2, "log10": np.log10, "log1p": np.log1p,
    "cbrt": np.cbrt, "invsqrt": lambda a: 1.0 / np.sqrt(a),
    "erf": _sp.erf, "erfc": _sp.erfc, "erfinv": _sp.erfinv,
    "cdfnorm": lambda a: _sp.ndtr(a),
    "cdfnorminv": lambda a: _sp.ndtri(a),
    "trunc": np.trunc, "nearbyint": np.rint, "rint": np.rint,
    "svml_ceil": np.ceil, "svml_floor": np.floor, "svml_round": np.round,
    "svml_sqrt": np.sqrt,
    "sind": lambda a: np.sin(np.deg2rad(a)),
    "cosd": lambda a: np.cos(np.deg2rad(a)),
    "tand": lambda a: np.tan(np.deg2rad(a)),
    "logb": lambda a: np.floor(np.log2(np.abs(a))),
}

_BINARY = {
    "pow": np.power, "atan2": np.arctan2, "hypot": np.hypot,
}


def _register_float_math() -> None:
    for fn_name, fn in _UNARY.items():
        for suffix in ("ps", "pd"):
            dt = DTYPE_BY_SUFFIX[suffix]
            for prefix in _PREFIXES:
                def sem(ctx, a, _fn=fn, _dt=dt):
                    with np.errstate(all="ignore"):
                        return result(a.vt, _dt,
                                      np.asarray(_fn(a.view(_dt))).astype(_dt))

                register_as(f"{prefix}_{fn_name}_{suffix}", sem)
    for fn_name, fn in _BINARY.items():
        for suffix in ("ps", "pd"):
            dt = DTYPE_BY_SUFFIX[suffix]
            for prefix in _PREFIXES:
                def sem2(ctx, a, b, _fn=fn, _dt=dt):
                    with np.errstate(all="ignore"):
                        return result(
                            a.vt, _dt,
                            np.asarray(_fn(a.view(_dt),
                                           b.view(_dt))).astype(_dt))

                register_as(f"{prefix}_{fn_name}_{suffix}", sem2)


def _register_int_div() -> None:
    for fn_name in ("div", "rem"):
        for sfx in ("epi8", "epi16", "epi32", "epi64",
                    "epu8", "epu16", "epu32", "epu64"):
            dt = DTYPE_BY_SUFFIX[sfx]
            for prefix in _PREFIXES:
                def sem(ctx, a, b, _dt=dt, _rem=(fn_name == "rem")):
                    va = a.view(_dt).astype(np.int64)
                    vb = b.view(_dt).astype(np.int64)
                    # C-style truncated division, not Python floor division.
                    q = np.where(vb != 0,
                                 np.sign(va) * np.sign(vb)
                                 * (np.abs(va) // np.where(vb == 0, 1,
                                                           np.abs(vb))), 0)
                    out = va - q * vb if _rem else q
                    return result(a.vt, _dt, out.astype(_dt))

                register_as(f"{prefix}_{fn_name}_{sfx}", sem)


def _register_sincos() -> None:
    for suffix in ("ps", "pd"):
        dt = DTYPE_BY_SUFFIX[suffix]
        for prefix in _PREFIXES:
            def sincos(ctx, cos_arr, a, cos_offset, _dt=dt):
                va = a.view(_dt)
                cos_vals = np.cos(va).astype(_dt)
                nbytes = a.vt.bits // 8
                byte_off = int(cos_offset) * cos_arr.itemsize
                cos_arr.view(np.uint8)[byte_off: byte_off + nbytes] = \
                    cos_vals.view(np.uint8)
                return result(a.vt, _dt, np.sin(va).astype(_dt))

            register_as(f"{prefix}_sincos_{suffix}", sincos)


_register_float_math()
_register_int_div()
_register_sincos()
