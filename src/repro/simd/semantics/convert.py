"""Conversion and cast semantics, including FP16C half-precision."""

from __future__ import annotations

import numpy as np

from repro.lms.types import (
    M128, M128D, M128I, M256, M256D, M256I, M512, M512D, M512I,
)
from repro.simd.semantics import register, register_as
from repro.simd.semantics.util import VT_BY_NAME, result
from repro.simd.vector import VecValue


def _register_casts() -> None:
    casts = (
        ("_mm_castps_pd", M128D), ("_mm_castpd_ps", M128),
        ("_mm_castps_si128", M128I), ("_mm_castsi128_ps", M128),
        ("_mm256_castps_pd", M256D), ("_mm256_castpd_ps", M256),
        ("_mm256_castps_si256", M256I), ("_mm256_castsi256_ps", M256),
    )
    for name, vt in casts:
        def cast(ctx, a, _vt=vt):
            return a.cast(_vt)

        register_as(name, cast)

    @register("_mm256_castps256_ps128")
    def castps256_ps128(ctx, a):
        return a.low_half(M128)

    @register("_mm256_castps128_ps256")
    def castps128_ps256(ctx, a):
        # Upper bits are undefined in the ISA; we zero them for determinism.
        return VecValue(M256, np.concatenate(
            [a.data, np.zeros(16, dtype=np.uint8)]))


def _register_int_float() -> None:
    pairs = (("_mm_cvtepi32_ps", M128), ("_mm256_cvtepi32_ps", M256))
    for name, vt in pairs:
        def cvt_i2f(ctx, a, _vt=vt):
            return result(_vt, np.dtype(np.float32),
                          a.view(np.int32).astype(np.float32))

        register_as(name, cvt_i2f)

    for name, vt in (("_mm_cvtps_epi32", M128I), ("_mm256_cvtps_epi32", M256I)):
        def cvt_f2i(ctx, a, _vt=vt):
            # Round to nearest even, as the hardware does by default.
            return result(_vt, np.dtype(np.int32),
                          np.rint(a.view(np.float32)).astype(np.int32))

        register_as(name, cvt_f2i)

    @register("_mm_cvttps_epi32")
    def cvttps(ctx, a):
        return result(M128I, np.dtype(np.int32),
                      np.trunc(a.view(np.float32)).astype(np.int32))

    @register("_mm_cvtss_f32")
    def cvtss_f32(ctx, a):
        return a.view(np.float32)[0].copy()

    @register("_mm_cvtsd_f64")
    def cvtsd_f64(ctx, a):
        return a.view(np.float64)[0].copy()

    @register("_mm_cvtsi128_si32")
    def cvtsi128_si32(ctx, a):
        return a.view(np.int32)[0].copy()

    @register("_mm_cvtsi128_si64")
    def cvtsi128_si64(ctx, a):
        return a.view(np.int64)[0].copy()

    @register("_mm_cvtsi32_si128")
    def cvtsi32_si128(ctx, a):
        out = np.zeros(4, dtype=np.int32)
        out[0] = np.array(a).astype(np.int32)
        return VecValue.from_lanes(M128I, np.int32, out)

    @register("_mm_cvtsi64_si128")
    def cvtsi64_si128(ctx, a):
        out = np.zeros(2, dtype=np.int64)
        out[0] = np.array(a).astype(np.int64)
        return VecValue.from_lanes(M128I, np.int64, out)


def _register_fp16() -> None:
    @register("_mm_cvtph_ps")
    def cvtph_ps(ctx, a):
        halves = a.view(np.float16)[:4]
        return result(M128, np.dtype(np.float32), halves.astype(np.float32))

    @register("_mm256_cvtph_ps")
    def cvtph_ps256(ctx, a):
        halves = a.view(np.float16)[:8]
        return result(M256, np.dtype(np.float32), halves.astype(np.float32))

    @register("_mm_cvtps_ph")
    def cvtps_ph(ctx, a, rounding):
        halves = a.view(np.float32).astype(np.float16)
        out = np.zeros(8, dtype=np.float16)
        out[:4] = halves
        return VecValue.from_lanes(M128I, np.float16, out)

    @register("_mm256_cvtps_ph")
    def cvtps_ph256(ctx, a, rounding):
        halves = a.view(np.float32).astype(np.float16)
        return VecValue.from_lanes(M128I, np.float16, halves)


def _register_extends() -> None:
    extends = (
        ("_mm_cvtepi8_epi16", np.int8, np.int16, M128I, 8),
        ("_mm_cvtepi8_epi32", np.int8, np.int32, M128I, 4),
        ("_mm_cvtepi8_epi64", np.int8, np.int64, M128I, 2),
        ("_mm_cvtepi16_epi32", np.int16, np.int32, M128I, 4),
        ("_mm_cvtepi16_epi64", np.int16, np.int64, M128I, 2),
        ("_mm_cvtepi32_epi64", np.int32, np.int64, M128I, 2),
        ("_mm_cvtepu8_epi16", np.uint8, np.int16, M128I, 8),
        ("_mm_cvtepu8_epi32", np.uint8, np.int32, M128I, 4),
        ("_mm_cvtepu16_epi32", np.uint16, np.int32, M128I, 4),
        ("_mm_cvtepu16_epi64", np.uint16, np.int64, M128I, 2),
        ("_mm_cvtepu32_epi64", np.uint32, np.int64, M128I, 2),
        ("_mm256_cvtepi8_epi16", np.int8, np.int16, M256I, 16),
        ("_mm256_cvtepi16_epi32", np.int16, np.int32, M256I, 8),
        ("_mm256_cvtepu8_epi16", np.uint8, np.int16, M256I, 16),
    )
    for name, src_dt, dst_dt, vt, count in extends:
        def extend(ctx, a, _s=np.dtype(src_dt), _d=np.dtype(dst_dt), _vt=vt,
                   _n=count):
            lanes = a.view(_s)[:_n].astype(_d)
            return VecValue.from_lanes(_vt, _d, lanes)

        register_as(name, extend)


def _register_rounding() -> None:
    for name, dt, fn in (
            ("_mm_ceil_ps", np.float32, np.ceil),
            ("_mm_ceil_pd", np.float64, np.ceil),
            ("_mm_floor_ps", np.float32, np.floor),
            ("_mm_floor_pd", np.float64, np.floor),
            ("_mm256_floor_ps", np.float32, np.floor),
            ("_mm256_ceil_ps", np.float32, np.ceil),
            ("_mm256_ceil_pd", np.float64, np.ceil),
            ("_mm256_floor_pd", np.float64, np.floor)):
        def rnd(ctx, a, _dt=np.dtype(dt), _fn=fn):
            return result(a.vt, _dt, _fn(a.view(_dt)).astype(_dt))

        register_as(name, rnd)

    _ROUND_FNS = {0: np.rint, 1: np.floor, 2: np.ceil, 3: np.trunc,
                  8: np.rint, 9: np.floor, 10: np.ceil, 11: np.trunc}

    for name, dt in (("_mm_round_ps", np.float32),
                     ("_mm_round_pd", np.float64),
                     ("_mm256_round_ps", np.float32)):
        def rnd_imm(ctx, a, rounding, _dt=np.dtype(dt)):
            fn = _ROUND_FNS.get(int(rounding) & 0xB, np.rint)
            return result(a.vt, _dt, fn(a.view(_dt)).astype(_dt))

        register_as(name, rnd_imm)


def _register_mmx_moves() -> None:
    @register("_mm_cvtm64_si64")
    def cvtm64(ctx, a):
        return a.view(np.int64)[0].copy()

    @register("_mm_cvtsi64_m64")
    def cvtsi64(ctx, a):
        from repro.lms.types import M64
        return VecValue.from_lanes(M64, np.int64, [np.int64(a)])

    @register("_m_empty")
    def m_empty(ctx):
        return None


_register_casts()
_register_int_float()
_register_fp16()
_register_extends()
_register_rounding()
_register_mmx_moves()
