"""Arithmetic semantics: float suites, FMA, integer arithmetic."""

from __future__ import annotations

import numpy as np

from repro.simd.semantics import register, register_as
from repro.simd.semantics.util import (
    DTYPE_BY_SUFFIX,
    cmp_mask,
    lane_binop,
    lane_unop,
    result,
    saturate,
    wrap_add,
    wrap_mul,
    wrap_sub,
)
from repro.simd.vector import VecValue

_PREFIXES = ("_mm", "_mm256", "_mm512")


def _float_ops() -> None:
    for suffix in ("ps", "pd"):
        dt = DTYPE_BY_SUFFIX[suffix]
        for prefix in _PREFIXES:
            register_as(f"{prefix}_add_{suffix}", lane_binop(dt, wrap_add))
            register_as(f"{prefix}_sub_{suffix}", lane_binop(dt, wrap_sub))
            register_as(f"{prefix}_mul_{suffix}", lane_binop(dt, wrap_mul))
            register_as(f"{prefix}_div_{suffix}",
                        lane_binop(dt, lambda a, b: a / b))
            register_as(f"{prefix}_min_{suffix}",
                        lane_binop(dt, np.minimum))
            register_as(f"{prefix}_max_{suffix}",
                        lane_binop(dt, np.maximum))
            register_as(f"{prefix}_sqrt_{suffix}", lane_unop(dt, np.sqrt))

            def hadd(ctx, a, b, _dt=dt):
                va, vb = a.view(_dt), b.view(_dt)
                per_lane = 16 // _dt.itemsize
                out = np.empty_like(va)
                for ln in range(va.size * _dt.itemsize // 16):
                    base = ln * per_lane
                    sa = va[base: base + per_lane]
                    sb = vb[base: base + per_lane]
                    h = per_lane // 2
                    out[base: base + h] = sa[0::2] + sa[1::2]
                    out[base + h: base + per_lane] = sb[0::2] + sb[1::2]
                return result(a.vt, _dt, out)

            def hsub(ctx, a, b, _dt=dt):
                va, vb = a.view(_dt), b.view(_dt)
                per_lane = 16 // _dt.itemsize
                out = np.empty_like(va)
                for ln in range(va.size * _dt.itemsize // 16):
                    base = ln * per_lane
                    sa = va[base: base + per_lane]
                    sb = vb[base: base + per_lane]
                    h = per_lane // 2
                    out[base: base + h] = sa[0::2] - sa[1::2]
                    out[base + h: base + per_lane] = sb[0::2] - sb[1::2]
                return result(a.vt, _dt, out)

            register_as(f"{prefix}_hadd_{suffix}", hadd)
            register_as(f"{prefix}_hsub_{suffix}", hsub)

            def addsub(ctx, a, b, _dt=dt):
                va, vb = a.view(_dt), b.view(_dt)
                out = va.copy()
                out[0::2] = va[0::2] - vb[0::2]
                out[1::2] = va[1::2] + vb[1::2]
                return result(a.vt, _dt, out)

            register_as(f"{prefix}_addsub_{suffix}", addsub)
        register_as(f"_mm_rcp_{suffix}",
                    lane_unop(dt, lambda a: (1.0 / a).astype(a.dtype)))
        register_as(f"_mm_rsqrt_{suffix}",
                    lane_unop(dt, lambda a: (1.0 / np.sqrt(a)).astype(a.dtype)))


def _fma_ops() -> None:
    kinds = {
        "fmadd": lambda a, b, c: a * b + c,
        "fmsub": lambda a, b, c: a * b - c,
        "fnmadd": lambda a, b, c: -(a * b) + c,
        "fnmsub": lambda a, b, c: -(a * b) - c,
    }
    for kind, fn in kinds.items():
        for suffix in ("ps", "pd"):
            dt = DTYPE_BY_SUFFIX[suffix]
            for prefix in _PREFIXES:
                def fma(ctx, a, b, c, _fn=fn, _dt=dt):
                    # numpy evaluates a*b in the full dtype then adds — for
                    # float32 this differs from a true fused op by at most
                    # one rounding; compute in float64 and round once to
                    # model the fused behaviour.
                    wa = a.view(_dt).astype(np.float64)
                    wb = b.view(_dt).astype(np.float64)
                    wc = c.view(_dt).astype(np.float64)
                    return result(a.vt, _dt, _fn(wa, wb, wc).astype(_dt))

                register_as(f"{prefix}_{kind}_{suffix}", fma)
        for suffix in ("ss", "sd"):
            dt = np.dtype(np.float32 if suffix == "ss" else np.float64)

            def fma_s(ctx, a, b, c, _fn=fn, _dt=dt):
                va = a.view(_dt).copy()
                va[0] = _fn(np.float64(va[0]),
                            np.float64(b.view(_dt)[0]),
                            np.float64(c.view(_dt)[0]))
                return result(a.vt, _dt, va)

            register_as(f"_mm_{kind}_{suffix}", fma_s)
    for kind, even_fn, odd_fn in (
            ("fmaddsub", lambda a, b, c: a * b - c, lambda a, b, c: a * b + c),
            ("fmsubadd", lambda a, b, c: a * b + c, lambda a, b, c: a * b - c)):
        for suffix in ("ps", "pd"):
            dt = DTYPE_BY_SUFFIX[suffix]
            for prefix in ("_mm", "_mm256"):
                def fmas(ctx, a, b, c, _e=even_fn, _o=odd_fn, _dt=dt):
                    wa = a.view(_dt).astype(np.float64)
                    wb = b.view(_dt).astype(np.float64)
                    wc = c.view(_dt).astype(np.float64)
                    out = np.empty_like(wa)
                    out[0::2] = _e(wa[0::2], wb[0::2], wc[0::2])
                    out[1::2] = _o(wa[1::2], wb[1::2], wc[1::2])
                    return result(a.vt, _dt, out.astype(_dt))

                register_as(f"{prefix}_{kind}_{suffix}", fmas)


def _int_add_sub() -> None:
    for bits in (8, 16, 32, 64):
        dt = DTYPE_BY_SUFFIX[f"epi{bits}"]
        for prefix in _PREFIXES:
            register_as(f"{prefix}_add_epi{bits}", lane_binop(dt, wrap_add))
            register_as(f"{prefix}_sub_epi{bits}", lane_binop(dt, wrap_sub))
    for bits in (8, 16, 32):
        dt = DTYPE_BY_SUFFIX[f"pi{bits}"]
        register_as(f"_mm_add_pi{bits}", lane_binop(dt, wrap_add))
        register_as(f"_mm_sub_pi{bits}", lane_binop(dt, wrap_sub))
    for sfx in ("epi8", "epi16", "epu8", "epu16", "pu8", "pu16"):
        dt = DTYPE_BY_SUFFIX[sfx]

        def adds(ctx, a, b, _dt=dt):
            wide = a.view(_dt).astype(np.int32) + b.view(_dt).astype(np.int32)
            return result(a.vt, _dt, saturate(wide, _dt))

        def subs(ctx, a, b, _dt=dt):
            wide = a.view(_dt).astype(np.int32) - b.view(_dt).astype(np.int32)
            return result(a.vt, _dt, saturate(wide, _dt))

        prefixes = _PREFIXES if sfx.startswith("ep") else ("_mm",)
        sfx_names = (sfx,) if sfx.startswith("ep") else (sfx, "pi" + sfx[2:])
        for prefix in prefixes:
            for name_sfx in sfx_names:
                register_as(f"{prefix}_adds_{name_sfx}", adds)
                register_as(f"{prefix}_subs_{name_sfx}", subs)


def _int_mul_madd() -> None:
    for prefix in _PREFIXES:
        def mullo16(ctx, a, b):
            wide = a.view(np.int16).astype(np.int32) * \
                b.view(np.int16).astype(np.int32)
            return result(a.vt, np.dtype(np.int16), wide.astype(np.int16))

        def mulhi16(ctx, a, b):
            wide = a.view(np.int16).astype(np.int32) * \
                b.view(np.int16).astype(np.int32)
            return result(a.vt, np.dtype(np.int16),
                          (wide >> 16).astype(np.int16))

        def mullo32(ctx, a, b):
            wide = a.view(np.int32).astype(np.int64) * \
                b.view(np.int32).astype(np.int64)
            return result(a.vt, np.dtype(np.int32), wide.astype(np.int32))

        def madd16(ctx, a, b):
            wide = a.view(np.int16).astype(np.int32) * \
                b.view(np.int16).astype(np.int32)
            return result(a.vt, np.dtype(np.int32), wide[0::2] + wide[1::2])

        def maddubs(ctx, a, b):
            ua = a.view(np.uint8).astype(np.int32)
            sb = b.view(np.int8).astype(np.int32)
            prod = ua * sb
            return result(a.vt, np.dtype(np.int16),
                          saturate(prod[0::2] + prod[1::2],
                                   np.dtype(np.int16)))

        def mulhrs(ctx, a, b):
            wide = a.view(np.int16).astype(np.int32) * \
                b.view(np.int16).astype(np.int32)
            return result(a.vt, np.dtype(np.int16),
                          (((wide >> 14) + 1) >> 1).astype(np.int16))

        def mul_epi32(ctx, a, b):
            lo_a = a.view(np.int32).astype(np.int64)[0::2]
            lo_b = b.view(np.int32).astype(np.int64)[0::2]
            with np.errstate(over="ignore"):
                return result(a.vt, np.dtype(np.int64), lo_a * lo_b)

        register_as(f"{prefix}_mullo_epi16", mullo16)
        register_as(f"{prefix}_mulhi_epi16", mulhi16)
        register_as(f"{prefix}_mullo_epi32", mullo32)
        register_as(f"{prefix}_madd_epi16", madd16)
        register_as(f"{prefix}_maddubs_epi16", maddubs)
        register_as(f"{prefix}_mulhrs_epi16", mulhrs)
        register_as(f"{prefix}_mul_epi32", mul_epi32)
    register_as("_mm_mullo_pi16", lambda ctx, a, b: result(
        a.vt, np.dtype(np.int16),
        (a.view(np.int16).astype(np.int32)
         * b.view(np.int16).astype(np.int32)).astype(np.int16)))
    register_as("_mm_mulhi_pi16", lambda ctx, a, b: result(
        a.vt, np.dtype(np.int16),
        ((a.view(np.int16).astype(np.int32)
          * b.view(np.int16).astype(np.int32)) >> 16).astype(np.int16)))
    register_as("_mm_madd_pi16", lambda ctx, a, b: result(
        a.vt, np.dtype(np.int32),
        (lambda w: w[0::2] + w[1::2])(
            a.view(np.int16).astype(np.int32)
            * b.view(np.int16).astype(np.int32))))


def _int_misc() -> None:
    for prefix in _PREFIXES:
        for sfx in ("epu8", "epu16"):
            dt = DTYPE_BY_SUFFIX[sfx]
            register_as(f"{prefix}_avg_{sfx}", lane_binop(
                dt, lambda a, b: ((a.astype(np.uint32) + b.astype(np.uint32)
                                   + 1) >> 1).astype(a.dtype)))
        for bits in (8, 16, 32):
            dt = DTYPE_BY_SUFFIX[f"epi{bits}"]
            register_as(f"{prefix}_abs_epi{bits}", lane_unop(
                dt, lambda a: np.abs(a)))

            def sign(ctx, a, b, _dt=dt):
                va, vb = a.view(_dt), b.view(_dt)
                with np.errstate(over="ignore"):
                    out = np.where(vb < 0, -va, np.where(vb == 0, 0, va))
                return result(a.vt, _dt, out.astype(_dt))

            register_as(f"{prefix}_sign_epi{bits}", sign)
        for bits, sfx in ((16, "epi16"), (32, "epi32")):
            dt = DTYPE_BY_SUFFIX[sfx]

            def ihadd(ctx, a, b, _dt=dt):
                va, vb = a.view(_dt), b.view(_dt)
                per_lane = 16 // _dt.itemsize
                out = np.empty_like(va)
                with np.errstate(over="ignore"):
                    for ln in range(va.size * _dt.itemsize // 16):
                        base = ln * per_lane
                        sa = va[base: base + per_lane]
                        sb = vb[base: base + per_lane]
                        h = per_lane // 2
                        out[base: base + h] = sa[0::2] + sa[1::2]
                        out[base + h: base + per_lane] = sb[0::2] + sb[1::2]
                return result(a.vt, _dt, out)

            register_as(f"{prefix}_hadd_{sfx}", ihadd)
        def sad(ctx, a, b):
            da = a.view(np.uint8).astype(np.int32)
            db = b.view(np.uint8).astype(np.int32)
            diff = np.abs(da - db)
            groups = diff.reshape(-1, 8).sum(axis=1)
            out = np.zeros(a.vt.bits // 64, dtype=np.int64)
            out[:] = groups
            return result(a.vt, np.dtype(np.int64), out)

        register_as(f"{prefix}_sad_epu8", sad)
    # Integer min/max across curated widths.
    for mm, fn in (("min", np.minimum), ("max", np.maximum)):
        for sfx in ("epi8", "epi16", "epi32", "epu8", "epu16", "epu32"):
            dt = DTYPE_BY_SUFFIX[sfx]
            for prefix in _PREFIXES:
                register_as(f"{prefix}_{mm}_{sfx}", lane_binop(dt, fn))


def _compare_ops() -> None:
    for sfx, pairs in (("ps", (("cmpeq", np.equal), ("cmplt", np.less),
                               ("cmple", np.less_equal),
                               ("cmpgt", np.greater),
                               ("cmpge", np.greater_equal),
                               ("cmpneq", np.not_equal))),
                       ("pd", (("cmpeq", np.equal), ("cmplt", np.less),
                               ("cmple", np.less_equal),
                               ("cmpgt", np.greater),
                               ("cmpge", np.greater_equal),
                               ("cmpneq", np.not_equal)))):
        dt = DTYPE_BY_SUFFIX[sfx]
        for name, fn in pairs:
            register_as(f"_mm_{name}_{sfx}", lane_binop(
                dt, lambda a, b, _fn=fn, _dt=dt: cmp_mask(_dt, _fn(a, b))))
    for bits in (8, 16, 32, 64):
        dt = DTYPE_BY_SUFFIX[f"epi{bits}"]
        for prefix in ("_mm", "_mm256"):
            register_as(f"{prefix}_cmpeq_epi{bits}", lane_binop(
                dt, lambda a, b, _dt=dt: cmp_mask(_dt, a == b)))
            register_as(f"{prefix}_cmpgt_epi{bits}", lane_binop(
                dt, lambda a, b, _dt=dt: cmp_mask(_dt, a > b)))
    # AVX cmp with predicate immediate (subset of predicates).
    _AVX_PREDS = {0: np.equal, 1: np.less, 2: np.less_equal,
                  4: np.not_equal, 13: np.greater_equal, 14: np.greater,
                  17: np.less, 18: np.less_equal, 29: np.greater_equal,
                  30: np.greater}

    for sfx in ("ps", "pd"):
        dt = DTYPE_BY_SUFFIX[sfx]

        def cmp_imm(ctx, a, b, imm8, _dt=dt):
            imm = int(imm8)
            if imm not in _AVX_PREDS:
                raise NotImplementedError(
                    f"_mm256_cmp predicate {imm} not modelled")
            return result(a.vt, _dt,
                          cmp_mask(_dt, _AVX_PREDS[imm](a.view(_dt),
                                                        b.view(_dt))))

        register_as(f"_mm256_cmp_{sfx}", cmp_imm)


def _scalar_float_ops() -> None:
    for sfx, dt in (("ss", np.dtype(np.float32)), ("sd", np.dtype(np.float64))):
        for op, fn in (("add", np.add), ("sub", np.subtract),
                       ("mul", np.multiply), ("div", np.divide),
                       ("min", np.minimum), ("max", np.maximum)):
            def scalar_op(ctx, a, b, _fn=fn, _dt=dt):
                va = a.view(_dt).copy()
                va[0] = _fn(va[0], b.view(_dt)[0])
                return result(a.vt, _dt, va)

            register_as(f"_mm_{op}_{sfx}", scalar_op)

        def scalar_sqrt(ctx, a, _dt=dt):
            va = a.view(_dt).copy()
            va[0] = np.sqrt(va[0])
            return result(a.vt, _dt, va)

        register_as(f"_mm_sqrt_{sfx}", scalar_sqrt)


def _avx512_extras() -> None:
    @register("_mm512_mask_add_ps")
    def mask_add_ps(ctx, src, k, a, b):
        va = a.view(np.float32)
        vb = b.view(np.float32)
        vs = src.view(np.float32)
        sel = np.array([k.test(i) for i in range(16)])
        return result(a.vt, np.dtype(np.float32),
                      np.where(sel, va + vb, vs))

    @register("_mm512_reduce_add_ps")
    def reduce_add_ps(ctx, a):
        return np.float32(a.view(np.float32).sum(dtype=np.float64))

    @register("_mm512_rol_epi32")
    def rol_epi32(ctx, a, imm8):
        imm = int(imm8) & 31
        u = a.view(np.uint32)
        return result(a.vt, np.dtype(np.int32),
                      ((u << np.uint32(imm)) | (u >> np.uint32(32 - imm)))
                      .astype(np.uint32).view(np.int32))


_float_ops()
_fma_ops()
_int_add_sub()
_int_mul_madd()
_int_misc()
_compare_ops()
_scalar_float_ops()
_avx512_extras()
