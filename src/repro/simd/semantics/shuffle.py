"""Swizzle semantics: shuffles, unpacks, permutes, blends, packs."""

from __future__ import annotations

import numpy as np

from repro.lms.types import M128, M128D, M128I, M256, M256D, M256I
from repro.simd.semantics import register, register_as
from repro.simd.semantics.util import (
    DTYPE_BY_SUFFIX,
    interleave,
    result,
    saturate,
)
from repro.simd.vector import VecValue


def _register_unpacks() -> None:
    combos = (
        ("_mm_unpacklo_ps", np.float32, "lo", 4),
        ("_mm_unpackhi_ps", np.float32, "hi", 4),
        ("_mm_unpacklo_pd", np.float64, "lo", 2),
        ("_mm_unpackhi_pd", np.float64, "hi", 2),
        ("_mm256_unpacklo_ps", np.float32, "lo", 4),
        ("_mm256_unpackhi_ps", np.float32, "hi", 4),
        ("_mm256_unpacklo_pd", np.float64, "lo", 2),
        ("_mm256_unpackhi_pd", np.float64, "hi", 2),
    )
    for name, dt, half, lane_elems in combos:
        def unpack(ctx, a, b, _dt=np.dtype(dt), _half=half, _le=lane_elems):
            return result(a.vt, _dt,
                          interleave(a.view(_dt), b.view(_dt), _half, _le))

        register_as(name, unpack)

    for bits, lane_elems in ((8, 16), (16, 8), (32, 4), (64, 2)):
        dt = DTYPE_BY_SUFFIX[f"epi{bits}"]
        for prefix in ("_mm", "_mm256"):
            for half in ("lo", "hi"):
                def unpack_i(ctx, a, b, _dt=dt, _half=half, _le=lane_elems):
                    return result(a.vt, _dt, interleave(
                        a.view(_dt), b.view(_dt), _half, _le))

                register_as(f"{prefix}_unpack{half}_epi{bits}", unpack_i)


def _select4(src: np.ndarray, control: int) -> np.floating:
    return src[control & 3]


def _register_shuffles() -> None:
    @register("_mm_shuffle_ps")
    def shuffle_ps(ctx, a, b, imm8):
        imm = int(imm8)
        va, vb = a.view(np.float32), b.view(np.float32)
        out = np.array([
            _select4(va, imm), _select4(va, imm >> 2),
            _select4(vb, imm >> 4), _select4(vb, imm >> 6),
        ], dtype=np.float32)
        return VecValue.from_lanes(M128, np.float32, out)

    @register("_mm256_shuffle_ps")
    def shuffle_ps256(ctx, a, b, imm8):
        imm = int(imm8)
        va, vb = a.view(np.float32), b.view(np.float32)
        out = np.empty(8, dtype=np.float32)
        for ln in range(2):
            base = ln * 4
            sa, sb = va[base: base + 4], vb[base: base + 4]
            out[base + 0] = _select4(sa, imm)
            out[base + 1] = _select4(sa, imm >> 2)
            out[base + 2] = _select4(sb, imm >> 4)
            out[base + 3] = _select4(sb, imm >> 6)
        return VecValue.from_lanes(M256, np.float32, out)

    @register("_mm256_shuffle_pd")
    def shuffle_pd256(ctx, a, b, imm8):
        imm = int(imm8)
        va, vb = a.view(np.float64), b.view(np.float64)
        out = np.empty(4, dtype=np.float64)
        for ln in range(2):
            base = ln * 2
            out[base] = va[base + ((imm >> (2 * ln)) & 1)]
            out[base + 1] = vb[base + ((imm >> (2 * ln + 1)) & 1)]
        return VecValue.from_lanes(M256D, np.float64, out)

    @register("_mm_shuffle_epi32")
    def shuffle_epi32(ctx, a, imm8):
        imm = int(imm8)
        va = a.view(np.int32)
        out = np.array([va[(imm >> (2 * i)) & 3] for i in range(4)],
                       dtype=np.int32)
        return VecValue.from_lanes(M128I, np.int32, out)

    @register("_mm256_shuffle_epi32")
    def shuffle_epi32_256(ctx, a, imm8):
        imm = int(imm8)
        va = a.view(np.int32)
        out = np.empty(8, dtype=np.int32)
        for ln in range(2):
            base = ln * 4
            for i in range(4):
                out[base + i] = va[base + ((imm >> (2 * i)) & 3)]
        return VecValue.from_lanes(M256I, np.int32, out)

    def _shuffle_half_epi16(a: VecValue, imm: int, half: str) -> VecValue:
        va = a.view(np.int16)
        out = va.copy()
        n_lanes = a.vt.bits // 128
        for ln in range(n_lanes):
            base = ln * 8 + (0 if half == "lo" else 4)
            quad = va[base: base + 4].copy()
            for i in range(4):
                out[base + i] = quad[(imm >> (2 * i)) & 3]
        return result(a.vt, np.dtype(np.int16), out)

    for prefix in ("_mm", "_mm256"):
        register_as(f"{prefix}_shufflelo_epi16",
                    lambda ctx, a, imm8: _shuffle_half_epi16(a, int(imm8), "lo"))
        register_as(f"{prefix}_shufflehi_epi16",
                    lambda ctx, a, imm8: _shuffle_half_epi16(a, int(imm8), "hi"))

    def _pshufb(a: VecValue, b: VecValue) -> VecValue:
        va, vb = a.view(np.uint8), b.view(np.uint8)
        out = np.zeros_like(va)
        n_lanes = a.vt.bits // 128
        for ln in range(n_lanes):
            base = ln * 16
            for i in range(16):
                ctrl = int(vb[base + i])
                if ctrl & 0x80:
                    out[base + i] = 0
                else:
                    out[base + i] = va[base + (ctrl & 0x0F)]
        return VecValue(a.vt, out)

    register_as("_mm_shuffle_epi8", lambda ctx, a, b: _pshufb(a, b))
    register_as("_mm256_shuffle_epi8", lambda ctx, a, b: _pshufb(a, b))

    @register("_mm_alignr_epi8")
    def alignr(ctx, a, b, imm8):
        imm = int(imm8)
        concat = np.concatenate([b.data, a.data])
        out = np.zeros(16, dtype=np.uint8)
        chunk = concat[imm: imm + 16]
        out[: chunk.size] = chunk
        return VecValue(M128I, out)


def _register_permutes() -> None:
    def _perm2f128(a: VecValue, b: VecValue, imm: int) -> np.ndarray:
        halves = {0: a.data[:16], 1: a.data[16:],
                  2: b.data[:16], 3: b.data[16:]}
        out = np.empty(32, dtype=np.uint8)
        for pos, shift in ((0, 0), (1, 4)):
            ctl = (imm >> shift) & 0xF
            if ctl & 0x8:
                out[pos * 16:(pos + 1) * 16] = 0
            else:
                out[pos * 16:(pos + 1) * 16] = halves[ctl & 3]
        return out

    for name in ("_mm256_permute2f128_ps", "_mm256_permute2f128_pd",
                 "_mm256_permute2x128_si256"):
        def perm(ctx, a, b, imm8):
            return VecValue(a.vt, _perm2f128(a, b, int(imm8)))

        register_as(name, perm)

    @register("_mm256_permute_ps")
    def permute_ps(ctx, a, imm8):
        imm = int(imm8)
        va = a.view(np.float32)
        out = np.empty(8, dtype=np.float32)
        for ln in range(2):
            base = ln * 4
            for i in range(4):
                out[base + i] = va[base + ((imm >> (2 * i)) & 3)]
        return VecValue.from_lanes(M256, np.float32, out)

    @register("_mm256_permutevar_pd")
    def permutevar_pd(ctx, a, b):
        va = a.view(np.float64)
        ctl = b.view(np.int64)
        out = np.empty(4, dtype=np.float64)
        for ln in range(2):
            base = ln * 2
            for i in range(2):
                out[base + i] = va[base + ((int(ctl[base + i]) >> 1) & 1)]
        return VecValue.from_lanes(M256D, np.float64, out)

    @register("_mm256_permutevar8x32_epi32")
    def permutevar8x32(ctx, a, idx):
        va = a.view(np.int32)
        vi = idx.view(np.int32) & 7
        return VecValue.from_lanes(M256I, np.int32, va[vi])

    @register("_mm256_extractf128_ps")
    def extractf128_ps(ctx, a, imm8):
        half = int(imm8) & 1
        return VecValue(M128, a.data[half * 16:(half + 1) * 16].copy())

    @register("_mm256_extractf128_pd")
    def extractf128_pd(ctx, a, imm8):
        half = int(imm8) & 1
        return VecValue(M128D, a.data[half * 16:(half + 1) * 16].copy())

    @register("_mm256_extracti128_si256")
    def extracti128(ctx, a, imm8):
        half = int(imm8) & 1
        return VecValue(M128I, a.data[half * 16:(half + 1) * 16].copy())

    @register("_mm256_insertf128_ps")
    def insertf128_ps(ctx, a, b, imm8):
        half = int(imm8) & 1
        out = a.data.copy()
        out[half * 16:(half + 1) * 16] = b.data
        return VecValue(M256, out)

    @register("_mm256_inserti128_si256")
    def inserti128(ctx, a, b, imm8):
        half = int(imm8) & 1
        out = a.data.copy()
        out[half * 16:(half + 1) * 16] = b.data
        return VecValue(M256I, out)

    @register("_mm_extract_epi32")
    def extract_epi32(ctx, a, imm8):
        return a.view(np.int32)[int(imm8) & 3].copy()

    @register("_mm_insert_epi32")
    def insert_epi32(ctx, a, i, imm8):
        out = a.view(np.int32).copy()
        out[int(imm8) & 3] = np.int32(i)
        return VecValue.from_lanes(M128I, np.int32, out)


def _register_moves_blends_packs() -> None:
    @register("_mm_movehl_ps")
    def movehl(ctx, a, b):
        return VecValue(M128, np.concatenate([b.data[8:], a.data[8:]]))

    @register("_mm_movelh_ps")
    def movelh(ctx, a, b):
        return VecValue(M128, np.concatenate([a.data[:8], b.data[:8]]))

    @register("_mm_movehdup_ps")
    def movehdup(ctx, a):
        va = a.view(np.float32)
        return VecValue.from_lanes(M128, np.float32, va[[1, 1, 3, 3]])

    @register("_mm_moveldup_ps")
    def moveldup(ctx, a):
        va = a.view(np.float32)
        return VecValue.from_lanes(M128, np.float32, va[[0, 0, 2, 2]])

    @register("_mm_movedup_pd")
    def movedup(ctx, a):
        va = a.view(np.float64)
        return VecValue.from_lanes(M128D, np.float64, va[[0, 0]])

    def _blend_imm(a: VecValue, b: VecValue, imm: int, dt: np.dtype) -> VecValue:
        va, vb = a.view(dt), b.view(dt)
        sel = np.array([(imm >> i) & 1 for i in range(va.size)], dtype=bool)
        return result(a.vt, dt, np.where(sel, vb, va))

    register_as("_mm_blend_ps", lambda ctx, a, b, imm8: _blend_imm(
        a, b, int(imm8), np.dtype(np.float32)))
    register_as("_mm256_blend_ps", lambda ctx, a, b, imm8: _blend_imm(
        a, b, int(imm8), np.dtype(np.float32)))
    register_as("_mm_blend_pd", lambda ctx, a, b, imm8: _blend_imm(
        a, b, int(imm8), np.dtype(np.float64)))
    register_as("_mm_blend_epi16", lambda ctx, a, b, imm8: _blend_imm(
        a, b, ((int(imm8) & 0xFF) | ((int(imm8) & 0xFF) << 8)),
        np.dtype(np.int16)))

    def _blendv(a: VecValue, b: VecValue, mask: VecValue,
                dt: np.dtype) -> VecValue:
        sel_dt = {4: np.int32, 8: np.int64, 1: np.int8}[dt.itemsize]
        sel = mask.view(sel_dt) < 0
        return result(a.vt, dt, np.where(sel, b.view(dt), a.view(dt)))

    register_as("_mm_blendv_ps", lambda ctx, a, b, m: _blendv(
        a, b, m, np.dtype(np.float32)))
    register_as("_mm256_blendv_ps", lambda ctx, a, b, m: _blendv(
        a, b, m, np.dtype(np.float32)))
    register_as("_mm_blendv_pd", lambda ctx, a, b, m: _blendv(
        a, b, m, np.dtype(np.float64)))
    register_as("_mm_blendv_epi8", lambda ctx, a, b, m: _blendv(
        a, b, m, np.dtype(np.int8)))
    register_as("_mm256_blendv_epi8", lambda ctx, a, b, m: _blendv(
        a, b, m, np.dtype(np.int8)))

    def _pack(a: VecValue, b: VecValue, src_dt: np.dtype, dst_dt: np.dtype,
              unsigned_sat: bool) -> VecValue:
        va, vb = a.view(src_dt), b.view(src_dt)
        tgt = np.dtype(np.uint8 if unsigned_sat and dst_dt.itemsize == 1
                       else np.uint16 if unsigned_sat else dst_dt)
        per_lane = 16 // src_dt.itemsize
        n_lanes = a.vt.bits // 128
        out = np.empty(a.vt.bits // (8 * dst_dt.itemsize), dtype=dst_dt)
        opl = per_lane * 2
        for ln in range(n_lanes):
            sa = va[ln * per_lane:(ln + 1) * per_lane]
            sb = vb[ln * per_lane:(ln + 1) * per_lane]
            packed = np.concatenate([saturate(sa, tgt), saturate(sb, tgt)])
            out[ln * opl:(ln + 1) * opl] = packed.view(dst_dt) \
                if unsigned_sat else packed
        return result(a.vt, dst_dt, out)

    for prefix in ("_mm", "_mm256"):
        register_as(f"{prefix}_packs_epi16", lambda ctx, a, b: _pack(
            a, b, np.dtype(np.int16), np.dtype(np.int8), False))
        register_as(f"{prefix}_packus_epi16", lambda ctx, a, b: _pack(
            a, b, np.dtype(np.int16), np.dtype(np.int8), True))
        register_as(f"{prefix}_packs_epi32", lambda ctx, a, b: _pack(
            a, b, np.dtype(np.int32), np.dtype(np.int16), False))
        register_as(f"{prefix}_packus_epi32", lambda ctx, a, b: _pack(
            a, b, np.dtype(np.int32), np.dtype(np.int16), True))


_register_unpacks()
_register_shuffles()
_register_permutes()
_register_moves_blends_packs()
