"""Executable semantics for the curated intrinsic core.

``registry`` maps an intrinsic name (e.g. ``"_mm256_fmadd_ps"``) to a
callable ``fn(ctx, *args)`` where ``ctx`` is the executing
:class:`~repro.simd.machine.SimdMachine` (used for the hardware RNG and
the cycle counter) and ``args`` are runtime values: :class:`VecValue`,
:class:`MaskValue`, numpy scalars, or — for memory intrinsics — a numpy
array followed (at the end of the argument list) by an integer element
offset, matching the eDSL's ``(mem_addr, offset)`` container convention.
"""

from __future__ import annotations

from typing import Callable

registry: dict[str, Callable] = {}

_catalog_names_cache: set[str] | None = None


def _catalog_names() -> set[str]:
    global _catalog_names_cache
    if _catalog_names_cache is None:
        from repro.spec.catalog import all_entries
        _catalog_names_cache = {e.name for e in all_entries("3.4")}
    return _catalog_names_cache


class UnimplementedIntrinsic(NotImplementedError):
    """The intrinsic exists in the catalog but has no executable model."""


def register(name: str):
    """Decorator registering a semantic function under an intrinsic name.

    The name must exist in the spec catalog — semantics for intrinsics
    that were never specified would be unreachable from the eDSLs.
    """

    def deco(fn: Callable) -> Callable:
        if name in registry:
            raise ValueError(f"duplicate semantics for {name}")
        if name not in _catalog_names():
            raise ValueError(f"semantics for unknown intrinsic {name}")
        registry[name] = fn
        return fn

    return deco


def register_as(name: str, fn: Callable) -> None:
    """Register ``fn`` under ``name`` when the catalog specifies it.

    Used by the systematic loops (e.g. the same lane-wise op across three
    vector widths): combinations absent from the catalog are skipped, so
    the registry is always a subset of the specification.
    """
    if name in _catalog_names() and name not in registry:
        registry[name] = fn


def lookup(name: str) -> Callable:
    if name not in registry:
        raise UnimplementedIntrinsic(
            f"intrinsic {name} has no executable semantics in the SIMD "
            f"machine; it can still be emitted by the C backend"
        )
    return registry[name]


def _load_all() -> None:
    # Import order matters only for readability; each module registers
    # its names on import.
    from repro.simd.semantics import (  # noqa: F401
        arith,
        convert,
        families,
        logic_shift,
        memory,
        mmx,
        scalar,
        shuffle,
        string_crypto,
        svml,
    )


_load_all()
