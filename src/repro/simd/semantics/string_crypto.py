"""SSE4.2 packed-string comparison and the crypto extensions.

The string semantics implement the SSE4.2 composite model faithfully:
source data interpretation (signed/unsigned bytes or words), the four
aggregation operations (equal any, ranges, equal each, equal ordered),
polarity negation, and the index/mask/flag outputs.  AES rounds use the
real SubBytes/ShiftRows/MixColumns pipeline, CLMUL is genuine carry-less
polynomial multiplication, and the SHA message intrinsics follow the SDM
formulas.
"""

from __future__ import annotations

import numpy as np

from repro.lms.types import M128I
from repro.simd.semantics import register
from repro.simd.semantics.util import result
from repro.simd.vector import VecValue

# -- SSE4.2 packed string compares -------------------------------------------

_SIDD_UBYTE_OPS = 0x00
_SIDD_UWORD_OPS = 0x01
_SIDD_SBYTE_OPS = 0x02
_SIDD_SWORD_OPS = 0x03
_SIDD_CMP_EQUAL_ANY = 0x00
_SIDD_CMP_RANGES = 0x04
_SIDD_CMP_EQUAL_EACH = 0x08
_SIDD_CMP_EQUAL_ORDERED = 0x0C
_SIDD_NEGATIVE_POLARITY = 0x10
_SIDD_MASKED_NEGATIVE_POLARITY = 0x30
_SIDD_MOST_SIGNIFICANT = 0x40
_SIDD_UNIT_MASK = 0x40


def _elements(v: VecValue, imm: int) -> np.ndarray:
    if imm & 1:  # word ops
        dt = np.int16 if imm & 2 else np.uint16
        return v.view(dt).astype(np.int64)
    dt = np.int8 if imm & 2 else np.uint8
    return v.view(dt).astype(np.int64)


def _implicit_length(v: VecValue, imm: int) -> int:
    elems = _elements(v, imm)
    zeros = np.flatnonzero(elems == 0)
    return int(zeros[0]) if zeros.size else elems.size


def _cmpstr_mask(a: VecValue, la: int, b: VecValue, lb: int,
                 imm: int) -> tuple[int, int]:
    """The composite intRes2 of the SDM, plus the element count."""
    ea, eb = _elements(a, imm), _elements(b, imm)
    n = ea.size
    la = min(abs(int(la)), n)
    lb = min(abs(int(lb)), n)
    agg = imm & 0x0C

    bits = 0
    if agg == _SIDD_CMP_EQUAL_ANY:
        for j in range(lb):
            if any(eb[j] == ea[i] for i in range(la)):
                bits |= 1 << j
    elif agg == _SIDD_CMP_RANGES:
        for j in range(lb):
            for i in range(0, la - 1, 2):
                if ea[i] <= eb[j] <= ea[i + 1]:
                    bits |= 1 << j
                    break
    elif agg == _SIDD_CMP_EQUAL_EACH:
        for j in range(n):
            in_a, in_b = j < la, j < lb
            if in_a and in_b:
                if ea[j] == eb[j]:
                    bits |= 1 << j
            elif not in_a and not in_b:
                bits |= 1 << j
    else:  # EQUAL_ORDERED: substring search for a within b
        for j in range(n):
            match = True
            for i in range(la):
                if j + i >= lb:
                    break  # past the end of b: partial match allowed
                if ea[i] != eb[j + i]:
                    match = False
                    break
            if match and j < max(lb, 1):
                bits |= 1 << j
        if la == 0:
            bits = (1 << n) - 1

    # Polarity.
    pol = imm & 0x30
    if pol == _SIDD_NEGATIVE_POLARITY:
        bits ^= (1 << n) - 1
    elif pol == _SIDD_MASKED_NEGATIVE_POLARITY:
        bits ^= (1 << lb) - 1
    return bits & ((1 << n) - 1), n


def _index_of(bits: int, n: int, imm: int) -> int:
    if bits == 0:
        return n
    if imm & _SIDD_MOST_SIGNIFICANT:
        return bits.bit_length() - 1
    return (bits & -bits).bit_length() - 1


@register("_mm_cmpestri")
def cmpestri(ctx, a, la, b, lb, imm8):
    bits, n = _cmpstr_mask(a, int(la), b, int(lb), int(imm8))
    return np.int32(_index_of(bits, n, int(imm8)))


@register("_mm_cmpestrm")
def cmpestrm(ctx, a, la, b, lb, imm8):
    imm = int(imm8)
    bits, n = _cmpstr_mask(a, int(la), b, int(lb), imm)
    if imm & _SIDD_UNIT_MASK:
        width = 16 // n
        out = np.zeros(16, dtype=np.uint8)
        for j in range(n):
            if (bits >> j) & 1:
                out[j * width:(j + 1) * width] = 0xFF
        return VecValue(M128I, out)
    return VecValue.from_lanes(M128I, np.uint64, [bits, 0])


@register("_mm_cmpistri")
def cmpistri(ctx, a, b, imm8):
    imm = int(imm8)
    la = _implicit_length(a, imm)
    lb = _implicit_length(b, imm)
    bits, n = _cmpstr_mask(a, la, b, lb, imm)
    return np.int32(_index_of(bits, n, imm))


@register("_mm_cmpistrm")
def cmpistrm(ctx, a, b, imm8):
    imm = int(imm8)
    la = _implicit_length(a, imm)
    lb = _implicit_length(b, imm)
    bits, n = _cmpstr_mask(a, la, b, lb, imm)
    if imm & _SIDD_UNIT_MASK:
        width = 16 // n
        out = np.zeros(16, dtype=np.uint8)
        for j in range(n):
            if (bits >> j) & 1:
                out[j * width:(j + 1) * width] = 0xFF
        return VecValue(M128I, out)
    return VecValue.from_lanes(M128I, np.uint64, [bits, 0])


def _flag(fn):
    return fn


@register("_mm_cmpistrz")
def cmpistrz(ctx, a, b, imm8):
    return np.int32(1 if _implicit_length(b, int(imm8))
                    < _elements(b, int(imm8)).size else 0)


@register("_mm_cmpistrs")
def cmpistrs(ctx, a, b, imm8):
    return np.int32(1 if _implicit_length(a, int(imm8))
                    < _elements(a, int(imm8)).size else 0)


@register("_mm_cmpistrc")
def cmpistrc(ctx, a, b, imm8):
    imm = int(imm8)
    bits, _ = _cmpstr_mask(a, _implicit_length(a, imm), b,
                           _implicit_length(b, imm), imm)
    return np.int32(1 if bits else 0)


@register("_mm_cmpistro")
def cmpistro(ctx, a, b, imm8):
    imm = int(imm8)
    bits, _ = _cmpstr_mask(a, _implicit_length(a, imm), b,
                           _implicit_length(b, imm), imm)
    return np.int32(bits & 1)


@register("_mm_cmpistra")
def cmpistra(ctx, a, b, imm8):
    imm = int(imm8)
    lb = _implicit_length(b, imm)
    bits, n = _cmpstr_mask(a, _implicit_length(a, imm), b, lb, imm)
    return np.int32(1 if bits == 0 and lb == n else 0)


@register("_mm_cmpestrz")
def cmpestrz(ctx, a, la, b, lb, imm8):
    n = _elements(b, int(imm8)).size
    return np.int32(1 if abs(int(lb)) < n else 0)


@register("_mm_cmpestrs")
def cmpestrs(ctx, a, la, b, lb, imm8):
    n = _elements(a, int(imm8)).size
    return np.int32(1 if abs(int(la)) < n else 0)


@register("_mm_cmpestrc")
def cmpestrc(ctx, a, la, b, lb, imm8):
    bits, _ = _cmpstr_mask(a, int(la), b, int(lb), int(imm8))
    return np.int32(1 if bits else 0)


@register("_mm_cmpestro")
def cmpestro(ctx, a, la, b, lb, imm8):
    bits, _ = _cmpstr_mask(a, int(la), b, int(lb), int(imm8))
    return np.int32(bits & 1)


@register("_mm_cmpestra")
def cmpestra(ctx, a, la, b, lb, imm8):
    imm = int(imm8)
    bits, n = _cmpstr_mask(a, int(la), b, int(lb), imm)
    return np.int32(1 if bits == 0 and abs(int(lb)) >= n else 0)


# -- AES ----------------------------------------------------------------------

_SBOX: list[int] | None = None


def _sbox() -> list[int]:
    global _SBOX
    if _SBOX is None:
        # Generate the AES S-box from the multiplicative inverse in
        # GF(2^8) followed by the affine transform.
        p, q = 1, 1
        sbox = [0] * 256
        while True:
            # p *= 3 in GF(2^8)
            p = p ^ ((p << 1) & 0xFF) ^ (0x1B if p & 0x80 else 0)
            # q /= 3
            q ^= q << 1
            q ^= q << 2
            q ^= q << 4
            q &= 0xFF
            if q & 0x80:
                q ^= 0x09
            x = q ^ ((q << 1) | (q >> 7)) ^ ((q << 2) | (q >> 6)) \
                ^ ((q << 3) | (q >> 5)) ^ ((q << 4) | (q >> 4))
            sbox[p] = (x ^ 0x63) & 0xFF
            if p == 1:
                break
        sbox[0] = 0x63
        _SBOX = sbox
    return _SBOX


def _xtime(x: int) -> int:
    return ((x << 1) ^ 0x1B) & 0xFF if x & 0x80 else (x << 1)


def _mix_column(col: list[int]) -> list[int]:
    a = col
    return [
        _xtime(a[0]) ^ (_xtime(a[1]) ^ a[1]) ^ a[2] ^ a[3],
        a[0] ^ _xtime(a[1]) ^ (_xtime(a[2]) ^ a[2]) ^ a[3],
        a[0] ^ a[1] ^ _xtime(a[2]) ^ (_xtime(a[3]) ^ a[3]),
        (_xtime(a[0]) ^ a[0]) ^ a[1] ^ a[2] ^ _xtime(a[3]),
    ]


@register("_mm_aesenc_si128")
def aesenc(ctx, a, round_key):
    state = list(a.view(np.uint8))
    sbox = _sbox()
    # SubBytes + ShiftRows (column-major state layout).
    sub = [sbox[int(x)] for x in state]
    shifted = [0] * 16
    for col in range(4):
        for row in range(4):
            shifted[col * 4 + row] = sub[((col + row) % 4) * 4 + row]
    out = []
    for col in range(4):
        out += _mix_column(shifted[col * 4: col * 4 + 4])
    mixed = np.array(out, dtype=np.uint8)
    return VecValue(M128I, mixed ^ round_key.view(np.uint8))


@register("_mm_aesdec_si128")
def aesdec(ctx, a, round_key):
    # One equivalent-inverse-cipher round: InvShiftRows, InvSubBytes,
    # InvMixColumns, AddRoundKey.
    state = list(a.view(np.uint8))
    sbox = _sbox()
    inv_sbox = [0] * 256
    for i, v in enumerate(sbox):
        inv_sbox[v] = i
    shifted = [0] * 16
    for col in range(4):
        for row in range(4):
            shifted[col * 4 + row] = state[((col - row) % 4) * 4 + row]
    sub = [inv_sbox[int(x)] for x in shifted]

    def gmul(x: int, y: int) -> int:
        r = 0
        for _ in range(8):
            if y & 1:
                r ^= x
            x = _xtime(x)
            y >>= 1
        return r

    out = []
    for col in range(4):
        c = sub[col * 4: col * 4 + 4]
        out += [
            gmul(c[0], 14) ^ gmul(c[1], 11) ^ gmul(c[2], 13) ^ gmul(c[3], 9),
            gmul(c[0], 9) ^ gmul(c[1], 14) ^ gmul(c[2], 11) ^ gmul(c[3], 13),
            gmul(c[0], 13) ^ gmul(c[1], 9) ^ gmul(c[2], 14) ^ gmul(c[3], 11),
            gmul(c[0], 11) ^ gmul(c[1], 13) ^ gmul(c[2], 9) ^ gmul(c[3], 14),
        ]
    mixed = np.array(out, dtype=np.uint8)
    return VecValue(M128I, mixed ^ round_key.view(np.uint8))


# -- CLMUL / SHA ---------------------------------------------------------------


@register("_mm_clmulepi64_si128")
def clmul(ctx, a, b, imm8):
    imm = int(imm8)
    qa = int(a.view(np.uint64)[(imm >> 0) & 1])
    qb = int(b.view(np.uint64)[(imm >> 4) & 1])
    acc = 0
    for i in range(64):
        if (qb >> i) & 1:
            acc ^= qa << i
    lo = acc & ((1 << 64) - 1)
    hi = acc >> 64
    return VecValue.from_lanes(M128I, np.uint64, [lo, hi])


@register("_mm_sha1msg1_epu32")
def sha1msg1(ctx, a, b):
    w = list(a.view(np.uint32)[::-1]) + list(b.view(np.uint32)[::-1])
    # W0..W3 = a (W0 in the high lane), W4, W5 = b's high lanes.
    w0, w1, w2, w3 = (int(x) for x in w[:4])
    w4, w5 = int(w[4]), int(w[5])
    out = [w2 ^ w0, w3 ^ w1, w4 ^ w2, w5 ^ w3]
    return VecValue.from_lanes(M128I, np.uint32, out[::-1])


@register("_mm_sha256msg1_epu32")
def sha256msg1(ctx, a, b):
    def sigma0(x: int) -> int:
        ror = lambda v, r: ((v >> r) | (v << (32 - r))) & 0xFFFFFFFF
        return ror(x, 7) ^ ror(x, 18) ^ (x >> 3)

    w = [int(x) for x in a.view(np.uint32)] + [int(b.view(np.uint32)[0])]
    out = [(w[i] + sigma0(w[i + 1])) & 0xFFFFFFFF for i in range(4)]
    return VecValue.from_lanes(M128I, np.uint32, out)
