"""Memory semantics: loads, stores, sets, broadcasts, gathers.

Memory intrinsics follow the eDSL container convention: each pointer
parameter is paired with an integer *element offset* appended at the end
of the argument list (the paper's ``(mem_addr, mem_addrOffset)``), so
``_mm256_storeu_ps(a, v, i)`` stores ``v`` at ``&a[i]``.
"""

from __future__ import annotations

import numpy as np

from repro.lms.types import (
    M128, M128D, M128I, M256, M256D, M256I, M512, M512D, M512I, M64,
    VectorType,
)
from repro.simd.semantics import register, register_as
from repro.simd.vector import VecValue


def read_vec(vt: VectorType, arr: np.ndarray, offset: int) -> VecValue:
    """Read ``vt.bits`` bits starting at element ``offset`` of ``arr``."""
    nbytes = vt.bits // 8
    byte_off = int(offset) * arr.itemsize
    raw = arr.view(np.uint8)[byte_off: byte_off + nbytes]
    if raw.size != nbytes:
        raise IndexError(
            f"SIMD load of {nbytes} bytes at element {offset} runs off the "
            f"end of an array of {arr.nbytes} bytes"
        )
    return VecValue(vt, raw.copy())


def write_vec(arr: np.ndarray, offset: int, value: VecValue) -> None:
    """Store a register to element ``offset`` of ``arr``."""
    nbytes = value.vt.bits // 8
    byte_off = int(offset) * arr.itemsize
    view = arr.view(np.uint8)
    if byte_off + nbytes > view.size:
        raise IndexError(
            f"SIMD store of {nbytes} bytes at element {offset} runs off the "
            f"end of an array of {arr.nbytes} bytes"
        )
    view[byte_off: byte_off + nbytes] = value.data


_LOADS = {
    "_mm_loadu_ps": M128, "_mm_load_ps": M128,
    "_mm_loadu_pd": M128D, "_mm_load_pd": M128D,
    "_mm_loadu_si128": M128I, "_mm_load_si128": M128I,
    "_mm_lddqu_si128": M128I,
    "_mm256_loadu_ps": M256, "_mm256_load_ps": M256,
    "_mm256_loadu_pd": M256D, "_mm256_load_pd": M256D,
    "_mm256_loadu_si256": M256I,
    "_mm512_loadu_ps": M512,
    "_mm_stream_load_si128": M128I,
}

_STORES = {
    "_mm_storeu_ps", "_mm_store_ps", "_mm_storeu_pd", "_mm_store_pd",
    "_mm_storeu_si128", "_mm_store_si128", "_mm256_storeu_ps",
    "_mm256_store_ps", "_mm256_storeu_pd", "_mm256_store_pd",
    "_mm256_storeu_si256", "_mm512_storeu_ps", "_mm_stream_ps",
    "_mm_stream_si128",
}


def _register_loads_stores() -> None:
    for name, vt in _LOADS.items():
        def load(ctx, arr, offset, _vt=vt):
            return read_vec(_vt, arr, offset)

        register_as(name, load)

    for name in _STORES:
        def store(ctx, arr, value, offset):
            write_vec(arr, offset, value)

        register_as(name, store)

    @register("_mm_store_pd1")
    def store_pd1(ctx, arr, value, offset):
        lo = value.view(np.float64)[0]
        byte_off = int(offset) * arr.itemsize
        arr.view(np.uint8)[byte_off: byte_off + 16] = VecValue.from_lanes(
            M128D, np.float64, [lo, lo]).data

    @register("_mm_loaddup_pd")
    def loaddup_pd(ctx, arr, offset):
        x = arr.view(np.float64)[int(offset)] if arr.dtype == np.float64 \
            else np.frombuffer(arr.view(np.uint8)[
                int(offset) * arr.itemsize: int(offset) * arr.itemsize + 8
            ].tobytes(), np.float64)[0]
        return VecValue.from_lanes(M128D, np.float64, [x, x])


def _register_sets() -> None:
    sets = (
        ("_mm_set1_ps", M128, np.float32), ("_mm256_set1_ps", M256, np.float32),
        ("_mm512_set1_ps", M512, np.float32),
        ("_mm_set1_pd", M128D, np.float64),
        ("_mm256_set1_pd", M256D, np.float64),
        ("_mm_set1_epi8", M128I, np.int8), ("_mm_set1_epi16", M128I, np.int16),
        ("_mm_set1_epi32", M128I, np.int32),
        ("_mm_set1_epi64x", M128I, np.int64),
        ("_mm256_set1_epi8", M256I, np.int8),
        ("_mm256_set1_epi16", M256I, np.int16),
        ("_mm256_set1_epi32", M256I, np.int32),
        ("_mm256_set1_epi64x", M256I, np.int64),
        ("_mm_set1_pi8", M64, np.int8), ("_mm_set1_pi16", M64, np.int16),
        ("_mm_set1_pi32", M64, np.int32),
    )
    for name, vt, dt in sets:
        def set1(ctx, a, _vt=vt, _dt=dt):
            # C semantics: integer arguments truncate (wrap) to the lane
            # width; numpy scalar constructors would raise instead.
            with np.errstate(over="ignore"):
                value = np.array(a).astype(_dt)
            return VecValue.broadcast(_vt, _dt, value)

        register_as(name, set1)

    zeros = (("_mm_setzero_ps", M128), ("_mm_setzero_pd", M128D),
             ("_mm_setzero_si128", M128I), ("_mm256_setzero_ps", M256),
             ("_mm256_setzero_pd", M256D), ("_mm256_setzero_si256", M256I),
             ("_mm512_setzero_ps", M512), ("_mm_setzero_si64", M64))
    for name, vt in zeros:
        def setzero(ctx, _vt=vt):
            return VecValue.zero(_vt)

        register_as(name, setzero)

    @register("_mm_set_ps")
    def set_ps(ctx, e3, e2, e1, e0):
        return VecValue.from_lanes(M128, np.float32, [e0, e1, e2, e3])

    @register("_mm256_set_ps")
    def set_ps256(ctx, e7, e6, e5, e4, e3, e2, e1, e0):
        return VecValue.from_lanes(M256, np.float32,
                                   [e0, e1, e2, e3, e4, e5, e6, e7])

    @register("_mm256_set_m128")
    def set_m128(ctx, hi, lo):
        return VecValue(M256, np.concatenate([lo.data, hi.data]))

    @register("_mm256_broadcast_ss")
    def broadcast_ss(ctx, arr, offset):
        x = np.frombuffer(arr.view(np.uint8)[
            int(offset) * arr.itemsize: int(offset) * arr.itemsize + 4
        ].tobytes(), np.float32)[0]
        return VecValue.broadcast(M256, np.float32, x)

    @register("_mm256_broadcast_sd")
    def broadcast_sd(ctx, arr, offset):
        x = np.frombuffer(arr.view(np.uint8)[
            int(offset) * arr.itemsize: int(offset) * arr.itemsize + 8
        ].tobytes(), np.float64)[0]
        return VecValue.broadcast(M256D, np.float64, x)

    @register("_mm256_broadcast_ps")
    def broadcast_ps(ctx, arr, offset):
        lo = read_vec(M128, arr, offset)
        return VecValue(M256, np.concatenate([lo.data, lo.data]))


def _register_masked_and_gather() -> None:
    @register("_mm256_maskload_ps")
    def maskload_ps(ctx, arr, mask, offset):
        sel = (mask.view(np.int32) < 0)
        out = np.zeros(8, dtype=np.float32)
        base = int(offset)
        fa = arr.view(np.float32) if arr.dtype == np.float32 else None
        for i in range(8):
            if sel[i]:
                out[i] = fa[base + i]
        return VecValue.from_lanes(M256, np.float32, out)

    @register("_mm256_maskstore_ps")
    def maskstore_ps(ctx, arr, mask, value, offset):
        sel = (mask.view(np.int32) < 0)
        lanes = value.view(np.float32)
        base = int(offset)
        fa = arr.view(np.float32)
        for i in range(8):
            if sel[i]:
                fa[base + i] = lanes[i]

    def _gather(vt, dtype, scale_unit):
        def gather(ctx, arr, vindex, scale, offset):
            idx = vindex.view(np.int32)
            lanes = vt.bits // (np.dtype(dtype).itemsize * 8)
            raw = arr.view(np.uint8)
            out = np.empty(lanes, dtype=dtype)
            itemsize = np.dtype(dtype).itemsize
            base_bytes = int(offset) * arr.itemsize
            for i in range(lanes):
                b = base_bytes + int(idx[i]) * int(scale)
                out[i] = np.frombuffer(
                    raw[b: b + itemsize].tobytes(), dtype)[0]
            return VecValue.from_lanes(vt, dtype, out)

        return gather

    register_as("_mm256_i32gather_epi32", _gather(M256I, np.int32, 4))
    register_as("_mm256_i32gather_ps", _gather(M256, np.float32, 4))
    register_as("_mm_i32gather_epi32", _gather(M128I, np.int32, 4))


_register_loads_stores()
_register_sets()
_register_masked_and_gather()
