"""MMX semantics: the 64-bit integer ISA, including ``_m_*`` aliases."""

from __future__ import annotations

import numpy as np

from repro.lms.types import M128, M64
from repro.simd.semantics import register, register_as, registry
from repro.simd.semantics.util import cmp_mask, result, saturate
from repro.simd.vector import VecValue


def _register_compares_unpacks() -> None:
    for bits in (8, 16, 32):
        dt = np.dtype(f"int{bits}")

        def cmpeq(ctx, a, b, _dt=dt):
            return result(a.vt, _dt, cmp_mask(_dt, a.view(_dt) == b.view(_dt)))

        def cmpgt(ctx, a, b, _dt=dt):
            return result(a.vt, _dt, cmp_mask(_dt, a.view(_dt) > b.view(_dt)))

        register_as(f"_mm_cmpeq_pi{bits}", cmpeq)
        register_as(f"_mm_cmpgt_pi{bits}", cmpgt)

        def unpack(half):
            def fn(ctx, a, b, _dt=dt, _half=half):
                va, vb = a.view(_dt), b.view(_dt)
                h = va.size // 2
                src = slice(0, h) if _half == "lo" else slice(h, va.size)
                out = np.empty_like(va)
                out[0::2] = va[src]
                out[1::2] = vb[src]
                return result(a.vt, _dt, out)

            return fn

        register_as(f"_mm_unpacklo_pi{bits}", unpack("lo"))
        register_as(f"_mm_unpackhi_pi{bits}", unpack("hi"))

    def packs(src_dt, dst_dt):
        def fn(ctx, a, b, _s=np.dtype(src_dt), _d=np.dtype(dst_dt)):
            merged = np.concatenate([a.view(_s), b.view(_s)])
            return result(a.vt, _d, saturate(merged, _d))

        return fn

    register_as("_mm_packs_pi16", packs(np.int16, np.int8))
    register_as("_mm_packs_pi32", packs(np.int32, np.int16))


def _register_shifts_moves() -> None:
    for bits in (16, 32):
        dt = np.dtype(f"int{bits}")
        udt = np.dtype(f"uint{bits}")

        def slli(ctx, a, imm8, _dt=dt, _udt=udt, _bits=bits):
            imm = int(imm8)
            if imm >= _bits:
                return VecValue.zero(a.vt)
            return result(a.vt, _dt, (a.view(_udt) << _udt.type(imm))
                          .view(_dt))

        def srli(ctx, a, imm8, _dt=dt, _udt=udt, _bits=bits):
            imm = int(imm8)
            if imm >= _bits:
                return VecValue.zero(a.vt)
            return result(a.vt, _dt, (a.view(_udt) >> _udt.type(imm))
                          .view(_dt))

        def srai(ctx, a, imm8, _dt=dt, _bits=bits):
            imm = min(int(imm8), _bits - 1)
            return result(a.vt, _dt, a.view(_dt) >> _dt.type(imm))

        register_as(f"_mm_slli_pi{bits}", slli)
        register_as(f"_mm_srli_pi{bits}", srli)
        register_as(f"_mm_srai_pi{bits}", srai)

        def sll(ctx, a, count, _dt=dt, _udt=udt, _bits=bits):
            c = int(count.view(np.int64)[0])
            if c >= _bits:
                return VecValue.zero(a.vt)
            return result(a.vt, _dt, (a.view(_udt) << _udt.type(c))
                          .view(_dt))

        def srl(ctx, a, count, _dt=dt, _udt=udt, _bits=bits):
            c = int(count.view(np.int64)[0])
            if c >= _bits:
                return VecValue.zero(a.vt)
            return result(a.vt, _dt, (a.view(_udt) >> _udt.type(c))
                          .view(_dt))

        def sra(ctx, a, count, _dt=dt, _bits=bits):
            c = min(int(count.view(np.int64)[0]), _bits - 1)
            return result(a.vt, _dt, a.view(_dt) >> _dt.type(c))

        register_as(f"_mm_sll_pi{bits}", sll)
        register_as(f"_mm_srl_pi{bits}", srl)
        register_as(f"_mm_sra_pi{bits}", sra)

    @register("_mm_slli_si64")
    def slli_si64(ctx, a, imm8):
        imm = int(imm8)
        if imm >= 64:
            return VecValue.zero(M64)
        return result(M64, np.dtype(np.int64),
                      (a.view(np.uint64) << np.uint64(imm)).view(np.int64))

    @register("_mm_srli_si64")
    def srli_si64(ctx, a, imm8):
        imm = int(imm8)
        if imm >= 64:
            return VecValue.zero(M64)
        return result(M64, np.dtype(np.int64),
                      (a.view(np.uint64) >> np.uint64(imm)).view(np.int64))

    @register("_mm_cvtsi32_si64")
    def cvtsi32_si64(ctx, a):
        return VecValue.from_lanes(M64, np.int64, [np.int64(np.int32(a))])

    @register("_mm_cvtsi64_si32")
    def cvtsi64_si32(ctx, a):
        return a.view(np.int32)[0].copy()

    @register("_mm_set_pi8")
    def set_pi8(ctx, e7, e6, e5, e4, e3, e2, e1, e0):
        vals = np.array([e0, e1, e2, e3, e4, e5, e6, e7]).astype(np.int8)
        return VecValue.from_lanes(M64, np.int8, vals)

    @register("_mm_set_pi16")
    def set_pi16(ctx, e3, e2, e1, e0):
        vals = np.array([e0, e1, e2, e3]).astype(np.int16)
        return VecValue.from_lanes(M64, np.int16, vals)

    @register("_mm_set_pi32")
    def set_pi32(ctx, e1, e0):
        vals = np.array([e0, e1]).astype(np.int32)
        return VecValue.from_lanes(M64, np.int32, vals)


def _register_sse_mmx_ext() -> None:
    ops = {
        "_mm_avg_pu8": ("uint8", lambda a, b:
                        ((a.astype(np.uint32) + b.astype(np.uint32) + 1)
                         >> 1).astype(np.uint8)),
        "_mm_avg_pu16": ("uint16", lambda a, b:
                         ((a.astype(np.uint32) + b.astype(np.uint32) + 1)
                          >> 1).astype(np.uint16)),
        "_mm_max_pi16": ("int16", np.maximum),
        "_mm_min_pi16": ("int16", np.minimum),
        "_mm_max_pu8": ("uint8", np.maximum),
        "_mm_min_pu8": ("uint8", np.minimum),
        "_mm_mulhi_pu16": ("uint16", lambda a, b:
                           ((a.astype(np.uint32) * b.astype(np.uint32))
                            >> 16).astype(np.uint16)),
    }
    for name, (dtype, fn) in ops.items():
        def sem(ctx, a, b, _dt=np.dtype(dtype), _fn=fn):
            return result(a.vt, _dt, _fn(a.view(_dt), b.view(_dt)))

        register_as(name, sem)

    @register("_mm_sad_pu8")
    def sad_pu8(ctx, a, b):
        diff = np.abs(a.view(np.uint8).astype(np.int32)
                      - b.view(np.uint8).astype(np.int32))
        return VecValue.from_lanes(M64, np.int64, [int(diff.sum())])

    @register("_mm_shuffle_pi16")
    def shuffle_pi16(ctx, a, imm8):
        imm = int(imm8)
        va = a.view(np.int16)
        out = np.array([va[(imm >> (2 * i)) & 3] for i in range(4)],
                       dtype=np.int16)
        return VecValue.from_lanes(M64, np.int16, out)

    @register("_mm_extract_pi16")
    def extract_pi16(ctx, a, imm8):
        return np.int32(a.view(np.int16)[int(imm8) & 3])

    @register("_mm_insert_pi16")
    def insert_pi16(ctx, a, i, imm8):
        out = a.view(np.int16).copy()
        out[int(imm8) & 3] = np.int16(np.int32(i))
        return VecValue.from_lanes(M64, np.int16, out)

    @register("_mm_movemask_pi8")
    def movemask_pi8(ctx, a):
        signs = a.view(np.uint8) >> np.uint8(7)
        return np.int32(int(sum(int(s) << i for i, s in enumerate(signs))))

    @register("_mm_loadh_pi")
    def loadh_pi(ctx, a, arr, offset):
        out = a.data.copy()
        byte_off = int(offset) * arr.itemsize
        out[8:] = arr.view(np.uint8)[byte_off: byte_off + 8]
        return VecValue(M128, out)

    @register("_mm_loadl_pi")
    def loadl_pi(ctx, a, arr, offset):
        out = a.data.copy()
        byte_off = int(offset) * arr.itemsize
        out[:8] = arr.view(np.uint8)[byte_off: byte_off + 8]
        return VecValue(M128, out)

    @register("_mm_storeh_pi")
    def storeh_pi(ctx, arr, a, offset):
        byte_off = int(offset) * arr.itemsize
        arr.view(np.uint8)[byte_off: byte_off + 8] = a.data[8:]

    @register("_mm_storel_pi")
    def storel_pi(ctx, arr, a, offset):
        byte_off = int(offset) * arr.itemsize
        arr.view(np.uint8)[byte_off: byte_off + 8] = a.data[:8]


_ALIASES = {
    "_m_paddb": "_mm_add_pi8", "_m_paddw": "_mm_add_pi16",
    "_m_paddd": "_mm_add_pi32", "_m_psubb": "_mm_sub_pi8",
    "_m_psubw": "_mm_sub_pi16", "_m_psubd": "_mm_sub_pi32",
    "_m_paddsb": "_mm_adds_pi8", "_m_paddsw": "_mm_adds_pi16",
    "_m_paddusb": "_mm_adds_pu8", "_m_paddusw": "_mm_adds_pu16",
    "_m_psubsb": "_mm_subs_pi8", "_m_psubsw": "_mm_subs_pi16",
    "_m_psubusb": "_mm_subs_pu8", "_m_psubusw": "_mm_subs_pu16",
    "_m_pmullw": "_mm_mullo_pi16", "_m_pmulhw": "_mm_mulhi_pi16",
    "_m_pmaddwd": "_mm_madd_pi16",
    "_m_pand": "_mm_and_si64", "_m_por": "_mm_or_si64",
    "_m_pxor": "_mm_xor_si64",
    "_m_pcmpeqb": "_mm_cmpeq_pi8", "_m_pcmpeqw": "_mm_cmpeq_pi16",
    "_m_pcmpeqd": "_mm_cmpeq_pi32",
    "_m_pcmpgtb": "_mm_cmpgt_pi8", "_m_pcmpgtw": "_mm_cmpgt_pi16",
    "_m_pcmpgtd": "_mm_cmpgt_pi32",
    "_m_punpcklbw": "_mm_unpacklo_pi8",
    "_m_punpcklwd": "_mm_unpacklo_pi16",
    "_m_punpckldq": "_mm_unpacklo_pi32",
    "_m_punpckhbw": "_mm_unpackhi_pi8",
    "_m_punpckhwd": "_mm_unpackhi_pi16",
    "_m_punpckhdq": "_mm_unpackhi_pi32",
    "_m_packsswb": "_mm_packs_pi16", "_m_packssdw": "_mm_packs_pi32",
    "_m_from_int": "_mm_cvtsi32_si64", "_m_to_int": "_mm_cvtsi64_si32",
    "_m_psllw": "_mm_sll_pi16", "_m_pslld": "_mm_sll_pi32",
    "_m_psrlw": "_mm_srl_pi16", "_m_psrld": "_mm_srl_pi32",
    "_m_psraw": "_mm_sra_pi16", "_m_psrad": "_mm_sra_pi32",
}


def _register_aliases() -> None:
    for alias, canonical in _ALIASES.items():
        if canonical in registry:
            register_as(alias, registry[canonical])


_register_compares_unpacks()
_register_shifts_moves()
_register_sse_mmx_ext()
_register_aliases()
