"""Logical and shift semantics (bitwise ops operate on raw bytes)."""

from __future__ import annotations

import numpy as np

from repro.simd.semantics import register, register_as
from repro.simd.semantics.util import DTYPE_BY_SUFFIX, result
from repro.simd.vector import VecValue

_PREFIXES = ("_mm", "_mm256", "_mm512")


def _bitwise(fn):
    def sem(ctx, a: VecValue, b: VecValue) -> VecValue:
        return VecValue(a.vt, fn(a.data, b.data))

    return sem


def _register_bitwise() -> None:
    ops = (("and", lambda a, b: a & b),
           ("or", lambda a, b: a | b),
           ("xor", lambda a, b: a ^ b),
           ("andnot", lambda a, b: ~a & b))
    for op, fn in ops:
        for suffix in ("ps", "pd"):
            for prefix in _PREFIXES:
                register_as(f"{prefix}_{op}_{suffix}", _bitwise(fn))
        register_as(f"_mm_{op}_si128", _bitwise(fn))
        register_as(f"_mm256_{op}_si256", _bitwise(fn))
        register_as(f"_mm_{op}_si64", _bitwise(fn))
        for bits in (8, 16, 32, 64):
            register_as(f"_mm512_{op}_epi{bits}", _bitwise(fn))

    @register("_mm_testz_si128")
    def testz(ctx, a, b):
        return np.int32(0 if np.any(a.data & b.data) else 1)

    @register("_mm_testc_si128")
    def testc(ctx, a, b):
        return np.int32(0 if np.any(~a.data & b.data) else 1)

    @register("_mm_testnzc_si128")
    def testnzc(ctx, a, b):
        zf = not np.any(a.data & b.data)
        cf = not np.any(~a.data & b.data)
        return np.int32(0 if (zf or cf) else 1)


def _register_shifts() -> None:
    for bits in (16, 32, 64):
        dt = DTYPE_BY_SUFFIX[f"epi{bits}"]
        udt = DTYPE_BY_SUFFIX[f"epu{bits}"]
        for prefix in _PREFIXES:
            def slli(ctx, a, imm8, _udt=udt, _dt=dt, _bits=bits):
                imm = int(imm8)
                if imm >= _bits:
                    return VecValue.zero(a.vt)
                return result(a.vt, _dt,
                              (a.view(_udt) << _udt.type(imm)).view(_dt))

            def srli(ctx, a, imm8, _udt=udt, _dt=dt, _bits=bits):
                imm = int(imm8)
                if imm >= _bits:
                    return VecValue.zero(a.vt)
                return result(a.vt, _dt,
                              (a.view(_udt) >> _udt.type(imm)).view(_dt))

            register_as(f"{prefix}_slli_epi{bits}", slli)
            register_as(f"{prefix}_srli_epi{bits}", srli)
        if bits < 64:
            for prefix in _PREFIXES:
                def srai(ctx, a, imm8, _dt=dt, _bits=bits):
                    imm = min(int(imm8), _bits - 1)
                    return result(a.vt, _dt, a.view(_dt) >> _dt.type(imm))

                register_as(f"{prefix}_srai_epi{bits}", srai)
        # Per-lane variable shifts (AVX2).
        if bits in (32, 64):
            for prefix in ("_mm", "_mm256"):
                def sllv(ctx, a, count, _udt=udt, _dt=dt, _bits=bits):
                    c = count.view(_udt)
                    out = np.where(c < _bits, a.view(_udt) << (c % _bits), 0)
                    return result(a.vt, _dt, out.astype(_udt).view(_dt))

                def srlv(ctx, a, count, _udt=udt, _dt=dt, _bits=bits):
                    c = count.view(_udt)
                    out = np.where(c < _bits, a.view(_udt) >> (c % _bits), 0)
                    return result(a.vt, _dt, out.astype(_udt).view(_dt))

                register_as(f"{prefix}_sllv_epi{bits}", sllv)
                register_as(f"{prefix}_srlv_epi{bits}", srlv)

    # Byte shifts within 128-bit lanes (AVX2).
    @register("_mm256_bslli_epi128")
    def bslli(ctx, a, imm8):
        imm = min(int(imm8), 16)
        out = np.zeros_like(a.data)
        for ln in range(2):
            lane = a.data[ln * 16:(ln + 1) * 16]
            out[ln * 16 + imm:(ln + 1) * 16] = lane[: 16 - imm]
        return VecValue(a.vt, out)

    @register("_mm256_bsrli_epi128")
    def bsrli(ctx, a, imm8):
        imm = min(int(imm8), 16)
        out = np.zeros_like(a.data)
        for ln in range(2):
            lane = a.data[ln * 16:(ln + 1) * 16]
            out[ln * 16:(ln + 1) * 16 - imm] = lane[imm:]
        return VecValue(a.vt, out)


def _register_movemask() -> None:
    @register("_mm_movemask_ps")
    def movemask_ps(ctx, a):
        signs = a.view(np.uint32) >> np.uint32(31)
        return np.int32(int(sum(int(s) << i for i, s in enumerate(signs))))

    @register("_mm256_movemask_ps")
    def movemask_ps256(ctx, a):
        signs = a.view(np.uint32) >> np.uint32(31)
        return np.int32(int(sum(int(s) << i for i, s in enumerate(signs))))

    @register("_mm_movemask_epi8")
    def movemask_epi8(ctx, a):
        signs = a.view(np.uint8) >> np.uint8(7)
        return np.int32(int(sum(int(s) << i for i, s in enumerate(signs))))

    @register("_mm256_movemask_epi8")
    def movemask_epi8_256(ctx, a):
        signs = a.view(np.uint8) >> np.uint8(7)
        v = sum(int(s) << i for i, s in enumerate(signs))
        return np.int32(v - (1 << 32) if v >= (1 << 31) else v)


_register_bitwise()
_register_shifts()
_register_movemask()
