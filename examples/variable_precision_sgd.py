"""Stochastic gradient descent on the variable-precision virtual ISA.

The paper's Section 4 use case: SGD's two building blocks are a
dot-product and a scale-and-add; low precision cuts both compute and
data movement.  This example trains a linear model with gradients
computed through the 32/16/8/4-bit dot products of the virtual ISA
(``dot_ps_step`` / ``dot_ps``) and reports final losses plus the
Figure 7 speedups from the cost model.

Run:  python examples/variable_precision_sgd.py
"""

import numpy as np

from repro.quant import dot_ps_step, make_staged_dot, quantize_stochastic
from repro.simd import execute_staged
from repro.timing import CostModel
from repro.timing.staged_lower import lower_staged, param_env


def quantized_dot(bits: int, staged, x: np.ndarray, w: np.ndarray,
                  rng: np.random.Generator) -> float:
    """One virtual-ISA dot product at the given precision."""
    step = dot_ps_step(bits)
    n = x.size
    pad = (-n) % step
    if pad:
        x = np.concatenate([x, np.zeros(pad, dtype=x.dtype)])
        w = np.concatenate([w, np.zeros(pad, dtype=w.dtype)])
    qx = quantize_stochastic(x, bits, rng)
    qw = quantize_stochastic(w, bits, rng)
    if bits == 32:
        return float(execute_staged(staged, [qx.data, qw.data, x.size]))
    if bits == 16:
        return float(execute_staged(
            staged, [qx.data.view(np.int16), qw.data.view(np.int16),
                     x.size]))
    inv = 1.0 / (qx.scale * qw.scale)
    return float(execute_staged(staged, [qx.data, qw.data, inv, x.size]))


def train(bits: int, features: np.ndarray, targets: np.ndarray,
          epochs: int = 20, lr: float = 0.01) -> float:
    """SGD for least squares; the prediction dot runs at ``bits``."""
    rng = np.random.default_rng(1234)
    staged = make_staged_dot(bits)
    n_samples, dim = features.shape
    w = np.zeros(dim, dtype=np.float32)
    for _ in range(epochs):
        for i in range(n_samples):
            x = features[i]
            pred = quantized_dot(bits, staged, x, w, rng)
            err = pred - targets[i]
            w -= (lr * err) * x  # scale-and-add (the second SGD block)
    preds = features @ w
    return float(np.mean((preds - targets) ** 2))


def main() -> None:
    rng = np.random.default_rng(7)
    dim, n_samples = 64, 48
    true_w = rng.normal(size=dim).astype(np.float32)
    features = rng.normal(size=(n_samples, dim)).astype(np.float32)
    targets = (features @ true_w
               + 0.01 * rng.normal(size=n_samples)).astype(np.float32)

    print("final training MSE per precision (lower is better):")
    for bits in (32, 16, 8, 4):
        mse = train(bits, features, targets)
        print(f"  {bits:2d}-bit: {mse:.4f}")

    # The Figure 7 comparison: modelled throughput per precision.
    print("\nmodelled dot-product throughput (flops/cycle, n = 2^20):")
    cm = CostModel()
    n = 2 ** 20
    for bits in (32, 16, 8, 4):
        staged = make_staged_dot(bits)
        kernel = lower_staged(staged)
        elem_bytes = {32: 4, 16: 2, 8: 1, 4: 0.5}[bits]
        fp = {"a": elem_bytes * n, "b": elem_bytes * n}
        cost = cm.cost(kernel, param_env(staged, {"n": n}), footprints=fp)
        print(f"  {bits:2d}-bit: {2 * n / cost.cycles:6.2f}")


if __name__ == "__main__":
    main()
