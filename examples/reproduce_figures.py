"""Regenerate every figure of the paper's evaluation as CSV files.

Writes ``figures/fig6a_saxpy.csv``, ``figures/fig6b_mmm.csv`` and
``figures/fig7_precision.csv`` with the same series the paper plots
(flops/cycle per size per implementation), ready for any plotting tool:

    python examples/reproduce_figures.py [outdir]

The benchmark suite (`pytest benchmarks/`) asserts the shapes; this
script is the artifact-style "give me the numbers" entry point.
"""

import csv
import sys
from pathlib import Path

from repro.jvm import MiniVM, TieredState
from repro.kernels import (
    java_mmm_blocked_method,
    java_mmm_triple_method,
    java_saxpy_method,
    make_staged_mmm,
    make_staged_saxpy,
)
from repro.quant import DOT_BITS, java_dot_method, make_staged_dot
from repro.timing import CostModel
from repro.timing.staged_lower import lower_staged, param_env

CM = CostModel()


def _java_kernel(method):
    vm = MiniVM()
    vm.load(method)
    vm.force_tier(method.name, TieredState.C2)
    return vm.machine_kernel(method.name)


def fig6a(outdir: Path) -> Path:
    staged = make_staged_saxpy()
    k_lms = lower_staged(staged)
    k_java = _java_kernel(java_saxpy_method())
    path = outdir / "fig6a_saxpy.csv"
    with path.open("w", newline="") as fh:
        w = csv.writer(fh)
        w.writerow(["log2_n", "java_flops_per_cycle",
                    "lms_flops_per_cycle"])
        for e in range(6, 23):
            n = 2 ** e
            fp = {"a": 4.0 * n, "b": 4.0 * n}
            flops = 2.0 * n
            java = flops / CM.cost(k_java, {"n": n, "s": 1.0},
                                   footprints=fp).cycles
            lms = flops / CM.cost(
                k_lms, param_env(staged, {"n": n, "scalar": 1.0}),
                footprints=fp).cycles
            w.writerow([e, f"{java:.4f}", f"{lms:.4f}"])
    return path


def fig6b(outdir: Path) -> Path:
    staged = make_staged_mmm()
    k_lms = lower_staged(staged)
    k_tri = _java_kernel(java_mmm_triple_method())
    k_blk = _java_kernel(java_mmm_blocked_method())
    path = outdir / "fig6b_mmm.csv"
    with path.open("w", newline="") as fh:
        w = csv.writer(fh)
        w.writerow(["n", "java_triple", "java_blocked", "lms_avx"])
        for n in (8, 64, 128, 192, 256, 320, 384, 448, 512, 576, 640,
                  704, 768, 832, 896, 960, 1024):
            flops = 2.0 * n ** 3
            fp = {x: 4.0 * n * n for x in ("a", "b", "c")}
            tri = flops / CM.cost(k_tri, {"n": n}, footprints=fp).cycles
            blk = flops / CM.cost(k_blk, {"n": n}, footprints=fp).cycles
            lms = flops / CM.cost(k_lms, param_env(staged, {"n": n}),
                                  footprints=fp).cycles
            w.writerow([n, f"{tri:.4f}", f"{blk:.4f}", f"{lms:.4f}"])
    return path


def fig7(outdir: Path) -> Path:
    staged = {bits: make_staged_dot(bits) for bits in DOT_BITS}
    lms_k = {bits: lower_staged(sf) for bits, sf in staged.items()}
    java_k = {bits: _java_kernel(java_dot_method(bits))
              for bits in DOT_BITS}
    elem = {32: 4.0, 16: 2.0, 8: 1.0, 4: 0.5}
    path = outdir / "fig7_precision.csv"
    with path.open("w", newline="") as fh:
        w = csv.writer(fh)
        header = ["log2_n"]
        for bits in DOT_BITS:
            header += [f"java_{bits}bit", f"lms_{bits}bit"]
        w.writerow(header)
        for e in range(7, 27):
            n = 2 ** e
            row = [e]
            for bits in DOT_BITS:
                fp = {"a": elem[bits] * n, "b": elem[bits] * n}
                flops = 2.0 * n
                params = {"n": n, "inv_scale": 1.0}
                java = flops / CM.cost(java_k[bits], params,
                                       footprints=fp).cycles
                lms = flops / CM.cost(
                    lms_k[bits], param_env(staged[bits], params),
                    footprints=fp).cycles
                row += [f"{java:.4f}", f"{lms:.4f}"]
            w.writerow(row)
    return path


def main() -> None:
    outdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("figures")
    outdir.mkdir(parents=True, exist_ok=True)
    for fig in (fig6a, fig6b, fig7):
        path = fig(outdir)
        rows = sum(1 for _ in path.open()) - 1
        print(f"wrote {path} ({rows} data rows)")


if __name__ == "__main__":
    main()
