"""Vectorized string processing with the SSE4.2 packed-string family.

Table 1a's "String" class (``_mm_cmpestrm``, ``_mm_cmpistrz``, ...) is
the part of the intrinsics set furthest from numeric kernels — and it
stages exactly the same way.  This example builds two classic SSE4.2
routines on the eDSL:

* ``find_byte`` — a vectorized ``strchr`` over 16-byte blocks;
* ``count_vowels`` — set-membership counting via EQUAL_ANY.

Both run on the simulated SIMD machine (the string instructions are
microcoded sequences even on real hardware) and are validated against
pure-Python references.

Run:  python examples/string_search.py
"""

import numpy as np

from repro.core import compile_staged
from repro.isa import load_isas
from repro.lms import forloop, if_then_else
from repro.lms.ops import Variable, array_update, reflect_mutable
from repro.lms.types import INT8, INT32, array_of

cir = load_isas("SSE2", "SSE4.2", "POPCNT")

_SIDD_CMP_EQUAL_EACH = 0x08
_SIDD_CMP_EQUAL_ANY = 0x00


def make_find_byte():
    """Staged ``strchr``: index of the first ``needle`` byte, or -1.

    ``haystack`` must be padded to a multiple of 16 with zero bytes
    (zero also terminates the search, like C strings).
    """

    def find_byte(haystack, needle_block, n, out):
        reflect_mutable(out)
        found = Variable(-1)

        def block(i):
            hay = cir._mm_loadu_si128(haystack, i)
            ndl = cir._mm_loadu_si128(needle_block, 0)
            idx = cir._mm_cmpistri(ndl, hay, _SIDD_CMP_EQUAL_ANY)
            hit = (idx < 16) & (found.get() < 0)
            if_then_else(hit, lambda: found.set(i + idx), lambda: None)

        forloop(0, n, step=16, body=block)
        array_update(out, 0, found.get())

    return compile_staged(
        find_byte,
        [array_of(INT8), array_of(INT8), INT32, array_of(INT32)],
        name="find_byte", backend="simulated")


def make_count_vowels():
    """Count vowels per 16-byte block using EQUAL_ANY masks."""

    def count_vowels(text, vowels, n, out):
        reflect_mutable(out)
        total = Variable(0)

        def block(i):
            chunk = cir._mm_loadu_si128(text, i)
            vset = cir._mm_loadu_si128(vowels, 0)
            mask = cir._mm_cmpistrm(vset, chunk, _SIDD_CMP_EQUAL_ANY)
            bits = cir._mm_cvtsi128_si32(mask)
            total.set(total.get() + cir._mm_popcnt_u32(bits))

        forloop(0, n, step=16, body=block)
        array_update(out, 0, total.get())

    return compile_staged(
        count_vowels,
        [array_of(INT8), array_of(INT8), INT32, array_of(INT32)],
        name="count_vowels", backend="simulated")


def _padded(text: bytes) -> np.ndarray:
    n = (len(text) + 15) // 16 * 16
    buf = np.zeros(n, dtype=np.int8)
    buf[: len(text)] = np.frombuffer(text, dtype=np.int8)
    return buf


def main() -> None:
    text = b"the quick brown fox jumps over the lazy dog"
    hay = _padded(text)
    needle = _padded(b"x")

    finder = make_find_byte()
    out = np.zeros(1, dtype=np.int32)
    finder(hay, needle, hay.size, out)
    assert out[0] == text.index(b"x"), (out[0], text.index(b"x"))
    print(f"find_byte('x') -> {out[0]} (python: {text.index(b'x')})")

    needle2 = _padded(b"q")
    finder(hay, needle2, hay.size, out)
    assert out[0] == text.index(b"q")
    print(f"find_byte('q') -> {out[0]} (python: {text.index(b'q')})")

    counter = make_count_vowels()
    vowels = _padded(b"aeiou")
    counter(hay, vowels, hay.size, out)
    expected = sum(text.count(v) for v in b"aeiou")
    assert out[0] == expected, (out[0], expected)
    print(f"count_vowels -> {out[0]} (python: {expected})")


if __name__ == "__main__":
    main()
