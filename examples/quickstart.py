"""Quickstart: SAXPY with SIMD intrinsics from a managed runtime.

This is the paper's Figure 4 end-to-end: declare a native placeholder,
mix ISA eDSLs, write the kernel as a staged function interleaving AVX +
FMA intrinsics with ordinary host-language control flow, and compile it.
The pipeline picks a real C compiler when the host supports AVX2+FMA and
falls back to the bit-accurate SIMD machine otherwise — the numerics are
identical either way.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import compile_kernel, native_placeholder
from repro.isa import load_isas
from repro.lms import forloop
from repro.lms.ops import array_apply, array_update, reflect_mutable
from repro.lms.types import FLOAT, INT32, array_of


class NSaxpy:
    """The paper's NSaxpy class, four steps and all."""

    def __init__(self) -> None:
        # Step 1: placeholder for the SAXPY native function.
        self.apply = native_placeholder("apply")

        # Step 2: DSL instance of the intrinsics (mix of three ISAs).
        cir = load_isas("AVX", "AVX2", "FMA")

        # Step 3: staged SAXPY function using AVX + FMA.
        def saxpy_staged(a, b, scalar, n):
            reflect_mutable(a)          # make array `a` mutable
            n0 = (n >> 3) << 3
            vec_s = cir._mm256_set1_ps(scalar)

            def vec_body(i):
                vec_a = cir._mm256_loadu_ps(a, i)
                vec_b = cir._mm256_loadu_ps(b, i)
                res = cir._mm256_fmadd_ps(vec_b, vec_s, vec_a)
                cir._mm256_storeu_ps(a, res, i)

            forloop(0, n0, step=8, body=vec_body)
            forloop(n0, n, step=1, body=lambda i: array_update(
                a, i, array_apply(a, i) + array_apply(b, i) * scalar))

        # Step 4: generate the saxpy function, compile and link it.
        compile_kernel(
            saxpy_staged,
            [array_of(FLOAT), array_of(FLOAT), FLOAT, INT32],
            self, "apply",
        )


def main() -> None:
    saxpy = NSaxpy()
    kernel = saxpy.apply
    print(f"backend: {kernel.backend.value}"
          + (f"  (fallback: {kernel.fallback_reason})"
             if kernel.fallback_reason else ""))
    print("--- generated C ---")
    print(kernel.c_source)

    n = 1000
    a = np.arange(n, dtype=np.float32)
    b = np.full(n, 2.0, dtype=np.float32)
    expected = a + 3.0 * b
    saxpy.apply(a, b, 3.0, n)
    assert np.allclose(a, expected), "SAXPY mismatch"
    print(f"saxpy({n}) matches numpy: OK")

    # Price it on the Haswell model, like the paper's Figure 6a.
    print(f"\n{'n':>8}  {'flops/cycle':>11}")
    for logn in range(6, 23, 2):
        size = 2 ** logn
        cost = kernel.cost({"n": size, "scalar": 3.0},
                           footprints={"a": 4.0 * size, "b": 4.0 * size})
        print(f"2^{logn:<6d}  {2 * size / cost.cycles:11.2f}")


if __name__ == "__main__":
    main()
