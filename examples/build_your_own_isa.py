"""Build your own virtual ISA: host metaprogramming over intrinsics.

Section 4's broader point is that the staged eDSLs turn the entire host
language into a macro system: any Python function over staged values is
a zero-overhead "virtual intrinsic".  This example defines three:

* ``vreduce_add(v)`` — horizontal sum of a ``__m256``;
* ``vpoly(coeffs, x)`` — Horner evaluation of a *compile-time*
  polynomial, fully unrolled into FMAs (an SVML-style routine built in
  user space);
* ``vrand16(dst, i)`` — hardware random numbers via RDRAND, the
  instruction the paper's stochastic quantization relies on.

Run:  python examples/build_your_own_isa.py
"""

import numpy as np

from repro.core import compile_staged
from repro.isa import load_isas
from repro.lms import forloop
from repro.lms.ops import reflect_mutable
from repro.lms.types import FLOAT, INT32, UINT16, array_of

cir = load_isas("SSE", "SSE2", "SSE3", "AVX", "AVX2", "FMA", "RDRAND")


# --- virtual intrinsic 1: horizontal sum ---------------------------------

def vreduce_add(v):
    """Sum the 8 float lanes of ``v`` into one staged float."""
    hi = cir._mm256_extractf128_ps(v, 1)
    lo = cir._mm256_castps256_ps128(v)
    s = cir._mm_add_ps(hi, lo)
    s = cir._mm_hadd_ps(s, s)
    s = cir._mm_hadd_ps(s, s)
    return cir._mm_cvtss_f32(s)


# --- virtual intrinsic 2: unrolled Horner polynomial ----------------------

def vpoly(coeffs, x):
    """Evaluate ``sum(coeffs[k] * x^k)`` lane-wise with FMAs.

    ``coeffs`` is an ordinary Python list — a staging-time constant —
    so the loop below unrolls completely; only FMAs reach the kernel.
    """
    acc = cir._mm256_set1_ps(float(coeffs[-1]))
    for c in reversed(coeffs[:-1]):
        acc = cir._mm256_fmadd_ps(acc, x, cir._mm256_set1_ps(float(c)))
    return acc


def main() -> None:
    # A kernel using both: mean of exp(x) via its Taylor polynomial.
    taylor = [1.0, 1.0, 0.5, 1.0 / 6, 1.0 / 24, 1.0 / 120]

    def poly_sum(a, out, n):
        reflect_mutable(out)

        def body(i):
            x = cir._mm256_loadu_ps(a, i)
            y = vpoly(taylor, x)
            cir._mm256_storeu_ps(out, y, i)

        forloop(0, n, step=8, body=body)

    kernel = compile_staged(
        poly_sum, [array_of(FLOAT), array_of(FLOAT), INT32], "poly_sum")
    print(f"poly_sum backend: {kernel.backend.value}")

    n = 64
    a = np.linspace(-1, 1, n, dtype=np.float32)
    out = np.zeros(n, dtype=np.float32)
    kernel(a, out, n)
    expected = sum(c * a.astype(np.float64) ** k
                   for k, c in enumerate(taylor)).astype(np.float32)
    assert np.allclose(out, expected, rtol=1e-5)
    print("Taylor-exp virtual intrinsic matches numpy: OK")
    fmas = kernel.c_source.count("_mm256_fmadd_ps")
    print(f"the {len(taylor) - 1}-term Horner loop unrolled into "
          f"{fmas} FMAs in the generated C — zero abstraction overhead")

    # Hardware randomness (stochastic quantization's entropy source).
    def fill_random(dst, n):
        reflect_mutable(dst)
        forloop(0, n, step=1,
                body=lambda i: cir._rdrand16_step(dst, i))

    rnd = compile_staged(fill_random, [array_of(UINT16), INT32],
                         "fill_random", backend="simulated")
    buf = np.zeros(16, dtype=np.uint16)
    rnd(buf, 16)
    assert len(set(buf.tolist())) > 4, "RDRAND produced no entropy"
    print(f"RDRAND filled 16 half-words, e.g. {buf[:4].tolist()}")


if __name__ == "__main__":
    main()
