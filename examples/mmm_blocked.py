"""Blocked matrix-matrix multiplication with an 8x8 register transpose.

The paper's Figure 5: high-level host constructs (comprehensions,
zips, a recursive pairwise-sum closure) drive intrinsic emission — the
host language as a macro system — and LMS removes all of that
abstraction before the kernel runs.  The example verifies the staged
kernel against numpy and against the two Java baselines running on
MiniVM, then reprints the Figure 6b comparison from the cost model.

Run:  python examples/mmm_blocked.py
"""

import numpy as np

from repro.core import compile_staged
from repro.jvm import MiniVM, TieredState
from repro.kernels import (
    java_mmm_blocked_method,
    java_mmm_triple_method,
    make_staged_mmm,
)
from repro.kernels.mmm import MMM_ISAS
from repro.isa import load_isas
from repro.lms.types import FLOAT, INT32, array_of
from repro.timing import CostModel
from repro.timing.staged_lower import lower_staged, param_env


def main() -> None:
    n = 16  # n == 8k, as the paper assumes
    rng = np.random.default_rng(42)
    a = rng.normal(size=(n, n)).astype(np.float32)
    b = rng.normal(size=(n, n)).astype(np.float32)
    expected = (a.astype(np.float64) @ b.astype(np.float64)).astype(
        np.float32)

    # The staged, explicitly vectorized version.
    staged = make_staged_mmm()
    c = np.zeros(n * n, dtype=np.float32)
    from repro.simd import execute_staged
    execute_staged(staged, [a.ravel(), b.ravel(), c, n])
    assert np.allclose(c.reshape(n, n), expected, atol=1e-3)
    print(f"staged blocked MMM ({n}x{n}) matches numpy: OK")

    # The Java baselines on MiniVM.
    vm = MiniVM()
    vm.load(java_mmm_triple_method())
    vm.load(java_mmm_blocked_method())
    c1 = np.zeros(n * n, dtype=np.float32)
    vm.call("jmmm_triple", a.ravel(), b.ravel(), c1, n)
    c2 = np.zeros(n * n, dtype=np.float32)
    vm.call("jmmm_blocked", a.ravel(), b.ravel(), c2, n)
    assert np.allclose(c1.reshape(n, n), expected, atol=1e-3)
    assert np.allclose(c2.reshape(n, n), expected, atol=1e-3)
    print("Java triple-loop and blocked MMM match on MiniVM: OK")

    # Figure 6b on the Haswell cost model.
    vm.force_tier("jmmm_triple", TieredState.C2)
    vm.force_tier("jmmm_blocked", TieredState.C2)
    cm = CostModel()
    k_tri = vm.machine_kernel("jmmm_triple")
    k_blk = vm.machine_kernel("jmmm_blocked")
    k_lms = lower_staged(staged)
    print(f"\n{'n':>6} {'Java triple':>12} {'Java blocked':>13} "
          f"{'LMS (AVX)':>10}   [flops/cycle]")
    for size in (64, 128, 256, 512, 1024):
        flops = 2.0 * size ** 3
        fp = {k: 4.0 * size * size for k in ("a", "b", "c")}
        t = flops / cm.cost(k_tri, {"n": size}, footprints=fp).cycles
        bl = flops / cm.cost(k_blk, {"n": size}, footprints=fp).cycles
        lm = flops / cm.cost(k_lms, param_env(staged, {"n": size}),
                             footprints=fp).cycles
        print(f"{size:6d} {t:12.2f} {bl:13.2f} {lm:10.2f}   "
              f"(LMS {lm / bl:.1f}x blocked, {lm / t:.1f}x triple)")


if __name__ == "__main__":
    main()
