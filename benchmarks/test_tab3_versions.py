"""Table 3: Intel Intrinsics Guide XML specification versions.

The paper salvages six historical spec releases and shows the eDSL
generator "is robust towards minor changes on the XML specifications,
being able to retrospectively generate eDSLs for recent years".  This
bench regenerates each version's XML file, re-parses it, runs the full
eDSL generator over it, and reports per-version statistics.
"""

from benchmarks.conftest import print_series
from repro.isa.generator import generate_edsl_modules
from repro.spec import SPEC_VERSIONS, emit_spec_xml, parse_spec_xml
from repro.spec.catalog import all_entries

PAPER_TABLE_3 = {
    "3.2.2": "03.09.2014", "3.3.1": "17.10.2014",
    "3.3.11": "27.07.2015", "3.3.14": "12.01.2016",
    "3.3.16": "26.01.2016", "3.4": "07.09.2017",
}


def _regenerate_all():
    stats = []
    for version in sorted(SPEC_VERSIONS):
        entries = all_entries(version)
        xml = emit_spec_xml(entries, version)
        parsed = parse_spec_xml(xml)
        per_isa = generate_edsl_modules(parsed, version)
        n_modules = sum(len(mods) for mods in per_isa.values())
        n_lines = sum(gm.source.count("\n")
                      for mods in per_isa.values() for gm in mods)
        # Every generated module must be valid Python.
        for mods in per_isa.values():
            for gm in mods:
                compile(gm.source, gm.name, "exec")
        stats.append((version, len(parsed), len(per_isa), n_modules,
                      n_lines))
    return stats


def test_tab3_spec_versions(benchmark):
    stats = benchmark(_regenerate_all)
    print("\n== Table 3: spec versions (generator robustness) ==")
    print(f"  {'version':>8s} {'date':>12s} {'intrinsics':>11s} "
          f"{'ISAs':>5s} {'modules':>8s} {'gen lines':>10s}")
    for version, n_intr, n_isas, n_modules, n_lines in stats:
        print(f"  {version:>8s} {PAPER_TABLE_3[version]:>12s} "
              f"{n_intr:11d} {n_isas:5d} {n_modules:8d} {n_lines:10d}")

    assert len(stats) == 6  # the paper's six salvaged versions
    counts = {v: n for v, n, *_ in stats}
    # Older specs are smaller (no AVX-512 in 3.2.2).
    assert counts["3.2.2"] < counts["3.3.16"]
    # The 3.4 schema change (return elements) generates identically.
    assert counts["3.4"] >= counts["3.3.16"]
    # Every version generated successfully at realistic scale.
    for version, n_intr, n_isas, n_modules, n_lines in stats:
        assert n_intr > 1000 and n_lines > 20_000, version
